(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation from the implementation, then runs Bechamel
   micro-benchmarks of the substrate. Sections:

     Table 1    - bug study classification
     Table 2    - testbed of reproducible bugs, symptoms, helpful tools
     Figure 2   - SignalCat + monitor resource overhead vs. buffer size
     Figure 3   - LossCheck overhead normalized to platform capacity
     6.3        - tool effectiveness (localization, generated code, FSM
                  detection accuracy, false-positive filtering)
     6.4        - frequency closure before/after instrumentation
     micro      - Bechamel benchmarks of parser/simulator/analyses

   With [--json PATH] the harness instead runs the machine-readable
   micro-benchmark used by CI to track the perf trajectory across PRs:
   parse / elaborate / simulate throughput over several testbed designs
   plus synthetic low-activity and sequential-heavy designs, for all
   four simulator kernels, with hard same-run gates demanding the
   lowered kernel never lose to the brute-force sweep it replaces and
   the dirty lowered kernel never lose to the plain one (and beat the
   event kernel on the idle design it was built for). *)

module Report = Fpga_report.Report
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Recipe = Fpga_testbed.Recipe
module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator
module Telemetry = Fpga_telemetry.Telemetry

let header = Report.header

(* ------------------------------------------------------------------ *)
(* Machine-readable micro-benchmark (--json)                           *)
(* ------------------------------------------------------------------ *)

type bench_design = {
  bd_id : string;
  bd_top : string;
  bd_src : string;
  bd_stim : Fpga_sim.Testbench.stimulus;
}

(* A deep pipeline fed a constant input: after it fills, no signal
   changes, so the event-driven kernel's dirty set runs empty. This is
   the low-activity design the kernel is meant to win on. *)
let idle_design_src stages =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "module idle (input clk, input [7:0] d, output [7:0] q);\n";
  for i = 1 to stages do
    Buffer.add_string buf (Printf.sprintf "  reg [7:0] r%d;\n" i);
    Buffer.add_string buf (Printf.sprintf "  wire [7:0] w%d;\n" i)
  done;
  Buffer.add_string buf "  assign w1 = r1 + 8'd1;\n";
  for i = 2 to stages do
    Buffer.add_string buf
      (Printf.sprintf "  assign w%d = w%d ^ r%d;\n" i (i - 1) i)
  done;
  Buffer.add_string buf (Printf.sprintf "  assign q = w%d;\n" stages);
  Buffer.add_string buf "  always @(posedge clk) begin\n    r1 <= d;\n";
  for i = 2 to stages do
    Buffer.add_string buf (Printf.sprintf "    r%d <= r%d;\n" i (i - 1))
  done;
  Buffer.add_string buf "  end\nendmodule\n";
  Buffer.contents buf

(* A register ring with essentially no combinational plan: one always
   block rewrites all [regs] registers every cycle, so the run is pure
   sequential-edge work through the flat NBA commit buffer. The dirty
   lowered kernel has nothing to skip here — the design exists to prove
   the dirty machinery costs nothing when it cannot help. *)
let seq_design_src regs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "module seqheavy (input clk, input [7:0] d, output [7:0] q);\n";
  for i = 1 to regs do
    Buffer.add_string buf (Printf.sprintf "  reg [7:0] r%d;\n" i)
  done;
  Buffer.add_string buf (Printf.sprintf "  assign q = r%d;\n" regs);
  Buffer.add_string buf "  always @(posedge clk) begin\n";
  Buffer.add_string buf (Printf.sprintf "    r1 <= r%d + d;\n" regs);
  for i = 2 to regs do
    Buffer.add_string buf
      (if i mod 2 = 0 then
         Printf.sprintf "    r%d <= r%d ^ 8'd%d;\n" i (i - 1) (i land 0xFF)
       else Printf.sprintf "    r%d <= r%d + 8'd%d;\n" i (i - 1) (i land 0xFF))
  done;
  Buffer.add_string buf "  end\nendmodule\n";
  Buffer.contents buf

let bench_designs () =
  let of_bug id =
    let bug = Option.get (Registry.find id) in
    {
      bd_id = id;
      bd_top = bug.Bug.top;
      bd_src = bug.Bug.buggy_src;
      bd_stim = bug.Bug.stimulus;
    }
  in
  [
    of_bug "D2";  (* grayscale converter *)
    of_bug "D4";  (* frame FIFO *)
    of_bug "D8";  (* AXI-stream switch (packet router) *)
    {
      bd_id = "IDLE64";
      bd_top = "idle";
      bd_src = idle_design_src 64;
      bd_stim = Fpga_sim.Testbench.const_stimulus [ ("d", Bits.of_int ~width:8 42) ];
    };
    {
      bd_id = "SEQ64";
      bd_top = "seqheavy";
      bd_src = seq_design_src 64;
      bd_stim = Fpga_sim.Testbench.const_stimulus [ ("d", Bits.of_int ~width:8 7) ];
    };
  ]

(* Run [f] repeatedly until [min_elapsed] wall seconds accumulate and
   report iterations per second. *)
let runs_per_sec ?(min_elapsed = 0.2) f =
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  while Unix.gettimeofday () -. t0 < min_elapsed do
    f ();
    incr n
  done;
  float_of_int !n /. (Unix.gettimeofday () -. t0)

(* Simulated cycles per wall second: repeatedly build a simulator and
   drive it with the design's stimulus, timing only the stepping loop. *)
let sim_cycles_per_sec ?(min_elapsed = 0.3) ~kernel flat stim =
  let total_cycles = ref 0 and elapsed = ref 0.0 in
  while !elapsed < min_elapsed do
    let sim = Simulator.create ~kernel flat in
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while !n < 2000 && not (Simulator.finished sim) do
      List.iter (fun (nm, v) -> Simulator.set_input sim nm v) (stim !n);
      Simulator.step sim;
      incr n
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    total_cycles := !total_cycles + !n
  done;
  float_of_int !total_cycles /. !elapsed

(* Noise-immune throughput ceiling: the fastest single 2000-cycle batch
   observed across [min_elapsed] of measurement. Interference on a
   shared host only ever inflates a batch's wall time, never deflates
   it, so the fastest batch converges on the unloaded machine's speed —
   the right estimator for same-run kernel-vs-kernel ratio gates, where
   aggregate windows flap by tens of percent. *)
let sim_best_batch_cps ?(min_elapsed = 0.3) ~kernel flat stim =
  let best = ref 0.0 and elapsed = ref 0.0 in
  while !elapsed < min_elapsed do
    let sim = Simulator.create ~kernel flat in
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while !n < 2000 && not (Simulator.finished sim) do
      List.iter (fun (nm, v) -> Simulator.set_input sim nm v) (stim !n);
      Simulator.step sim;
      incr n
    done;
    let dt = Unix.gettimeofday () -. t0 in
    elapsed := !elapsed +. dt;
    if dt > 0.0 then best := Float.max !best (float_of_int !n /. dt)
  done;
  !best

(* Word-level Bits micro-benchmarks: the hot ops the limb-wise rewrite
   targets, at widths straddling the 32-bit limb boundary. *)
type bits_bench = { bb_op : string; bb_width : int; bb_ops_per_sec : float }

let ops_per_sec op =
  let iters = 1000 in
  runs_per_sec (fun () ->
      for _ = 1 to iters do
        ignore (Sys.opaque_identity (op ()))
      done)
  *. float_of_int iters

let bits_benches () =
  let widths = [ 8; 32; 64; 128 ] in
  List.concat_map
    (fun w ->
      let pattern = Bits.of_int ~width:32 0xDEADBEEF in
      let a = Bits.resize (Bits.repeat ((w + 31) / 32) pattern) w in
      let b = Bits.lognot a in
      let k = (w / 3) + 1 in
      let hi = w - 1 - (w / 4) and lo = w / 4 in
      let cases =
        [
          ("shift_left", fun () -> Bits.shift_left a k);
          ("shift_right", fun () -> Bits.shift_right a k);
          ("slice", fun () -> Bits.slice a ~hi ~lo);
          ("concat", fun () -> Bits.concat [ a; b; a ]);
          ("mul", fun () -> Bits.mul a b);
        ]
      in
      List.map
        (fun (name, op) ->
          { bb_op = name; bb_width = w; bb_ops_per_sec = ops_per_sec op })
        cases)
    widths

(* Signal-lookup micro-benchmark: a string-keyed hashtable environment
   (the seed's evaluator) against the interned id-indexed array the
   compiled evaluator uses, over a real design's signal set. *)
type lookup_bench = { lb_hashtbl_per_sec : float; lb_array_per_sec : float }

let signal_lookup_bench () =
  let bug = Option.get (Registry.find "D8") in
  let design = Fpga_hdl.Parser.parse_design bug.Bug.buggy_src in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:bug.Bug.top in
  let names = flat.Fpga_sim.Elaborate.f_signal_order in
  let n = Array.length names in
  let h = Hashtbl.create (2 * n) in
  Array.iter (fun nm -> Hashtbl.replace h nm (Bits.zero 8)) names;
  let arr = Array.make n (Bits.zero 8) in
  let per_sweep f = ops_per_sec f *. float_of_int n in
  {
    lb_hashtbl_per_sec =
      per_sweep (fun () ->
          Array.iter (fun nm -> ignore (Sys.opaque_identity (Hashtbl.find h nm))) names);
    lb_array_per_sec =
      per_sweep (fun () ->
          for i = 0 to n - 1 do
            ignore (Sys.opaque_identity arr.(i))
          done);
  }

type bench_result = {
  br_id : string;
  br_top : string;
  br_parse_per_sec : float;
  br_elaborate_per_sec : float;
  br_event_cps : float;
  br_brute_cps : float;
  br_lowered_cps : float;
  br_ldirty_cps : float;
  br_dirty_ratio : float;  (* dirty/lowered best-batch throughput ratio *)
  br_auto_kernel : string;  (* kernel [Simulator.create] picks unforced *)
}

let bench_one (d : bench_design) =
  let design = Fpga_hdl.Parser.parse_design d.bd_src in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:d.bd_top in
  (* The lowered pair feeds a hard same-run gate, so both sides use the
     best-batch ceiling estimator, with the two kernels' measurement
     windows interleaved so any long-lived host slowdown lands on both
     sides of the ratio equally. *)
  let lowered_cps = ref 0.0 and ldirty_cps = ref 0.0 in
  for _ = 1 to 3 do
    lowered_cps :=
      Float.max !lowered_cps
        (sim_best_batch_cps ~min_elapsed:0.15 ~kernel:Simulator.Lowered flat
           d.bd_stim);
    ldirty_cps :=
      Float.max !ldirty_cps
        (sim_best_batch_cps ~min_elapsed:0.15
           ~kernel:Simulator.Lowered_dirty flat d.bd_stim)
  done;
  let dirty_ratio = !ldirty_cps /. !lowered_cps in
  {
    br_id = d.bd_id;
    br_top = d.bd_top;
    br_parse_per_sec =
      runs_per_sec (fun () -> ignore (Fpga_hdl.Parser.parse_design d.bd_src));
    br_elaborate_per_sec =
      runs_per_sec (fun () ->
          ignore (Fpga_sim.Elaborate.elaborate design ~top:d.bd_top));
    br_event_cps =
      sim_cycles_per_sec ~kernel:Simulator.Event_driven flat d.bd_stim;
    br_brute_cps =
      sim_cycles_per_sec ~kernel:Simulator.Brute_force flat d.bd_stim;
    br_lowered_cps = !lowered_cps;
    br_ldirty_cps = !ldirty_cps;
    br_dirty_ratio = dirty_ratio;
    br_auto_kernel = Simulator.kernel_name (Simulator.kernel (Simulator.create flat));
  }

(* Throughput of whichever kernel auto-selection actually picked for
   this design: the honest numerator for the headline "speedup" column
   (previous schemas quietly reported event-vs-brute even when the
   simulator would have run a lowered kernel). *)
let auto_cps r =
  match r.br_auto_kernel with
  | "event" -> r.br_event_cps
  | "brute" -> r.br_brute_cps
  | "lowered" -> r.br_lowered_cps
  | _ -> r.br_ldirty_cps

(* Lowering-pass statics per bench design: how long one lowered
   construction takes and what the closure compiler emitted. The counts
   are exact facts of the compiled plan (not timings), so they are safe
   for byte-level baseline diffs. *)
type lowering_bench = {
  lo_design : string;
  lo_compile_ms : float;
  lo_nodes : int;
  lo_closures : int;
  lo_fused : int;
  lo_imm : int;
  lo_boxed : int;
  lo_seq : int;
  lo_dirty : bool;
}

let lowering_bench_one (d : bench_design) =
  let design = Fpga_hdl.Parser.parse_design d.bd_src in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:d.bd_top in
  let creates_per_sec =
    runs_per_sec (fun () ->
        ignore (Simulator.create ~kernel:Simulator.Lowered_dirty flat))
  in
  let sim = Simulator.create ~kernel:Simulator.Lowered_dirty flat in
  let st = Option.get (Simulator.lowering_stats sim) in
  {
    lo_design = d.bd_id;
    lo_compile_ms = 1000.0 /. creates_per_sec;
    lo_nodes = st.Fpga_sim.Lowered.lw_nodes;
    lo_closures = st.Fpga_sim.Lowered.lw_closures;
    lo_fused = st.Fpga_sim.Lowered.lw_fused;
    lo_imm = st.Fpga_sim.Lowered.lw_imm;
    lo_boxed = st.Fpga_sim.Lowered.lw_boxed;
    lo_seq = st.Fpga_sim.Lowered.lw_seq;
    lo_dirty = st.Fpga_sim.Lowered.lw_dirty;
  }

(* Kernel-telemetry readout: one instrumented 2000-cycle run per bench
   design, reporting how much of the full-sweep work the event-driven
   kernel actually performed and how the global event bus filled. *)
type telemetry_stats = {
  ts_design : string;
  ts_settles : int;
  ts_node_rounds : int;
  ts_nodes_evaluated : int;
  ts_efficiency : float;
  ts_bus_published : int;
  ts_bus_dropped : int;
}

let telemetry_stats_one (d : bench_design) =
  let design = Fpga_hdl.Parser.parse_design d.bd_src in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:d.bd_top in
  Telemetry.reset ();
  let sim = Simulator.create ~kernel:Simulator.Event_driven flat in
  let n = ref 0 in
  while !n < 2000 && not (Simulator.finished sim) do
    List.iter (fun (nm, v) -> Simulator.set_input sim nm v) (d.bd_stim !n);
    Simulator.step sim;
    incr n
  done;
  let st = Option.get (Simulator.stats sim) in
  let r = Telemetry.report () in
  {
    ts_design = d.bd_id;
    ts_settles = st.Simulator.st_settles;
    ts_node_rounds = st.Simulator.st_node_rounds;
    ts_nodes_evaluated = st.Simulator.st_nodes_evaluated;
    ts_efficiency = Option.value (Simulator.kernel_efficiency sim) ~default:1.0;
    ts_bus_published = r.Telemetry.r_bus_published;
    ts_bus_dropped = r.Telemetry.r_bus_dropped;
  }

let telemetry_benches () =
  Telemetry.enable ();
  Fun.protect ~finally:Telemetry.disable @@ fun () ->
  List.map telemetry_stats_one (bench_designs ())

(* Cost of the single-branch disabled guard and of full recording: the
   same stepping workload with telemetry off and on. The off numbers
   must stay in line with the plain sim_cycles_per_sec_event metrics
   (the <=5% disabled-overhead acceptance bar); the on numbers show
   what a fully instrumented run pays. *)
type overhead = {
  to_design : string;
  to_cps_off : float;
  to_cps_on : float;
  to_overhead_pct : float;
  (* same workload with structured tracing on (telemetry off): the
     span-tree buffer plus the window-sampled counter series *)
  to_cps_trace : float;
  to_trace_overhead_pct : float;
}

let telemetry_overhead_one (d : bench_design) =
  let design = Fpga_hdl.Parser.parse_design d.bd_src in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:d.bd_top in
  let kernel = Simulator.Event_driven in
  let cps_off = sim_cycles_per_sec ~kernel flat d.bd_stim in
  Telemetry.enable ();
  Telemetry.reset ();
  let cps_on =
    Fun.protect ~finally:Telemetry.disable @@ fun () ->
    sim_cycles_per_sec ~kernel flat d.bd_stim
  in
  Telemetry.Trace.enable ~clock:Telemetry.Trace.Virtual ();
  Telemetry.Trace.reset ();
  let cps_trace =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.Trace.reset ();
        Telemetry.Trace.disable ())
      (fun () -> sim_cycles_per_sec ~kernel flat d.bd_stim)
  in
  {
    to_design = d.bd_id;
    to_cps_off = cps_off;
    to_cps_on = cps_on;
    to_overhead_pct = 100.0 *. (1.0 -. (cps_on /. cps_off));
    to_cps_trace = cps_trace;
    to_trace_overhead_pct = 100.0 *. (1.0 -. (cps_trace /. cps_off));
  }

let telemetry_overhead_benches () =
  List.filter_map
    (fun (d : bench_design) ->
      if d.bd_id = "IDLE64" || d.bd_id = "D2" then
        Some (telemetry_overhead_one d)
      else None)
    (bench_designs ())

(* Campaign throughput: the full Table 2 repro set executed on a
   domain pool of growing width. jobs/sec and cycles/sec are the
   headline numbers; utilization shows how evenly the queue drained.
   Speedup is relative to the 1-domain (inline, spawn-free) run, so on
   a single-core container it can legitimately sit at or below 1.0 —
   the metric is recorded but deliberately kept out of the warn-only
   baseline comparison because it is machine-dependent. *)
type campaign_bench = {
  cb_domains : int;
  cb_wall : float;
  cb_jobs_per_sec : float;
  cb_cycles_per_sec : float;
  cb_utilization : float;
  cb_speedup : float;
}

let campaign_benches () =
  let open Fpga_campaign.Campaign in
  let bugs = Registry.all in
  let run_at domains =
    (* best of three: the first pass also warms the minor heap *)
    let best = ref (run ~domains bugs) in
    for _ = 1 to 2 do
      let c = run ~domains bugs in
      if c.c_stats.ps_wall < !best.c_stats.ps_wall then best := c
    done;
    !best
  in
  let serial = run_at 1 in
  let serial_wall = serial.c_stats.ps_wall in
  List.map
    (fun domains ->
      let c = if domains = 1 then serial else run_at domains in
      let wall = c.c_stats.ps_wall in
      {
        cb_domains = domains;
        cb_wall = wall;
        cb_jobs_per_sec = float_of_int c.c_stats.ps_jobs /. wall;
        cb_cycles_per_sec = float_of_int c.c_cycles /. wall;
        cb_utilization = c.c_stats.ps_utilization;
        cb_speedup = serial_wall /. wall;
      })
    [ 1; 2; 4 ]

let json_of_results results lowerings bits lookup telem overheads campaigns =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"fpga-debug-bench/7\",\n";
  Buffer.add_string buf "  \"designs\": [\n";
  (* "speedup" is auto-kernel throughput over brute — what a user who
     never passes --kernel actually gets, not the event kernel's ratio *)
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"top\": %S, \"parse_per_sec\": %.1f, \
            \"elaborate_per_sec\": %.1f, \"sim_cycles_per_sec_event\": \
            %.1f, \"sim_cycles_per_sec_brute\": %.1f, \
            \"sim_cycles_per_sec_lowered\": %.1f, \
            \"sim_cycles_per_sec_lowered_dirty\": %.1f, \
            \"auto_kernel\": %S, \"speedup\": %.2f}%s\n"
           r.br_id r.br_top r.br_parse_per_sec r.br_elaborate_per_sec
           r.br_event_cps r.br_brute_cps r.br_lowered_cps r.br_ldirty_cps
           r.br_auto_kernel
           (auto_cps r /. r.br_brute_cps)
           (if i = List.length results - 1 then "" else ",")))
    results;
  (* per-kernel throughput side by side, keyed on "design" so the
     baseline scanner (which keys throughput on "id") sees each number
     exactly once *)
  Buffer.add_string buf "  ],\n  \"kernel_compare\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"event_cps\": %.1f, \"brute_cps\": %.1f, \
            \"lowered_cps\": %.1f, \"lowered_dirty_cps\": %.1f, \
            \"auto_kernel\": %S, \"event_speedup_vs_brute\": %.2f, \
            \"lowered_speedup_vs_brute\": %.2f, \
            \"lowered_dirty_speedup_vs_brute\": %.2f, \
            \"dirty_vs_lowered_ratio\": %.3f}%s\n"
           r.br_id r.br_event_cps r.br_brute_cps r.br_lowered_cps
           r.br_ldirty_cps r.br_auto_kernel
           (r.br_event_cps /. r.br_brute_cps)
           (r.br_lowered_cps /. r.br_brute_cps)
           (r.br_ldirty_cps /. r.br_brute_cps)
           r.br_dirty_ratio
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ],\n  \"lowering\": [\n";
  List.iteri
    (fun i l ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"compile_ms\": %.3f, \"nodes\": %d, \
            \"closures\": %d, \"fused\": %d, \"imm_signals\": %d, \
            \"boxed_signals\": %d, \"seq_blocks\": %d, \"dirty\": %b}%s\n"
           l.lo_design l.lo_compile_ms l.lo_nodes l.lo_closures l.lo_fused
           l.lo_imm l.lo_boxed l.lo_seq l.lo_dirty
           (if i = List.length lowerings - 1 then "" else ",")))
    lowerings;
  Buffer.add_string buf "  ],\n  \"bits_ops\": [\n";
  List.iteri
    (fun i b ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"op\": %S, \"width\": %d, \"ops_per_sec\": %.1f}%s\n"
           b.bb_op b.bb_width b.bb_ops_per_sec
           (if i = List.length bits - 1 then "" else ",")))
    bits;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"signal_lookup\": {\"hashtbl_per_sec\": %.1f, \"array_per_sec\": \
        %.1f},\n"
       lookup.lb_hashtbl_per_sec lookup.lb_array_per_sec);
  (* telemetry sections are keyed on "design" (not "id") so the
     line-based baseline scanner above never conflates them with the
     throughput entries *)
  Buffer.add_string buf "  \"telemetry\": [\n";
  List.iteri
    (fun i t ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"settles\": %d, \"node_rounds\": %d, \
            \"nodes_evaluated\": %d, \"kernel_efficiency\": %.4f, \
            \"bus_published\": %d, \"bus_dropped\": %d}%s\n"
           t.ts_design t.ts_settles t.ts_node_rounds t.ts_nodes_evaluated
           t.ts_efficiency t.ts_bus_published t.ts_bus_dropped
           (if i = List.length telem - 1 then "" else ",")))
    telem;
  Buffer.add_string buf "  ],\n  \"telemetry_overhead\": [\n";
  List.iteri
    (fun i o ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"design\": %S, \"cps_off\": %.1f, \"cps_on\": %.1f, \
            \"overhead_pct\": %.1f, \"cps_trace_on\": %.1f, \
            \"trace_overhead_pct\": %.1f}%s\n"
           o.to_design o.to_cps_off o.to_cps_on o.to_overhead_pct
           o.to_cps_trace o.to_trace_overhead_pct
           (if i = List.length overheads - 1 then "" else ",")))
    overheads;
  (* campaign entries are keyed on "domains" — like the telemetry
     sections they stay invisible to the baseline scanner, because
     pool speedup depends on the machine's core count *)
  Buffer.add_string buf "  ],\n  \"campaign\": [\n";
  List.iteri
    (fun i c ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"domains\": %d, \"wall_seconds\": %.4f, \"jobs_per_sec\": \
            %.1f, \"cycles_per_sec\": %.1f, \"pool_utilization\": %.3f, \
            \"speedup\": %.2f}%s\n"
           c.cb_domains c.cb_wall c.cb_jobs_per_sec c.cb_cycles_per_sec
           c.cb_utilization c.cb_speedup
           (if i = List.length campaigns - 1 then "" else ",")))
    campaigns;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

(* --------------------------------------------------------------- *)
(* Baseline comparison (--baseline)                                 *)
(* --------------------------------------------------------------- *)

(* Minimal scanner for the bench JSON this harness writes (one entry
   per line): extracts labelled throughput numbers without a JSON
   dependency. Labels: design id -> event cycles/sec, "op@width" ->
   ops/sec, "signal_lookup_array" -> lookups/sec. *)
let find_sub s pat =
  let n = String.length s and m = String.length pat in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = pat then Some (i + m)
    else go (i + 1)
  in
  go 0

let field_float line key =
  match find_sub line (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let n = String.length line in
      while
        !stop < n
        && (match line.[!stop] with
           | '0' .. '9' | '.' | '-' | 'e' | '+' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let field_string line key =
  match find_sub line (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | Some stop -> Some (String.sub line start (stop - start))
      | None -> None)

let labelled_metrics_of_file path =
  let ic = open_in path in
  let entries = ref [] in
  (try
     while true do
       let line = input_line ic in
       (match (field_string line "id", field_float line "sim_cycles_per_sec_event") with
       | Some id, Some v -> entries := (id, v) :: !entries
       | _ -> ());
       (match
          (field_string line "id", field_float line "sim_cycles_per_sec_lowered")
        with
       | Some id, Some v -> entries := (id ^ "@lowered", v) :: !entries
       | _ -> ());
       (match
          ( field_string line "id",
            field_float line "sim_cycles_per_sec_lowered_dirty" )
        with
       | Some id, Some v -> entries := (id ^ "@lowered-dirty", v) :: !entries
       | _ -> ());
       (match
          (field_string line "op", field_float line "width", field_float line "ops_per_sec")
        with
       | Some op, Some w, Some v ->
           entries := (Printf.sprintf "%s@%d" op (int_of_float w), v) :: !entries
       | _ -> ());
       match field_float line "array_per_sec" with
       | Some v -> entries := ("signal_lookup_array", v) :: !entries
       | None -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* Warn-only regression gate: flag any metric that fell below
   [tolerance] of the checked-in baseline. Timing noise on shared CI
   runners makes a hard failure counterproductive, so this never exits
   non-zero; the warning lines are what reviewers grep for. *)
let compare_to_baseline ~current ~baseline_path =
  if not (Sys.file_exists baseline_path) then
    Printf.printf "baseline %s not found; skipping comparison\n" baseline_path
  else begin
    let tolerance = 0.8 in
    let baseline = labelled_metrics_of_file baseline_path in
    let warned = ref 0 and checked = ref 0 in
    List.iter
      (fun (label, base) ->
        match List.assoc_opt label current with
        | None -> ()
        | Some now ->
            incr checked;
            if now < tolerance *. base then (
              incr warned;
              Printf.printf
                "BENCH WARNING: %s regressed: %.1f/s vs baseline %.1f/s (%.0f%%)\n"
                label now base
                (100.0 *. now /. base)))
      baseline;
    if !warned = 0 then
      Printf.printf "baseline check: %d metrics within %.0f%% tolerance of %s\n"
        !checked
        (100.0 *. (1.0 -. tolerance))
        baseline_path
  end

(* The lowered kernel is a pure optimization of the full sweep: it must
   never lose to the brute-force reference it replaces, on the same
   machine, in the same run. Unlike the warn-only baseline comparison
   (cross-machine, cross-run), this same-run relative gate is immune to
   host speed, so bench-smoke fails hard on it. *)
let lowered_gate results =
  let slower =
    List.filter (fun r -> r.br_lowered_cps < r.br_brute_cps) results
  in
  List.iter
    (fun r ->
      Printf.printf
        "KERNEL GATE FAILURE: %s slower under lowered than brute \
         (%.1f vs %.1f cycles/s)\n"
        r.br_id r.br_lowered_cps r.br_brute_cps)
    slower;
  if slower = [] then
    Printf.printf
      "kernel gate: lowered >= brute-force on all %d designs\n"
      (List.length results);
  slower = []

(* The dirty variant must be a pure win over the plain lowered kernel.
   On designs where it cannot help (SEQ64's single closure runs every
   settle) the two kernels do identical work and the comparison is all
   timer noise, so the gate compares the two kernels' best-batch
   ceilings (see [sim_best_batch_cps]) with a small tolerance for the
   residual jitter. The IDLE64 event-kernel bar is strict — that is
   the design the dirty worklist exists for, and its expected margin
   is large. *)
let dirty_tolerance = 0.95

let dirty_gate results =
  let slower =
    List.filter (fun r -> r.br_dirty_ratio < dirty_tolerance) results
  in
  List.iter
    (fun r ->
      Printf.printf
        "KERNEL GATE FAILURE: %s slower under lowered-dirty than plain \
         lowered (window ratio %.3f, tolerance %.2f)\n"
        r.br_id r.br_dirty_ratio dirty_tolerance)
    slower;
  let idle_ok =
    List.for_all
      (fun r -> r.br_id <> "IDLE64" || r.br_ldirty_cps >= r.br_event_cps)
      results
  in
  if not idle_ok then
    List.iter
      (fun r ->
        if r.br_id = "IDLE64" then
          Printf.printf
            "KERNEL GATE FAILURE: IDLE64 slower under lowered-dirty than \
             event-driven (%.1f vs %.1f cycles/s)\n"
            r.br_ldirty_cps r.br_event_cps)
      results;
  if slower = [] && idle_ok then
    Printf.printf
      "kernel gate: lowered-dirty >= lowered on all %d designs, >= event \
       on IDLE64\n"
      (List.length results);
  slower = [] && idle_ok

let run_json_bench path baseline =
  let results = List.map bench_one (bench_designs ()) in
  let lowerings = List.map lowering_bench_one (bench_designs ()) in
  let bits = bits_benches () in
  let lookup = signal_lookup_bench () in
  let telem = telemetry_benches () in
  let overheads = telemetry_overhead_benches () in
  let campaigns = campaign_benches () in
  let json =
    json_of_results results lowerings bits lookup telem overheads campaigns
  in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "%-8s %-10s %12s %14s %14s %14s %14s %8s %8s %-13s\n" "design"
    "top" "parse/s" "event cyc/s" "brute cyc/s" "lowered cyc/s"
    "ldirty cyc/s" "lo/bf" "ld/bf" "auto";
  List.iter
    (fun r ->
      Printf.printf
        "%-8s %-10s %12.1f %14.1f %14.1f %14.1f %14.1f %7.2fx %7.2fx %-13s\n"
        r.br_id r.br_top r.br_parse_per_sec r.br_event_cps r.br_brute_cps
        r.br_lowered_cps r.br_ldirty_cps
        (r.br_lowered_cps /. r.br_brute_cps)
        (r.br_ldirty_cps /. r.br_brute_cps)
        r.br_auto_kernel)
    results;
  Printf.printf "\n%-8s %12s %8s %10s %8s %8s %8s %8s %6s\n" "design"
    "compile ms" "nodes" "closures" "fused" "imm" "boxed" "seq" "dirty";
  List.iter
    (fun l ->
      Printf.printf "%-8s %12.3f %8d %10d %8d %8d %8d %8d %6b\n" l.lo_design
        l.lo_compile_ms l.lo_nodes l.lo_closures l.lo_fused l.lo_imm
        l.lo_boxed l.lo_seq l.lo_dirty)
    lowerings;
  Printf.printf "\n%-14s %8s %16s\n" "bits op" "width" "ops/s";
  List.iter
    (fun b ->
      Printf.printf "%-14s %8d %16.1f\n" b.bb_op b.bb_width b.bb_ops_per_sec)
    bits;
  Printf.printf
    "\nsignal lookup: hashtbl %.1f/s, interned array %.1f/s (%.1fx)\n"
    lookup.lb_hashtbl_per_sec lookup.lb_array_per_sec
    (lookup.lb_array_per_sec /. lookup.lb_hashtbl_per_sec);
  Printf.printf "\n%-8s %10s %12s %10s %10s %10s %9s\n" "design" "settles"
    "node rnds" "evaluated" "eff %" "bus pub" "bus drop";
  List.iter
    (fun t ->
      Printf.printf "%-8s %10d %12d %10d %9.1f%% %10d %9d\n" t.ts_design
        t.ts_settles t.ts_node_rounds t.ts_nodes_evaluated
        (100.0 *. t.ts_efficiency) t.ts_bus_published t.ts_bus_dropped)
    telem;
  Printf.printf "\n%-8s %16s %16s %10s %16s %10s\n" "design"
    "cyc/s telem off" "cyc/s telem on" "overhead" "cyc/s trace on"
    "tr ovhd";
  List.iter
    (fun o ->
      Printf.printf "%-8s %16.1f %16.1f %9.1f%% %16.1f %9.1f%%\n" o.to_design
        o.to_cps_off o.to_cps_on o.to_overhead_pct o.to_cps_trace
        o.to_trace_overhead_pct)
    overheads;
  Printf.printf "\n%-8s %10s %10s %14s %12s %9s\n" "domains" "wall s"
    "jobs/s" "cycles/s" "util" "speedup";
  List.iter
    (fun c ->
      Printf.printf "%-8d %10.4f %10.1f %14.1f %11.1f%% %8.2fx\n" c.cb_domains
        c.cb_wall c.cb_jobs_per_sec c.cb_cycles_per_sec
        (100.0 *. c.cb_utilization) c.cb_speedup)
    campaigns;
  Printf.printf "\nwrote %s\n" path;
  (match baseline with
  | None -> ()
  | Some baseline_path ->
      let current =
        List.map (fun r -> (r.br_id, r.br_event_cps)) results
        @ List.map (fun r -> (r.br_id ^ "@lowered", r.br_lowered_cps)) results
        @ List.map
            (fun r -> (r.br_id ^ "@lowered-dirty", r.br_ldirty_cps))
            results
        @ List.map
            (fun b -> (Printf.sprintf "%s@%d" b.bb_op b.bb_width, b.bb_ops_per_sec))
            bits
        @ [ ("signal_lookup_array", lookup.lb_array_per_sec) ]
      in
      compare_to_baseline ~current ~baseline_path);
  let gate_ok = lowered_gate results in
  let dirty_ok = dirty_gate results in
  if not (gate_ok && dirty_ok) then exit 1

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let microbench () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let d2 = Option.get (Registry.find "D2") in
  let d2_design = Bug.design_of d2 ~buggy:true in
  let parse_test =
    Test.make ~name:"parse grayscale"
      (Staged.stage (fun () ->
           ignore (Fpga_hdl.Parser.parse_design d2.Bug.buggy_src)))
  in
  let elaborate_test =
    Test.make ~name:"elaborate grayscale"
      (Staged.stage (fun () ->
           ignore (Fpga_sim.Elaborate.elaborate d2_design ~top:"grayscale")))
  in
  let simulate_test =
    Test.make ~name:"simulate grayscale 100 cycles"
      (Staged.stage (fun () ->
           let sim = Fpga_sim.Testbench.of_design ~top:"grayscale" d2_design in
           for i = 0 to 99 do
             List.iter
               (fun (n, v) -> Fpga_sim.Simulator.set_input sim n v)
               (d2.Bug.stimulus i);
             Fpga_sim.Simulator.step sim
           done))
  in
  let m = Option.get (Fpga_hdl.Ast.find_module d2_design "grayscale") in
  let losscheck_static_test =
    Test.make ~name:"losscheck static analysis"
      (Staged.stage (fun () ->
           let spec = Option.get d2.Bug.loss_spec in
           ignore (Fpga_debug.Losscheck.analyze spec m)))
  in
  let fsm_detect_test =
    Test.make ~name:"fsm detection"
      (Staged.stage (fun () -> ignore (Fpga_analysis.Fsm_detect.detect m)))
  in
  let instrument_test =
    Test.make ~name:"full recipe instrumentation"
      (Staged.stage (fun () -> ignore (Recipe.apply ~buffer_depth:1024 d2)))
  in
  (* scaling: simulated cycles over generated pipelines of growing depth *)
  let pipeline_src n =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "module pipe (input clk, input [7:0] d, output [7:0] q);\n";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf "  reg [7:0] s%d;\n" i)
    done;
    Buffer.add_string buf (Printf.sprintf "  assign q = s%d;\n" n);
    Buffer.add_string buf "  always @(posedge clk) begin\n    s1 <= d;\n";
    for i = 2 to n do
      Buffer.add_string buf (Printf.sprintf "    s%d <= s%d + 8'd1;\n" i (i - 1))
    done;
    Buffer.add_string buf "  end\nendmodule\n";
    Buffer.contents buf
  in
  let scaling_tests =
    List.map
      (fun n ->
        let design = Fpga_hdl.Parser.parse_design (pipeline_src n) in
        Test.make ~name:(Printf.sprintf "simulate %d-stage pipeline, 50 cycles" n)
          (Staged.stage (fun () ->
               let sim = Fpga_sim.Testbench.of_design ~top:"pipe" design in
               for i = 0 to 49 do
                 Fpga_sim.Simulator.set_input_int sim "d" (i land 0xFF);
                 Fpga_sim.Simulator.step sim
               done)))
      [ 10; 50; 100 ]
  in
  let tests =
    [
      parse_test; elaborate_test; simulate_test; losscheck_static_test;
      fsm_detect_test; instrument_test;
    ]
    @ scaling_tests
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
    Benchmark.all cfg [ clock ] test
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              clock raw
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

(* [--json PATH] switches to the machine-readable micro-benchmark,
   optionally diffed against a checked-in [--baseline PATH]; everything
   else runs the full evaluation harness. *)
let json_path () =
  let rec go = function
    | "--json" :: path :: _ when path <> "--baseline" -> Some path
    | "--json" :: _ -> Some "BENCH.json"
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let baseline_path () =
  let rec go = function
    | "--baseline" :: path :: _ -> Some path
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let () =
  match json_path () with
  | Some path -> run_json_bench path (baseline_path ())
  | None ->
      Report.table1 ();
      Report.table2 ();
      Report.extended_testbed ();
      Report.figure2 ();
      Report.figure3 ();
      Report.effectiveness ();
      Report.frequency ();
      Report.ablations ();
      (match Sys.getenv_opt "SKIP_MICROBENCH" with
      | Some _ -> print_endline "\n(micro-benchmarks skipped)"
      | None -> microbench ());
      print_endline "\nDone. See EXPERIMENTS.md for the paper-vs-measured record."
