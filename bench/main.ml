(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation from the implementation, then runs Bechamel
   micro-benchmarks of the substrate. Sections:

     Table 1    - bug study classification
     Table 2    - testbed of reproducible bugs, symptoms, helpful tools
     Figure 2   - SignalCat + monitor resource overhead vs. buffer size
     Figure 3   - LossCheck overhead normalized to platform capacity
     6.3        - tool effectiveness (localization, generated code, FSM
                  detection accuracy, false-positive filtering)
     6.4        - frequency closure before/after instrumentation
     micro      - Bechamel benchmarks of parser/simulator/analyses

   With [--json PATH] the harness instead runs the machine-readable
   micro-benchmark used by CI to track the perf trajectory across PRs:
   parse / elaborate / simulate throughput over several testbed designs
   plus a synthetic low-activity design, for both simulator kernels. *)

module Report = Fpga_report.Report
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Recipe = Fpga_testbed.Recipe
module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let header = Report.header

(* ------------------------------------------------------------------ *)
(* Machine-readable micro-benchmark (--json)                           *)
(* ------------------------------------------------------------------ *)

type bench_design = {
  bd_id : string;
  bd_top : string;
  bd_src : string;
  bd_stim : Fpga_sim.Testbench.stimulus;
}

(* A deep pipeline fed a constant input: after it fills, no signal
   changes, so the event-driven kernel's dirty set runs empty. This is
   the low-activity design the kernel is meant to win on. *)
let idle_design_src stages =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "module idle (input clk, input [7:0] d, output [7:0] q);\n";
  for i = 1 to stages do
    Buffer.add_string buf (Printf.sprintf "  reg [7:0] r%d;\n" i);
    Buffer.add_string buf (Printf.sprintf "  wire [7:0] w%d;\n" i)
  done;
  Buffer.add_string buf "  assign w1 = r1 + 8'd1;\n";
  for i = 2 to stages do
    Buffer.add_string buf
      (Printf.sprintf "  assign w%d = w%d ^ r%d;\n" i (i - 1) i)
  done;
  Buffer.add_string buf (Printf.sprintf "  assign q = w%d;\n" stages);
  Buffer.add_string buf "  always @(posedge clk) begin\n    r1 <= d;\n";
  for i = 2 to stages do
    Buffer.add_string buf (Printf.sprintf "    r%d <= r%d;\n" i (i - 1))
  done;
  Buffer.add_string buf "  end\nendmodule\n";
  Buffer.contents buf

let bench_designs () =
  let of_bug id =
    let bug = Option.get (Registry.find id) in
    {
      bd_id = id;
      bd_top = bug.Bug.top;
      bd_src = bug.Bug.buggy_src;
      bd_stim = bug.Bug.stimulus;
    }
  in
  [
    of_bug "D2";  (* grayscale converter *)
    of_bug "D4";  (* frame FIFO *)
    of_bug "D8";  (* AXI-stream switch (packet router) *)
    {
      bd_id = "IDLE64";
      bd_top = "idle";
      bd_src = idle_design_src 64;
      bd_stim = Fpga_sim.Testbench.const_stimulus [ ("d", Bits.of_int ~width:8 42) ];
    };
  ]

(* Run [f] repeatedly until [min_elapsed] wall seconds accumulate and
   report iterations per second. *)
let runs_per_sec ?(min_elapsed = 0.2) f =
  let t0 = Unix.gettimeofday () in
  let n = ref 0 in
  while Unix.gettimeofday () -. t0 < min_elapsed do
    f ();
    incr n
  done;
  float_of_int !n /. (Unix.gettimeofday () -. t0)

(* Simulated cycles per wall second: repeatedly build a simulator and
   drive it with the design's stimulus, timing only the stepping loop. *)
let sim_cycles_per_sec ~kernel flat stim =
  let total_cycles = ref 0 and elapsed = ref 0.0 in
  while !elapsed < 0.3 do
    let sim = Simulator.create ~kernel flat in
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while !n < 2000 && not (Simulator.finished sim) do
      List.iter (fun (nm, v) -> Simulator.set_input sim nm v) (stim !n);
      Simulator.step sim;
      incr n
    done;
    elapsed := !elapsed +. (Unix.gettimeofday () -. t0);
    total_cycles := !total_cycles + !n
  done;
  float_of_int !total_cycles /. !elapsed

type bench_result = {
  br_id : string;
  br_top : string;
  br_parse_per_sec : float;
  br_elaborate_per_sec : float;
  br_event_cps : float;
  br_brute_cps : float;
}

let bench_one (d : bench_design) =
  let design = Fpga_hdl.Parser.parse_design d.bd_src in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:d.bd_top in
  {
    br_id = d.bd_id;
    br_top = d.bd_top;
    br_parse_per_sec =
      runs_per_sec (fun () -> ignore (Fpga_hdl.Parser.parse_design d.bd_src));
    br_elaborate_per_sec =
      runs_per_sec (fun () ->
          ignore (Fpga_sim.Elaborate.elaborate design ~top:d.bd_top));
    br_event_cps =
      sim_cycles_per_sec ~kernel:Simulator.Event_driven flat d.bd_stim;
    br_brute_cps =
      sim_cycles_per_sec ~kernel:Simulator.Brute_force flat d.bd_stim;
  }

let json_of_results results =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"schema\": \"fpga-debug-bench/1\",\n";
  Buffer.add_string buf "  \"designs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"id\": %S, \"top\": %S, \"parse_per_sec\": %.1f, \
            \"elaborate_per_sec\": %.1f, \"sim_cycles_per_sec_event\": \
            %.1f, \"sim_cycles_per_sec_brute\": %.1f, \"speedup\": %.2f}%s\n"
           r.br_id r.br_top r.br_parse_per_sec r.br_elaborate_per_sec
           r.br_event_cps r.br_brute_cps
           (r.br_event_cps /. r.br_brute_cps)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let run_json_bench path =
  let results = List.map bench_one (bench_designs ()) in
  let json = json_of_results results in
  let oc = open_out path in
  output_string oc json;
  close_out oc;
  Printf.printf "%-8s %-12s %14s %14s %16s %16s %9s\n" "design" "top"
    "parse/s" "elab/s" "event cyc/s" "brute cyc/s" "speedup";
  List.iter
    (fun r ->
      Printf.printf "%-8s %-12s %14.1f %14.1f %16.1f %16.1f %8.2fx\n" r.br_id
        r.br_top r.br_parse_per_sec r.br_elaborate_per_sec r.br_event_cps
        r.br_brute_cps
        (r.br_event_cps /. r.br_brute_cps))
    results;
  Printf.printf "\nwrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let microbench () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let d2 = Option.get (Registry.find "D2") in
  let d2_design = Bug.design_of d2 ~buggy:true in
  let parse_test =
    Test.make ~name:"parse grayscale"
      (Staged.stage (fun () ->
           ignore (Fpga_hdl.Parser.parse_design d2.Bug.buggy_src)))
  in
  let elaborate_test =
    Test.make ~name:"elaborate grayscale"
      (Staged.stage (fun () ->
           ignore (Fpga_sim.Elaborate.elaborate d2_design ~top:"grayscale")))
  in
  let simulate_test =
    Test.make ~name:"simulate grayscale 100 cycles"
      (Staged.stage (fun () ->
           let sim = Fpga_sim.Testbench.of_design ~top:"grayscale" d2_design in
           for i = 0 to 99 do
             List.iter
               (fun (n, v) -> Fpga_sim.Simulator.set_input sim n v)
               (d2.Bug.stimulus i);
             Fpga_sim.Simulator.step sim
           done))
  in
  let m = Option.get (Fpga_hdl.Ast.find_module d2_design "grayscale") in
  let losscheck_static_test =
    Test.make ~name:"losscheck static analysis"
      (Staged.stage (fun () ->
           let spec = Option.get d2.Bug.loss_spec in
           ignore (Fpga_debug.Losscheck.analyze spec m)))
  in
  let fsm_detect_test =
    Test.make ~name:"fsm detection"
      (Staged.stage (fun () -> ignore (Fpga_analysis.Fsm_detect.detect m)))
  in
  let instrument_test =
    Test.make ~name:"full recipe instrumentation"
      (Staged.stage (fun () -> ignore (Recipe.apply ~buffer_depth:1024 d2)))
  in
  (* scaling: simulated cycles over generated pipelines of growing depth *)
  let pipeline_src n =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "module pipe (input clk, input [7:0] d, output [7:0] q);\n";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf "  reg [7:0] s%d;\n" i)
    done;
    Buffer.add_string buf (Printf.sprintf "  assign q = s%d;\n" n);
    Buffer.add_string buf "  always @(posedge clk) begin\n    s1 <= d;\n";
    for i = 2 to n do
      Buffer.add_string buf (Printf.sprintf "    s%d <= s%d + 8'd1;\n" i (i - 1))
    done;
    Buffer.add_string buf "  end\nendmodule\n";
    Buffer.contents buf
  in
  let scaling_tests =
    List.map
      (fun n ->
        let design = Fpga_hdl.Parser.parse_design (pipeline_src n) in
        Test.make ~name:(Printf.sprintf "simulate %d-stage pipeline, 50 cycles" n)
          (Staged.stage (fun () ->
               let sim = Fpga_sim.Testbench.of_design ~top:"pipe" design in
               for i = 0 to 49 do
                 Fpga_sim.Simulator.set_input_int sim "d" (i land 0xFF);
                 Fpga_sim.Simulator.step sim
               done)))
      [ 10; 50; 100 ]
  in
  let tests =
    [
      parse_test; elaborate_test; simulate_test; losscheck_static_test;
      fsm_detect_test; instrument_test;
    ]
    @ scaling_tests
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
    Benchmark.all cfg [ clock ] test
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              clock raw
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

(* [--json PATH] switches to the machine-readable micro-benchmark;
   everything else runs the full evaluation harness. *)
let json_path () =
  let rec go = function
    | "--json" :: path :: _ -> Some path
    | "--json" :: [] -> Some "BENCH.json"
    | _ :: rest -> go rest
    | [] -> None
  in
  go (Array.to_list Sys.argv)

let () =
  match json_path () with
  | Some path -> run_json_bench path
  | None ->
      Report.table1 ();
      Report.table2 ();
      Report.extended_testbed ();
      Report.figure2 ();
      Report.figure3 ();
      Report.effectiveness ();
      Report.frequency ();
      Report.ablations ();
      (match Sys.getenv_opt "SKIP_MICROBENCH" with
      | Some _ -> print_endline "\n(micro-benchmarks skipped)"
      | None -> microbench ());
      print_endline "\nDone. See EXPERIMENTS.md for the paper-vs-measured record."
