(* FSM Monitor (section 4.2): detects FSM state variables statically and
   instruments the design to emit a state-transition trace through
   SignalCat. Developers can patch detection mistakes by forcing
   variables in ([extra]) or out ([exclude]). *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Fsm_detect = Fpga_analysis.Fsm_detect
module Telemetry = Fpga_telemetry.Telemetry

type t = { module_name : string; fsms : Fsm_detect.fsm list }

type transition = {
  cycle : int;
  state_var : string;
  from_value : int;
  to_value : int;
  from_name : string;
  to_name : string;
}

let tag = "FSM"

let plan ?(extra = []) ?(exclude = []) (m : Ast.module_def) : t =
  let detected = Fsm_detect.detect m in
  let detected =
    List.filter
      (fun (f : Fsm_detect.fsm) -> not (List.mem f.Fsm_detect.state_var exclude))
      detected
  in
  let forced =
    List.filter_map
      (fun name ->
        if
          List.exists
            (fun (f : Fsm_detect.fsm) -> f.Fsm_detect.state_var = name)
            detected
        then None
        else
          match Ast.find_decl m name with
          | Some d ->
              Some
                {
                  Fsm_detect.state_var = name;
                  width = d.Ast.width;
                  states = [];
                  state_names =
                    List.filter_map
                      (fun (pname, v) ->
                        if Bits.width v = d.Ast.width then Some (v, pname)
                        else None)
                      m.Ast.localparams;
                }
          | None -> None)
      extra
  in
  { module_name = m.Ast.mod_name; fsms = detected @ forced }

let prev_name fsm =
  "_fsmmon_prev_" ^ Instrument.sanitize fsm.Fsm_detect.state_var

(* One shadow register per FSM plus a $display on every transition; the
   display then follows the SignalCat path in either execution mode. *)
let instrument (t : t) (m : Ast.module_def) : Ast.module_def =
  if t.fsms = [] then m
  else (
    let clk = Instrument.find_clock m in
    let decls =
      List.map
        (fun (f : Fsm_detect.fsm) ->
          {
            Ast.name = prev_name f;
            kind = Ast.Reg;
            width = f.Fsm_detect.width;
            depth = None;
            init = None;
          })
        t.fsms
    in
    let stmts =
      List.concat_map
        (fun (f : Fsm_detect.fsm) ->
          let sv = Ast.Ident f.Fsm_detect.state_var in
          let prev = Ast.Ident (prev_name f) in
          [
            Ast.Nonblocking (Ast.Lident (prev_name f), sv);
            Ast.If
              ( Ast.Binop (Ast.Neq, prev, sv),
                [
                  Ast.Display
                    ( Printf.sprintf "[%s] %s: %%d -> %%d" tag
                        f.Fsm_detect.state_var,
                      [ prev; sv ] );
                ],
                [] );
          ])
        t.fsms
    in
    Instrument.add_logic m ~decls
      ~always:[ { Ast.sens = Ast.Posedge clk; stmts } ])

(* Rebuild the transition trace from the unified log. The [decode_]
   variant is the pure parser shared by every consumer; the public
   {!transitions} additionally publishes each decoded transition onto
   the telemetry bus (exactly once per call, never from the internal
   uses in {!final_states}). *)
let decode_transitions (t : t) (log : (int * string) list) : transition list =
  Instrument.tagged_lines tag log
  |> List.filter_map (fun (cycle, payload) ->
         match String.index_opt payload ':' with
         | None -> None
         | Some i -> (
             let state_var = String.sub payload 0 i in
             let rest =
               String.sub payload (i + 2) (String.length payload - i - 2)
             in
             match String.split_on_char ' ' rest with
             | [ a; "->"; b ] -> (
                 match
                   ( int_of_string_opt a,
                     int_of_string_opt b,
                     List.find_opt
                       (fun (f : Fsm_detect.fsm) ->
                         f.Fsm_detect.state_var = state_var)
                       t.fsms )
                 with
                 | Some from_value, Some to_value, Some f ->
                     let name v =
                       Fsm_detect.state_name f
                         (Bits.of_int ~width:f.Fsm_detect.width v)
                     in
                     Some
                       {
                         cycle;
                         state_var;
                         from_value;
                         to_value;
                         from_name = name from_value;
                         to_name = name to_value;
                       }
                 | _ -> None)
             | _ -> None))

let transitions_counter = Telemetry.Counter.make "fsm_monitor.transitions"

let transitions (t : t) (log : (int * string) list) : transition list =
  let trans = decode_transitions t log in
  if Telemetry.enabled () then
    List.iter
      (fun tr ->
        Telemetry.Counter.incr transitions_counter;
        Telemetry.Bus.publish (Telemetry.bus ())
          {
            Telemetry.ev_cycle = tr.cycle;
            ev_source = "fsm_monitor";
            ev_kind = "transition";
            ev_data =
              [
                ("state_var", tr.state_var);
                ("from", tr.from_name);
                ("to", tr.to_name);
              ];
          })
      trans;
  trans

(* The last observed state of every monitored FSM: the "where is each
   state machine stuck" question of the grayscale case study. *)
let final_states (t : t) (log : (int * string) list) : (string * string) list =
  let trans = decode_transitions t log in
  List.filter_map
    (fun (f : Fsm_detect.fsm) ->
      let mine =
        List.filter (fun tr -> tr.state_var = f.Fsm_detect.state_var) trans
      in
      match List.rev mine with
      | [] -> None
      | last :: _ -> Some (f.Fsm_detect.state_var, last.to_name))
    t.fsms

let transition_to_string tr =
  Printf.sprintf "cycle %d: %s %s -> %s" tr.cycle tr.state_var tr.from_name
    tr.to_name
