(* Dependency Monitor (section 4.3): statically computes the registers a
   target variable depends on within the previous k cycles (control and
   data dependencies, through IP models), then instruments the design to
   log every update to any register in the chain. Backtracing the
   resulting trace localizes the origin of an incorrect output. *)

module Ast = Fpga_hdl.Ast
module Deps = Fpga_analysis.Deps
module Ip_models = Fpga_analysis.Ip_models
module Telemetry = Fpga_telemetry.Telemetry

type plan = {
  module_name : string;
  target : string;
  cycles : int;
  chain : string list;  (* dependency chain, including the target *)
  monitored : string list;  (* chain members that are registers *)
}

type update = { cycle : int; signal : string; value : int }

let tag = "DEP"

(* Edges induced by a user-module instance: every output net depends on
   the reads of every input actual that can reach it inside the child.
   One level of hierarchy suffices for the testbed; deeper nesting can
   be handled by flattening first. *)
let child_instance_edges (design : Ast.design option) (i : Ast.instance) :
    Deps.edge list =
  match design with
  | None -> []
  | Some d -> (
      match Ast.find_module d i.Ast.target with
      | None -> []
      | Some child ->
          let g = Deps.of_module child in
          let is_seq =
            List.exists
              (fun (a : Ast.always) -> a.Ast.sens <> Ast.Star)
              child.Ast.always_blocks
          in
          let conns = i.Ast.conns in
          List.concat_map
            (fun (c : Ast.connection) ->
              match (Ast.find_port child c.Ast.formal, c.Ast.actual) with
              | Some { Ast.dir = Ast.Output; _ }, Ast.Ident out_net ->
                  let reaches =
                    Deps.backward_closure g ~target:c.Ast.formal ~cycles:8
                  in
                  List.concat_map
                    (fun (c' : Ast.connection) ->
                      match Ast.find_port child c'.Ast.formal with
                      | Some { Ast.dir = Ast.Input; _ }
                        when List.mem c'.Ast.formal reaches ->
                          List.map
                            (fun src ->
                              {
                                Deps.src;
                                dst = out_net;
                                kind = Deps.Data;
                                timing =
                                  (if is_seq then Deps.Sequential
                                   else Deps.Combinational);
                                cond = Ast.true_expr;
                              })
                            (Ast.expr_reads c'.Ast.actual)
                      | _ -> [])
                    conns
              | _ -> [])
            conns)

let analyze ?design ?(data_only = false) ?(slice_precise = false) ~target
    ~cycles (m : Ast.module_def) : plan =
  if Ast.signal_width m target = None then
    Instrument.err "Dependency Monitor: unknown target %s" target;
  let ip_edges =
    List.concat_map
      (fun (i : Ast.instance) ->
        if Ast.is_builtin_ip i.Ast.target then Ip_models.dependency_edges i
        else child_instance_edges design i)
      m.Ast.instances
  in
  let g = Deps.of_module ~ip_edges m in
  let chain =
    if slice_precise then (
      (* partial assignments split logically (section 4.3); IP- and
         child-induced edges stay name-level, so union the two views *)
      let local = Deps.backward_closure_sliced ~data_only m ~target ~cycles in
      let through_ips =
        List.filter_map
          (fun (e : Deps.edge) ->
            if List.mem e.Deps.dst local then Some e.Deps.src else None)
          ip_edges
      in
      Ast.dedup (local @ through_ips))
    else Deps.backward_closure ~data_only g ~target ~cycles
  in
  (* Monitor registers and ports only; skip memories, whose updates are
     tracked through the registers written from them. *)
  let monitored =
    List.filter
      (fun name ->
        match Ast.find_decl m name with
        | Some { Ast.depth = Some _; _ } -> false
        | Some _ -> true
        | None -> Ast.find_port m name <> None)
      chain
  in
  { module_name = m.Ast.mod_name; target; cycles; chain; monitored }

let prev_name name = "_depmon_prev_" ^ Instrument.sanitize name

let instrument (p : plan) (m : Ast.module_def) : Ast.module_def =
  if p.monitored = [] then m
  else (
    let clk = Instrument.find_clock m in
    let width_of name =
      match Ast.signal_width m name with
      | Some w -> w
      | None -> Instrument.err "Dependency Monitor: unknown signal %s" name
    in
    let watched = List.filter (fun n -> n <> clk) p.monitored in
    let decls =
      List.map
        (fun name ->
          {
            Ast.name = prev_name name;
            kind = Ast.Reg;
            width = width_of name;
            depth = None;
            init = None;
          })
        watched
    in
    let stmts =
      List.concat_map
        (fun name ->
          let v = Ast.Ident name and prev = Ast.Ident (prev_name name) in
          [
            Ast.Nonblocking (Ast.Lident (prev_name name), v);
            Ast.If
              ( Ast.Binop (Ast.Neq, prev, v),
                [ Ast.Display (Printf.sprintf "[%s] %s = %%d" tag name, [ v ]) ],
                [] );
          ])
        watched
    in
    Instrument.add_logic m ~decls
      ~always:[ { Ast.sens = Ast.Posedge clk; stmts } ])

(* The update trace recovered from the unified log. Note the logged
   value is the signal's *new* value: the display fires in the cycle the
   change is observed. [decode_updates] is the pure parser; the public
   {!updates} also publishes each update onto the telemetry bus (once
   per call — {!backtrace} decodes without re-publishing). *)
let decode_updates (log : (int * string) list) : update list =
  Instrument.tagged_lines tag log
  |> List.filter_map (fun (cycle, payload) ->
         match String.split_on_char '=' payload with
         | [ name; value ] -> (
             match int_of_string_opt (String.trim value) with
             | Some v -> Some { cycle; signal = String.trim name; value = v }
             | None -> None)
         | _ -> None)

let updates_counter = Telemetry.Counter.make "dep_monitor.updates"

let updates (_p : plan) (log : (int * string) list) : update list =
  let us = decode_updates log in
  if Telemetry.enabled () then
    List.iter
      (fun u ->
        Telemetry.Counter.incr updates_counter;
        Telemetry.Bus.publish (Telemetry.bus ())
          {
            Telemetry.ev_cycle = u.cycle;
            ev_source = "dep_monitor";
            ev_kind = "update";
            ev_data =
              [ ("signal", u.signal); ("value", string_of_int u.value) ];
          })
      us;
  us

(* Backtrace helper: updates to chain members in the [k] cycles leading
   up to [at_cycle], newest first - what a developer inspects to find
   where a wrong value entered the chain. *)
let backtrace (p : plan) (log : (int * string) list) ~at_cycle : update list =
  decode_updates log
  |> List.filter (fun u ->
         u.cycle <= at_cycle && u.cycle >= at_cycle - p.cycles)
  |> List.sort (fun a b -> compare b.cycle a.cycle)

let update_to_string u =
  Printf.sprintf "cycle %d: %s = %d" u.cycle u.signal u.value
