(* LossCheck (section 4.5): precise localization of data loss.

   Given a Source, its valid signal, and a Sink, the static pass builds
   the table of propagation relations X ~>_sigma Y (through wires, IP
   models, and memories), finds the registers on a propagation sequence
   from Source to Sink, and instruments the design with shadow variables
   per such register R:

     A(R) - R was assigned,           V(R) - R was assigned valid data,
     P(R) - R's value propagated on,  N(R) - R holds valid data that has
                                             not yet propagated.

   following Equations (1) and (2) of the paper:

     N(R)_k    = V(R)_{k-1} \/ (N(R)_{k-1} /\ ~P(R)_{k-1})
     Loss(R)_k = A(R)_k /\ ~P(R)_k /\ N(R)_k

   Memories are tracked with one needs-propagation bit per word, so a
   wrapped buffer-overflow write that lands on an unread word raises an
   alarm while normal FIFO traffic does not.

   False positives from intentional drops are filtered by running the
   instrumented design on passing ("ground truth") test programs and
   suppressing every register that alarms there (section 4.5.3). *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Path_constraint = Fpga_analysis.Path_constraint
module Simulator = Fpga_sim.Simulator
module Testbench = Fpga_sim.Testbench
module Telemetry = Fpga_telemetry.Telemetry

type spec = { source : string; valid : Ast.expr; sink : string }

type relation = { src : string; dst : string; cond : Ast.expr }

type plan = {
  module_name : string;
  spec : spec;
  relations : relation list;
  scalar_checks : string list;
  memory_checks : string list;
}

let tag = "LOSSCHECK"

(* ------------------------------------------------------------------ *)
(* Static analysis: effective propagation relations                    *)
(* ------------------------------------------------------------------ *)

(* Data reads of an expression: like [Ast.expr_reads] but memory/vector
   index expressions are routing, not data, so they are skipped. *)
let rec data_reads (e : Ast.expr) : string list =
  match e with
  | Ast.Const _ -> []
  | Ast.Ident n -> [ n ]
  | Ast.Index (n, _) -> [ n ]
  | Ast.Range (n, _, _) -> [ n ]
  | Ast.Unop (_, a) -> data_reads a
  | Ast.Binop (_, a, b) -> data_reads a @ data_reads b
  | Ast.Cond (c, a, b) -> ignore c; data_reads a @ data_reads b
  | Ast.Concat es -> List.concat_map data_reads es
  | Ast.Repeat (_, a) -> data_reads a

(* The first index expression with which memory [mem] is read in [e]. *)
let rec mem_read_index (mem : string) (e : Ast.expr) : Ast.expr option =
  match e with
  | Ast.Index (n, i) when n = mem -> Some i
  | Ast.Const _ | Ast.Ident _ | Ast.Range _ | Ast.Index _ -> None
  | Ast.Unop (_, a) | Ast.Repeat (_, a) -> mem_read_index mem a
  | Ast.Binop (_, a, b) -> (
      match mem_read_index mem a with
      | Some i -> Some i
      | None -> mem_read_index mem b)
  | Ast.Cond (c, a, b) -> (
      match mem_read_index mem c with
      | Some i -> Some i
      | None -> (
          match mem_read_index mem a with
          | Some i -> Some i
          | None -> mem_read_index mem b))
  | Ast.Concat es -> List.find_map (mem_read_index mem) es

type node_class = Nreg | Nmem | Ninput | Nip_output | Nwire | Nsink

let classify (m : Ast.module_def) ~(spec : spec) ~ip_outputs name : node_class =
  if name = spec.sink then Nsink
  else
    match Ast.find_decl m name with
    | Some { Ast.kind = Ast.Reg; depth = None; _ } -> Nreg
    | Some { Ast.depth = Some _; _ } -> Nmem
    | Some { Ast.kind = Ast.Wire; _ } ->
        if List.mem name ip_outputs then Nip_output else Nwire
    | None -> (
        match Ast.find_port m name with
        | Some { Ast.dir = Ast.Input; _ } -> Ninput
        | Some _ -> if List.mem name ip_outputs then Nip_output else Nwire
        | None -> Nwire)

(* IP output nets of the module's instances. *)
let ip_output_nets (m : Ast.module_def) : string list =
  List.concat_map
    (fun (i : Ast.instance) ->
      List.filter_map
        (fun (c : Ast.connection) ->
          let is_out =
            match i.Ast.target with
            | "scfifo" -> List.mem c.Ast.formal [ "q"; "empty"; "full"; "usedw" ]
            | "dcfifo" ->
                List.mem c.Ast.formal
                  [ "q"; "rdempty"; "wrfull"; "wrusedw"; "rdusedw" ]
            | "altsyncram" -> List.mem c.Ast.formal [ "q_a"; "q_b" ]
            | _ -> false
          in
          match (is_out, c.Ast.actual) with
          | true, Ast.Ident n -> Some n
          | _ -> None)
        i.Ast.conns)
    m.Ast.instances

(* Combinational definitions of wires: continuous assigns plus
   always-star assignments, with their path constraints. *)
let wire_defs (m : Ast.module_def) : (string * (Ast.expr * Ast.expr)) list =
  let from_assigns =
    List.filter_map
      (fun (l, e) ->
        match l with Ast.Lident w -> Some (w, (e, Ast.true_expr)) | _ -> None)
      m.Ast.assigns
  in
  let from_comb =
    List.concat_map
      (fun (a : Ast.always) ->
        match a.Ast.sens with
        | Ast.Star ->
            List.filter_map
              (fun (l, e, cond) ->
                match l with Ast.Lident w -> Some (w, (e, cond)) | _ -> None)
              (Path_constraint.assignments_of_always a)
        | _ -> [])
      m.Ast.always_blocks
  in
  from_assigns @ from_comb

(* Expand a read through combinational wires down to storage nodes
   (registers, memories, inputs, IP outputs) or the sink. *)
let expand m ~spec ~ip_outputs ~defs name : (string * Ast.expr) list =
  let rec go seen name cond =
    if List.mem name seen then []
    else
      match classify m ~spec ~ip_outputs name with
      | Nreg | Nmem | Ninput | Nip_output | Nsink -> [ (name, cond) ]
      | Nwire ->
          let my_defs = List.filter (fun (w, _) -> w = name) defs in
          if my_defs = [] then [ (name, cond) ]
          else
            List.concat_map
              (fun (_, (e, dcond)) ->
                List.concat_map
                  (fun r -> go (name :: seen) r (Ast.and_expr cond dcond))
                  (Ast.dedup (data_reads e)))
              my_defs
  in
  go [] name Ast.true_expr

(* Sequential assignments of the module with their path constraints. *)
let seq_assignments (m : Ast.module_def) =
  List.concat_map
    (fun (a : Ast.always) ->
      match a.Ast.sens with
      | Ast.Posedge _ | Ast.Negedge _ -> Path_constraint.assignments_of_always a
      | Ast.Star -> [])
    m.Ast.always_blocks

let effective_relations ?design (m : Ast.module_def) (spec : spec) :
    relation list =
  let ip_outputs = ip_output_nets m in
  let defs = wire_defs m in
  let expand = expand m ~spec ~ip_outputs ~defs in
  let of_assignment (l, rhs, cond) =
    (* A write into a non-power-of-two memory with an out-of-range index
       is dropped (section 3.2.1 case 2): the data does NOT propagate,
       so the relation's condition carries an in-range conjunct. *)
    let cond =
      match l with
      | Ast.Lindex (n, wi) -> (
          match Ast.find_decl m n with
          | Some { Ast.depth = Some d; _ }
            when not (d > 0 && d land (d - 1) = 0) ->
              Ast.and_expr cond
                (Ast.Binop (Ast.Lt, wi, Ast.Const (Bits.of_int ~width:16 d)))
          | _ -> cond)
      | _ -> cond
    in
    let dsts = Ast.dedup (Ast.lvalue_bases l) in
    List.concat_map
      (fun dst ->
        List.concat_map
          (fun r ->
            List.map
              (fun (node, c) -> { src = node; dst; cond = Ast.and_expr cond c })
              (expand r))
          (Ast.dedup (data_reads rhs)))
      dsts
  in
  let seq = List.concat_map of_assignment (seq_assignments m) in
  (* relations into the sink when the sink is combinational *)
  let sink_defs = List.filter (fun (w, _) -> w = spec.sink) defs in
  let into_sink =
    List.concat_map
      (fun (_, (e, dcond)) ->
        List.concat_map
          (fun r ->
            List.map
              (fun (node, c) ->
                { src = node; dst = spec.sink; cond = Ast.and_expr dcond c })
              (expand r))
          (Ast.dedup (data_reads e)))
      sink_defs
  in
  (* IP models: data input ~>(wrreq & ~full) q output *)
  let ip =
    List.concat_map
      (fun (i : Ast.instance) ->
        let conn f =
          List.find_map
            (fun (c : Ast.connection) ->
              if c.Ast.formal = f then Some c.Ast.actual else None)
            i.Ast.conns
        in
        let fifo ~data ~wrreq ~full ~q =
          match conn q with
          | Some (Ast.Ident qn) ->
              let wr =
                match conn wrreq with Some e -> e | None -> Ast.true_expr
              in
              let gate =
                match conn full with
                | Some (Ast.Ident fn) ->
                    Ast.and_expr wr (Ast.not_expr (Ast.Ident fn))
                | _ -> wr
              in
              let srcs =
                match conn data with
                | Some e -> Ast.dedup (data_reads e)
                | None -> []
              in
              List.concat_map
                (fun r ->
                  List.map
                    (fun (node, c) ->
                      { src = node; dst = qn; cond = Ast.and_expr gate c })
                    (expand r))
                srcs
          | _ -> []
        in
        (* user-module instances (when the design is known): every
           output net conservatively receives every input's data *)
        let user_module child =
          let out_nets =
            List.filter_map
              (fun (c : Ast.connection) ->
                match (Ast.find_port child c.Ast.formal, c.Ast.actual) with
                | Some { Ast.dir = Ast.Output; _ }, Ast.Ident n -> Some n
                | _ -> None)
              i.Ast.conns
          in
          let in_srcs =
            List.concat_map
              (fun (c : Ast.connection) ->
                match Ast.find_port child c.Ast.formal with
                | Some { Ast.dir = Ast.Input; _ } ->
                    Ast.dedup (data_reads c.Ast.actual)
                | _ -> [])
              i.Ast.conns
          in
          List.concat_map
            (fun dst ->
              List.concat_map
                (fun r ->
                  List.map
                    (fun (node, c) -> { src = node; dst; cond = c })
                    (expand r))
                in_srcs)
            out_nets
        in
        match i.Ast.target with
        | "scfifo" -> fifo ~data:"data" ~wrreq:"wrreq" ~full:"full" ~q:"q"
        | "dcfifo" -> fifo ~data:"data" ~wrreq:"wrreq" ~full:"wrfull" ~q:"q"
        | "altsyncram" ->
            fifo ~data:"data_a" ~wrreq:"wren_a" ~full:"_none_" ~q:"q_a"
        | other -> (
            match design with
            | Some d -> (
                match Ast.find_module d other with
                | Some child -> user_module child
                | None -> [])
            | None -> []))
      m.Ast.instances
  in
  seq @ into_sink @ ip

(* Registers and memories on a propagation sequence source -> sink. *)
let sequence_nodes (relations : relation list) ~source ~sink : string list =
  let fwd = Hashtbl.create 16 and bwd = Hashtbl.create 16 in
  let rec reach tbl next n =
    if not (Hashtbl.mem tbl n) then (
      Hashtbl.replace tbl n ();
      List.iter (reach tbl next) (next n))
  in
  reach fwd
    (fun n ->
      List.filter_map (fun r -> if r.src = n then Some r.dst else None) relations)
    source;
  reach bwd
    (fun n ->
      List.filter_map (fun r -> if r.dst = n then Some r.src else None) relations)
    sink;
  Hashtbl.fold
    (fun n _ acc -> if Hashtbl.mem bwd n then n :: acc else acc)
    fwd []
  |> List.sort String.compare

let analyze ?design (spec : spec) (m : Ast.module_def) : plan =
  (match Ast.signal_width m spec.source with
  | None -> Instrument.err "LossCheck: unknown source %s" spec.source
  | Some _ -> ());
  let relations = effective_relations ?design m spec in
  let seq = sequence_nodes relations ~source:spec.source ~sink:spec.sink in
  let checks =
    List.filter (fun n -> n <> spec.source && n <> spec.sink) seq
  in
  let scalar_checks =
    List.filter
      (fun n ->
        match Ast.find_decl m n with
        | Some { Ast.kind = Ast.Reg; depth = None; _ } -> true
        | _ -> false)
      checks
  in
  let memory_checks =
    List.filter
      (fun n ->
        match Ast.find_decl m n with
        | Some { Ast.depth = Some _; _ } -> true
        | _ -> false)
      checks
  in
  { module_name = m.Ast.mod_name; spec; relations; scalar_checks; memory_checks }

(* ------------------------------------------------------------------ *)
(* Instrumentation                                                     *)
(* ------------------------------------------------------------------ *)

let a_name r = "_lc_a_" ^ Instrument.sanitize r
let v_name r = "_lc_v_" ^ Instrument.sanitize r
let p_name r = "_lc_p_" ^ Instrument.sanitize r
let n_name r = "_lc_n_" ^ Instrument.sanitize r
let nm_name mem = "_lc_nm_" ^ Instrument.sanitize mem

let loss_display r =
  Ast.Display (Printf.sprintf "[%s] potential data loss at %s" tag r, [])

(* Validity factor of reading [node] (already expanded to storage). *)
let validity_factor (plan : plan) ~rhs node extra_cond : Ast.expr =
  let base =
    if node = plan.spec.source then plan.spec.valid
    else if List.mem node plan.scalar_checks then Ast.Ident (n_name node)
    else if List.mem node plan.memory_checks then
      match mem_read_index node rhs with
      | Some i -> Ast.Index (nm_name node, i)
      | None -> Ast.false_expr
    else
      (* nodes off the tracked path (including the sink) contribute no
         validity; IP outputs are handled by the caller *)
      Ast.false_expr
  in
  Ast.and_expr extra_cond base

let validity_factor_with_ip (plan : plan) ~ip_outputs ~rhs node extra_cond =
  if List.mem node ip_outputs then Ast.and_expr extra_cond Ast.true_expr
  else validity_factor plan ~rhs node extra_cond

let instrument (plan : plan) (m : Ast.module_def) : Ast.module_def =
  if plan.scalar_checks = [] && plan.memory_checks = [] then m
  else (
    let clk = Instrument.find_clock m in
    let reset = Instrument.find_reset m in
    let ip_outputs = ip_output_nets m in
    let defs = wire_defs m in
    let expand = expand m ~spec:plan.spec ~ip_outputs ~defs in
    let assignments = seq_assignments m in
    let bit name = Ast.Ident name in
    (* --- scalar registers ------------------------------------------ *)
    let scalar_decls =
      List.concat_map
        (fun r ->
          List.map
            (fun name ->
              { Ast.name; kind = Ast.Reg; width = 1; depth = None; init = None })
            [ a_name r; v_name r; p_name r; n_name r ])
        plan.scalar_checks
    in
    let scalar_stmts =
      List.concat_map
        (fun r ->
          let my_assignments =
            List.filter (fun (l, _, _) -> Ast.lvalue_bases l = [ r ]) assignments
          in
          let a_expr =
            List.fold_left
              (fun acc (_, _, cond) -> Ast.or_expr acc cond)
              Ast.false_expr my_assignments
          in
          let v_expr =
            List.fold_left
              (fun acc (_, rhs, cond) ->
                let factors =
                  List.concat_map
                    (fun read ->
                      List.map
                        (fun (node, c) ->
                          validity_factor_with_ip plan ~ip_outputs ~rhs node c)
                        (expand read))
                    (Ast.dedup (data_reads rhs))
                in
                let valid_src =
                  List.fold_left Ast.or_expr Ast.false_expr factors
                in
                Ast.or_expr acc (Ast.and_expr cond valid_src))
              Ast.false_expr my_assignments
          in
          let p_expr =
            List.fold_left
              (fun acc (rel : relation) ->
                if rel.src = r then Ast.or_expr acc rel.cond else acc)
              Ast.false_expr plan.relations
          in
          let n_next =
            Ast.or_expr (bit (v_name r))
              (Ast.and_expr (bit (n_name r)) (Ast.not_expr (bit (p_name r))))
          in
          let n_update =
            match reset with
            | Some rst ->
                Ast.If
                  ( Ast.Ident rst,
                    [ Ast.Nonblocking (Ast.Lident (n_name r), Ast.false_expr) ],
                    [ Ast.Nonblocking (Ast.Lident (n_name r), n_next) ] )
            | None -> Ast.Nonblocking (Ast.Lident (n_name r), n_next)
          in
          [
            Ast.Nonblocking (Ast.Lident (a_name r), a_expr);
            Ast.Nonblocking (Ast.Lident (v_name r), v_expr);
            Ast.Nonblocking (Ast.Lident (p_name r), p_expr);
            n_update;
            Ast.If
              ( Ast.and_expr (bit (a_name r))
                  (Ast.and_expr
                     (Ast.not_expr (bit (p_name r)))
                     (bit (n_name r))),
                [ loss_display r ],
                [] );
          ])
        plan.scalar_checks
    in
    (* --- memories --------------------------------------------------- *)
    let mem_depth name =
      match Ast.find_decl m name with
      | Some { Ast.depth = Some d; _ } -> d
      | _ -> Instrument.err "LossCheck: %s is not a memory" name
    in
    let memory_decls =
      List.map
        (fun mem ->
          {
            Ast.name = nm_name mem;
            kind = Ast.Reg;
            width = 1;
            depth = Some (mem_depth mem);
            init = None;
          })
        plan.memory_checks
    in
    let memory_stmts =
      List.concat_map
        (fun mem ->
          (* writes: lvalue Lindex(mem, wi); reads: Index(mem, ri) in any
             assignment's rhs *)
          let writes =
            List.filter_map
              (fun (l, rhs, cond) ->
                match l with
                | Ast.Lindex (n, wi) when n = mem -> Some (wi, rhs, cond)
                | _ -> None)
              assignments
          in
          let comb_reads =
            List.filter_map
              (fun (l, e) ->
                ignore l;
                Option.map (fun i -> (i, Ast.true_expr)) (mem_read_index mem e))
              m.Ast.assigns
          in
          let seq_reads =
            List.filter_map
              (fun (_, rhs, cond) ->
                Option.map (fun i -> (i, cond)) (mem_read_index mem rhs))
              assignments
          in
          let reads = comb_reads @ seq_reads in
          let read_clears =
            List.map
              (fun (ri, cond) ->
                Ast.If
                  ( cond,
                    [
                      Ast.Nonblocking
                        (Ast.Lindex (nm_name mem, ri), Ast.false_expr);
                    ],
                    [] ))
              reads
          in
          let write_checks =
            List.map
              (fun (wi, rhs, cond) ->
                let consumed_now =
                  List.fold_left
                    (fun acc (ri, rcond) ->
                      Ast.or_expr acc
                        (Ast.and_expr rcond (Ast.Binop (Ast.Eq, ri, wi))))
                    Ast.false_expr reads
                in
                let v_write =
                  let factors =
                    List.concat_map
                      (fun read ->
                        List.map
                          (fun (node, c) ->
                            validity_factor_with_ip plan ~ip_outputs ~rhs node c)
                          (expand read))
                      (Ast.dedup (data_reads rhs))
                  in
                  List.fold_left Ast.or_expr Ast.false_expr factors
                in
                Ast.If
                  ( cond,
                    [
                      Ast.If
                        ( Ast.and_expr
                            (Ast.Index (nm_name mem, wi))
                            (Ast.not_expr consumed_now),
                          [ loss_display mem ],
                          [] );
                      Ast.Nonblocking
                        ( Ast.Lindex (nm_name mem, wi),
                          (* constant-fed writes still store data; treat
                             them as valid when no tracked source exists *)
                          (match v_write with
                          | Ast.Const _ -> v_write
                          | e -> e) );
                    ],
                    [] ))
              writes
          in
          read_clears @ write_checks)
        plan.memory_checks
    in
    Instrument.add_logic m
      ~decls:(scalar_decls @ memory_decls)
      ~always:
        [ { Ast.sens = Ast.Posedge clk; stmts = scalar_stmts @ memory_stmts } ])

(* ------------------------------------------------------------------ *)
(* Dynamic analysis                                                    *)
(* ------------------------------------------------------------------ *)

(* [decode_alarms] is the pure parser; the public {!alarms} also
   publishes each alarm onto the telemetry bus (once per call —
   {!alarm_registers} decodes without re-publishing). *)
let decode_alarms (log : (int * string) list) : (int * string) list =
  Instrument.tagged_lines tag log
  |> List.filter_map (fun (cycle, payload) ->
         let prefix = "potential data loss at " in
         let pl = String.length prefix in
         if String.length payload > pl && String.sub payload 0 pl = prefix then
           Some (cycle, String.sub payload pl (String.length payload - pl))
         else None)

let alarms_counter = Telemetry.Counter.make "losscheck.alarms"

let alarms (log : (int * string) list) : (int * string) list =
  let al = decode_alarms log in
  if Telemetry.enabled () then
    List.iter
      (fun (cycle, reg) ->
        Telemetry.Counter.incr alarms_counter;
        Telemetry.Bus.publish (Telemetry.bus ())
          {
            Telemetry.ev_cycle = cycle;
            ev_source = "losscheck";
            ev_kind = "alarm";
            ev_data = [ ("register", reg) ];
          })
      al;
  al

let alarm_registers log = Ast.dedup (List.map snd (decode_alarms log))

type result = {
  reported : string list;  (* alarming registers after filtering *)
  suppressed : string list;  (* registers filtered as intentional drops *)
  raw_alarms : (int * string) list;
  generated_loc : int;
}

(* Full workflow: instrument, run ground-truth stimuli to learn
   intentional drops, run the failing stimulus, report the difference. *)
let localize ?(ground_truth = []) ?(max_cycles = 10_000) ~top ~spec
    ~(stimulus : Testbench.stimulus) (design : Ast.design) : result =
  let m =
    match Ast.find_module design top with
    | Some m -> m
    | None -> Instrument.err "LossCheck: no module %s" top
  in
  let plan = analyze ~design spec m in
  let m' = instrument plan m in
  let generated_loc = Instrument.added_loc ~before:m ~after:m' in
  let design' =
    { Ast.modules = List.map (fun x -> if x == m then m' else x) design.Ast.modules }
  in
  let run stim cycles =
    let sim = Testbench.of_design ~top design' in
    let outcome = Testbench.run ~max_cycles:cycles sim stim in
    outcome.Testbench.log
  in
  let suppressed =
    Ast.dedup
      (List.concat_map
         (fun (stim, cycles) -> alarm_registers (run stim cycles))
         ground_truth)
  in
  let log = run stimulus max_cycles in
  let raw = alarms log in
  let reported =
    List.filter (fun r -> not (List.mem r suppressed)) (alarm_registers log)
  in
  { reported; suppressed; raw_alarms = raw; generated_loc }
