(* Statistics Monitor (section 4.4): counters for developer-specified
   single-bit events, with optional log messages on change. Counter
   values are read back after execution (from the FPGA via readback, or
   directly in simulation); unexpected differences between related
   counters - valid inputs vs. valid outputs - indicate data loss. *)

module Ast = Fpga_hdl.Ast
module Telemetry = Fpga_telemetry.Telemetry

type event = { event_name : string; trigger : Ast.expr }

type t = { module_name : string; events : event list }

let tag = "STAT"
let counter_name e = "_stat_" ^ Instrument.sanitize e.event_name

let plan (m : Ast.module_def) (events : event list) : t =
  List.iter
    (fun e ->
      List.iter
        (fun r ->
          if Ast.signal_width m r = None then
            Instrument.err "Statistics Monitor: unknown signal %s in event %s" r
              e.event_name)
        (Ast.expr_reads e.trigger))
    events;
  { module_name = m.Ast.mod_name; events }

let instrument ?(log_changes = false) (t : t) (m : Ast.module_def) :
    Ast.module_def =
  if t.events = [] then m
  else (
    let clk = Instrument.find_clock m in
    let decls =
      List.map
        (fun e ->
          {
            Ast.name = counter_name e;
            kind = Ast.Reg;
            width = 32;
            depth = None;
            init = None;
          })
        t.events
    in
    let one = Ast.Const (Fpga_bits.Bits.one 32) in
    let stmts =
      List.map
        (fun e ->
          let c = Ast.Ident (counter_name e) in
          let body =
            Ast.Nonblocking (Ast.Lident (counter_name e), Ast.Binop (Ast.Add, c, one))
            ::
            (if log_changes then
               [
                 Ast.Display
                   ( Printf.sprintf "[%s] %s = %%d" tag e.event_name,
                     [ Ast.Binop (Ast.Add, c, one) ] );
               ]
             else [])
          in
          Ast.If (e.trigger, body, []))
        t.events
    in
    Instrument.add_logic m ~decls
      ~always:[ { Ast.sens = Ast.Posedge clk; stmts } ])

(* Counter read-back after an execution. Each read-back value is also
   published onto the telemetry bus, stamped with the cycle at which it
   was sampled. *)
let counts (t : t) (sim : Fpga_sim.Simulator.t) : (string * int) list =
  let cs =
    List.map
      (fun e -> (e.event_name, Fpga_sim.Simulator.read_int sim (counter_name e)))
      t.events
  in
  if Telemetry.enabled () then
    List.iter
      (fun (name, v) ->
        Telemetry.Bus.publish (Telemetry.bus ())
          {
            Telemetry.ev_cycle = Fpga_sim.Simulator.cycle sim;
            ev_source = "stat_monitor";
            ev_kind = "count";
            ev_data = [ ("event", name); ("count", string_of_int v) ];
          })
      cs;
  cs

(* The statistical-anomaly check of the paper's data-loss workflow:
   producer events should equal consumer events. *)
type anomaly = {
  producer : string;
  consumer : string;
  produced : int;
  consumed : int;
}

let check_balance (counts : (string * int) list) ~producer ~consumer :
    anomaly option =
  match (List.assoc_opt producer counts, List.assoc_opt consumer counts) with
  | Some produced, Some consumed when produced <> consumed ->
      Some { producer; consumer; produced; consumed }
  | _ -> None

let anomaly_to_string a =
  Printf.sprintf "statistics anomaly: %s=%d but %s=%d (%d lost)" a.producer
    a.produced a.consumer a.consumed
    (a.produced - a.consumed)

(* ------------------------------------------------------------------ *)
(* Per-component localization (section 4.4)                           *)
(* ------------------------------------------------------------------ *)

(* Given counters ordered along a pipeline (ingress first), find the
   first component boundary where events disappear - "per-component
   counters help a developer localize a statistical anomaly to a small
   region of a complex circuit". *)
type stage_anomaly = {
  upstream : string;
  downstream : string;
  upstream_count : int;
  downstream_count : int;
}

let localize_stage (counts : (string * int) list) ~(stages : string list) :
    stage_anomaly option =
  let rec scan = function
    | a :: b :: rest -> (
        match (List.assoc_opt a counts, List.assoc_opt b counts) with
        | Some ca, Some cb when cb < ca ->
            Some
              { upstream = a; downstream = b; upstream_count = ca;
                downstream_count = cb }
        | _ -> scan (b :: rest))
    | _ -> None
  in
  scan stages

let stage_anomaly_to_string a =
  Printf.sprintf "events vanish between %s (%d) and %s (%d): %d lost"
    a.upstream a.upstream_count a.downstream a.downstream_count
    (a.upstream_count - a.downstream_count)

(* Derive one event per valid-like 1-bit signal, in declaration order -
   the quick way to get per-stage counters over a handshaked pipeline. *)
let valid_signal_events (m : Fpga_hdl.Ast.module_def) : event list =
  let is_valid_name n =
    let n = String.lowercase_ascii n in
    let has_suffix s =
      String.length n >= String.length s
      && String.sub n (String.length n - String.length s) (String.length s) = s
    in
    has_suffix "_valid" || has_suffix "_vld" || has_suffix "valid"
  in
  let of_name n = { event_name = n; trigger = Fpga_hdl.Ast.Ident n } in
  let port_events =
    List.filter_map
      (fun (p : Fpga_hdl.Ast.port) ->
        if p.Fpga_hdl.Ast.port_width = 1 && is_valid_name p.Fpga_hdl.Ast.port_name
        then Some (of_name p.Fpga_hdl.Ast.port_name)
        else None)
      m.Fpga_hdl.Ast.ports
  in
  let decl_events =
    List.filter_map
      (fun (d : Fpga_hdl.Ast.decl) ->
        if
          d.Fpga_hdl.Ast.width = 1
          && d.Fpga_hdl.Ast.depth = None
          && is_valid_name d.Fpga_hdl.Ast.name
          && Fpga_hdl.Ast.find_port m d.Fpga_hdl.Ast.name = None
        then Some (of_name d.Fpga_hdl.Ast.name)
        else None)
      m.Fpga_hdl.Ast.decls
  in
  port_events @ decl_events
