(* SignalCat (section 4.1): unified logging for simulation and on-FPGA
   execution.

   A design annotated with $display statements can run in two modes:

   - [Simulation]: the statements execute directly in the simulator,
     which prints and logs them - the traditional flow.

   - [On_fpga]: the static pass strips every $display and synthesizes
     recording logic in its place: one wide ring buffer (the model of a
     SignalTap/ILA recording IP) stores, per cycle in which at least one
     statement's path constraint holds, a cycle counter, one constraint
     bit per statement, and every statement's argument values.
     [reconstruct] then reads the buffer back (the JTAG-readback analog)
     and rebuilds exactly the log the simulation mode would have printed,
     up to the buffer capacity.

   The equivalence of the two logs is the tool's headline property and
   is checked by the test suite. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Width = Fpga_analysis.Width
module Path_constraint = Fpga_analysis.Path_constraint
module Simulator = Fpga_sim.Simulator
module Telemetry = Fpga_telemetry.Telemetry

type mode = Simulation | On_fpga

type statement_info = {
  stmt_id : int;
  fmt : string;
  args : Ast.expr list;
  arg_widths : int list;
  cond : Ast.expr;  (* path constraint *)
}

(* Optional recording window (section 4.1): recording arms when [start]
   first holds and disarms [post] recorded entries after [stop] holds,
   so the ring buffer retains the interval around the event. Without a
   trigger the recorder runs from cycle 0. *)
type trigger = {
  start : Ast.expr option;
  stop : Ast.expr option;
  post : int;  (* extra entries recorded after the stop event *)
}

type plan = {
  module_name : string;
  statements : statement_info list;
  buffer_depth : int;
  entry_width : int;  (* 32-bit cycle + constraint bits + argument bits *)
  trigger : trigger;
}

let no_trigger = { start = None; stop = None; post = 0 }

let buf_name = "_sc_buf"
let ptr_name = "_sc_ptr"
let total_name = "_sc_total"
let cycle_name = "_sc_cycle"
let stage_name = "_sc_stage"
let stage_vld_name = "_sc_stage_vld"
let armed_name = "_sc_armed"
let post_name = "_sc_post"
let gate_name = "_sc_gate"

(* ------------------------------------------------------------------ *)
(* Static analysis                                                     *)
(* ------------------------------------------------------------------ *)

let analyze ?(buffer_depth = 8192) ?(trigger = no_trigger)
    (m : Ast.module_def) : plan =
  if buffer_depth < 1 || buffer_depth land (buffer_depth - 1) <> 0 then
    Instrument.err "SignalCat buffer depth must be a power of two";
  (* the recorder must sample on the same edge the statements fire on;
     designs mixing display edges need two recording IPs, which this
     implementation does not synthesize *)
  let edges =
    List.filter_map
      (fun (a : Ast.always) ->
        let has_displays = Path_constraint.displays_of_always a <> [] in
        match a.Ast.sens with
        | Ast.Posedge _ when has_displays -> Some `Pos
        | Ast.Negedge _ when has_displays -> Some `Neg
        | _ -> None)
      m.Ast.always_blocks
    |> List.sort_uniq compare
  in
  if List.length edges > 1 then
    Instrument.err
      "SignalCat: $display statements on both clock edges need two        recording IPs; keep them on one edge";
  let statements =
    List.concat_map
      (fun (a : Ast.always) ->
        match a.Ast.sens with
        | Ast.Posedge _ | Ast.Negedge _ -> Path_constraint.displays_of_always a
        | Ast.Star -> [])
      m.Ast.always_blocks
    |> List.mapi (fun stmt_id (fmt, args, cond) ->
           {
             stmt_id;
             fmt;
             args;
             arg_widths = List.map (Width.of_expr m) args;
             cond;
           })
  in
  let args_bits =
    List.fold_left
      (fun acc s -> acc + List.fold_left ( + ) 0 s.arg_widths)
      0 statements
  in
  let entry_width = 32 + List.length statements + args_bits in
  { module_name = m.Ast.mod_name; statements; buffer_depth; entry_width; trigger }

(* ------------------------------------------------------------------ *)
(* Instrumentation (On_fpga mode)                                      *)
(* ------------------------------------------------------------------ *)

let rec strip_displays (stmts : Ast.stmt list) : Ast.stmt list =
  List.filter_map
    (fun s ->
      match s with
      | Ast.Display _ -> None
      | Ast.If (c, t, f) -> Some (Ast.If (c, strip_displays t, strip_displays f))
      | Ast.Case (e, items, default) ->
          Some
            (Ast.Case
               ( e,
                 List.map
                   (fun (it : Ast.case_item) ->
                     { it with Ast.body = strip_displays it.Ast.body })
                   items,
                 Option.map strip_displays default ))
      | Ast.Blocking _ | Ast.Nonblocking _ | Ast.Finish -> Some s)
    stmts

(* Buffer entry, LSB to MSB: cycle(32), then per statement its
   constraint bit followed by its argument values. *)
let entry_expr plan : Ast.expr =
  let fields_lsb_first =
    Ast.Ident cycle_name
    :: List.concat_map
         (fun s -> (s.cond :: s.args))
         plan.statements
  in
  match List.rev fields_lsb_first with
  | [ single ] -> single
  | msb_first -> Ast.Concat msb_first

let instrument (plan : plan) (m : Ast.module_def) : Ast.module_def =
  if plan.statements = [] then m
  else (
    let clk = Instrument.find_clock m in
    (* clock the recorder on the edge the displays fire on *)
    let display_sens =
      List.find_map
        (fun (a : Ast.always) ->
          if Path_constraint.displays_of_always a <> [] then
            match a.Ast.sens with
            | (Ast.Posedge _ | Ast.Negedge _) as s -> Some s
            | Ast.Star -> None
          else None)
        m.Ast.always_blocks
    in
    let recorder_sens =
      match display_sens with Some s -> s | None -> Ast.Posedge clk
    in
    let stripped =
      {
        m with
        Ast.always_blocks =
          List.map
            (fun (a : Ast.always) ->
              { a with Ast.stmts = strip_displays a.Ast.stmts })
            m.Ast.always_blocks;
      }
    in
    let ptr_width = Width.clog2 plan.buffer_depth in
    let any_cond =
      List.fold_left
        (fun acc s -> Ast.or_expr acc s.cond)
        Ast.false_expr plan.statements
    in
    let armed_init =
      match plan.trigger.start with None -> Some (Bits.one 1) | Some _ -> None
    in
    let decls =
      [
        { Ast.name = armed_name; kind = Ast.Reg; width = 1; depth = None;
          init = armed_init };
        { Ast.name = post_name; kind = Ast.Reg; width = 16; depth = None;
          init = Some (Bits.of_int ~width:16 (plan.trigger.post + 1)) };
        {
          Ast.name = buf_name;
          kind = Ast.Reg;
          width = plan.entry_width;
          depth = Some plan.buffer_depth;
          init = None;
        };
        { Ast.name = ptr_name; kind = Ast.Reg; width = ptr_width; depth = None; init = None };
        { Ast.name = total_name; kind = Ast.Reg; width = 32; depth = None; init = None };
        { Ast.name = cycle_name; kind = Ast.Reg; width = 32; depth = None; init = None };
        { Ast.name = stage_name; kind = Ast.Reg; width = plan.entry_width;
          depth = None; init = None };
        { Ast.name = stage_vld_name; kind = Ast.Reg; width = 1; depth = None;
          init = None };
        { Ast.name = gate_name; kind = Ast.Reg; width = 1; depth = None;
          init = None };
      ]
    in
    let one w = Ast.Const (Bits.one w) in
    (* The recording window: armed from the start event (inclusive)
       until the stop event. Without a start trigger the recorder is
       armed from reset. *)
    let start_e = Option.value plan.trigger.start ~default:Ast.false_expr in
    let stop_e = Option.value plan.trigger.stop ~default:Ast.false_expr in
    (* once the stop event fires, a post-trigger countdown lets the ring
       keep a window after the event before the recorder freezes *)
    let post_zero =
      Ast.Binop (Ast.Eq, Ast.Ident post_name, Ast.Const (Bits.zero 16))
    in
    let armed_now =
      Ast.and_expr
        (Ast.or_expr (Ast.Ident armed_name) start_e)
        (Ast.not_expr post_zero)
    in
    let arm_update = Ast.Nonblocking (Ast.Lident armed_name, armed_now) in
    let post_update =
      match plan.trigger.stop with
      | None -> []
      | Some _ ->
          (* the stop event only counts once the recorder is armed, so a
             stop condition that holds at reset cannot pre-empt the
             start trigger *)
          let stop_while_armed =
            Ast.and_expr stop_e
              (Ast.or_expr (Ast.Ident armed_name) start_e)
          in
          [
            Ast.If
              ( Ast.and_expr
                  (Ast.or_expr stop_while_armed
                     (Ast.Binop
                        (Ast.Lt, Ast.Ident post_name,
                         Ast.Const (Bits.of_int ~width:16 (plan.trigger.post + 1)))))
                  (Ast.not_expr post_zero),
                [
                  Ast.Nonblocking
                    ( Ast.Lident post_name,
                      Ast.Binop
                        (Ast.Sub, Ast.Ident post_name, Ast.Const (Bits.one 16)) );
                ],
                [] );
          ]
    in
    (* The recording pipeline mirrors vendor trace IPs: samples are
       staged for one cycle, then committed to the ring buffer, keeping
       the capture logic off the design's critical path. *)
    let stage =
      (arm_update :: post_update)
      @ [
          Ast.Nonblocking (Ast.Lident stage_name, entry_expr plan);
          Ast.Nonblocking (Ast.Lident stage_vld_name, any_cond);
          (* the window gate is registered alongside the staged sample,
             keeping the armed logic off the staging path *)
          Ast.Nonblocking (Ast.Lident gate_name, armed_now);
        ]
    in
    let commit =
      Ast.If
        ( Ast.and_expr (Ast.Ident stage_vld_name) (Ast.Ident gate_name),
          [
            Ast.Nonblocking
              (Ast.Lindex (buf_name, Ast.Ident ptr_name), Ast.Ident stage_name);
            Ast.Nonblocking
              ( Ast.Lident ptr_name,
                Ast.Binop (Ast.Add, Ast.Ident ptr_name, one ptr_width) );
            Ast.Nonblocking
              ( Ast.Lident total_name,
                Ast.Binop (Ast.Add, Ast.Ident total_name, one 32) );
          ],
          [] )
    in
    let tick =
      Ast.Nonblocking
        (Ast.Lident cycle_name, Ast.Binop (Ast.Add, Ast.Ident cycle_name, one 32))
    in
    Instrument.add_logic stripped ~decls
      ~always:[ { Ast.sens = recorder_sens; stmts = (tick :: stage) @ [ commit ] } ])

(* The design with every $display removed; useful for accounting the
   gross size of the generated recording logic. *)
let strip_displays_module (m : Ast.module_def) : Ast.module_def =
  {
    m with
    Ast.always_blocks =
      List.map
        (fun (a : Ast.always) -> { a with Ast.stmts = strip_displays a.Ast.stmts })
        m.Ast.always_blocks;
  }

(* Single entry point used by the other tools: in [Simulation] mode the
   design is unchanged; in [On_fpga] mode the displays are compiled into
   recording logic. *)
let apply ?(buffer_depth = 8192) ?trigger mode (m : Ast.module_def) :
    Ast.module_def * plan =
  let plan = analyze ~buffer_depth ?trigger m in
  match mode with
  | Simulation -> (m, plan)
  | On_fpga -> (instrument plan m, plan)

(* ------------------------------------------------------------------ *)
(* Log reconstruction (On_fpga mode)                                   *)
(* ------------------------------------------------------------------ *)

let decode_entry (plan : plan) (entry : Bits.t) : (int * string) list =
  let cycle = Bits.to_int_trunc (Bits.slice entry ~hi:31 ~lo:0) in
  let pos = ref 32 in
  List.filter_map
    (fun s ->
      let cbit = Bits.bit entry !pos in
      incr pos;
      let args =
        List.map
          (fun w ->
            let v = Bits.slice entry ~hi:(!pos + w - 1) ~lo:!pos in
            pos := !pos + w;
            v)
          s.arg_widths
      in
      if cbit then Some (cycle, Fpga_sim.Display.render s.fmt args) else None)
    plan.statements

let reconstruct (plan : plan) (sim : Simulator.t) : (int * string) list =
  if plan.statements = [] then []
  else (
    let buf = Simulator.read_memory sim buf_name in
    let total = Simulator.read_int sim total_name in
    let depth = plan.buffer_depth in
    let ptr = Simulator.read_int sim ptr_name in
    let indices =
      if total <= depth then List.init total (fun i -> i)
      else List.init depth (fun i -> (ptr + i) mod depth)
    in
    let from_buffer = List.concat_map (fun i -> decode_entry plan buf.(i)) indices in
    (* an entry still sitting in the capture pipeline when the run ends *)
    let pending =
      if
        Simulator.read_int sim stage_vld_name = 1
        && Simulator.read_int sim gate_name = 1
      then decode_entry plan (Simulator.read sim stage_name)
      else []
    in
    let entries = from_buffer @ pending in
    (* mirror the readback onto the telemetry bus: each reconstructed
       line is one recording-IP entry recovered over JTAG *)
    if Telemetry.enabled () then
      List.iter
        (fun (cycle, text) ->
          Telemetry.Bus.publish (Telemetry.bus ())
            {
              Telemetry.ev_cycle = cycle;
              ev_source = "signalcat";
              ev_kind = "entry";
              ev_data = [ ("text", text) ];
            })
        entries;
    entries)

(* Run a design+stimulus in the given mode and return the unified log.
   This is the "single interface for tracing" the paper describes. *)
let run_and_log ?(buffer_depth = 8192) ?trigger ?(max_cycles = 10_000) ~mode
    ~top (design : Ast.design) (stimulus : Fpga_sim.Testbench.stimulus) :
    (int * string) list =
  let m =
    match Ast.find_module design top with
    | Some m -> m
    | None -> Instrument.err "no module %s" top
  in
  let m', plan = apply ~buffer_depth ?trigger mode m in
  let design' =
    { Ast.modules = List.map (fun x -> if x == m then m' else x) design.Ast.modules }
  in
  let sim = Fpga_sim.Testbench.of_design ~top design' in
  let outcome = Fpga_sim.Testbench.run ~max_cycles sim stimulus in
  match mode with
  | Simulation -> outcome.Fpga_sim.Testbench.log
  | On_fpga -> reconstruct plan sim

let generated_loc (plan : plan) (m : Ast.module_def) : int =
  let instrumented = instrument plan m in
  max 0 (Instrument.added_loc ~before:m ~after:instrumented)
