(** Kernel profiling of a testbed bug: run the buggy design with
    telemetry on and summarize where the simulator spent its work.

    This is the front end of the telemetry layer — the software analog
    of reading the paper's Statistics-Monitor counters and recording-IP
    occupancy back from the FPGA after a run. *)

(** Lowered-kernel profile: static lowering shape plus runtime
    skip/commit counters; present only when the run used a lowered
    variant. *)
type lowered_profile = {
  lp_stats : Fpga_sim.Lowered.stats;
  lp_runs : Fpga_sim.Lowered.run_stats;
}

type t = {
  p_bug_id : string;
  p_top : string;
  p_kernel : string;
      (** ["event"], ["brute"], ["lowered"], or ["lowered-dirty"] *)
  p_cycles_requested : int;
  p_cycles_run : int;
  p_finished : bool;
  p_stats : Fpga_sim.Simulator.stats;
  p_efficiency : float;
      (** evaluated / rounds — 1.0 means nothing was skipped (for
          lowered kernels both counts are in fused closures) *)
  p_lowered : lowered_profile option;
  p_hottest : (string * int) list;  (** top-K signals by toggle count *)
  p_spans : (string * int * float) list;  (** (phase, calls, seconds) *)
  p_counters : (string * int) list;
  p_bus_depth : int;
  p_bus_published : int;
  p_bus_dropped : int;
  p_bus_retained : int;
}

val run :
  ?kernel:Fpga_sim.Simulator.kernel ->
  ?cycles:int ->
  ?buffer:int ->
  ?top_k:int ->
  Fpga_testbed.Bug.t ->
  t
(** Profile [cycles] (default 200) cycles of the bug's buggy design
    under its own stimulus, with the global event bus resized to
    [buffer] (default 8192) entries. Telemetry is enabled and reset for
    the run; the previous enabled/disabled state is restored on exit
    (the bus keeps the run's contents so callers can inspect it).
    Omitting [kernel] keeps {!Fpga_sim.Simulator.create}'s automatic
    kernel selection; [p_kernel] records the kernel actually used. *)

val to_json : t -> string
(** Schema ["fpga-debug-profile/2"], stable for CI consumption. All
    schema-1 fields are retained; schema 2 adds the ["lowered"] object
    (closure skip rates, commit-buffer occupancy) when the run used a
    lowered kernel. *)

val print : t -> unit
(** Human-readable tables on stdout. *)
