(* Kernel profiling: one instrumented run of a testbed bug, reported as
   a human table or schema-stable JSON. See profile.mli. *)

module Bug = Fpga_testbed.Bug
module Simulator = Fpga_sim.Simulator
module Telemetry = Fpga_telemetry.Telemetry

(* Lowered-kernel profile: static lowering shape + runtime skip/commit
   behaviour, present only when the run used a lowered variant. *)
type lowered_profile = {
  lp_stats : Fpga_sim.Lowered.stats;
  lp_runs : Fpga_sim.Lowered.run_stats;
}

type t = {
  p_bug_id : string;
  p_top : string;
  p_kernel : string;
  p_cycles_requested : int;
  p_cycles_run : int;
  p_finished : bool;
  p_stats : Simulator.stats;
  p_efficiency : float;
  p_lowered : lowered_profile option;
  p_hottest : (string * int) list;
  p_spans : (string * int * float) list;
  p_counters : (string * int) list;
  p_bus_depth : int;
  p_bus_published : int;
  p_bus_dropped : int;
  p_bus_retained : int;
}

let kernel_name = Simulator.kernel_name

let run ?kernel ?(cycles = 200) ?(buffer = 8192) ?(top_k = 10) (bug : Bug.t) :
    t =
  let was_enabled = Telemetry.enabled () in
  let old_sample = Telemetry.step_sample () in
  Telemetry.enable ();
  (* profiling wants the per-cycle step-event firehose so bus drop
     accounting reflects every cycle, not one sample per window *)
  Telemetry.set_step_sample 1;
  Telemetry.reset ();
  Telemetry.Bus.set_depth (Telemetry.bus ()) buffer;
  (* restore only the knobs: the collected run stays readable afterwards *)
  Fun.protect
    ~finally:(fun () ->
      Telemetry.set_step_sample old_sample;
      if not was_enabled then Telemetry.disable ())
  @@ fun () ->
  let design =
    Telemetry.span "parse" (fun () -> Bug.design_of bug ~buggy:true)
  in
  let flat =
    Telemetry.span "elaborate" (fun () ->
        Fpga_sim.Elaborate.elaborate design ~top:bug.Bug.top)
  in
  (* [Simulator.create] records the "compile" span itself; an omitted
     [kernel] keeps its automatic plan-shape selection *)
  let sim =
    match kernel with
    | Some kernel -> Simulator.create ~kernel flat
    | None -> Simulator.create flat
  in
  let i = ref 0 in
  while !i < cycles && not (Simulator.finished sim) do
    List.iter
      (fun (n, v) -> Simulator.set_input sim n v)
      (bug.Bug.stimulus !i);
    Simulator.step sim;
    incr i
  done;
  let stats =
    match Simulator.stats sim with
    | Some s -> s
    | None -> assert false (* telemetry was enabled at create *)
  in
  let report = Telemetry.report () in
  {
    p_bug_id = bug.Bug.id;
    p_top = bug.Bug.top;
    p_kernel = kernel_name (Simulator.kernel sim);
    p_cycles_requested = cycles;
    p_cycles_run = !i;
    p_finished = Simulator.finished sim;
    p_stats = stats;
    p_efficiency = Option.value (Simulator.kernel_efficiency sim) ~default:1.0;
    p_lowered =
      (match (Simulator.lowering_stats sim, Simulator.lowered_run_stats sim) with
      | Some lp_stats, Some lp_runs -> Some { lp_stats; lp_runs }
      | _ -> None);
    p_hottest = Simulator.hottest_signals ~k:top_k sim;
    p_spans = report.Telemetry.r_spans;
    p_counters = report.Telemetry.r_counters;
    p_bus_depth = report.Telemetry.r_bus_depth;
    p_bus_published = report.Telemetry.r_bus_published;
    p_bus_dropped = report.Telemetry.r_bus_dropped;
    p_bus_retained = report.Telemetry.r_bus_retained;
  }

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let to_json (p : t) : string =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let st = p.p_stats in
  let hist = st.Simulator.st_settle_hist in
  add "{\n  \"schema\": \"fpga-debug-profile/2\",\n";
  add "  \"bug\": %S, \"top\": %S, \"kernel\": %S,\n" p.p_bug_id p.p_top
    p.p_kernel;
  add "  \"cycles_requested\": %d, \"cycles_run\": %d, \"finished\": %b,\n"
    p.p_cycles_requested p.p_cycles_run p.p_finished;
  add "  \"phases\": [\n";
  List.iteri
    (fun i (name, calls, secs) ->
      add "    {\"name\": %S, \"calls\": %d, \"seconds\": %.6f}%s\n" name calls
        secs
        (if i = List.length p.p_spans - 1 then "" else ","))
    p.p_spans;
  add "  ],\n";
  add "  \"kernel_stats\": {\n";
  add "    \"steps\": %d, \"settles\": %d,\n" st.Simulator.st_steps
    st.Simulator.st_settles;
  add "    \"node_rounds\": %d, \"nodes_evaluated\": %d, \
       \"nodes_skipped\": %d,\n"
    st.Simulator.st_node_rounds st.Simulator.st_nodes_evaluated
    st.Simulator.st_nodes_skipped;
  add "    \"kernel_efficiency\": %.4f,\n" p.p_efficiency;
  add "    \"dirty_total\": %d, \"dirty_peak\": %d,\n"
    st.Simulator.st_dirty_total st.Simulator.st_dirty_peak;
  add "    \"nba_commits\": %d, \"prim_steps\": %d, \"displays\": %d\n"
    st.Simulator.st_nba_commits st.Simulator.st_prim_steps
    st.Simulator.st_displays;
  add "  },\n";
  (* schema /2: per-kernel efficiency of the lowered variants — closure
     skip rate and commit-buffer occupancy; absent for event/brute *)
  (match p.p_lowered with
  | None -> ()
  | Some { lp_stats = lw; lp_runs = r } ->
      let module L = Fpga_sim.Lowered in
      let skip_rate =
        let total = r.L.rs_closures_run + r.L.rs_closures_skipped in
        if total = 0 then 0.0
        else float_of_int r.L.rs_closures_skipped /. float_of_int total
      in
      let commit_per_edge =
        if r.L.rs_edges = 0 then 0.0
        else
          float_of_int (r.L.rs_commit_imm + r.L.rs_commit_boxed)
          /. float_of_int r.L.rs_edges
      in
      add "  \"lowered\": {\n";
      add "    \"dirty\": %b, \"closures\": %d, \"fused\": %d,\n" lw.L.lw_dirty
        lw.L.lw_closures lw.L.lw_fused;
      add "    \"imm_signals\": %d, \"boxed_signals\": %d, \"seq_blocks\": %d,\n"
        lw.L.lw_imm lw.L.lw_boxed lw.L.lw_seq;
      add "    \"settles\": %d, \"closures_run\": %d, \"closures_skipped\": %d,\n"
        r.L.rs_settles r.L.rs_closures_run r.L.rs_closures_skipped;
      add "    \"skip_rate\": %.4f,\n" skip_rate;
      add "    \"edge_runs\": %d, \"commit_imm\": %d, \"commit_boxed\": %d,\n"
        r.L.rs_edges r.L.rs_commit_imm r.L.rs_commit_boxed;
      add "    \"commit_per_edge\": %.2f\n" commit_per_edge;
      add "  },\n");
  add
    "  \"settle_rounds\": {\"count\": %d, \"min\": %d, \"max\": %d, \
     \"mean\": %.2f},\n"
    hist.Telemetry.Histogram.hs_count hist.Telemetry.Histogram.hs_min
    hist.Telemetry.Histogram.hs_max
    (if hist.Telemetry.Histogram.hs_count = 0 then 0.0
     else
       float_of_int hist.Telemetry.Histogram.hs_sum
       /. float_of_int hist.Telemetry.Histogram.hs_count);
  add "  \"hottest_signals\": [\n";
  List.iteri
    (fun i (name, n) ->
      add "    {\"signal\": %S, \"toggles\": %d}%s\n" name n
        (if i = List.length p.p_hottest - 1 then "" else ","))
    p.p_hottest;
  add "  ],\n";
  add "  \"counters\": [\n";
  List.iteri
    (fun i (name, v) ->
      add "    {\"name\": %S, \"value\": %d}%s\n" name v
        (if i = List.length p.p_counters - 1 then "" else ","))
    p.p_counters;
  add "  ],\n";
  add
    "  \"bus\": {\"depth\": %d, \"published\": %d, \"dropped\": %d, \
     \"retained\": %d}\n"
    p.p_bus_depth p.p_bus_published p.p_bus_dropped p.p_bus_retained;
  add "}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Human output                                                        *)
(* ------------------------------------------------------------------ *)

let print (p : t) =
  let st = p.p_stats in
  let hist = st.Simulator.st_settle_hist in
  Printf.printf "profile of %s (top %s, %s kernel): %d/%d cycles%s\n"
    p.p_bug_id p.p_top p.p_kernel p.p_cycles_run p.p_cycles_requested
    (if p.p_finished then ", design finished" else "");
  if p.p_spans <> [] then (
    Printf.printf "\nphases:\n";
    List.iter
      (fun (name, calls, secs) ->
        Printf.printf "  %-12s %6.3f s  (%d call%s)\n" name secs calls
          (if calls = 1 then "" else "s"))
      p.p_spans);
  Printf.printf "\nkernel:\n";
  Printf.printf "  steps              %8d\n" st.Simulator.st_steps;
  Printf.printf "  settles            %8d\n" st.Simulator.st_settles;
  Printf.printf "  node rounds        %8d\n" st.Simulator.st_node_rounds;
  Printf.printf "  nodes evaluated    %8d\n" st.Simulator.st_nodes_evaluated;
  Printf.printf "  nodes skipped      %8d\n" st.Simulator.st_nodes_skipped;
  Printf.printf "  kernel efficiency  %8.1f%% of full-sweep work\n"
    (100.0 *. p.p_efficiency);
  Printf.printf "  dirty-set peak     %8d\n" st.Simulator.st_dirty_peak;
  Printf.printf "  NBA commits        %8d\n" st.Simulator.st_nba_commits;
  Printf.printf "  primitive steps    %8d\n" st.Simulator.st_prim_steps;
  Printf.printf "  displays           %8d\n" st.Simulator.st_displays;
  if hist.Telemetry.Histogram.hs_count > 0 then
    Printf.printf "  nodes/settle       min %d, mean %.1f, max %d\n"
      hist.Telemetry.Histogram.hs_min
      (float_of_int hist.Telemetry.Histogram.hs_sum
      /. float_of_int hist.Telemetry.Histogram.hs_count)
      hist.Telemetry.Histogram.hs_max;
  (match p.p_lowered with
  | None -> ()
  | Some { lp_stats = lw; lp_runs = r } ->
      let module L = Fpga_sim.Lowered in
      Printf.printf "\nlowered kernel%s:\n"
        (if lw.L.lw_dirty then " (dirty-set)" else "");
      Printf.printf "  plan closures      %8d  (%d fused)\n" lw.L.lw_closures
        lw.L.lw_fused;
      Printf.printf "  seq blocks         %8d\n" lw.L.lw_seq;
      Printf.printf "  closures run       %8d\n" r.L.rs_closures_run;
      Printf.printf "  closures skipped   %8d\n" r.L.rs_closures_skipped;
      let total = r.L.rs_closures_run + r.L.rs_closures_skipped in
      if total > 0 then
        Printf.printf "  skip rate          %8.1f%%\n"
          (100.0 *. float_of_int r.L.rs_closures_skipped /. float_of_int total);
      Printf.printf "  commits (imm/box)  %8d / %d\n" r.L.rs_commit_imm
        r.L.rs_commit_boxed;
      if r.L.rs_edges > 0 then
        Printf.printf "  commits per edge   %8.2f\n"
          (float_of_int (r.L.rs_commit_imm + r.L.rs_commit_boxed)
          /. float_of_int r.L.rs_edges));
  (match p.p_hottest with
  | [] -> ()
  | hottest ->
      Printf.printf "\nhottest signals (toggles):\n";
      List.iter
        (fun (name, n) -> Printf.printf "  %-32s %8d\n" name n)
        hottest);
  Printf.printf
    "\nevent bus: depth %d, published %d, dropped %d, retained %d%s\n"
    p.p_bus_depth p.p_bus_published p.p_bus_dropped p.p_bus_retained
    (if p.p_bus_dropped > 0 then "  (raise --buffer to keep more history)"
     else "")
