(** Campaign engine: batch execution of independent simulation jobs on
    a pool of OCaml domains.

    The paper's evaluation (§6) repeatedly runs the whole 20-bug
    testbed end to end; this module turns that from a latency chain
    into a throughput workload. A single shared queue is drained by N
    domains, each job's result is slotted into a results array at its
    submission index, and [Domain.join] makes the disjoint slot writes
    visible to the collector — so collected results are ordered by job
    id and byte-identical to a serial run regardless of scheduling
    (see the campaign determinism tests).

    Jobs must be self-contained: they share no mutable state, and any
    telemetry they record lands in per-domain sinks
    ({!Fpga_telemetry.Telemetry}) that the pool merges at join. *)

(** {1 Generic pool} *)

type 'a job = { label : string; work : unit -> 'a }

type 'a job_result = {
  jr_id : int;  (** submission index; result arrays are ordered by it *)
  jr_label : string;
  jr_wall : float;  (** seconds spent in the job body *)
  jr_domain : int;  (** 0-based worker that ran it *)
  jr_value : ('a, string) result;
      (** [Error] carries the exception text of a raising job *)
  jr_trace : Fpga_telemetry.Telemetry.Trace.segment;
      (** the job's slice of its worker's trace buffer (empty while
          tracing is off). Each job body runs inside a tree span named
          after its label (category ["job"]) on its worker's track
          (worker [w] records on track [w+1]); the captured segment is
          rebased, so it is identical at any pool width. *)
}

type pool_stats = {
  ps_domains : int;
  ps_jobs : int;
  ps_wall : float;  (** submission to last join *)
  ps_busy : float array;  (** per-worker seconds inside job bodies *)
  ps_utilization : float;  (** total busy / (domains × wall) *)
  ps_telemetry : Fpga_telemetry.Telemetry.report;
      (** merged across all worker sinks *)
}

val run_pool :
  ?domains:int -> 'a job array -> 'a job_result array * pool_stats
(** Execute every job; results are ordered by submission index.
    [domains] defaults to [Domain.recommended_domain_count ()]; a
    value [<= 1] (or a single job) runs inline on the calling domain
    with no spawns. A raising job becomes an [Error] result and never
    takes down the pool. *)

(** {1 Testbed jobs} *)

type verdict = {
  v_bug : string;
  v_kind : string;  (** ["repro"], ["differential"], or ["sweep:<n>"] *)
  v_cycles : int;  (** simulated cycles, all runs of the job summed *)
  v_ok : bool;
  v_detail : string;
  v_symptoms : string list;  (** observed symptom names (repro jobs) *)
  v_log : (int * string) list;  (** buggy-run $display log *)
  v_vcd : string option;  (** buggy-run waveform (repro jobs) *)
}

val repro_job :
  ?kernel:Fpga_sim.Simulator.kernel -> Fpga_testbed.Bug.t -> verdict job
(** Differential buggy-vs-fixed reproduction with a VCD captured on
    the buggy side; ok when every Table 2 symptom manifests. [kernel]
    overrides the simulator's automatic kernel selection. *)

val differential_job :
  ?kernel:Fpga_sim.Simulator.kernel -> Fpga_testbed.Bug.t -> verdict job
(** Primary settle kernel ([kernel], default event-driven) vs the
    brute-force reference over the buggy design; ok when the two
    reports are observationally identical. *)

val sweep_job :
  ?kernel:Fpga_sim.Simulator.kernel ->
  cycles:int -> Fpga_testbed.Bug.t -> verdict job
(** Buggy run under a non-default cycle budget. *)

val replay_job : every:int -> Fpga_testbed.Bug.t -> verdict job
(** Checkpoint/replay determinism: record a stream with a checkpoint
    every [every] cycles, round-trip the middle snapshot through the
    serialized wire format, replay it, and demand the window be
    byte-identical to the straight run (rows, log, flags, and the full
    waveform). Vacuously ok when the run is too short to produce a
    checkpoint. *)

(** {1 Campaign} *)

type t = {
  c_results : verdict job_result array;  (** ordered by job id *)
  c_stats : pool_stats;
  c_cycles : int;  (** simulated cycles across all jobs *)
}

val jobs_of :
  ?kernel:Fpga_sim.Simulator.kernel ->
  ?differential:bool ->
  ?sweeps:int list ->
  ?replay_every:int ->
  Fpga_testbed.Bug.t list ->
  verdict job array
(** Repro jobs for every bug, plus kernel-differential pairs when
    [differential], plus one sweep job per (bug, cycle budget) in
    [sweeps], plus one replay-determinism job per bug when
    [replay_every] is set to a positive checkpoint interval. [kernel]
    pins the settle kernel for repro/differential/sweep jobs (replay
    jobs keep automatic selection so the recorded and replayed runs
    share it). *)

val run :
  ?domains:int ->
  ?kernel:Fpga_sim.Simulator.kernel ->
  ?differential:bool ->
  ?sweeps:int list ->
  ?replay_every:int ->
  Fpga_testbed.Bug.t list ->
  t

val ok : t -> bool
(** Every job completed with [v_ok]. *)

val trace_segments :
  t -> (string * Fpga_telemetry.Telemetry.Trace.segment) list
(** (label, segment) per job, in submission order — the [~jobs]
    argument of {!Fpga_telemetry.Trace_export.to_json}. *)

val to_json : t -> string
(** Schema [fpga-debug-campaign/1]: per-job wall time, worker, verdict
    (waveforms summarized as length + MD5), plus aggregate throughput,
    per-worker busy time, pool utilization, and merged telemetry. *)

val print : t -> unit

(** {1 Fuzz campaigns}

    The differential fuzzing job kind: each job is one mutant of
    {!Fpga_fuzz.Fuzz.run_one}, generated inside the job from
    [(seed, index)] alone, so the pool's slot-by-submission-index
    ordering makes any [--jobs] width produce the same results. *)

val fuzz_job :
  ?kernel:Fpga_sim.Simulator.kernel ->
  seed:int -> index:int -> unit -> Fpga_fuzz.Fuzz.result job

type fuzz_campaign = {
  f_seed : int;
  f_kernel : Fpga_sim.Simulator.kernel;
      (** primary kernel of the differential (brute-force is always
          the reference side) *)
  f_results : Fpga_fuzz.Fuzz.result job_result array;
      (** ordered by mutant index *)
  f_stats : pool_stats;
}

val run_fuzz :
  ?domains:int ->
  ?kernel:Fpga_sim.Simulator.kernel ->
  seed:int -> mutants:int -> unit -> fuzz_campaign
(** [kernel] is the primary kernel every mutant is classified under
    (default event-driven); recorded in the report's ["kernel"]
    field. *)

val fuzz_ok : fuzz_campaign -> bool
(** No kernel-mismatch classifications and no pool-level job errors —
    the fuzz-smoke CI gate. *)

val fuzz_findings : fuzz_campaign -> Fpga_fuzz.Fuzz.result list
(** The kernel mismatches, in mutant-index order. *)

val fuzz_trace_segments :
  fuzz_campaign -> (string * Fpga_telemetry.Telemetry.Trace.segment) list
(** (label, segment) per mutant job, in mutant-index order. *)

val fuzz_to_json : fuzz_campaign -> string
(** Schema [fpga-debug-fuzz/2] (v2 adds the ["kernel"] field). Contains
    only deterministic fields (no wall times, worker ids, domain
    counts, or telemetry): the same (seed, kernel) yields
    byte-identical JSON across runs and [--jobs] widths. Reproducer
    sources are summarized as (bytes, MD5). *)

val print_fuzz : fuzz_campaign -> unit
