(* Campaign engine: a work-queue + Domain-pool executor for batches of
   independent simulation jobs (every testbed bug, parameter sweeps,
   event-vs-brute differential pairs).

   The execution model is a single shared queue drained by N domains:
   a job index is claimed with [Atomic.fetch_and_add], the job runs on
   whichever domain claimed it, and its result is slotted into a
   results array at the job's own index. Slot writes are disjoint by
   construction and [Domain.join] establishes the happens-before edge
   that makes them visible to the collector, so result order is the
   submission order no matter how the pool interleaved the work -
   the determinism guarantee the campaign tests pin down.

   Jobs must be self-contained closures: they share no mutable state
   with each other, and the telemetry they record lands in per-domain
   sinks (see Fpga_telemetry) that the pool merges at join. *)

module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Simulator = Fpga_sim.Simulator
module Taxonomy = Fpga_study.Taxonomy
module Telemetry = Fpga_telemetry.Telemetry
module Trace = Fpga_telemetry.Telemetry.Trace

(* ------------------------------------------------------------------ *)
(* Generic domain pool                                                 *)
(* ------------------------------------------------------------------ *)

type 'a job = { label : string; work : unit -> 'a }

type 'a job_result = {
  jr_id : int;  (* submission index; results arrays are ordered by it *)
  jr_label : string;
  jr_wall : float;  (* seconds spent executing the job body *)
  jr_domain : int;  (* 0-based index of the worker that ran it *)
  jr_value : ('a, string) result;  (* Error carries the exception text *)
  jr_trace : Trace.segment;
      (* the job's slice of its worker's trace buffer (empty when
         tracing is off): rebased, so identical at any pool width *)
}

type pool_stats = {
  ps_domains : int;
  ps_jobs : int;
  ps_wall : float;  (* submission to last join *)
  ps_busy : float array;  (* per-worker seconds spent inside job bodies *)
  ps_utilization : float;  (* sum busy / (domains * wall), 0 when idle *)
  ps_telemetry : Telemetry.report;  (* merged across all worker sinks *)
}

let now = Unix.gettimeofday

(* Run every job from the shared queue on [domains] workers (default
   [Domain.recommended_domain_count ()], min 1). [domains <= 1] runs
   the whole batch inline on the calling domain - same code path, no
   spawns - which is also the serial reference the determinism tests
   compare against. A raising job is caught and reported as [Error];
   it never takes down the pool or skips the remaining queue. *)
let run_pool ?domains (jobs : 'a job array) :
    'a job_result array * pool_stats =
  (* error isolation must not cost context: the Error result carries
     the backtrace, not just the exception text *)
  Printexc.record_backtrace true;
  let n = Array.length jobs in
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let domains = min domains (max 1 n) in
  let results : 'a job_result option array = Array.make n None in
  let next = Atomic.make 0 in
  let t0 = now () in
  (* Each worker drains the queue and accounts its own busy time and
     telemetry; slot [i] of [results] is written by exactly the worker
     that claimed index [i]. *)
  let worker wid () =
    Printexc.record_backtrace true;
    (* every job records on its worker's own track (tid wid+1; 0 is the
       main domain). The track is restored afterwards because in the
       inline (domains <= 1) case this IS the caller's sink. *)
    let tracing = Trace.enabled () in
    let track0 = Trace.track () in
    if tracing then Trace.set_track (wid + 1);
    let busy = ref 0.0 in
    let rec drain () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then (
        let job = jobs.(i) in
        let mark = if tracing then Trace.mark () else 0 in
        let jt0 = now () in
        let value =
          try Ok (Trace.with_span ~cat:"job" job.label job.work)
          with e ->
            let bt = Printexc.get_backtrace () in
            Error
              (Printexc.to_string e
              ^ if String.trim bt = "" then "" else "\n" ^ String.trim bt)
        in
        let wall = now () -. jt0 in
        busy := !busy +. wall;
        (* slice this job's events out of the worker's buffer (and
           consume them, so a long campaign never hits the trace cap
           from sheer job count); the rebased segment is slotted by
           submission index like every other result field *)
        let seg =
          if tracing then Trace.capture_since ~consume:true mark
          else Trace.empty_segment
        in
        results.(i) <-
          Some
            {
              jr_id = i;
              jr_label = job.label;
              jr_wall = wall;
              jr_domain = wid;
              jr_value = value;
              jr_trace = seg;
            };
        drain ())
    in
    drain ();
    if tracing then Trace.set_track track0;
    (!busy, Telemetry.report ())
  in
  let per_worker =
    if domains <= 1 then [| worker 0 () |]
    else (
      (* the caller's sink keeps whatever it already holds; workers
         start from empty sinks (inheriting only the on/off switch and
         sampling knob) so the merge below is purely the campaign's *)
      let handles =
        Array.init domains (fun wid -> Domain.spawn (worker wid))
      in
      Array.map Domain.join handles)
  in
  let wall = now () -. t0 in
  let busy = Array.map fst per_worker in
  let telemetry =
    Array.fold_left
      (fun acc (_, r) -> Telemetry.merge acc r)
      Telemetry.empty_report per_worker
  in
  let total_busy = Array.fold_left ( +. ) 0.0 busy in
  let stats =
    {
      ps_domains = domains;
      ps_jobs = n;
      ps_wall = wall;
      ps_busy = busy;
      ps_utilization =
        (if wall > 0.0 && n > 0 then
           total_busy /. (float_of_int domains *. wall)
         else 0.0);
      ps_telemetry = telemetry;
    }
  in
  let results =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index < n was claimed *))
      results
  in
  (results, stats)

(* ------------------------------------------------------------------ *)
(* Testbed jobs                                                        *)
(* ------------------------------------------------------------------ *)

(* What a campaign job observed, uniformly across job kinds so the
   report and the determinism tests can compare serial and parallel
   runs field by field. *)
type verdict = {
  v_bug : string;
  v_kind : string;  (* "repro" | "differential" | "sweep:<cycles>" *)
  v_cycles : int;  (* cycles actually simulated, all runs summed *)
  v_ok : bool;
  v_detail : string;
  v_symptoms : string list;
  v_log : (int * string) list;  (* buggy-run $display log *)
  v_vcd : string option;  (* buggy-run waveform (repro jobs) *)
}

(* Differential reproduction of one bug, with a waveform captured on
   the buggy side: ok = every Table 2 symptom manifests. *)
let repro_job ?kernel (bug : Bug.t) : verdict job =
  {
    label = Printf.sprintf "repro:%s" bug.Bug.id;
    work =
      (fun () ->
        let buggy =
          Bug.run_design ~vcd:true ?kernel bug (Bug.design_of bug ~buggy:true)
        in
        let fixed =
          Bug.run_design ?kernel bug (Bug.design_of bug ~buggy:false)
        in
        let symptoms = Bug.symptoms_of ~buggy ~fixed in
        let ok = Bug.reproduces_of ~bug ~buggy ~fixed in
        {
          v_bug = bug.Bug.id;
          v_kind = "repro";
          v_cycles = buggy.Bug.cycles + fixed.Bug.cycles;
          v_ok = ok;
          v_detail =
            Printf.sprintf "%d rows buggy, %d rows fixed"
              (List.length buggy.Bug.rows)
              (List.length fixed.Bug.rows);
          v_symptoms = List.map Taxonomy.symptom_name symptoms;
          v_log = buggy.Bug.log;
          v_vcd = buggy.Bug.vcd;
        });
  }

(* Primary settle kernel vs the brute-force reference over the buggy
   design: ok = observationally identical reports. *)
let differential_job ?(kernel = Simulator.Event_driven) (bug : Bug.t) :
    verdict job =
  {
    label = Printf.sprintf "differential:%s" bug.Bug.id;
    work =
      (fun () ->
        let design = Bug.design_of bug ~buggy:true in
        let pr = Bug.run_design ~kernel bug design in
        let bf = Bug.run_design ~kernel:Simulator.Brute_force bug design in
        let agree =
          pr.Bug.log = bf.Bug.log
          && pr.Bug.rows = bf.Bug.rows
          && pr.Bug.stuck = bf.Bug.stuck
          && pr.Bug.finished = bf.Bug.finished
          && pr.Bug.cycles = bf.Bug.cycles
        in
        {
          v_bug = bug.Bug.id;
          v_kind = "differential";
          v_cycles = pr.Bug.cycles + bf.Bug.cycles;
          v_ok = agree;
          v_detail =
            (if agree then "kernels agree"
             else
               Simulator.kernel_name kernel
               ^ " and brute-force kernels diverge");
          v_symptoms = [];
          v_log = pr.Bug.log;
          v_vcd = None;
        });
  }

(* Buggy run under a non-default cycle budget - the parameter-sweep
   axis of the campaign. *)
let sweep_job ?kernel ~cycles (bug : Bug.t) : verdict job =
  {
    label = Printf.sprintf "sweep:%s:%d" bug.Bug.id cycles;
    work =
      (fun () ->
        let r =
          Bug.run_design ?kernel ~max_cycles:cycles bug
            (Bug.design_of bug ~buggy:true)
        in
        {
          v_bug = bug.Bug.id;
          v_kind = Printf.sprintf "sweep:%d" cycles;
          v_cycles = r.Bug.cycles;
          v_ok = true;
          v_detail =
            Printf.sprintf "%d rows in %d cycles%s" (List.length r.Bug.rows)
              r.Bug.cycles
              (if r.Bug.stuck then ", stuck" else "");
          v_symptoms = [];
          v_log = r.Bug.log;
          v_vcd = None;
        });
  }

(* Checkpoint/replay determinism over one bug: record a checkpoint
   stream, restore the middle snapshot through the serialized wire
   format, and demand the replayed window be byte-identical to the
   straight run - waveform included. This is the campaign-scale form
   of the replay gate CI runs on a single bug. *)
let replay_job ~every (bug : Bug.t) : verdict job =
  {
    label = Printf.sprintf "replay:%s:%d" bug.Bug.id every;
    work =
      (fun () ->
        let module Replay = Fpga_testbed.Replay in
        let module Checkpoint = Fpga_sim.Checkpoint in
        let rc = Replay.record ~every bug in
        match rc.Replay.rec_checkpoints with
        | [] ->
            {
              v_bug = bug.Bug.id;
              v_kind = Printf.sprintf "replay:%d" every;
              v_cycles = rc.Replay.rec_report.Bug.cycles;
              v_ok = true;
              v_detail =
                Printf.sprintf
                  "no checkpoints: run ended after %d cycles (< every=%d)"
                  rc.Replay.rec_report.Bug.cycles every;
              v_symptoms = [];
              v_log = rc.Replay.rec_report.Bug.log;
              v_vcd = None;
            }
        | cps ->
            let mid = List.nth cps ((List.length cps - 1) / 2) in
            (* round-trip through the wire format so the job also
               exercises serialization, not just in-memory restore *)
            let mid = Checkpoint.of_string (Checkpoint.to_string mid) in
            let design = Bug.design_of bug ~buggy:true in
            let straight =
              Bug.run_design ~vcd:true ~vcd_from:mid.Checkpoint.ck_cycle bug
                design
            in
            let replayed = Replay.replay ~from:mid bug in
            let agree =
              straight.Bug.vcd = replayed.Bug.vcd
              && straight.Bug.rows = replayed.Bug.rows
              && straight.Bug.log = replayed.Bug.log
              && straight.Bug.stuck = replayed.Bug.stuck
              && straight.Bug.finished = replayed.Bug.finished
              && straight.Bug.cycles = replayed.Bug.cycles
            in
            {
              v_bug = bug.Bug.id;
              v_kind = Printf.sprintf "replay:%d" every;
              v_cycles =
                rc.Replay.rec_report.Bug.cycles + straight.Bug.cycles
                + (replayed.Bug.cycles - mid.Checkpoint.ck_cycle);
              v_ok = agree;
              v_detail =
                (if agree then
                   Printf.sprintf
                     "replay from cycle %d identical to straight run \
                      (%d-cycle window)"
                     mid.Checkpoint.ck_cycle
                     (replayed.Bug.cycles - mid.Checkpoint.ck_cycle)
                 else
                   Printf.sprintf "replay from cycle %d DIVERGES"
                     mid.Checkpoint.ck_cycle);
              v_symptoms = [];
              v_log = replayed.Bug.log;
              v_vcd = replayed.Bug.vcd;
            });
  }

(* ------------------------------------------------------------------ *)
(* Campaign = job list + pool run + aggregates                         *)
(* ------------------------------------------------------------------ *)

type t = {
  c_results : verdict job_result array;  (* ordered by job id *)
  c_stats : pool_stats;
  c_cycles : int;  (* simulated cycles across all jobs *)
}

let jobs_of ?kernel ?(differential = false) ?(sweeps = []) ?replay_every
    (bugs : Bug.t list) : verdict job array =
  let repro = List.map (repro_job ?kernel) bugs in
  let diff =
    if differential then List.map (differential_job ?kernel) bugs else []
  in
  let sweep =
    List.concat_map
      (fun c -> List.map (sweep_job ?kernel ~cycles:c) bugs)
      sweeps
  in
  let replay =
    match replay_every with
    | Some every when every > 0 -> List.map (replay_job ~every) bugs
    | _ -> []
  in
  Array.of_list (repro @ diff @ sweep @ replay)

let run ?domains ?kernel ?differential ?sweeps ?replay_every
    (bugs : Bug.t list) : t =
  let jobs = jobs_of ?kernel ?differential ?sweeps ?replay_every bugs in
  let results, stats = run_pool ?domains jobs in
  let cycles =
    Array.fold_left
      (fun acc r ->
        match r.jr_value with Ok v -> acc + v.v_cycles | Error _ -> acc)
      0 results
  in
  { c_results = results; c_stats = stats; c_cycles = cycles }

let ok (c : t) =
  Array.for_all
    (fun r -> match r.jr_value with Ok v -> v.v_ok | Error _ -> false)
    c.c_results

(* Per-job trace segments in submission order, ready for
   [Trace_export.to_json ~jobs]. Labels keep their "kind:..." shape. *)
let trace_segments (c : t) =
  Array.to_list c.c_results |> List.map (fun r -> (r.jr_label, r.jr_trace))

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Schema-pinned machine-readable report. Waveforms are summarized as
   (length, MD5) rather than inlined: enough for byte-identity checks
   across runs without multi-megabyte reports. *)
let to_json (c : t) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"fpga-debug-campaign/1\",\n";
  add "  \"domains\": %d,\n" c.c_stats.ps_domains;
  add "  \"jobs\": [\n";
  let njobs = Array.length c.c_results in
  Array.iteri
    (fun i r ->
      add "    {\"id\": %d, \"label\": %S, \"domain\": %d, \"wall\": %.6f, "
        r.jr_id r.jr_label r.jr_domain r.jr_wall;
      (match r.jr_value with
      | Error e -> add "\"error\": \"%s\"" (json_escape e)
      | Ok v ->
          add "\"bug\": %S, \"kind\": %S, \"ok\": %b, \"cycles\": %d, "
            v.v_bug v.v_kind v.v_ok v.v_cycles;
          add "\"symptoms\": [%s], "
            (String.concat ", "
               (List.map (fun s -> Printf.sprintf "%S" s) v.v_symptoms));
          add "\"log_lines\": %d, " (List.length v.v_log);
          (match v.v_vcd with
          | Some vcd ->
              add "\"vcd_bytes\": %d, \"vcd_md5\": %S" (String.length vcd)
                (Digest.to_hex (Digest.string vcd))
          | None -> add "\"vcd_bytes\": 0, \"vcd_md5\": \"\"");
          add ", \"detail\": \"%s\"" (json_escape v.v_detail));
      add "}%s\n" (if i = njobs - 1 then "" else ","))
    c.c_results;
  add "  ],\n";
  let failed =
    Array.fold_left
      (fun acc r ->
        acc
        + match r.jr_value with Ok v when v.v_ok -> 0 | _ -> 1)
      0 c.c_results
  in
  add "  \"aggregate\": {\n";
  add "    \"jobs\": %d, \"failed\": %d,\n" njobs failed;
  add "    \"wall_seconds\": %.6f,\n" c.c_stats.ps_wall;
  add "    \"jobs_per_sec\": %.2f,\n"
    (if c.c_stats.ps_wall > 0.0 then
       float_of_int njobs /. c.c_stats.ps_wall
     else 0.0);
  add "    \"cycles\": %d,\n" c.c_cycles;
  add "    \"cycles_per_sec\": %.1f,\n"
    (if c.c_stats.ps_wall > 0.0 then
       float_of_int c.c_cycles /. c.c_stats.ps_wall
     else 0.0);
  add "    \"busy_seconds\": [%s],\n"
    (String.concat ", "
       (Array.to_list
          (Array.map (Printf.sprintf "%.6f") c.c_stats.ps_busy)));
  add "    \"pool_utilization\": %.4f\n" c.c_stats.ps_utilization;
  add "  },\n";
  let tel = c.c_stats.ps_telemetry in
  add "  \"telemetry\": {\"counters\": %d, \"bus_published\": %d, \
       \"bus_dropped\": %d}\n"
    (List.length tel.Telemetry.r_counters)
    tel.Telemetry.r_bus_published tel.Telemetry.r_bus_dropped;
  add "}\n";
  Buffer.contents buf

let print (c : t) =
  Printf.printf "campaign: %d jobs on %d domain%s\n\n"
    (Array.length c.c_results) c.c_stats.ps_domains
    (if c.c_stats.ps_domains = 1 then "" else "s");
  Printf.printf "  %-20s %-6s %8s  %s\n" "job" "ok" "wall(s)" "detail";
  Array.iter
    (fun r ->
      match r.jr_value with
      | Ok v ->
          Printf.printf "  %-20s %-6s %8.3f  %s%s\n" r.jr_label
            (if v.v_ok then "ok" else "FAIL")
            r.jr_wall v.v_detail
            (match v.v_symptoms with
            | [] -> ""
            | ss -> Printf.sprintf " [%s]" (String.concat ", " ss))
      | Error e ->
          Printf.printf "  %-20s %-6s %8.3f  error: %s\n" r.jr_label "ERROR"
            r.jr_wall e)
    c.c_results;
  Printf.printf
    "\n  %d cycles in %.3f s (%.0f cycles/s, %.2f jobs/s), pool \
     utilization %.0f%%\n"
    c.c_cycles c.c_stats.ps_wall
    (if c.c_stats.ps_wall > 0.0 then
       float_of_int c.c_cycles /. c.c_stats.ps_wall
     else 0.0)
    (if c.c_stats.ps_wall > 0.0 then
       float_of_int (Array.length c.c_results) /. c.c_stats.ps_wall
     else 0.0)
    (100.0 *. c.c_stats.ps_utilization)

(* ------------------------------------------------------------------ *)
(* Fuzz campaigns                                                      *)
(* ------------------------------------------------------------------ *)

module Fuzz = Fpga_fuzz.Fuzz
module Mutate = Fpga_fuzz.Mutate

(* One mutant end to end: generation happens inside the job from
   (seed, index) alone, so the job is self-contained and the pool's
   slot-by-submission-index ordering makes any jobs width produce the
   same results array. *)
let fuzz_job ?kernel ~seed ~index () : Fuzz.result job =
  {
    label =
      Printf.sprintf "fuzz:%d:%s" index (Fuzz.target_of_index index).Bug.id;
    work = (fun () -> Fuzz.run_one ?kernel ~seed ~index ());
  }

type fuzz_campaign = {
  f_seed : int;
  f_kernel : Simulator.kernel;  (* primary kernel of the differential *)
  f_results : Fuzz.result job_result array;  (* ordered by mutant index *)
  f_stats : pool_stats;
}

let run_fuzz ?domains ?(kernel = Simulator.Event_driven) ~seed ~mutants () :
    fuzz_campaign =
  let jobs =
    Array.init mutants (fun index -> fuzz_job ~kernel ~seed ~index ())
  in
  let results, stats = run_pool ?domains jobs in
  { f_seed = seed; f_kernel = kernel; f_results = results; f_stats = stats }

let fuzz_trace_segments (fc : fuzz_campaign) =
  Array.to_list fc.f_results |> List.map (fun r -> (r.jr_label, r.jr_trace))

let fuzz_findings (fc : fuzz_campaign) : Fuzz.result list =
  Array.to_list fc.f_results
  |> List.filter_map (fun r ->
         match r.jr_value with
         | Ok ({ Fuzz.r_outcome = Fuzz.Kernel_mismatch _; _ } as f) -> Some f
         | _ -> None)

(* ok = every job ran (no pool-level errors) and none found a kernel
   mismatch — the CI gate for fuzz-smoke. *)
let fuzz_ok (fc : fuzz_campaign) =
  Array.for_all
    (fun r ->
      match r.jr_value with
      | Ok { Fuzz.r_outcome = Fuzz.Kernel_mismatch _; _ } -> false
      | Ok _ -> true
      | Error _ -> false)
    fc.f_results

let fuzz_counts (fc : fuzz_campaign) =
  let invalid = ref 0
  and equivalent = ref 0
  and divergent = ref 0
  and mismatch = ref 0
  and errors = ref 0 in
  Array.iter
    (fun r ->
      match r.jr_value with
      | Ok { Fuzz.r_outcome = Fuzz.Invalid _; _ } -> incr invalid
      | Ok { Fuzz.r_outcome = Fuzz.Equivalent; _ } -> incr equivalent
      | Ok { Fuzz.r_outcome = Fuzz.Symptom_divergent _; _ } -> incr divergent
      | Ok { Fuzz.r_outcome = Fuzz.Kernel_mismatch _; _ } -> incr mismatch
      | Error _ -> incr errors)
    fc.f_results;
  (!invalid, !equivalent, !divergent, !mismatch, !errors)

(* Schema-pinned fuzz report. Deliberately free of wall times, worker
   ids, domain counts, and telemetry: the acceptance criterion is that
   the same seed produces byte-identical JSON across runs and across
   --jobs widths, so only deterministic fields may appear. Reproducer
   sources are summarized as (bytes, MD5); the full text goes to
   --repro-dir files, not the report. *)
let fuzz_to_json (fc : fuzz_campaign) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let str_list ss =
    String.concat ", " (List.map (fun s -> Printf.sprintf "\"%s\"" (json_escape s)) ss)
  in
  add "{\n  \"schema\": \"fpga-debug-fuzz/2\",\n";
  add "  \"seed\": %d,\n" fc.f_seed;
  add "  \"kernel\": %S,\n" (Simulator.kernel_name fc.f_kernel);
  add "  \"mutants\": %d,\n" (Array.length fc.f_results);
  add "  \"targets\": [%s],\n"
    (str_list (List.map (fun (b : Bug.t) -> b.Bug.id) Fuzz.targets));
  let invalid, equivalent, divergent, mismatch, errors = fuzz_counts fc in
  add
    "  \"counts\": {\"invalid\": %d, \"equivalent\": %d, \
     \"symptom_divergent\": %d, \"kernel_mismatch\": %d, \"job_errors\": \
     %d},\n"
    invalid equivalent divergent mismatch errors;
  add "  \"results\": [\n";
  let n = Array.length fc.f_results in
  Array.iteri
    (fun i r ->
      add "    {\"index\": %d, " i;
      (match r.jr_value with
      | Error e -> add "\"error\": \"%s\"" (json_escape e)
      | Ok f ->
          add "\"bug\": %S, \"sub_seed\": %d, \"outcome\": %S, " f.Fuzz.r_bug
            f.Fuzz.r_sub_seed
            (Fuzz.outcome_name f.Fuzz.r_outcome);
          add "\"mutations\": [%s], "
            (str_list (List.map Mutate.mutation_to_string f.Fuzz.r_mutations));
          add "\"detail\": \"%s\""
            (json_escape (Fuzz.outcome_detail f.Fuzz.r_outcome)));
      add "}%s\n" (if i = n - 1 then "" else ","))
    fc.f_results;
  add "  ],\n";
  let findings = fuzz_findings fc in
  add "  \"findings\": [\n";
  let nf = List.length findings in
  List.iteri
    (fun i f ->
      add "    {\"index\": %d, \"bug\": %S, \"mismatch\": \"%s\", "
        f.Fuzz.r_index f.Fuzz.r_bug
        (json_escape (Fuzz.outcome_detail f.Fuzz.r_outcome));
      add "\"minimized\": [%s], "
        (str_list (List.map Mutate.mutation_to_string f.Fuzz.r_minimized));
      (match f.Fuzz.r_repro with
      | Some src ->
          add "\"repro_bytes\": %d, \"repro_md5\": %S" (String.length src)
            (Digest.to_hex (Digest.string src))
      | None -> add "\"repro_bytes\": 0, \"repro_md5\": \"\"");
      add "}%s\n" (if i = nf - 1 then "" else ","))
    findings;
  add "  ]\n}\n";
  Buffer.contents buf

let print_fuzz (fc : fuzz_campaign) =
  let invalid, equivalent, divergent, mismatch, errors = fuzz_counts fc in
  Printf.printf
    "fuzz campaign: seed %d, %d mutants (%s kernel) on %d domain%s\n\n"
    fc.f_seed (Array.length fc.f_results)
    (Simulator.kernel_name fc.f_kernel)
    fc.f_stats.ps_domains
    (if fc.f_stats.ps_domains = 1 then "" else "s");
  Printf.printf
    "  %d equivalent, %d symptom-divergent, %d invalid, %d kernel \
     mismatch%s, %d job error%s\n"
    equivalent divergent invalid mismatch
    (if mismatch = 1 then "" else "es")
    errors
    (if errors = 1 then "" else "s");
  Array.iter
    (fun r ->
      match r.jr_value with
      | Ok ({ Fuzz.r_outcome = Fuzz.Kernel_mismatch why; _ } as f) ->
          Printf.printf "\n  FINDING %s (mutant %d, sub-seed %d): %s\n"
            f.Fuzz.r_bug f.Fuzz.r_index f.Fuzz.r_sub_seed why;
          List.iter
            (fun mu ->
              Printf.printf "    %s\n" (Mutate.mutation_to_string mu))
            f.Fuzz.r_minimized
      | Ok _ -> ()
      | Error e -> Printf.printf "\n  JOB ERROR %s: %s\n" r.jr_label e)
    fc.f_results;
  Printf.printf "\n  %.3f s wall, %.2f mutants/s, pool utilization %.0f%%\n"
    fc.f_stats.ps_wall
    (if fc.f_stats.ps_wall > 0.0 then
       float_of_int (Array.length fc.f_results) /. fc.f_stats.ps_wall
     else 0.0)
    (100.0 *. fc.f_stats.ps_utilization)
