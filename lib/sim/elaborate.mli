(** Elaboration: flattening a multi-module design into one namespace.

    Instance-local names are prefixed with the instance path using '/'
    (e.g. ["u_ram/mem"]). Ports whose actual is a plain identifier are
    unified with the parent net, so clocks keep their top-level name
    through arbitrary nesting. Parameters and localparams (with
    instance overrides) are substituted as constants.

    Restrictions of the subset: widths are folded at parse time, so a
    parameter override may not change widths; inout ports are not
    supported; IP outputs must connect to plain identifiers. *)

exception Elaboration_error of string

(** A flattened signal. *)
type fsignal = {
  fs_name : string;
  fs_width : int;
  fs_depth : int option;  (** [Some n] for an n-word memory *)
  fs_init : Fpga_bits.Bits.t option;
  fs_is_input : bool;  (** top-level input *)
  fs_is_output : bool;  (** top-level output *)
}

(** Builtin IP blocks with behavioural models (section 5 of the paper). *)
type prim_kind = Scfifo | Dcfifo | Altsyncram

(** An elaborated IP instance. *)
type fprim = {
  fp_name : string;  (** flat instance path *)
  fp_kind : prim_kind;
  fp_params : (string * int) list;
  fp_inputs : (string * Fpga_hdl.Ast.expr) list;  (** formal -> flat expr *)
  fp_outputs : (string * string) list;  (** formal -> flat signal name *)
}

(** Which edge of the (single, global) clock a block fires on. *)
type clock_edge = Pos | Neg

(** A flattened design, ready for simulation. *)
type flat = {
  f_top : string;
  f_signals : (string, fsignal) Hashtbl.t;
  f_assigns : (Fpga_hdl.Ast.lvalue * Fpga_hdl.Ast.expr) list;
  f_comb : Fpga_hdl.Ast.stmt list list;  (** always @* bodies *)
  f_seq : (clock_edge * string * Fpga_hdl.Ast.stmt list) list;
      (** edge, clock name, body *)
  f_prims : fprim list;
  f_inputs : (string * int) list;  (** top ports: name, width *)
  f_outputs : (string * int) list;
  f_signal_order : string array;
      (** dense signal id -> flat name, sorted by name (deterministic) *)
  f_signal_ids : (string, int) Hashtbl.t;  (** flat name -> dense id *)
}

val elaborate : Fpga_hdl.Ast.design -> top:string -> flat
(** [elaborate design ~top] flattens [design] rooted at module [top].
    Raises {!Elaboration_error} on unknown modules, port mismatches, or
    conflicting widths. *)

val signal : flat -> string -> fsignal
(** [signal flat name] looks a flat signal up; raises
    {!Elaboration_error} when absent. *)

val signal_width : flat -> string -> int
