(* Lowered closure-array settle kernel.

   [Compiled] removed name resolution from the hot path but still walks
   an ADT tree per node evaluation: every expression node is a
   constructor dispatch, every intermediate value a heap-allocated
   [Bits.t]. This module lowers one level further, at simulator
   construction: each combinational node becomes a single fused
   [unit -> unit] closure with all dispatch decided at compile time
   (width classes, index power-of-two-ness, operand representations),
   and every signal narrow enough for a native int — width <= 63 —
   lives unboxed in a dense [int array] bank, masked on write. The
   limb-based [Bits] path remains for wide vectors and memories, and as
   the fallback on mixed-width operations.

   Semantics are bit-identical to [Compiled.eval_ctx] /
   [Simulator.exec_stmt]: the same Verilog context-width rules, the
   same out-of-range index semantics ([Eval.resolve_index]), the same
   non-blocking commit ordering (including dropped writes, which still
   count toward commit statistics), the same display gating, and the
   same change-detection points so per-signal toggle counts match the
   other kernels exactly. Conditional/logical operators are compiled to
   short-circuit form; expression evaluation is pure, so this is
   unobservable.

   The reference evaluator stays the oracle: the three-way differential
   tests in test_sim.ml hold this kernel byte-identical to the event
   and brute-force kernels on every testbed design. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Imm = Fpga_bits.Bits.Imm

(* Lowering statistics, surfaced through [Simulator.lowering_stats] and
   the bench "lowering" section. *)
type stats = {
  lw_nodes : int;  (* comb nodes lowered *)
  lw_closures : int;  (* plan closures after fusion *)
  lw_fused : int;  (* nodes folded into a predecessor *)
  lw_imm : int;  (* signals in the immediate int bank *)
  lw_boxed : int;  (* signals kept in limb form (wide vecs + mems) *)
  lw_seq : int;  (* sequential always-blocks lowered to closures *)
  lw_dirty : bool;  (* dirty-set (worklist) scheduling enabled *)
}

(* Run counters, maintained unconditionally (a handful of int stores
   per settle/commit, never per node): the skip-rate and commit-buffer
   numbers profile and trace report for the lowered kernels. *)
type run_stats = {
  mutable rs_settles : int;
  mutable rs_closures_run : int;
  mutable rs_closures_skipped : int;  (* skipped by dirty scheduling *)
  mutable rs_edges : int;  (* sequential block invocations *)
  mutable rs_commit_imm : int;  (* flat-buffer (unboxed) NBA commits *)
  mutable rs_commit_boxed : int;  (* boxed NBA commits, drops included *)
}

(* A deferred non-blocking write. Immediate targets defer as masked int
   stores; everything else falls back to the resolved [Compiled.cwrite]
   form (memories, wide vectors, dropped writes). *)
type pend =
  | Pimm of int * int  (* id, full new pattern *)
  | Pmask of int * int * int  (* id, insert mask, pre-shifted pattern *)
  | Pboxed of Compiled.cwrite

(* Dirty-set execution mode, mirroring the event kernel's adaptive
   machinery: [Lsparse] walks only dirty closures, [Ldense] is the
   plain full sweep (no flag traffic) while nearly every closure fires
   anyway, with change counting to detect when activity drops. *)
type lmode = Lsparse | Ldense

type t = {
  env : Compiled.env;  (* boxed bank: wide vecs + all memories *)
  ints : int array;  (* immediate bank, indexed by signal id *)
  imm : bool array;  (* which ids live in the immediate bank *)
  widths : int array;
  finished : bool ref;  (* shared with the simulator's $finish flag *)
  dirty_on : bool;  (* Lowered_dirty: closure-level worklist scheduling *)
  mutable notify : int -> unit;  (* composed: dirty marking + external *)
  mutable ext_notify : int -> unit;  (* simulator's callback (toggles) *)
  (* flat NBA commit buffer: (id, insert mask, pre-shifted pattern)
     int triples for immediate targets — no allocation per deferred
     write; boxed/memory/dropped writes overflow into [pboxed] *)
  mutable pb : int array;
  mutable pb_len : int;  (* ints used (always a multiple of 3) *)
  mutable pboxed : Compiled.cwrite list;  (* reversed *)
  mutable displays : bool;  (* comb $display gate for this settle *)
  mutable emit : string -> unit;
  mutable plan : (unit -> unit) array;  (* fused comb closures, topo order *)
  mutable seq_pos : (unit -> unit) array;  (* posedge blocks, source order *)
  mutable seq_neg : (unit -> unit) array;  (* negedge blocks, source order *)
  (* dirty-set state (allocated only when [dirty_on]) *)
  mutable csens : int list array;  (* signal id -> reading closure indices *)
  mutable cdirty : bool array;  (* per-closure pending flag *)
  mutable ncdirty : int;
  mutable disp_closures : int list;  (* closures containing $display *)
  mutable lmode : lmode;
  mutable lmode_streak : int;  (* consecutive settles meeting the test *)
  mutable lchanges : int;  (* value changes during a dense sweep *)
  (* change-counting notify installed only for the duration of a dense
     sweep; outside sweeps dense mode uses the bare external notify so
     sequential commits pay nothing for the mode machinery *)
  mutable dense_mark : int -> unit;
  mutable stats : stats;
  runs : run_stats;
}

(* Comb node in compiled form, as handed over by [Simulator.create]. *)
type node =
  | Lassign of Compiled.clvalue * Compiled.cexpr * int  (* ctx width *)
  | Lblock of Compiled.cstmt list

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                  *)
(* ------------------------------------------------------------------ *)

(* A lowered expression: a closure tagged with its static width and
   representation. [Eint] raw patterns are always masked to the width
   ([p land Imm.mask w = p]); width-63 patterns may be negative ints. *)
type ex = Eint of int * (unit -> int) | Ebits of int * (unit -> Bits.t)

let ex_width = function Eint (w, _) -> w | Ebits (w, _) -> w

(* Only legal when the expression's width fits an immediate. *)
let int_fn = function
  | Eint (_, f) -> f
  | Ebits (w, f) ->
      assert (Imm.fits w);
      fun () -> Imm.of_bits (f ())

let bits_fn = function
  | Ebits (_, f) -> f
  | Eint (w, f) -> fun () -> Imm.to_bits ~width:w (f ())

(* Verilog truthiness: reduction-or. *)
let truthy = function
  | Eint (_, f) -> fun () -> f () <> 0
  | Ebits (_, f) -> fun () -> Bits.reduce_or (f ())

(* An index value, truncated exactly like [Bits.to_int_trunc] (low 62
   bits): a width-63 immediate can carry bit 62, so it is masked. *)
let index_fn = function
  | Eint (w, f) -> if w < Imm.max_width then f else fun () -> Imm.to_int_trunc (f ())
  | Ebits (_, f) -> fun () -> Bits.to_int_trunc (f ())

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* [Eval.resolve_index] with the power-of-two test precomputed; [idx]
   is non-negative by construction (truncated), [-1] means dropped. *)
let resolve ~size ~pow2 idx =
  if idx < size then idx else if pow2 then idx land (size - 1) else -1

(* Zero-extend to the context width — the [widen] of
   [Compiled.eval_ctx]. Extending an immediate within the int range is
   the identity on the raw pattern. *)
let widen ~ctx (e : ex) : ex =
  match e with
  | Eint (w, f) ->
      if ctx <= w then e
      else if Imm.fits ctx then Eint (ctx, f)
      else Ebits (ctx, fun () -> Imm.to_bits ~width:ctx (f ()))
  | Ebits (w, f) ->
      if ctx <= w then e else Ebits (ctx, fun () -> Bits.resize (f ()) ctx)

(* Resize to an exact width (truncate or zero-extend), converting
   representation as needed. Truncating a wide value to an immediate
   width must resize in limb form first: [Imm.of_bits] is only defined
   on vectors that already fit an int. *)
let resize_ex w (e : ex) : ex =
  match e with
  | Eint (we, f) ->
      if we = w then e
      else if Imm.fits w then
        if w >= we then Eint (w, f)
        else
          let m = Imm.mask w in
          Eint (w, fun () -> f () land m)
      else Ebits (w, fun () -> Imm.to_bits ~width:w (f ()))
  | Ebits (we, f) ->
      if we = w then e
      else if not (Imm.fits w) then Ebits (w, fun () -> Bits.resize (f ()) w)
      else if Imm.fits we then
        let m = Imm.mask w in
        Eint (w, fun () -> Imm.of_bits (f ()) land m)
      else Eint (w, fun () -> Imm.of_bits (Bits.resize (f ()) w))

let bool_ex f = Eint (1, fun () -> if f () then 1 else 0)

(* Mirrors [Compiled.eval_ctx] case for case: the dispatcher widens
   leaf and structural forms to [ctx]; operator results are never
   widened (operands are widened inside), comparisons and reductions
   return width 1. *)
let rec lex st ~ctx (e : Compiled.cexpr) : ex =
  match e with
  | Compiled.Cconst b ->
      let wb = Bits.width b in
      let w = max wb ctx in
      if Imm.fits w then
        let p = Imm.of_bits b in
        Eint (w, fun () -> p)
      else
        let v = if wb < w then Bits.resize b w else b in
        Ebits (w, fun () -> v)
  | Compiled.Cvar i ->
      let w = st.widths.(i) in
      let base =
        if st.imm.(i) then Eint (w, fun () -> st.ints.(i))
        else Ebits (w, fun () -> Compiled.vec st.env i)
      in
      widen ~ctx base
  | Compiled.Cbit (i, w, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 w in
      let f =
        if st.imm.(i) then fun () ->
          let k = resolve ~size:w ~pow2 (idxf ()) in
          if k < 0 then 0 else (st.ints.(i) lsr k) land 1
        else fun () ->
          let k = resolve ~size:w ~pow2 (idxf ()) in
          if k < 0 then 0
          else if Bits.bit (Compiled.vec st.env i) k then 1
          else 0
      in
      widen ~ctx (Eint (1, f))
  | Compiled.Cword (i, depth, ww, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 depth in
      let base =
        if Imm.fits ww then
          (* memory words are stored at exactly the word width *)
          Eint
            ( ww,
              fun () ->
                let k = resolve ~size:depth ~pow2 (idxf ()) in
                if k < 0 then 0 else Imm.of_bits (Compiled.mem st.env i).(k) )
        else
          let z = Bits.zero ww in
          Ebits
            ( ww,
              fun () ->
                let k = resolve ~size:depth ~pow2 (idxf ()) in
                if k < 0 then z else (Compiled.mem st.env i).(k) )
      in
      widen ~ctx base
  | Compiled.Crange (i, hi, lo) ->
      let w = hi - lo + 1 in
      let base =
        if st.imm.(i) then Eint (w, fun () -> Imm.slice st.ints.(i) ~hi ~lo)
        else if Imm.fits w then
          Eint
            (w, fun () -> Imm.of_bits (Bits.slice (Compiled.vec st.env i) ~hi ~lo))
        else Ebits (w, fun () -> Bits.slice (Compiled.vec st.env i) ~hi ~lo)
      in
      widen ~ctx base
  | Compiled.Cunop (op, a) -> lunop st ~ctx op a
  | Compiled.Cbinop (op, a, b) -> lbinop st ~ctx op a b
  | Compiled.Ccond (c, te, fe) ->
      let cf = truthy (lex st ~ctx:0 c) in
      let vt = lex st ~ctx te and vf = lex st ~ctx fe in
      let w = max (ex_width vt) (ex_width vf) in
      if Imm.fits w then
        let ft = int_fn (resize_ex w vt) and ff = int_fn (resize_ex w vf) in
        Eint (w, fun () -> if cf () then ft () else ff ())
      else
        let ft = bits_fn (resize_ex w vt) and ff = bits_fn (resize_ex w vf) in
        Ebits (w, fun () -> if cf () then ft () else ff ())
  | Compiled.Cconcat es ->
      let parts = List.map (fun e -> lex st ~ctx:0 e) es in
      let total = List.fold_left (fun acc p -> acc + ex_width p) 0 parts in
      let base =
        match parts with
        | [] -> Ebits (1, fun () -> Bits.concat [])  (* raises, as reference *)
        | p0 :: rest ->
            if Imm.fits total then
              let f0 = int_fn p0 in
              let rest = List.map (fun p -> (ex_width p, int_fn p)) rest in
              Eint
                ( total,
                  fun () ->
                    List.fold_left
                      (fun acc (w, f) -> (acc lsl w) lor f ())
                      (f0 ()) rest )
            else
              let fs = List.map bits_fn parts in
              Ebits (total, fun () -> Bits.concat (List.map (fun f -> f ()) fs))
      in
      widen ~ctx base
  | Compiled.Crepeat (n, a) ->
      let va = lex st ~ctx:0 a in
      let wa = ex_width va in
      let base =
        if n < 1 then
          let f = bits_fn va in
          Ebits (1, fun () -> Bits.repeat n (f ()))  (* raises, as reference *)
        else if Imm.fits (n * wa) then
          let f = int_fn va in
          if n = 1 then Eint (wa, f)
          else
            (* n >= 2 and n*wa <= 63, so wa <= 31: shifts stay in range *)
            Eint
              ( n * wa,
                fun () ->
                  let v = f () in
                  let acc = ref v in
                  for _ = 2 to n do
                    acc := (!acc lsl wa) lor v
                  done;
                  !acc )
        else
          let f = bits_fn va in
          Ebits (n * wa, fun () -> Bits.repeat n (f ()))
      in
      widen ~ctx base

and lunop st ~ctx op a : ex =
  match op with
  | Ast.Bnot -> (
      match lex st ~ctx a with
      | Eint (w, f) ->
          let m = Imm.mask w in
          Eint (w, fun () -> lnot (f ()) land m)
      | Ebits (w, f) -> Ebits (w, fun () -> Bits.lognot (f ())))
  | Ast.Neg -> (
      match lex st ~ctx a with
      | Eint (w, f) ->
          let m = Imm.mask w in
          Eint (w, fun () -> -f () land m)
      | Ebits (w, f) -> Ebits (w, fun () -> Bits.neg (f ())))
  | Ast.Lnot -> (
      match lex st ~ctx:0 a with
      | Eint (_, f) -> bool_ex (fun () -> f () = 0)
      | Ebits (_, f) -> bool_ex (fun () -> Bits.is_zero (f ())))
  | Ast.Rand -> (
      match lex st ~ctx:0 a with
      | Eint (w, f) ->
          let m = Imm.mask w in
          bool_ex (fun () -> f () = m)
      | Ebits (_, f) -> bool_ex (fun () -> Bits.reduce_and (f ())))
  | Ast.Ror ->
      let tf = truthy (lex st ~ctx:0 a) in
      bool_ex tf
  | Ast.Rxor -> (
      match lex st ~ctx:0 a with
      | Eint (_, f) -> bool_ex (fun () -> Imm.reduce_xor (f ()))
      | Ebits (_, f) -> bool_ex (fun () -> Bits.reduce_xor (f ())))

and lbinop st ~ctx op a b : ex =
  match op with
  | Ast.Land ->
      let fa = truthy (lex st ~ctx:0 a) and fb = truthy (lex st ~ctx:0 b) in
      bool_ex (fun () -> fa () && fb ())
  | Ast.Lor ->
      let fa = truthy (lex st ~ctx:0 a) and fb = truthy (lex st ~ctx:0 b) in
      bool_ex (fun () -> fa () || fb ())
  | Ast.Shl | Ast.Shr | Ast.Ashr -> (
      let va = lex st ~ctx a in
      let amtf = index_fn (lex st ~ctx:0 b) in
      match va with
      | Eint (w, f) ->
          let op =
            match op with
            | Ast.Shl -> Imm.shift_left
            | Ast.Shr -> Imm.shift_right
            | _ -> Imm.arith_shift_right
          in
          Eint (w, fun () -> op w (f ()) (min (amtf ()) w))
      | Ebits (w, f) ->
          let op =
            match op with
            | Ast.Shl -> Bits.shift_left
            | Ast.Shr -> Bits.shift_right
            | _ -> Bits.arith_shift_right
          in
          Ebits (w, fun () -> op (f ()) (min (amtf ()) w)))
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let va = lex st ~ctx:0 a and vb = lex st ~ctx:0 b in
      let w = max (ex_width va) (ex_width vb) in
      if Imm.fits w then
        let fa = int_fn (resize_ex w va) and fb = int_fn (resize_ex w vb) in
        let test =
          match op with
          | Ast.Eq -> fun x y -> x = y
          | Ast.Neq -> fun x y -> x <> y
          | Ast.Lt -> Imm.lt w
          | Ast.Le -> Imm.le w
          | Ast.Gt -> Imm.gt w
          | _ -> Imm.ge w
        in
        bool_ex (fun () -> test (fa ()) (fb ()))
      else
        let fa = bits_fn (resize_ex w va) and fb = bits_fn (resize_ex w vb) in
        let test =
          match op with
          | Ast.Eq -> Bits.equal
          | Ast.Neq -> fun x y -> not (Bits.equal x y)
          | Ast.Lt -> Bits.lt
          | Ast.Le -> Bits.le
          | Ast.Gt -> Bits.gt
          | _ -> Bits.ge
        in
        bool_ex (fun () -> test (fa ()) (fb ()))
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor ->
      let va = lex st ~ctx a and vb = lex st ~ctx b in
      let w = max (ex_width va) (ex_width vb) in
      if Imm.fits w then
        let fa = int_fn (resize_ex w va) and fb = int_fn (resize_ex w vb) in
        match op with
        | Ast.Add -> Eint (w, fun () -> Imm.add w (fa ()) (fb ()))
        | Ast.Sub -> Eint (w, fun () -> Imm.sub w (fa ()) (fb ()))
        | Ast.Mul -> Eint (w, fun () -> Imm.mul w (fa ()) (fb ()))
        | Ast.Div -> Eint (w, fun () -> Imm.div w (fa ()) (fb ()))
        | Ast.Mod -> Eint (w, fun () -> Imm.rem w (fa ()) (fb ()))
        | Ast.Band -> Eint (w, fun () -> fa () land fb ())
        | Ast.Bor -> Eint (w, fun () -> fa () lor fb ())
        | _ -> Eint (w, fun () -> fa () lxor fb ())
      else
        let fa = bits_fn (resize_ex w va) and fb = bits_fn (resize_ex w vb) in
        let op =
          match op with
          | Ast.Add -> Bits.add
          | Ast.Sub -> Bits.sub
          | Ast.Mul -> Bits.mul
          | Ast.Div -> Bits.div
          | Ast.Mod -> Bits.rem
          | Ast.Band -> Bits.logand
          | Ast.Bor -> Bits.logor
          | _ -> Bits.logxor
        in
        Ebits (w, fun () -> op (fa ()) (fb ()))

(* ------------------------------------------------------------------ *)
(* Stores                                                               *)
(* ------------------------------------------------------------------ *)

(* Change-detected store into the immediate bank. *)
let store_imm st i nv =
  if st.ints.(i) <> nv then (
    st.ints.(i) <- nv;
    st.notify i)

let apply_pend st = function
  | Pimm (i, v) -> store_imm st i v
  | Pmask (i, m, p) -> store_imm st i (st.ints.(i) land lnot m lor p)
  | Pboxed w -> Compiled.apply_write_notify st.env ~notify:st.notify w

(* Defer an immediate-bank write into the flat triple buffer. A full
   write is a mask of all ones ([lnot (-1) = 0]), so commit needs no
   full/partial distinction. Growth doubles, so steady state never
   allocates. *)
let push_flat st i m p =
  let len = st.pb_len in
  if len + 3 > Array.length st.pb then begin
    let nb = Array.make (max 48 (2 * Array.length st.pb)) 0 in
    Array.blit st.pb 0 nb 0 len;
    st.pb <- nb
  end;
  let b = st.pb in
  b.(len) <- i;
  b.(len + 1) <- m;
  b.(len + 2) <- p;
  st.pb_len <- len + 3

let push_boxed st w = st.pboxed <- w :: st.pboxed

(* Each signal is statically either immediate or boxed, so same-signal
   deferred writes always land in the same buffer and flat-then-boxed
   application preserves last-write-wins per signal; cross-signal
   interleavings are unobservable (NBA reads happen before any commit). *)
let push_pend st = function
  | Pimm (i, v) -> push_flat st i (-1) v
  | Pmask (i, m, p) -> push_flat st i m p
  | Pboxed w -> push_boxed st w

(* Flatten nested concat lvalues to leaves with absolute MSB-first bit
   positions; widths are static, so nesting resolves at compile time.
   The returned list is in depth-first MSB-first order — the same order
   [Compiled.resolve_write] emits writes in. *)
let flatten_concat parts total =
  let rec go acc hi = function
    | [] -> acc
    | (lv, w) :: rest ->
        let acc =
          match lv with
          | Compiled.CLconcat (sub, _) -> go acc hi sub
          | _ -> (lv, hi, hi - w + 1) :: acc
        in
        go acc (hi - w) rest
  in
  List.rev (go [] (total - 1) parts)

(* One concat leaf, int source: build a [unit -> pend] reading its
   chunk of [!cur] (bits [hi..lo] of the whole right-hand value). *)
let mk_leaf_int st cur (lv, hi, lo) =
  let wc = hi - lo + 1 in
  let mc = Imm.mask wc in
  let chunk () = (!cur lsr lo) land mc in
  match lv with
  | Compiled.CLvar (i, w) ->
      if st.imm.(i) then fun () -> Pimm (i, chunk ())
      else fun () -> Pboxed (Compiled.CWfull (i, Imm.to_bits ~width:w (chunk ())))
  | Compiled.CLbit (i, w, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 w in
      if st.imm.(i) then fun () ->
        let k = resolve ~size:w ~pow2 (idxf ()) in
        if k < 0 then Pboxed Compiled.CWdropped
        else Pmask (i, 1 lsl k, (chunk () land 1) lsl k)
      else fun () ->
        let k = resolve ~size:w ~pow2 (idxf ()) in
        if k < 0 then Pboxed Compiled.CWdropped
        else Pboxed (Compiled.CWbit (i, k, chunk () land 1 = 1))
  | Compiled.CLword (i, depth, ww, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 depth in
      fun () ->
        let k = resolve ~size:depth ~pow2 (idxf ()) in
        if k < 0 then Pboxed Compiled.CWdropped
        else
          Pboxed
            (Compiled.CWmem (i, k, Imm.to_bits ~width:ww (Imm.resize ww (chunk ()))))
  | Compiled.CLrange (i, hi', lo') ->
      let w' = hi' - lo' + 1 in
      if st.imm.(i) then
        let im = Imm.mask w' lsl lo' in
        fun () -> Pmask (i, im, Imm.resize w' (chunk ()) lsl lo')
      else fun () ->
        Pboxed
          (Compiled.CWrange (i, hi', lo', Imm.to_bits ~width:w' (Imm.resize w' (chunk ()))))
  | Compiled.CLconcat _ -> assert false (* flattened away *)

(* Same, with the right-hand value kept in limb form. *)
let mk_leaf_bits st curb (lv, hi, lo) =
  let chunk () = Bits.slice !curb ~hi ~lo in
  match lv with
  | Compiled.CLvar (i, w) ->
      if st.imm.(i) then fun () -> Pimm (i, Imm.of_bits (chunk ()))
      else fun () -> Pboxed (Compiled.CWfull (i, Bits.resize (chunk ()) w))
  | Compiled.CLbit (i, w, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 w in
      fun () ->
        let k = resolve ~size:w ~pow2 (idxf ()) in
        if k < 0 then Pboxed Compiled.CWdropped
        else
          let b = Bits.bit (Bits.resize (chunk ()) 1) 0 in
          if st.imm.(i) then Pmask (i, 1 lsl k, if b then 1 lsl k else 0)
          else Pboxed (Compiled.CWbit (i, k, b))
  | Compiled.CLword (i, depth, ww, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 depth in
      fun () ->
        let k = resolve ~size:depth ~pow2 (idxf ()) in
        if k < 0 then Pboxed Compiled.CWdropped
        else Pboxed (Compiled.CWmem (i, k, Bits.resize (chunk ()) ww))
  | Compiled.CLrange (i, hi', lo') ->
      let w' = hi' - lo' + 1 in
      if st.imm.(i) then
        let im = Imm.mask w' lsl lo' in
        fun () -> Pmask (i, im, Imm.of_bits (Bits.resize (chunk ()) w') lsl lo')
      else fun () -> Pboxed (Compiled.CWrange (i, hi', lo', Bits.resize (chunk ()) w'))
  | Compiled.CLconcat _ -> assert false

(* Compile a store of [v] into [lv]. [nba = true] defers the write to
   the commit phase (sequential non-blocking); otherwise it applies
   immediately with change detection, exactly like
   [Compiled.write_notify]. *)
let compile_store st (lv : Compiled.clvalue) (v : ex) ~nba : unit -> unit =
  match lv with
  | Compiled.CLvar (i, w) ->
      if st.imm.(i) then (
        let f = int_fn (resize_ex w v) in
        if nba then fun () -> push_flat st i (-1) (f ())
        else fun () -> store_imm st i (f ()))
      else
        let f = bits_fn (resize_ex w v) in
        if nba then fun () -> push_boxed st (Compiled.CWfull (i, f ()))
        else
          fun () ->
            Compiled.apply_write_notify st.env ~notify:st.notify
              (Compiled.CWfull (i, f ()))
  | Compiled.CLbit (i, w, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 w in
      let fb =
        match resize_ex 1 v with
        | Eint (_, f) -> fun () -> f () <> 0
        | Ebits (_, f) -> fun () -> Bits.bit (f ()) 0
      in
      if st.imm.(i) then (
        if nba then
          fun () ->
            let k = resolve ~size:w ~pow2 (idxf ()) in
            if k < 0 then push_boxed st Compiled.CWdropped
            else push_flat st i (1 lsl k) (if fb () then 1 lsl k else 0)
        else
          fun () ->
            let k = resolve ~size:w ~pow2 (idxf ()) in
            if k >= 0 then
              let m = 1 lsl k in
              let old = st.ints.(i) in
              store_imm st i (if fb () then old lor m else old land lnot m))
      else
        let mk () =
          let k = resolve ~size:w ~pow2 (idxf ()) in
          if k < 0 then Compiled.CWdropped else Compiled.CWbit (i, k, fb ())
        in
        if nba then fun () -> push_boxed st (mk ())
        else fun () -> Compiled.apply_write_notify st.env ~notify:st.notify (mk ())
  | Compiled.CLword (i, depth, ww, ix) ->
      let idxf = index_fn (lex st ~ctx:0 ix) in
      let pow2 = is_pow2 depth in
      let fv = bits_fn (resize_ex ww v) in
      let mk () =
        let k = resolve ~size:depth ~pow2 (idxf ()) in
        if k < 0 then Compiled.CWdropped else Compiled.CWmem (i, k, fv ())
      in
      if nba then fun () -> push_boxed st (mk ())
      else fun () -> Compiled.apply_write_notify st.env ~notify:st.notify (mk ())
  | Compiled.CLrange (i, hi, lo) ->
      let w' = hi - lo + 1 in
      if st.imm.(i) then (
        let f = int_fn (resize_ex w' v) in
        let im = Imm.mask w' lsl lo in
        if nba then fun () -> push_flat st i im (f () lsl lo)
        else fun () -> store_imm st i (st.ints.(i) land lnot im lor (f () lsl lo)))
      else
        let f = bits_fn (resize_ex w' v) in
        if nba then
          fun () -> push_boxed st (Compiled.CWrange (i, hi, lo, f ()))
        else
          fun () ->
            Compiled.apply_write_notify st.env ~notify:st.notify
              (Compiled.CWrange (i, hi, lo, f ()))
  | Compiled.CLconcat (parts, total) ->
      let leaves = flatten_concat parts total in
      if Imm.fits total then (
        let fv = int_fn (resize_ex total v) in
        let cur = ref 0 in
        let mks = List.map (mk_leaf_int st cur) leaves in
        fun () ->
          cur := fv ();
          (* resolve every leaf before applying any, matching
             [Compiled.resolve_write]'s resolve-then-apply split *)
          let pends = List.map (fun mk -> mk ()) mks in
          if nba then List.iter (push_pend st) pends
          else List.iter (apply_pend st) pends)
      else
        let fv = bits_fn (resize_ex total v) in
        let curb = ref (Bits.zero total) in
        let mks = List.map (mk_leaf_bits st curb) leaves in
        fun () ->
          curb := fv ();
          let pends = List.map (fun mk -> mk ()) mks in
          if nba then List.iter (push_pend st) pends
          else List.iter (apply_pend st) pends

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                   *)
(* ------------------------------------------------------------------ *)

let seq2 f g () =
  f ();
  g ()

(* Statement lists compile to a single closure; short lists avoid the
   array iteration entirely. *)
let chain = function
  | [] -> fun () -> ()
  | [ f ] -> f
  | [ f; g ] -> seq2 f g
  | fs ->
      let arr = Array.of_list fs in
      fun () -> Array.iter (fun f -> f ()) arr

(* Lower one statement. Every statement closure re-checks the $finish
   flag, as [exec_stmt] does before each statement. [in_comb] selects
   the non-blocking degeneration and display gating of the
   combinational phase. *)
let rec lstmt st ~in_comb (s : Compiled.cstmt) : unit -> unit =
  let fin = st.finished in
  let guard body () = if not !fin then body () in
  match s with
  | Compiled.CSblocking (l, e, cw) ->
      guard (compile_store st l (lex st ~ctx:cw e) ~nba:false)
  | Compiled.CSnonblocking (l, e, cw) ->
      guard (compile_store st l (lex st ~ctx:cw e) ~nba:(not in_comb))
  | Compiled.CSif (c, t, f) ->
      let cf = truthy (lex st ~ctx:0 c) in
      let tf = lseq st ~in_comb t and ff = lseq st ~in_comb f in
      guard (fun () -> if cf () then tf () else ff ())
  | Compiled.CScase (e, items, default) ->
      let ve = lex st ~ctx:0 e in
      let mk_test me =
        let vm = lex st ~ctx:0 me in
        match (ve, vm) with
        | Eint (_, fe), Eint (_, fm) ->
            (* widths <= 63: resizing both to the max width is pure
               zero-extension, so raw-pattern equality is exact *)
            fun () -> fe () = fm ()
        | _ ->
            let w = max (ex_width ve) (ex_width vm) in
            let fe = bits_fn ve and fm = bits_fn vm in
            fun () ->
              Bits.equal (Bits.resize (fe ()) w) (Bits.resize (fm ()) w)
      in
      let items' =
        List.map
          (fun (mes, body) -> (List.map mk_test mes, lseq st ~in_comb body))
          items
      in
      let def' =
        match default with Some body -> lseq st ~in_comb body | None -> fun () -> ()
      in
      guard (fun () ->
          match
            List.find_opt
              (fun (tests, _) -> List.exists (fun t -> t ()) tests)
              items'
          with
          | Some (_, body) -> body ()
          | None -> def' ())
  | Compiled.CSdisplay (fmt, args) ->
      let afs = List.map (fun a -> bits_fn (lex st ~ctx:0 a)) args in
      let render () = Display.render fmt (List.map (fun f -> f ()) afs) in
      if in_comb then
        guard (fun () -> if st.displays then st.emit (render ()))
      else guard (fun () -> st.emit (render ()))
  | Compiled.CSfinish -> guard (fun () -> st.finished := true)

and lseq st ~in_comb stmts = chain (List.map (lstmt st ~in_comb) stmts)

(* Comb assign nodes execute unguarded, like [Simulator.exec_node]. *)
let lower_node st = function
  | Lassign (l, e, cw) -> compile_store st l (lex st ~ctx:cw e) ~nba:false
  | Lblock ss -> lseq st ~in_comb:true ss

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Dirty-set scheduling                                                 *)
(* ------------------------------------------------------------------ *)

(* Same adaptive thresholds as the event kernel: enter the dense sweep
   once >= 3/4 of the plan ran in a settle for 8 settles in a row, drop
   back to sparse once <= 1/4 of the plan changed value for 8 sweeps. *)
let dense_enter_num = 3
let dense_enter_den = 4
let dense_exit_num = 1
let dense_exit_den = 4
let mode_streak_len = 8

let mark_closure st c =
  if not st.cdirty.(c) then (
    st.cdirty.(c) <- true;
    st.ncdirty <- st.ncdirty + 1)

let rec mark_closures st = function
  | [] -> ()
  | c :: tl ->
      mark_closure st c;
      mark_closures st tl

let mark_all_flags st =
  Array.fill st.cdirty 0 (Array.length st.cdirty) true;
  st.ncdirty <- Array.length st.cdirty

(* Recompose [st.notify] from mode + external callback. Closures read
   [st.notify] at call time, so rewiring mid-run is safe (the event
   kernel relies on the same property in [Simulator.wire_notify]).
   With an empty comb plan there is nothing the dirty bits could ever
   skip, so writes bypass the marking wrapper entirely — sequential-only
   designs must not pay for machinery that cannot help them. *)
let rewire st =
  if (not st.dirty_on) || Array.length st.plan = 0 then
    st.notify <- st.ext_notify
  else
    let ext = st.ext_notify in
    match st.lmode with
    | Lsparse ->
        st.notify <-
          (fun i ->
            ext i;
            mark_closures st st.csens.(i))
    | Ldense ->
        (* change counting matters only inside the settle sweep (the
           exit test's reset wipes anything counted between settles),
           so keep the bare external notify installed and let [settle]
           swap [dense_mark] in just around the sweep — sequential
           commits then cost exactly what the plain kernel pays *)
        st.dense_mark <-
          (fun i ->
            ext i;
            st.lchanges <- st.lchanges + 1);
        st.notify <- ext

let set_notify st f =
  st.ext_notify <- f;
  rewire st

(* Full scheduling reset (checkpoint restore): drop back to the sparse
   worklist with everything pending, exactly as [Simulator.restore]
   does for the event kernel, so a restored run re-derives the mode
   trajectory from activity alone. No-op for the plain kernel. *)
let mark_all st =
  if st.dirty_on then (
    st.lmode <- Lsparse;
    st.lmode_streak <- 0;
    rewire st;
    mark_all_flags st)

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let create ~(tab : Compiled.tab) ~(env : Compiled.env) ~(finished : bool ref)
    ~(nodes : node array) ~(fuse : bool array) ~(sens : int list array)
    ~(display_ranks : int list) ~(dirty : bool)
    ~(seq : (Elaborate.clock_edge * Compiled.cstmt list) list) : t =
  let n = Compiled.n_signals tab in
  let ints = Array.make n 0 in
  let imm = Array.make n false in
  let widths = Array.init n (fun i -> Compiled.width tab i) in
  for i = 0 to n - 1 do
    if Compiled.depth tab i = None && Imm.fits widths.(i) then (
      imm.(i) <- true;
      ints.(i) <- Imm.of_bits (Compiled.vec env i))
  done;
  let n_imm = Array.fold_left (fun a b -> if b then a + 1 else a) 0 imm in
  let st =
    {
      env;
      ints;
      imm;
      widths;
      finished;
      dirty_on = dirty;
      notify = ignore;
      ext_notify = ignore;
      pb = [||];
      pb_len = 0;
      pboxed = [];
      displays = false;
      emit = ignore;
      plan = [||];
      seq_pos = [||];
      seq_neg = [||];
      csens = [||];
      cdirty = [||];
      ncdirty = 0;
      disp_closures = [];
      lmode = Lsparse;
      lmode_streak = 0;
      lchanges = 0;
      dense_mark = (fun _ -> ());
      stats =
        {
          lw_nodes = Array.length nodes;
          lw_closures = 0;
          lw_fused = 0;
          lw_imm = n_imm;
          lw_boxed = n - n_imm;
          lw_seq = List.length seq;
          lw_dirty = dirty;
        };
      runs =
        {
          rs_settles = 0;
          rs_closures_run = 0;
          rs_closures_skipped = 0;
          rs_edges = 0;
          rs_commit_imm = 0;
          rs_commit_boxed = 0;
        };
    }
  in
  let closures = Array.map (lower_node st) nodes in
  (* fuse single-reader assign chains: a node marked fuse.(r) folds into
     its predecessor's closure, halving plan-iteration overhead on long
     assign chains. [cidx] records which plan closure each node rank
     landed in, so rank-level sensitivity lifts to the closure level. *)
  let nnodes = Array.length closures in
  let cidx = Array.make (max nnodes 1) 0 in
  let plan = ref [] and nfused = ref 0 and nplan = ref 0 in
  Array.iteri
    (fun r c ->
      if r > 0 && fuse.(r) then (
        incr nfused;
        (match !plan with
        | prev :: tl -> plan := seq2 prev c :: tl
        | [] ->
            plan := [ c ];
            incr nplan);
        cidx.(r) <- !nplan - 1)
      else (
        plan := c :: !plan;
        cidx.(r) <- !nplan;
        incr nplan))
    closures;
  st.plan <- Array.of_list (List.rev !plan);
  let lower_edge edge =
    List.filter_map
      (fun (e, body) -> if e = edge then Some (lseq st ~in_comb:false body) else None)
      seq
    |> Array.of_list
  in
  st.seq_pos <- lower_edge Elaborate.Pos;
  st.seq_neg <- lower_edge Elaborate.Neg;
  if dirty then (
    let nclosures = Array.length st.plan in
    st.cdirty <- Array.make (max nclosures 1) true;
    st.ncdirty <- nclosures;
    st.csens <-
      Array.map
        (fun ranks ->
          List.sort_uniq compare (List.map (fun r -> cidx.(r)) ranks))
        sens;
    st.disp_closures <-
      List.sort_uniq compare (List.map (fun r -> cidx.(r)) display_ranks));
  rewire st;
  st.stats <-
    { st.stats with lw_closures = Array.length st.plan; lw_fused = !nfused };
  st

(* ------------------------------------------------------------------ *)
(* Execution                                                            *)
(* ------------------------------------------------------------------ *)

(* Full sweep over the plan; returns the closure count. *)
let sweep st =
  let plan = st.plan in
  let n = Array.length plan in
  for i = 0 to n - 1 do
    plan.(i) ()
  done;
  n

(* One settle pass. Returns the number of closures evaluated (the whole
   plan for the plain kernel and for dense-mode sweeps). Dirty flags
   set during the pass (by writes this settle performs) stay pending
   for the next settle — same monotone-convergence argument as the
   event kernel's sparse loop: the simulator keeps settling until a
   pass reports no work. *)
let settle st ~displays =
  st.displays <- displays;
  let r = st.runs in
  r.rs_settles <- r.rs_settles + 1;
  if not st.dirty_on then (
    let n = sweep st in
    r.rs_closures_run <- r.rs_closures_run + n;
    n)
  else
    match st.lmode with
    | Ldense ->
        st.lchanges <- 0;
        st.notify <- st.dense_mark;
        let n = sweep st in
        st.notify <- st.ext_notify;
        r.rs_closures_run <- r.rs_closures_run + n;
        if dense_exit_den * st.lchanges <= dense_exit_num * n then (
          st.lmode_streak <- st.lmode_streak + 1;
          if st.lmode_streak >= mode_streak_len then
            (* activity dropped: back to sparse; flags are stale after
               dense sweeps, so re-mark everything once *)
            mark_all st)
        else st.lmode_streak <- 0;
        n
    | Lsparse ->
        (* $display side effects must fire even when inputs are stable,
           exactly like the event kernel's display-rank forcing *)
        if displays then mark_closures st st.disp_closures;
        let plan = st.plan in
        let n = Array.length plan in
        let evaluated = ref 0 in
        if st.ncdirty > 0 then (
          let cdirty = st.cdirty in
          for c = 0 to n - 1 do
            if cdirty.(c) then (
              cdirty.(c) <- false;
              st.ncdirty <- st.ncdirty - 1;
              incr evaluated;
              plan.(c) ())
          done);
        let ev = !evaluated in
        r.rs_closures_run <- r.rs_closures_run + ev;
        r.rs_closures_skipped <- r.rs_closures_skipped + (n - ev);
        (* an empty settle is sparse operating at zero cost — it says
           nothing about how dense the actual work is, so it leaves the
           streak alone; only a busy-but-not-dense settle resets it.
           Without this, designs whose activity arrives every other
           settle (pure sequential commits marking a handful of
           closures) could never accumulate a streak. *)
        if n > 0 && dense_enter_den * ev >= dense_enter_num * n then (
          st.lmode_streak <- st.lmode_streak + 1;
          if st.lmode_streak >= mode_streak_len then (
            st.lmode <- Ldense;
            st.lmode_streak <- 0;
            rewire st))
        else if ev > 0 then st.lmode_streak <- 0;
        ev

let run_edge st edge =
  let arr = match edge with Elaborate.Pos -> st.seq_pos | Elaborate.Neg -> st.seq_neg in
  for i = 0 to Array.length arr - 1 do
    arr.(i) ()
  done;
  st.runs.rs_edges <- st.runs.rs_edges + Array.length arr

let pending_count st = (st.pb_len / 3) + List.length st.pboxed

(* Commit deferred non-blocking writes: the flat immediate buffer in
   push order, then boxed writes in program order (the boxed list is
   reversed, as in the reference executor). Per-signal last-write-wins
   is preserved because a signal's writes always land in one buffer. *)
let commit st =
  let n = st.pb_len in
  if n > 0 then (
    st.runs.rs_commit_imm <- st.runs.rs_commit_imm + (n / 3);
    let b = st.pb in
    let i = ref 0 in
    while !i < n do
      let id = b.(!i) in
      store_imm st id (st.ints.(id) land lnot b.(!i + 1) lor b.(!i + 2));
      i := !i + 3
    done;
    st.pb_len <- 0);
  match st.pboxed with
  | [] -> ()
  | ps ->
      st.runs.rs_commit_boxed <- st.runs.rs_commit_boxed + List.length ps;
      st.pboxed <- [];
      List.iter
        (fun w -> Compiled.apply_write_notify st.env ~notify:st.notify w)
        (List.rev ps)

(* ------------------------------------------------------------------ *)
(* External state access                                                *)
(* ------------------------------------------------------------------ *)

let read_vec st i =
  if st.imm.(i) then Imm.to_bits ~width:st.widths.(i) st.ints.(i)
  else Compiled.vec st.env i

(* Change-detected external write (inputs, stimulus). *)
let write_vec st i v =
  let w = st.widths.(i) in
  if st.imm.(i) then (
    let nv =
      if Bits.width v <= Imm.max_width then Imm.of_bits v land Imm.mask w
      else Imm.of_bits (Bits.resize v w)
    in
    if st.ints.(i) <> nv then (
      st.ints.(i) <- nv;
      st.notify i))
  else
    Compiled.apply_write_notify st.env ~notify:st.notify
      (Compiled.CWfull (i, Bits.resize v w))

(* Raw restore (checkpoint): store without change detection or
   notification; the caller re-marks the whole plan afterwards. *)
let set_vec_raw st i v =
  if st.imm.(i) then st.ints.(i) <- Imm.of_bits (Bits.resize v st.widths.(i))
  else st.env.(i) <- Compiled.Vec (Bits.resize v st.widths.(i))

(* A compiled primitive-input reader over the lowered banks. *)
let input_fn st (e : Compiled.cexpr) : unit -> Bits.t =
  bits_fn (lex st ~ctx:0 e)

let set_emit st f = st.emit <- f
let stats st = st.stats
let run_stats st = st.runs
let plan_size st = Array.length st.plan

(* Closures currently pending: the sparse worklist size, or the whole
   plan when not skipping (dense sweeps and the plain kernel evaluate
   everything). *)
let dirty_count st =
  if st.dirty_on && st.lmode = Lsparse then st.ncdirty else Array.length st.plan

let dense st = st.dirty_on && st.lmode = Ldense
