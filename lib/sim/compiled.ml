(* Interned-signal compiled evaluation.

   [Eval] interprets raw AST nodes over a [(string, value) Hashtbl],
   re-hashing every signal name on every expression node — measurable
   overhead once settling is event-driven and each node evaluation is
   the unit of work. This module compiles, once at simulator
   construction, each expression / lvalue / statement into a resolved
   form in which every signal reference is a dense integer id (assigned
   at elaboration, [Elaborate.f_signal_ids]) and every width, memory
   depth, and assignment context width is pre-resolved. Evaluation then
   reads and writes an id-indexed [value array]: no string hashing, no
   width lookups, no re-resolution on the hot path.

   Semantics are identical to [Eval] (same Verilog width rules, the
   same out-of-range access semantics from the bug study section 3.2.1,
   the same error messages); name-resolution errors simply surface at
   compile (simulator construction) time instead of mid-simulation.
   The change-detecting writes preserve [Eval.apply_write_notify]'s
   contract: a write that does not change the stored value neither
   mutates the environment nor notifies, relying on the Bits phys-eq
   no-op returns for O(1) detection. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits

let err fmt = Printf.ksprintf (fun s -> raise (Eval.Eval_error s)) fmt

type value = Eval.value = Vec of Bits.t | Mem of Bits.t array

type env = value array

(* Compile-time design table: per-id static signal facts. *)
type tab = {
  t_names : string array;  (* id -> flat name *)
  t_ids : (string, int) Hashtbl.t;
  t_widths : int array;  (* vec width, or word width for memories *)
  t_depths : int option array;  (* [Some n] for an n-word memory *)
}

let of_flat (flat : Elaborate.flat) : tab =
  let n = Array.length flat.Elaborate.f_signal_order in
  let widths = Array.make n 0 in
  let depths = Array.make n None in
  Array.iteri
    (fun i name ->
      let s = Hashtbl.find flat.Elaborate.f_signals name in
      widths.(i) <- s.Elaborate.fs_width;
      depths.(i) <- s.Elaborate.fs_depth)
    flat.Elaborate.f_signal_order;
  {
    t_names = flat.Elaborate.f_signal_order;
    t_ids = flat.Elaborate.f_signal_ids;
    t_widths = widths;
    t_depths = depths;
  }

let name tab i = tab.t_names.(i)
let width tab i = tab.t_widths.(i)
let depth tab i = tab.t_depths.(i)
let n_signals tab = Array.length tab.t_names

let id tab n =
  match Hashtbl.find_opt tab.t_ids n with
  | Some i -> i
  | None -> err "unbound signal %s" n

let fresh_env (flat : Elaborate.flat) : env =
  Array.map
    (fun n ->
      let s = Hashtbl.find flat.Elaborate.f_signals n in
      match s.Elaborate.fs_depth with
      | Some d ->
          let init =
            Option.value s.Elaborate.fs_init
              ~default:(Bits.zero s.Elaborate.fs_width)
          in
          Mem (Array.make d init)
      | None ->
          Vec
            (match s.Elaborate.fs_init with
            | Some b -> Bits.resize b s.Elaborate.fs_width
            | None -> Bits.zero s.Elaborate.fs_width))
    flat.Elaborate.f_signal_order

(* ------------------------------------------------------------------ *)
(* Compiled forms                                                      *)
(* ------------------------------------------------------------------ *)

type cexpr =
  | Cconst of Bits.t
  | Cvar of int  (* a vector signal *)
  | Cbit of int * int * cexpr  (* vec id, vec width, index *)
  | Cword of int * int * int * cexpr  (* mem id, depth, word width, index *)
  | Crange of int * int * int  (* vec id, hi, lo *)
  | Cunop of Ast.unop * cexpr
  | Cbinop of Ast.binop * cexpr * cexpr
  | Ccond of cexpr * cexpr * cexpr
  | Cconcat of cexpr list
  | Crepeat of int * cexpr

type clvalue =
  | CLvar of int * int  (* id, width *)
  | CLbit of int * int * cexpr  (* vec id, vec width, index *)
  | CLword of int * int * int * cexpr  (* mem id, depth, word width, index *)
  | CLrange of int * int * int  (* id, hi, lo *)
  | CLconcat of (clvalue * int) list * int
      (* (part, width) MSB-first, total width *)

(* A write with indices already resolved against the current cycle's
   values, so it can be deferred (non-blocking) and applied later. *)
type cwrite =
  | CWfull of int * Bits.t
  | CWbit of int * int * bool
  | CWrange of int * int * int * Bits.t
  | CWmem of int * int * Bits.t
  | CWdropped  (* out-of-range access on a non-power-of-two size *)

type cstmt =
  | CSblocking of clvalue * cexpr * int  (* pre-resolved context width *)
  | CSnonblocking of clvalue * cexpr * int
  | CSif of cexpr * cstmt list * cstmt list
  | CScase of cexpr * (cexpr list * cstmt list) list * cstmt list option
  | CSdisplay of string * cexpr list
  | CSfinish

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

let rec compile_expr tab (e : Ast.expr) : cexpr =
  match e with
  | Ast.Const b -> Cconst b
  | Ast.Ident n -> (
      let i = id tab n in
      match tab.t_depths.(i) with
      | Some _ -> err "memory %s used without an index" n
      | None -> Cvar i)
  | Ast.Index (n, ix) -> (
      let i = id tab n in
      let cix = compile_expr tab ix in
      match tab.t_depths.(i) with
      | Some depth -> Cword (i, depth, tab.t_widths.(i), cix)
      | None -> Cbit (i, tab.t_widths.(i), cix))
  | Ast.Range (n, hi, lo) -> (
      let i = id tab n in
      match tab.t_depths.(i) with
      | Some _ -> err "memory %s used without an index" n
      | None ->
          if hi >= tab.t_widths.(i) then
            err "part select %s[%d:%d] exceeds width %d" n hi lo
              tab.t_widths.(i)
          else Crange (i, hi, lo))
  | Ast.Unop (op, a) -> Cunop (op, compile_expr tab a)
  | Ast.Binop (op, a, b) ->
      Cbinop (op, compile_expr tab a, compile_expr tab b)
  | Ast.Cond (c, t, f) ->
      Ccond (compile_expr tab c, compile_expr tab t, compile_expr tab f)
  | Ast.Concat es -> Cconcat (List.map (compile_expr tab) es)
  | Ast.Repeat (n, a) -> Crepeat (n, compile_expr tab a)

let clvalue_width = function
  | CLvar (_, w) -> w
  | CLbit _ -> 1
  | CLword (_, _, ww, _) -> ww
  | CLrange (_, hi, lo) -> hi - lo + 1
  | CLconcat (_, total) -> total

let rec compile_lvalue tab (l : Ast.lvalue) : clvalue =
  match l with
  | Ast.Lident n -> (
      let i = id tab n in
      match tab.t_depths.(i) with
      | Some _ -> err "cannot assign whole memory %s" n
      | None -> CLvar (i, tab.t_widths.(i)))
  | Ast.Lindex (n, ix) -> (
      let i = id tab n in
      let cix = compile_expr tab ix in
      match tab.t_depths.(i) with
      | Some depth -> CLword (i, depth, tab.t_widths.(i), cix)
      | None -> CLbit (i, tab.t_widths.(i), cix))
  | Ast.Lrange (n, hi, lo) ->
      let i = id tab n in
      if hi >= tab.t_widths.(i) then
        err "part select write %s[%d:%d] exceeds width %d" n hi lo
          tab.t_widths.(i)
      else CLrange (i, hi, lo)
  | Ast.Lconcat ls ->
      let parts =
        List.map
          (fun l ->
            let c = compile_lvalue tab l in
            (c, clvalue_width c))
          ls
      in
      let total = List.fold_left (fun acc (_, w) -> acc + w) 0 parts in
      CLconcat (parts, total)

let rec compile_stmt tab (s : Ast.stmt) : cstmt =
  match s with
  | Ast.Blocking (l, e) ->
      let cl = compile_lvalue tab l in
      (* the target width is static, so the Verilog context width of the
         right-hand side is resolved here, once *)
      CSblocking (cl, compile_expr tab e, clvalue_width cl)
  | Ast.Nonblocking (l, e) ->
      let cl = compile_lvalue tab l in
      CSnonblocking (cl, compile_expr tab e, clvalue_width cl)
  | Ast.If (c, t, f) ->
      CSif
        ( compile_expr tab c,
          List.map (compile_stmt tab) t,
          List.map (compile_stmt tab) f )
  | Ast.Case (e, items, default) ->
      CScase
        ( compile_expr tab e,
          List.map
            (fun it ->
              ( List.map (compile_expr tab) it.Ast.match_exprs,
                List.map (compile_stmt tab) it.Ast.body ))
            items,
          Option.map (List.map (compile_stmt tab)) default )
  | Ast.Display (fmt, args) ->
      CSdisplay (fmt, List.map (compile_expr tab) args)
  | Ast.Finish -> CSfinish

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(* Compilation guarantees ids point at the right kind of value, so the
   kind checks compile away to an impossible-case assert. *)
let vec (env : env) i =
  match env.(i) with Vec b -> b | Mem _ -> assert false

let mem (env : env) i =
  match env.(i) with Mem a -> a | Vec _ -> assert false

let bool_bits = Bits.of_bool

(* [ctx] is the Verilog context width, exactly as in [Eval.eval_ctx]. *)
let rec eval_ctx (env : env) ~ctx (e : cexpr) : Bits.t =
  let widen v = if Bits.width v < ctx then Bits.resize v ctx else v in
  match e with
  | Cconst b -> widen b
  | Cvar i -> widen (vec env i)
  | Cbit (i, w, ix) ->
      let idx = Bits.to_int_trunc (eval_ctx env ~ctx:0 ix) in
      widen
        (match Eval.resolve_index ~size:w idx with
        | Some k -> bool_bits (Bits.bit (vec env i) k)
        | None -> Bits.zero 1)
  | Cword (i, depth, ww, ix) ->
      let idx = Bits.to_int_trunc (eval_ctx env ~ctx:0 ix) in
      widen
        (match Eval.resolve_index ~size:depth idx with
        | Some k -> (mem env i).(k)
        | None -> Bits.zero ww)
  | Crange (i, hi, lo) -> widen (Bits.slice (vec env i) ~hi ~lo)
  | Cunop (op, a) -> eval_unop env ~ctx op a
  | Cbinop (op, a, b) -> eval_binop env ~ctx op a b
  | Ccond (c, t, f) ->
      let c = Bits.reduce_or (eval_ctx env ~ctx:0 c) in
      let tv = eval_ctx env ~ctx t and fv = eval_ctx env ~ctx f in
      let w = max (Bits.width tv) (Bits.width fv) in
      if c then Bits.resize tv w else Bits.resize fv w
  | Cconcat es -> widen (Bits.concat (List.map (eval_ctx env ~ctx:0) es))
  | Crepeat (n, a) -> widen (Bits.repeat n (eval_ctx env ~ctx:0 a))

and eval_unop env ~ctx op a =
  match op with
  | Ast.Bnot -> Bits.lognot (eval_ctx env ~ctx a)
  | Ast.Neg -> Bits.neg (eval_ctx env ~ctx a)
  | Ast.Lnot -> bool_bits (Bits.is_zero (eval_ctx env ~ctx:0 a))
  | Ast.Rand -> bool_bits (Bits.reduce_and (eval_ctx env ~ctx:0 a))
  | Ast.Ror -> bool_bits (Bits.reduce_or (eval_ctx env ~ctx:0 a))
  | Ast.Rxor -> bool_bits (Bits.reduce_xor (eval_ctx env ~ctx:0 a))

and eval_binop env ~ctx op a b =
  match op with
  | Ast.Land ->
      bool_bits
        (Bits.reduce_or (eval_ctx env ~ctx:0 a)
        && Bits.reduce_or (eval_ctx env ~ctx:0 b))
  | Ast.Lor ->
      bool_bits
        (Bits.reduce_or (eval_ctx env ~ctx:0 a)
        || Bits.reduce_or (eval_ctx env ~ctx:0 b))
  | Ast.Shl | Ast.Shr | Ast.Ashr -> (
      let va = eval_ctx env ~ctx a in
      let amount =
        min (Bits.to_int_trunc (eval_ctx env ~ctx:0 b)) (Bits.width va)
      in
      match op with
      | Ast.Shl -> Bits.shift_left va amount
      | Ast.Shr -> Bits.shift_right va amount
      | _ -> Bits.arith_shift_right va amount)
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let va = eval_ctx env ~ctx:0 a and vb = eval_ctx env ~ctx:0 b in
      let w = max (Bits.width va) (Bits.width vb) in
      let va = Bits.resize va w and vb = Bits.resize vb w in
      bool_bits
        (match op with
        | Ast.Eq -> Bits.equal va vb
        | Ast.Neq -> not (Bits.equal va vb)
        | Ast.Lt -> Bits.lt va vb
        | Ast.Le -> Bits.le va vb
        | Ast.Gt -> Bits.gt va vb
        | _ -> Bits.ge va vb)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor -> (
      let va = eval_ctx env ~ctx a and vb = eval_ctx env ~ctx b in
      let w = max (Bits.width va) (Bits.width vb) in
      let va = Bits.resize va w and vb = Bits.resize vb w in
      match op with
      | Ast.Add -> Bits.add va vb
      | Ast.Sub -> Bits.sub va vb
      | Ast.Mul -> Bits.mul va vb
      | Ast.Div -> Bits.div va vb
      | Ast.Mod -> Bits.rem va vb
      | Ast.Band -> Bits.logand va vb
      | Ast.Bor -> Bits.logor va vb
      | _ -> Bits.logxor va vb)

let eval env e = eval_ctx env ~ctx:0 e

(* ------------------------------------------------------------------ *)
(* Writes                                                              *)
(* ------------------------------------------------------------------ *)

(* The write list is built by prepending onto an accumulator and
   reversed once — linear even for deeply nested concatenated lvalues
   (the seed's string-keyed resolver appended per element, quadratic). *)
let rec resolve_into env acc (l : clvalue) (value : Bits.t) =
  match l with
  | CLvar (i, w) -> CWfull (i, Bits.resize value w) :: acc
  | CLbit (i, w, ix) -> (
      let idx = Bits.to_int_trunc (eval env ix) in
      match Eval.resolve_index ~size:w idx with
      | Some k -> CWbit (i, k, Bits.bit (Bits.resize value 1) 0) :: acc
      | None -> CWdropped :: acc)
  | CLword (i, depth, ww, ix) -> (
      let idx = Bits.to_int_trunc (eval env ix) in
      match Eval.resolve_index ~size:depth idx with
      | Some k -> CWmem (i, k, Bits.resize value ww) :: acc
      | None -> CWdropped :: acc)
  | CLrange (i, hi, lo) ->
      CWrange (i, hi, lo, Bits.resize value (hi - lo + 1)) :: acc
  | CLconcat (parts, total) ->
      (* MSB-first: split [value] into per-target chunks *)
      let value = Bits.resize value total in
      let _, acc =
        List.fold_left
          (fun (hi, acc) (lv, w) ->
            let chunk = Bits.slice value ~hi ~lo:(hi - w + 1) in
            (hi - w, resolve_into env acc lv chunk))
          (total - 1, acc) parts
      in
      acc

let resolve_write env (l : clvalue) (value : Bits.t) : cwrite list =
  List.rev (resolve_into env [] l value)

(* Change-detecting write: apply only when the stored value changes and
   report the signal id through [notify] when it does. The Bits
   functional updates return their argument physically unchanged on a
   no-op, so the unchanged case is detected in O(1) without allocation. *)
let apply_write_notify (env : env) ~notify = function
  | CWfull (i, v) ->
      let old = vec env i in
      if not (Bits.equal old v) then (
        env.(i) <- Vec v;
        notify i)
  | CWbit (i, k, b) ->
      let old = vec env i in
      let v = Bits.set_bit old k b in
      if v != old then (
        env.(i) <- Vec v;
        notify i)
  | CWrange (i, hi, lo, v) ->
      let old = vec env i in
      let v = Bits.set_slice old ~hi ~lo v in
      if v != old then (
        env.(i) <- Vec v;
        notify i)
  | CWmem (i, k, v) ->
      let a = mem env i in
      if not (Bits.equal a.(k) v) then (
        a.(k) <- v;
        notify i)
  | CWdropped -> ()

let write_notify env ~notify l value =
  List.iter (apply_write_notify env ~notify) (resolve_write env l value)
