(** Cycle-accurate two-phase simulator over an elaborated design.

    Each {!step} performs one clock cycle:
    + settle combinational logic (continuous assigns and always-star
      blocks, in a topological order computed at construction),
    + execute sequential blocks against the settled pre-edge state,
      collecting non-blocking writes ($display statements fire here,
      with pre-edge values, as in event-driven simulators),
    + step the builtin IP primitives (FIFOs, RAMs),
    + commit the non-blocking writes and primitive outputs,
    + settle combinational logic again so outputs reflect the new state.

    The simulator assumes a single clock domain: every sequential block
    fires on every [step], which matches the single-clock subset the
    testbed uses (dcfifo instances have both clocks tied).

    Combinational settling is {e event-driven} by default: a
    sensitivity map (signal -> reading nodes) is built at construction,
    every write is change-detected, and each settle re-evaluates only
    the nodes whose inputs actually changed, in topological rank order.
    This preserves the exact cycle-level semantics of the full sweep
    (including the once-per-final-settle firing of combinational
    [$display] statements) while skipping quiescent logic entirely.

    On designs where nearly every node fires every cycle, dirty-set
    bookkeeping costs more than the evaluations it saves, so the
    event-driven kernel adaptively falls back to a rank-ordered full
    scan ({e dense mode}) while the dirty fraction stays high and
    returns to sparse scheduling when activity drops; see
    {!dense_mode}. Mode switches never change simulation results. *)

exception Combinational_cycle of string list
(** Raised at construction when continuous assignments / combinational
    blocks form a dependency cycle; carries the signals involved. *)

type kernel =
  | Event_driven
      (** dirty-set scheduling over the sensitivity map *)
  | Brute_force
      (** re-evaluate the full topological plan on every settle — the
          seed behavior, kept as a differential-testing reference *)
  | Lowered
      (** closure-array kernel: each comb node compiled once into a
          fused [unit -> unit] closure, narrow signals unboxed in a
          dense int bank ({!Lowered}); sweeps the full fused plan every
          settle *)
  | Lowered_dirty
      (** the closure-array kernel composed with event-style skipping:
          per-closure dirty bits fed from a closure-level sensitivity
          index, with the event kernel's adaptive sparse/dense
          hysteresis, so idle plans skip and fully-active plans pay no
          flag traffic *)

val kernel_name : kernel -> string
(** ["event"], ["brute"], ["lowered"], or ["lowered-dirty"] — the CLI
    spelling. *)

val kernel_of_string : string -> kernel option
(** Inverse of {!kernel_name} (also accepts ["brute-force"] and
    ["lowered_dirty"]). *)

type t

val create : ?kernel:kernel -> Elaborate.flat -> t
(** Build a simulator with all registers at their declared initial
    values (zero by default) and primitive outputs settled. When
    [kernel] is omitted it is selected automatically from the plan
    shape: {!Lowered_dirty} for any design whose combinational plan
    fits the lowering budget (every current testbed design),
    {!Event_driven} for very large plans. All kernels produce
    byte-identical traces. *)

val kernel : t -> kernel
(** The kernel this simulator was built with (after auto-selection). *)

val step : t -> unit
(** Advance one clock cycle. No-op once the design executed [$finish]. *)

val run : t -> int -> unit
(** [run sim n] steps up to [n] cycles, stopping early on [$finish]. *)

val set_input : t -> string -> Fpga_bits.Bits.t -> unit
(** Drive a top-level input (resized to its declared width). Takes
    effect at the next [step]. *)

val set_input_int : t -> string -> int -> unit

val read : t -> string -> Fpga_bits.Bits.t
(** Read any signal by its flat name (post-settle value). *)

val read_int : t -> string -> int
(** Low 62 bits of {!read}, as an int. *)

val read_memory : t -> string -> Fpga_bits.Bits.t array
(** Snapshot of a memory's words — the JTAG-readback analog used by
    SignalCat's log reconstruction. *)

val log : t -> (int * string) list
(** All $display output so far, oldest first, as (cycle, text). *)

val cycle : t -> int
(** Number of completed cycles. *)

val finished : t -> bool
(** The design executed [$finish]. *)

val on_display : t -> (int -> string -> unit) -> unit
(** Install a hook called for every $display as it fires. *)

val on_step : t -> (int -> unit) -> unit
(** Register a hook called after every completed {!step} with the cycle
    number just finished (0-based). Hooks run in registration order;
    multiple hooks may be installed. Registering no hook keeps [step]
    on its original path. *)

val settle : ?displays:bool -> t -> unit
(** Settle combinational logic without a clock edge (rarely needed
    directly; [step] calls it). *)

(** {1 Telemetry}

    Kernel-profiling counters, recorded only when the global
    {!Fpga_telemetry.Telemetry} switch was on at {!create} time —
    otherwise every accessor below reports nothing and the hot paths
    carry no instrumentation at all. *)

type stats = {
  st_steps : int;  (** completed clock cycles *)
  st_settles : int;  (** combinational settle passes *)
  st_node_rounds : int;  (** settles × plan size: work a full sweep does *)
  st_nodes_evaluated : int;  (** nodes actually re-evaluated *)
  st_nodes_skipped : int;  (** [st_node_rounds - st_nodes_evaluated] *)
  st_dirty_total : int;  (** sum of dirty-set sizes at settle entry *)
  st_dirty_peak : int;  (** largest dirty set seen *)
  st_nba_commits : int;  (** non-blocking writes committed *)
  st_prim_steps : int;  (** primitive (FIFO/RAM) step invocations *)
  st_displays : int;  (** $display statements fired *)
  st_settle_hist : Fpga_telemetry.Telemetry.Histogram.snapshot;
      (** distribution of nodes evaluated per settle *)
}

val stats : t -> stats option
(** [None] when telemetry was disabled at construction. *)

val dense_mode : t -> bool
(** True while the event-driven or dirty-lowered kernel is in its dense
    full-scan fallback (always false for {!Brute_force} and plain
    {!Lowered}). Exposed for tests and profiling; mode switches never
    change simulation results. *)

val lowering_stats : t -> Lowered.stats option
(** Closure/representation counts from the lowering pass; [None] unless
    the kernel is a lowered variant. Always available (not
    telemetry-gated) — the numbers are static facts of the compiled
    plan. *)

val lowered_run_stats : t -> Lowered.run_stats option
(** Runtime counters of the lowered kernels (closures run/skipped,
    commit-buffer occupancy); [None] unless the kernel is a lowered
    variant. Always maintained (a few int stores per settle, never per
    node), so available even without telemetry. *)

val kernel_efficiency : t -> float option
(** [st_nodes_evaluated / st_node_rounds] — the fraction of full-sweep
    work the kernel actually performed (1.0 for {!Brute_force}; for
    lowered kernels both counts are in fused closures). [None] when
    telemetry is off or nothing ran. *)

val toggle_counts : t -> (string * int) list
(** Per-signal change counts (every change-detected write that took
    effect), in dense-id order; empty when telemetry is off. *)

val hottest_signals : ?k:int -> t -> (string * int) list
(** Top-[k] (default 10) most active signals by toggle count,
    descending, ties by name. *)

(** {1 Checkpointing}

    Deep snapshots of the architectural state (registers, memories,
    primitive contents, cycle count, log), in the spirit of the
    checkpoint-based FPGA debuggers the paper relates to (DESSERT,
    StateMover): restoring a checkpoint and re-stepping replays the
    original trace exactly. *)

type checkpoint

val checkpoint : t -> checkpoint
val restore : t -> checkpoint -> unit

(** {2 Serializable checkpoints}

    The on-disk counterpart of {!checkpoint}/{!restore}: the same
    architectural state, name-keyed into the versioned, content-hashed
    {!Checkpoint} wire format and bound to the design by its structural
    hash. Restoring a serialized checkpoint and stepping yields results
    bit-identical to a run that never stopped — the replay-determinism
    property the CI replay gate enforces. *)

val save_checkpoint :
  ?tag:string -> ?meta:(string * string) list -> t -> Checkpoint.t
(** Snapshot the complete state at the current cycle boundary. [tag]
    records free-form provenance (e.g. the bug id); [meta] is an
    open-ended key/value section for harness replay state (observed
    rows, monitor flags, stimulus seeds). *)

val restore_checkpoint : t -> Checkpoint.t -> unit
(** Restore a snapshot into a simulator built from the same design.
    Raises {!Checkpoint.Checkpoint_error} when the checkpoint's design
    signature, a signal's width/shape, or a primitive's geometry does
    not match — a checkpoint can never be silently restored into a
    different design. The event-driven kernel restarts in sparse mode
    with every node dirty (a conservative superset that re-derives the
    schedule without affecting results). *)
