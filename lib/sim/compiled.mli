(** Interned-signal compiled evaluation.

    Compiles AST expressions/lvalues/statements once, at simulator
    construction, into a resolved form in which every signal reference
    is a dense integer id ({!Elaborate.flat}[.f_signal_ids]) and every
    width, memory depth, and assignment context width is pre-resolved.
    Evaluation then runs over an id-indexed [value array] — no string
    hashing or width lookups on the hot path.

    Semantics match {!Eval} exactly (width rules, out-of-range access
    semantics, error messages); name-resolution errors are raised as
    {!Eval.Eval_error} at compile time rather than mid-simulation. *)

type value = Eval.value = Vec of Fpga_bits.Bits.t | Mem of Fpga_bits.Bits.t array

type env = value array
(** Signal values indexed by dense signal id. *)

(** Per-id static signal facts, derived from the flat design. *)
type tab

val of_flat : Elaborate.flat -> tab
val name : tab -> int -> string
val id : tab -> string -> int
(** Raises {!Eval.Eval_error} ("unbound signal ...") when absent. *)

val width : tab -> int -> int
(** Vector width, or word width for a memory. *)

val depth : tab -> int -> int option
(** [Some n] for an [n]-word memory, [None] for a vector. *)

val n_signals : tab -> int

val fresh_env : Elaborate.flat -> env
(** Initial environment: declared initial values, zero otherwise. *)

(** {1 Compiled forms} *)

type cexpr =
  | Cconst of Fpga_bits.Bits.t
  | Cvar of int
  | Cbit of int * int * cexpr  (** vec id, vec width, index *)
  | Cword of int * int * int * cexpr  (** mem id, depth, word width, index *)
  | Crange of int * int * int  (** vec id, hi, lo *)
  | Cunop of Fpga_hdl.Ast.unop * cexpr
  | Cbinop of Fpga_hdl.Ast.binop * cexpr * cexpr
  | Ccond of cexpr * cexpr * cexpr
  | Cconcat of cexpr list
  | Crepeat of int * cexpr

type clvalue =
  | CLvar of int * int  (** id, width *)
  | CLbit of int * int * cexpr
  | CLword of int * int * int * cexpr
  | CLrange of int * int * int
  | CLconcat of (clvalue * int) list * int
      (** (part, width) MSB-first, total width *)

type cwrite =
  | CWfull of int * Fpga_bits.Bits.t
  | CWbit of int * int * bool
  | CWrange of int * int * int * Fpga_bits.Bits.t
  | CWmem of int * int * Fpga_bits.Bits.t
  | CWdropped

type cstmt =
  | CSblocking of clvalue * cexpr * int  (** pre-resolved context width *)
  | CSnonblocking of clvalue * cexpr * int
  | CSif of cexpr * cstmt list * cstmt list
  | CScase of cexpr * (cexpr list * cstmt list) list * cstmt list option
  | CSdisplay of string * cexpr list
  | CSfinish

(** {1 Compilation} — raises {!Eval.Eval_error} on unbound names,
    memory misuse, or out-of-width part selects. *)

val compile_expr : tab -> Fpga_hdl.Ast.expr -> cexpr
val compile_lvalue : tab -> Fpga_hdl.Ast.lvalue -> clvalue
val compile_stmt : tab -> Fpga_hdl.Ast.stmt -> cstmt
val clvalue_width : clvalue -> int

(** {1 Evaluation} *)

val vec : env -> int -> Fpga_bits.Bits.t
(** The vector at id [i]; ids are guaranteed well-kinded by compilation. *)

val mem : env -> int -> Fpga_bits.Bits.t array
(** The memory word array at id [i]. *)

val eval_ctx : env -> ctx:int -> cexpr -> Fpga_bits.Bits.t
(** [ctx] is the Verilog context width, as in {!Eval.eval_ctx}. *)

val eval : env -> cexpr -> Fpga_bits.Bits.t
(** Self-determined context ([ctx = 0]). *)

val resolve_write : env -> clvalue -> Fpga_bits.Bits.t -> cwrite list
(** Resolve indices against current values; linear in the number of
    concatenated targets. *)

val apply_write_notify : env -> notify:(int -> unit) -> cwrite -> unit
(** Apply a resolved write only if it changes the stored value, calling
    [notify id] when it does. *)

val write_notify : env -> notify:(int -> unit) -> clvalue -> Fpga_bits.Bits.t -> unit
