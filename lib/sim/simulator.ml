(* Cycle-accurate two-phase simulator over an elaborated design.

   Each [step] performs one clock cycle:
     1. settle combinational logic (continuous assigns and always-star blocks),
     2. execute sequential blocks against the settled pre-edge state,
        collecting non-blocking writes,
     3. step builtin IP primitives (FIFOs, RAMs),
     4. commit non-blocking writes and primitive outputs,
     5. settle combinational logic again so outputs reflect the new
        state; $display statements in combinational blocks fire once
        during this final settle.

   Combinational nodes are topologically ordered at construction;
   combinational cycles raise [Combinational_cycle].

   All executable code is compiled at construction into the interned
   form of [Compiled]: signal references become dense integer ids into a
   [value array] and widths are pre-resolved, so the per-cycle hot path
   performs no string hashing or name resolution. The sensitivity map
   and the dirty-set notify path run on ids too.

   Settling is event-driven by default: a sensitivity map (signal id ->
   reading nodes) is built at construction, every write is
   change-detected, and a settle only re-evaluates nodes whose inputs
   actually changed since they last ran, in topological rank order.
   Because node evaluation is a pure function of the environment, the
   event-driven schedule produces exactly the state the brute-force
   full-plan sweep would; nodes containing $display are forced onto the
   dirty set during display-enabled settles so logs stay identical too.
   The [Brute_force] kernel keeps the seed full-sweep behavior as a
   differential-testing reference. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Telemetry = Fpga_telemetry.Telemetry
open Elaborate

exception Combinational_cycle of string list

type kernel = Event_driven | Brute_force | Lowered | Lowered_dirty

let kernel_name = function
  | Event_driven -> "event"
  | Brute_force -> "brute"
  | Lowered -> "lowered"
  | Lowered_dirty -> "lowered-dirty"

let kernel_of_string = function
  | "event" -> Some Event_driven
  | "brute" | "brute-force" -> Some Brute_force
  | "lowered" -> Some Lowered
  | "lowered-dirty" | "lowered_dirty" -> Some Lowered_dirty
  | _ -> None

(* Auto-selection threshold, kept as a guard against pathological plan
   sizes where construction-time lowering cost (one closure tree per
   node) could outweigh its benefit. Within the bound the dirty lowered
   kernel dominates: it has the lowered kernel's closure dispatch and
   the event kernel's change-driven skipping, and its adaptive dense
   mode degenerates to the plain sweep on fully-active plans. *)
let auto_lowered_max_nodes = 4096

let auto_kernel ~comb_nodes =
  if comb_nodes <= auto_lowered_max_nodes then Lowered_dirty else Event_driven

(* The event-driven kernel's adaptive execution mode. [Sparse] is the
   dirty-set schedule. On designs where nearly every node fires every
   cycle (a fully-active pipeline like D8), the dirty-set bookkeeping
   costs more than the evaluations it saves, so the kernel falls back
   to [Dense]: a rank-ordered full scan with no flag reads or clears -
   exactly the brute-force sweep, but it keeps counting how many writes
   actually change a value so it can switch back when activity drops.
   Transitions are hysteretic (a streak of consecutive settles must
   agree) and depend only on dirty/changed counts, so instrumented and
   uninstrumented runs take identical mode trajectories. *)
type mode = Sparse | Dense

(* enter Dense when a sparse settle ends up evaluating >= 3/4 of the
   plan anyway (cascades included), leave when <= 1/4 of a dense
   sweep's evaluations change anything; 8 consecutive settles either
   way *)
let dense_enter_num = 3
let dense_enter_den = 4
let dense_exit_num = 1
let dense_exit_den = 4
let mode_streak_len = 8

(* AST-level node, used only for dependency analysis (reads/writes are
   name sets); execution uses the compiled [comb_node] form. *)
type ast_node = Aassign of Ast.lvalue * Ast.expr | Ablock of Ast.stmt list

type comb_node =
  | Cassign of Compiled.clvalue * Compiled.cexpr * int  (* ctx width *)
  | Cblock of Compiled.cstmt list

type fifo_state = {
  f_depth : int;
  f_width : int;
  f_data : Bits.t array;
  mutable f_head : int;
  mutable f_count : int;
}

type ram_state = { r_words : Bits.t array; mutable r_q : Bits.t }

(* IP instance with compiled port connections: inputs as pre-compiled
   reader closures (bound to whichever kernel's value banks are live),
   outputs as signal ids. *)
type cprim = {
  cp_src : fprim;
  cp_inputs : (string * (unit -> Bits.t)) list;
  cp_outputs : (string * int) list;
}

type prim_state =
  | Pfifo of cprim * fifo_state
  | Pram of cprim * ram_state

(* Kernel-profiling state, allocated at construction only when the
   telemetry switch is on; [None] keeps the hot paths at a single
   branch per settle/edge, with the per-node and per-write code
   untouched. *)
type istats = {
  mutable s_steps : int;
  mutable s_settles : int;
  mutable s_node_rounds : int;  (* nodes considered: settles * plan size *)
  mutable s_nodes_evaluated : int;
  mutable s_dirty_total : int;  (* sum of dirty-set sizes at settle entry *)
  mutable s_dirty_peak : int;
  mutable s_nba_commits : int;
  mutable s_prim_steps : int;
  mutable s_displays : int;
  s_toggles : int array;  (* per-signal change counts, by dense id *)
  s_settle_hist : Telemetry.Histogram.t;  (* nodes evaluated per settle *)
  (* step-event sampling: one aggregated bus event per [s_sample_every]
     cycles instead of one per cycle; totals stay exact *)
  s_sample_every : int;
  mutable s_cycles_in_window : int;
  mutable s_evaluated_mark : int;  (* s_nodes_evaluated at last publish *)
  (* bus accounting at create: the traced series reports this run's
     publishes/drops, not the sink's lifetime totals, so the numbers
     are identical whether the run shares a domain or owns one *)
  s_bus_pub0 : int;
  s_bus_drop0 : int;
}

type t = {
  flat : flat;
  tab : Compiled.tab;
  env : Compiled.env;  (* signal values indexed by dense id *)
  kernel : kernel;
  nodes : comb_node array;  (* topological order: writers before readers *)
  sens : int list array;  (* signal id -> ranks of reading nodes *)
  display_nodes : int list;  (* ranks of nodes containing $display *)
  dirty : bool array;  (* per-rank pending-re-evaluation flag *)
  mutable ndirty : int;
  mutable mode : mode;  (* event-driven only; brute force ignores it *)
  mutable mode_streak : int;  (* consecutive settles meeting the switch test *)
  mutable nchanges : int;  (* value-changing writes during a dense sweep *)
  mutable notify : int -> unit;  (* change callback wired to [mark_signal] *)
  seq : (Elaborate.clock_edge * Compiled.cstmt list) list;
  prims : prim_state list;
  low : Lowered.t option;  (* present iff [kernel] is a lowered variant *)
  mutable cycle : int;
  finished : bool ref;  (* shared with the lowered kernel's $finish *)
  mutable log : (int * string) list;  (* newest first *)
  mutable log_len : int;
  mutable log_memo : int * (int * string) list;
      (* oldest-first view cached at a given length, so repeated [log]
         reads between new displays cost O(1) instead of re-reversing *)
  mutable display_hook : (int -> string -> unit) option;
  mutable step_hooks : (int -> unit) list;  (* registration order *)
  stats : istats option;
}

(* ------------------------------------------------------------------ *)
(* Dirty-set bookkeeping                                               *)
(* ------------------------------------------------------------------ *)

let mark_rank sim r =
  if not sim.dirty.(r) then (
    sim.dirty.(r) <- true;
    sim.ndirty <- sim.ndirty + 1)

(* top-level recursion instead of [List.iter (mark_rank sim)]: the
   partial application would allocate a closure on every single write *)
let rec mark_ranks sim = function
  | [] -> ()
  | r :: tl ->
      mark_rank sim r;
      mark_ranks sim tl

let mark_signal sim i = mark_ranks sim sim.sens.(i)

let mark_all sim =
  Array.fill sim.dirty 0 (Array.length sim.dirty) true;
  sim.ndirty <- Array.length sim.dirty

(* The notify wiring is decided per (kernel, mode, stats) so each
   configuration pays only for what it uses: the uninstrumented sparse
   path runs the exact pre-telemetry change callback, the dense path
   does no dirty marking at all (everything runs anyway) and just
   counts value changes for the mode-exit test. *)
let wire_notify sim =
  (match (sim.kernel, sim.mode, sim.stats) with
  | (Brute_force | Lowered | Lowered_dirty), _, None -> sim.notify <- ignore
  | (Brute_force | Lowered | Lowered_dirty), _, Some st ->
      sim.notify <- (fun i -> st.s_toggles.(i) <- st.s_toggles.(i) + 1)
  (* no combinational plan, nothing to mark: purely sequential designs
     (D4, D8) must not pay any event-kernel change-tracking at all *)
  | Event_driven, _, None when Array.length sim.nodes = 0 ->
      sim.notify <- ignore
  | Event_driven, _, Some st when Array.length sim.nodes = 0 ->
      sim.notify <- (fun i -> st.s_toggles.(i) <- st.s_toggles.(i) + 1)
  | Event_driven, Sparse, None -> sim.notify <- mark_signal sim
  | Event_driven, Sparse, Some st ->
      sim.notify <-
        (fun i ->
          st.s_toggles.(i) <- st.s_toggles.(i) + 1;
          mark_signal sim i)
  | Event_driven, Dense, None ->
      sim.notify <- (fun _ -> sim.nchanges <- sim.nchanges + 1)
  | Event_driven, Dense, Some st ->
      sim.notify <-
        (fun i ->
          st.s_toggles.(i) <- st.s_toggles.(i) + 1;
          sim.nchanges <- sim.nchanges + 1));
  (* the lowered kernel holds its own copy of the callback; keep it in
     lock-step so toggle counts match the other kernels *)
  match sim.low with
  | Some low -> Lowered.set_notify low sim.notify
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Combinational scheduling                                            *)
(* ------------------------------------------------------------------ *)

let node_reads = function
  | Aassign (l, e) -> Ast.dedup (Ast.expr_reads e @ Ast.lvalue_reads l)
  | Ablock stmts -> Ast.dedup (List.concat_map Ast.stmt_reads stmts)

let node_writes = function
  | Aassign (l, _) -> Ast.lvalue_bases l
  | Ablock stmts -> Ast.dedup (List.concat_map Ast.stmt_writes stmts)

let topo_sort (nodes : ast_node list) : ast_node list =
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let writes = Array.map node_writes arr in
  let reads = Array.map node_reads arr in
  (* reader index for every read signal, built once: successor lookup is
     then linear in the actual edges rather than rescanning every node's
     read set for every written signal *)
  let readers = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun j rs ->
      List.iter
        (fun r ->
          let prev = Option.value (Hashtbl.find_opt readers r) ~default:[] in
          Hashtbl.replace readers r (j :: prev))
        rs)
    reads;
  let succs i =
    (* nodes that read what node i writes *)
    List.concat_map
      (fun w -> Option.value (Hashtbl.find_opt readers w) ~default:[])
      writes.(i)
    |> List.filter (fun j -> j <> i)
    |> List.sort_uniq Int.compare
  in
  let state = Array.make n 0 (* 0 unvisited, 1 in-stack, 2 done *) in
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | 2 -> ()
    | 1 ->
        let cyc = Ast.dedup (writes.(i) @ reads.(i)) in
        raise (Combinational_cycle cyc)
    | _ ->
        state.(i) <- 1;
        List.iter visit (succs i);
        state.(i) <- 2;
        order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i
  done;
  (* each node is prepended after its readers, so [order] places every
     writer before all of its readers *)
  List.map (fun i -> arr.(i)) !order

(* ------------------------------------------------------------------ *)
(* Statement interpretation                                            *)
(* ------------------------------------------------------------------ *)

type exec_ctx = {
  sim : t;
  mutable pending : Compiled.cwrite list;  (* reversed *)
  in_comb_phase : bool;
  displays_enabled : bool;
}

(* The $display sink, shared by every kernel: log, stats, telemetry
   bus, hook. Reads the cycle counter at emission time. *)
let emit_text sim text =
  sim.log <- (sim.cycle, text) :: sim.log;
  sim.log_len <- sim.log_len + 1;
  (match sim.stats with
  | Some st ->
      st.s_displays <- st.s_displays + 1;
      Telemetry.Bus.publish (Telemetry.bus ())
        {
          Telemetry.ev_cycle = sim.cycle;
          ev_source = "simulator";
          ev_kind = "display";
          ev_data = [ ("text", text) ];
        }
  | None -> ());
  match sim.display_hook with Some f -> f sim.cycle text | None -> ()

let emit_display ctx fmt args =
  if ctx.displays_enabled then (
    let vals = List.map (Compiled.eval ctx.sim.env) args in
    emit_text ctx.sim (Display.render fmt vals))

let rec exec_stmt ctx (s : Compiled.cstmt) =
  if not !(ctx.sim.finished) then
    match s with
    | Compiled.CSblocking (l, e, cw) ->
        (* blocking assignments update immediately, visible to the next
           statement, in both combinational and sequential blocks *)
        let v = Compiled.eval_ctx ctx.sim.env ~ctx:cw e in
        Compiled.write_notify ctx.sim.env ~notify:ctx.sim.notify l v
    | Compiled.CSnonblocking (l, e, cw) ->
        let v = Compiled.eval_ctx ctx.sim.env ~ctx:cw e in
        if ctx.in_comb_phase then
          (* non-blocking inside a combinational block degenerates to a
             blocking update in a two-phase simulator *)
          Compiled.write_notify ctx.sim.env ~notify:ctx.sim.notify l v
        else
          ctx.pending <-
            List.rev_append
              (Compiled.resolve_write ctx.sim.env l v)
              ctx.pending
    | Compiled.CSif (c, t, f) ->
        if Bits.reduce_or (Compiled.eval ctx.sim.env c) then
          List.iter (exec_stmt ctx) t
        else List.iter (exec_stmt ctx) f
    | Compiled.CScase (e, items, default) -> (
        let v = Compiled.eval ctx.sim.env e in
        let matches (match_exprs, _) =
          List.exists
            (fun me ->
              let mv = Compiled.eval ctx.sim.env me in
              let w = max (Bits.width v) (Bits.width mv) in
              Bits.equal (Bits.resize v w) (Bits.resize mv w))
            match_exprs
        in
        match List.find_opt matches items with
        | Some (_, body) -> List.iter (exec_stmt ctx) body
        | None -> (
            match default with
            | Some body -> List.iter (exec_stmt ctx) body
            | None -> ()))
    | Compiled.CSdisplay (fmt, args) -> emit_display ctx fmt args
    | Compiled.CSfinish -> ctx.sim.finished := true

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let prim_param (cp : cprim) name default =
  Option.value (List.assoc_opt name cp.cp_src.fp_params) ~default

let make_prim_state (cp : cprim) : prim_state =
  match cp.cp_src.fp_kind with
  | Scfifo | Dcfifo ->
      let width = prim_param cp "lpm_width" 8 in
      let depth = prim_param cp "lpm_numwords" 16 in
      Pfifo
        ( cp,
          {
            f_depth = depth;
            f_width = width;
            f_data = Array.make depth (Bits.zero width);
            f_head = 0;
            f_count = 0;
          } )
  | Altsyncram ->
      let width = prim_param cp "width_a" 8 in
      let words = prim_param cp "numwords_a" 16 in
      Pram
        (cp, { r_words = Array.make words (Bits.zero width); r_q = Bits.zero width })

let prim_input (cp : cprim) name =
  match List.assoc_opt name cp.cp_inputs with
  | Some f -> f ()
  | None -> Bits.zero 1

let prim_input_bool cp name = Bits.reduce_or (prim_input cp name)

(* Change-detected write to a vector signal through whichever kernel's
   value bank is live; resizes to the declared width and notifies on
   change. Memories are never written this way. *)
let write_sig sim i value =
  match sim.env.(i) with
  | Compiled.Mem _ -> ()
  | Compiled.Vec old -> (
      match sim.low with
      | Some low -> Lowered.write_vec low i value
      | None ->
          let value = Bits.resize value (Bits.width old) in
          if not (Bits.equal old value) then (
            sim.env.(i) <- Compiled.Vec value;
            sim.notify i))

(* Drive a primitive output signal if it is connected; change-detected
   so a quiescent primitive does not wake its combinational readers. *)
let drive sim (cp : cprim) formal value =
  match List.assoc_opt formal cp.cp_outputs with
  | None -> ()
  | Some i -> write_sig sim i value

let fifo_port_names kind =
  match kind with
  | Scfifo -> ("wrreq", "rdreq", "data", "q", "full", "empty", "usedw")
  | Dcfifo -> ("wrreq", "rdreq", "data", "q", "wrfull", "rdempty", "wrusedw")
  | Altsyncram -> assert false

let drive_fifo_outputs sim (cp : cprim) (f : fifo_state) =
  let _, _, _, q, full, empty, usedw = fifo_port_names cp.cp_src.fp_kind in
  let front =
    if f.f_count > 0 then f.f_data.(f.f_head) else Bits.zero f.f_width
  in
  drive sim cp q front;
  drive sim cp full (Bits.of_bool (f.f_count >= f.f_depth));
  drive sim cp empty (Bits.of_bool (f.f_count = 0));
  (* [drive] resizes to the connected signal's declared width *)
  drive sim cp usedw (Bits.of_int ~width:16 f.f_count)

let step_prim (ps : prim_state) =
  match ps with
  | Pfifo (cp, f) ->
      let wrreq_n, rdreq_n, data_n, _, _, _, _ =
        fifo_port_names cp.cp_src.fp_kind
      in
      let wrreq = prim_input_bool cp wrreq_n in
      let rdreq = prim_input_bool cp rdreq_n in
      let data = Bits.resize (prim_input cp data_n) f.f_width in
      let popped = rdreq && f.f_count > 0 in
      let pushed = wrreq && f.f_count < f.f_depth in
      if popped then (
        f.f_head <- (f.f_head + 1) mod f.f_depth;
        f.f_count <- f.f_count - 1);
      if pushed then (
        f.f_data.((f.f_head + f.f_count) mod f.f_depth) <- data;
        f.f_count <- f.f_count + 1)
  | Pram (cp, r) ->
      let addr = Bits.to_int_trunc (prim_input cp "address_a") in
      let wren = prim_input_bool cp "wren_a" in
      let data = prim_input cp "data_a" in
      let size = Array.length r.r_words in
      let k = if size = 0 then 0 else addr mod size in
      (* registered read of the old word, then write *)
      r.r_q <- r.r_words.(k);
      if wren then
        r.r_words.(k) <- Bits.resize data (Bits.width r.r_words.(k))

let drive_prim_outputs sim ps =
  match ps with
  | Pfifo (cp, f) -> drive_fifo_outputs sim cp f
  | Pram (cp, r) -> drive sim cp "q_a" r.r_q

(* ------------------------------------------------------------------ *)
(* Construction and stepping                                           *)
(* ------------------------------------------------------------------ *)

let rec stmt_has_display (s : Ast.stmt) =
  match s with
  | Ast.Display _ -> true
  | Ast.If (_, t, f) ->
      List.exists stmt_has_display t || List.exists stmt_has_display f
  | Ast.Case (_, items, default) ->
      List.exists (fun it -> List.exists stmt_has_display it.Ast.body) items
      || (match default with
         | Some body -> List.exists stmt_has_display body
         | None -> false)
  | Ast.Blocking _ | Ast.Nonblocking _ | Ast.Finish -> false

let compile_node tab = function
  | Aassign (l, e) ->
      let cl = Compiled.compile_lvalue tab l in
      Cassign (cl, Compiled.compile_expr tab e, Compiled.clvalue_width cl)
  | Ablock stmts -> Cblock (List.map (Compiled.compile_stmt tab) stmts)

let create ?kernel (flat : flat) : t =
  Telemetry.span "compile" @@ fun () ->
  let tab = Compiled.of_flat flat in
  let env = Compiled.fresh_env flat in
  let node_list =
    List.map (fun (l, e) -> Aassign (l, e)) flat.f_assigns
    @ List.map (fun b -> Ablock b) flat.f_comb
  in
  let ast_nodes = Array.of_list (topo_sort node_list) in
  let nodes = Array.map (compile_node tab) ast_nodes in
  let n = Array.length nodes in
  let kernel =
    match kernel with Some k -> k | None -> auto_kernel ~comb_nodes:n
  in
  (* sensitivity map on ids: every signal a node reads wakes that node *)
  let sens = Array.make (Array.length flat.f_signal_order) [] in
  Array.iteri
    (fun rank node ->
      List.iter
        (fun s ->
          match Hashtbl.find_opt flat.f_signal_ids s with
          | Some i -> sens.(i) <- rank :: sens.(i)
          | None -> ())
        (node_reads node))
    ast_nodes;
  let display_nodes =
    Array.to_list
      (Array.mapi
         (fun rank node ->
           match node with
           | Ablock stmts when List.exists stmt_has_display stmts -> Some rank
           | _ -> None)
         ast_nodes)
    |> List.filter_map Fun.id
  in
  let seq =
    List.map
      (fun (e, _clk, body) -> (e, List.map (Compiled.compile_stmt tab) body))
      flat.f_seq
  in
  let finished = ref false in
  let low =
    let lowered = match kernel with Lowered | Lowered_dirty -> true | _ -> false in
    if not lowered then None
    else begin
      (* single-reader assign chains fuse into one closure: when node
         r-1 is a plain assign whose sole written signal feeds exactly
         one node and that node is r, the pair always runs back to back
         in the full sweep, so folding them is behavior-preserving and
         halves the plan-iteration overhead on long chains *)
      let fuse = Array.make (max n 1) false in
      for r = 1 to n - 1 do
        match ast_nodes.(r - 1) with
        | Aassign (l, _) -> (
            match Ast.lvalue_bases l with
            | [ s ] -> (
                match Hashtbl.find_opt flat.f_signal_ids s with
                | Some i -> if sens.(i) = [ r ] then fuse.(r) <- true
                | None -> ())
            | _ -> ())
        | Ablock _ -> ()
      done;
      let lnodes =
        Array.map
          (function
            | Cassign (l, e, cw) -> Lowered.Lassign (l, e, cw)
            | Cblock ss -> Lowered.Lblock ss)
          nodes
      in
      Some
        (Lowered.create ~tab ~env ~finished ~nodes:lnodes ~fuse ~sens
           ~display_ranks:display_nodes ~dirty:(kernel = Lowered_dirty) ~seq)
    end
  in
  let input_closure ce =
    match low with
    | Some lw -> Lowered.input_fn lw ce
    | None -> fun () -> Compiled.eval env ce
  in
  let prims =
    List.map
      (fun (p : fprim) ->
        let cp =
          {
            cp_src = p;
            cp_inputs =
              List.map
                (fun (f, e) -> (f, input_closure (Compiled.compile_expr tab e)))
                p.fp_inputs;
            cp_outputs =
              List.map (fun (f, s) -> (f, Compiled.id tab s)) p.fp_outputs;
          }
        in
        make_prim_state cp)
      flat.f_prims
  in
  let stats =
    (* structured tracing samples its counter series off [istats], so a
       trace-only run (telemetry switch off) still carries them; every
       per-cycle recording inside remains gated on its own switch *)
    if Telemetry.enabled () || Telemetry.Trace.enabled () then
      Some
        {
          s_steps = 0;
          s_settles = 0;
          s_node_rounds = 0;
          s_nodes_evaluated = 0;
          s_dirty_total = 0;
          s_dirty_peak = 0;
          s_nba_commits = 0;
          s_prim_steps = 0;
          s_displays = 0;
          s_toggles = Array.make (Array.length flat.f_signal_order) 0;
          s_settle_hist = Telemetry.Histogram.make "settle.nodes_evaluated";
          s_sample_every = Telemetry.step_sample ();
          s_cycles_in_window = 0;
          s_evaluated_mark = 0;
          s_bus_pub0 = Telemetry.Bus.published (Telemetry.bus ());
          s_bus_drop0 = Telemetry.Bus.dropped (Telemetry.bus ());
        }
    else None
  in
  let sim =
    { flat; tab; env; kernel; nodes; sens; display_nodes;
      dirty = Array.make n true; ndirty = n;
      mode = Sparse; mode_streak = 0; nchanges = 0;
      notify = ignore; seq; prims; low;
      cycle = 0; finished; log = []; log_len = 0;
      log_memo = (0, []); display_hook = None; step_hooks = []; stats }
  in
  wire_notify sim;
  Option.iter (fun lw -> Lowered.set_emit lw (emit_text sim)) low;
  (* initial primitive outputs so the first settle sees them; every node
     starts dirty, so the first settle evaluates the full plan *)
  List.iter (drive_prim_outputs sim) prims;
  sim

let exec_node ctx node =
  match node with
  | Cassign (l, e, cw) ->
      let v = Compiled.eval_ctx ctx.sim.env ~ctx:cw e in
      Compiled.write_notify ctx.sim.env ~notify:ctx.sim.notify l v
  | Cblock stmts -> List.iter (exec_stmt ctx) stmts

(* Full-sweep settle statistics for the brute-force kernel: every node
   counts as considered, evaluated, and dirty. *)
let full_sweep_stats sim =
  match sim.stats with
  | None -> ()
  | Some st ->
      let n = Array.length sim.nodes in
      st.s_settles <- st.s_settles + 1;
      st.s_node_rounds <- st.s_node_rounds + n;
      st.s_nodes_evaluated <- st.s_nodes_evaluated + n;
      st.s_dirty_total <- st.s_dirty_total + n;
      if n > st.s_dirty_peak then st.s_dirty_peak <- n;
      Telemetry.Histogram.observe st.s_settle_hist n

let settle ?(displays = false) (sim : t) =
  match sim.kernel with
  | Lowered | Lowered_dirty -> (
      match sim.low with
      | Some low -> (
          match sim.stats with
          | None -> ignore (Lowered.settle low ~displays)
          | Some st ->
              (* lowered kernels count in fused closures, not nodes:
                 that is the unit the plan actually iterates, so
                 evaluated/rounds is an honest skip rate. Dirty size is
                 read at settle entry (display forcing happens inside). *)
              let n = Lowered.plan_size low in
              let pre = Lowered.dirty_count low in
              let ev = Lowered.settle low ~displays in
              st.s_settles <- st.s_settles + 1;
              st.s_node_rounds <- st.s_node_rounds + n;
              st.s_nodes_evaluated <- st.s_nodes_evaluated + ev;
              st.s_dirty_total <- st.s_dirty_total + pre;
              if pre > st.s_dirty_peak then st.s_dirty_peak <- pre;
              Telemetry.Histogram.observe st.s_settle_hist ev)
      | None -> assert false)
  | Brute_force ->
      full_sweep_stats sim;
      let ctx =
        { sim; pending = []; in_comb_phase = true; displays_enabled = displays }
      in
      Array.iter (exec_node ctx) sim.nodes
  | Event_driven -> (
      let ctx =
        { sim; pending = []; in_comb_phase = true; displays_enabled = displays }
      in
      let n = Array.length sim.nodes in
      match sim.mode with
      | Dense ->
          (* rank-ordered full scan, identical to the brute-force sweep:
             no flag reads, no clears, no display forcing (display nodes
             are in the plan). The notify callback counts value-changing
             writes so the exit test below can detect a quiet design. *)
          sim.nchanges <- 0;
          (match sim.stats with
          | None -> ()
          | Some st ->
              st.s_settles <- st.s_settles + 1;
              st.s_node_rounds <- st.s_node_rounds + n;
              st.s_nodes_evaluated <- st.s_nodes_evaluated + n;
              st.s_dirty_total <- st.s_dirty_total + n;
              if n > st.s_dirty_peak then st.s_dirty_peak <- n;
              Telemetry.Histogram.observe st.s_settle_hist n);
          Array.iter (exec_node ctx) sim.nodes;
          (* Dense -> Sparse test, at exit *)
          if dense_exit_den * sim.nchanges <= dense_exit_num * n then (
            sim.mode_streak <- sim.mode_streak + 1;
            if sim.mode_streak >= mode_streak_len then (
              sim.mode <- Sparse;
              sim.mode_streak <- 0;
              wire_notify sim;
              (* re-enter sparse with everything dirty: the flags went
                 stale while dense mode skipped marking. The superset is
                 safe - re-evaluating a clean pure node is a no-op - and
                 the next settles shrink the set through change
                 detection as usual. *)
              mark_all sim))
          else sim.mode_streak <- 0
      | Sparse -> (
          (* a $display must fire on every display-enabled settle its
             block is reached, exactly as in the full sweep, even when no
             input changed - force those nodes onto the dirty set *)
          if displays then List.iter (mark_rank sim) sim.display_nodes;
          (* rank order = topological order, so every producer runs before
             its consumers; a node marking an earlier-or-equal rank (a
             self-dependency the cycle check admits) stays dirty for the
             next settle, matching the once-per-sweep full plan *)
          let evaluated = ref 0 in
          (match sim.stats with
          | None ->
              if sim.ndirty > 0 then
                for r = 0 to n - 1 do
                  if sim.dirty.(r) then (
                    sim.dirty.(r) <- false;
                    sim.ndirty <- sim.ndirty - 1;
                    incr evaluated;
                    exec_node ctx sim.nodes.(r))
                done
          | Some st ->
              (* instrumented copy of the loop above: the disabled path
                 pays only the local [evaluated] increment the mode test
                 needs, never a stats-record write *)
              st.s_settles <- st.s_settles + 1;
              st.s_node_rounds <- st.s_node_rounds + n;
              st.s_dirty_total <- st.s_dirty_total + sim.ndirty;
              if sim.ndirty > st.s_dirty_peak then
                st.s_dirty_peak <- sim.ndirty;
              if sim.ndirty > 0 then
                for r = 0 to n - 1 do
                  if sim.dirty.(r) then (
                    sim.dirty.(r) <- false;
                    sim.ndirty <- sim.ndirty - 1;
                    incr evaluated;
                    exec_node ctx sim.nodes.(r))
                done;
              st.s_nodes_evaluated <- st.s_nodes_evaluated + !evaluated;
              Telemetry.Histogram.observe st.s_settle_hist !evaluated);
          (* Sparse -> Dense test, at exit: when nearly the whole plan
             ran anyway (cascades included), the per-node flag traffic
             was pure overhead. The test reads only the evaluation
             count, never [stats], so instrumented and uninstrumented
             runs take identical mode trajectories. *)
          if n > 0 && dense_enter_den * !evaluated >= dense_enter_num * n
          then (
            sim.mode_streak <- sim.mode_streak + 1;
            if sim.mode_streak >= mode_streak_len then (
              sim.mode <- Dense;
              sim.mode_streak <- 0;
              wire_notify sim))
          else sim.mode_streak <- 0))

(* Public accessors stay name-keyed: one id lookup per call, then array
   reads/writes. *)
let find_id sim name = Hashtbl.find_opt sim.flat.f_signal_ids name

let set_input sim name value =
  match find_id sim name with
  | Some i -> (
      match sim.env.(i) with
      | Compiled.Vec _ -> write_sig sim i value
      | Compiled.Mem _ -> invalid_arg "Simulator.set_input: memory")
  | None -> invalid_arg (Printf.sprintf "Simulator.set_input: unknown %s" name)

let set_input_int sim name v =
  match find_id sim name with
  | Some i -> (
      match sim.env.(i) with
      | Compiled.Vec old -> write_sig sim i (Bits.of_int ~width:(Bits.width old) v)
      | Compiled.Mem _ ->
          invalid_arg (Printf.sprintf "Simulator.set_input_int: unknown %s" name))
  | None ->
      invalid_arg (Printf.sprintf "Simulator.set_input_int: unknown %s" name)

let read sim name =
  match find_id sim name with
  | Some i -> (
      match sim.env.(i) with
      | Compiled.Vec b -> (
          match sim.low with Some low -> Lowered.read_vec low i | None -> b)
      | Compiled.Mem _ ->
          invalid_arg (Printf.sprintf "Simulator.read: %s is a memory" name))
  | None -> invalid_arg (Printf.sprintf "Simulator.read: unknown %s" name)

let read_int sim name = Bits.to_int_trunc (read sim name)

let read_memory sim name =
  match find_id sim name with
  | Some i -> (
      match sim.env.(i) with
      | Compiled.Mem a -> Array.copy a
      | Compiled.Vec _ ->
          invalid_arg (Printf.sprintf "Simulator.read_memory: %s" name))
  | None -> invalid_arg (Printf.sprintf "Simulator.read_memory: %s" name)

(* Run the sequential blocks firing on one clock edge and commit their
   non-blocking writes. *)
let edge_phase (sim : t) (edge : Elaborate.clock_edge) ~with_prims =
  match sim.low with
  | Some low ->
      Lowered.run_edge low edge;
      if with_prims then List.iter step_prim sim.prims;
      (match sim.stats with
      | None -> ()
      | Some st ->
          st.s_nba_commits <- st.s_nba_commits + Lowered.pending_count low;
          if with_prims then
            st.s_prim_steps <- st.s_prim_steps + List.length sim.prims);
      Lowered.commit low;
      if with_prims then List.iter (drive_prim_outputs sim) sim.prims
  | None ->
      let ctx =
        { sim; pending = []; in_comb_phase = false; displays_enabled = true }
      in
      List.iter
        (fun (e, body) -> if e = edge then List.iter (exec_stmt ctx) body)
        sim.seq;
      if with_prims then List.iter step_prim sim.prims;
      (match sim.stats with
      | None -> ()
      | Some st ->
          st.s_nba_commits <- st.s_nba_commits + List.length ctx.pending;
          if with_prims then
            st.s_prim_steps <- st.s_prim_steps + List.length sim.prims);
      List.iter
        (Compiled.apply_write_notify sim.env ~notify:sim.notify)
        (List.rev ctx.pending);
      if with_prims then List.iter (drive_prim_outputs sim) sim.prims

let has_negedge (sim : t) =
  List.exists (fun (e, _, _) -> e = Elaborate.Neg) sim.flat.f_seq

let step (sim : t) =
  if not !(sim.finished) then (
    settle sim ~displays:false;
    (* rising edge: posedge blocks and the clocked IP primitives fire
       against the settled pre-edge state; displays use those values *)
    edge_phase sim Elaborate.Pos ~with_prims:true;
    (* falling edge (half a cycle later): negedge blocks observe the
       post-posedge state, as in event-driven simulation *)
    if has_negedge sim then (
      settle sim ~displays:false;
      edge_phase sim Elaborate.Neg ~with_prims:false);
    settle sim ~displays:true;
    let completed = sim.cycle in
    sim.cycle <- completed + 1;
    (match sim.stats with
    | Some st ->
        st.s_steps <- st.s_steps + 1;
        (* publish one aggregated event per sampling window rather than
           one per cycle - the per-cycle record allocation dominated
           telemetry-on overhead on small designs. Totals stay exact;
           only the bus cadence changes. *)
        st.s_cycles_in_window <- st.s_cycles_in_window + 1;
        if st.s_cycles_in_window >= st.s_sample_every then (
          let window = st.s_cycles_in_window in
          let delta = st.s_nodes_evaluated - st.s_evaluated_mark in
          st.s_cycles_in_window <- 0;
          st.s_evaluated_mark <- st.s_nodes_evaluated;
          Telemetry.Bus.publish (Telemetry.bus ())
            {
              Telemetry.ev_cycle = completed;
              ev_source = "simulator";
              ev_kind = "step";
              ev_data =
                [
                  ("cycles", string_of_int window);
                  ("evaluated", string_of_int delta);
                ];
            };
          (* counter series for the trace timeline, at the same sampled
             cadence as the bus event (no per-cycle cost) *)
          if Telemetry.Trace.enabled () then (
            let b = Telemetry.bus () in
            Telemetry.Trace.counter "sim.dirty"
              (match sim.low with
              | Some low -> Lowered.dirty_count low
              | None -> sim.ndirty);
            Telemetry.Trace.counter "sim.evaluated" delta;
            Telemetry.Trace.counter "sim.dense"
              (if
                 (sim.kernel = Event_driven && sim.mode = Dense)
                 || match sim.low with Some low -> Lowered.dense low | None -> false
               then 1
               else 0);
            Telemetry.Trace.counter "bus.published"
              (Telemetry.Bus.published b - st.s_bus_pub0);
            Telemetry.Trace.counter "bus.dropped"
              (Telemetry.Bus.dropped b - st.s_bus_drop0)))
    | None -> ());
    if sim.step_hooks <> [] then
      List.iter (fun f -> f completed) sim.step_hooks)

let run sim n =
  let i = ref 0 in
  while !i < n && not !(sim.finished) do
    step sim;
    incr i
  done

(* Entries accumulate by prepending (O(1) per $display); the oldest-first
   view is materialized at most once per new entry and memoized, so a
   caller polling [log] between displays never re-reverses. *)
let log sim =
  let len, memo = sim.log_memo in
  if len = sim.log_len then memo
  else (
    let oldest_first = List.rev sim.log in
    sim.log_memo <- (sim.log_len, oldest_first);
    oldest_first)

let cycle sim = sim.cycle
let finished sim = !(sim.finished)
let kernel sim = sim.kernel
let lowering_stats sim = Option.map Lowered.stats sim.low
let on_display sim f = sim.display_hook <- Some f
let on_step sim f = sim.step_hooks <- sim.step_hooks @ [ f ]

(* ------------------------------------------------------------------ *)
(* Telemetry read-back                                                 *)
(* ------------------------------------------------------------------ *)

type stats = {
  st_steps : int;
  st_settles : int;
  st_node_rounds : int;
  st_nodes_evaluated : int;
  st_nodes_skipped : int;
  st_dirty_total : int;
  st_dirty_peak : int;
  st_nba_commits : int;
  st_prim_steps : int;
  st_displays : int;
  st_settle_hist : Telemetry.Histogram.snapshot;
}

let stats sim =
  Option.map
    (fun st ->
      {
        st_steps = st.s_steps;
        st_settles = st.s_settles;
        st_node_rounds = st.s_node_rounds;
        st_nodes_evaluated = st.s_nodes_evaluated;
        st_nodes_skipped = st.s_node_rounds - st.s_nodes_evaluated;
        st_dirty_total = st.s_dirty_total;
        st_dirty_peak = st.s_dirty_peak;
        st_nba_commits = st.s_nba_commits;
        st_prim_steps = st.s_prim_steps;
        st_displays = st.s_displays;
        st_settle_hist = Telemetry.Histogram.snapshot st.s_settle_hist;
      })
    sim.stats

let dense_mode sim =
  (sim.kernel = Event_driven && sim.mode = Dense)
  || match sim.low with Some low -> Lowered.dense low | None -> false

let lowered_run_stats sim = Option.map Lowered.run_stats sim.low

let kernel_efficiency sim =
  match sim.stats with
  | Some st when st.s_node_rounds > 0 ->
      Some (float_of_int st.s_nodes_evaluated /. float_of_int st.s_node_rounds)
  | _ -> None

let toggle_counts sim =
  match sim.stats with
  | None -> []
  | Some st ->
      Array.to_list
        (Array.mapi (fun i n -> (sim.flat.f_signal_order.(i), n)) st.s_toggles)

let hottest_signals ?(k = 10) sim =
  toggle_counts sim
  |> List.filter (fun (_, n) -> n > 0)
  |> List.sort (fun (na, a) (nb, b) ->
         match compare b a with 0 -> compare na nb | c -> c)
  |> List.filteri (fun i _ -> i < k)

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

(* A deep snapshot of the architectural state: environment, primitive
   contents, cycle count, and log. Restoring a checkpoint and stepping
   produces the same trace as the original run - the replay property
   checkpoint-based FPGA debuggers (DESSERT, StateMover) rely on.
   Snapshots are name-keyed so they stay meaningful independently of
   the id assignment. *)
type checkpoint = {
  cp_env : (string * Eval.value) list;
  cp_prims : (string * Bits.t array * int * int * Bits.t) list;
  cp_cycle : int;
  cp_finished : bool;
  cp_log : (int * string) list;
}

(* Architectural value of signal [i], materialized through the lowered
   kernel's immediate bank when that is the live representation. *)
let sig_value sim i =
  match sim.env.(i) with
  | Compiled.Vec b ->
      Eval.Vec
        (match sim.low with Some low -> Lowered.read_vec low i | None -> b)
  | Compiled.Mem a -> Eval.Mem (Array.copy a)

let checkpoint (sim : t) : checkpoint =
  let cp_env =
    Array.to_list
      (Array.mapi
         (fun i name -> (name, sig_value sim i))
         sim.flat.f_signal_order)
  in
  let cp_prims =
    List.map
      (fun ps ->
        match ps with
        | Pfifo (cp, f) ->
            ( cp.cp_src.fp_name,
              Array.copy f.f_data,
              f.f_head,
              f.f_count,
              Bits.zero 1 )
        | Pram (cp, r) -> (cp.cp_src.fp_name, Array.copy r.r_words, 0, 0, r.r_q))
      sim.prims
  in
  {
    cp_env;
    cp_prims;
    cp_cycle = sim.cycle;
    cp_finished = !(sim.finished);
    cp_log = sim.log;
  }

(* Raw restore of one signal, routed into whichever value bank is
   live; no change detection (the caller re-marks everything). *)
let restore_sig sim i v =
  match v with
  | Eval.Vec b -> (
      match sim.low with
      | Some low -> Lowered.set_vec_raw low i b
      | None -> sim.env.(i) <- Compiled.Vec b)
  | Eval.Mem a -> sim.env.(i) <- Compiled.Mem (Array.copy a)

let restore (sim : t) (snap : checkpoint) : unit =
  List.iter
    (fun (name, v) ->
      match find_id sim name with
      | Some i -> restore_sig sim i v
      | None -> ())
    snap.cp_env;
  List.iter
    (fun ps ->
      match ps with
      | Pfifo (cp, f) -> (
          match
            List.find_opt
              (fun (n, _, _, _, _) -> n = cp.cp_src.fp_name)
              snap.cp_prims
          with
          | Some (_, data, head, count, _) ->
              Array.blit data 0 f.f_data 0 (Array.length data);
              f.f_head <- head;
              f.f_count <- count
          | None -> ())
      | Pram (cp, r) -> (
          match
            List.find_opt
              (fun (n, _, _, _, _) -> n = cp.cp_src.fp_name)
              snap.cp_prims
          with
          | Some (_, words, _, _, q) ->
              Array.blit words 0 r.r_words 0 (Array.length words);
              r.r_q <- q
          | None -> ()))
    sim.prims;
  sim.cycle <- snap.cp_cycle;
  sim.finished := snap.cp_finished;
  sim.log <- snap.cp_log;
  sim.log_len <- List.length snap.cp_log;
  (* invalidate the memo: a restored log of the same length as the
     current one would otherwise serve the stale reversed view *)
  sim.log_memo <- (-1, []);
  (* the whole environment may have changed: drop back to sparse with
     everything dirty and let activity re-derive the mode *)
  sim.mode <- Sparse;
  sim.mode_streak <- 0;
  wire_notify sim;
  mark_all sim;
  Option.iter Lowered.mark_all sim.low

(* ------------------------------------------------------------------ *)
(* Serializable checkpoints                                            *)
(* ------------------------------------------------------------------ *)

(* The on-disk counterpart of [checkpoint]/[restore]: same state, but
   name-keyed into the versioned [Checkpoint] wire format and bound to
   the design by its structural hash. The dirty set, adaptive mode, and
   NBA queue are derived or empty at cycle boundaries, so a restored
   simulator re-derives them exactly as [restore] does. *)

let ck_saves = Telemetry.Counter.make "checkpoint.saves"
let ck_restores = Telemetry.Counter.make "checkpoint.restores"

let save_checkpoint ?(tag = "") ?(meta = []) (sim : t) : Checkpoint.t =
  Telemetry.span "checkpoint.save" @@ fun () ->
  Telemetry.Counter.incr ck_saves;
  let ck_values =
    Array.to_list
      (Array.mapi
         (fun i name -> (name, sig_value sim i))
         sim.flat.f_signal_order)
  in
  let ck_prims =
    List.map
      (fun ps ->
        match ps with
        | Pfifo (cp, f) ->
            Checkpoint.Cfifo
              {
                cf_name = cp.cp_src.fp_name;
                cf_width = f.f_width;
                cf_data = Array.copy f.f_data;
                cf_head = f.f_head;
                cf_count = f.f_count;
              }
        | Pram (cp, r) ->
            Checkpoint.Cram
              {
                cr_name = cp.cp_src.fp_name;
                cr_width = Bits.width r.r_q;
                cr_q = r.r_q;
                cr_words = Array.copy r.r_words;
              })
      sim.prims
  in
  {
    Checkpoint.ck_design = Checkpoint.design_hash sim.flat;
    ck_tag = tag;
    ck_cycle = sim.cycle;
    ck_finished = !(sim.finished);
    ck_values;
    ck_prims;
    ck_log = log sim;
    ck_meta = meta;
  }

let ck_fail fmt =
  Printf.ksprintf (fun s -> raise (Checkpoint.Checkpoint_error s)) fmt

let restore_checkpoint (sim : t) (ck : Checkpoint.t) : unit =
  Telemetry.span "checkpoint.restore" @@ fun () ->
  Telemetry.Counter.incr ck_restores;
  let here = Checkpoint.design_hash sim.flat in
  if ck.Checkpoint.ck_design <> here then
    ck_fail
      "checkpoint%s was taken from a different design (signature %s, this \
       simulator has %s)"
      (if ck.Checkpoint.ck_tag = "" then ""
       else Printf.sprintf " %S" ck.Checkpoint.ck_tag)
      ck.Checkpoint.ck_design here;
  List.iter
    (fun (name, v) ->
      match find_id sim name with
      | None -> ck_fail "checkpoint signal %s does not exist in the design" name
      | Some i -> (
          match (sim.env.(i), v) with
          | Compiled.Vec old, Eval.Vec b ->
              if Bits.width b <> Bits.width old then
                ck_fail "checkpoint signal %s has width %d, design has %d" name
                  (Bits.width b) (Bits.width old)
              else restore_sig sim i v
          | Compiled.Mem old, Eval.Mem a ->
              if Array.length a <> Array.length old then
                ck_fail "checkpoint memory %s has %d words, design has %d" name
                  (Array.length a) (Array.length old)
              else sim.env.(i) <- Compiled.Mem (Array.copy a)
          | Compiled.Vec _, Eval.Mem _ | Compiled.Mem _, Eval.Vec _ ->
              ck_fail "checkpoint signal %s has the wrong shape" name))
    ck.Checkpoint.ck_values;
  List.iter
    (fun ckp ->
      let find name =
        List.find_opt
          (fun ps ->
            match ps with
            | Pfifo (cp, _) | Pram (cp, _) -> cp.cp_src.fp_name = name)
          sim.prims
      in
      match ckp with
      | Checkpoint.Cfifo { cf_name; cf_data; cf_head; cf_count; _ } -> (
          match find cf_name with
          | Some (Pfifo (_, st)) when Array.length cf_data = st.f_depth ->
              Array.blit cf_data 0 st.f_data 0 st.f_depth;
              st.f_head <- cf_head;
              st.f_count <- cf_count
          | _ -> ck_fail "checkpoint FIFO %s does not match the design" cf_name)
      | Checkpoint.Cram { cr_name; cr_q; cr_words; _ } -> (
          match find cr_name with
          | Some (Pram (_, st))
            when Array.length cr_words = Array.length st.r_words ->
              Array.blit cr_words 0 st.r_words 0 (Array.length st.r_words);
              st.r_q <- cr_q
          | _ -> ck_fail "checkpoint RAM %s does not match the design" cr_name))
    ck.Checkpoint.ck_prims;
  sim.cycle <- ck.Checkpoint.ck_cycle;
  sim.finished := ck.Checkpoint.ck_finished;
  sim.log <- List.rev ck.Checkpoint.ck_log;
  sim.log_len <- List.length ck.Checkpoint.ck_log;
  sim.log_memo <- (-1, []);
  sim.mode <- Sparse;
  sim.mode_streak <- 0;
  wire_notify sim;
  mark_all sim;
  Option.iter Lowered.mark_all sim.low;
  (* primitive outputs must reflect the restored contents before the
     next settle, exactly as [create] does for the initial state *)
  List.iter (drive_prim_outputs sim) sim.prims
