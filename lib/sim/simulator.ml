(* Cycle-accurate two-phase simulator over an elaborated design.

   Each [step] performs one clock cycle:
     1. settle combinational logic (continuous assigns and always-star blocks),
     2. execute sequential blocks against the settled pre-edge state,
        collecting non-blocking writes,
     3. step builtin IP primitives (FIFOs, RAMs),
     4. commit non-blocking writes and primitive outputs,
     5. settle combinational logic again so outputs reflect the new
        state; $display statements in combinational blocks fire once
        during this final settle.

   Combinational nodes are topologically ordered at construction;
   combinational cycles raise [Combinational_cycle].

   Settling is event-driven by default: a sensitivity map (signal ->
   reading nodes) is built at construction, every write is
   change-detected, and a settle only re-evaluates nodes whose inputs
   actually changed since they last ran, in topological rank order.
   Because node evaluation is a pure function of the environment, the
   event-driven schedule produces exactly the state the brute-force
   full-plan sweep would; nodes containing $display are forced onto the
   dirty set during display-enabled settles so logs stay identical too.
   The [Brute_force] kernel keeps the seed full-sweep behavior as a
   differential-testing reference. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
open Elaborate

exception Combinational_cycle of string list

type kernel = Event_driven | Brute_force

type comb_node = Cassign of Ast.lvalue * Ast.expr | Cblock of Ast.stmt list

type fifo_state = {
  f_depth : int;
  f_width : int;
  f_data : Bits.t array;
  mutable f_head : int;
  mutable f_count : int;
}

type ram_state = { r_words : Bits.t array; mutable r_q : Bits.t }

type prim_state =
  | Pfifo of fprim * fifo_state
  | Pram of fprim * ram_state

type t = {
  flat : flat;
  env : Eval.env;
  kernel : kernel;
  nodes : comb_node array;  (* topological order: writers before readers *)
  sens : (string, int list) Hashtbl.t;  (* signal -> ranks of reading nodes *)
  display_nodes : int list;  (* ranks of nodes containing $display *)
  dirty : bool array;  (* per-rank pending-re-evaluation flag *)
  mutable ndirty : int;
  mutable notify : string -> unit;  (* change callback wired to [mark_signal] *)
  prims : prim_state list;
  mutable cycle : int;
  mutable finished : bool;
  mutable log : (int * string) list;  (* newest first *)
  mutable display_hook : (int -> string -> unit) option;
}

(* ------------------------------------------------------------------ *)
(* Dirty-set bookkeeping                                               *)
(* ------------------------------------------------------------------ *)

let mark_rank sim r =
  if not sim.dirty.(r) then (
    sim.dirty.(r) <- true;
    sim.ndirty <- sim.ndirty + 1)

let mark_signal sim name =
  match Hashtbl.find_opt sim.sens name with
  | Some ranks -> List.iter (mark_rank sim) ranks
  | None -> ()

let mark_all sim =
  Array.fill sim.dirty 0 (Array.length sim.dirty) true;
  sim.ndirty <- Array.length sim.dirty

(* ------------------------------------------------------------------ *)
(* Combinational scheduling                                            *)
(* ------------------------------------------------------------------ *)

let node_reads = function
  | Cassign (l, e) -> Ast.dedup (Ast.expr_reads e @ Ast.lvalue_reads l)
  | Cblock stmts -> Ast.dedup (List.concat_map Ast.stmt_reads stmts)

let node_writes = function
  | Cassign (l, _) -> Ast.lvalue_bases l
  | Cblock stmts -> Ast.dedup (List.concat_map Ast.stmt_writes stmts)

let topo_sort (nodes : comb_node list) : comb_node list =
  let arr = Array.of_list nodes in
  let n = Array.length arr in
  let writes = Array.map node_writes arr in
  let reads = Array.map node_reads arr in
  (* writer index for every written signal *)
  let writers = Hashtbl.create 16 in
  Array.iteri
    (fun i ws -> List.iter (fun w -> Hashtbl.add writers w i) ws)
    writes;
  let succs i =
    (* nodes that read what node i writes *)
    let out = ref [] in
    List.iter
      (fun w ->
        Array.iteri
          (fun j rs -> if j <> i && List.mem w rs then out := j :: !out)
          reads)
      writes.(i);
    List.sort_uniq Int.compare !out
  in
  let state = Array.make n 0 (* 0 unvisited, 1 in-stack, 2 done *) in
  let order = ref [] in
  let rec visit i =
    match state.(i) with
    | 2 -> ()
    | 1 ->
        let cyc = Ast.dedup (writes.(i) @ reads.(i)) in
        raise (Combinational_cycle cyc)
    | _ ->
        state.(i) <- 1;
        List.iter visit (succs i);
        state.(i) <- 2;
        order := i :: !order
  in
  for i = 0 to n - 1 do
    visit i
  done;
  (* each node is prepended after its readers, so [order] places every
     writer before all of its readers *)
  List.map (fun i -> arr.(i)) !order

(* ------------------------------------------------------------------ *)
(* Statement interpretation                                            *)
(* ------------------------------------------------------------------ *)

type exec_ctx = {
  sim : t;
  mutable pending : Eval.resolved_write list;  (* reversed *)
  in_comb_phase : bool;
  displays_enabled : bool;
}

let emit_display ctx fmt args =
  if ctx.displays_enabled then (
    let vals = List.map (Eval.eval ctx.sim.env) args in
    let text = Display.render fmt vals in
    ctx.sim.log <- (ctx.sim.cycle, text) :: ctx.sim.log;
    match ctx.sim.display_hook with
    | Some f -> f ctx.sim.cycle text
    | None -> ())

let rec exec_stmt ctx (s : Ast.stmt) =
  if not ctx.sim.finished then
    match s with
    | Ast.Blocking (l, e) ->
        (* blocking assignments update immediately, visible to the next
           statement, in both combinational and sequential blocks *)
        let v = Eval.eval_assign ctx.sim.env l e in
        Eval.write_notify ctx.sim.env ~notify:ctx.sim.notify l v
    | Ast.Nonblocking (l, e) ->
        let v = Eval.eval_assign ctx.sim.env l e in
        if ctx.in_comb_phase then
          (* non-blocking inside a combinational block degenerates to a
             blocking update in a two-phase simulator *)
          Eval.write_notify ctx.sim.env ~notify:ctx.sim.notify l v
        else
          ctx.pending <-
            List.rev_append (Eval.resolve_write ctx.sim.env l v) ctx.pending
    | Ast.If (c, t, f) ->
        if Bits.reduce_or (Eval.eval ctx.sim.env c) then
          List.iter (exec_stmt ctx) t
        else List.iter (exec_stmt ctx) f
    | Ast.Case (e, items, default) -> (
        let v = Eval.eval ctx.sim.env e in
        let matches item =
          List.exists
            (fun me ->
              let mv = Eval.eval ctx.sim.env me in
              let w = max (Bits.width v) (Bits.width mv) in
              Bits.equal (Bits.resize v w) (Bits.resize mv w))
            item.Ast.match_exprs
        in
        match List.find_opt matches items with
        | Some item -> List.iter (exec_stmt ctx) item.Ast.body
        | None -> (
            match default with
            | Some body -> List.iter (exec_stmt ctx) body
            | None -> ()))
    | Ast.Display (fmt, args) -> emit_display ctx fmt args
    | Ast.Finish -> ctx.sim.finished <- true

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)
(* ------------------------------------------------------------------ *)

let prim_param p name default =
  Option.value (List.assoc_opt name p.fp_params) ~default

let make_prim_state (p : fprim) : prim_state =
  match p.fp_kind with
  | Scfifo | Dcfifo ->
      let width = prim_param p "lpm_width" 8 in
      let depth = prim_param p "lpm_numwords" 16 in
      Pfifo
        ( p,
          {
            f_depth = depth;
            f_width = width;
            f_data = Array.make depth (Bits.zero width);
            f_head = 0;
            f_count = 0;
          } )
  | Altsyncram ->
      let width = prim_param p "width_a" 8 in
      let words = prim_param p "numwords_a" 16 in
      Pram (p, { r_words = Array.make words (Bits.zero width); r_q = Bits.zero width })

let prim_input env (p : fprim) name =
  match List.assoc_opt name p.fp_inputs with
  | Some e -> Eval.eval env e
  | None -> Bits.zero 1

let prim_input_bool env p name = Bits.reduce_or (prim_input env p name)

(* Drive a primitive output signal if it is connected; change-detected
   so a quiescent primitive does not wake its combinational readers. *)
let drive sim (p : fprim) formal value =
  match List.assoc_opt formal p.fp_outputs with
  | None -> ()
  | Some sig_name -> (
      match Hashtbl.find_opt sim.env sig_name with
      | Some (Eval.Vec old) ->
          let value = Bits.resize value (Bits.width old) in
          if not (Bits.equal old value) then (
            Hashtbl.replace sim.env sig_name (Eval.Vec value);
            sim.notify sig_name)
      | _ ->
          Hashtbl.replace sim.env sig_name (Eval.Vec value);
          sim.notify sig_name)

let fifo_port_names kind =
  match kind with
  | Scfifo -> ("wrreq", "rdreq", "data", "q", "full", "empty", "usedw")
  | Dcfifo -> ("wrreq", "rdreq", "data", "q", "wrfull", "rdempty", "wrusedw")
  | Altsyncram -> assert false

let drive_fifo_outputs sim (p : fprim) (f : fifo_state) =
  let _, _, _, q, full, empty, usedw = fifo_port_names p.fp_kind in
  let front =
    if f.f_count > 0 then f.f_data.(f.f_head) else Bits.zero f.f_width
  in
  drive sim p q front;
  drive sim p full (Bits.of_bool (f.f_count >= f.f_depth));
  drive sim p empty (Bits.of_bool (f.f_count = 0));
  (* [drive] resizes to the connected signal's declared width *)
  drive sim p usedw (Bits.of_int ~width:16 f.f_count)

let step_prim env (ps : prim_state) =
  match ps with
  | Pfifo (p, f) ->
      let wrreq_n, rdreq_n, data_n, _, _, _, _ = fifo_port_names p.fp_kind in
      let wrreq = prim_input_bool env p wrreq_n in
      let rdreq = prim_input_bool env p rdreq_n in
      let data = Bits.resize (prim_input env p data_n) f.f_width in
      let popped = rdreq && f.f_count > 0 in
      let pushed = wrreq && f.f_count < f.f_depth in
      if popped then (
        f.f_head <- (f.f_head + 1) mod f.f_depth;
        f.f_count <- f.f_count - 1);
      if pushed then (
        f.f_data.((f.f_head + f.f_count) mod f.f_depth) <- data;
        f.f_count <- f.f_count + 1)
  | Pram (p, r) ->
      let addr = Bits.to_int_trunc (prim_input env p "address_a") in
      let wren = prim_input_bool env p "wren_a" in
      let data = prim_input env p "data_a" in
      let size = Array.length r.r_words in
      let k = if size = 0 then 0 else addr mod size in
      (* registered read of the old word, then write *)
      r.r_q <- r.r_words.(k);
      if wren then
        r.r_words.(k) <- Bits.resize data (Bits.width r.r_words.(k))

let drive_prim_outputs sim ps =
  match ps with
  | Pfifo (p, f) -> drive_fifo_outputs sim p f
  | Pram (p, r) -> drive sim p "q_a" r.r_q

(* ------------------------------------------------------------------ *)
(* Construction and stepping                                           *)
(* ------------------------------------------------------------------ *)

let rec stmt_has_display (s : Ast.stmt) =
  match s with
  | Ast.Display _ -> true
  | Ast.If (_, t, f) ->
      List.exists stmt_has_display t || List.exists stmt_has_display f
  | Ast.Case (_, items, default) ->
      List.exists (fun it -> List.exists stmt_has_display it.Ast.body) items
      || (match default with
         | Some body -> List.exists stmt_has_display body
         | None -> false)
  | Ast.Blocking _ | Ast.Nonblocking _ | Ast.Finish -> false

let create ?(kernel = Event_driven) (flat : flat) : t =
  let env : Eval.env = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name (s : fsignal) ->
      let v =
        match s.fs_depth with
        | Some n ->
            let init = Option.value s.fs_init ~default:(Bits.zero s.fs_width) in
            Eval.Mem (Array.make n init)
        | None ->
            Eval.Vec
              (match s.fs_init with
              | Some b -> Bits.resize b s.fs_width
              | None -> Bits.zero s.fs_width)
      in
      Hashtbl.replace env name v)
    flat.f_signals;
  let node_list =
    List.map (fun (l, e) -> Cassign (l, e)) flat.f_assigns
    @ List.map (fun b -> Cblock b) flat.f_comb
  in
  let nodes = Array.of_list (topo_sort node_list) in
  let n = Array.length nodes in
  (* sensitivity map: every signal a node reads wakes that node *)
  let sens = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun rank node ->
      List.iter
        (fun s ->
          let prev = Option.value (Hashtbl.find_opt sens s) ~default:[] in
          Hashtbl.replace sens s (rank :: prev))
        (node_reads node))
    nodes;
  let display_nodes =
    Array.to_list
      (Array.mapi
         (fun rank node ->
           match node with
           | Cblock stmts when List.exists stmt_has_display stmts -> Some rank
           | _ -> None)
         nodes)
    |> List.filter_map Fun.id
  in
  let prims = List.map make_prim_state flat.f_prims in
  let sim =
    { flat; env; kernel; nodes; sens; display_nodes;
      dirty = Array.make n true; ndirty = n; notify = ignore; prims;
      cycle = 0; finished = false; log = []; display_hook = None }
  in
  (match kernel with
  | Event_driven -> sim.notify <- mark_signal sim
  | Brute_force -> ());
  (* initial primitive outputs so the first settle sees them; every node
     starts dirty, so the first settle evaluates the full plan *)
  List.iter (drive_prim_outputs sim) prims;
  sim

let exec_node ctx node =
  match node with
  | Cassign (l, e) ->
      let v = Eval.eval_assign ctx.sim.env l e in
      Eval.write_notify ctx.sim.env ~notify:ctx.sim.notify l v
  | Cblock stmts -> List.iter (exec_stmt ctx) stmts

let settle ?(displays = false) (sim : t) =
  let ctx =
    { sim; pending = []; in_comb_phase = true; displays_enabled = displays }
  in
  match sim.kernel with
  | Brute_force -> Array.iter (exec_node ctx) sim.nodes
  | Event_driven ->
      (* a $display must fire on every display-enabled settle its block
         is reached, exactly as in the full sweep, even when no input
         changed - force those nodes onto the dirty set *)
      if displays then List.iter (mark_rank sim) sim.display_nodes;
      if sim.ndirty > 0 then
        (* rank order = topological order, so every producer runs before
           its consumers; a node marking an earlier-or-equal rank (a
           self-dependency the cycle check admits) stays dirty for the
           next settle, matching the once-per-sweep full plan *)
        for r = 0 to Array.length sim.nodes - 1 do
          if sim.dirty.(r) then (
            sim.dirty.(r) <- false;
            sim.ndirty <- sim.ndirty - 1;
            exec_node ctx sim.nodes.(r))
        done

let set_input sim name value =
  match Hashtbl.find_opt sim.env name with
  | Some (Eval.Vec old) ->
      let value = Bits.resize value (Bits.width old) in
      if not (Bits.equal old value) then (
        Hashtbl.replace sim.env name (Eval.Vec value);
        sim.notify name)
  | Some (Eval.Mem _) -> invalid_arg "Simulator.set_input: memory"
  | None -> invalid_arg (Printf.sprintf "Simulator.set_input: unknown %s" name)

let set_input_int sim name v =
  match Hashtbl.find_opt sim.env name with
  | Some (Eval.Vec old) ->
      let value = Bits.of_int ~width:(Bits.width old) v in
      if not (Bits.equal old value) then (
        Hashtbl.replace sim.env name (Eval.Vec value);
        sim.notify name)
  | _ -> invalid_arg (Printf.sprintf "Simulator.set_input_int: unknown %s" name)

let read sim name =
  match Hashtbl.find_opt sim.env name with
  | Some (Eval.Vec b) -> b
  | Some (Eval.Mem _) ->
      invalid_arg (Printf.sprintf "Simulator.read: %s is a memory" name)
  | None -> invalid_arg (Printf.sprintf "Simulator.read: unknown %s" name)

let read_int sim name = Bits.to_int_trunc (read sim name)

let read_memory sim name =
  match Hashtbl.find_opt sim.env name with
  | Some (Eval.Mem a) -> Array.copy a
  | _ -> invalid_arg (Printf.sprintf "Simulator.read_memory: %s" name)

(* Run the sequential blocks firing on one clock edge and commit their
   non-blocking writes. *)
let edge_phase (sim : t) (edge : Elaborate.clock_edge) ~with_prims =
  let ctx =
    { sim; pending = []; in_comb_phase = false; displays_enabled = true }
  in
  List.iter
    (fun (e, _clk, body) ->
      if e = edge then List.iter (exec_stmt ctx) body)
    sim.flat.f_seq;
  if with_prims then List.iter (step_prim sim.env) sim.prims;
  List.iter
    (Eval.apply_write_notify sim.env ~notify:sim.notify)
    (List.rev ctx.pending);
  if with_prims then List.iter (drive_prim_outputs sim) sim.prims

let has_negedge (sim : t) =
  List.exists (fun (e, _, _) -> e = Elaborate.Neg) sim.flat.f_seq

let step (sim : t) =
  if not sim.finished then (
    settle sim ~displays:false;
    (* rising edge: posedge blocks and the clocked IP primitives fire
       against the settled pre-edge state; displays use those values *)
    edge_phase sim Elaborate.Pos ~with_prims:true;
    (* falling edge (half a cycle later): negedge blocks observe the
       post-posedge state, as in event-driven simulation *)
    if has_negedge sim then (
      settle sim ~displays:false;
      edge_phase sim Elaborate.Neg ~with_prims:false);
    settle sim ~displays:true;
    sim.cycle <- sim.cycle + 1)

let run sim n =
  let i = ref 0 in
  while !i < n && not sim.finished do
    step sim;
    incr i
  done

let log sim = List.rev sim.log
let cycle sim = sim.cycle
let finished sim = sim.finished
let on_display sim f = sim.display_hook <- Some f

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

(* A deep snapshot of the architectural state: environment, primitive
   contents, cycle count, and log. Restoring a checkpoint and stepping
   produces the same trace as the original run - the replay property
   checkpoint-based FPGA debuggers (DESSERT, StateMover) rely on. *)
type checkpoint = {
  cp_env : (string * Eval.value) list;
  cp_prims : (string * Bits.t array * int * int * Bits.t) list;
  cp_cycle : int;
  cp_finished : bool;
  cp_log : (int * string) list;
}

let checkpoint (sim : t) : checkpoint =
  let cp_env =
    Hashtbl.fold
      (fun name v acc ->
        let copy =
          match v with
          | Eval.Vec b -> Eval.Vec b
          | Eval.Mem a -> Eval.Mem (Array.copy a)
        in
        (name, copy) :: acc)
      sim.env []
  in
  let cp_prims =
    List.map
      (fun ps ->
        match ps with
        | Pfifo (p, f) ->
            (p.fp_name, Array.copy f.f_data, f.f_head, f.f_count, Bits.zero 1)
        | Pram (p, r) -> (p.fp_name, Array.copy r.r_words, 0, 0, r.r_q))
      sim.prims
  in
  {
    cp_env;
    cp_prims;
    cp_cycle = sim.cycle;
    cp_finished = sim.finished;
    cp_log = sim.log;
  }

let restore (sim : t) (cp : checkpoint) : unit =
  Hashtbl.reset sim.env;
  List.iter
    (fun (name, v) ->
      let copy =
        match v with
        | Eval.Vec b -> Eval.Vec b
        | Eval.Mem a -> Eval.Mem (Array.copy a)
      in
      Hashtbl.replace sim.env name copy)
    cp.cp_env;
  List.iter
    (fun ps ->
      match ps with
      | Pfifo (p, f) -> (
          match List.find_opt (fun (n, _, _, _, _) -> n = p.fp_name) cp.cp_prims with
          | Some (_, data, head, count, _) ->
              Array.blit data 0 f.f_data 0 (Array.length data);
              f.f_head <- head;
              f.f_count <- count
          | None -> ())
      | Pram (p, r) -> (
          match List.find_opt (fun (n, _, _, _, _) -> n = p.fp_name) cp.cp_prims with
          | Some (_, words, _, _, q) ->
              Array.blit words 0 r.r_words 0 (Array.length words);
              r.r_q <- q
          | None -> ()))
    sim.prims;
  sim.cycle <- cp.cp_cycle;
  sim.finished <- cp.cp_finished;
  sim.log <- cp.cp_log;
  (* the whole environment may have changed: re-evaluate everything *)
  mark_all sim
