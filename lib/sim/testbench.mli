(** Testbench driver: the push-button harness used to reproduce the
    testbed bugs and to run the tools' dynamic phases. *)

type stimulus = int -> (string * Fpga_bits.Bits.t) list
(** A stimulus maps the cycle number to the input bindings applied
    before that cycle's clock edge. Bindings persist until overwritten,
    so a stimulus only needs to mention the inputs it changes. *)

type outcome = {
  cycles_run : int;
  finished : bool;  (** the design executed [$finish] *)
  stuck : bool;  (** [until] was given but never satisfied *)
  log : (int * string) list;  (** $display output, oldest first *)
}

val const_stimulus : (string * Fpga_bits.Bits.t) list -> stimulus
(** The same bindings every cycle. *)

val run :
  ?max_cycles:int ->
  ?until:(Simulator.t -> bool) ->
  Simulator.t ->
  stimulus ->
  outcome
(** [run sim stimulus] drives [sim] for up to [max_cycles] (default
    10000), stopping early when [until] holds or the design finishes.
    An unmet [until] is reported as [stuck] — the "application stuck"
    symptom of the bug study. *)

val of_design :
  ?kernel:Simulator.kernel -> ?top:string -> Fpga_hdl.Ast.design -> Simulator.t
(** Elaborate (default top ["top"]) and build a simulator. [kernel]
    defaults to the event-driven one (see {!Simulator.create}). *)

val of_source : ?kernel:Simulator.kernel -> ?top:string -> string -> Simulator.t
(** Parse Verilog source, elaborate, and build a simulator. *)
