(* Expression evaluation and lvalue resolution over a flat environment.

   Width rules follow the Verilog synthesizable subset: binary operands
   are zero-extended to the wider of the two widths, comparisons and
   logical operators produce 1-bit results, shifts keep the left
   operand's width, and assignment resizes to the target's width.

   Out-of-range accesses implement the semantics documented in the bug
   study (section 3.2.1): when the buffer size is a power of two the
   index is truncated (wraps); otherwise the access is ignored (writes
   dropped, reads return zero). *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits

exception Eval_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

type value = Vec of Bits.t | Mem of Bits.t array

type env = (string, value) Hashtbl.t

let get env name =
  match Hashtbl.find_opt env name with
  | Some v -> v
  | None -> err "unbound signal %s" name

let get_vec env name =
  match get env name with
  | Vec b -> b
  | Mem _ -> err "memory %s used without an index" name

let get_mem env name =
  match get env name with
  | Mem a -> a
  | Vec _ -> err "%s is not a memory" name

let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Resolve an index into a structure of size [n]; [None] = dropped. *)
let resolve_index ~size idx =
  if idx >= 0 && idx < size then Some idx
  else if is_power_of_two size then Some (idx land (size - 1))
  else None

let bool_bits b = Bits.of_bool b

(* [ctx] is the Verilog context width: in an assignment the target's
   width flows into arithmetic and bitwise operands, so a carry computed
   into a wider target is not lost ({co, s} <= a + b). Self-determined
   contexts pass [ctx = 0]. *)
let rec eval_ctx env ~ctx (e : Ast.expr) : Bits.t =
  let widen v = if Bits.width v < ctx then Bits.resize v ctx else v in
  match e with
  | Ast.Const b -> widen b
  | Ast.Ident n -> widen (get_vec env n)
  | Ast.Index (n, i) -> (
      let idx = Bits.to_int_trunc (eval_ctx env ~ctx:0 i) in
      match get env n with
      | Mem a ->
          widen
            (match resolve_index ~size:(Array.length a) idx with
            | Some k -> a.(k)
            | None ->
                (* ignored access: reads return zero of the word width *)
                Bits.zero (Bits.width a.(0)))
      | Vec b ->
          widen
            (match resolve_index ~size:(Bits.width b) idx with
            | Some k -> bool_bits (Bits.bit b k)
            | None -> Bits.zero 1))
  | Ast.Range (n, hi, lo) ->
      let b = get_vec env n in
      if hi >= Bits.width b then
        err "part select %s[%d:%d] exceeds width %d" n hi lo (Bits.width b)
      else widen (Bits.slice b ~hi ~lo)
  | Ast.Unop (op, a) -> eval_unop env ~ctx op a
  | Ast.Binop (op, a, b) -> eval_binop env ~ctx op a b
  | Ast.Cond (c, t, f) ->
      let c = Bits.reduce_or (eval_ctx env ~ctx:0 c) in
      let tv = eval_ctx env ~ctx t and fv = eval_ctx env ~ctx f in
      let w = max (Bits.width tv) (Bits.width fv) in
      if c then Bits.resize tv w else Bits.resize fv w
  | Ast.Concat es -> widen (Bits.concat (List.map (eval_ctx env ~ctx:0) es))
  | Ast.Repeat (n, a) -> widen (Bits.repeat n (eval_ctx env ~ctx:0 a))

and eval_unop env ~ctx op a =
  match op with
  | Ast.Bnot -> Bits.lognot (eval_ctx env ~ctx a)
  | Ast.Neg -> Bits.neg (eval_ctx env ~ctx a)
  | Ast.Lnot -> bool_bits (Bits.is_zero (eval_ctx env ~ctx:0 a))
  | Ast.Rand -> bool_bits (Bits.reduce_and (eval_ctx env ~ctx:0 a))
  | Ast.Ror -> bool_bits (Bits.reduce_or (eval_ctx env ~ctx:0 a))
  | Ast.Rxor -> bool_bits (Bits.reduce_xor (eval_ctx env ~ctx:0 a))

and eval_binop env ~ctx op a b =
  match op with
  | Ast.Land ->
      bool_bits
        (Bits.reduce_or (eval_ctx env ~ctx:0 a)
        && Bits.reduce_or (eval_ctx env ~ctx:0 b))
  | Ast.Lor ->
      bool_bits
        (Bits.reduce_or (eval_ctx env ~ctx:0 a)
        || Bits.reduce_or (eval_ctx env ~ctx:0 b))
  | Ast.Shl | Ast.Shr | Ast.Ashr ->
      let va = eval_ctx env ~ctx a in
      let amount = min (Bits.to_int_trunc (eval_ctx env ~ctx:0 b)) (Bits.width va) in
      (match op with
      | Ast.Shl -> Bits.shift_left va amount
      | Ast.Shr -> Bits.shift_right va amount
      | _ -> Bits.arith_shift_right va amount)
  | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      let va = eval_ctx env ~ctx:0 a and vb = eval_ctx env ~ctx:0 b in
      let w = max (Bits.width va) (Bits.width vb) in
      let va = Bits.resize va w and vb = Bits.resize vb w in
      bool_bits
        (match op with
        | Ast.Eq -> Bits.equal va vb
        | Ast.Neq -> not (Bits.equal va vb)
        | Ast.Lt -> Bits.lt va vb
        | Ast.Le -> Bits.le va vb
        | Ast.Gt -> Bits.gt va vb
        | _ -> Bits.ge va vb)
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
  | Ast.Bxor ->
      let va = eval_ctx env ~ctx a and vb = eval_ctx env ~ctx b in
      let w = max (Bits.width va) (Bits.width vb) in
      let va = Bits.resize va w and vb = Bits.resize vb w in
      (match op with
      | Ast.Add -> Bits.add va vb
      | Ast.Sub -> Bits.sub va vb
      | Ast.Mul -> Bits.mul va vb
      | Ast.Div -> Bits.div va vb
      | Ast.Mod -> Bits.rem va vb
      | Ast.Band -> Bits.logand va vb
      | Ast.Bor -> Bits.logor va vb
      | _ -> Bits.logxor va vb)

let eval env e = eval_ctx env ~ctx:0 e

(* A write with indices already resolved against the current cycle's
   values, so it can be deferred (non-blocking) and applied later. *)
type resolved_write =
  | Wfull of string * Bits.t
  | Wbit of string * int * bool
  | Wrange of string * int * int * Bits.t
  | Wmem of string * int * Bits.t
  | Wdropped of string  (* out-of-range access on a non-power-of-two size *)

let rec resolve_write env (l : Ast.lvalue) (value : Bits.t) :
    resolved_write list =
  match l with
  | Ast.Lident n ->
      let w =
        match get env n with
        | Vec b -> Bits.width b
        | Mem _ -> err "cannot assign whole memory %s" n
      in
      [ Wfull (n, Bits.resize value w) ]
  | Ast.Lindex (n, i) -> (
      let idx = Bits.to_int_trunc (eval env i) in
      match get env n with
      | Mem a -> (
          match resolve_index ~size:(Array.length a) idx with
          | Some k -> [ Wmem (n, k, Bits.resize value (Bits.width a.(0))) ]
          | None -> [ Wdropped n ])
      | Vec b -> (
          match resolve_index ~size:(Bits.width b) idx with
          | Some k -> [ Wbit (n, k, Bits.bit (Bits.resize value 1) 0) ]
          | None -> [ Wdropped n ]))
  | Ast.Lrange (n, hi, lo) ->
      let b = get_vec env n in
      if hi >= Bits.width b then
        err "part select write %s[%d:%d] exceeds width %d" n hi lo
          (Bits.width b)
      else [ Wrange (n, hi, lo, Bits.resize value (hi - lo + 1)) ]
  | Ast.Lconcat ls ->
      (* MSB-first: split [value] into per-target chunks. The write list
         is accumulated in reverse and flipped once at the end — the
         seed's [acc @ ...] rebuilt the accumulator per element,
         quadratic in the number of concatenated targets. *)
      let widths = List.map (lvalue_width env) ls in
      let total = List.fold_left ( + ) 0 widths in
      let value = Bits.resize value total in
      let _, rev_writes =
        List.fold_left2
          (fun (hi, acc) lv w ->
            let chunk = Bits.slice value ~hi ~lo:(hi - w + 1) in
            (hi - w, List.rev_append (resolve_write env lv chunk) acc))
          (total - 1, []) ls widths
      in
      List.rev rev_writes

and lvalue_width env = function
  | Ast.Lident n -> (
      match get env n with
      | Vec b -> Bits.width b
      | Mem _ -> err "memory in concatenated lvalue")
  | Ast.Lindex (n, _) -> (
      match get env n with Vec _ -> 1 | Mem a -> Bits.width a.(0))
  | Ast.Lrange (_, hi, lo) -> hi - lo + 1
  | Ast.Lconcat ls -> List.fold_left (fun acc l -> acc + lvalue_width env l) 0 ls

(* Evaluate the right-hand side of an assignment with the target width
   as Verilog context width. *)
let eval_assign env l e = eval_ctx env ~ctx:(lvalue_width env l) e

let apply_write env = function
  | Wfull (n, v) -> Hashtbl.replace env n (Vec v)
  | Wbit (n, i, b) ->
      let v = get_vec env n in
      Hashtbl.replace env n (Vec (Bits.set_bit v i b))
  | Wrange (n, hi, lo, v) ->
      let old = get_vec env n in
      Hashtbl.replace env n (Vec (Bits.set_slice old ~hi ~lo v))
  | Wmem (n, i, v) ->
      let a = get_mem env n in
      a.(i) <- v
  | Wdropped _ -> ()

let write env l value = List.iter (apply_write env) (resolve_write env l value)

(* Change-detecting variants: apply a write only when it changes the
   stored value and report the base signal name through [notify] when it
   does. The event-driven simulator kernel seeds its dirty set from
   these notifications; [Bits.equal]'s physical-equality fast path and
   the no-op-returning functional updates keep the unchanged case
   allocation-free. *)
let apply_write_notify env ~notify = function
  | Wfull (n, v) ->
      let old = get_vec env n in
      if not (Bits.equal old v) then (
        Hashtbl.replace env n (Vec v);
        notify n)
  | Wbit (n, i, b) ->
      let old = get_vec env n in
      let v = Bits.set_bit old i b in
      if not (v == old) then (
        Hashtbl.replace env n (Vec v);
        notify n)
  | Wrange (n, hi, lo, v) ->
      let old = get_vec env n in
      let v = Bits.set_slice old ~hi ~lo v in
      if not (Bits.equal v old) then (
        Hashtbl.replace env n (Vec v);
        notify n)
  | Wmem (n, i, v) ->
      let a = get_mem env n in
      if not (Bits.equal a.(i) v) then (
        a.(i) <- v;
        notify n)
  | Wdropped _ -> ()

let write_notify env ~notify l value =
  List.iter (apply_write_notify env ~notify) (resolve_write env l value)
