(* Serializable simulator checkpoints: versioned, content-hashed
   snapshots of the full architectural state. See checkpoint.mli for
   the format contract.

   Wire format (line-oriented text, one record per line):

     fpga-debug-checkpoint/<version>
     design <md5 of the design signature>
     tag <escaped>
     cycle <int>
     finished 0|1
     meta <n>
     <key> <escaped value>          (n lines)
     values <n>
     v <name> <width> <hex>         (vector)
     m <name> <width> <depth> <hex>,<hex>,...   (memory)
     prims <n>
     fifo <name> <width> <depth> <head> <count> <hex>,...
     ram <name> <width> <qhex> <hex>,...
     log <n>
     <cycle> <escaped text>         (n lines, oldest first)
     sha <md5 of every preceding byte>

   Escaping covers exactly the characters the line discipline needs:
   backslash, newline, carriage return. Signal and primitive names are
   flat Verilog identifier paths ('/'-separated) and need none. *)

module Bits = Fpga_bits.Bits
module Telemetry = Fpga_telemetry.Telemetry

exception Checkpoint_error of string

let ck_encoded_bytes = Telemetry.Counter.make "checkpoint.encoded_bytes"
let ck_decoded_bytes = Telemetry.Counter.make "checkpoint.decoded_bytes"

let fail fmt = Printf.ksprintf (fun s -> raise (Checkpoint_error s)) fmt
let magic = "fpga-debug-checkpoint"
let version = 1

type prim =
  | Cfifo of {
      cf_name : string;
      cf_width : int;
      cf_data : Bits.t array;
      cf_head : int;
      cf_count : int;
    }
  | Cram of {
      cr_name : string;
      cr_width : int;
      cr_q : Bits.t;
      cr_words : Bits.t array;
    }

type t = {
  ck_design : string;
  ck_tag : string;
  ck_cycle : int;
  ck_finished : bool;
  ck_values : (string * Eval.value) list;
  ck_prims : prim list;
  ck_log : (int * string) list;
  ck_meta : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* Design signature                                                    *)
(* ------------------------------------------------------------------ *)

let design_hash (flat : Elaborate.flat) : string =
  let buf = Buffer.create 512 in
  Buffer.add_string buf flat.Elaborate.f_top;
  Array.iter
    (fun name ->
      let s = Hashtbl.find flat.Elaborate.f_signals name in
      Buffer.add_string buf
        (Printf.sprintf "|%s:%d:%s" name s.Elaborate.fs_width
           (match s.Elaborate.fs_depth with
           | None -> "-"
           | Some d -> string_of_int d)))
    flat.Elaborate.f_signal_order;
  List.iter
    (fun (p : Elaborate.fprim) ->
      Buffer.add_string buf
        (Printf.sprintf "|%s:%s" p.Elaborate.fp_name
           (match p.Elaborate.fp_kind with
           | Elaborate.Scfifo -> "scfifo"
           | Elaborate.Dcfifo -> "dcfifo"
           | Elaborate.Altsyncram -> "altsyncram"));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ":%s=%d" k v))
        p.Elaborate.fp_params)
    flat.Elaborate.f_prims;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Escaping                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then (
       (match s.[!i + 1] with
       | 'n' -> Buffer.add_char buf '\n'
       | 'r' -> Buffer.add_char buf '\r'
       | c -> Buffer.add_char buf c);
       i := !i + 1)
     else Buffer.add_char buf s.[!i]);
    incr i
  done;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Serialization                                                       *)
(* ------------------------------------------------------------------ *)

let hex_csv (a : Bits.t array) =
  String.concat "," (Array.to_list (Array.map Bits.to_hex_string a))

let body_string (t : t) : string =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s/%d\n" magic version;
  add "design %s\n" t.ck_design;
  add "tag %s\n" (escape t.ck_tag);
  add "cycle %d\n" t.ck_cycle;
  add "finished %d\n" (if t.ck_finished then 1 else 0);
  add "meta %d\n" (List.length t.ck_meta);
  List.iter (fun (k, v) -> add "%s %s\n" k (escape v)) t.ck_meta;
  add "values %d\n" (List.length t.ck_values);
  List.iter
    (fun (name, v) ->
      match v with
      | Eval.Vec b -> add "v %s %d %s\n" name (Bits.width b) (Bits.to_hex_string b)
      | Eval.Mem a ->
          let w = if Array.length a = 0 then 1 else Bits.width a.(0) in
          add "m %s %d %d %s\n" name w (Array.length a) (hex_csv a))
    t.ck_values;
  add "prims %d\n" (List.length t.ck_prims);
  List.iter
    (fun p ->
      match p with
      | Cfifo f ->
          add "fifo %s %d %d %d %d %s\n" f.cf_name f.cf_width
            (Array.length f.cf_data) f.cf_head f.cf_count (hex_csv f.cf_data)
      | Cram r ->
          add "ram %s %d %s %s\n" r.cr_name r.cr_width
            (Bits.to_hex_string r.cr_q) (hex_csv r.cr_words))
    t.ck_prims;
  add "log %d\n" (List.length t.ck_log);
  List.iter (fun (c, text) -> add "%d %s\n" c (escape text)) t.ck_log;
  Buffer.contents buf

let content_hash (t : t) : string =
  Digest.to_hex (Digest.string (body_string t))

let to_string (t : t) : string =
  Telemetry.span "checkpoint.encode" @@ fun () ->
  let body = body_string t in
  let s = body ^ Printf.sprintf "sha %s\n" (Digest.to_hex (Digest.string body)) in
  Telemetry.Counter.bump ck_encoded_bytes (String.length s);
  s

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* a small cursor over the lines, with contextful errors *)
type cursor = { lines : string array; mutable pos : int }

let next cur what =
  if cur.pos >= Array.length cur.lines then
    fail "checkpoint truncated: expected %s at line %d" what (cur.pos + 1)
  else (
    let l = cur.lines.(cur.pos) in
    cur.pos <- cur.pos + 1;
    l)

let split2 line what =
  match String.index_opt line ' ' with
  | Some i ->
      ( String.sub line 0 i,
        String.sub line (i + 1) (String.length line - i - 1) )
  | None -> fail "malformed %s line: %S" what line

let expect_field cur key =
  let k, v = split2 (next cur key) key in
  if k <> key then fail "expected %S, found %S" key k else v

let parse_int what s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "malformed %s: %S is not an integer" what s

let parse_count cur key =
  let n = parse_int key (expect_field cur key) in
  if n < 0 then fail "negative %s count" key else n

let parse_bits ~what ~width s =
  if width < 1 then fail "bad width %d for %s" width what
  else if
    s = ""
    || not
         (String.for_all
            (function
              | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' | '_' -> true
              | _ -> false)
            s)
  then fail "malformed hex value for %s: %S" what s
  else Bits.of_hex_string ~width s

let parse_hex_csv ~what ~width ~n s =
  let parts = if s = "" then [] else String.split_on_char ',' s in
  if List.length parts <> n then
    fail "%s: expected %d words, found %d" what n (List.length parts)
  else Array.of_list (List.map (parse_bits ~what ~width) parts)

let of_string (s : string) : t =
  Telemetry.span "checkpoint.decode" @@ fun () ->
  Telemetry.Counter.bump ck_decoded_bytes (String.length s);
  (* 1. magic + version, before anything else, for a crisp error *)
  let header_ok prefix = String.length s >= String.length prefix
                         && String.sub s 0 (String.length prefix) = prefix in
  if not (header_ok (magic ^ "/")) then
    fail "not a checkpoint file (missing %s header)" magic;
  (* 2. content hash: the trailer line covers every byte above it *)
  let sha_at =
    match String.rindex_opt (String.trim s) '\n' with
    | Some i -> i + 1
    | None -> fail "checkpoint truncated: no content-hash trailer"
  in
  let body = String.sub s 0 sha_at in
  let trailer = String.trim (String.sub s sha_at (String.length s - sha_at)) in
  (match String.split_on_char ' ' trailer with
  | [ "sha"; h ] ->
      if h <> Digest.to_hex (Digest.string body) then
        fail "checkpoint corrupt: content hash mismatch"
  | _ -> fail "checkpoint truncated: no content-hash trailer");
  let lines =
    body |> String.split_on_char '\n'
    |> List.filter (fun l -> l <> "")
    |> Array.of_list
  in
  let cur = { lines; pos = 0 } in
  (* 3. header *)
  (let header = next cur "header" in
   match String.split_on_char '/' header with
   | [ m; v ] when m = magic ->
       let v = parse_int "version" v in
       if v <> version then
         fail "unsupported checkpoint version %d (this build reads version %d)"
           v version
   | _ -> fail "not a checkpoint file (malformed header %S)" header);
  let ck_design = expect_field cur "design" in
  let ck_tag = unescape (expect_field cur "tag") in
  let ck_cycle = parse_int "cycle" (expect_field cur "cycle") in
  let ck_finished =
    match expect_field cur "finished" with
    | "0" -> false
    | "1" -> true
    | other -> fail "malformed finished flag %S" other
  in
  let nmeta = parse_count cur "meta" in
  let ck_meta =
    List.init nmeta (fun _ ->
        let k, v = split2 (next cur "meta entry") "meta entry" in
        (k, unescape v))
  in
  let nvalues = parse_count cur "values" in
  let ck_values =
    List.init nvalues (fun _ ->
        let line = next cur "value" in
        match String.split_on_char ' ' line with
        | [ "v"; name; w; hex ] ->
            let w = parse_int "width" w in
            (name, Eval.Vec (parse_bits ~what:name ~width:w hex))
        | [ "m"; name; w; d; csv ] ->
            let w = parse_int "width" w in
            let d = parse_int "depth" d in
            (name, Eval.Mem (parse_hex_csv ~what:name ~width:w ~n:d csv))
        | _ -> fail "malformed value line: %S" line)
  in
  let nprims = parse_count cur "prims" in
  let ck_prims =
    List.init nprims (fun _ ->
        let line = next cur "prim" in
        match String.split_on_char ' ' line with
        | [ "fifo"; name; w; d; head; count; csv ] ->
            let w = parse_int "width" w in
            let d = parse_int "depth" d in
            let head = parse_int "head" head in
            let count = parse_int "count" count in
            if head < 0 || head >= max 1 d || count < 0 || count > d then
              fail "fifo %s: inconsistent head/count (%d/%d of %d)" name head
                count d;
            Cfifo
              {
                cf_name = name;
                cf_width = w;
                cf_data = parse_hex_csv ~what:name ~width:w ~n:d csv;
                cf_head = head;
                cf_count = count;
              }
        | [ "ram"; name; w; qhex; csv ] ->
            let w = parse_int "width" w in
            let words = if csv = "" then [||]
              else parse_hex_csv ~what:name ~width:w
                     ~n:(List.length (String.split_on_char ',' csv)) csv
            in
            Cram
              {
                cr_name = name;
                cr_width = w;
                cr_q = parse_bits ~what:name ~width:w qhex;
                cr_words = words;
              }
        | _ -> fail "malformed prim line: %S" line)
  in
  let nlog = parse_count cur "log" in
  let ck_log =
    List.init nlog (fun _ ->
        let c, text = split2 (next cur "log entry") "log entry" in
        (parse_int "log cycle" c, unescape text))
  in
  if cur.pos <> Array.length cur.lines then
    fail "trailing garbage after log section (line %d)" (cur.pos + 1);
  { ck_design; ck_tag; ck_cycle; ck_finished; ck_values; ck_prims; ck_log;
    ck_meta }

(* ------------------------------------------------------------------ *)
(* Files                                                               *)
(* ------------------------------------------------------------------ *)

let save path (t : t) =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir "ckpt" ".tmp" in
  let oc = open_out tmp in
  output_string oc (to_string t);
  close_out oc;
  Sys.rename tmp path

let load path : t =
  let text =
    try In_channel.with_open_bin path In_channel.input_all
    with Sys_error e -> fail "cannot read checkpoint %s: %s" path e
  in
  try of_string text
  with Checkpoint_error m -> fail "%s: %s" path m
