(** Expression evaluation and lvalue resolution over a flat environment.

    Width rules follow the Verilog synthesizable subset: binary operands
    are zero-extended to the wider of the two widths, comparisons and
    logical operators yield one bit, shifts keep the left operand's
    width, and an assignment's target width flows into arithmetic
    operands (the context width), so the carry of [{c, s} <= a + b] is
    not lost.

    Out-of-range accesses implement the semantics documented in the bug
    study (section 3.2.1): power-of-two structures wrap (the high index
    bits are truncated), other sizes drop the access (writes ignored,
    reads return zero). *)

exception Eval_error of string

type value =
  | Vec of Fpga_bits.Bits.t  (** a register or net *)
  | Mem of Fpga_bits.Bits.t array  (** a memory *)

type env = (string, value) Hashtbl.t

val get : env -> string -> value
val get_vec : env -> string -> Fpga_bits.Bits.t
val get_mem : env -> string -> Fpga_bits.Bits.t array

val is_power_of_two : int -> bool

val resolve_index : size:int -> int -> int option
(** [resolve_index ~size idx] applies the overflow semantics above:
    in-range indices are themselves, out-of-range indices wrap when
    [size] is a power of two and are dropped ([None]) otherwise. *)

val eval : env -> Fpga_hdl.Ast.expr -> Fpga_bits.Bits.t
(** Self-determined evaluation (context width 0). *)

val eval_ctx : env -> ctx:int -> Fpga_hdl.Ast.expr -> Fpga_bits.Bits.t
(** [eval_ctx env ~ctx e] evaluates [e] with a Verilog context width of
    [ctx] bits flowing into arithmetic and bitwise operands. *)

val eval_assign : env -> Fpga_hdl.Ast.lvalue -> Fpga_hdl.Ast.expr -> Fpga_bits.Bits.t
(** Evaluate the right-hand side of an assignment with the target's
    width as context. *)

(** A write whose indices were resolved against the current cycle, so
    it can be deferred (non-blocking) and applied at commit time. *)
type resolved_write =
  | Wfull of string * Fpga_bits.Bits.t
  | Wbit of string * int * bool
  | Wrange of string * int * int * Fpga_bits.Bits.t
  | Wmem of string * int * Fpga_bits.Bits.t
  | Wdropped of string
      (** an out-of-range access on a non-power-of-two structure *)

val resolve_write :
  env -> Fpga_hdl.Ast.lvalue -> Fpga_bits.Bits.t -> resolved_write list

val lvalue_width : env -> Fpga_hdl.Ast.lvalue -> int
val apply_write : env -> resolved_write -> unit

val write : env -> Fpga_hdl.Ast.lvalue -> Fpga_bits.Bits.t -> unit
(** Immediate (blocking) write. *)

(** {1 Change-detecting writes}

    Variants that apply a write only when it changes the stored value,
    calling [notify] with the base signal name when it does. The
    event-driven simulator kernel seeds its dirty set from these
    notifications; unchanged writes are detected in O(1) through
    {!Fpga_bits.Bits.equal}'s physical-equality fast path. *)

val apply_write_notify : env -> notify:(string -> unit) -> resolved_write -> unit

val write_notify :
  env -> notify:(string -> unit) -> Fpga_hdl.Ast.lvalue -> Fpga_bits.Bits.t -> unit
(** Immediate (blocking) write with change notification. *)
