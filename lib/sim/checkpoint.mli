(** Serializable simulator checkpoints — the on-disk half of the
    paper's "run long on the FPGA, reconstruct the interesting window
    in simulation" workflow (the Recheck/REMU checkpoint-and-replay
    line of work).

    A checkpoint captures the complete architectural state of a
    simulation at a cycle boundary: every register, net, and memory
    (name-keyed, so the snapshot is independent of the dense-id
    assignment of a particular {!Compiled.tab}), the contents of every
    builtin IP primitive (FIFO data/head/count, RAM words and the
    registered read port), the cycle count, the [$finish] flag, the
    accumulated [$display] log, and an open-ended metadata section the
    harness uses for its own replay state (observed output rows,
    monitor flags, stimulus seeds).

    The derived scheduler state of the event-driven kernel (dirty
    flags, sparse/dense mode, streak counters) is deliberately {e not}
    captured: it is recomputed conservatively on restore, and mode
    trajectories never change simulation results. The non-blocking
    assignment queue is empty at every cycle boundary by construction
    (writes commit inside {!Simulator.step}), so there is nothing of it
    to save — which is exactly why checkpoints are only taken between
    steps.

    The wire format is a versioned, line-oriented text format whose
    final line carries an MD5 content hash of everything above it;
    {!of_string} rejects truncation, bit-rot, and version skew with a
    clean {!Checkpoint_error}. A second hash, {!design_hash}, binds a
    checkpoint to the elaborated design it was taken from so a snapshot
    can never be restored into a structurally different design. *)

exception Checkpoint_error of string
(** Raised on malformed, corrupt, version-mismatched, or
    design-mismatched checkpoints. The message is user-facing. *)

val version : int
(** Current format version (serialized in the header line). *)

(** Saved state of one builtin IP primitive, keyed by flat instance
    path. *)
type prim =
  | Cfifo of {
      cf_name : string;
      cf_width : int;
      cf_data : Fpga_bits.Bits.t array;  (** all [depth] slots *)
      cf_head : int;
      cf_count : int;
    }
  | Cram of {
      cr_name : string;
      cr_width : int;
      cr_q : Fpga_bits.Bits.t;  (** registered read port *)
      cr_words : Fpga_bits.Bits.t array;
    }

type t = {
  ck_design : string;  (** {!design_hash} of the source design *)
  ck_tag : string;  (** free-form provenance, e.g. the bug id *)
  ck_cycle : int;  (** completed cycles at capture time *)
  ck_finished : bool;  (** the design had executed [$finish] *)
  ck_values : (string * Eval.value) list;  (** flat name -> value *)
  ck_prims : prim list;
  ck_log : (int * string) list;  (** $display log, oldest first *)
  ck_meta : (string * string) list;  (** harness state, seeds, ... *)
}

val design_hash : Elaborate.flat -> string
(** Content hash of the design's structural signature: top name, every
    flat signal with width and depth (in dense-id order), and every
    primitive with kind and parameters. Two elaborations of the same
    source always agree; any structural change (renamed signal, width
    change, different primitive config) produces a different hash. *)

val to_string : t -> string
(** Serialize. The result ends with a ["sha <md5>"] trailer over the
    entire preceding text. *)

val of_string : string -> t
(** Parse and validate. Raises {!Checkpoint_error} when the input is
    not a checkpoint, is a different format version, fails the content
    hash, or is structurally malformed. *)

val content_hash : t -> string
(** The MD5 hex digest {!to_string} embeds in the trailer — a stable
    identity for a snapshot, independent of where it is stored. *)

val save : string -> t -> unit
(** [save path t] writes {!to_string} to [path] atomically (via a
    temporary file + rename in the same directory). *)

val load : string -> t
(** [load path] reads and validates; raises {!Checkpoint_error} on
    unreadable files as well as on invalid contents. *)
