(* Testbench driver: the push-button harness used to reproduce each bug
   in the testbed and to run the tools' dynamic phases. A stimulus is a
   function from the cycle number to a set of input bindings; the driver
   applies it, steps the clock, and watches for stop conditions. *)

module Bits = Fpga_bits.Bits

type stimulus = int -> (string * Bits.t) list

type outcome = {
  cycles_run : int;
  finished : bool;  (* the design executed $finish *)
  stuck : bool;  (* a watched condition never became true *)
  log : (int * string) list;
}

let const_stimulus bindings _cycle = bindings

(* Drive [sim] for up to [max_cycles] with [stimulus]; stop early when
   [until] becomes true (if given) or the design finishes. The [stuck]
   flag reports that [until] was provided but never satisfied - the
   "application stuck / infinite wait" symptom of Table 2. *)
let run ?(max_cycles = 10_000) ?until (sim : Simulator.t) (stimulus : stimulus)
    : outcome =
  let stop = ref false in
  let satisfied = ref false in
  let i = ref 0 in
  while (not !stop) && !i < max_cycles && not (Simulator.finished sim) do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (stimulus !i);
    Simulator.step sim;
    (match until with
    | Some cond when cond sim ->
        satisfied := true;
        stop := true
    | _ -> ());
    incr i
  done;
  {
    cycles_run = !i;
    finished = Simulator.finished sim;
    stuck = (match until with Some _ -> not !satisfied | None -> false);
    log = Simulator.log sim;
  }

let of_design ?kernel ?(top = "top") design =
  Simulator.create ?kernel (Elaborate.elaborate design ~top)

let of_source ?kernel ?(top = "top") src =
  of_design ?kernel ~top (Fpga_hdl.Parser.parse_design src)
