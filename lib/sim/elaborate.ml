(* Elaboration: flatten a multi-module design into a single namespace of
   signals, continuous assigns, combinational and sequential processes,
   and builtin IP primitives.

   Instance-local names are prefixed with the instance path using '/'
   (e.g. "u_ram/mem"). Ports whose actual is a plain identifier are
   unified with the parent signal instead of introducing an alias, so
   clocks keep their top-level name through arbitrary nesting.

   Parameters and localparams are substituted as constants, with
   instance parameter overrides applied. Widths were already folded at
   parse time, so a parameter override may not change widths (a
   documented restriction of this subset). *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits

exception Elaboration_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Elaboration_error s)) fmt

type fsignal = {
  fs_name : string;
  fs_width : int;
  fs_depth : int option;
  fs_init : Bits.t option;
  fs_is_input : bool;
  fs_is_output : bool;
}

type prim_kind = Scfifo | Dcfifo | Altsyncram

type fprim = {
  fp_name : string;
  fp_kind : prim_kind;
  fp_params : (string * int) list;
  fp_inputs : (string * Ast.expr) list;  (* formal -> flattened expr *)
  fp_outputs : (string * string) list;  (* formal -> flat signal name *)
}

type clock_edge = Pos | Neg

type flat = {
  f_top : string;
  f_signals : (string, fsignal) Hashtbl.t;
  f_assigns : (Ast.lvalue * Ast.expr) list;
  f_comb : Ast.stmt list list;
  f_seq : (clock_edge * string * Ast.stmt list) list;
      (* edge * clock name * body *)
  f_prims : fprim list;
  f_inputs : (string * int) list;
  f_outputs : (string * int) list;
  f_signal_order : string array;  (* dense signal id -> flat name *)
  f_signal_ids : (string, int) Hashtbl.t;  (* flat name -> dense id *)
}

let prim_kind_of_target = function
  | "scfifo" -> Some Scfifo
  | "dcfifo" -> Some Dcfifo
  | "altsyncram" -> Some Altsyncram
  | _ -> None

(* Port directions of builtin IPs: [true] = output. *)
let prim_port_is_output kind formal =
  match (kind, formal) with
  | Scfifo, ("q" | "empty" | "full" | "usedw") -> true
  | Dcfifo, ("q" | "rdempty" | "wrfull" | "wrusedw" | "rdusedw") -> true
  | Altsyncram, ("q_a" | "q_b") -> true
  | _ -> false

(* Output widths of builtin IPs given their parameters. *)
let prim_output_width kind params formal =
  let param name default = Option.value (List.assoc_opt name params) ~default in
  let log2 n =
    let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
    go 0 n
  in
  match (kind, formal) with
  | Scfifo, "q" -> param "lpm_width" 8
  | Scfifo, ("empty" | "full") -> 1
  | Scfifo, "usedw" -> max 1 (log2 (param "lpm_numwords" 16))
  | Dcfifo, "q" -> param "lpm_width" 8
  | Dcfifo, ("rdempty" | "wrfull") -> 1
  | Dcfifo, ("wrusedw" | "rdusedw") -> max 1 (log2 (param "lpm_numwords" 16))
  | Altsyncram, "q_a" -> param "width_a" 8
  | Altsyncram, "q_b" -> param "width_b" (param "width_a" 8)
  | _ -> err "unknown IP output %s" formal

type ctx = {
  design : Ast.design;
  signals : (string, fsignal) Hashtbl.t;
  mutable assigns : (Ast.lvalue * Ast.expr) list;
  mutable comb : Ast.stmt list list;
  mutable seq : (clock_edge * string * Ast.stmt list) list;
  mutable prims : fprim list;
}

let join prefix name = if prefix = "" then name else prefix ^ "/" ^ name

let add_signal ctx s =
  match Hashtbl.find_opt ctx.signals s.fs_name with
  | None -> Hashtbl.replace ctx.signals s.fs_name s
  | Some existing ->
      if existing.fs_width <> s.fs_width then
        err "signal %s elaborated with conflicting widths %d and %d" s.fs_name
          existing.fs_width s.fs_width;
      let merged =
        {
          existing with
          fs_init =
            (match s.fs_init with None -> existing.fs_init | some -> some);
          fs_depth =
            (match s.fs_depth with None -> existing.fs_depth | some -> some);
        }
      in
      Hashtbl.replace ctx.signals s.fs_name merged

(* Substitute identifiers: parameters/localparams become constants, other
   names are renamed through [rename]. *)
let rec subst_expr consts rename e =
  match e with
  | Ast.Const _ -> e
  | Ast.Ident n -> (
      match List.assoc_opt n consts with
      | Some b -> Ast.Const b
      | None -> Ast.Ident (rename n))
  | Ast.Index (n, i) -> (
      let i = subst_expr consts rename i in
      match List.assoc_opt n consts with
      | Some _ -> err "cannot index parameter %s" n
      | None -> Ast.Index (rename n, i))
  | Ast.Range (n, hi, lo) -> (
      match List.assoc_opt n consts with
      | Some b -> Ast.Const (Bits.slice b ~hi ~lo)
      | None -> Ast.Range (rename n, hi, lo))
  | Ast.Unop (op, a) -> Ast.Unop (op, subst_expr consts rename a)
  | Ast.Binop (op, a, b) ->
      Ast.Binop (op, subst_expr consts rename a, subst_expr consts rename b)
  | Ast.Cond (c, a, b) ->
      Ast.Cond
        ( subst_expr consts rename c,
          subst_expr consts rename a,
          subst_expr consts rename b )
  | Ast.Concat es -> Ast.Concat (List.map (subst_expr consts rename) es)
  | Ast.Repeat (n, a) -> Ast.Repeat (n, subst_expr consts rename a)

let rec subst_lvalue consts rename l =
  match l with
  | Ast.Lident n -> Ast.Lident (rename n)
  | Ast.Lindex (n, i) -> Ast.Lindex (rename n, subst_expr consts rename i)
  | Ast.Lrange (n, hi, lo) -> Ast.Lrange (rename n, hi, lo)
  | Ast.Lconcat ls -> Ast.Lconcat (List.map (subst_lvalue consts rename) ls)

let rec subst_stmt consts rename s =
  match s with
  | Ast.Blocking (l, e) ->
      Ast.Blocking (subst_lvalue consts rename l, subst_expr consts rename e)
  | Ast.Nonblocking (l, e) ->
      Ast.Nonblocking (subst_lvalue consts rename l, subst_expr consts rename e)
  | Ast.If (c, t, f) ->
      Ast.If
        ( subst_expr consts rename c,
          List.map (subst_stmt consts rename) t,
          List.map (subst_stmt consts rename) f )
  | Ast.Case (e, items, default) ->
      Ast.Case
        ( subst_expr consts rename e,
          List.map
            (fun it ->
              {
                Ast.match_exprs =
                  List.map (subst_expr consts rename) it.Ast.match_exprs;
                body = List.map (subst_stmt consts rename) it.Ast.body;
              })
            items,
          Option.map (List.map (subst_stmt consts rename)) default )
  | Ast.Display (fmt, args) ->
      Ast.Display (fmt, List.map (subst_expr consts rename) args)
  | Ast.Finish -> Ast.Finish

(* Inline one module instance. [port_map] maps local port names to
   existing flat signal names (identity connections). *)
let rec inline ctx prefix (m : Ast.module_def) param_overrides port_map =
  let params =
    List.map
      (fun (n, v) ->
        let v = Option.value (List.assoc_opt n param_overrides) ~default:v in
        (n, Bits.of_int ~width:32 v))
      m.Ast.params
  in
  List.iter
    (fun (n, _) ->
      if not (List.mem_assoc n m.Ast.params) then
        err "instance %s overrides unknown parameter %s" prefix n)
    param_overrides;
  let consts = params @ m.Ast.localparams in
  let rename n =
    match List.assoc_opt n port_map with
    | Some flat -> flat
    | None -> join prefix n
  in
  (* Declare signals for ports that were not unified with parent nets. *)
  List.iter
    (fun (p : Ast.port) ->
      if not (List.mem_assoc p.Ast.port_name port_map) then
        add_signal ctx
          {
            fs_name = join prefix p.Ast.port_name;
            fs_width = p.Ast.port_width;
            fs_depth = None;
            fs_init = None;
            fs_is_input = false;
            fs_is_output = false;
          })
    m.Ast.ports;
  (* Declare local signals (including "output reg" decls). *)
  List.iter
    (fun (d : Ast.decl) ->
      add_signal ctx
        {
          fs_name = rename d.Ast.name;
          fs_width = d.Ast.width;
          fs_depth = d.Ast.depth;
          fs_init = d.Ast.init;
          fs_is_input = false;
          fs_is_output = false;
        })
    m.Ast.decls;
  (* Continuous assigns and processes. *)
  List.iter
    (fun (l, e) ->
      ctx.assigns <-
        (subst_lvalue consts rename l, subst_expr consts rename e)
        :: ctx.assigns)
    m.Ast.assigns;
  List.iter
    (fun (a : Ast.always) ->
      let body = List.map (subst_stmt consts rename) a.Ast.stmts in
      match a.Ast.sens with
      | Ast.Star -> ctx.comb <- body :: ctx.comb
      | Ast.Posedge clk -> ctx.seq <- (Pos, rename clk, body) :: ctx.seq
      | Ast.Negedge clk -> ctx.seq <- (Neg, rename clk, body) :: ctx.seq)
    m.Ast.always_blocks;
  (* Instances. *)
  List.iter (fun i -> inline_instance ctx prefix consts rename i) m.Ast.instances

and inline_instance ctx prefix consts rename (i : Ast.instance) =
  let child_prefix = join prefix i.Ast.inst_name in
  match prim_kind_of_target i.Ast.target with
  | Some kind ->
      let inputs = ref [] and outputs = ref [] in
      List.iter
        (fun (c : Ast.connection) ->
          let actual = subst_expr consts rename c.Ast.actual in
          if prim_port_is_output kind c.Ast.formal then (
            match actual with
            | Ast.Ident "_nc_" -> ()
            | Ast.Ident flat ->
                outputs := (c.Ast.formal, flat) :: !outputs;
                add_signal ctx
                  {
                    fs_name = flat;
                    fs_width = prim_output_width kind i.Ast.params c.Ast.formal;
                    fs_depth = None;
                    fs_init = None;
                    fs_is_input = false;
                    fs_is_output = false;
                  }
            | _ ->
                err "IP output %s of %s must connect to a plain identifier"
                  c.Ast.formal child_prefix)
          else
            match actual with
            | Ast.Ident "_nc_" -> ()
            | _ -> inputs := (c.Ast.formal, actual) :: !inputs)
        i.Ast.conns;
      ctx.prims <-
        {
          fp_name = child_prefix;
          fp_kind = kind;
          fp_params = i.Ast.params;
          fp_inputs = List.rev !inputs;
          fp_outputs = List.rev !outputs;
        }
        :: ctx.prims
  | None -> (
      match Ast.find_module ctx.design i.Ast.target with
      | None -> err "unknown module %s instantiated as %s" i.Ast.target child_prefix
      | Some child ->
          let port_map = ref [] in
          let extra_assigns = ref [] in
          List.iter
            (fun (c : Ast.connection) ->
              let port =
                match Ast.find_port child c.Ast.formal with
                | Some p -> p
                | None ->
                    err "module %s has no port %s" child.Ast.mod_name
                      c.Ast.formal
              in
              let actual = subst_expr consts rename c.Ast.actual in
              match (port.Ast.dir, actual) with
              | _, Ast.Ident "_nc_" -> ()
              | _, Ast.Ident flat ->
                  port_map := (c.Ast.formal, flat) :: !port_map
              | Ast.Input, e ->
                  (* feed expression through a fresh alias net *)
                  let alias = join child_prefix c.Ast.formal in
                  add_signal ctx
                    {
                      fs_name = alias;
                      fs_width = port.Ast.port_width;
                      fs_depth = None;
                      fs_init = None;
                      fs_is_input = false;
                      fs_is_output = false;
                    };
                  extra_assigns := (Ast.Lident alias, e) :: !extra_assigns;
                  port_map := (c.Ast.formal, alias) :: !port_map
              | Ast.Output, (Ast.Index _ | Ast.Range _) ->
                  let alias = join child_prefix c.Ast.formal in
                  add_signal ctx
                    {
                      fs_name = alias;
                      fs_width = port.Ast.port_width;
                      fs_depth = None;
                      fs_init = None;
                      fs_is_input = false;
                      fs_is_output = false;
                    };
                  let lv =
                    match actual with
                    | Ast.Index (n, ix) -> Ast.Lindex (n, ix)
                    | Ast.Range (n, hi, lo) -> Ast.Lrange (n, hi, lo)
                    | _ -> assert false
                  in
                  extra_assigns := (lv, Ast.Ident alias) :: !extra_assigns;
                  port_map := (c.Ast.formal, alias) :: !port_map
              | Ast.Output, _ ->
                  err "output port %s of %s connected to a non-lvalue"
                    c.Ast.formal child_prefix
              | Ast.Inout, _ -> err "inout ports are not supported (%s)" c.Ast.formal)
            i.Ast.conns;
          inline ctx child_prefix child i.Ast.params !port_map;
          ctx.assigns <- !extra_assigns @ ctx.assigns)

let elaborate (design : Ast.design) ~top : flat =
  let top_mod =
    match Ast.find_module design top with
    | Some m -> m
    | None -> err "top module %s not found" top
  in
  let ctx =
    { design; signals = Hashtbl.create 64; assigns = []; comb = []; seq = [];
      prims = [] }
  in
  inline ctx "" top_mod [] [];
  (* Mark top-level port directions. *)
  List.iter
    (fun (p : Ast.port) ->
      match Hashtbl.find_opt ctx.signals p.Ast.port_name with
      | None -> err "top port %s lost during elaboration" p.Ast.port_name
      | Some s ->
          Hashtbl.replace ctx.signals p.Ast.port_name
            {
              s with
              fs_is_input = (p.Ast.dir = Ast.Input);
              fs_is_output = (p.Ast.dir = Ast.Output);
            })
    top_mod.Ast.ports;
  let port_list dir =
    List.filter_map
      (fun (p : Ast.port) ->
        if p.Ast.dir = dir then Some (p.Ast.port_name, p.Ast.port_width)
        else None)
      top_mod.Ast.ports
  in
  (* Dense signal interning: every flat signal gets an integer id
     (sorted by name, so ids are deterministic across runs). The
     compiled evaluation path indexes its value array with these ids
     instead of hashing name strings on every expression node. *)
  let f_signal_order =
    Hashtbl.fold (fun name _ acc -> name :: acc) ctx.signals []
    |> List.sort String.compare |> Array.of_list
  in
  let f_signal_ids = Hashtbl.create (Array.length f_signal_order) in
  Array.iteri (fun i name -> Hashtbl.replace f_signal_ids name i) f_signal_order;
  {
    f_top = top;
    f_signals = ctx.signals;
    f_assigns = List.rev ctx.assigns;
    f_comb = List.rev ctx.comb;
    f_seq = List.rev ctx.seq;
    f_prims = List.rev ctx.prims;
    f_inputs = port_list Ast.Input;
    f_outputs = port_list Ast.Output;
    f_signal_order;
    f_signal_ids;
  }

let signal flat name =
  match Hashtbl.find_opt flat.f_signals name with
  | Some s -> s
  | None -> err "unknown signal %s" name

let signal_width flat name = (signal flat name).fs_width
