(** Lowered closure-array settle kernel.

    Lowers the id-resolved compiled plan ({!Compiled}) one level
    further at simulator construction: each combinational node becomes
    a fused [unit -> unit] closure with all dispatch (width class,
    representation, index power-of-two-ness) decided at compile time,
    and every vector signal of width [<= 63] lives unboxed in a dense
    [int array] bank ({!Fpga_bits.Bits.Imm}), masked on write. Wide
    vectors and memories stay in limb form in the shared
    {!Compiled.env}. Sequential always-blocks are lowered the same way,
    with non-blocking writes deferred into a flat int-triple commit
    buffer (boxed/memory targets overflow into a side list).

    With [dirty = true] the kernel additionally schedules closures by
    a per-closure dirty worklist fed from a closure-level sensitivity
    index (the event kernel's change-driven skipping composed with
    closure-array dispatch), with the same adaptive sparse/dense
    hysteresis as the event kernel so fully-active plans pay no flag
    traffic.

    Semantics are bit-identical to the reference executor: same width
    rules, same out-of-range index handling, same non-blocking commit
    ordering (dropped writes included, so commit statistics match),
    same display gating and change-detection points (toggle counts
    match the other kernels). Managed by {!Simulator}; not a public
    entry point. *)

type stats = {
  lw_nodes : int;  (** combinational nodes lowered *)
  lw_closures : int;  (** plan closures after fusion *)
  lw_fused : int;  (** nodes folded into a predecessor closure *)
  lw_imm : int;  (** signals held in the immediate int bank *)
  lw_boxed : int;  (** signals kept in limb form (wide vecs + mems) *)
  lw_seq : int;  (** sequential always-blocks lowered to closures *)
  lw_dirty : bool;  (** dirty-set (worklist) scheduling enabled *)
}

(** Runtime counters, maintained unconditionally (a handful of int
    stores per settle/commit, never per node). *)
type run_stats = {
  mutable rs_settles : int;  (** settle passes *)
  mutable rs_closures_run : int;  (** closures evaluated *)
  mutable rs_closures_skipped : int;  (** skipped by dirty scheduling *)
  mutable rs_edges : int;  (** sequential block invocations *)
  mutable rs_commit_imm : int;  (** flat-buffer (unboxed) NBA commits *)
  mutable rs_commit_boxed : int;  (** boxed NBA commits, drops included *)
}

type t

(** Combinational node in compiled form, as built by [Simulator]. *)
type node =
  | Lassign of Compiled.clvalue * Compiled.cexpr * int  (** ctx width *)
  | Lblock of Compiled.cstmt list

val create :
  tab:Compiled.tab ->
  env:Compiled.env ->
  finished:bool ref ->
  nodes:node array ->
  fuse:bool array ->
  sens:int list array ->
  display_ranks:int list ->
  dirty:bool ->
  seq:(Elaborate.clock_edge * Compiled.cstmt list) list ->
  t
(** [fuse.(r)] marks a node to be folded into its predecessor's closure
    (legal only for single-reader assign chains — the caller proves
    it); [finished] is shared with the simulator's $finish flag and
    checked before every lowered statement. Immediate-bank values are
    seeded from [env]. [sens] maps signal id to the ranks of reading
    nodes and [display_ranks] lists ranks of comb blocks containing
    [$display]; both are lifted to the closure level when [dirty] is
    set (and ignored otherwise). *)

(** {1 Execution} *)

val settle : t -> displays:bool -> int
(** One settle pass over the fused plan in topological order; returns
    the number of closures evaluated (the whole plan unless dirty-set
    scheduling skipped some). [displays] gates combinational
    [$display]s, as in the reference settle; under dirty scheduling,
    display closures are forced onto the worklist for display-enabled
    settles so logs stay identical. *)

val run_edge : t -> Elaborate.clock_edge -> unit
(** Run the sequential blocks for one clock edge; non-blocking writes
    accumulate until {!commit}. *)

val pending_count : t -> int
(** Deferred writes accumulated since the last {!commit} (dropped
    writes included, matching the reference's commit statistics). *)

val commit : t -> unit
(** Apply deferred non-blocking writes with change detection and
    notification: the flat immediate buffer in push order, then boxed
    writes in program order. Per-signal ordering is exact (a signal's
    writes always land in one buffer). *)

(** {1 Dirty-set scheduling} *)

val mark_all : t -> unit
(** Reset the dirty scheduler: back to the sparse worklist with every
    closure pending (checkpoint restore). No-op unless [dirty]. *)

val dirty_count : t -> int
(** Closures currently pending: the sparse worklist size, or the whole
    plan when not skipping (dense mode and the plain kernel). *)

val dense : t -> bool
(** Whether dirty scheduling is currently in the dense full-sweep
    mode. Always [false] for the plain kernel. *)

val plan_size : t -> int
(** Number of closures in the fused settle plan. *)

(** {1 State access} *)

val read_vec : t -> int -> Fpga_bits.Bits.t
(** Materialize the current value of a vector signal. *)

val write_vec : t -> int -> Fpga_bits.Bits.t -> unit
(** Change-detected external write (inputs, primitive outputs),
    resized to the signal width; notifies on change. *)

val set_vec_raw : t -> int -> Fpga_bits.Bits.t -> unit
(** Checkpoint restore: store without change detection or
    notification. *)

val input_fn : t -> Compiled.cexpr -> unit -> Fpga_bits.Bits.t
(** Compile a primitive-input reader over the lowered banks
    (self-determined context). *)

val set_emit : t -> (string -> unit) -> unit
(** Wire the [$display] sink (the simulator's log/telemetry path). *)

val set_notify : t -> (int -> unit) -> unit
(** Wire the external change callback (toggle counting under
    telemetry); dirty marking is composed on top internally. *)

val stats : t -> stats
val run_stats : t -> run_stats
