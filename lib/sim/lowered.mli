(** Lowered closure-array settle kernel.

    Lowers the id-resolved compiled plan ({!Compiled}) one level
    further at simulator construction: each combinational node becomes
    a fused [unit -> unit] closure with all dispatch (width class,
    representation, index power-of-two-ness) decided at compile time,
    and every vector signal of width [<= 63] lives unboxed in a dense
    [int array] bank ({!Fpga_bits.Bits.Imm}), masked on write. Wide
    vectors and memories stay in limb form in the shared
    {!Compiled.env}.

    Semantics are bit-identical to the reference executor: same width
    rules, same out-of-range index handling, same non-blocking commit
    ordering (dropped writes included, so commit statistics match),
    same display gating and change-detection points (toggle counts
    match the other kernels). Managed by {!Simulator}; not a public
    entry point. *)

type stats = {
  lw_nodes : int;  (** combinational nodes lowered *)
  lw_closures : int;  (** plan closures after fusion *)
  lw_fused : int;  (** nodes folded into a predecessor closure *)
  lw_imm : int;  (** signals held in the immediate int bank *)
  lw_boxed : int;  (** signals kept in limb form (wide vecs + mems) *)
}

type t

(** Combinational node in compiled form, as built by [Simulator]. *)
type node =
  | Lassign of Compiled.clvalue * Compiled.cexpr * int  (** ctx width *)
  | Lblock of Compiled.cstmt list

val create :
  tab:Compiled.tab ->
  env:Compiled.env ->
  finished:bool ref ->
  nodes:node array ->
  fuse:bool array ->
  seq:(Elaborate.clock_edge * Compiled.cstmt list) list ->
  t
(** [fuse.(r)] marks a node to be folded into its predecessor's closure
    (legal only for single-reader assign chains — the caller proves
    it); [finished] is shared with the simulator's $finish flag and
    checked before every lowered statement. Immediate-bank values are
    seeded from [env]. *)

(** {1 Execution} *)

val settle : t -> displays:bool -> unit
(** One full sweep of the fused plan in topological order. [displays]
    gates combinational [$display]s, as in the reference settle. *)

val run_edge : t -> Elaborate.clock_edge -> unit
(** Run the sequential blocks for one clock edge; non-blocking writes
    accumulate until {!commit}. *)

val pending_count : t -> int
(** Deferred writes accumulated since the last {!commit} (dropped
    writes included, matching the reference's commit statistics). *)

val commit : t -> unit
(** Apply deferred non-blocking writes in program order with change
    detection and notification. *)

(** {1 State access} *)

val read_vec : t -> int -> Fpga_bits.Bits.t
(** Materialize the current value of a vector signal. *)

val write_vec : t -> int -> Fpga_bits.Bits.t -> unit
(** Change-detected external write (inputs, primitive outputs),
    resized to the signal width; notifies on change. *)

val set_vec_raw : t -> int -> Fpga_bits.Bits.t -> unit
(** Checkpoint restore: store without change detection or
    notification. *)

val input_fn : t -> Compiled.cexpr -> unit -> Fpga_bits.Bits.t
(** Compile a primitive-input reader over the lowered banks
    (self-determined context). *)

val set_emit : t -> (string -> unit) -> unit
(** Wire the [$display] sink (the simulator's log/telemetry path). *)

val set_notify : t -> (int -> unit) -> unit
(** Wire the change callback (toggle counting under telemetry). *)

val stats : t -> stats
