(* The reproducible-bug testbed (section 6.1, Table 2).

   Each bug carries the buggy Verilog source, the fixed source (the
   upstream patch reduced to our subset), a stimulus that triggers the
   symptom push-button, observation hooks, and metadata connecting it to
   the study taxonomy and to the tools that help localize it.

   Reproduction is differential: the same stimulus drives the buggy and
   the fixed design; symptoms are derived from how the two runs diverge
   (missing output rows = data loss, different rows = incorrect output,
   unmet completion = stuck, tripped shell monitor = external error). *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator
module Testbench = Fpga_sim.Testbench
module Taxonomy = Fpga_study.Taxonomy

type tool = SC | FSM | Stat | Dep | LC

let tool_name = function
  | SC -> "SignalCat"
  | FSM -> "FSM Monitor"
  | Stat -> "Statistics Monitor"
  | Dep -> "Dependency Monitor"
  | LC -> "LossCheck"

type t = {
  id : string;  (* Table 2 identifier, e.g. "D1" *)
  subclass : Taxonomy.subclass;
  application : string;
  platform : Fpga_resources.Platforms.kind;
  symptoms : Taxonomy.symptom list;  (* expected, from Table 2 *)
  helpful_tools : tool list;
  description : string;
  top : string;
  buggy_src : string;
  fixed_src : string;
  stimulus : Testbench.stimulus;
  max_cycles : int;
  (* a valid output row of the design, when one is present this cycle *)
  sample : Simulator.t -> (string * int) list option;
  (* completion condition; unmet = the "stuck" symptom *)
  done_when : (Simulator.t -> bool) option;
  (* FPGA-shell-style external monitor (protocol checker, address range
     checker); tripping it is the "Ext" symptom *)
  ext_monitor : (Simulator.t -> bool) option;
  (* LossCheck inputs, for the data-loss bugs *)
  loss_spec : Fpga_debug.Losscheck.spec option;
  (* the register LossCheck is expected to localize (the loss root) *)
  loss_root : string option;
  (* passing stimuli used as ground truth for false-positive filtering *)
  ground_truth : (Testbench.stimulus * int) list;
  (* manually identified FSM state variables, for the section 4.2
     detection-accuracy experiment *)
  manual_fsms : string list;
  (* events for Statistics Monitor debugging recipes *)
  stat_events : (string * string) list;  (* event name * 1-bit signal *)
  (* target for Dependency Monitor recipes *)
  dep_target : string option;
  target_mhz : int;
}

type report = {
  stuck : bool;
  finished : bool;
  rows : (int * (string * int) list) list;
  ext_error : bool;
  log : (int * string) list;
  cycles : int;
  vcd : string option;
}

let design_of bug ~buggy =
  Fpga_hdl.Parser.parse_design (if buggy then bug.buggy_src else bug.fixed_src)

(* ------------------------------------------------------------------ *)
(* Harness state in checkpoint metadata                                 *)
(* ------------------------------------------------------------------ *)

(* A checkpoint captures the simulator; the testbed harness around it
   (observed output rows, the external-monitor flag, the completion
   flag) lives in the checkpoint's metadata section so a replayed run
   reports exactly what an uninterrupted run would. Row names are
   Verilog identifiers and values are ints, so a flat
   "cycle:name=value,...;..." encoding round-trips losslessly. *)

let encode_rows (rows : (int * (string * int) list) list) : string =
  String.concat ";"
    (List.map
       (fun (c, row) ->
         Printf.sprintf "%d:%s" c
           (String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) row)))
       rows)

let decode_rows (s : string) : (int * (string * int) list) list =
  if s = "" then []
  else
    String.split_on_char ';' s
    |> List.map (fun entry ->
           match String.split_on_char ':' entry with
           | [ c; row ] ->
               ( int_of_string c,
                 if row = "" then []
                 else
                   String.split_on_char ',' row
                   |> List.map (fun kv ->
                          match String.split_on_char '=' kv with
                          | [ k; v ] -> (k, int_of_string v)
                          | _ -> failwith "malformed row binding") )
           | _ -> failwith "malformed row entry")

type harness = {
  h_rows : (int * (string * int) list) list;  (* oldest first *)
  h_ext : bool;
  h_satisfied : bool;
}

let meta_of_harness h =
  [
    ("harness.rows", encode_rows h.h_rows);
    ("harness.ext", if h.h_ext then "1" else "0");
    ("harness.satisfied", if h.h_satisfied then "1" else "0");
  ]

let harness_of_meta meta =
  let get k = List.assoc_opt k meta in
  try
    {
      h_rows = (match get "harness.rows" with Some s -> decode_rows s | None -> []);
      h_ext = get "harness.ext" = Some "1";
      h_satisfied = get "harness.satisfied" = Some "1";
    }
  with _ ->
    raise
      (Fpga_sim.Checkpoint.Checkpoint_error
         "checkpoint carries malformed harness metadata")

let run_design ?(vcd = false) ?(vcd_from = 0) ?kernel ?max_cycles
    ?checkpoint_every ?on_checkpoint ?from_checkpoint (bug : t)
    (design : Ast.design) : report =
  let max_cycles = Option.value max_cycles ~default:bug.max_cycles in
  let flat = Fpga_sim.Elaborate.elaborate design ~top:bug.top in
  let sim =
    match kernel with
    | Some kernel -> Simulator.create ~kernel flat
    | None -> Simulator.create flat
  in
  let rows = ref [] in
  let ext = ref false in
  let satisfied = ref false in
  (* Resuming from a checkpoint restores both halves of the state: the
     simulator itself and the harness observations accumulated up to
     the capture cycle, so the loop continues exactly where the
     original run was. *)
  let start =
    match from_checkpoint with
    | None -> 0
    | Some ck ->
        Simulator.restore_checkpoint sim ck;
        let h = harness_of_meta ck.Fpga_sim.Checkpoint.ck_meta in
        rows := List.rev h.h_rows;
        ext := h.h_ext;
        satisfied := h.h_satisfied;
        ck.Fpga_sim.Checkpoint.ck_cycle
  in
  let dump = if vcd then Some (Fpga_sim.Vcd.create flat) else None in
  let capture_checkpoint () =
    match on_checkpoint with
    | None -> ()
    | Some f ->
        f
          (Simulator.save_checkpoint ~tag:bug.id
             ~meta:
               (meta_of_harness
                  { h_rows = List.rev !rows; h_ext = !ext;
                    h_satisfied = !satisfied })
             sim)
  in
  let i = ref start in
  while !i < max_cycles && (not (Simulator.finished sim)) && not !satisfied do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (bug.stimulus !i);
    Simulator.step sim;
    (match dump with
    | Some d when !i >= vcd_from -> Fpga_sim.Vcd.sample d sim
    | _ -> ());
    (match bug.sample sim with
    | Some row -> rows := (!i, row) :: !rows
    | None -> ());
    (match bug.ext_monitor with
    | Some f when f sim -> ext := true
    | _ -> ());
    (match bug.done_when with
    | Some cond when cond sim -> satisfied := true
    | _ -> ());
    (match checkpoint_every with
    | Some every when every > 0 && (!i + 1) mod every = 0 ->
        capture_checkpoint ()
    | _ -> ());
    incr i
  done;
  {
    stuck = (match bug.done_when with Some _ -> not !satisfied | None -> false);
    finished = Simulator.finished sim;
    rows = List.rev !rows;
    ext_error = !ext;
    log = Simulator.log sim;
    cycles = !i;
    vcd = Option.map Fpga_sim.Vcd.contents dump;
  }

let run (bug : t) ~buggy : report = run_design bug (design_of bug ~buggy)

(* Symptoms derived from an already-executed differential pair: how the
   buggy run diverges from the fixed one. Factored out of
   [observed_symptoms] so a campaign job that already holds both
   reports (e.g. with VCD capture on the buggy side) need not simulate
   again. *)
let symptoms_of ~(buggy : report) ~(fixed : report) : Taxonomy.symptom list =
  let stuck = buggy.stuck && not fixed.stuck in
  let loss = List.length buggy.rows < List.length fixed.rows in
  let incorrect =
    List.length buggy.rows = List.length fixed.rows
    && List.exists2 (fun (_, a) (_, b) -> a <> b) buggy.rows fixed.rows
  in
  let ext = buggy.ext_error && not fixed.ext_error in
  List.filter_map
    (fun (flag, sym) -> if flag then Some sym else None)
    [
      (stuck, Taxonomy.App_stuck);
      (loss, Taxonomy.Data_loss);
      (incorrect, Taxonomy.Incorrect_output);
      (ext, Taxonomy.External_error);
    ]

(* Symptoms observed by differential execution. *)
let observed_symptoms (bug : t) : Taxonomy.symptom list =
  let buggy = run bug ~buggy:true in
  let fixed = run bug ~buggy:false in
  symptoms_of ~buggy ~fixed

(* Push-button reproduction: the expected symptoms all manifest. *)
let reproduces (bug : t) : bool =
  let observed = observed_symptoms bug in
  List.for_all (fun s -> List.mem s observed) bug.symptoms

let reproduces_of ~(bug : t) ~buggy ~fixed : bool =
  let observed = symptoms_of ~buggy ~fixed in
  List.for_all (fun s -> List.mem s observed) bug.symptoms

(* Convenience constructors for stimuli. *)
let b = Bits.of_int
let hi = b ~width:1 1
let lo = b ~width:1 0

(* Signals whose driving logic differs between the buggy and fixed
   versions - the registers a localization tool should lead the
   developer to. *)
let changed_signals (bug : t) : string list =
  let assignments src =
    let design = Fpga_hdl.Parser.parse_design src in
    match Ast.find_module design bug.top with
    | None -> []
    | Some m ->
        let decl_sigs =
          List.map
            (fun (d : Ast.decl) -> (d.Ast.name, `Decl (d.Ast.width, d.Ast.depth)))
            m.Ast.decls
        in
        let assign_sigs =
          List.concat_map
            (fun (a : Ast.always) ->
              List.map
                (fun (l, rhs, cond) ->
                  ( String.concat "," (Ast.lvalue_bases l),
                    `Assign (l, rhs, cond) ))
                (Fpga_analysis.Path_constraint.assignments_of_always a))
            m.Ast.always_blocks
          @ List.map
              (fun (l, rhs) ->
                (String.concat "," (Ast.lvalue_bases l), `Assign (l, rhs, Ast.true_expr)))
              m.Ast.assigns
        in
        (* a fix can also rewire an instance: key each connection by
           instance and formal so swapped operands surface as changes *)
        let conn_sigs =
          List.concat_map
            (fun (i : Ast.instance) ->
              List.map
                (fun (c : Ast.connection) ->
                  ( String.concat ","
                      (Ast.dedup (Ast.expr_reads c.Ast.actual)),
                    `Conn (i.Ast.inst_name, c.Ast.formal, c.Ast.actual) ))
                i.Ast.conns)
            m.Ast.instances
        in
        decl_sigs @ assign_sigs @ conn_sigs
  in
  let buggy = assignments bug.buggy_src and fixed = assignments bug.fixed_src in
  let diff a b =
    List.filter_map
      (fun (name, payload) ->
        if List.exists (fun (n, p) -> n = name && p = payload) b then None
        else Some name)
      a
  in
  (diff buggy fixed @ diff fixed buggy)
  |> List.concat_map (String.split_on_char ',')
  |> Ast.dedup
