(* Checkpoint streams and time-travel replay over the testbed. See
   replay.mli for the workflow contract.

   The bisection strategy mirrors checkpoint-based FPGA debuggers: the
   coarse search touches only checkpoint *metadata* (the harness state
   each snapshot carries), so it never deserializes values or
   simulates; only the final inter-checkpoint window is re-simulated,
   one cycle at a time, to pin the exact first failing cycle. *)

module Checkpoint = Fpga_sim.Checkpoint
module Simulator = Fpga_sim.Simulator
module Telemetry = Fpga_telemetry.Telemetry

let probes_counter = Telemetry.Counter.make "replay.bisect_probes"
let recorded_counter = Telemetry.Counter.make "replay.checkpoints_recorded"

type recording = {
  rec_checkpoints : Checkpoint.t list;
  rec_report : Bug.report;
}

let record ?kernel ?(every = 50) ?max_cycles (bug : Bug.t) : recording =
  Telemetry.span "replay.record" @@ fun () ->
  let cps = ref [] in
  let report =
    Bug.run_design ?kernel ?max_cycles ~checkpoint_every:every
      ~on_checkpoint:(fun c ->
        Telemetry.Counter.incr recorded_counter;
        cps := c :: !cps)
      bug
      (Bug.design_of bug ~buggy:true)
  in
  { rec_checkpoints = List.rev !cps; rec_report = report }

let replay ?kernel ?(vcd = true) ?window ~(from : Checkpoint.t) (bug : Bug.t) :
    Bug.report =
  Telemetry.span "replay.replay" @@ fun () ->
  let max_cycles =
    match window with
    | Some w -> from.Checkpoint.ck_cycle + w
    | None -> max bug.Bug.max_cycles from.Checkpoint.ck_cycle
  in
  Bug.run_design ?kernel ~vcd ~from_checkpoint:from ~max_cycles bug
    (Bug.design_of bug ~buggy:true)

type bisect_result = {
  bi_first_failing : int option;
  bi_checkpoints : int;
  bi_probes : int;
  bi_replayed_cycles : int;
  bi_detail : string;
}

let bisect ?kernel ?(every = 50) (bug : Bug.t) : bisect_result =
  Telemetry.span "replay.bisect" @@ fun () ->
  let fixed = Bug.run_design ?kernel bug (Bug.design_of bug ~buggy:false) in
  let fixed_end = fixed.Bug.cycles in
  let fixed_done = bug.Bug.done_when <> None && not fixed.Bug.stuck in
  let { rec_checkpoints; rec_report = buggy } = record ?kernel ~every bug in
  let cps = Array.of_list rec_checkpoints in
  let n = Array.length cps in
  (* Failure at cycle C: the buggy run's observable state within the
     first C cycles has diverged from the fixed reference. All three
     clauses are monotone in C over a recorded stream: rows only
     append (a prefix mismatch persists), the monitor flag latches, and
     the completion clause compares against a run that has already
     stopped. *)
  let pre limit rows = List.filter (fun (c, _) -> c < limit) rows in
  let failed ~cycle ~rows ~ext ~satisfied =
    ext
    || (let limit = min cycle fixed_end in
        pre limit rows <> pre limit fixed.Bug.rows)
    || (fixed_done && (not satisfied) && cycle >= fixed_end)
  in
  let probes = ref 0 in
  let failed_ck (ck : Checkpoint.t) =
    incr probes;
    Telemetry.Counter.incr probes_counter;
    Telemetry.Trace.instant ~cat:"replay" "bisect.probe";
    let h = Bug.harness_of_meta ck.Checkpoint.ck_meta in
    failed ~cycle:ck.Checkpoint.ck_cycle ~rows:h.Bug.h_rows ~ext:h.Bug.h_ext
      ~satisfied:h.Bug.h_satisfied
  in
  (* The horizon is the last virtual cycle worth probing: observable
     state freezes when the buggy run stops, but the completion clause
     can still flip as reference time passes fixed_end. *)
  let horizon = max buggy.Bug.cycles fixed_end in
  let end_satisfied = bug.Bug.done_when <> None && not buggy.Bug.stuck in
  incr probes;
  if
    not
      (failed ~cycle:horizon ~rows:buggy.Bug.rows ~ext:buggy.Bug.ext_error
         ~satisfied:end_satisfied)
  then
    {
      bi_first_failing = None;
      bi_checkpoints = n;
      bi_probes = !probes;
      bi_replayed_cycles = 0;
      bi_detail =
        Printf.sprintf
          "no divergence: the buggy run matches the fixed reference over %d \
           cycles"
          horizon;
    }
  else (
    (* coarse: binary-search the stream for the first failing snapshot *)
    let lo = ref 0 and hi = ref n in
    Telemetry.span "replay.bisect.search" (fun () ->
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if failed_ck cps.(mid) then hi := mid else lo := mid + 1
        done);
    let from = if !lo = 0 then None else Some cps.(!lo - 1) in
    let until = if !lo < n then cps.(!lo).Checkpoint.ck_cycle else horizon in
    (* fine: re-simulate from the last good snapshot, testing the
       predicate after every completed cycle *)
    let design = Bug.design_of bug ~buggy:true in
    let flat = Fpga_sim.Elaborate.elaborate design ~top:bug.Bug.top in
    let sim =
      match kernel with
      | Some kernel -> Simulator.create ~kernel flat
      | None -> Simulator.create flat
    in
    let rows = ref [] (* newest first *) in
    let ext = ref false in
    let satisfied = ref false in
    let start =
      match from with
      | None -> 0
      | Some ck ->
          Simulator.restore_checkpoint sim ck;
          let h = Bug.harness_of_meta ck.Checkpoint.ck_meta in
          rows := List.rev h.Bug.h_rows;
          ext := h.Bug.h_ext;
          satisfied := h.Bug.h_satisfied;
          ck.Checkpoint.ck_cycle
    in
    let replayed = ref 0 in
    let first = ref None in
    let c = ref (start + 1) in
    Telemetry.span "replay.bisect.resim" @@ fun () ->
    while !first = None && !c <= until do
      (* advance the simulation through cycle [c-1] unless the run has
         already stopped (then only reference time advances) *)
      if
        (not (Simulator.finished sim))
        && (not !satisfied)
        && !c - 1 < bug.Bug.max_cycles
      then (
        List.iter
          (fun (nm, v) -> Simulator.set_input sim nm v)
          (bug.Bug.stimulus (!c - 1));
        Simulator.step sim;
        incr replayed;
        (match bug.Bug.sample sim with
        | Some row -> rows := (!c - 1, row) :: !rows
        | None -> ());
        (match bug.Bug.ext_monitor with
        | Some f when f sim -> ext := true
        | _ -> ());
        match bug.Bug.done_when with
        | Some cond when cond sim -> satisfied := true
        | _ -> ());
      if failed ~cycle:!c ~rows:(List.rev !rows) ~ext:!ext
           ~satisfied:!satisfied
      then first := Some !c
      else incr c
    done;
    {
      bi_first_failing = !first;
      bi_checkpoints = n;
      bi_probes = !probes;
      bi_replayed_cycles = !replayed;
      bi_detail =
        (match !first with
        | Some c ->
            Printf.sprintf
              "first failing cycle %d: %d-checkpoint stream (every %d \
               cycles), %d metadata probes, %d cycles re-simulated from \
               cycle %d"
              c n every !probes !replayed start
        | None ->
            Printf.sprintf
              "divergence detected at the horizon but not localized \
               (searched cycles %d..%d)"
              (start + 1) until);
    })
