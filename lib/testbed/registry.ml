(* All reproducible bugs of the testbed, in Table 2 order. *)

let all : Bug.t list =
  [
    App_rsd.bug;          (* D1 *)
    App_grayscale.bug;    (* D2 *)
    App_optimus.d3;       (* D3 *)
    App_frame_fifo.d4;    (* D4 *)
    App_sha512.d5;        (* D5 *)
    App_fft.bug;          (* D6 *)
    App_fadd.bug;         (* D7 *)
    App_axis_switch.bug;  (* D8 *)
    App_sdspi.d9;         (* D9 *)
    App_sha512.d10;       (* D10 *)
    App_frame_fifo.d11;   (* D11 *)
    App_frame_fifo.d12;   (* D12 *)
    App_frame_len.bug;    (* D13 *)
    App_sdspi.c1;         (* C1 *)
    App_optimus.c2;       (* C2 *)
    App_sdspi.c3;         (* C3 *)
    App_axis_fifo.bug;    (* C4 *)
    App_axil_demo.bug;    (* S1 *)
    App_axis_demo.bug;    (* S2 *)
    App_axis_adapter.bug; (* S3 *)
  ]

let find id = List.find_opt (fun (b : Bug.t) -> b.Bug.id = id) all
let ids = List.map (fun (b : Bug.t) -> b.Bug.id) all

(* Bugs whose loss_spec makes them LossCheck targets. *)
let loss_bugs = List.filter (fun (b : Bug.t) -> b.Bug.loss_spec <> None) all

(* The designs the fuzz campaign mutates: cheap cycle budgets so four
   differential runs per mutant stay fast, and between them every
   structural feature a mutation template targets (IP instances in D4
   and C4, case statements, concatenations, memories, reset logic). *)
let fuzz_targets =
  List.filter
    (fun (b : Bug.t) ->
      List.mem b.Bug.id [ "D2"; "D4"; "D8"; "D13"; "C4"; "S1"; "S2"; "S3" ])
    all

(* The extended reproductions beyond Table 2 (see Extended, App_cpu). *)
let extended : Bug.t list = Extended.all @ [ App_cpu.e7; App_cpu.e8 ]

let all_with_extended = all @ extended

(* Resolve a list of ids (extended set included), preserving request
   order; the second component collects the unknown ids so a CLI can
   report them all at once. *)
let find_many requested =
  let find_any id =
    List.find_opt (fun (b : Bug.t) -> b.Bug.id = id) all_with_extended
  in
  List.fold_right
    (fun id (found, unknown) ->
      match find_any id with
      | Some b -> (b :: found, unknown)
      | None -> (found, id :: unknown))
    requested ([], [])
