(** Checkpoint streams and time-travel replay over the testbed — the
    paper's "run long, then reconstruct the interesting window in
    simulation" workflow.

    {!record} runs a bug's buggy design while emitting a periodic
    checkpoint stream. {!replay} restores any snapshot from such a
    stream and re-simulates a window with a full waveform of all
    signals; the result is bit-identical to the uninterrupted run over
    the same window. {!bisect} combines the two into first-failure
    localization: it binary-searches the checkpoint stream for the
    first snapshot whose harness state has already diverged from the
    fixed design's reference run, then re-simulates forward from the
    last good snapshot one cycle at a time to pin the exact first
    failing cycle — the cost profile (log-many metadata probes plus at
    most one inter-checkpoint window of re-simulation) that makes the
    technique viable on multi-hour FPGA traces. *)

type recording = {
  rec_checkpoints : Fpga_sim.Checkpoint.t list;  (** by ascending cycle *)
  rec_report : Bug.report;  (** the straight run's outcome *)
}

val record :
  ?kernel:Fpga_sim.Simulator.kernel ->
  ?every:int ->
  ?max_cycles:int ->
  Bug.t ->
  recording
(** Run the buggy design, capturing a checkpoint every [every] cycles
    (default 50). A run shorter than [every] produces an empty
    stream. *)

val replay :
  ?kernel:Fpga_sim.Simulator.kernel ->
  ?vcd:bool ->
  ?window:int ->
  from:Fpga_sim.Checkpoint.t ->
  Bug.t ->
  Bug.report
(** Restore [from] and re-simulate. [window] bounds the number of
    cycles replayed past the snapshot; by default the run continues to
    the bug's own cycle budget, stopping early on [$finish] or the
    completion condition exactly as the straight run does. [vcd]
    (default true) captures the full waveform of the window. *)

(** Outcome of a checkpoint-stream bisection. *)
type bisect_result = {
  bi_first_failing : int option;
      (** smallest completed-cycle count at which the buggy run's
          observable state has diverged from the fixed reference;
          [None] when the two runs never diverge *)
  bi_checkpoints : int;  (** checkpoints in the recorded stream *)
  bi_probes : int;  (** metadata-only predicate evaluations *)
  bi_replayed_cycles : int;  (** cycles re-simulated during the scan *)
  bi_detail : string;  (** human-readable account of the search *)
}

val bisect :
  ?kernel:Fpga_sim.Simulator.kernel -> ?every:int -> Bug.t -> bisect_result
(** Locate the first failing cycle of the buggy run. Failure at cycle
    [C] means: the external monitor has tripped, the observed output
    rows within the first [min C fixed_end] cycles differ from the
    fixed run's, or the fixed run completed by [C] while the buggy run
    had not. All three clauses are monotone over a recorded stream, so
    binary search over checkpoint metadata is sound. *)
