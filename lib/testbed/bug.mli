(** The reproducible-bug record (section 6.1, Table 2).

    Each bug carries the buggy Verilog source, the fixed source (the
    upstream patch reduced to our subset), a stimulus that triggers the
    symptom push-button, observation hooks, and metadata tying it to the
    study taxonomy and the tools that help localize it.

    Reproduction is differential: the same stimulus drives the buggy and
    the fixed design, and symptoms are derived from how the runs diverge
    (missing output rows = data loss, different rows = incorrect output,
    unmet completion = stuck, tripped shell monitor = external error). *)

type tool = SC | FSM | Stat | Dep | LC

val tool_name : tool -> string

type t = {
  id : string;  (** Table 2 identifier, e.g. "D1" *)
  subclass : Fpga_study.Taxonomy.subclass;
  application : string;
  platform : Fpga_resources.Platforms.kind;
  symptoms : Fpga_study.Taxonomy.symptom list;  (** expected, per Table 2 *)
  helpful_tools : tool list;
  description : string;
  top : string;
  buggy_src : string;
  fixed_src : string;
  stimulus : Fpga_sim.Testbench.stimulus;
  max_cycles : int;
  sample : Fpga_sim.Simulator.t -> (string * int) list option;
      (** a valid output row of the design, when present this cycle *)
  done_when : (Fpga_sim.Simulator.t -> bool) option;
      (** completion condition; unmet = the "stuck" symptom *)
  ext_monitor : (Fpga_sim.Simulator.t -> bool) option;
      (** FPGA-shell-style external monitor (protocol checker, address
          range checker); tripping it is the "Ext" symptom *)
  loss_spec : Fpga_debug.Losscheck.spec option;
  loss_root : string option;
      (** the register LossCheck is expected to localize *)
  ground_truth : (Fpga_sim.Testbench.stimulus * int) list;
      (** passing stimuli used for false-positive filtering *)
  manual_fsms : string list;
      (** manually identified FSM state variables (section 4.2 accuracy) *)
  stat_events : (string * string) list;  (** event name, 1-bit signal *)
  dep_target : string option;
  target_mhz : int;
}

type report = {
  stuck : bool;
  finished : bool;
  rows : (int * (string * int) list) list;
  ext_error : bool;
  log : (int * string) list;
  cycles : int;
      (** the cycle count the run ended at. For a straight run this is
          the number of cycles simulated; for a run resumed
          [?from_checkpoint] it is the absolute end cycle, so straight
          and replayed runs of the same window report the same value *)
  vcd : string option;  (** full VCD text when requested via [?vcd] *)
}

val design_of : t -> buggy:bool -> Fpga_hdl.Ast.design

val run_design :
  ?vcd:bool ->
  ?vcd_from:int ->
  ?kernel:Fpga_sim.Simulator.kernel ->
  ?max_cycles:int ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Fpga_sim.Checkpoint.t -> unit) ->
  ?from_checkpoint:Fpga_sim.Checkpoint.t ->
  t ->
  Fpga_hdl.Ast.design ->
  report
(** Drive an arbitrary design (e.g. an instrumented one) with the bug's
    stimulus and observation hooks. [vcd] (default false) captures a
    full waveform dump into the report; [vcd_from] (default 0) starts
    waveform sampling at that cycle index, producing the windowed
    reference a replayed run is diffed against; [kernel] picks the
    settle kernel (default event-driven); [max_cycles] overrides the
    bug's budget.

    [checkpoint_every k] (with [on_checkpoint]) emits a serializable
    {!Fpga_sim.Checkpoint.t} every [k] completed cycles; the snapshot's
    metadata carries the harness state (rows observed so far, monitor
    flags), so a resumed run reports exactly what the uninterrupted run
    would. [from_checkpoint] restores such a snapshot — simulator and
    harness state both — and continues from its cycle; combined with
    [vcd] this re-simulates a window with a full waveform of {e all}
    signals, byte-identical to the straight run's [vcd_from] window
    (the replay-determinism property CI enforces). *)

(** Harness state carried in checkpoint metadata — the observations the
    loop in {!run_design} accumulates alongside the simulator. Exposed
    so {!Replay} can probe a checkpoint's metadata without
    deserializing or re-simulating anything. *)
type harness = {
  h_rows : (int * (string * int) list) list;  (** oldest first *)
  h_ext : bool;
  h_satisfied : bool;
}

val harness_of_meta : (string * string) list -> harness
(** Decode the harness section of a checkpoint's metadata. Raises
    {!Fpga_sim.Checkpoint.Checkpoint_error} when the metadata is
    malformed. *)

val run : t -> buggy:bool -> report

val symptoms_of :
  buggy:report -> fixed:report -> Fpga_study.Taxonomy.symptom list
(** Symptoms derived from an already-executed differential pair, so a
    caller holding both reports need not simulate again. *)

val observed_symptoms : t -> Fpga_study.Taxonomy.symptom list
(** Differential execution of the buggy vs. fixed design. *)

val reproduces : t -> bool
(** All expected symptoms manifest. *)

val reproduces_of : bug:t -> buggy:report -> fixed:report -> bool
(** {!reproduces} over already-executed reports. *)

val changed_signals : t -> string list
(** Signals whose driving logic differs between the buggy and fixed
    sources — where a localization tool should lead the developer. *)

(** Stimulus-building helpers. *)

val b : width:int -> int -> Fpga_bits.Bits.t
val hi : Fpga_bits.Bits.t
val lo : Fpga_bits.Bits.t
