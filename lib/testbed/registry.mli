(** The reproducible-bug testbed of Table 2, in paper order:
    D1–D13 (data mis-access), C1–C4 (communication), S1–S3 (semantic). *)

val all : Bug.t list
val find : string -> Bug.t option
val ids : string list

val loss_bugs : Bug.t list
(** The bugs with a LossCheck specification — the section 6.3
    data-loss evaluation set. *)

val fuzz_targets : Bug.t list
(** The designs the fuzz campaign mutates ([D2 D4 D8 D13 C4 S1 S2
    S3]): small cycle budgets, and between them every structural
    feature an injection template targets (IP instances, case
    statements, concatenations, memories, reset logic). *)

val extended : Bug.t list
(** Eight additional study bugs reproduced beyond Table 2 (E1-E8,
    including two on the reduced CPU core), completing push-button
    coverage of all 13 subclasses. *)

val all_with_extended : Bug.t list

val find_many : string list -> Bug.t list * string list
(** Resolve ids (extended set included) in request order; the second
    component lists the ids that matched nothing. *)
