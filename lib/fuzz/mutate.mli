(** Deterministic, seed-driven AST mutation engine over the Verilog
    subset.

    Mutations are organized as {e injection templates}, one per study
    subclass (section 3's thirteen subclasses): each template knows how
    to enumerate its candidate rewrite {e sites} in a design and how to
    rewrite the k-th one. Site enumeration follows a single fixed
    traversal order (modules, then assigns, instances, always blocks;
    expressions post-order), so [(template, site)] is a stable
    coordinate system: the same pair always denotes the same rewrite on
    the same design — the property the fuzz driver's byte-identical
    replay and the greedy minimizer both rely on.

    Applied mutations never add, remove, or rename declarations, so a
    mutant keeps the ports and signals a testbed harness observes. *)

type mutation = {
  mu_template : Fpga_study.Taxonomy.subclass;
  mu_site : int;  (** index into the template's site enumeration *)
  mu_detail : string;  (** human-readable description of the rewrite *)
}

val mutation_to_string : mutation -> string
(** ["<subclass>@<site>: <detail>"]. *)

val templates : Fpga_study.Taxonomy.subclass list
(** All thirteen templates, in the taxonomy's fixed order. *)

val template_mutation_name : Fpga_study.Taxonomy.subclass -> string
(** What the template injects, e.g. ["operator swap"] for
    [Erroneous_expression] — the template table of DESIGN.md. *)

val site_count : Fpga_study.Taxonomy.subclass -> Fpga_hdl.Ast.design -> int
(** Number of candidate sites the template has in the design. *)

val apply :
  Fpga_study.Taxonomy.subclass ->
  site:int ->
  Fpga_hdl.Ast.design ->
  (Fpga_hdl.Ast.design * mutation) option
(** Rewrite the [site]-th candidate; [None] when [site] is out of
    range. The input design is never modified. *)

val apply_all :
  Fpga_hdl.Ast.design ->
  mutation list ->
  (Fpga_hdl.Ast.design * mutation list) option
(** Re-apply a recorded mutation list in order (as the minimizer does
    with subsets); [None] as soon as one [(template, site)] pair no
    longer resolves. Details are recomputed from the evolving design. *)

(** {1 Deterministic PRNG}

    A splitmix64 stream, independent of [Stdlib.Random] and of any
    global state, so a (seed, index) pair names the same mutant on
    every run, machine, and pool width. *)

type rng

val rng : int -> rng
val rng_int : rng -> int -> int
(** [rng_int r bound] is uniform-ish in [\[0, bound)]. Raises
    [Invalid_argument] when [bound <= 0]. *)

val derive : int -> int -> int
(** [derive seed index] is the sub-seed of mutant [index] in campaign
    [seed] — mixing, not addition, so neighbouring indices share no
    stream prefix. *)

val pick : rng -> Fpga_hdl.Ast.design -> (Fpga_hdl.Ast.design * mutation) option
(** Choose a template uniformly among those with at least one site,
    then a site uniformly within it, and apply. [None] when no template
    applies anywhere (practically impossible for a non-empty design). *)

(** {1 Validity gate} *)

val validate :
  top:string ->
  baseline:Fpga_hdl.Ast.design ->
  Fpga_hdl.Ast.design ->
  (Fpga_hdl.Ast.design, string) result
(** The mutant validity filter. A mutant is valid when it
    + pretty-prints and re-parses (so a dumped reproducer is exactly
      what was tested — the returned design is the reparsed one),
    + elaborates at [top],
    + passes the static width checker on every expression,
    + introduces no lint finding of severity [Error] beyond those the
      [baseline] design already had, and
    + constructs a simulator (rejecting combinational cycles).

    [Error reason] classifies the rejected mutant; the gate never
    raises. *)
