(** Differential fuzz driver: generate mutants of testbed designs,
    gate them through {!Mutate.validate}, and run each valid mutant
    under a primary kernel (event-driven by default, any
    {!Fpga_sim.Simulator.kernel} via [?kernel]) vs the brute-force
    reference, and with telemetry on vs off. Any observable
    disagreement between those runs is a kernel bug found by the
    system itself; divergence from the unmutated design is merely the
    injected bug's symptom.

    Everything here is a pure function of [(seed, index)]: the same
    pair names the same target bug, the same mutant, and the same
    classification on every run, machine, and pool width. The
    campaign engine (see {!Fpga_campaign.Campaign.run_fuzz}) is just a
    parallel map of {!run_one} over indices. *)

(** Classification lattice for one mutant. *)
type outcome =
  | Invalid of string
      (** rejected by the validity gate; the reason (never simulated) *)
  | Equivalent
      (** kernels agree and the mutant behaves like the base design *)
  | Symptom_divergent of string list
      (** kernels agree; the mutation changed observable behavior —
          the injected bug's symptom names *)
  | Kernel_mismatch of string
      (** the finding: primary vs brute-force, or telemetry-on vs off,
          disagree on the same design — description of the first
          disagreement *)

val outcome_name : outcome -> string
(** ["invalid" | "equivalent" | "symptom-divergent" |
    "kernel-mismatch"]. *)

val outcome_detail : outcome -> string
(** The carried reason/symptoms/mismatch text; [""] for
    [Equivalent]. *)

type result = {
  r_seed : int;  (** campaign seed *)
  r_index : int;  (** mutant index within the campaign *)
  r_sub_seed : int;  (** [Mutate.derive r_seed r_index] *)
  r_bug : string;  (** target testbed bug id *)
  r_mutations : Mutate.mutation list;  (** as generated, in order *)
  r_outcome : outcome;
  r_minimized : Mutate.mutation list;
      (** greedy-minimized subset still exhibiting the mismatch;
          [= r_mutations] for non-findings *)
  r_repro : string option;
      (** reproducer: commented header + plain-Verilog source of the
          minimized mutant; [Some] exactly for kernel mismatches *)
}

val targets : Fpga_testbed.Bug.t list
(** The designs the campaign mutates ({!Fpga_testbed.Registry.fuzz_targets}). *)

val target_of_index : int -> Fpga_testbed.Bug.t
(** Mutant [index] targets [targets[index mod length]] — round-robin,
    so any prefix of indices covers all designs evenly. *)

val generate :
  seed:int ->
  index:int ->
  Fpga_testbed.Bug.t * Fpga_hdl.Ast.design * Mutate.mutation list
(** The deterministic corpus: target bug, mutant design (1–3 stacked
    mutations of the bug's fixed design), and the mutations applied.
    Pre-gate — the mutant may still be invalid. *)

val classify :
  ?kernel:Fpga_sim.Simulator.kernel ->
  Fpga_testbed.Bug.t -> base:Fpga_hdl.Ast.design -> Fpga_hdl.Ast.design ->
  outcome
(** Classify one (already generated) mutant: validity gate, then the
    kernel and telemetry differentials, then comparison against the
    [base] design's run. [kernel] is the primary kernel compared
    against the brute-force reference (default {!Fpga_sim.Simulator.Event_driven}). *)

val classify_identity :
  ?kernel:Fpga_sim.Simulator.kernel -> Fpga_testbed.Bug.t -> outcome
(** {!classify} of the unmutated design against itself — the fuzzer's
    null hypothesis, [Equivalent] for every testbed bug (pinned by
    test_fuzz). *)

val run_one :
  ?kernel:Fpga_sim.Simulator.kernel -> seed:int -> index:int -> unit -> result
(** Generate, gate, classify, and (for kernel mismatches) minimize and
    render a reproducer. Never raises. [kernel] picks the primary
    kernel of the differential (default event-driven). *)
