(* Deterministic, seed-driven AST mutation engine.

   Thirteen injection templates, one per study subclass (section 3),
   each able to (a) count its candidate rewrite sites in a design and
   (b) rewrite the k-th one. Both run the same single fixed-order
   traversal carrying a site counter (a "probe"): counting is a probe
   that never fires, applying is a probe targeting site k. That makes
   (template, site) a stable coordinate system over a given design -
   the replay and minimization guarantees of the fuzz driver reduce to
   this file visiting nodes in one deterministic order.

   Mutations never add, remove, or rename declarations: a mutant keeps
   every port and signal a testbed harness observes, so the same
   stimulus/sample hooks drive base design and mutant alike. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Pp = Fpga_hdl.Pp_verilog
module Taxonomy = Fpga_study.Taxonomy
module Width = Fpga_analysis.Width
module Lint = Fpga_analysis.Lint
module Telemetry = Fpga_telemetry.Telemetry
open Ast

type mutation = {
  mu_template : Taxonomy.subclass;
  mu_site : int;
  mu_detail : string;
}

let mutation_to_string mu =
  Printf.sprintf "%s@%d: %s"
    (Taxonomy.subclass_name mu.mu_template)
    mu.mu_site mu.mu_detail

let templates = Taxonomy.all_subclasses

let template_mutation_name = function
  | Taxonomy.Buffer_overflow -> "index off-by-one"
  | Taxonomy.Bit_truncation -> "slice narrowing"
  | Taxonomy.Misindexing -> "slice bound shift"
  | Taxonomy.Endianness_mismatch -> "concat order reversal"
  | Taxonomy.Failure_to_update -> "register update drop"
  | Taxonomy.Deadlock -> "condition negation"
  | Taxonomy.Producer_consumer_mismatch -> "constant perturbation"
  | Taxonomy.Signal_asynchrony -> "blocking <-> non-blocking swap"
  | Taxonomy.Use_without_valid -> "guard conjunct drop"
  | Taxonomy.Protocol_violation -> "clock-edge / reset-polarity flip"
  | Taxonomy.Api_misuse -> "instance parameter/connection perturbation"
  | Taxonomy.Incomplete_implementation -> "case-arm drop"
  | Taxonomy.Erroneous_expression -> "operator swap"

(* ------------------------------------------------------------------ *)
(* Deterministic PRNG (splitmix64)                                     *)
(* ------------------------------------------------------------------ *)

type rng = { mutable s : int64 }

let rng seed = { s = Int64.of_int seed }

let next64 r =
  r.s <- Int64.add r.s 0x9E3779B97F4A7C15L;
  let z = r.s in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rng_int r bound =
  if bound <= 0 then invalid_arg "Mutate.rng_int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.logand (next64 r) Int64.max_int) (Int64.of_int bound))

(* The sub-seed of mutant [index] under campaign [seed]: hash the pair
   through the same mixer, so adjacent indices share no stream prefix
   and a mutant can be regenerated in isolation on any worker. *)
let derive seed index =
  let r = rng seed in
  let a = next64 r in
  let r2 = { s = Int64.logxor a (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L) } in
  Int64.to_int (Int64.logand (next64 r2) 0x3FFFFFFFFFFFFFFFL)

(* ------------------------------------------------------------------ *)
(* Site probes and the rewriting traversal                             *)
(* ------------------------------------------------------------------ *)

(* A probe is threaded through one traversal: every candidate site
   calls [hit], which numbers the site and fires on the target index.
   Counting is a probe with target -1 (never fires). *)
type probe = { mutable seen : int; target : int; mutable desc : string option }

let probe target = { seen = 0; target; desc = None }

let hit p describe =
  let k = p.seen in
  p.seen <- p.seen + 1;
  if k = p.target then (
    p.desc <- Some (describe ());
    true)
  else false

(* Rewrite hooks; each returns [Some replacement] exactly when its
   probe fired on the node. The module argument is the (unmutated)
   enclosing module, used for width context. *)
type visitor = {
  v_expr : module_def -> expr -> expr option;
  v_lvalue : module_def -> lvalue -> lvalue option;
  v_stmt : module_def -> in_seq:bool -> stmt -> stmt option;
  v_always : module_def -> always -> always option;
  v_instance : module_def -> instance -> instance option;
}

let nil =
  {
    v_expr = (fun _ _ -> None);
    v_lvalue = (fun _ _ -> None);
    v_stmt = (fun _ ~in_seq:_ _ -> None);
    v_always = (fun _ _ -> None);
    v_instance = (fun _ _ -> None);
  }

(* Children first, then the hook on the (possibly rebuilt) node. All
   sequencing is explicit let-bound so the visit order is the written
   order, not OCaml's argument-evaluation order. Case match labels are
   deliberately not traversed: label rewrites belong to the
   Incomplete_implementation template, not to expression templates. *)
let rec map_expr v m e =
  let e' =
    match e with
    | Const _ | Ident _ | Range _ -> e
    | Index (n, i) -> Index (n, map_expr v m i)
    | Unop (op, a) -> Unop (op, map_expr v m a)
    | Binop (op, a, b) ->
        let a = map_expr v m a in
        let b = map_expr v m b in
        Binop (op, a, b)
    | Cond (c, a, b) ->
        let c = map_expr v m c in
        let a = map_expr v m a in
        let b = map_expr v m b in
        Cond (c, a, b)
    | Concat es -> Concat (List.map (map_expr v m) es)
    | Repeat (n, a) -> Repeat (n, map_expr v m a)
  in
  match v.v_expr m e' with Some r -> r | None -> e'

let rec map_lvalue v m l =
  let l' =
    match l with
    | Lident _ | Lrange _ -> l
    | Lindex (n, i) -> Lindex (n, map_expr v m i)
    | Lconcat ls -> Lconcat (List.map (map_lvalue v m) ls)
  in
  match v.v_lvalue m l' with Some r -> r | None -> l'

let rec map_stmt v m ~in_seq s =
  let s' =
    match s with
    | Blocking (l, e) ->
        let l = map_lvalue v m l in
        let e = map_expr v m e in
        Blocking (l, e)
    | Nonblocking (l, e) ->
        let l = map_lvalue v m l in
        let e = map_expr v m e in
        Nonblocking (l, e)
    | If (c, t, f) ->
        let c = map_expr v m c in
        let t = List.map (map_stmt v m ~in_seq) t in
        let f = List.map (map_stmt v m ~in_seq) f in
        If (c, t, f)
    | Case (e, items, default) ->
        let e = map_expr v m e in
        let items =
          List.map
            (fun it -> { it with body = List.map (map_stmt v m ~in_seq) it.body })
            items
        in
        let default = Option.map (List.map (map_stmt v m ~in_seq)) default in
        Case (e, items, default)
    | Display (fmt, args) -> Display (fmt, List.map (map_expr v m) args)
    | Finish -> Finish
  in
  match v.v_stmt m ~in_seq s' with Some r -> r | None -> s'

let map_module v m =
  let assigns =
    List.map
      (fun (l, e) ->
        let l = map_lvalue v m l in
        let e = map_expr v m e in
        (l, e))
      m.assigns
  in
  let instances =
    List.map
      (fun i ->
        let conns =
          List.map (fun c -> { c with actual = map_expr v m c.actual }) i.conns
        in
        let i' = { i with conns } in
        match v.v_instance m i' with Some r -> r | None -> i')
      m.instances
  in
  let always_blocks =
    List.map
      (fun a ->
        let in_seq = a.sens <> Star in
        let stmts = List.map (map_stmt v m ~in_seq) a.stmts in
        let a' = { a with stmts } in
        match v.v_always m a' with Some r -> r | None -> a')
      m.always_blocks
  in
  { m with assigns; instances; always_blocks }

let map_design v (d : design) = { modules = List.map (map_module v) d.modules }

(* ------------------------------------------------------------------ *)
(* Template helpers                                                    *)
(* ------------------------------------------------------------------ *)

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Land -> "&&"
  | Lor -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Shl -> "<<"
  | Shr -> ">>"
  | Ashr -> ">>>"

(* Every operator has a near-miss twin, so every binop is a site. *)
let swap_binop = function
  | Add -> Sub
  | Sub -> Add
  | Mul -> Add
  | Div -> Mul
  | Mod -> Div
  | Band -> Bor
  | Bor -> Band
  | Bxor -> Bor
  | Land -> Lor
  | Lor -> Land
  | Eq -> Neq
  | Neq -> Eq
  | Lt -> Le
  | Le -> Lt
  | Gt -> Ge
  | Ge -> Gt
  | Shl -> Shr
  | Shr -> Shl
  | Ashr -> Shr

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let reset_like name =
  let n = String.lowercase_ascii name in
  contains n "rst" || contains n "reset"

let mentions_reset e = List.exists reset_like (expr_reads e)

(* Static width of an expression, None when it cannot be determined -
   a site guard, so it must be total. *)
let expr_width m e =
  match Width.of_expr m e with
  | w -> Some w
  | exception _ -> None

(* The module's clock, for the @* -> @(posedge clk) sensitivity
   reduction: the first edge-triggered block's clock. *)
let module_clock m =
  List.find_map
    (fun a -> match a.sens with Posedge c | Negedge c -> Some c | Star -> None)
    m.always_blocks

(* ------------------------------------------------------------------ *)
(* The thirteen templates                                              *)
(* ------------------------------------------------------------------ *)

(* 3.4.x Erroneous expression: swap an operator for its near-miss. *)
let erroneous_expression p =
  {
    nil with
    v_expr =
      (fun _m e ->
        match e with
        | Binop (op, a, b) ->
            let op' = swap_binop op in
            if
              hit p (fun () ->
                  Printf.sprintf "operator '%s' -> '%s' in %s" (binop_name op)
                    (binop_name op') (Pp.expr_str e))
            then Some (Binop (op', a, b))
            else None
        | _ -> None);
  }

(* 3.2.x Producer/consumer mismatch: perturb a constant by one. *)
let producer_consumer_mismatch p =
  {
    nil with
    v_expr =
      (fun _m e ->
        match e with
        | Const c ->
            let c' = Bits.add c (Bits.one (Bits.width c)) in
            if
              hit p (fun () ->
                  Printf.sprintf "constant %s -> %s" (Pp.const_str c)
                    (Pp.const_str c'))
            then Some (Const c')
            else None
        | _ -> None);
  }

(* 3.2.1 Buffer overflow: push a memory/bit index past its bound. *)
let buffer_overflow p =
  let bump m n i mk =
    match expr_width m i with
    | Some w when w >= 1 ->
        if
          hit p (fun () ->
              Printf.sprintf "index %s[%s] off by one (+1)" n (Pp.expr_str i))
        then Some (mk (Binop (Add, i, Const (Bits.one w))))
        else None
    | _ -> None
  in
  {
    nil with
    v_expr =
      (fun m e ->
        match e with
        | Index (n, i) -> bump m n i (fun i' -> Index (n, i'))
        | _ -> None);
    v_lvalue =
      (fun m l ->
        match l with
        | Lindex (n, i) -> bump m n i (fun i' -> Lindex (n, i'))
        | _ -> None);
  }

(* 3.2.3 Misindexing: shift both slice bounds by one. *)
let misindexing p =
  let shifted m n hi lo =
    match Width.signal_width m n with
    | Some w when hi + 1 < w -> Some (hi + 1, lo + 1)
    | Some _ when lo > 0 -> Some (hi - 1, lo - 1)
    | _ -> None
  in
  let describe n hi lo hi' lo' () =
    Printf.sprintf "slice %s[%d:%d] -> %s[%d:%d]" n hi lo n hi' lo'
  in
  {
    nil with
    v_expr =
      (fun m e ->
        match e with
        | Range (n, hi, lo) -> (
            match shifted m n hi lo with
            | Some (hi', lo') ->
                if hit p (describe n hi lo hi' lo') then Some (Range (n, hi', lo'))
                else None
            | None -> None)
        | _ -> None);
    v_lvalue =
      (fun m l ->
        match l with
        | Lrange (n, hi, lo) -> (
            match shifted m n hi lo with
            | Some (hi', lo') ->
                if hit p (describe n hi lo hi' lo') then
                  Some (Lrange (n, hi', lo'))
                else None
            | None -> None)
        | _ -> None);
  }

(* 3.2.2 Bit truncation: narrow a part select by one bit. *)
let bit_truncation p =
  let describe kind n hi lo () =
    Printf.sprintf "%s %s[%d:%d] -> %s[%d:%d]" kind n hi lo n (hi - 1) lo
  in
  {
    nil with
    v_expr =
      (fun _m e ->
        match e with
        | Range (n, hi, lo) when hi > lo ->
            if hit p (describe "slice" n hi lo) then Some (Range (n, hi - 1, lo))
            else None
        | _ -> None);
    v_lvalue =
      (fun _m l ->
        match l with
        | Lrange (n, hi, lo) when hi > lo ->
            if hit p (describe "write" n hi lo) then Some (Lrange (n, hi - 1, lo))
            else None
        | _ -> None);
  }

(* 3.2.4 Endianness mismatch: reverse the parts of a concatenation. *)
let endianness_mismatch p =
  {
    nil with
    v_expr =
      (fun _m e ->
        match e with
        | Concat es when List.length es >= 2 ->
            if
              hit p (fun () ->
                  Printf.sprintf "concat %s reversed" (Pp.expr_str e))
            then Some (Concat (List.rev es))
            else None
        | _ -> None);
    v_lvalue =
      (fun _m l ->
        match l with
        | Lconcat ls when List.length ls >= 2 ->
            if
              hit p (fun () ->
                  Printf.sprintf "concat %s reversed" (Pp.lvalue_str l))
            then Some (Lconcat (List.rev ls))
            else None
        | _ -> None);
  }

(* 3.2.5 Failure to update: a register holds its value forever. *)
let failure_to_update p =
  {
    nil with
    v_stmt =
      (fun _m ~in_seq s ->
        match s with
        | Nonblocking (Lident n, e) when in_seq && e <> Ident n ->
            if
              hit p (fun () ->
                  Printf.sprintf "register %s never updated (holds value)" n)
            then Some (Nonblocking (Lident n, Ident n))
            else None
        | _ -> None);
  }

(* 3.3.1 Deadlock: negate a (non-reset) branch condition. *)
let deadlock p =
  {
    nil with
    v_stmt =
      (fun _m ~in_seq:_ s ->
        match s with
        | If (c, t, f) when not (mentions_reset c) ->
            if
              hit p (fun () ->
                  Printf.sprintf "if-condition (%s) negated" (Pp.expr_str c))
            then Some (If (not_expr c, t, f))
            else None
        | _ -> None);
  }

(* 3.3.4 Signal asynchrony: swap assignment timing semantics. *)
let signal_asynchrony p =
  {
    nil with
    v_stmt =
      (fun _m ~in_seq:_ s ->
        match s with
        | Blocking (l, e) ->
            if
              hit p (fun () ->
                  Printf.sprintf "%s = ... made non-blocking" (Pp.lvalue_str l))
            then Some (Nonblocking (l, e))
            else None
        | Nonblocking (l, e) ->
            if
              hit p (fun () ->
                  Printf.sprintf "%s <= ... made blocking" (Pp.lvalue_str l))
            then Some (Blocking (l, e))
            else None
        | _ -> None);
  }

(* 3.3.5 Use without valid: drop the right conjunct of a guard. *)
let use_without_valid p =
  {
    nil with
    v_expr =
      (fun _m e ->
        match e with
        | Binop (Land, a, b) ->
            if
              hit p (fun () ->
                  Printf.sprintf "guard (%s && %s) -> %s" (Pp.expr_str a)
                    (Pp.expr_str b) (Pp.expr_str a))
            then Some a
            else None
        | _ -> None);
  }

(* 3.3.2 Protocol violation: flip a clock edge, reduce a sensitivity
   list, or flip a reset polarity. *)
let protocol_violation p =
  {
    nil with
    v_stmt =
      (fun _m ~in_seq:_ s ->
        match s with
        | If (c, t, f) when mentions_reset c ->
            if
              hit p (fun () ->
                  Printf.sprintf "reset polarity flipped: if (%s)" (Pp.expr_str c))
            then Some (If (not_expr c, t, f))
            else None
        | _ -> None);
    v_always =
      (fun m a ->
        match a.sens with
        | Posedge c ->
            if
              hit p (fun () ->
                  Printf.sprintf "posedge %s -> negedge %s" c c)
            then Some { a with sens = Negedge c }
            else None
        | Negedge c ->
            if
              hit p (fun () ->
                  Printf.sprintf "negedge %s -> posedge %s" c c)
            then Some { a with sens = Posedge c }
            else None
        | Star -> (
            match module_clock m with
            | Some clk ->
                if
                  hit p (fun () ->
                      Printf.sprintf "sensitivity @* -> @(posedge %s)" clk)
                then Some { a with sens = Posedge clk }
                else None
            | None -> None));
  }

(* 3.4.1 API misuse: perturb an IP parameter or swap two same-width
   connections of an instance. *)
let api_misuse p =
  {
    nil with
    v_instance =
      (fun m i ->
        let result = ref None in
        List.iteri
          (fun idx (k, pv) ->
            if
              hit p (fun () ->
                  Printf.sprintf "parameter %s: %d -> %d on %s" k pv (pv + 1)
                    i.inst_name)
            then
              result :=
                Some
                  {
                    i with
                    params =
                      List.mapi
                        (fun j (k', v') -> if j = idx then (k', v' + 1) else (k', v'))
                        i.params;
                  })
          i.params;
        let conns = Array.of_list i.conns in
        for j = 0 to Array.length conns - 2 do
          let a = conns.(j) and b = conns.(j + 1) in
          match (expr_width m a.actual, expr_width m b.actual) with
          | Some wa, Some wb when wa = wb && a.actual <> b.actual ->
              if
                hit p (fun () ->
                    Printf.sprintf "connections .%s/.%s swapped on %s" a.formal
                      b.formal i.inst_name)
              then (
                let swapped = Array.copy conns in
                swapped.(j) <- { a with actual = b.actual };
                swapped.(j + 1) <- { b with actual = a.actual };
                result := Some { i with conns = Array.to_list swapped })
          | _ -> ()
        done;
        !result);
  }

(* 3.4.3 Incomplete implementation: drop a case arm or the default. *)
let incomplete_implementation p =
  {
    nil with
    v_stmt =
      (fun _m ~in_seq:_ s ->
        match s with
        | Case (e, items, default) ->
            let result = ref None in
            let n = List.length items in
            List.iteri
              (fun k it ->
                if n >= 2 || default <> None then
                  if
                    hit p (fun () ->
                        Printf.sprintf "case arm '%s' dropped"
                          (String.concat ", "
                             (List.map Pp.expr_str it.match_exprs)))
                  then
                    result :=
                      Some (Case (e, List.filteri (fun j _ -> j <> k) items, default)))
              items;
            (match default with
            | Some _ when items <> [] ->
                if hit p (fun () -> "case default dropped") then
                  result := Some (Case (e, items, None))
            | _ -> ());
            !result
        | _ -> None);
  }

let visitor_of (t : Taxonomy.subclass) (p : probe) : visitor =
  match t with
  | Taxonomy.Buffer_overflow -> buffer_overflow p
  | Taxonomy.Bit_truncation -> bit_truncation p
  | Taxonomy.Misindexing -> misindexing p
  | Taxonomy.Endianness_mismatch -> endianness_mismatch p
  | Taxonomy.Failure_to_update -> failure_to_update p
  | Taxonomy.Deadlock -> deadlock p
  | Taxonomy.Producer_consumer_mismatch -> producer_consumer_mismatch p
  | Taxonomy.Signal_asynchrony -> signal_asynchrony p
  | Taxonomy.Use_without_valid -> use_without_valid p
  | Taxonomy.Protocol_violation -> protocol_violation p
  | Taxonomy.Api_misuse -> api_misuse p
  | Taxonomy.Incomplete_implementation -> incomplete_implementation p
  | Taxonomy.Erroneous_expression -> erroneous_expression p

(* ------------------------------------------------------------------ *)
(* Public site API                                                     *)
(* ------------------------------------------------------------------ *)

let site_count t d =
  let p = probe (-1) in
  ignore (map_design (visitor_of t p) d);
  p.seen

let apply t ~site d =
  if site < 0 then None
  else
    let p = probe site in
    let d' = map_design (visitor_of t p) d in
    match p.desc with
    | Some detail ->
        Some (d', { mu_template = t; mu_site = site; mu_detail = detail })
    | None -> None

let apply_all d muts =
  let rec go d acc = function
    | [] -> Some (d, List.rev acc)
    | mu :: rest -> (
        match apply mu.mu_template ~site:mu.mu_site d with
        | None -> None
        | Some (d', mu') -> go d' (mu' :: acc) rest)
  in
  go d [] muts

let pick r d =
  let applicable = List.filter (fun t -> site_count t d > 0) templates in
  match applicable with
  | [] -> None
  | ts ->
      let t = List.nth ts (rng_int r (List.length ts)) in
      apply t ~site:(rng_int r (site_count t d)) d

(* ------------------------------------------------------------------ *)
(* Validity gate                                                       *)
(* ------------------------------------------------------------------ *)

(* Static width check: every expression in the design must have a
   determinable width (the property the simulator's compile assumes). *)
let check_widths (d : design) =
  let exception Bad of string in
  try
    List.iter
      (fun m ->
        let chk e =
          match Width.of_expr m e with
          | (_ : int) -> ()
          | exception Width.Unknown_width s -> raise (Bad ("unknown width: " ^ s))
          | exception e -> raise (Bad (Printexc.to_string e))
        in
        let rec chk_lv = function
          | Lident _ | Lrange _ -> ()
          | Lindex (_, i) -> chk i
          | Lconcat ls -> List.iter chk_lv ls
        in
        let rec chk_stmt = function
          | Blocking (l, e) | Nonblocking (l, e) ->
              chk_lv l;
              chk e
          | If (c, t, f) ->
              chk c;
              List.iter chk_stmt t;
              List.iter chk_stmt f
          | Case (e, items, default) ->
              chk e;
              List.iter
                (fun it ->
                  List.iter chk it.match_exprs;
                  List.iter chk_stmt it.body)
                items;
              Option.iter (List.iter chk_stmt) default
          | Display (_, args) -> List.iter chk args
          | Finish -> ()
        in
        List.iter
          (fun (l, e) ->
            chk_lv l;
            chk e)
          m.assigns;
        List.iter
          (fun (i : instance) -> List.iter (fun c -> chk c.actual) i.conns)
          m.instances;
        List.iter (fun a -> List.iter chk_stmt a.stmts) m.always_blocks)
      d.modules;
    Ok ()
  with Bad s -> Error s

let lint_errors d =
  Lint.check_design d
  |> List.concat_map (fun (mn, fs) ->
         List.filter_map
           (fun (f : Lint.finding) ->
             match f.Lint.severity with
             | Lint.Error -> Some (mn ^ ":" ^ f.Lint.rule ^ ":" ^ f.Lint.signal)
             | Lint.Warning -> None)
           fs)

let validate_ok_counter = Telemetry.Counter.make "fuzz.validate_ok"
let validate_reject_counter = Telemetry.Counter.make "fuzz.validate_rejects"

let validate ~top ~baseline (d : design) =
  Telemetry.span "fuzz.validate" @@ fun () ->
  let result =
    match
      Telemetry.span "fuzz.validate.reparse" (fun () ->
          Fpga_hdl.Parser.parse_design (Pp.design_to_string d))
    with
    | exception Fpga_hdl.Parser.Parse_error (msg, line) ->
        Error (Printf.sprintf "does not re-parse: %s (line %d)" msg line)
    | exception e -> Error ("does not re-parse: " ^ Printexc.to_string e)
    | reparsed -> (
        match
          Telemetry.span "fuzz.validate.elaborate" (fun () ->
              Fpga_sim.Elaborate.elaborate reparsed ~top)
        with
        | exception Fpga_sim.Elaborate.Elaboration_error msg ->
            Error ("does not elaborate: " ^ msg)
        | exception e -> Error ("does not elaborate: " ^ Printexc.to_string e)
        | flat -> (
            match
              Telemetry.span "fuzz.validate.width" (fun () ->
                  check_widths reparsed)
            with
            | Error e -> Error ("width check: " ^ e)
            | Ok () -> (
                let introduced =
                  Telemetry.span "fuzz.validate.lint" (fun () ->
                      let base_errs = lint_errors baseline in
                      List.filter
                        (fun f -> not (List.mem f base_errs))
                        (lint_errors reparsed))
                in
                if introduced <> [] then
                  Error ("lint: " ^ String.concat "; " introduced)
                else
                  match
                    Telemetry.span "fuzz.validate.cycle_check" (fun () ->
                        Fpga_sim.Simulator.create flat)
                  with
                  | exception Fpga_sim.Simulator.Combinational_cycle sigs ->
                      Error
                        ("combinational cycle: " ^ String.concat " -> " sigs)
                  | exception e ->
                      Error ("simulator rejects: " ^ Printexc.to_string e)
                  | (_ : Fpga_sim.Simulator.t) -> Ok reparsed)))
  in
  (match result with
  | Ok _ -> Telemetry.Counter.incr validate_ok_counter
  | Error _ -> Telemetry.Counter.incr validate_reject_counter);
  result
