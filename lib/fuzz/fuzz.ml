(* Differential fuzz driver.

   A mutant is a pure function of (seed, index): the index picks the
   target design round-robin and [Mutate.derive seed index] seeds the
   per-mutant PRNG, so generation needs no shared state and any worker
   of the campaign pool reproduces any mutant in isolation — the
   property that makes parallel fuzz runs byte-identical to serial
   ones and `fpga-debug fuzz --seed N` a replay command.

   Classification compares four runs of the same harness (the primary
   kernel defaults to event-driven; `--kernel lowered` swaps it):

     primary kernel  vs  brute-force kernel      (scheduling differential)
     primary kernel  vs  primary + telemetry on  (observer differential)
     primary kernel  vs  the unmutated design    (symptom differential)

   The first two disagreeing is a kernel/tool bug (the finding); the
   third is just the injected bug's symptom. Crashes are part of the
   observable behavior: one kernel raising while the other completes,
   or both raising differently, is a mismatch too. *)

module Ast = Fpga_hdl.Ast
module Pp = Fpga_hdl.Pp_verilog
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Simulator = Fpga_sim.Simulator
module Taxonomy = Fpga_study.Taxonomy
module Telemetry = Fpga_telemetry.Telemetry

type outcome =
  | Invalid of string
  | Equivalent
  | Symptom_divergent of string list
  | Kernel_mismatch of string

let outcome_name = function
  | Invalid _ -> "invalid"
  | Equivalent -> "equivalent"
  | Symptom_divergent _ -> "symptom-divergent"
  | Kernel_mismatch _ -> "kernel-mismatch"

let outcome_detail = function
  | Invalid reason -> reason
  | Equivalent -> ""
  | Symptom_divergent symptoms -> String.concat "; " symptoms
  | Kernel_mismatch why -> why

type result = {
  r_seed : int;
  r_index : int;
  r_sub_seed : int;
  r_bug : string;
  r_mutations : Mutate.mutation list;
  r_outcome : outcome;
  r_minimized : Mutate.mutation list;
  r_repro : string option;
}

let targets = Registry.fuzz_targets

let target_of_index index =
  List.nth targets (index mod List.length targets)

(* ------------------------------------------------------------------ *)
(* Corpus generation                                                   *)
(* ------------------------------------------------------------------ *)

(* 1-3 stacked mutations of the bug's FIXED design: starting from
   correct code makes "symptom-divergent" mean "the mutation injected
   a bug", mirroring how the study's 13 subclasses arose in real
   designs. Mutating an already-buggy design would only blur that
   reading; the kernels must agree either way. *)
let generate ~seed ~index =
  let bug = target_of_index index in
  let r = Mutate.rng (Mutate.derive seed index) in
  let base = Bug.design_of bug ~buggy:false in
  let want = 1 + Mutate.rng_int r 3 in
  let rec gen d acc k =
    if k = 0 then (d, List.rev acc)
    else
      match Mutate.pick r d with
      | Some (d', mu) -> gen d' (mu :: acc) (k - 1)
      | None -> (d, List.rev acc)
  in
  let mutant, muts = gen base [] want in
  (bug, mutant, muts)

(* ------------------------------------------------------------------ *)
(* Differential runs                                                   *)
(* ------------------------------------------------------------------ *)

(* A crash is data, not a failure of the driver. *)
let safe f = match f () with v -> Ok v | exception e -> Error (Printexc.to_string e)

let run_kernel ?kernel bug d = safe (fun () -> Bug.run_design ?kernel bug d)

(* Same kernel, telemetry recording on — instrumentation must be
   observationally invisible. The worker's per-domain switch is
   restored afterwards so the surrounding campaign stays uninstrumented. *)
let run_instrumented ~kernel bug d =
  safe (fun () ->
      let was = Telemetry.enabled () in
      if not was then Telemetry.enable ();
      Fun.protect
        ~finally:(fun () -> if not was then Telemetry.disable ())
        (fun () -> Bug.run_design ~kernel bug d))

let diff_reports (a : Bug.report) (b : Bug.report) : string option =
  if a.Bug.rows <> b.Bug.rows then
    Some
      (Printf.sprintf "output rows differ (%d vs %d rows)"
         (List.length a.Bug.rows) (List.length b.Bug.rows))
  else if a.Bug.log <> b.Bug.log then Some "$display logs differ"
  else if a.Bug.stuck <> b.Bug.stuck then
    Some (Printf.sprintf "stuck flag differs (%b vs %b)" a.Bug.stuck b.Bug.stuck)
  else if a.Bug.finished <> b.Bug.finished then
    Some
      (Printf.sprintf "finished flag differs (%b vs %b)" a.Bug.finished
         b.Bug.finished)
  else if a.Bug.ext_error <> b.Bug.ext_error then
    Some
      (Printf.sprintf "external-monitor flag differs (%b vs %b)" a.Bug.ext_error
         b.Bug.ext_error)
  else if a.Bug.cycles <> b.Bug.cycles then
    Some (Printf.sprintf "cycle counts differ (%d vs %d)" a.Bug.cycles b.Bug.cycles)
  else None

let diff_runs a b =
  match (a, b) with
  | Ok a, Ok b -> diff_reports a b
  | Error e, Error f ->
      if String.equal e f then None
      else Some (Printf.sprintf "crashes differ (%s vs %s)" e f)
  | Ok _, Error e -> Some ("second run crashed: " ^ e)
  | Error e, Ok _ -> Some ("first run crashed: " ^ e)

(* The finding predicate: do the primary and brute-force kernels, and
   the instrumented vs uninstrumented primary kernel, tell the same
   story about [d]? *)
let mismatch_of ?(kernel = Simulator.Event_driven) bug d : string option =
  let pr = run_kernel ~kernel bug d in
  let bf = run_kernel ~kernel:Simulator.Brute_force bug d in
  match diff_runs pr bf with
  | Some why ->
      Some (Simulator.kernel_name kernel ^ " vs brute-force: " ^ why)
  | None -> (
      match diff_runs pr (run_instrumented ~kernel bug d) with
      | Some why -> Some ("telemetry-off vs telemetry-on: " ^ why)
      | None -> None)

let classify ?(kernel = Simulator.Event_driven) bug ~base d =
  match Mutate.validate ~top:bug.Bug.top ~baseline:base d with
  | Error reason -> Invalid reason
  | Ok valid -> (
      match mismatch_of ~kernel bug valid with
      | Some why -> Kernel_mismatch why
      | None -> (
          let mutant_run = run_kernel ~kernel bug valid in
          let base_run = run_kernel ~kernel bug base in
          match diff_runs mutant_run base_run with
          | None -> Equivalent
          | Some why ->
              let symptoms =
                match (mutant_run, base_run) with
                | Ok m, Ok b ->
                    Bug.symptoms_of ~buggy:m ~fixed:b
                    |> List.map Taxonomy.symptom_name
                | Error _, _ | _, Error _ -> [ "crash" ]
              in
              Symptom_divergent (if symptoms = [] then [ why ] else symptoms)))

let classify_identity ?kernel bug =
  let base = Bug.design_of bug ~buggy:false in
  classify ?kernel bug ~base base

(* ------------------------------------------------------------------ *)
(* Minimization and reproducers                                        *)
(* ------------------------------------------------------------------ *)

(* Does mutation subset [ms], re-applied to the base design, still
   produce a valid mutant with a kernel mismatch? (Sites re-resolve
   against the evolving design, so a subset can denote slightly
   different nodes than it did inside the full sequence — the check
   keeps a subset only when the mismatch genuinely persists.) *)
let check_subset ~kernel bug base ms =
  match Mutate.apply_all base ms with
  | None -> None
  | Some (d, ms') -> (
      match Mutate.validate ~top:bug.Bug.top ~baseline:base d with
      | Error _ -> None
      | Ok valid -> (
          match mismatch_of ~kernel bug valid with
          | Some why -> Some (ms', valid, why)
          | None -> None))

(* Greedy one-at-a-time reduction: drop the first mutation whose
   removal preserves the mismatch, restart; fixed order makes the
   minimizer as deterministic as the generator. *)
let minimize ~kernel bug base (muts, d, why) =
  let rec shrink ((cur, _, _) as state) =
    let n = List.length cur in
    if n <= 1 then state
    else
      let rec try_drop i =
        if i >= n then state
        else
          let candidate = List.filteri (fun j _ -> j <> i) cur in
          match check_subset ~kernel bug base candidate with
          | Some smaller -> shrink smaller
          | None -> try_drop (i + 1)
      in
      try_drop 0
  in
  shrink (muts, d, why)

let repro_text ~bug ~seed ~index ~sub_seed ~why ~mutations design =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "// fpga-debug fuzz reproducer: kernel mismatch\n";
  add "// target: %s (%s)  top: %s\n" bug.Bug.id bug.Bug.application bug.Bug.top;
  add "// seed: %d  index: %d  sub-seed: %d\n" seed index sub_seed;
  add "// replay: fpga-debug fuzz --seed %d --mutants %d\n" seed (index + 1);
  add "// mismatch: %s\n" why;
  add "// mutations (minimized):\n";
  List.iter (fun mu -> add "//   %s\n" (Mutate.mutation_to_string mu)) mutations;
  add "\n%s" (Pp.design_to_string design);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* One mutant, end to end                                              *)
(* ------------------------------------------------------------------ *)

let run_one ?(kernel = Simulator.Event_driven) ~seed ~index () =
  let sub_seed = Mutate.derive seed index in
  let bug, mutant, muts =
    Telemetry.span "fuzz.generate" (fun () -> generate ~seed ~index)
  in
  let base = Bug.design_of bug ~buggy:false in
  let mk outcome minimized repro =
    {
      r_seed = seed;
      r_index = index;
      r_sub_seed = sub_seed;
      r_bug = bug.Bug.id;
      r_mutations = muts;
      r_outcome = outcome;
      r_minimized = minimized;
      r_repro = repro;
    }
  in
  match Mutate.validate ~top:bug.Bug.top ~baseline:base mutant with
  | Error reason -> mk (Invalid reason) muts None
  | Ok valid -> (
      match
        Telemetry.span "fuzz.differential" (fun () ->
            mismatch_of ~kernel bug valid)
      with
      | Some why ->
          let min_muts, min_design, min_why =
            Telemetry.span "fuzz.minimize" (fun () ->
                minimize ~kernel bug base (muts, valid, why))
          in
          let repro =
            repro_text ~bug ~seed ~index ~sub_seed ~why:min_why
              ~mutations:min_muts min_design
          in
          mk (Kernel_mismatch min_why) min_muts (Some repro)
      | None -> (
          let mutant_run = run_kernel ~kernel bug valid in
          let base_run = run_kernel ~kernel bug base in
          match diff_runs mutant_run base_run with
          | None -> mk Equivalent muts None
          | Some why ->
              let symptoms =
                match (mutant_run, base_run) with
                | Ok m, Ok b ->
                    Bug.symptoms_of ~buggy:m ~fixed:b
                    |> List.map Taxonomy.symptom_name
                | Error _, _ | _, Error _ -> [ "crash" ]
              in
              mk
                (Symptom_divergent (if symptoms = [] then [ why ] else symptoms))
                muts None))
