(* Telemetry core: counters / histograms / timing spans plus a bounded
   ring-buffer event bus.

   The whole module is gated on one global flag so that a disabled run
   pays a single predictable branch per recording call and nothing
   else: no allocation, no hashing, no clock reads. The bus implements
   the paper's recording-IP semantics in software — fixed depth, most
   recent entries retained, every overwritten entry counted — so
   overflow shows up in the numbers (the Figure 2 buffer-size /
   coverage tradeoff) instead of silently truncating history. *)

let on = ref false
let enabled () = !on
let enable () = on := true
let disable () = on := false

(* [Sys.time] keeps the library free of even the unix dependency; a
   harness that wants wall time installs its own clock. *)
let clock = ref Sys.time
let set_clock f = clock := f

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { c_name : string; mutable c_value : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_value = 0 } in
        Hashtbl.replace registry name c;
        c

  let bump c n = if !on then c.c_value <- c.c_value + n
  let incr c = if !on then c.c_value <- c.c_value + 1
  let value c = c.c_value
  let name c = c.c_name
  let reset_all () = Hashtbl.iter (fun _ c -> c.c_value <- 0) registry

  let all () =
    Hashtbl.fold (fun _ c acc -> (c.c_name, c.c_value) :: acc) registry []
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Power-of-two buckets: bucket [k] holds values in
     (2^(k-1) - 1, 2^k - 1]; bucket 0 holds exactly 0. 63 buckets
     cover the full non-negative int range. *)
  let nbuckets = 63

  type t = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
    h_buckets : int array;
  }

  type snapshot = {
    hs_name : string;
    hs_count : int;
    hs_sum : int;
    hs_min : int;
    hs_max : int;
    hs_buckets : (int * int) list;
  }

  let make name =
    {
      h_name = name;
      h_count = 0;
      h_sum = 0;
      h_min = 0;
      h_max = 0;
      h_buckets = Array.make nbuckets 0;
    }

  (* number of significant bits = the index of the smallest bucket
     whose upper bound (2^k - 1) admits [v] *)
  let bucket_index v =
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    min (bits v 0) (nbuckets - 1)

  let observe h v =
    if !on then (
      let v = max v 0 in
      if h.h_count = 0 then (
        h.h_min <- v;
        h.h_max <- v)
      else (
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v);
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      let k = bucket_index v in
      h.h_buckets.(k) <- h.h_buckets.(k) + 1)

  let snapshot h =
    let buckets = ref [] in
    for k = nbuckets - 1 downto 0 do
      if h.h_buckets.(k) > 0 then
        buckets := ((1 lsl k) - 1, h.h_buckets.(k)) :: !buckets
    done;
    {
      hs_name = h.h_name;
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_buckets = !buckets;
    }

  let clear h =
    h.h_count <- 0;
    h.h_sum <- 0;
    h.h_min <- 0;
    h.h_max <- 0;
    Array.fill h.h_buckets 0 nbuckets 0
end

(* ------------------------------------------------------------------ *)
(* Timing spans                                                        *)
(* ------------------------------------------------------------------ *)

type span_rec = { mutable sp_count : int; mutable sp_total : float }

let spans : (string, span_rec) Hashtbl.t = Hashtbl.create 16

let span_rec name =
  match Hashtbl.find_opt spans name with
  | Some r -> r
  | None ->
      let r = { sp_count = 0; sp_total = 0.0 } in
      Hashtbl.replace spans name r;
      r

let span name f =
  if not !on then f ()
  else (
    let r = span_rec name in
    let t0 = !clock () in
    Fun.protect
      ~finally:(fun () ->
        r.sp_count <- r.sp_count + 1;
        r.sp_total <- r.sp_total +. (!clock () -. t0))
      f)

let all_spans () =
  Hashtbl.fold (fun n r acc -> (n, r.sp_count, r.sp_total) :: acc) spans []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Event bus                                                           *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_cycle : int;
  ev_source : string;
  ev_kind : string;
  ev_data : (string * string) list;
}

module Bus = struct
  type t = {
    mutable b_data : event option array;
    mutable b_head : int;  (* index of the oldest retained entry *)
    mutable b_len : int;
    mutable b_published : int;
    mutable b_dropped : int;
  }

  let create ?(depth = 8192) () =
    if depth <= 0 then invalid_arg "Telemetry.Bus.create: depth must be > 0";
    {
      b_data = Array.make depth None;
      b_head = 0;
      b_len = 0;
      b_published = 0;
      b_dropped = 0;
    }

  let depth b = Array.length b.b_data

  let clear b =
    Array.fill b.b_data 0 (Array.length b.b_data) None;
    b.b_head <- 0;
    b.b_len <- 0;
    b.b_published <- 0;
    b.b_dropped <- 0

  let set_depth b depth =
    if depth <= 0 then invalid_arg "Telemetry.Bus.set_depth: depth must be > 0";
    b.b_data <- Array.make depth None;
    b.b_head <- 0;
    b.b_len <- 0;
    b.b_published <- 0;
    b.b_dropped <- 0

  let publish b e =
    if !on then (
      let d = Array.length b.b_data in
      b.b_published <- b.b_published + 1;
      if b.b_len < d then (
        b.b_data.((b.b_head + b.b_len) mod d) <- Some e;
        b.b_len <- b.b_len + 1)
      else (
        (* full: overwrite the oldest entry and account for the drop *)
        b.b_data.(b.b_head) <- Some e;
        b.b_head <- (b.b_head + 1) mod d;
        b.b_dropped <- b.b_dropped + 1))

  let events b =
    let d = Array.length b.b_data in
    List.init b.b_len (fun i ->
        match b.b_data.((b.b_head + i) mod d) with
        | Some e -> e
        | None -> assert false)

  let length b = b.b_len
  let published b = b.b_published
  let dropped b = b.b_dropped
end

let bus = Bus.create ()

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type report = {
  r_counters : (string * int) list;
  r_spans : (string * int * float) list;
  r_bus_depth : int;
  r_bus_published : int;
  r_bus_dropped : int;
  r_bus_retained : int;
}

let report () =
  {
    r_counters = Counter.all ();
    r_spans = all_spans ();
    r_bus_depth = Bus.depth bus;
    r_bus_published = Bus.published bus;
    r_bus_dropped = Bus.dropped bus;
    r_bus_retained = Bus.length bus;
  }

let reset () =
  Counter.reset_all ();
  Hashtbl.reset spans;
  Bus.clear bus
