(* Telemetry core: counters / histograms / timing spans plus a bounded
   ring-buffer event bus.

   All mutable state lives in a per-domain [sink] held in domain-local
   storage. Nothing here is shared between domains, so a pool of
   simulation workers (lib/campaign) can run fully instrumented without
   locks or races: each domain records into its own sink and the pool
   merges the per-domain reports at join time. A freshly spawned domain
   inherits the parent's enabled flag and sampling knob (captured at
   spawn), but starts with empty counters, spans, and bus.

   Recording is gated on the sink's enabled flag so that a disabled run
   pays a single predictable branch per recording call and nothing
   else: no allocation, no hashing, no clock reads. The bus implements
   the paper's recording-IP semantics in software — fixed depth, most
   recent entries retained, every overwritten entry counted — so
   overflow shows up in the numbers (the Figure 2 buffer-size /
   coverage tradeoff) instead of silently truncating history. *)

(* [Sys.time] keeps the library free of even the unix dependency; a
   harness that wants wall time installs its own clock. Installed once
   from the main domain before any spawning, so the plain ref is safe. *)
let clock = ref Sys.time
let set_clock f = clock := f

(* Wall-time source of the structured tracing layer (below), distinct
   from [clock] so installing a wall clock for traces never changes
   what the flat [span] aggregates measure. Same install-before-spawn
   discipline. *)
let trace_clock = ref Sys.time

(* ------------------------------------------------------------------ *)
(* Events and the bus                                                  *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_cycle : int;
  ev_source : string;
  ev_kind : string;
  ev_data : (string * string) list;
}

type bus = {
  mutable b_data : event option array;
  mutable b_head : int;  (* index of the oldest retained entry *)
  mutable b_len : int;
  mutable b_published : int;
  mutable b_dropped : int;
}

(* ------------------------------------------------------------------ *)
(* The per-domain sink                                                 *)
(* ------------------------------------------------------------------ *)

type span_rec = { mutable sp_count : int; mutable sp_total : float }

(* One record per Chrome-trace-shaped occurrence in the structured
   trace buffer: 'B'/'E' bracket a tree span (parent/ids only on 'B'),
   'i' is an instant, 'C' a counter sample. Timestamps are integer
   microseconds so serialization is exact (no float formatting). *)
type trace_event = {
  te_ph : char;  (* 'B' | 'E' | 'i' | 'C' *)
  te_id : int;  (* span id ('B' only; 0 otherwise) *)
  te_parent : int;  (* enclosing span id, -1 at tree root ('B' only) *)
  te_name : string;
  te_cat : string;
  te_track : int;  (* sink's track at emission time *)
  te_ts : int;  (* microseconds *)
  te_value : int;  (* counter value ('C' only) *)
}

type sink = {
  mutable sk_on : bool;
  mutable sk_live : bool;
      (* sk_on || sk_tr_on: the single branch [span]'s disabled fast
         path tests, maintained by every switch flip *)
  mutable sk_step_sample : int;
      (* publish one aggregated simulator "step" event every this many
         cycles; 1 restores the one-event-per-cycle firehose *)
  sk_counters : (string, int ref) Hashtbl.t;
  sk_spans : (string, span_rec) Hashtbl.t;
  sk_bus : bus;
  (* structured tracing state (the span-tree layer) *)
  mutable sk_tr_on : bool;
  mutable sk_tr_virtual : bool;  (* deterministic tick clock vs wall *)
  mutable sk_tr_vnow : int;  (* virtual clock, advanced 1µs per read *)
  mutable sk_tr_next_id : int;  (* ids are contiguous per sink *)
  mutable sk_tr_stack : int list;  (* open span ids, innermost first *)
  mutable sk_tr_track : int;
  mutable sk_tr_cap : int;  (* soft event cap; see trace_begin *)
  mutable sk_tr_dropped : int;
  mutable sk_tr_suppressed : int;  (* open spans whose 'B' was dropped *)
  mutable sk_tr_buf : trace_event array;
  mutable sk_tr_len : int;
}

let default_bus_depth = 8192
let default_step_sample = 32
let default_trace_cap = 262144

let make_bus depth =
  { b_data = Array.make depth None;
    b_head = 0; b_len = 0; b_published = 0; b_dropped = 0 }

let dummy_trace_event =
  { te_ph = 'E'; te_id = 0; te_parent = -1; te_name = ""; te_cat = "";
    te_track = 0; te_ts = 0; te_value = 0 }

let fresh_sink () =
  {
    sk_on = false;
    sk_live = false;
    sk_step_sample = default_step_sample;
    sk_counters = Hashtbl.create 32;
    sk_spans = Hashtbl.create 16;
    sk_bus = make_bus default_bus_depth;
    sk_tr_on = false;
    sk_tr_virtual = false;
    sk_tr_vnow = 0;
    sk_tr_next_id = 0;
    sk_tr_stack = [];
    sk_tr_track = 0;
    sk_tr_cap = default_trace_cap;
    sk_tr_dropped = 0;
    sk_tr_suppressed = 0;
    sk_tr_buf = [||];
    sk_tr_len = 0;
  }

(* A spawned worker starts with the parent's switch positions, sampling
   rate, and trace configuration, but records into its own empty sink
   (fresh buffer, ids from 0, track 0 until the pool assigns one) — so
   worker spans land on the worker's own track and per-sink span ids
   never collide inside one sink. *)
let sink_key : sink Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun parent ->
      let s = fresh_sink () in
      s.sk_on <- parent.sk_on;
      s.sk_step_sample <- parent.sk_step_sample;
      s.sk_tr_on <- parent.sk_tr_on;
      s.sk_tr_virtual <- parent.sk_tr_virtual;
      s.sk_tr_cap <- parent.sk_tr_cap;
      s.sk_live <- s.sk_on || s.sk_tr_on;
      s)
    fresh_sink

let sink () = Domain.DLS.get sink_key

let enabled () = (sink ()).sk_on

let enable () =
  let sk = sink () in
  sk.sk_on <- true;
  sk.sk_live <- true

let disable () =
  let sk = sink () in
  sk.sk_on <- false;
  sk.sk_live <- sk.sk_tr_on

let step_sample () = (sink ()).sk_step_sample
let set_step_sample n = (sink ()).sk_step_sample <- max 1 n

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  (* A counter handle is just its name: producers may create handles at
     module initialization (in whatever domain loads them) and bump
     from any domain — each domain accumulates into its own sink. *)
  type t = string

  let make name = name
  let name c = c

  let cell sk c =
    match Hashtbl.find_opt sk.sk_counters c with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace sk.sk_counters c r;
        r

  let bump c n =
    let sk = sink () in
    if sk.sk_on then (
      let r = cell sk c in
      r := !r + n)

  let incr c = bump c 1

  let value c =
    match Hashtbl.find_opt (sink ()).sk_counters c with
    | Some r -> !r
    | None -> 0

  let all () =
    Hashtbl.fold (fun n r acc -> (n, !r) :: acc) (sink ()).sk_counters []
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Power-of-two buckets: bucket [k] holds values in
     (2^(k-1) - 1, 2^k - 1]; bucket 0 holds exactly 0. 63 buckets
     cover the full non-negative int range. Histograms are plain values
     owned by their producer (a simulator instance keeps its own), so
     they are domain-safe as long as the producer is. *)
  let nbuckets = 63

  type t = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
    h_buckets : int array;
  }

  type snapshot = {
    hs_name : string;
    hs_count : int;
    hs_sum : int;
    hs_min : int;
    hs_max : int;
    hs_buckets : (int * int) list;
  }

  let make name =
    {
      h_name = name;
      h_count = 0;
      h_sum = 0;
      h_min = 0;
      h_max = 0;
      h_buckets = Array.make nbuckets 0;
    }

  (* number of significant bits = the index of the smallest bucket
     whose upper bound (2^k - 1) admits [v] *)
  let bucket_index v =
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    min (bits v 0) (nbuckets - 1)

  let observe h v =
    if (sink ()).sk_on then (
      let v = max v 0 in
      if h.h_count = 0 then (
        h.h_min <- v;
        h.h_max <- v)
      else (
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v);
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      let k = bucket_index v in
      h.h_buckets.(k) <- h.h_buckets.(k) + 1)

  let snapshot h =
    let buckets = ref [] in
    for k = nbuckets - 1 downto 0 do
      if h.h_buckets.(k) > 0 then
        buckets := ((1 lsl k) - 1, h.h_buckets.(k)) :: !buckets
    done;
    {
      hs_name = h.h_name;
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_buckets = !buckets;
    }

  let clear h =
    h.h_count <- 0;
    h.h_sum <- 0;
    h.h_min <- 0;
    h.h_max <- 0;
    Array.fill h.h_buckets 0 nbuckets 0
end

(* ------------------------------------------------------------------ *)
(* Structured tracing: the span tree                                   *)
(* ------------------------------------------------------------------ *)

(* Trace recording primitives. Each sink owns a flat buffer of
   [trace_event]s appended in occurrence order, which makes every
   captured slice a well-nested B/E stream by construction (spans close
   LIFO under [Fun.protect]); parent/child structure rides on the span
   ids pushed by the per-sink open-span stack.

   The cap is soft: once the buffer holds [sk_tr_cap] events, new 'B',
   'i', and 'C' events are dropped (and counted), but the 'E' of any
   span whose 'B' was recorded is always appended so the stream stays
   balanced — [sk_tr_suppressed] tracks how many open spans had their
   'B' dropped so their 'E's are skipped symmetrically (correct because
   spans close in LIFO order). *)

let trace_now sk =
  if sk.sk_tr_virtual then (
    let t = sk.sk_tr_vnow in
    sk.sk_tr_vnow <- t + 1;
    t)
  else int_of_float (!trace_clock () *. 1e6)

let trace_push sk ev =
  let cap = Array.length sk.sk_tr_buf in
  if sk.sk_tr_len >= cap then (
    let ncap = max 256 (min (max 1 (cap * 2)) (max sk.sk_tr_cap (sk.sk_tr_len + 64))) in
    let nbuf = Array.make ncap dummy_trace_event in
    Array.blit sk.sk_tr_buf 0 nbuf 0 sk.sk_tr_len;
    sk.sk_tr_buf <- nbuf);
  sk.sk_tr_buf.(sk.sk_tr_len) <- ev;
  sk.sk_tr_len <- sk.sk_tr_len + 1

let trace_begin sk name cat =
  if sk.sk_tr_len >= sk.sk_tr_cap then (
    sk.sk_tr_suppressed <- sk.sk_tr_suppressed + 1;
    sk.sk_tr_dropped <- sk.sk_tr_dropped + 1)
  else (
    let id = sk.sk_tr_next_id in
    sk.sk_tr_next_id <- id + 1;
    let parent = match sk.sk_tr_stack with [] -> -1 | p :: _ -> p in
    trace_push sk
      { te_ph = 'B'; te_id = id; te_parent = parent; te_name = name;
        te_cat = cat; te_track = sk.sk_tr_track; te_ts = trace_now sk;
        te_value = 0 };
    sk.sk_tr_stack <- id :: sk.sk_tr_stack)

let trace_end sk =
  if sk.sk_tr_suppressed > 0 then
    sk.sk_tr_suppressed <- sk.sk_tr_suppressed - 1
  else
    match sk.sk_tr_stack with
    | [] -> ()  (* unbalanced close: ignore rather than corrupt *)
    | _ :: tl ->
        sk.sk_tr_stack <- tl;
        trace_push sk
          { dummy_trace_event with
            te_ph = 'E'; te_track = sk.sk_tr_track; te_ts = trace_now sk }

module Trace = struct
  type clock = Wall | Virtual

  type event = trace_event = {
    te_ph : char;
    te_id : int;
    te_parent : int;
    te_name : string;
    te_cat : string;
    te_track : int;
    te_ts : int;
    te_value : int;
  }

  type segment = {
    sg_track : int;  (* track the slice was recorded on *)
    sg_start : int;  (* absolute µs of the slice origin *)
    sg_events : event list;  (* ts rebased to sg_start, span ids to 0 *)
  }

  let empty_segment = { sg_track = 0; sg_start = 0; sg_events = [] }

  let enabled () = (sink ()).sk_tr_on

  let set_clock f = trace_clock := f

  let enable ?(clock = Wall) ?cap () =
    let sk = sink () in
    sk.sk_tr_on <- true;
    sk.sk_live <- true;
    sk.sk_tr_virtual <- (clock = Virtual);
    match cap with
    | Some c -> sk.sk_tr_cap <- max 16 c
    | None -> sk.sk_tr_cap <- default_trace_cap

  let disable () =
    let sk = sink () in
    sk.sk_tr_on <- false;
    sk.sk_live <- sk.sk_on

  let track () = (sink ()).sk_tr_track
  let set_track t = (sink ()).sk_tr_track <- t
  let dropped () = (sink ()).sk_tr_dropped
  let length () = (sink ()).sk_tr_len
  let depth () = List.length (sink ()).sk_tr_stack

  let with_span ?(cat = "task") name f =
    let sk = sink () in
    if not sk.sk_tr_on then f ()
    else (
      trace_begin sk name cat;
      Fun.protect ~finally:(fun () -> trace_end sk) f)

  let instant ?(cat = "mark") name =
    let sk = sink () in
    if sk.sk_tr_on && sk.sk_tr_len < sk.sk_tr_cap then
      trace_push sk
        { dummy_trace_event with
          te_ph = 'i'; te_name = name; te_cat = cat;
          te_track = sk.sk_tr_track; te_ts = trace_now sk }
      else if sk.sk_tr_on then sk.sk_tr_dropped <- sk.sk_tr_dropped + 1

  let counter name v =
    let sk = sink () in
    if sk.sk_tr_on && sk.sk_tr_len < sk.sk_tr_cap then
      trace_push sk
        { dummy_trace_event with
          te_ph = 'C'; te_name = name; te_track = sk.sk_tr_track;
          te_ts = trace_now sk; te_value = v }
      else if sk.sk_tr_on then sk.sk_tr_dropped <- sk.sk_tr_dropped + 1

  let mark () = (sink ()).sk_tr_len

  (* Rebase a buffer slice into a self-contained segment: timestamps
     become offsets from the slice's first event, span ids become
     offsets from the smallest id opened inside the slice (per-sink ids
     are contiguous, so a slice's ids are exactly [base..base+n)), and
     a parent opened before the slice becomes -1 (a slice root). The
     result is a pure value of what happened inside the slice — two
     workers running the same job produce the same segment, which is
     what makes virtual-clock traces independent of pool width. *)
  let capture_since ?(consume = false) m =
    let sk = sink () in
    let m = max 0 (min m sk.sk_tr_len) in
    let n = sk.sk_tr_len - m in
    let seg =
      if n = 0 then { empty_segment with sg_track = sk.sk_tr_track }
      else (
        let t0 = sk.sk_tr_buf.(m).te_ts in
        let base = ref max_int in
        for i = m to sk.sk_tr_len - 1 do
          let e = sk.sk_tr_buf.(i) in
          if e.te_ph = 'B' && e.te_id < !base then base := e.te_id
        done;
        let base = if !base = max_int then 0 else !base in
        let events =
          List.init n (fun k ->
              let e = sk.sk_tr_buf.(m + k) in
              let e = { e with te_ts = e.te_ts - t0 } in
              if e.te_ph = 'B' then
                { e with
                  te_id = e.te_id - base;
                  te_parent =
                    (if e.te_parent >= base then e.te_parent - base else -1) }
              else e)
        in
        { sg_track = sk.sk_tr_track; sg_start = t0; sg_events = events })
    in
    if consume then sk.sk_tr_len <- m;
    seg

  let capture_all ?consume () = capture_since ?consume 0

  let reset () =
    let sk = sink () in
    sk.sk_tr_len <- 0;
    sk.sk_tr_buf <- [||];
    sk.sk_tr_stack <- [];
    sk.sk_tr_next_id <- 0;
    sk.sk_tr_vnow <- 0;
    sk.sk_tr_dropped <- 0;
    sk.sk_tr_suppressed <- 0
end

(* ------------------------------------------------------------------ *)
(* Timing spans                                                        *)
(* ------------------------------------------------------------------ *)

(* One branch on [sk_live] keeps the fully-disabled path as cheap as it
   was before tracing existed; the flat aggregate and the trace tree
   each engage only behind their own switch. *)
let span name f =
  let sk = sink () in
  if not sk.sk_live then f ()
  else (
    let r =
      if not sk.sk_on then None
      else
        match Hashtbl.find_opt sk.sk_spans name with
        | Some r -> Some r
        | None ->
            let r = { sp_count = 0; sp_total = 0.0 } in
            Hashtbl.replace sk.sk_spans name r;
            Some r
    in
    let tracing = sk.sk_tr_on in
    if tracing then trace_begin sk name "span";
    let t0 = if r = None then 0.0 else !clock () in
    Fun.protect
      ~finally:(fun () ->
        (match r with
        | Some r ->
            r.sp_count <- r.sp_count + 1;
            r.sp_total <- r.sp_total +. (!clock () -. t0)
        | None -> ());
        if tracing then trace_end sk)
      f)

let all_spans () =
  Hashtbl.fold
    (fun n r acc -> (n, r.sp_count, r.sp_total) :: acc)
    (sink ()).sk_spans []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Event bus operations                                                *)
(* ------------------------------------------------------------------ *)

module Bus = struct
  type t = bus

  let create ?(depth = default_bus_depth) () =
    if depth <= 0 then invalid_arg "Telemetry.Bus.create: depth must be > 0";
    make_bus depth

  let depth b = Array.length b.b_data

  let clear b =
    Array.fill b.b_data 0 (Array.length b.b_data) None;
    b.b_head <- 0;
    b.b_len <- 0;
    b.b_published <- 0;
    b.b_dropped <- 0

  let set_depth b depth =
    if depth <= 0 then invalid_arg "Telemetry.Bus.set_depth: depth must be > 0";
    b.b_data <- Array.make depth None;
    b.b_head <- 0;
    b.b_len <- 0;
    b.b_published <- 0;
    b.b_dropped <- 0

  let publish b e =
    if (sink ()).sk_on then (
      let d = Array.length b.b_data in
      b.b_published <- b.b_published + 1;
      if b.b_len < d then (
        b.b_data.((b.b_head + b.b_len) mod d) <- Some e;
        b.b_len <- b.b_len + 1)
      else (
        (* full: overwrite the oldest entry and account for the drop *)
        b.b_data.(b.b_head) <- Some e;
        b.b_head <- (b.b_head + 1) mod d;
        b.b_dropped <- b.b_dropped + 1))

  let events b =
    let d = Array.length b.b_data in
    List.init b.b_len (fun i ->
        match b.b_data.((b.b_head + i) mod d) with
        | Some e -> e
        | None -> assert false)

  let length b = b.b_len
  let published b = b.b_published
  let dropped b = b.b_dropped
end

let bus () = (sink ()).sk_bus

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type report = {
  r_counters : (string * int) list;
  r_spans : (string * int * float) list;
  r_bus_depth : int;
  r_bus_published : int;
  r_bus_dropped : int;
  r_bus_retained : int;
}

let report () =
  let sk = sink () in
  {
    r_counters = Counter.all ();
    r_spans = all_spans ();
    r_bus_depth = Bus.depth sk.sk_bus;
    r_bus_published = Bus.published sk.sk_bus;
    r_bus_dropped = Bus.dropped sk.sk_bus;
    r_bus_retained = Bus.length sk.sk_bus;
  }

let empty_report =
  {
    r_counters = [];
    r_spans = [];
    r_bus_depth = 0;
    r_bus_published = 0;
    r_bus_dropped = 0;
    r_bus_retained = 0;
  }

(* Merge the reports of two sinks (e.g. two worker domains): counters
   and spans are summed by name, bus accounting is summed, bus depth is
   the larger of the two. *)
let merge a b =
  let sum_assoc xs ys combine =
    let tbl = Hashtbl.create 32 in
    let add (k, v) =
      match Hashtbl.find_opt tbl k with
      | Some prev -> Hashtbl.replace tbl k (combine prev v)
      | None -> Hashtbl.replace tbl k v
    in
    List.iter add xs;
    List.iter add ys;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let counters =
    sum_assoc a.r_counters b.r_counters (fun x y -> x + y)
  in
  let spans =
    sum_assoc
      (List.map (fun (n, c, t) -> (n, (c, t))) a.r_spans)
      (List.map (fun (n, c, t) -> (n, (c, t))) b.r_spans)
      (fun (c1, t1) (c2, t2) -> (c1 + c2, t1 +. t2))
    |> List.map (fun (n, (c, t)) -> (n, c, t))
  in
  {
    r_counters = counters;
    r_spans = spans;
    r_bus_depth = max a.r_bus_depth b.r_bus_depth;
    r_bus_published = a.r_bus_published + b.r_bus_published;
    r_bus_dropped = a.r_bus_dropped + b.r_bus_dropped;
    r_bus_retained = a.r_bus_retained + b.r_bus_retained;
  }

let reset () =
  let sk = sink () in
  Hashtbl.reset sk.sk_counters;
  Hashtbl.reset sk.sk_spans;
  Bus.clear sk.sk_bus;
  Trace.reset ()
