(* Telemetry core: counters / histograms / timing spans plus a bounded
   ring-buffer event bus.

   All mutable state lives in a per-domain [sink] held in domain-local
   storage. Nothing here is shared between domains, so a pool of
   simulation workers (lib/campaign) can run fully instrumented without
   locks or races: each domain records into its own sink and the pool
   merges the per-domain reports at join time. A freshly spawned domain
   inherits the parent's enabled flag and sampling knob (captured at
   spawn), but starts with empty counters, spans, and bus.

   Recording is gated on the sink's enabled flag so that a disabled run
   pays a single predictable branch per recording call and nothing
   else: no allocation, no hashing, no clock reads. The bus implements
   the paper's recording-IP semantics in software — fixed depth, most
   recent entries retained, every overwritten entry counted — so
   overflow shows up in the numbers (the Figure 2 buffer-size /
   coverage tradeoff) instead of silently truncating history. *)

(* [Sys.time] keeps the library free of even the unix dependency; a
   harness that wants wall time installs its own clock. Installed once
   from the main domain before any spawning, so the plain ref is safe. *)
let clock = ref Sys.time
let set_clock f = clock := f

(* ------------------------------------------------------------------ *)
(* Events and the bus                                                  *)
(* ------------------------------------------------------------------ *)

type event = {
  ev_cycle : int;
  ev_source : string;
  ev_kind : string;
  ev_data : (string * string) list;
}

type bus = {
  mutable b_data : event option array;
  mutable b_head : int;  (* index of the oldest retained entry *)
  mutable b_len : int;
  mutable b_published : int;
  mutable b_dropped : int;
}

(* ------------------------------------------------------------------ *)
(* The per-domain sink                                                 *)
(* ------------------------------------------------------------------ *)

type span_rec = { mutable sp_count : int; mutable sp_total : float }

type sink = {
  mutable sk_on : bool;
  mutable sk_step_sample : int;
      (* publish one aggregated simulator "step" event every this many
         cycles; 1 restores the one-event-per-cycle firehose *)
  sk_counters : (string, int ref) Hashtbl.t;
  sk_spans : (string, span_rec) Hashtbl.t;
  sk_bus : bus;
}

let default_bus_depth = 8192
let default_step_sample = 32

let make_bus depth =
  { b_data = Array.make depth None;
    b_head = 0; b_len = 0; b_published = 0; b_dropped = 0 }

let fresh_sink () =
  {
    sk_on = false;
    sk_step_sample = default_step_sample;
    sk_counters = Hashtbl.create 32;
    sk_spans = Hashtbl.create 16;
    sk_bus = make_bus default_bus_depth;
  }

(* A spawned worker starts with the parent's switch position and
   sampling rate but records into its own empty sink. *)
let sink_key : sink Domain.DLS.key =
  Domain.DLS.new_key
    ~split_from_parent:(fun parent ->
      let s = fresh_sink () in
      s.sk_on <- parent.sk_on;
      s.sk_step_sample <- parent.sk_step_sample;
      s)
    fresh_sink

let sink () = Domain.DLS.get sink_key

let enabled () = (sink ()).sk_on
let enable () = (sink ()).sk_on <- true
let disable () = (sink ()).sk_on <- false

let step_sample () = (sink ()).sk_step_sample
let set_step_sample n = (sink ()).sk_step_sample <- max 1 n

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  (* A counter handle is just its name: producers may create handles at
     module initialization (in whatever domain loads them) and bump
     from any domain — each domain accumulates into its own sink. *)
  type t = string

  let make name = name
  let name c = c

  let cell sk c =
    match Hashtbl.find_opt sk.sk_counters c with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace sk.sk_counters c r;
        r

  let bump c n =
    let sk = sink () in
    if sk.sk_on then (
      let r = cell sk c in
      r := !r + n)

  let incr c = bump c 1

  let value c =
    match Hashtbl.find_opt (sink ()).sk_counters c with
    | Some r -> !r
    | None -> 0

  let all () =
    Hashtbl.fold (fun n r acc -> (n, !r) :: acc) (sink ()).sk_counters []
    |> List.sort compare
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  (* Power-of-two buckets: bucket [k] holds values in
     (2^(k-1) - 1, 2^k - 1]; bucket 0 holds exactly 0. 63 buckets
     cover the full non-negative int range. Histograms are plain values
     owned by their producer (a simulator instance keeps its own), so
     they are domain-safe as long as the producer is. *)
  let nbuckets = 63

  type t = {
    h_name : string;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;
    mutable h_max : int;
    h_buckets : int array;
  }

  type snapshot = {
    hs_name : string;
    hs_count : int;
    hs_sum : int;
    hs_min : int;
    hs_max : int;
    hs_buckets : (int * int) list;
  }

  let make name =
    {
      h_name = name;
      h_count = 0;
      h_sum = 0;
      h_min = 0;
      h_max = 0;
      h_buckets = Array.make nbuckets 0;
    }

  (* number of significant bits = the index of the smallest bucket
     whose upper bound (2^k - 1) admits [v] *)
  let bucket_index v =
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    min (bits v 0) (nbuckets - 1)

  let observe h v =
    if (sink ()).sk_on then (
      let v = max v 0 in
      if h.h_count = 0 then (
        h.h_min <- v;
        h.h_max <- v)
      else (
        if v < h.h_min then h.h_min <- v;
        if v > h.h_max then h.h_max <- v);
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum + v;
      let k = bucket_index v in
      h.h_buckets.(k) <- h.h_buckets.(k) + 1)

  let snapshot h =
    let buckets = ref [] in
    for k = nbuckets - 1 downto 0 do
      if h.h_buckets.(k) > 0 then
        buckets := ((1 lsl k) - 1, h.h_buckets.(k)) :: !buckets
    done;
    {
      hs_name = h.h_name;
      hs_count = h.h_count;
      hs_sum = h.h_sum;
      hs_min = h.h_min;
      hs_max = h.h_max;
      hs_buckets = !buckets;
    }

  let clear h =
    h.h_count <- 0;
    h.h_sum <- 0;
    h.h_min <- 0;
    h.h_max <- 0;
    Array.fill h.h_buckets 0 nbuckets 0
end

(* ------------------------------------------------------------------ *)
(* Timing spans                                                        *)
(* ------------------------------------------------------------------ *)

let span name f =
  let sk = sink () in
  if not sk.sk_on then f ()
  else (
    let r =
      match Hashtbl.find_opt sk.sk_spans name with
      | Some r -> r
      | None ->
          let r = { sp_count = 0; sp_total = 0.0 } in
          Hashtbl.replace sk.sk_spans name r;
          r
    in
    let t0 = !clock () in
    Fun.protect
      ~finally:(fun () ->
        r.sp_count <- r.sp_count + 1;
        r.sp_total <- r.sp_total +. (!clock () -. t0))
      f)

let all_spans () =
  Hashtbl.fold
    (fun n r acc -> (n, r.sp_count, r.sp_total) :: acc)
    (sink ()).sk_spans []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Event bus operations                                                *)
(* ------------------------------------------------------------------ *)

module Bus = struct
  type t = bus

  let create ?(depth = default_bus_depth) () =
    if depth <= 0 then invalid_arg "Telemetry.Bus.create: depth must be > 0";
    make_bus depth

  let depth b = Array.length b.b_data

  let clear b =
    Array.fill b.b_data 0 (Array.length b.b_data) None;
    b.b_head <- 0;
    b.b_len <- 0;
    b.b_published <- 0;
    b.b_dropped <- 0

  let set_depth b depth =
    if depth <= 0 then invalid_arg "Telemetry.Bus.set_depth: depth must be > 0";
    b.b_data <- Array.make depth None;
    b.b_head <- 0;
    b.b_len <- 0;
    b.b_published <- 0;
    b.b_dropped <- 0

  let publish b e =
    if (sink ()).sk_on then (
      let d = Array.length b.b_data in
      b.b_published <- b.b_published + 1;
      if b.b_len < d then (
        b.b_data.((b.b_head + b.b_len) mod d) <- Some e;
        b.b_len <- b.b_len + 1)
      else (
        (* full: overwrite the oldest entry and account for the drop *)
        b.b_data.(b.b_head) <- Some e;
        b.b_head <- (b.b_head + 1) mod d;
        b.b_dropped <- b.b_dropped + 1))

  let events b =
    let d = Array.length b.b_data in
    List.init b.b_len (fun i ->
        match b.b_data.((b.b_head + i) mod d) with
        | Some e -> e
        | None -> assert false)

  let length b = b.b_len
  let published b = b.b_published
  let dropped b = b.b_dropped
end

let bus () = (sink ()).sk_bus

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)
(* ------------------------------------------------------------------ *)

type report = {
  r_counters : (string * int) list;
  r_spans : (string * int * float) list;
  r_bus_depth : int;
  r_bus_published : int;
  r_bus_dropped : int;
  r_bus_retained : int;
}

let report () =
  let sk = sink () in
  {
    r_counters = Counter.all ();
    r_spans = all_spans ();
    r_bus_depth = Bus.depth sk.sk_bus;
    r_bus_published = Bus.published sk.sk_bus;
    r_bus_dropped = Bus.dropped sk.sk_bus;
    r_bus_retained = Bus.length sk.sk_bus;
  }

let empty_report =
  {
    r_counters = [];
    r_spans = [];
    r_bus_depth = 0;
    r_bus_published = 0;
    r_bus_dropped = 0;
    r_bus_retained = 0;
  }

(* Merge the reports of two sinks (e.g. two worker domains): counters
   and spans are summed by name, bus accounting is summed, bus depth is
   the larger of the two. *)
let merge a b =
  let sum_assoc xs ys combine =
    let tbl = Hashtbl.create 32 in
    let add (k, v) =
      match Hashtbl.find_opt tbl k with
      | Some prev -> Hashtbl.replace tbl k (combine prev v)
      | None -> Hashtbl.replace tbl k v
    in
    List.iter add xs;
    List.iter add ys;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare
  in
  let counters =
    sum_assoc a.r_counters b.r_counters (fun x y -> x + y)
  in
  let spans =
    sum_assoc
      (List.map (fun (n, c, t) -> (n, (c, t))) a.r_spans)
      (List.map (fun (n, c, t) -> (n, (c, t))) b.r_spans)
      (fun (c1, t1) (c2, t2) -> (c1 + c2, t1 +. t2))
    |> List.map (fun (n, (c, t)) -> (n, c, t))
  in
  {
    r_counters = counters;
    r_spans = spans;
    r_bus_depth = max a.r_bus_depth b.r_bus_depth;
    r_bus_published = a.r_bus_published + b.r_bus_published;
    r_bus_dropped = a.r_bus_dropped + b.r_bus_dropped;
    r_bus_retained = a.r_bus_retained + b.r_bus_retained;
  }

let reset () =
  let sk = sink () in
  Hashtbl.reset sk.sk_counters;
  Hashtbl.reset sk.sk_spans;
  Bus.clear sk.sk_bus
