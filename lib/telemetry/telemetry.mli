(** Simulation telemetry: counters, histograms, timing spans, and a
    bounded event bus — the software analog of the paper's always-on
    observability stack (recording IPs with fixed-depth buffers,
    Statistics Monitor counters).

    All state lives in a per-domain {e sink} held in domain-local
    storage, so independent simulations running on a pool of OCaml
    domains (lib/campaign) record concurrently without locks: each
    domain accumulates into its own sink and the pool {!merge}s the
    per-domain {!report}s at join time. A freshly spawned domain
    inherits the parent's enabled flag and step-sampling knob but
    starts with empty counters, spans, and bus.

    Everything is gated on the current sink's switch, off by default.
    Every recording entry point checks the switch with a single branch
    and returns immediately when disabled, so an uninstrumented run
    pays ~nothing. Producers therefore never need their own guards;
    they just call {!Counter.bump}, {!Histogram.observe}, {!span},
    {!Bus.publish} unconditionally.

    The {!Bus} mirrors the recording-IP semantics of the paper's
    SignalCat buffers (Figure 2): a fixed-depth ring that retains the
    most recent entries and counts every entry it had to overwrite, so
    overflow is observable instead of silent. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val set_clock : (unit -> float) -> unit
(** Clock used by {!span}, in seconds. Defaults to [Sys.time] (CPU
    seconds), keeping the library dependency-free; a harness that
    prefers wall time can install [Unix.gettimeofday]. Shared by all
    domains — install it from the main domain before spawning. *)

val step_sample : unit -> int
(** Simulator step-event sampling interval for the current domain: the
    simulator publishes one aggregated "step" bus event per this many
    cycles instead of one per cycle. Default 32. Counter and stats
    totals are exact regardless of the interval — only the bus event
    cadence changes. *)

val set_step_sample : int -> unit
(** Clamped to at least 1; 1 restores the one-event-per-cycle
    firehose (what [profile] uses so drop accounting stays exact). *)

(** {1 Counters} *)

module Counter : sig
  type t

  val make : string -> t
  (** A counter handle is identified by its name: the same name always
      denotes the same logical counter, and bumps land in the sink of
      whichever domain performs them. Producers may call [make] at
      module initialization (in any domain) and bump from any other. *)

  val bump : t -> int -> unit
  (** No-op while telemetry is disabled. *)

  val incr : t -> unit

  val value : t -> int
  (** Value accumulated in the {e current} domain's sink. *)

  val name : t -> string
end

(** {1 Histograms} — power-of-two buckets over non-negative ints. *)

module Histogram : sig
  type t

  type snapshot = {
    hs_name : string;
    hs_count : int;
    hs_sum : int;
    hs_min : int;  (** 0 when empty *)
    hs_max : int;
    hs_buckets : (int * int) list;
        (** (inclusive upper bound, count), non-empty buckets only;
            bounds are [2^k - 1] *)
  }

  val make : string -> t
  (** Histograms are plain values owned by their producer (a simulator
      instance keeps its own), not interned; they are domain-safe as
      long as their producer is. *)

  val observe : t -> int -> unit
  (** No-op while telemetry is disabled; negative values clamp to 0. *)

  val snapshot : t -> snapshot
  val clear : t -> unit
end

(** {1 Timing spans} *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f], accumulating its duration and call count
    under [name] in the current domain's sink when telemetry is
    enabled (exceptions still record). While structured tracing
    ({!Trace}) is on, the same call also opens/closes a tree span named
    [name] (category ["span"]) — one instrumentation point feeds both
    the flat aggregate and the timeline. When both layers are off it is
    a tail call to [f] behind a single branch. *)

(** {1 Structured tracing}

    The timeline-grade layer on top of the flat {!span} aggregates:
    spans form a proper tree (parent/child via a per-domain open-span
    stack, stable per-sink span ids), each domain records onto its own
    {e track}, and the result serializes to Chrome Trace Event Format
    via {!Trace_export}. Like everything else in this module the state
    is per-domain: a spawned worker inherits the switch, clock mode,
    and cap, but starts with an empty buffer, ids from 0, and track 0
    (the pool assigns worker tracks), so merge-at-join is collision
    free by construction. *)

module Trace : sig
  type clock =
    | Wall  (** the injectable wall clock ({!set_clock}), µs precision *)
    | Virtual
        (** deterministic per-domain tick clock: each timestamp read
            returns the previous value + 1µs. Same recording sequence ⇒
            same timestamps, on any machine — the mode the trace
            determinism tests and CI pin. *)

  type event = {
    te_ph : char;  (** 'B' | 'E' | 'i' | 'C' *)
    te_id : int;  (** span id ('B' only) *)
    te_parent : int;  (** parent span id, -1 at a tree root ('B' only) *)
    te_name : string;
    te_cat : string;
    te_track : int;
    te_ts : int;  (** microseconds *)
    te_value : int;  (** counter value ('C' only) *)
  }

  type segment = {
    sg_track : int;  (** track the slice was recorded on *)
    sg_start : int;  (** absolute µs of the slice origin *)
    sg_events : event list;
        (** timestamps rebased to [sg_start], span ids rebased to 0,
            parents opened before the slice mapped to -1 *)
  }

  val empty_segment : segment

  val enable : ?clock:clock -> ?cap:int -> unit -> unit
  (** Turn tracing on for the current domain (and, via sink
      inheritance, any domain it spawns afterwards). [clock] defaults
      to [Wall]; [cap] bounds the per-domain event buffer (default
      262144). The cap is soft: over it, new events are dropped and
      counted ({!dropped}) but every recorded span still closes, so
      captures stay balanced. *)

  val disable : unit -> unit
  val enabled : unit -> bool

  val set_clock : (unit -> float) -> unit
  (** Wall-time source in seconds, default [Sys.time]; a harness that
      wants real timelines installs [Unix.gettimeofday]. Distinct from
      the flat-span clock ({!Telemetry.set_clock}). Shared by all
      domains — install from the main domain before spawning. *)

  val set_track : int -> unit
  (** Track (Chrome-trace [tid]) new events record on. Track 0 is the
      main domain by convention; the campaign pool gives worker [w]
      track [w+1]. *)

  val track : unit -> int

  val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
  (** Open a tree span around [f] (closes on exception). No-op tail
      call while tracing is off. *)

  val instant : ?cat:string -> string -> unit
  (** A zero-duration 'i' event at the current time. *)

  val counter : string -> int -> unit
  (** Sample a counter series ('C' event) at the current time. *)

  val mark : unit -> int
  (** Current buffer position, to bracket a {!capture_since}. *)

  val capture_since : ?consume:bool -> int -> segment
  (** Rebase the events recorded since a {!mark} into a self-contained
      {!segment}: a pure value of what happened inside the slice,
      identical no matter which worker ran it (the virtual-clock
      determinism device). [consume] truncates the buffer back to the
      mark so long pools don't accumulate. *)

  val capture_all : ?consume:bool -> unit -> segment

  val dropped : unit -> int
  (** Events dropped over the cap in the current domain's sink. *)

  val length : unit -> int
  (** Events currently buffered. *)

  val depth : unit -> int
  (** Open spans on the current domain's stack. *)

  val reset : unit -> unit
  (** Clear buffer, stack, ids, virtual clock, and drop accounting.
      Keeps the switch, clock mode, cap, and track. *)
end

(** {1 Event bus} *)

type event = {
  ev_cycle : int;  (** simulation cycle, or -1 when not cycle-bound *)
  ev_source : string;  (** e.g. ["simulator"], ["fsm_monitor"] *)
  ev_kind : string;  (** e.g. ["step"], ["transition"], ["alarm"] *)
  ev_data : (string * string) list;
}

module Bus : sig
  type t

  val create : ?depth:int -> unit -> t
  (** Fixed-depth ring buffer, default depth 8192 (the paper testbed's
      default recording-buffer depth). *)

  val depth : t -> int

  val set_depth : t -> int -> unit
  (** Re-size and clear — the [--buffer] knob of the profile command. *)

  val publish : t -> event -> unit
  (** No-op while telemetry is disabled. On a full ring the oldest
      entry is overwritten and counted as dropped. *)

  val events : t -> event list
  (** Retained events, oldest first (at most [depth]). *)

  val length : t -> int

  val published : t -> int
  (** Total events offered since the last [clear]. *)

  val dropped : t -> int
  (** Entries overwritten because the ring was full — the overflow
      accounting a bounded recording IP must surface. *)

  val clear : t -> unit
end

val bus : unit -> Bus.t
(** The current domain's default bus — what every instrumented layer
    publishes to. Each domain has its own. *)

(** {1 Reporting} *)

type report = {
  r_counters : (string * int) list;  (** sorted by name *)
  r_spans : (string * int * float) list;
      (** (name, calls, total seconds), sorted by name *)
  r_bus_depth : int;
  r_bus_published : int;
  r_bus_dropped : int;
  r_bus_retained : int;
}

val report : unit -> report
(** Snapshot of the current domain's sink. *)

val empty_report : report

val merge : report -> report -> report
(** Combine two sinks' reports (e.g. two worker domains at pool join):
    counters and spans are summed by name, bus publish/drop/retain
    accounting is summed, bus depth is the larger of the two. *)

val reset : unit -> unit
(** Zero the current domain's counters and spans, clear its bus, and
    {!Trace.reset} its trace buffer. Does not change the enabled
    flags, step sampling, the bus depth, or the clocks. *)
