(* Chrome Trace Event Format export of the structured tracing layer
   (Telemetry.Trace), plus the reader-side validator the trace-smoke CI
   gate and `fpga-debug trace-check` run over the emitted files.

   The writer is deliberately a plain line-per-event printer over
   integer timestamps: byte-identity of the output is part of the
   contract (same seed + virtual clock => same file, at any pool
   width), so nothing in the formatting may depend on floats, hash
   order, or locale. The reader is a minimal hand-rolled JSON parser —
   the repository carries no JSON dependency, and the validator needs
   only objects/arrays/strings/ints. *)

module Trace = Telemetry.Trace

let schema = "fpga-debug-trace/1"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* One event, one line. [tid]/[ts]/span ids arrive already laid out. *)
let emit_event buf ~tid ~ts ~id_base (e : Trace.event) ~last =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match e.Trace.te_ph with
  | 'B' ->
      add
        "    {\"ph\": \"B\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \"name\": \
         \"%s\", \"cat\": \"%s\", \"args\": {\"id\": %d, \"parent\": %d}}"
        tid ts (escape e.Trace.te_name) (escape e.Trace.te_cat)
        (e.Trace.te_id + id_base)
        (if e.Trace.te_parent < 0 then -1 else e.Trace.te_parent + id_base)
  | 'E' -> add "    {\"ph\": \"E\", \"pid\": 1, \"tid\": %d, \"ts\": %d}" tid ts
  | 'i' ->
      add
        "    {\"ph\": \"i\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \"name\": \
         \"%s\", \"cat\": \"%s\", \"s\": \"t\"}"
        tid ts (escape e.Trace.te_name) (escape e.Trace.te_cat)
  | 'C' ->
      add
        "    {\"ph\": \"C\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \"name\": \
         \"%s\", \"args\": {\"value\": %d}}"
        tid ts (escape e.Trace.te_name) e.Trace.te_value
  | ph -> add "    {\"ph\": \"%c\", \"pid\": 1, \"tid\": %d, \"ts\": %d}" ph tid ts);
  add "%s\n" (if last then "" else ",")

let seg_duration (seg : Trace.segment) =
  List.fold_left (fun acc e -> max acc e.Trace.te_ts) 0 seg.Trace.sg_events

let count_spans (seg : Trace.segment) =
  List.fold_left
    (fun acc e -> if e.Trace.te_ph = 'B' then acc + 1 else acc)
    0 seg.Trace.sg_events

(* Serialize a whole run.

   [main] is the calling domain's own segment (phase spans and such);
   it renders on track (tid) 0. [jobs] are the per-job segments the
   pool captured, in submission order, each with a label whose prefix
   up to ':' names the job kind.

   Under the [Wall] clock the layout is physical: each job lands on the
   track of the domain that ran it ([sg_track], named "domain-N") at
   the absolute time it ran, so pool idle gaps are visible in Perfetto.
   Under the [Virtual] clock the layout is canonical: jobs are placed
   end-to-end in submission order (1µs apart) on one track per job
   kind — a pure function of the job set, independent of how a pool of
   any width interleaved the work, which is what makes the output
   byte-identical across --jobs 1/2/4. *)
let to_json ?(process = "fpga-debug") ~clock ~(main : Trace.segment)
    ~(jobs : (string * Trace.segment) list) () =
  let virtual_ = clock = Trace.Virtual in
  let kind_of label =
    match String.index_opt label ':' with
    | Some i -> String.sub label 0 i
    | None -> label
  in
  (* track table: 0 is always main; then either one per recorded
     domain (wall) or one per job kind in order of first appearance
     (virtual) *)
  let tracks = ref [ (0, "main") ] in
  let track_of_wall t =
    let tid = max 1 t in
    if not (List.mem_assoc tid !tracks) then
      tracks := !tracks @ [ (tid, Printf.sprintf "domain-%d" (tid - 1)) ];
    tid
  in
  let track_of_kind k =
    match List.find_opt (fun (_, n) -> n = k) !tracks with
    | Some (tid, _) -> tid
    | None ->
        let tid = List.length !tracks in
        tracks := !tracks @ [ (tid, k) ];
        tid
  in
  (* Wall layout re-zeroes on the earliest non-empty segment so a real
     epoch clock doesn't push timestamps out to 10^15 µs. *)
  let wall_base =
    if virtual_ then 0
    else
      List.fold_left
        (fun acc (_, (s : Trace.segment)) ->
          if s.Trace.sg_events = [] then acc
          else
            match acc with
            | None -> Some s.Trace.sg_start
            | Some a -> Some (min a s.Trace.sg_start))
        (if main.Trace.sg_events = [] then None else Some main.Trace.sg_start)
        jobs
      |> Option.value ~default:0
  in
  (* lay out every segment: (tid, ts offset, id offset, segment) *)
  let placed = ref [] in
  let id_base = ref 0 in
  let cursor = ref (if virtual_ then seg_duration main + 1 else 0) in
  let place ~tid ~at seg =
    placed := (tid, at, !id_base, seg) :: !placed;
    id_base := !id_base + count_spans seg
  in
  place ~tid:0 ~at:(if virtual_ then 0 else main.Trace.sg_start - wall_base) main;
  List.iter
    (fun (label, (seg : Trace.segment)) ->
      if virtual_ then (
        let tid = track_of_kind (kind_of label) in
        place ~tid ~at:!cursor seg;
        cursor := !cursor + seg_duration seg + 1)
      else
        place
          ~tid:(track_of_wall seg.Trace.sg_track)
          ~at:(seg.Trace.sg_start - wall_base)
          seg)
    jobs;
  let placed = List.rev !placed in
  let nevents =
    List.fold_left
      (fun acc (_, _, _, s) -> acc + List.length s.Trace.sg_events)
      0 placed
  in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n  \"schema\": \"%s\",\n" schema;
  add "  \"clock\": \"%s\",\n" (if virtual_ then "virtual" else "wall");
  add "  \"displayTimeUnit\": \"ms\",\n";
  add "  \"traceEvents\": [\n";
  (* metadata first: process name, then one thread_name per track *)
  add
    "    {\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
     \"args\": {\"name\": \"%s\"}},\n"
    (escape process);
  List.iter
    (fun (tid, name) ->
      add
        "    {\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \"name\": \
         \"thread_name\", \"args\": {\"name\": \"%s\"}}%s\n"
        tid (escape name)
        (if nevents = 0 && tid = fst (List.nth !tracks (List.length !tracks - 1))
         then ""
         else ","))
    !tracks;
  let remaining = ref nevents in
  List.iter
    (fun (tid, at, idb, (seg : Trace.segment)) ->
      List.iter
        (fun (e : Trace.event) ->
          decr remaining;
          emit_event buf ~tid ~ts:(at + e.Trace.te_ts) ~id_base:idb e
            ~last:(!remaining = 0))
        seg.Trace.sg_events)
    placed;
  add "  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader                                                 *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* validator-only decoding: non-ASCII collapses *)
                   Buffer.add_char buf
                     (if code < 0x80 then Char.chr code else '?');
                   pos := !pos + 5
               | _ -> fail "bad escape");
            go ()
        | c when Char.code c < 0x20 -> fail "control character in string"
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> Num f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (
          advance ();
          Obj [])
        else (
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members [])
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (
          advance ();
          Arr [])
        else (
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements [])
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Validator                                                           *)
(* ------------------------------------------------------------------ *)

type stats = {
  v_events : int;  (* trace events, metadata included *)
  v_spans : int;  (* balanced B/E pairs *)
  v_counters : int;
  v_instants : int;
  v_tracks : int;  (* distinct (pid, tid) pairs *)
}

let field name = function
  | Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let as_int name v =
  match v with
  | Some (Num f) when Float.is_integer f -> Ok (int_of_float f)
  | Some _ -> Error (Printf.sprintf "%S must be an integer" name)
  | None -> Error (Printf.sprintf "missing %S" name)

let validate (text : string) : (stats, string) result =
  match parse_json text with
  | exception Bad_json msg -> Error ("not valid JSON: " ^ msg)
  | Obj _ as root -> (
      match field "schema" root with
      | Some (Str s) when s = schema -> (
          match field "traceEvents" root with
          | Some (Arr events) -> (
              (* per-(pid,tid) open-span stacks for B/E balance *)
              let stacks : (int * int, int list ref) Hashtbl.t =
                Hashtbl.create 8
              in
              let spans = ref 0 and counters = ref 0 and instants = ref 0 in
              let check i ev =
                let where msg = Error (Printf.sprintf "event %d: %s" i msg) in
                match ev with
                | Obj _ -> (
                    let ( let* ) r f =
                      match r with Ok v -> f v | Error e -> where e
                    in
                    let* ph =
                      match field "ph" ev with
                      | Some (Str p) when String.length p = 1 -> Ok p.[0]
                      | Some (Str p) ->
                          Error (Printf.sprintf "bad ph %S" p)
                      | Some _ -> Error "ph must be a string"
                      | None -> Error "missing ph"
                    in
                    let* pid = as_int "pid" (field "pid" ev) in
                    let* tid = as_int "tid" (field "tid" ev) in
                    let key = (pid, tid) in
                    let stack =
                      match Hashtbl.find_opt stacks key with
                      | Some r -> r
                      | None ->
                          let r = ref [] in
                          Hashtbl.replace stacks key r;
                          r
                    in
                    match ph with
                    | 'M' -> Ok ()
                    | 'B' ->
                        let* ts = as_int "ts" (field "ts" ev) in
                        let* _ =
                          match field "name" ev with
                          | Some (Str _) -> Ok ()
                          | _ -> Error "B event needs a string name"
                        in
                        if ts < 0 then where "negative ts"
                        else (
                          stack := ts :: !stack;
                          Ok ())
                    | 'E' -> (
                        let* ts = as_int "ts" (field "ts" ev) in
                        match !stack with
                        | [] ->
                            where
                              (Printf.sprintf
                                 "E without open B on track %d" tid)
                        | t0 :: rest ->
                            if ts < t0 then
                              where "E timestamp precedes its B"
                            else (
                              stack := rest;
                              incr spans;
                              Ok ()))
                    | 'i' ->
                        let* ts = as_int "ts" (field "ts" ev) in
                        let* _ =
                          match field "name" ev with
                          | Some (Str _) -> Ok ()
                          | _ -> Error "i event needs a string name"
                        in
                        if ts < 0 then where "negative ts"
                        else (
                          incr instants;
                          Ok ())
                    | 'C' ->
                        let* ts = as_int "ts" (field "ts" ev) in
                        let* _ =
                          match field "name" ev with
                          | Some (Str _) -> Ok ()
                          | _ -> Error "C event needs a string name"
                        in
                        if ts < 0 then where "negative ts"
                        else (
                          incr counters;
                          Ok ())
                    | ph ->
                        where (Printf.sprintf "unsupported ph %C" ph))
                | _ -> where "not an object"
              in
              let rec walk i = function
                | [] -> Ok ()
                | ev :: rest -> (
                    match check i ev with
                    | Ok () -> walk (i + 1) rest
                    | Error _ as e -> e)
              in
              match walk 0 events with
              | Error e -> Error e
              | Ok () ->
                  let unbalanced =
                    Hashtbl.fold
                      (fun (_, tid) stack acc ->
                        if !stack <> [] then tid :: acc else acc)
                      stacks []
                  in
                  if unbalanced <> [] then
                    Error
                      (Printf.sprintf
                         "unbalanced B/E: %d span(s) never closed on track(s) %s"
                         (Hashtbl.fold
                            (fun _ stack acc -> acc + List.length !stack)
                            stacks 0)
                         (String.concat ", "
                            (List.map string_of_int
                               (List.sort_uniq compare unbalanced))))
                  else
                    Ok
                      {
                        v_events = List.length events;
                        v_spans = !spans;
                        v_counters = !counters;
                        v_instants = !instants;
                        v_tracks = Hashtbl.length stacks;
                      })
          | Some _ -> Error "\"traceEvents\" must be an array"
          | None -> Error "missing \"traceEvents\"")
      | Some (Str s) ->
          Error (Printf.sprintf "schema mismatch: %S, expected %S" s schema)
      | Some _ -> Error "\"schema\" must be a string"
      | None -> Error "missing \"schema\" envelope")
  | _ -> Error "top level must be an object"
