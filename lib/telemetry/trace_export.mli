(** Chrome Trace Event Format serialization of {!Telemetry.Trace}
    segments, plus the reader-side validator.

    The emitted file is a [fpga-debug-trace/1] envelope around a
    [traceEvents] array loadable in Perfetto / [chrome://tracing]:
    'M' metadata rows name the process and one thread per track, 'B'/'E'
    pairs are tree spans (span id and parent in [args]), 'i' instants,
    'C' counter series. Timestamps are integer microseconds and every
    byte of the output is a deterministic function of the inputs. *)

val schema : string
(** ["fpga-debug-trace/1"]. *)

val to_json :
  ?process:string ->
  clock:Telemetry.Trace.clock ->
  main:Telemetry.Trace.segment ->
  jobs:(string * Telemetry.Trace.segment) list ->
  unit ->
  string
(** Serialize a run. [main] is the calling domain's segment (track 0);
    [jobs] the pool's per-job segments in submission order, labelled
    ["kind:..."] .

    [Wall] clock: physical layout — each job at its absolute time on
    the track of the domain that ran it (["domain-N"]), idle gaps
    visible. [Virtual] clock: canonical layout — jobs end-to-end in
    submission order on one track per job kind, making the output
    byte-identical across pool widths. *)

(** {1 Reader} *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad_json of string

val parse_json : string -> json
(** Minimal strict JSON parser (no dependency). Raises {!Bad_json}
    with a byte offset on malformed input. *)

type stats = {
  v_events : int;  (** all events, metadata included *)
  v_spans : int;  (** balanced B/E pairs *)
  v_counters : int;
  v_instants : int;
  v_tracks : int;  (** distinct (pid, tid) pairs *)
}

val validate : string -> (stats, string) result
(** Reader-side gate: the text must be valid JSON, carry the
    [fpga-debug-trace/1] schema, and every event must have a
    well-formed [ph]/[pid]/[tid] (plus integer [ts] and a name where
    the phase requires one), with B/E strictly balanced per track and
    no E preceding its B. Anything else is rejected with a located
    error — malformed input never produces stats. *)
