(* Arbitrary-width bit vectors stored as little-endian arrays of 32-bit
   limbs packed in OCaml ints. The top limb is always normalized (bits
   above [width] are zero), so structural equality of normalized values
   coincides with numeric equality at equal width.

   The hot operations (shifts, slice, concat, set_slice, sign extension,
   multiplication, xor reduction) work limb-at-a-time — O(width/32) with
   in-place limb writes on freshly allocated results — rather than
   bit-at-a-time. The original bit-at-a-time implementations are kept in
   the [Naive] submodule as a differential-testing reference. Two
   invariants every operation preserves:

   - normalization: bits above [width] in the top limb are zero, so
     [Array] structural equality is value equality at equal width;
   - phys-eq no-op returns: the functional updates ([set_bit],
     [set_slice]) return the argument physically unchanged when the
     update changes nothing, which is the O(1) change-detection fast
     path the event-driven simulator kernel relies on. *)

let limb_bits = 32
let limb_mask = 0xFFFFFFFF

type t = { width : int; limbs : int array }

let width t = t.width
let nlimbs w = (w + limb_bits - 1) / limb_bits

(* Mask that keeps only the valid bits of the top limb. *)
let top_mask w =
  let r = w mod limb_bits in
  if r = 0 then limb_mask else (1 lsl r) - 1

let normalize t =
  let n = Array.length t.limbs in
  t.limbs.(n - 1) <- t.limbs.(n - 1) land top_mask t.width;
  t

let check_width w =
  if w < 1 then invalid_arg (Printf.sprintf "Bits: width %d < 1" w)

let zero w =
  check_width w;
  { width = w; limbs = Array.make (nlimbs w) 0 }

let ones w =
  check_width w;
  normalize { width = w; limbs = Array.make (nlimbs w) limb_mask }

let of_int ~width:w n =
  check_width w;
  let t = zero w in
  let n = ref n and i = ref 0 in
  while !n <> 0 && !i < Array.length t.limbs do
    t.limbs.(!i) <- !n land limb_mask;
    (* asr keeps the sign so negative ints fill high limbs with ones *)
    n := !n asr limb_bits;
    incr i
  done;
  (* Negative values: extend the sign through the remaining limbs. *)
  if !n = -1 then
    for j = !i to Array.length t.limbs - 1 do
      t.limbs.(j) <- limb_mask
    done;
  normalize t

let one w = of_int ~width:w 1
let of_bool b = of_int ~width:1 (if b then 1 else 0)

let bit t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bits.bit: index %d out of [0,%d)" i t.width);
  t.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set_bit t i b =
  if i < 0 || i >= t.width then
    invalid_arg
      (Printf.sprintf "Bits.set_bit: index %d out of [0,%d)" i t.width);
  if bit t i = b then t
  else
  let limbs = Array.copy t.limbs in
  let j = i / limb_bits and k = i mod limb_bits in
  if b then limbs.(j) <- limbs.(j) lor (1 lsl k)
  else limbs.(j) <- limbs.(j) land lnot (1 lsl k);
  { t with limbs }

let is_zero t = Array.for_all (fun l -> l = 0) t.limbs

let to_int t =
  if t.width <= 62 then (
    let acc = ref 0 in
    for i = Array.length t.limbs - 1 downto 0 do
      acc := (!acc lsl limb_bits) lor t.limbs.(i)
    done;
    !acc)
  else (
    (* Wider vector: succeed only if the high bits are all zero. *)
    for i = t.width - 1 downto 62 do
      if bit t i then failwith "Bits.to_int: value exceeds 62 bits"
    done;
    let acc = ref 0 in
    let top = min (Array.length t.limbs - 1) 1 in
    for i = top downto 0 do
      acc := (!acc lsl limb_bits) lor t.limbs.(i)
    done;
    !acc land ((1 lsl 62) - 1))

let to_int_trunc t =
  let acc = ref 0 in
  let top = min (Array.length t.limbs - 1) 1 in
  for i = top downto 0 do
    acc := (!acc lsl limb_bits) lor t.limbs.(i)
  done;
  !acc land ((1 lsl 62) - 1)

let to_signed_int t =
  if t.width = 1 then if bit t 0 then -1 else 0
  else if bit t (t.width - 1) then (
    (* negative: value - 2^width, computed on the complement *)
    let m = ref 0 in
    if t.width > 63 then (
      for i = t.width - 1 downto 62 do
        if not (bit t i) then failwith "Bits.to_signed_int: does not fit"
      done);
    let hi = min (t.width - 1) 61 in
    for i = hi downto 0 do
      m := (!m lsl 1) lor (if bit t i then 0 else 1)
    done;
    -(!m + 1))
  else to_int t

let resize t w =
  check_width w;
  if w = t.width then t
  else
    let r = zero w in
    let n = min (Array.length t.limbs) (Array.length r.limbs) in
    Array.blit t.limbs 0 r.limbs 0 n;
    normalize r

(* ------------------------------------------------------------------ *)
(* Limb-level helpers                                                  *)
(* ------------------------------------------------------------------ *)

(* OR the low [src_w] bits of [src] into [dst] starting at bit [pos].
   The destination bits must currently be zero and [pos + src_w] must
   not exceed the destination's bit capacity. *)
let blit_bits src src_w dst pos =
  let off = pos / limb_bits and b = pos mod limb_bits in
  let n = nlimbs src_w in
  let dn = Array.length dst in
  for i = 0 to n - 1 do
    dst.(off + i) <- dst.(off + i) lor ((src.(i) lsl b) land limb_mask);
    if b > 0 && off + i + 1 < dn then
      dst.(off + i + 1) <- dst.(off + i + 1) lor (src.(i) lsr (limb_bits - b))
  done

(* Set bits [lo..hi] (inclusive) of [limbs] to one, in place. *)
let set_ones_range limbs lo hi =
  let jlo = lo / limb_bits and jhi = hi / limb_bits in
  for j = jlo to jhi do
    let blo = if j = jlo then lo mod limb_bits else 0 in
    let bhi = if j = jhi then hi mod limb_bits else limb_bits - 1 in
    let w = bhi - blo + 1 in
    let m =
      if w >= limb_bits then limb_mask else ((1 lsl w) - 1) lsl blo
    in
    limbs.(j) <- limbs.(j) lor m
  done

(* Clear bits [lo..hi] (inclusive) of [limbs], in place. *)
let clear_range limbs lo hi =
  let jlo = lo / limb_bits and jhi = hi / limb_bits in
  for j = jlo to jhi do
    let blo = if j = jlo then lo mod limb_bits else 0 in
    let bhi = if j = jhi then hi mod limb_bits else limb_bits - 1 in
    let w = bhi - blo + 1 in
    let m =
      if w >= limb_bits then limb_mask else ((1 lsl w) - 1) lsl blo
    in
    limbs.(j) <- limbs.(j) land (lnot m land limb_mask)
  done

(* ------------------------------------------------------------------ *)
(* Word-level structural operations                                    *)
(* ------------------------------------------------------------------ *)

let sign_extend t w =
  check_width w;
  if w <= t.width || not (bit t (t.width - 1)) then resize t w
  else (
    (* resize allocates a fresh vector here (w > t.width), so the
       in-place ones-fill of the extension bits is safe *)
    let r = resize t w in
    set_ones_range r.limbs t.width (w - 1);
    normalize r)

let of_binary_string s =
  let digits =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  let w = List.length digits in
  if w = 0 then invalid_arg "Bits.of_binary_string: empty";
  let t = ref (zero w) in
  List.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> t := set_bit !t (w - 1 - i) true
      | _ -> invalid_arg "Bits.of_binary_string: bad digit")
    digits;
  !t

let shift_left t k =
  if k < 0 then invalid_arg "Bits.shift_left: negative shift";
  if k = 0 then t
  else if k >= t.width then zero t.width
  else (
    let r = zero t.width in
    let off = k / limb_bits and b = k mod limb_bits in
    for j = Array.length r.limbs - 1 downto off do
      let lo = (t.limbs.(j - off) lsl b) land limb_mask in
      let hi =
        if b > 0 && j - off - 1 >= 0 then
          t.limbs.(j - off - 1) lsr (limb_bits - b)
        else 0
      in
      r.limbs.(j) <- lo lor hi
    done;
    normalize r)

let shift_right t k =
  if k < 0 then invalid_arg "Bits.shift_right: negative shift";
  if k = 0 then t
  else if k >= t.width then zero t.width
  else (
    let r = zero t.width in
    let off = k / limb_bits and b = k mod limb_bits in
    let n = Array.length t.limbs in
    for j = 0 to n - 1 - off do
      let lo = t.limbs.(j + off) lsr b in
      let hi =
        if b > 0 && j + off + 1 < n then
          (t.limbs.(j + off + 1) lsl (limb_bits - b)) land limb_mask
        else 0
      in
      r.limbs.(j) <- lo lor hi
    done;
    normalize r)

let arith_shift_right t k =
  if k < 0 then invalid_arg "Bits.arith_shift_right: negative shift";
  if not (bit t (t.width - 1)) then shift_right t k
  else if k = 0 then t
  else if k >= t.width then ones t.width
  else (
    (* shift_right allocates freshly for 0 < k < width, so the in-place
       sign fill of the vacated top bits is safe *)
    let r = shift_right t k in
    set_ones_range r.limbs (t.width - k) (t.width - 1);
    normalize r)

let slice t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bits.slice: [%d:%d] out of range for width %d" hi lo
         t.width);
  let w = hi - lo + 1 in
  let r = zero w in
  let off = lo / limb_bits and b = lo mod limb_bits in
  let n = Array.length t.limbs in
  for j = 0 to Array.length r.limbs - 1 do
    let lo_part = if j + off < n then t.limbs.(j + off) lsr b else 0 in
    let hi_part =
      if b > 0 && j + off + 1 < n then
        (t.limbs.(j + off + 1) lsl (limb_bits - b)) land limb_mask
      else 0
    in
    r.limbs.(j) <- lo_part lor hi_part
  done;
  normalize r

let concat parts =
  match parts with
  | [] -> invalid_arg "Bits.concat: empty list"
  | _ ->
      let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
      let r = zero w in
      (* parts are MSB-first; blit from the LSB end *)
      let pos = ref 0 in
      List.iter
        (fun p ->
          blit_bits p.limbs p.width r.limbs !pos;
          pos := !pos + p.width)
        (List.rev parts);
      normalize r

let repeat n t =
  if n < 1 then invalid_arg "Bits.repeat: count < 1";
  if n = 1 then t
  else (
    let r = zero (n * t.width) in
    for i = 0 to n - 1 do
      blit_bits t.limbs t.width r.limbs (i * t.width)
    done;
    normalize r)

let set_slice t ~hi ~lo x =
  if lo < 0 || hi >= t.width || hi < lo then
    invalid_arg
      (Printf.sprintf "Bits.set_slice: [%d:%d] out of range for width %d" hi
         lo t.width);
  let w = hi - lo + 1 in
  let x = resize x w in
  let limbs = Array.copy t.limbs in
  clear_range limbs lo hi;
  blit_bits x.limbs w limbs lo;
  (* phys-eq no-op contract: an update that changes nothing returns the
     argument itself so change detection stays O(1) *)
  if limbs = t.limbs then t else normalize { t with limbs }

let require_same_width op a b =
  if a.width <> b.width then
    invalid_arg
      (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" op a.width b.width)

let add a b =
  require_same_width "add" a b;
  let r = zero a.width in
  let carry = ref 0 in
  for i = 0 to Array.length a.limbs - 1 do
    let s = a.limbs.(i) + b.limbs.(i) + !carry in
    r.limbs.(i) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let sub a b =
  require_same_width "sub" a b;
  let r = zero a.width in
  let borrow = ref 0 in
  for i = 0 to Array.length a.limbs - 1 do
    let d = a.limbs.(i) - b.limbs.(i) - !borrow in
    if d < 0 then (
      r.limbs.(i) <- d + limb_mask + 1;
      borrow := 1)
    else (
      r.limbs.(i) <- d;
      borrow := 0)
  done;
  normalize r

let neg a = sub (zero a.width) a

(* Schoolbook multiplication over 16-bit digits: a 32x32 limb product
   would overflow a 63-bit OCaml int, so limbs are split into half-limb
   digits whose products (< 2^32) accumulate safely — the widths in
   this code base (<= 512 bits, 64 digits) stay far below 2^62. *)
let mul a b =
  require_same_width "mul" a b;
  let r = zero a.width in
  let nr = Array.length r.limbs in
  let nd = nr * 2 in
  let digit limbs i = (limbs.(i lsr 1) lsr ((i land 1) * 16)) land 0xFFFF in
  let acc = Array.make nd 0 in
  let na = Array.length a.limbs * 2 in
  let nb = Array.length b.limbs * 2 in
  for i = 0 to min na nd - 1 do
    let da = digit a.limbs i in
    if da <> 0 then
      for j = 0 to min nb (nd - i) - 1 do
        acc.(i + j) <- acc.(i + j) + (da * digit b.limbs j)
      done
  done;
  let carry = ref 0 in
  for i = 0 to nd - 1 do
    let v = acc.(i) + !carry in
    acc.(i) <- v land 0xFFFF;
    carry := v lsr 16
  done;
  for j = 0 to nr - 1 do
    r.limbs.(j) <- acc.(2 * j) lor (acc.((2 * j) + 1) lsl 16)
  done;
  normalize r

let compare a b =
  (* unsigned numeric comparison across possibly different widths *)
  let w = max a.width b.width in
  let a = resize a w and b = resize b w in
  let rec go i =
    if i < 0 then 0
    else
      let c = Int.compare a.limbs.(i) b.limbs.(i) in
      if c <> 0 then c else go (i - 1)
  in
  go (Array.length a.limbs - 1)

(* Physical equality short-circuits the limb comparison: the functional
   update operations above return the argument unchanged when the update
   is a no-op, so unchanged values are usually compared in O(1). *)
let equal a b = a == b || (a.width = b.width && a.limbs = b.limbs)
let equal_value a b = compare a b = 0
let lt a b = compare a b < 0
let le a b = compare a b <= 0
let gt a b = compare a b > 0
let ge a b = compare a b >= 0

let signed_lt a b =
  require_same_width "signed_lt" a b;
  let sa = bit a (a.width - 1) and sb = bit b (b.width - 1) in
  match (sa, sb) with
  | true, false -> true
  | false, true -> false
  | _ -> lt a b

let signed_le a b = signed_lt a b || equal_value a b

let divmod a b =
  require_same_width "div" a b;
  if is_zero b then (ones a.width, a)
  else (
    (* restoring long division, MSB first *)
    let q = ref (zero a.width) and r = ref (zero a.width) in
    for i = a.width - 1 downto 0 do
      r := shift_left !r 1;
      if bit a i then r := set_bit !r 0 true;
      if ge !r b then (
        r := sub !r b;
        q := set_bit !q i true)
    done;
    (!q, !r))

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let map2_limbs f a b =
  require_same_width "bitwise" a b;
  let r = zero a.width in
  for i = 0 to Array.length a.limbs - 1 do
    r.limbs.(i) <- f a.limbs.(i) b.limbs.(i)
  done;
  normalize r

let logand a b = map2_limbs ( land ) a b
let logor a b = map2_limbs ( lor ) a b
let logxor a b = map2_limbs ( lxor ) a b

let lognot a =
  let r = zero a.width in
  for i = 0 to Array.length a.limbs - 1 do
    r.limbs.(i) <- lnot a.limbs.(i) land limb_mask
  done;
  normalize r

let reduce_and t = equal t (ones t.width)
let reduce_or t = not (is_zero t)

(* Parity of the whole vector = parity of the xor of all limbs. *)
let reduce_xor t =
  let v = Array.fold_left ( lxor ) 0 t.limbs in
  let v = v lxor (v lsr 16) in
  let v = v lxor (v lsr 8) in
  let v = v lxor (v lsr 4) in
  (0x6996 lsr (v land 0xF)) land 1 = 1

let to_binary_string t =
  String.init t.width (fun i -> if bit t (t.width - 1 - i) then '1' else '0')

let to_hex_string t =
  let ndigits = (t.width + 3) / 4 in
  String.init ndigits (fun i ->
      let lo = (ndigits - 1 - i) * 4 in
      let hi = min (lo + 3) (t.width - 1) in
      let v = to_int_trunc (slice t ~hi ~lo) in
      "0123456789abcdef".[v])

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Bits: bad hex digit %c" c)

let of_hex_string ~width:w s =
  check_width w;
  let acc = ref (zero (max w 4)) in
  String.iter
    (fun c ->
      if c <> '_' then (
        let d = hex_digit c in
        acc := shift_left !acc 4;
        acc := logor !acc (of_int ~width:(width !acc) d)))
    s;
  resize !acc w

let of_decimal_string ~width:w s =
  check_width w;
  let ten = of_int ~width:(max w 8) 10 in
  let acc = ref (zero (max w 8)) in
  String.iter
    (fun c ->
      if c <> '_' then (
        if c < '0' || c > '9' then
          invalid_arg (Printf.sprintf "Bits: bad decimal digit %c" c);
        acc := mul !acc ten;
        acc :=
          add !acc (of_int ~width:(width !acc) (Char.code c - Char.code '0'))))
    s;
  resize !acc w

let to_string t = Printf.sprintf "%d'h%s" t.width (to_hex_string t)
let pp fmt t = Format.pp_print_string fmt (to_string t)

(* ------------------------------------------------------------------ *)
(* Bit-at-a-time reference implementations                             *)
(* ------------------------------------------------------------------ *)

(* The pre-word-level (seed) implementations, retained verbatim as the
   oracle for randomized differential testing of the limb-wise rewrites
   above. Slow by design — never call these from simulator code. *)
module Naive = struct
  let shift_left t k =
    if k < 0 then invalid_arg "Bits.shift_left: negative shift";
    if k >= t.width then zero t.width
    else (
      let r = zero t.width in
      for i = t.width - 1 downto k do
        if bit t (i - k) then (
          let j = i / limb_bits and b = i mod limb_bits in
          r.limbs.(j) <- r.limbs.(j) lor (1 lsl b))
      done;
      normalize r)

  let shift_right t k =
    if k < 0 then invalid_arg "Bits.shift_right: negative shift";
    if k >= t.width then zero t.width
    else (
      let r = zero t.width in
      for i = 0 to t.width - 1 - k do
        if bit t (i + k) then (
          let j = i / limb_bits and b = i mod limb_bits in
          r.limbs.(j) <- r.limbs.(j) lor (1 lsl b))
      done;
      normalize r)

  let arith_shift_right t k =
    if k < 0 then invalid_arg "Bits.arith_shift_right: negative shift";
    let sign = bit t (t.width - 1) in
    if not sign then shift_right t k
    else if k >= t.width then ones t.width
    else (
      let r = shift_right t k in
      let r = ref r in
      for i = t.width - k to t.width - 1 do
        r := set_bit !r i true
      done;
      !r)

  let slice t ~hi ~lo =
    if lo < 0 || hi >= t.width || hi < lo then
      invalid_arg
        (Printf.sprintf "Bits.slice: [%d:%d] out of range for width %d" hi lo
           t.width);
    let w = hi - lo + 1 in
    let r = zero w in
    for i = 0 to w - 1 do
      if bit t (lo + i) then (
        let j = i / limb_bits and b = i mod limb_bits in
        r.limbs.(j) <- r.limbs.(j) lor (1 lsl b))
    done;
    normalize r

  let concat parts =
    match parts with
    | [] -> invalid_arg "Bits.concat: empty list"
    | _ ->
        let w = List.fold_left (fun acc p -> acc + p.width) 0 parts in
        let r = zero w in
        let pos = ref 0 in
        List.iter
          (fun p ->
            for i = 0 to p.width - 1 do
              if bit p i then (
                let abs = !pos + i in
                let j = abs / limb_bits and b = abs mod limb_bits in
                r.limbs.(j) <- r.limbs.(j) lor (1 lsl b))
            done;
            pos := !pos + p.width)
          (List.rev parts);
        normalize r

  let repeat n t =
    if n < 1 then invalid_arg "Bits.repeat: count < 1";
    concat (List.init n (fun _ -> t))

  let set_slice t ~hi ~lo x =
    if lo < 0 || hi >= t.width || hi < lo then
      invalid_arg
        (Printf.sprintf "Bits.set_slice: [%d:%d] out of range for width %d"
           hi lo t.width);
    let x = resize x (hi - lo + 1) in
    let r = ref t in
    for i = lo to hi do
      r := set_bit !r i (bit x (i - lo))
    done;
    !r

  let sign_extend t w =
    check_width w;
    if w <= t.width || not (bit t (t.width - 1)) then resize t w
    else (
      let r = ref (ones w) in
      for i = 0 to t.width - 1 do
        r := set_bit !r i (bit t i)
      done;
      !r)

  let mul a b =
    require_same_width "mul" a b;
    let acc = ref (zero a.width) in
    for i = 0 to b.width - 1 do
      if bit b i then acc := add !acc (shift_left a i)
    done;
    !acc

  let reduce_xor t =
    let c = ref 0 in
    for i = 0 to t.width - 1 do
      if bit t i then incr c
    done;
    !c land 1 = 1
end

(* ------------------------------------------------------------------ *)
(* Immediate (single-int) representation                               *)
(* ------------------------------------------------------------------ *)

(* Signals of width <= 63 fit one native OCaml int, using all 63 bits of
   the representation: a width-63 value with its top bit set is stored
   as a *negative* int (the raw two's-complement pattern). Every
   operation here is value-identical to the limb-wise operation above at
   the same width; callers pass the width explicitly and the invariant
   is that inputs are already masked to their width (bits above [w] are
   zero in the 63-bit pattern sense, i.e. [v land mask w = v]).

   The three systematic hazards of the all-63-bits encoding, handled
   throughout:
   - [1 lsl 63] and shifts by >= 63 are undefined: [mask] special-cases
     w >= 63 to [-1], and every shift guards [k >= w] first (leaving
     k <= 62, which is always defined);
   - width-63 patterns can be negative: magnitude comparisons flip the
     sign bit ([lxor min_int]) to recover unsigned order, and division
     falls back to the limb path when a raw pattern is negative;
   - [lsr] (not [asr]) everywhere a logical shift is meant, so negative
     width-63 patterns shift in zeros. *)
module Imm = struct
  let max_width = 62 + 1 (* all 63 bits of a native int *)
  let fits w = w >= 1 && w <= max_width

  (* [(1 lsl 62) - 1] wraps to [max_int], so the subtraction form is
     valid up to w = 62; w = 63 is all bits of the int, i.e. [-1]. *)
  let mask w = if w >= max_width then -1 else (1 lsl w) - 1
  let of_int ~width n = n land mask width

  let of_bits t =
    let l0 = t.limbs.(0) in
    let l1 = if Array.length t.limbs > 1 then t.limbs.(1) else 0 in
    (l0 lor (l1 lsl limb_bits)) land mask t.width

  let to_bits ~width p =
    let t = zero width in
    t.limbs.(0) <- p land limb_mask;
    if Array.length t.limbs > 1 then
      t.limbs.(1) <- (p lsr limb_bits) land limb_mask;
    normalize t

  let add w a b = (a + b) land mask w
  let sub w a b = (a - b) land mask w
  let neg w a = -a land mask w

  (* Native [*] wraps modulo 2^63, so masking the product is exact for
     any w <= 63 — high-half overflow cannot corrupt the kept bits. *)
  let mul w a b = a * b land mask w
  let logand a b = a land b
  let logor a b = a lor b
  let logxor a b = a lxor b
  let lognot w a = lnot a land mask w

  (* Division by zero yields all-ones / the dividend (matching [divmod]
     above). Negative raw patterns (only possible at w = 63) don't obey
     native [/]'s truncation-toward-zero semantics as unsigned values,
     so that corner round-trips through the limb representation. *)
  let div w a b =
    if b = 0 then mask w
    else if a >= 0 && b > 0 then a / b
    else of_bits (div (to_bits ~width:w a) (to_bits ~width:w b))

  let rem w a b =
    if b = 0 then a
    else if a >= 0 && b > 0 then a mod b
    else of_bits (rem (to_bits ~width:w a) (to_bits ~width:w b))

  let shift_left w a k = if k >= w then 0 else (a lsl k) land mask w
  let shift_right w a k = if k >= w then 0 else a lsr k

  let arith_shift_right w a k =
    if (a lsr (w - 1)) land 1 = 0 then shift_right w a k
    else if k >= w then mask w
    else (a lsr k) lor (mask w lxor (mask w lsr k))

  let bit a i = (a lsr i) land 1 = 1
  let slice a ~hi ~lo = (a lsr lo) land mask (hi - lo + 1)
  let is_zero a = a = 0
  let equal (a : int) b = a = b

  (* Unsigned order on raw patterns: for w <= 62 the patterns are
     non-negative so native compare is already unsigned; at w = 63
     flipping the sign bit maps unsigned order onto signed order. *)
  let ucompare w a b =
    if w < max_width then Int.compare a b
    else Int.compare (a lxor min_int) (b lxor min_int)

  let lt w a b = ucompare w a b < 0
  let le w a b = ucompare w a b <= 0
  let gt w a b = ucompare w a b > 0
  let ge w a b = ucompare w a b >= 0

  let signed_lt w a b =
    let sa = bit a (w - 1) and sb = bit b (w - 1) in
    if sa <> sb then sa else lt w a b

  let signed_le w a b = signed_lt w a b || a = b
  let reduce_and w a = a = mask w
  let reduce_or a = a <> 0

  let reduce_xor a =
    let v = a lxor (a lsr 32) in
    let v = v lxor (v lsr 16) in
    let v = v lxor (v lsr 8) in
    let v = v lxor (v lsr 4) in
    (0x6996 lsr (v land 0xF)) land 1 = 1

  let resize w a = a land mask w

  let sign_extend ~from w a =
    if w <= from then a land mask w
    else if bit a (from - 1) then a lor (mask w lxor mask from)
    else a

  (* Same contract as the limb-level [to_int_trunc]: the low 62 bits. *)
  let to_int_trunc a = a land max_int
end
