(** Arbitrary-width bit vectors with Verilog semantics.

    A value of type [t] is an unsigned bit vector of a fixed [width] (>= 1).
    All arithmetic is performed modulo [2^width], mirroring the behaviour of
    Verilog nets and registers: assigning a wider value truncates, a narrower
    value zero-extends.  Signed interpretations are available through the
    [signed_*] operations, which read the most significant bit as a sign. *)

type t

val width : t -> int

(** {1 Construction} *)

val zero : int -> t
(** [zero w] is the [w]-bit vector of all zeros. Raises [Invalid_argument]
    if [w < 1]. *)

val one : int -> t
(** [one w] is the [w]-bit vector holding 1. *)

val ones : int -> t
(** [ones w] is the [w]-bit vector of all ones. *)

val of_int : width:int -> int -> t
(** [of_int ~width n] truncates the two's-complement representation of [n]
    to [width] bits. Negative [n] wraps, as in Verilog. *)

val of_bool : bool -> t
(** 1-bit vector: [true] is 1, [false] is 0. *)

val of_binary_string : string -> t
(** [of_binary_string "1010"] builds a vector whose width is the string
    length. Underscores are ignored. Raises [Invalid_argument] on other
    characters or empty strings. *)

val of_hex_string : width:int -> string -> t
(** [of_hex_string ~width s] parses hex digits (underscores ignored) and
    truncates/extends to [width]. *)

val of_decimal_string : width:int -> string -> t
(** Parses an unsigned decimal literal, truncated to [width] bits. *)

(** {1 Conversion} *)

val to_int : t -> int
(** Value as a non-negative OCaml int. Raises [Failure] if the value does
    not fit in 62 bits. *)

val to_int_trunc : t -> int
(** Low 62 bits of the value, always succeeds. *)

val to_binary_string : t -> string
val to_hex_string : t -> string

val to_signed_int : t -> int
(** Two's-complement interpretation. Raises [Failure] if it does not fit. *)

(** {1 Structure} *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = least significant). Raises [Invalid_argument]
    when [i] is out of range. *)

val slice : t -> hi:int -> lo:int -> t
(** [slice v ~hi ~lo] is bits [hi..lo] inclusive, width [hi - lo + 1]. *)

val concat : t list -> t
(** [concat [a; b; c]] places [a] in the most significant position,
    following Verilog [{a, b, c}]. *)

val repeat : int -> t -> t
(** [repeat n v] is Verilog [{n{v}}]. *)

val resize : t -> int -> t
(** Zero-extend or truncate to the given width. *)

val sign_extend : t -> int -> t
(** Sign-extend (or truncate) to the given width. *)

(** {1 Arithmetic (operands must share a width; result has that width)} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Division by zero yields all-ones, as Verilator produces for x/0 in
    two-state simulation. *)

val rem : t -> t -> t
(** Remainder; [rem x zero] is [x]. *)

val neg : t -> t

(** {1 Bitwise} *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
val arith_shift_right : t -> int -> t

(** {1 Reductions and predicates} *)

val reduce_and : t -> bool
val reduce_or : t -> bool
val reduce_xor : t -> bool
val is_zero : t -> bool

(** {1 Comparisons (unsigned unless stated)} *)

val equal : t -> t -> bool
(** Width-sensitive: vectors of different widths are never equal.
    Physically-equal values compare in O(1). *)

val equal_value : t -> t -> bool
(** Compares numeric values, ignoring width. *)

val compare : t -> t -> int
(** Unsigned numeric comparison (widths may differ). *)

val lt : t -> t -> bool
val le : t -> t -> bool
val gt : t -> t -> bool
val ge : t -> t -> bool
val signed_lt : t -> t -> bool
val signed_le : t -> t -> bool

(** {1 Mutation-free update} *)

val set_bit : t -> int -> bool -> t
(** [set_bit v i b] returns [v] itself (physically equal, no
    allocation) when bit [i] already holds [b] — the change-detection
    fast path the event-driven simulator kernel relies on. *)

val set_slice : t -> hi:int -> lo:int -> t -> t
(** [set_slice v ~hi ~lo x] replaces bits [hi..lo] of [v] with [x]
    (resized to fit). Returns [v] physically unchanged when the slice
    already equals [x]. *)

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit
(** Prints as [<width>'h<hex>]. *)

val to_string : t -> string

(** {1 Reference implementations}

    Bit-at-a-time implementations of every operation that the main
    module computes limb-wise, retained as the oracle for randomized
    differential testing. Semantically identical to their word-level
    counterparts (including error behaviour) but O(width); never use
    them on a hot path. *)
module Naive : sig
  val shift_left : t -> int -> t
  val shift_right : t -> int -> t
  val arith_shift_right : t -> int -> t
  val slice : t -> hi:int -> lo:int -> t
  val concat : t list -> t
  val repeat : int -> t -> t
  val set_slice : t -> hi:int -> lo:int -> t -> t
  val sign_extend : t -> int -> t
  val mul : t -> t -> t
  val reduce_xor : t -> bool
end

(** {1 Immediate (single-int) representation}

    Signals of width [<= 63] fit a single native OCaml int, using all
    63 bits of the representation — a width-63 value with its top bit
    set is stored as a {e negative} int (the raw two's-complement
    pattern). The lowered simulator kernel keeps such signals in a
    dense [int array] and evaluates them with these operations, which
    are value-identical to the limb-wise operations above at equal
    width. Callers pass the width explicitly; operands must already be
    masked to their width ([v land mask w = v]). *)
module Imm : sig
  val max_width : int
  (** 63: the full bit width of a native int. *)

  val fits : int -> bool
  (** [fits w] is true when a [w]-bit value has an immediate form. *)

  val mask : int -> int
  (** [mask w] has the low [w] bits set ([-1] when [w >= 63]). *)

  val of_int : width:int -> int -> int
  (** Truncate an arbitrary int to a masked [width]-bit pattern. *)

  val of_bits : t -> int
  (** Raw pattern of a vector whose width is [<= 63]. *)

  val to_bits : width:int -> int -> t
  (** Rebuild the limb form; inverse of [of_bits] at equal width. *)

  val add : int -> int -> int -> int
  val sub : int -> int -> int -> int
  val neg : int -> int -> int
  val mul : int -> int -> int -> int

  val div : int -> int -> int -> int
  (** [div w a b]; division by zero yields all-ones, as {!val:div}. *)

  val rem : int -> int -> int -> int
  (** [rem w a b]; [rem w a 0] is [a], as {!val:rem}. *)

  val logand : int -> int -> int
  val logor : int -> int -> int
  val logxor : int -> int -> int
  val lognot : int -> int -> int
  val shift_left : int -> int -> int -> int
  val shift_right : int -> int -> int -> int
  val arith_shift_right : int -> int -> int -> int

  val bit : int -> int -> bool
  (** [bit a i] for [i <= 62]. *)

  val slice : int -> hi:int -> lo:int -> int
  val is_zero : int -> bool
  val equal : int -> int -> bool

  val ucompare : int -> int -> int -> int
  (** [ucompare w a b]: unsigned order on raw [w]-bit patterns. *)

  val lt : int -> int -> int -> bool
  val le : int -> int -> int -> bool
  val gt : int -> int -> int -> bool
  val ge : int -> int -> int -> bool
  val signed_lt : int -> int -> int -> bool
  val signed_le : int -> int -> int -> bool
  val reduce_and : int -> int -> bool
  val reduce_or : int -> bool
  val reduce_xor : int -> bool

  val resize : int -> int -> int
  (** [resize w a]: truncate to [w] bits (zero-extension is identity). *)

  val sign_extend : from:int -> int -> int -> int
  (** [sign_extend ~from w a]: reinterpret the [from]-bit pattern [a]
      as signed and extend (or truncate) to [w] bits. *)

  val to_int_trunc : int -> int
  (** Low 62 bits — same contract as the limb-level {!to_int_trunc}. *)
end
