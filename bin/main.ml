(* fpga-debug: command-line front end for the testbed and the tools.

   Mirrors the paper artifact's push-button workflow:

     fpga-debug list                      enumerate the testbed
     fpga-debug repro D2                  reproduce a bug's symptoms
     fpga-debug fsm D2                    FSM Monitor trace
     fpga-debug stats D2                  Statistics Monitor counters
     fpga-debug deps D5                   Dependency Monitor chain
     fpga-debug losscheck D2              LossCheck localization
     fpga-debug instrument D2 -o out.v    emit the instrumented Verilog
     fpga-debug vcd D2 -o wave.vcd        dump a waveform of the buggy run
     fpga-debug checkpoint D2 --every 50  capture a checkpoint stream
     fpga-debug replay D2 --from CKPT     time-travel replay with full VCD
     fpga-debug replay D2 --bisect        first-failing-cycle search
     fpga-debug profile D2 --cycles 200   kernel-profiling telemetry run
     fpga-debug report table1|table2|fig2|fig3|effectiveness|freq *)

open Cmdliner
module Ast = Fpga_hdl.Ast
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Taxonomy = Fpga_study.Taxonomy

let find_bug id =
  let id = String.uppercase_ascii id in
  match
    List.find_opt
      (fun (b : Bug.t) -> b.Bug.id = id)
      Registry.all_with_extended
  with
  | Some bug -> bug
  | None ->
      Printf.eprintf "unknown bug %s; try `fpga-debug list`\n" id;
      exit 1

let bug_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BUG" ~doc:"Testbed bug id (e.g. D2)")

let out_arg =
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file")

let buffer_arg =
  Arg.(value & opt int 8192 & info [ "buffer" ] ~docv:"DEPTH" ~doc:"Recording buffer depth (power of two)")

(* Shared structured-tracing surface: --trace FILE turns the
   Telemetry.Trace layer on around the command's computation and
   serializes the span tree to Chrome-trace JSON (open in Perfetto).
   [jobs_of] extracts the campaign pool's per-job segments from the
   traced value; single-domain commands leave it at []. *)
module Trace = Fpga_telemetry.Telemetry.Trace
module Trace_export = Fpga_telemetry.Trace_export

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome-trace (Perfetto) JSON timeline of the \
                 run to FILE")

let trace_clock_arg =
  Arg.(value
       & opt (enum [ ("wall", Trace.Wall); ("virtual", Trace.Virtual) ])
           Trace.Wall
       & info [ "trace-clock" ] ~docv:"CLOCK"
           ~doc:"Trace timestamp source: wall (physical timeline, idle \
                 gaps visible) or virtual (deterministic; the file is \
                 byte-identical at any --jobs width)")

let traced ~trace ~clock ?(jobs_of = fun _ -> []) run =
  match trace with
  | None -> run ()
  | Some path ->
      (match clock with
      | Trace.Wall -> Trace.set_clock Unix.gettimeofday
      | Trace.Virtual -> ());
      Trace.enable ~clock ();
      let v = Fun.protect ~finally:Trace.disable run in
      let main = Trace.capture_all ~consume:true () in
      let json = Trace_export.to_json ~clock ~main ~jobs:(jobs_of v) () in
      let oc = open_out path in
      output_string oc json;
      close_out oc;
      Printf.printf "wrote %s\n" path;
      v

(* Shared settle-kernel selector: [None] keeps [Simulator.create]'s
   automatic plan-shape selection. *)
let kernel_arg =
  Arg.(value
       & opt (enum [ ("auto", None);
                     ("event", Some Fpga_sim.Simulator.Event_driven);
                     ("brute", Some Fpga_sim.Simulator.Brute_force);
                     ("lowered", Some Fpga_sim.Simulator.Lowered);
                     ("lowered-dirty", Some Fpga_sim.Simulator.Lowered_dirty) ])
           None
       & info [ "kernel" ] ~docv:"KERNEL"
           ~doc:"Settle kernel: auto|event|brute|lowered|lowered-dirty \
                 (auto selects from the compiled plan's shape)")

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let doc = "List the reproducible bugs of the testbed." in
  let run () =
    List.iter
      (fun (b : Bug.t) ->
        Printf.printf "%-4s %-28s %-22s %s\n" b.Bug.id
          (Taxonomy.subclass_name b.Bug.subclass)
          b.Bug.application b.Bug.description)
      Registry.all_with_extended
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* --- repro ---------------------------------------------------------- *)

let repro_cmd =
  let doc = "Reproduce a bug push-button and report its symptoms." in
  let run id =
    let bug = find_bug id in
    Printf.printf "%s: %s (%s)\n" bug.Bug.id bug.Bug.description
      bug.Bug.application;
    let observed = Bug.observed_symptoms bug in
    Printf.printf "expected symptoms: %s\n"
      (String.concat ", " (List.map Taxonomy.symptom_name bug.Bug.symptoms));
    Printf.printf "observed symptoms: %s\n"
      (String.concat ", " (List.map Taxonomy.symptom_name observed));
    Printf.printf "reproduces: %b\n" (Bug.reproduces bug);
    let report = Bug.run bug ~buggy:true in
    if report.Bug.log <> [] then (
      print_endline "design log:";
      List.iter
        (fun (c, t) -> Printf.printf "  [cycle %d] %s\n" c t)
        report.Bug.log)
  in
  Cmd.v (Cmd.info "repro" ~doc) Term.(const run $ bug_arg)

(* --- fsm ------------------------------------------------------------ *)

let fsm_cmd =
  let doc =
    "Run FSM Monitor on a bug's design and print the trace. --extra \
     forces registers the heuristics missed in; --exclude filters false \
     or irrelevant detections out (the section 4.2 patch facility)."
  in
  let extra_arg =
    Arg.(value & opt_all string [] & info [ "extra" ] ~docv:"SIG" ~doc:"Force a register in")
  in
  let exclude_arg =
    Arg.(value & opt_all string [] & info [ "exclude" ] ~docv:"SIG" ~doc:"Filter a detection out")
  in
  let run id extra exclude =
    let bug = find_bug id in
    let design = Bug.design_of bug ~buggy:true in
    let m = Option.get (Ast.find_module design bug.Bug.top) in
    let plan = Fpga_debug.Fsm_monitor.plan ~extra ~exclude m in
    if plan.Fpga_debug.Fsm_monitor.fsms = [] then
      print_endline "no FSMs detected in this design"
    else (
      let instrumented = Fpga_debug.Fsm_monitor.instrument plan m in
      let design' =
        { Ast.modules =
            List.map (fun x -> if x == m then instrumented else x) design.Ast.modules }
      in
      let report = Bug.run_design bug design' in
      List.iter
        (fun tr ->
          print_endline (Fpga_debug.Fsm_monitor.transition_to_string tr))
        (Fpga_debug.Fsm_monitor.transitions plan report.Bug.log);
      List.iter
        (fun (v, s) -> Printf.printf "final state of %s: %s\n" v s)
        (Fpga_debug.Fsm_monitor.final_states plan report.Bug.log))
  in
  Cmd.v (Cmd.info "fsm" ~doc) Term.(const run $ bug_arg $ extra_arg $ exclude_arg)

(* --- stats ---------------------------------------------------------- *)

let stats_cmd =
  let doc = "Run Statistics Monitor with the bug's event set." in
  let run id =
    let bug = find_bug id in
    let design = Bug.design_of bug ~buggy:true in
    let m = Option.get (Ast.find_module design bug.Bug.top) in
    let events =
      List.map
        (fun (name, signal) ->
          { Fpga_debug.Stat_monitor.event_name = name; trigger = Ast.Ident signal })
        bug.Bug.stat_events
    in
    let plan = Fpga_debug.Stat_monitor.plan m events in
    let instrumented = Fpga_debug.Stat_monitor.instrument plan m in
    let design' =
      { Ast.modules =
          List.map (fun x -> if x == m then instrumented else x) design.Ast.modules }
    in
    let sim = Fpga_sim.Testbench.of_design ~top:bug.Bug.top design' in
    let _ = Fpga_sim.Testbench.run ~max_cycles:bug.Bug.max_cycles sim bug.Bug.stimulus in
    List.iter
      (fun (name, n) -> Printf.printf "%-20s %d\n" name n)
      (Fpga_debug.Stat_monitor.counts plan sim)
  in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ bug_arg)

(* --- deps ----------------------------------------------------------- *)

let deps_cmd =
  let doc = "Print the dependency chain of the bug's target signal." in
  let target_arg =
    Arg.(value & opt (some string) None & info [ "target" ] ~docv:"SIGNAL" ~doc:"Target signal (defaults to the bug's)")
  in
  let cycles_arg =
    Arg.(value & opt int 8 & info [ "cycles" ] ~docv:"K" ~doc:"Backward cycle budget")
  in
  let data_only_arg =
    Arg.(value & flag & info [ "data-only" ] ~doc:"Ignore control dependencies")
  in
  let slices_arg =
    Arg.(value & flag
         & info [ "slices" ] ~doc:"Split partially-assigned variables (section 4.3)")
  in
  let run id target cycles data_only slice_precise =
    let bug = find_bug id in
    let design = Bug.design_of bug ~buggy:true in
    let m = Option.get (Ast.find_module design bug.Bug.top) in
    let target =
      match (target, bug.Bug.dep_target) with
      | Some t, _ -> t
      | None, Some t -> t
      | None, None ->
          prerr_endline "no dependency target; pass --target";
          exit 1
    in
    let plan =
      Fpga_debug.Dep_monitor.analyze ~design ~data_only ~slice_precise ~target
        ~cycles m
    in
    Printf.printf "dependency chain of %s within %d cycles:\n" target cycles;
    List.iter (fun s -> Printf.printf "  %s\n" s) plan.Fpga_debug.Dep_monitor.chain;
    (* run with monitoring and show the update trace *)
    let instrumented = Fpga_debug.Dep_monitor.instrument plan m in
    let design' =
      { Ast.modules =
          List.map (fun x -> if x == m then instrumented else x) design.Ast.modules }
    in
    let report = Bug.run_design bug design' in
    print_endline "update trace:";
    List.iter
      (fun u -> Printf.printf "  %s\n" (Fpga_debug.Dep_monitor.update_to_string u))
      (Fpga_debug.Dep_monitor.updates plan report.Bug.log)
  in
  Cmd.v (Cmd.info "deps" ~doc)
    Term.(const run $ bug_arg $ target_arg $ cycles_arg $ data_only_arg $ slices_arg)

(* --- losscheck ------------------------------------------------------ *)

let losscheck_cmd =
  let doc =
    "Localize data loss with LossCheck. The target is a testbed bug id, \
     or a Verilog file together with --top, --source, --valid, --sink \
     and a --stim file (the '@CYCLE sig=value' format of the sim \
     command)."
  in
  let top_arg =
    Arg.(value & opt string "top" & info [ "top" ] ~docv:"MODULE" ~doc:"Top module (file mode)")
  in
  let source_arg =
    Arg.(value & opt (some string) None & info [ "source" ] ~docv:"SIG" ~doc:"Source register/input")
  in
  let valid_arg =
    Arg.(value & opt (some string) None & info [ "valid" ] ~docv:"SIG" ~doc:"Source valid signal")
  in
  let sink_arg =
    Arg.(value & opt (some string) None & info [ "sink" ] ~docv:"SIG" ~doc:"Sink register")
  in
  let stim_arg =
    Arg.(value & opt (some string) None & info [ "stim" ] ~docv:"FILE" ~doc:"Stimulus file (file mode)")
  in
  let cycles_arg =
    Arg.(value & opt int 200 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to run (file mode)")
  in
  let print_result (r : Fpga_debug.Losscheck.result) =
    Printf.printf "generated checking logic: %d lines\n"
      r.Fpga_debug.Losscheck.generated_loc;
    List.iter
      (fun (c, reg) -> Printf.printf "raw alarm at cycle %d: %s\n" c reg)
      r.Fpga_debug.Losscheck.raw_alarms;
    List.iter
      (fun reg -> Printf.printf "suppressed (intentional drop): %s\n" reg)
      r.Fpga_debug.Losscheck.suppressed;
    match r.Fpga_debug.Losscheck.reported with
    | [] -> print_endline "no data loss reported"
    | regs ->
        List.iter
          (fun reg -> Printf.printf "potential data loss at: %s\n" reg)
          regs
  in
  let parse_stim_file path =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | at :: bindings when String.length at > 1 && at.[0] = '@' ->
                 Some
                   ( int_of_string (String.sub at 1 (String.length at - 1)),
                     List.filter_map
                       (fun b ->
                         match String.split_on_char '=' b with
                         | [ k; v ] when k <> "" -> Some (k, int_of_string v)
                         | _ -> None)
                       bindings )
             | _ -> None)
  in
  let run target top source valid sink stim cycles =
    if Sys.file_exists target then (
      match (source, valid, sink) with
      | Some source, Some valid, Some sink ->
          let design =
            Fpga_hdl.Parser.parse_design
              (In_channel.with_open_text target In_channel.input_all)
          in
          let table = match stim with Some p -> parse_stim_file p | None -> [] in
          let stimulus cycle =
            match List.assoc_opt cycle table with
            | Some bindings ->
                List.map
                  (fun (k, v) ->
                    let width =
                      match Fpga_hdl.Ast.find_module design top with
                      | Some m ->
                          Option.value (Fpga_hdl.Ast.signal_width m k) ~default:32
                      | None -> 32
                    in
                    (k, Fpga_bits.Bits.of_int ~width v))
                  bindings
            | None -> []
          in
          let spec =
            { Fpga_debug.Losscheck.source; valid = Ast.Ident valid; sink }
          in
          print_result
            (Fpga_debug.Losscheck.localize ~max_cycles:cycles ~top ~spec
               ~stimulus design)
      | _ ->
          prerr_endline "file mode needs --source, --valid, and --sink";
          exit 1)
    else
      let bug = find_bug target in
      match bug.Bug.loss_spec with
      | None ->
          Printf.eprintf "%s is not a data-loss bug\n" bug.Bug.id;
          exit 1
      | Some spec ->
          let design = Bug.design_of bug ~buggy:true in
          print_result
            (Fpga_debug.Losscheck.localize ~ground_truth:bug.Bug.ground_truth
               ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
               ~stimulus:bug.Bug.stimulus design)
  in
  Cmd.v (Cmd.info "losscheck" ~doc)
    Term.(
      const run $ bug_arg $ top_arg $ source_arg $ valid_arg $ sink_arg
      $ stim_arg $ cycles_arg)

(* --- instrument ----------------------------------------------------- *)

let instrument_cmd =
  let doc =
    "Apply the bug's debug recipe (monitors + SignalCat) and emit the \
     instrumented Verilog."
  in
  let run id out buffer =
    let bug = find_bug id in
    let r = Fpga_testbed.Recipe.apply ~buffer_depth:buffer bug in
    let text = Fpga_hdl.Pp_verilog.module_to_string r.Fpga_testbed.Recipe.on_fpga in
    (match out with
    | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s (%d lines; %d monitor + %d recording lines added)\n"
          path
          (List.length (String.split_on_char '\n' text))
          r.Fpga_testbed.Recipe.monitor_loc r.Fpga_testbed.Recipe.recording_loc
    | None -> print_string text)
  in
  Cmd.v (Cmd.info "instrument" ~doc) Term.(const run $ bug_arg $ out_arg $ buffer_arg)

(* --- vcd ------------------------------------------------------------ *)

let vcd_cmd =
  let doc =
    "Run the buggy design and dump a VCD waveform. --from starts \
     waveform sampling at a cycle index, producing the windowed \
     straight-run reference that `fpga-debug replay` output is diffed \
     against."
  in
  let from_arg =
    Arg.(value & opt int 0
         & info [ "from" ] ~docv:"CYCLE" ~doc:"Start sampling at this cycle")
  in
  let run id out from =
    let bug = find_bug id in
    let report =
      Bug.run_design ~vcd:true ~vcd_from:from bug (Bug.design_of bug ~buggy:true)
    in
    let path = Option.value out ~default:(bug.Bug.id ^ ".vcd") in
    let oc = open_out path in
    output_string oc (Option.value report.Bug.vcd ~default:"");
    close_out oc;
    Printf.printf "wrote %s (cycles %d..%d)\n" path from report.Bug.cycles
  in
  Cmd.v (Cmd.info "vcd" ~doc) Term.(const run $ bug_arg $ out_arg $ from_arg)

(* --- checkpoint ------------------------------------------------------ *)

let checkpoint_cmd =
  let doc =
    "Run the buggy design while capturing a periodic checkpoint stream \
     to disk. Each snapshot is a versioned, content-hashed file that \
     `fpga-debug replay` can restore bit-identically."
  in
  let every_arg =
    Arg.(value & opt int 50
         & info [ "every" ] ~docv:"K" ~doc:"Checkpoint every K cycles")
  in
  let dir_arg =
    Arg.(value & opt string "checkpoints"
         & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory")
  in
  let run id every dir =
    let bug = find_bug id in
    if every <= 0 then (
      prerr_endline "--every must be positive";
      exit 1);
    let module Replay = Fpga_testbed.Replay in
    let module Checkpoint = Fpga_sim.Checkpoint in
    let rc = Replay.record ~every bug in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (ck : Checkpoint.t) ->
        let path =
          Filename.concat dir
            (Printf.sprintf "%s-c%d.fdc" bug.Bug.id ck.Checkpoint.ck_cycle)
        in
        Checkpoint.save path ck;
        Printf.printf "wrote %s (cycle %d, %s)\n" path ck.Checkpoint.ck_cycle
          (Checkpoint.content_hash ck))
      rc.Replay.rec_checkpoints;
    Printf.printf "%d checkpoints over %d cycles\n"
      (List.length rc.Replay.rec_checkpoints)
      rc.Replay.rec_report.Bug.cycles
  in
  Cmd.v (Cmd.info "checkpoint" ~doc)
    Term.(const run $ bug_arg $ every_arg $ dir_arg)

(* --- replay ---------------------------------------------------------- *)

let replay_cmd =
  let doc =
    "Time-travel replay: restore a checkpoint and re-simulate the \
     window with a full waveform of all signals (byte-identical to the \
     straight run), or --bisect the checkpoint stream for the first \
     failing cycle."
  in
  let from_arg =
    Arg.(value & opt (some string) None
         & info [ "from" ] ~docv:"CKPT"
             ~doc:"Checkpoint file to restore (from `fpga-debug checkpoint`)")
  in
  let window_arg =
    Arg.(value & opt (some int) None
         & info [ "window" ] ~docv:"N"
             ~doc:"Replay at most N cycles past the snapshot (default: the \
                   bug's own cycle budget)")
  in
  let bisect_arg =
    Arg.(value & flag
         & info [ "bisect" ]
             ~doc:"Binary-search the checkpoint stream for the first cycle \
                   at which the buggy run diverges from the fixed \
                   reference")
  in
  let every_arg =
    Arg.(value & opt int 50
         & info [ "every" ] ~docv:"K"
             ~doc:"Checkpoint interval for --bisect")
  in
  let run id from window bisect every out trace trace_clock =
    let bug = find_bug id in
    let module Replay = Fpga_testbed.Replay in
    let module Checkpoint = Fpga_sim.Checkpoint in
    try
      if bisect then (
        let r =
          traced ~trace ~clock:trace_clock (fun () -> Replay.bisect ~every bug)
        in
        print_endline r.Replay.bi_detail;
        match r.Replay.bi_first_failing with
        | Some c -> Printf.printf "first failing cycle: %d\n" c
        | None ->
            print_endline "no divergence found";
            exit 1)
      else
        match from with
        | None ->
            prerr_endline "replay needs --from CKPT (or --bisect)";
            exit 1
        | Some path ->
            let ck = Checkpoint.load path in
            let report =
              traced ~trace ~clock:trace_clock (fun () ->
                  Replay.replay ?window ~from:ck bug)
            in
            let out =
              Option.value out
                ~default:
                  (Printf.sprintf "%s-replay-c%d.vcd" bug.Bug.id
                     ck.Checkpoint.ck_cycle)
            in
            let oc = open_out out in
            output_string oc (Option.value report.Bug.vcd ~default:"");
            close_out oc;
            Printf.printf "restored %s at cycle %d (tag %s)\n" path
              ck.Checkpoint.ck_cycle ck.Checkpoint.ck_tag;
            Printf.printf "replayed cycles %d..%d; wrote %s\n"
              ck.Checkpoint.ck_cycle report.Bug.cycles out
    with Checkpoint.Checkpoint_error msg ->
      Printf.eprintf "checkpoint error: %s\n" msg;
      exit 1
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(const run $ bug_arg $ from_arg $ window_arg $ bisect_arg
          $ every_arg $ out_arg $ trace_arg $ trace_clock_arg)

(* --- profile -------------------------------------------------------- *)

let profile_cmd =
  let doc =
    "Run a bug's buggy design with telemetry enabled and report kernel \
     statistics: settle rounds, nodes evaluated vs. skipped, the \
     hottest signals by toggle count, and event-bus occupancy versus \
     --buffer depth."
  in
  let cycles_arg =
    Arg.(value & opt int 200 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to run")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE" ~doc:"Also write the JSON report")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc:"Hottest signals to show")
  in
  let run id cycles json buffer top_k trace trace_clock kernel =
    let bug = find_bug id in
    let p =
      traced ~trace ~clock:trace_clock (fun () ->
          Fpga_report.Profile.run ?kernel ~cycles ~buffer ~top_k bug)
    in
    Fpga_report.Profile.print p;
    match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Fpga_report.Profile.to_json p);
        close_out oc;
        Printf.printf "\nwrote %s\n" path
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ bug_arg $ cycles_arg $ json_arg $ buffer_arg $ top_arg
          $ trace_arg $ trace_clock_arg $ kernel_arg)

(* --- lint ------------------------------------------------------------ *)

let lint_cmd =
  let doc = "Run the structural linter over a testbed bug or a Verilog file." in
  let target_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"BUG|FILE" ~doc:"Testbed bug id or path to a .v file")
  in
  let run target =
    let design =
      if Sys.file_exists target then
        Fpga_hdl.Parser.parse_design (In_channel.with_open_text target In_channel.input_all)
      else Bug.design_of (find_bug target) ~buggy:true
    in
    List.iter
      (fun (mod_name, findings) ->
        if findings <> [] then (
          Printf.printf "module %s:\n" mod_name;
          List.iter
            (fun f ->
              Printf.printf "  %s\n" (Fpga_analysis.Lint.finding_to_string f))
            findings))
      (Fpga_analysis.Lint.check_design design)
  in
  Cmd.v (Cmd.info "lint" ~doc) Term.(const run $ target_arg)

(* --- wavediff --------------------------------------------------------- *)

let wavediff_cmd =
  let doc =
    "Capture waveforms of the buggy and fixed runs and report where they \
     first diverge."
  in
  let run id =
    let bug = find_bug id in
    let signals =
      (* observe the design's output ports *)
      let design = Bug.design_of bug ~buggy:true in
      let m = Option.get (Ast.find_module design bug.Bug.top) in
      List.filter_map
        (fun (p : Ast.port) ->
          if p.Ast.dir = Ast.Output then Some p.Ast.port_name else None)
        m.Ast.ports
    in
    let cap ~buggy =
      Fpga_sim.Waveform.capture ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top
        ~signals (Bug.design_of bug ~buggy) bug.Bug.stimulus
    in
    let buggy = cap ~buggy:true and fixed = cap ~buggy:false in
    (match Fpga_sim.Waveform.first_divergence buggy fixed with
    | Some d ->
        Printf.printf "first divergence (buggy vs fixed): %s\n"
          (Fpga_sim.Waveform.divergence_to_string d);
        let from_cycle = max 0 (d.Fpga_sim.Waveform.cycle - 4) in
        print_endline "buggy run around the divergence:";
        print_string (Fpga_sim.Waveform.render ~from_cycle ~cycles:16 buggy);
        print_endline "fixed run around the divergence:";
        print_string (Fpga_sim.Waveform.render ~from_cycle ~cycles:16 fixed)
    | None -> print_endline "the runs never diverge on the output ports")
  in
  Cmd.v (Cmd.info "wavediff" ~doc) Term.(const run $ bug_arg)

(* --- snippets ---------------------------------------------------------- *)

let snippets_cmd =
  let doc = "Show the explanatory buggy/fixed snippet for a bug subclass." in
  let which_arg =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"SUBCLASS" ~doc:"Subclass name fragment (e.g. overflow); omit to list all")
  in
  let run which =
    let module S = Fpga_study.Snippets in
    let contains hay needle =
      let hay = String.lowercase_ascii hay and needle = String.lowercase_ascii needle in
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    match which with
    | None ->
        List.iter
          (fun (s : S.t) ->
            Printf.printf "%-28s %s\n"
              (Fpga_study.Taxonomy.subclass_name s.S.subclass)
              s.S.title)
          S.all
    | Some fragment -> (
        match
          List.find_opt
            (fun (s : S.t) ->
              contains (Fpga_study.Taxonomy.subclass_name s.S.subclass) fragment)
            S.all
        with
        | None -> Printf.eprintf "no snippet matches %s\n" fragment
        | Some s ->
            Printf.printf "== %s: %s ==\n%s\n" 
              (Fpga_study.Taxonomy.subclass_name s.S.subclass) s.S.title
              s.S.explanation;
            print_endline "--- buggy ---";
            print_string s.S.buggy;
            print_endline "--- fixed ---";
            print_string s.S.fixed)
  in
  Cmd.v (Cmd.info "snippets" ~doc) Term.(const run $ which_arg)

(* --- sim (user designs) ------------------------------------------------ *)

let sim_cmd =
  let doc =
    "Simulate a Verilog file. The optional stimulus file has lines of \
     the form '@CYCLE sig=value sig=value ...' (values decimal or 0x \
     hex); bindings persist until overwritten. Watched signals print on \
     change."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Verilog source")
  in
  let top_arg =
    Arg.(value & opt string "top" & info [ "top" ] ~docv:"MODULE" ~doc:"Top module")
  in
  let cycles_arg =
    Arg.(value & opt int 100 & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to run")
  in
  let stim_arg =
    Arg.(value & opt (some file) None & info [ "stim" ] ~docv:"FILE" ~doc:"Stimulus file")
  in
  let watch_arg =
    Arg.(value & opt (some string) None
         & info [ "watch" ] ~docv:"SIGS" ~doc:"Comma-separated signals to print (default: outputs)")
  in
  let vcd_arg =
    Arg.(value & opt (some string) None & info [ "vcd" ] ~docv:"FILE" ~doc:"Dump a VCD waveform")
  in
  let parse_stim path =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" || line.[0] = '#' then None
           else
             match String.split_on_char ' ' line with
             | at :: bindings when String.length at > 1 && at.[0] = '@' ->
                 let cycle = int_of_string (String.sub at 1 (String.length at - 1)) in
                 let parsed =
                   List.filter_map
                     (fun b ->
                       match String.split_on_char '=' b with
                       | [ k; v ] when k <> "" -> Some (k, int_of_string v)
                       | _ -> None)
                     bindings
                 in
                 Some (cycle, parsed)
             | _ -> None)
  in
  let run file top cycles stim watch vcd_out trace trace_clock kernel =
    traced ~trace ~clock:trace_clock @@ fun () ->
    let module Telemetry = Fpga_telemetry.Telemetry in
    let design =
      Telemetry.span "parse" @@ fun () ->
      Fpga_hdl.Parser.parse_design
        (In_channel.with_open_text file In_channel.input_all)
    in
    let flat =
      Telemetry.span "elaborate" @@ fun () ->
      Fpga_sim.Elaborate.elaborate design ~top
    in
    let sim =
      match kernel with
      | Some kernel -> Fpga_sim.Simulator.create ~kernel flat
      | None -> Fpga_sim.Simulator.create flat
    in
    let vcd = Option.map (fun _ -> Fpga_sim.Vcd.create flat) vcd_out in
    let stim_table = match stim with Some p -> parse_stim p | None -> [] in
    let watched =
      match watch with
      | Some s -> String.split_on_char ',' s |> List.map String.trim
      | None -> List.map fst flat.Fpga_sim.Elaborate.f_outputs
    in
    Fpga_sim.Simulator.on_display sim (fun c t ->
        Printf.printf "[cycle %d] %s\n" c t);
    let prev = Hashtbl.create 8 in
    for i = 0 to cycles - 1 do
      (match List.assoc_opt i stim_table with
      | Some bindings ->
          List.iter
            (fun (k, v) -> Fpga_sim.Simulator.set_input_int sim k v)
            bindings
      | None -> ());
      Fpga_sim.Simulator.step sim;
      Option.iter (fun w -> Fpga_sim.Vcd.sample w sim) vcd;
      List.iter
        (fun sig_ ->
          let v = Fpga_sim.Simulator.read_int sim sig_ in
          let changed =
            match Hashtbl.find_opt prev sig_ with
            | Some p -> p <> v
            | None -> true
          in
          if changed then (
            Hashtbl.replace prev sig_ v;
            Printf.printf "cycle %3d: %s = %d\n" i sig_ v))
        watched
    done;
    (match (vcd, vcd_out) with
    | Some w, Some path ->
        Fpga_sim.Vcd.save w path;
        Printf.printf "wrote %s\n" path
    | _ -> ());
    if Fpga_sim.Simulator.finished sim then print_endline "design executed $finish"
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(const run $ file_arg $ top_arg $ cycles_arg $ stim_arg $ watch_arg
          $ vcd_arg $ trace_arg $ trace_clock_arg $ kernel_arg)

(* --- export ----------------------------------------------------------- *)

let export_cmd =
  let doc =
    "Write every testbed bug's buggy and fixed Verilog (and the subclass \
     snippets) to a directory, like the paper's artifact layout."
  in
  let dir_arg =
    Arg.(value & opt string "testbed-export"
         & info [ "o"; "output" ] ~docv:"DIR" ~doc:"Output directory")
  in
  let run dir =
    let write path text =
      let oc = open_out path in
      output_string oc text;
      close_out oc
    in
    let mkdir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755 in
    mkdir dir;
    List.iter
      (fun (b : Bug.t) ->
        write (Filename.concat dir (b.Bug.id ^ "_buggy.v")) b.Bug.buggy_src;
        write (Filename.concat dir (b.Bug.id ^ "_fixed.v")) b.Bug.fixed_src)
      Registry.all_with_extended;
    let snip_dir = Filename.concat dir "snippets" in
    mkdir snip_dir;
    List.iter
      (fun (s : Fpga_study.Snippets.t) ->
        let slug =
          String.map
            (fun c -> if c = ' ' || c = '-' then '_' else Char.lowercase_ascii c)
            (Fpga_study.Taxonomy.subclass_name s.Fpga_study.Snippets.subclass)
        in
        write (Filename.concat snip_dir (slug ^ "_buggy.v"))
          s.Fpga_study.Snippets.buggy;
        write (Filename.concat snip_dir (slug ^ "_fixed.v"))
          s.Fpga_study.Snippets.fixed)
      Fpga_study.Snippets.all;
    Printf.printf "wrote %d designs and %d snippets under %s/\n"
      (2 * List.length Registry.all_with_extended)
      (2 * List.length Fpga_study.Snippets.all)
      dir
  in
  Cmd.v (Cmd.info "export" ~doc) Term.(const run $ dir_arg)

(* --- campaign ------------------------------------------------------- *)

let campaign_cmd =
  let doc =
    "Run a batch simulation campaign over the testbed on a pool of \
     domains: differential reproduction of every selected bug (with \
     waveform capture), optional event-vs-brute kernel differentials, \
     and optional cycle-budget sweeps. Results are collected in job \
     order and are identical to a serial run."
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker domains (default: the machine's recommended count)")
  in
  let bugs_arg =
    Arg.(value & opt (some string) None
         & info [ "bugs" ] ~docv:"LIST"
             ~doc:"Comma-separated bug ids (default: all 20 Table 2 bugs)")
  in
  let differential_arg =
    Arg.(value & flag
         & info [ "differential" ]
             ~doc:"Also run primary-vs-brute kernel differential jobs")
  in
  let sweep_arg =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"LIST"
             ~doc:"Comma-separated cycle budgets; one sweep job per \
                   (bug, budget)")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the fpga-debug-campaign/1 JSON report")
  in
  let replay_arg =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"K"
             ~doc:"Also run a checkpoint/replay determinism job per bug \
                   (checkpoint every K cycles)")
  in
  let run jobs bugs differential sweep json replay_every trace trace_clock
      kernel =
    let bugs =
      match bugs with
      | None -> Registry.all
      | Some list -> (
          let ids = String.split_on_char ',' list |> List.map String.trim in
          match Registry.find_many ids with
          | found, [] -> found
          | _, unknown ->
              Printf.eprintf "unknown bug id%s: %s\n"
                (if List.length unknown = 1 then "" else "s")
                (String.concat ", " unknown);
              exit 1)
    in
    let sweeps =
      match sweep with
      | None -> []
      | Some list ->
          String.split_on_char ',' list |> List.map String.trim
          |> List.map int_of_string
    in
    let c =
      traced ~trace ~clock:trace_clock
        ~jobs_of:Fpga_campaign.Campaign.trace_segments (fun () ->
          Fpga_campaign.Campaign.run ?domains:jobs ?kernel ~differential
            ~sweeps ?replay_every bugs)
    in
    Fpga_campaign.Campaign.print c;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Fpga_campaign.Campaign.to_json c);
        close_out oc;
        Printf.printf "\nwrote %s\n" path);
    if not (Fpga_campaign.Campaign.ok c) then exit 1
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(const run $ jobs_arg $ bugs_arg $ differential_arg $ sweep_arg
          $ json_arg $ replay_arg $ trace_arg $ trace_clock_arg $ kernel_arg)

(* --- fuzz ----------------------------------------------------------- *)

let fuzz_cmd =
  let doc =
    "Run a differential fuzzing campaign: deterministic seed-driven \
     mutants of the testbed designs, each valid mutant simulated under \
     the primary (--kernel) vs brute-force kernels and with telemetry \
     on vs off on a pool of domains. Any disagreement is a kernel bug found \
     by the system itself; it is greedily minimized and dumped as a \
     plain-Verilog reproducer. The same seed replays the same corpus, \
     classifications, and JSON byte-identically at any --jobs width."
  in
  let seed_arg =
    Arg.(value & opt int 1
         & info [ "seed" ] ~docv:"N" ~doc:"Campaign seed (mutant index i \
                                           uses sub-seed derive(N, i))")
  in
  let mutants_arg =
    Arg.(value & opt int 200
         & info [ "mutants" ] ~docv:"K" ~doc:"Number of mutants to generate")
  in
  let jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "jobs" ] ~docv:"N"
             ~doc:"Worker domains (default: the machine's recommended count)")
  in
  let json_arg =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the fpga-debug-fuzz/2 JSON report")
  in
  let repro_arg =
    Arg.(value & opt (some string) None
         & info [ "repro-dir" ] ~docv:"DIR"
             ~doc:"Write a .v reproducer per kernel mismatch into DIR")
  in
  let run seed mutants jobs json repro_dir trace trace_clock kernel =
    if mutants <= 0 then (
      Printf.eprintf "--mutants must be positive\n";
      exit 1);
    let fc =
      traced ~trace ~clock:trace_clock
        ~jobs_of:Fpga_campaign.Campaign.fuzz_trace_segments (fun () ->
          Fpga_campaign.Campaign.run_fuzz ?domains:jobs ?kernel ~seed ~mutants
            ())
    in
    Fpga_campaign.Campaign.print_fuzz fc;
    (match json with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (Fpga_campaign.Campaign.fuzz_to_json fc);
        close_out oc;
        Printf.printf "\nwrote %s\n" path);
    (match repro_dir with
    | None -> ()
    | Some dir ->
        let findings = Fpga_campaign.Campaign.fuzz_findings fc in
        if findings <> [] then (
          (try Unix.mkdir dir 0o755
           with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
          List.iter
            (fun (f : Fpga_fuzz.Fuzz.result) ->
              match f.Fpga_fuzz.Fuzz.r_repro with
              | None -> ()
              | Some src ->
                  let path =
                    Filename.concat dir
                      (Printf.sprintf "fuzz-%s-seed%d-%d.v"
                         f.Fpga_fuzz.Fuzz.r_bug seed f.Fpga_fuzz.Fuzz.r_index)
                  in
                  let oc = open_out path in
                  output_string oc src;
                  close_out oc;
                  Printf.printf "wrote %s\n" path)
            findings));
    if not (Fpga_campaign.Campaign.fuzz_ok fc) then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(const run $ seed_arg $ mutants_arg $ jobs_arg $ json_arg $ repro_arg
          $ trace_arg $ trace_clock_arg $ kernel_arg)

(* --- trace-check ----------------------------------------------------- *)

let trace_check_cmd =
  let doc =
    "Validate a --trace JSON file: parses it (strictly), checks the \
     fpga-debug-trace/1 envelope and every event's ph/pid/tid/ts \
     shape, and verifies B/E span balance per track. Exits non-zero on \
     any malformed input — the reader-side gate the trace-smoke CI job \
     runs over freshly exported traces."
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Trace JSON file (from --trace)")
  in
  let run file =
    let text = In_channel.with_open_text file In_channel.input_all in
    match Trace_export.validate text with
    | Ok s ->
        Printf.printf
          "%s: valid %s (%d events: %d spans, %d counter samples, %d \
           instants, %d tracks)\n"
          file Trace_export.schema s.Trace_export.v_events
          s.Trace_export.v_spans s.Trace_export.v_counters
          s.Trace_export.v_instants s.Trace_export.v_tracks
    | Error e ->
        Printf.eprintf "%s: invalid trace: %s\n" file e;
        exit 1
  in
  Cmd.v (Cmd.info "trace-check" ~doc) Term.(const run $ file_arg)

(* --- report --------------------------------------------------------- *)

let report_cmd =
  let doc = "Regenerate a table or figure from the paper's evaluation." in
  let which_arg =
    Arg.(
      required
      & pos 0 (some (enum
                       [ ("table1", `T1); ("table2", `T2); ("fig2", `F2);
                         ("fig3", `F3); ("effectiveness", `Eff); ("freq", `Freq);
                         ("ablations", `Abl); ("all", `All) ]))
          None
      & info [] ~docv:"REPORT"
          ~doc:"table1|table2|fig2|fig3|effectiveness|freq|ablations|all")
  in
  let run which =
    let module R = Fpga_report.Report in
    match which with
    | `T1 -> R.table1 ()
    | `T2 -> R.table2 ()
    | `F2 -> R.figure2 ()
    | `F3 -> R.figure3 ()
    | `Eff -> R.effectiveness ()
    | `Freq -> R.frequency ()
    | `Abl -> R.ablations ()
    | `All ->
        R.table1 ();
        R.table2 ();
        R.figure2 ();
        R.figure3 ();
        R.effectiveness ();
        R.frequency ();
        R.ablations ()
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ which_arg)

let () =
  let doc = "software-style debugging tools for FPGA designs (ASPLOS '22 reproduction)" in
  let info = Cmd.info "fpga-debug" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; repro_cmd; fsm_cmd; stats_cmd; deps_cmd; losscheck_cmd;
            instrument_cmd; vcd_cmd; checkpoint_cmd; replay_cmd; profile_cmd;
            lint_cmd; wavediff_cmd; snippets_cmd; export_cmd; sim_cmd;
            report_cmd; campaign_cmd; fuzz_cmd; trace_check_cmd;
          ]))
