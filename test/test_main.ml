let () =
  Alcotest.run "fpga-debug"
    [
      ("bits", Test_bits.suite);
      ("hdl", Test_hdl.suite);
      ("sim", Test_sim.suite);
      ("analysis", Test_analysis.suite);
      ("core", Test_core.suite);
      ("resources", Test_resources.suite);
      ("study", Test_study.suite);
      ("testbed", Test_testbed.suite);
      ("report", Test_report.suite);
      ("telemetry", Test_telemetry.suite);
      ("campaign", Test_campaign.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("fuzz", Test_fuzz.suite);
      ("trace", Test_trace.suite);
    ]
