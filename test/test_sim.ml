(* Tests for elaboration and the cycle-accurate simulator. *)

open Fpga_hdl
open Fpga_sim
module Bits = Fpga_bits.Bits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let b w v = Bits.of_int ~width:w v
let sim_of src top = Testbench.of_source ~top src

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_counter () =
  let sim =
    sim_of
      {|
module top (input clk, input reset, input enable, output reg [7:0] count);
  always @(posedge clk) begin
    if (reset) count <= 8'd0;
    else if (enable) count <= count + 8'd1;
  end
endmodule
|}
      "top"
  in
  Simulator.set_input sim "reset" (b 1 1);
  Simulator.step sim;
  Simulator.set_input sim "reset" (b 1 0);
  Simulator.set_input sim "enable" (b 1 1);
  for _ = 1 to 5 do
    Simulator.step sim
  done;
  check_int "count after 5 enables" 5 (Simulator.read_int sim "count");
  Simulator.set_input sim "enable" (b 1 0);
  Simulator.step sim;
  check_int "count holds" 5 (Simulator.read_int sim "count")

let test_nonblocking_swap () =
  (* classic: non-blocking swap exchanges values every cycle *)
  let sim =
    sim_of
      {|
module top (input clk, output [7:0] xa, output [7:0] xb);
  reg [7:0] a = 8'd1;
  reg [7:0] b = 8'd2;
  assign xa = a;
  assign xb = b;
  always @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule
|}
      "top"
  in
  Simulator.step sim;
  check_int "a swapped" 2 (Simulator.read_int sim "xa");
  check_int "b swapped" 1 (Simulator.read_int sim "xb");
  Simulator.step sim;
  check_int "a swapped back" 1 (Simulator.read_int sim "xa")

let test_blocking_in_seq () =
  (* blocking assignment visible to the following statement *)
  let sim =
    sim_of
      {|
module top (input clk, output reg [7:0] y);
  reg [7:0] t;
  always @(posedge clk) begin
    t = 8'd7;
    y <= t + 8'd1;
  end
endmodule
|}
      "top"
  in
  Simulator.step sim;
  check_int "blocking visible" 8 (Simulator.read_int sim "y")

let test_comb_chain () =
  let sim =
    sim_of
      {|
module top (input [7:0] a, output [7:0] o);
  wire [7:0] w1, w2;
  assign o = w2 + 8'd1;
  assign w2 = w1 * 8'd2;
  assign w1 = a + 8'd3;
endmodule
|}
      "top"
  in
  Simulator.set_input sim "a" (b 8 4);
  Simulator.step sim;
  (* ((4+3)*2)+1 = 15, assigns listed in anti-dependency order *)
  check_int "comb chain" 15 (Simulator.read_int sim "o")

let test_comb_cycle_detected () =
  let raised =
    try
      ignore
        (sim_of
           {|
module top (input a, output x);
  wire y;
  assign x = y & a;
  assign y = x | a;
endmodule
|}
           "top");
      false
    with Simulator.Combinational_cycle _ -> true
  in
  check_bool "cycle detected" true raised

let test_hierarchy () =
  let sim =
    sim_of
      {|
module adder (input [7:0] x, input [7:0] y, output [7:0] s);
  assign s = x + y;
endmodule

module top (input clk, input [7:0] a, output [7:0] out);
  wire [7:0] mid;
  adder u1 (.x(a), .y(8'd10), .s(mid));
  adder u2 (.x(mid), .y(a), .s(out));
endmodule
|}
      "top"
  in
  Simulator.set_input sim "a" (b 8 5);
  Simulator.step sim;
  check_int "two adders" 20 (Simulator.read_int sim "out")

let test_parameter_override () =
  let sim =
    sim_of
      {|
module incr #(parameter STEP = 1) (input clk, output reg [7:0] v);
  always @(posedge clk) v <= v + STEP;
endmodule

module top (input clk, output [7:0] v1, output [7:0] v3);
  incr u1 (.clk(clk), .v(v1));
  incr #(.STEP(3)) u3 (.clk(clk), .v(v3));
endmodule
|}
      "top"
  in
  Simulator.run sim 4;
  check_int "default step" 4 (Simulator.read_int sim "v1");
  check_int "overridden step" 12 (Simulator.read_int sim "v3")

let test_memory_overflow_semantics () =
  (* Power-of-two memory wraps; non-power-of-two drops the write
     (bug study section 3.2.1). *)
  let src size =
    Printf.sprintf
      {|
module top (input clk, input [7:0] idx, input [7:0] din, input we,
            input [7:0] ridx, output [7:0] dout);
  reg [7:0] m [0:%d];
  assign dout = m[ridx];
  always @(posedge clk) if (we) m[idx] <= din;
endmodule
|}
      (size - 1)
  in
  (* size 8 (pow2): write at 9 lands at 1 *)
  let sim = sim_of (src 8) "top" in
  Simulator.set_input sim "we" (b 1 1);
  Simulator.set_input sim "idx" (b 8 9);
  Simulator.set_input sim "din" (b 8 0x5A);
  Simulator.step sim;
  Simulator.set_input sim "we" (b 1 0);
  Simulator.set_input sim "ridx" (b 8 1);
  Simulator.step sim;
  check_int "pow2 wraps" 0x5A (Simulator.read_int sim "dout");
  (* size 6 (non-pow2): write at 9 dropped *)
  let sim = sim_of (src 6) "top" in
  Simulator.set_input sim "we" (b 1 1);
  Simulator.set_input sim "idx" (b 8 9);
  Simulator.set_input sim "din" (b 8 0x5A);
  Simulator.step sim;
  Simulator.set_input sim "we" (b 1 0);
  for k = 0 to 5 do
    Simulator.set_input sim "ridx" (b 8 k);
    Simulator.step sim;
    check_int
      (Printf.sprintf "non-pow2 untouched word %d" k)
      0
      (Simulator.read_int sim "dout")
  done

let test_display_log () =
  let sim =
    sim_of
      {|
module top (input clk, output reg [7:0] n);
  always @(posedge clk) begin
    n <= n + 8'd1;
    if (n == 8'd2) $display("n reached two: %d (hex %h)", n, n);
  end
endmodule
|}
      "top"
  in
  Simulator.run sim 5;
  match Simulator.log sim with
  | [ (cycle, text) ] ->
      check_int "display at cycle" 2 cycle;
      Alcotest.(check string) "text" "n reached two: 2 (hex 02)" text
  | l -> Alcotest.failf "expected one log entry, got %d" (List.length l)

let test_finish () =
  let sim =
    sim_of
      {|
module top (input clk, output reg [7:0] n);
  always @(posedge clk) begin
    n <= n + 8'd1;
    if (n == 8'd3) $finish;
  end
endmodule
|}
      "top"
  in
  Simulator.run sim 100;
  check_bool "finished" true (Simulator.finished sim);
  check_bool "stopped early" true (Simulator.cycle sim < 10)

let test_scfifo () =
  let sim =
    sim_of
      {|
module top (input clk, input [7:0] din, input push, input pop,
            output [7:0] front, output is_empty, output is_full);
  scfifo #(.lpm_width(8), .lpm_numwords(4)) q0 (
    .clock(clk), .data(din), .wrreq(push), .rdreq(pop),
    .q(front), .empty(is_empty), .full(is_full));
endmodule
|}
      "top"
  in
  check_int "initially empty" 1 (Simulator.read_int sim "is_empty");
  Simulator.set_input sim "push" (b 1 1);
  Simulator.set_input sim "din" (b 8 11);
  Simulator.step sim;
  Simulator.set_input sim "din" (b 8 22);
  Simulator.step sim;
  Simulator.set_input sim "push" (b 1 0);
  Simulator.step sim;
  check_int "not empty" 0 (Simulator.read_int sim "is_empty");
  check_int "show-ahead front" 11 (Simulator.read_int sim "front");
  Simulator.set_input sim "pop" (b 1 1);
  Simulator.step sim;
  check_int "front after pop" 22 (Simulator.read_int sim "front");
  Simulator.step sim;
  Simulator.set_input sim "pop" (b 1 0);
  Simulator.step sim;
  check_int "empty again" 1 (Simulator.read_int sim "is_empty");
  (* fill to full *)
  Simulator.set_input sim "push" (b 1 1);
  Simulator.run sim 6;
  check_int "full" 1 (Simulator.read_int sim "is_full")

let test_altsyncram () =
  let sim =
    sim_of
      {|
module top (input clk, input [3:0] addr, input [7:0] din, input we,
            output [7:0] q);
  altsyncram #(.width_a(8), .numwords_a(16)) ram (
    .clock0(clk), .address_a(addr), .data_a(din), .wren_a(we), .q_a(q));
endmodule
|}
      "top"
  in
  Simulator.set_input sim "we" (b 1 1);
  Simulator.set_input sim "addr" (b 4 3);
  Simulator.set_input sim "din" (b 8 99);
  Simulator.step sim;
  Simulator.set_input sim "we" (b 1 0);
  Simulator.step sim;
  (* registered read: q shows word 3 after a cycle with addr=3 *)
  check_int "ram readback" 99 (Simulator.read_int sim "q")

let test_concat_lvalue () =
  let sim =
    sim_of
      {|
module top (input clk, input [7:0] a, input [7:0] bb, output reg co,
            output reg [7:0] s);
  always @(posedge clk) {co, s} <= a + bb;
endmodule
|}
      "top"
  in
  Simulator.set_input sim "a" (b 8 200);
  Simulator.set_input sim "bb" (b 8 100);
  Simulator.step sim;
  check_int "sum low bits" ((200 + 100) land 0xFF) (Simulator.read_int sim "s");
  check_int "carry out" 1 (Simulator.read_int sim "co")

let stuck_src =
  {|
module top (input clk, input go, output reg done_flag);
  always @(posedge clk) if (go) done_flag <= 1'b1;
endmodule
|}

let test_testbench_stuck_detection () =
  let outcome =
    Testbench.run ~max_cycles:50
      ~until:(fun s -> Simulator.read_int s "done_flag" = 1)
      (sim_of stuck_src "top")
      (Testbench.const_stimulus [ ("go", b 1 0) ])
  in
  check_bool "stuck when go never set" true outcome.Testbench.stuck;
  let outcome2 =
    Testbench.run ~max_cycles:50
      ~until:(fun s -> Simulator.read_int s "done_flag" = 1)
      (sim_of stuck_src "top")
      (Testbench.const_stimulus [ ("go", b 1 1) ])
  in
  check_bool "not stuck when go set" false outcome2.Testbench.stuck

let test_vcd () =
  let design =
    Parser.parse_design
      {|
module top (input clk, output reg [3:0] n);
  always @(posedge clk) n <= n + 4'd1;
endmodule
|}
  in
  let flat = Elaborate.elaborate design ~top:"top" in
  let sim = Simulator.create flat in
  let vcd = Vcd.create flat in
  for _ = 1 to 3 do
    Simulator.step sim;
    Vcd.sample vcd sim
  done;
  let text = Vcd.contents vcd in
  check_bool "has header" true (contains text "$enddefinitions");
  check_bool "has samples" true (contains text "#3")

let test_sha_width () =
  (* 64-bit datapath sanity, as used by the SHA512 design *)
  let sim =
    sim_of
      {|
module top (input clk, input [63:0] w, output reg [63:0] acc);
  always @(posedge clk) acc <= acc + ({w[31:0], w[63:32]} ^ (w >> 7));
endmodule
|}
      "top"
  in
  Simulator.set_input sim "w" (Bits.of_hex_string ~width:64 "0123456789abcdef");
  Simulator.step sim;
  let rotated = Bits.of_hex_string ~width:64 "89abcdef01234567" in
  let shifted =
    Bits.shift_right (Bits.of_hex_string ~width:64 "0123456789abcdef") 7
  in
  let expect = Bits.logxor rotated shifted in
  Alcotest.(check string)
    "64-bit xor/rotate" (Bits.to_hex_string expect)
    (Bits.to_hex_string (Simulator.read sim "acc"))

(* Determinism property: two simulators over the same design and random
   stimulus produce identical output traces. *)
let prop_deterministic =
  QCheck2.Test.make ~count:50 ~name:"simulation is deterministic"
    QCheck2.Gen.(list_size (return 20) (int_bound 255))
    (fun inputs ->
      let src =
        {|
module top (input clk, input [7:0] d, output reg [7:0] acc);
  always @(posedge clk) acc <= acc + (d ^ {d[3:0], d[7:4]});
endmodule
|}
      in
      let run () =
        let sim = sim_of src "top" in
        List.map
          (fun v ->
            Simulator.set_input sim "d" (b 8 v);
            Simulator.step sim;
            Simulator.read_int sim "acc")
          inputs
      in
      run () = run ())

let suite =
  [
    Alcotest.test_case "counter" `Quick test_counter;
    Alcotest.test_case "nonblocking swap" `Quick test_nonblocking_swap;
    Alcotest.test_case "blocking in seq" `Quick test_blocking_in_seq;
    Alcotest.test_case "comb chain order" `Quick test_comb_chain;
    Alcotest.test_case "comb cycle detected" `Quick test_comb_cycle_detected;
    Alcotest.test_case "hierarchy" `Quick test_hierarchy;
    Alcotest.test_case "parameter override" `Quick test_parameter_override;
    Alcotest.test_case "memory overflow semantics" `Quick
      test_memory_overflow_semantics;
    Alcotest.test_case "display log" `Quick test_display_log;
    Alcotest.test_case "finish" `Quick test_finish;
    Alcotest.test_case "scfifo primitive" `Quick test_scfifo;
    Alcotest.test_case "altsyncram primitive" `Quick test_altsyncram;
    Alcotest.test_case "concat lvalue" `Quick test_concat_lvalue;
    Alcotest.test_case "testbench stuck detection" `Quick
      test_testbench_stuck_detection;
    Alcotest.test_case "vcd output" `Quick test_vcd;
    Alcotest.test_case "64-bit datapath" `Quick test_sha_width;
    QCheck_alcotest.to_alcotest prop_deterministic;
  ]

(* --- waveform capture and diffing --------------------------------------- *)

let waveform_counter ~buggy =
  Printf.sprintf
    {|
module top (input clk, input en, output reg [7:0] n, output reg tick);
  always @(posedge clk) begin
    if (en) n <= n + 8'd%d;
    tick <= ~tick;
  end
endmodule
|}
    (if buggy then 2 else 1)

let waveform_stimulus cycle = [ ("en", b 1 (if cycle >= 2 then 1 else 0)) ]

let test_waveform_capture () =
  let design = Parser.parse_design (waveform_counter ~buggy:false) in
  let w =
    Waveform.capture ~max_cycles:10 ~top:"top" ~signals:[ "n"; "tick"; "en" ]
      design waveform_stimulus
  in
  check_int "10 cycles captured" 10 w.Waveform.cycles;
  check_int "three traces" 3 (List.length w.Waveform.traces);
  let n = Option.get (Waveform.trace w "n") in
  check_int "final count" 8 (Bits.to_int n.Waveform.values.(9));
  let text = Waveform.render w in
  check_bool "render shows the 1-bit rail" true (contains text "~");
  check_bool "render names signals" true (contains text "tick")

let test_waveform_diff () =
  let cap ~buggy =
    Waveform.capture ~max_cycles:10 ~top:"top" ~signals:[ "n"; "tick" ]
      (Parser.parse_design (waveform_counter ~buggy))
      waveform_stimulus
  in
  let fixed = cap ~buggy:false and buggy = cap ~buggy:true in
  (match Waveform.first_divergence buggy fixed with
  | Some d ->
      check_int "diverges when en first rises" 2 d.Waveform.cycle;
      Alcotest.(check string) "on the counter" "n" d.Waveform.signal
  | None -> Alcotest.fail "expected divergence");
  check_bool "tick never diverges" true
    (List.for_all
       (fun (d : Waveform.divergence) -> d.Waveform.signal <> "tick")
       (Waveform.diff buggy fixed));
  (* identical runs do not diverge *)
  check_bool "self-diff empty" true (Waveform.diff fixed fixed = [])

let suite =
  suite
  @ [
      Alcotest.test_case "waveform capture" `Quick test_waveform_capture;
      Alcotest.test_case "waveform diff" `Quick test_waveform_diff;
    ]

(* --- checkpointing ------------------------------------------------------- *)

let test_checkpoint_replay () =
  (* replay property: restore + re-run equals the uninterrupted run *)
  let src =
    {|
module top (input clk, input [7:0] d, output reg [7:0] acc, output reg [3:0] n);
  reg [7:0] hist [0:7];
  always @(posedge clk) begin
    acc <= acc + d;
    hist[n] <= d;
    n <= n + 4'd1;
    if (acc > 8'd200) $display("acc high: %d", acc);
  end
endmodule
|}
  in
  let stim cycle = [ ("d", b 8 ((cycle * 37) land 0xFF)) ] in
  let drive sim from upto =
    for i = from to upto - 1 do
      List.iter (fun (n, v) -> Simulator.set_input sim n v) (stim i);
      Simulator.step sim
    done
  in
  let observe sim =
    ( Simulator.read_int sim "acc",
      Simulator.read_int sim "n",
      Array.map Bits.to_int (Simulator.read_memory sim "hist"),
      Simulator.log sim )
  in
  (* uninterrupted reference run *)
  let ref_sim = sim_of src "top" in
  drive ref_sim 0 30;
  let reference = observe ref_sim in
  (* checkpointed run: snapshot at 10, keep going, then rewind and replay *)
  let sim = sim_of src "top" in
  drive sim 0 10;
  let cp = Simulator.checkpoint sim in
  drive sim 10 23;
  Simulator.restore sim cp;
  check_int "cycle rewound" 10 (Simulator.cycle sim);
  drive sim 10 30;
  check_bool "replay equals uninterrupted run" true (observe sim = reference)

let test_checkpoint_fifo_state () =
  let src =
    {|
module top (input clk, input [7:0] din, input push, input pop,
            output [7:0] front, output is_empty);
  scfifo #(.lpm_width(8), .lpm_numwords(4)) q0 (
    .clock(clk), .data(din), .wrreq(push), .rdreq(pop),
    .q(front), .empty(is_empty));
endmodule
|}
  in
  let sim = sim_of src "top" in
  Simulator.set_input sim "push" (b 1 1);
  Simulator.set_input sim "din" (b 8 42);
  Simulator.step sim;
  Simulator.set_input sim "push" (b 1 0);
  Simulator.step sim;
  let cp = Simulator.checkpoint sim in
  (* drain the fifo, then rewind: the word must be back *)
  Simulator.set_input sim "pop" (b 1 1);
  Simulator.step sim;
  Simulator.step sim;
  check_int "drained" 1 (Simulator.read_int sim "is_empty");
  Simulator.restore sim cp;
  Simulator.set_input sim "pop" (b 1 0);
  Simulator.step sim;
  check_int "fifo content restored" 42 (Simulator.read_int sim "front");
  check_int "not empty after restore" 0 (Simulator.read_int sim "is_empty")

(* --- differential property: printed Verilog evaluates like the AST ------- *)

(* Random expressions over fixed 8-bit inputs: the value computed by the
   full pipeline (print -> parse -> elaborate -> simulate) equals direct
   evaluation of the AST over the same environment. *)
let prop_print_parse_simulate_eval =
  let gen_leaf =
    QCheck2.Gen.(
      oneof
        [
          map (fun n -> Ast.Ident (Printf.sprintf "s%d" (abs n mod 3))) int;
          map (fun n -> Ast.Const (Bits.of_int ~width:8 (abs n mod 256))) int;
        ])
  in
  let gen_expr =
    QCheck2.Gen.(
      sized_size (int_range 0 5)
      @@ fix (fun self n ->
             if n = 0 then gen_leaf
             else
               oneof
                 [
                   gen_leaf;
                   map2
                     (fun a b -> Ast.Binop (Ast.Add, a, b))
                     (self (n / 2)) (self (n / 2));
                   map2
                     (fun a b -> Ast.Binop (Ast.Sub, a, b))
                     (self (n / 2)) (self (n / 2));
                   map2
                     (fun a b -> Ast.Binop (Ast.Bxor, a, b))
                     (self (n / 2)) (self (n / 2));
                   map2
                     (fun a b -> Ast.Binop (Ast.Band, a, b))
                     (self (n / 2)) (self (n / 2));
                   map2
                     (fun a b -> Ast.Binop (Ast.Lt, a, b))
                     (self (n / 2)) (self (n / 2));
                   map3
                     (fun c a b -> Ast.Cond (c, a, b))
                     (self (n / 2)) (self (n / 2)) (self (n / 2));
                 ]))
  in
  QCheck2.Test.make ~count:150
    ~name:"print/parse/simulate equals direct evaluation"
    QCheck2.Gen.(pair gen_expr (triple (int_bound 255) (int_bound 255) (int_bound 255)))
    (fun (e, (v0, v1, v2)) ->
      let src =
        Printf.sprintf
          "module t (input [7:0] s0, input [7:0] s1, input [7:0] s2, output \
           [7:0] o);\nassign o = %s;\nendmodule"
          (Pp_verilog.expr_str e)
      in
      let sim = sim_of src "t" in
      Simulator.set_input sim "s0" (b 8 v0);
      Simulator.set_input sim "s1" (b 8 v1);
      Simulator.set_input sim "s2" (b 8 v2);
      Simulator.step sim;
      let via_sim = Simulator.read_int sim "o" in
      let env : Eval.env = Hashtbl.create 4 in
      Hashtbl.replace env "s0" (Eval.Vec (b 8 v0));
      Hashtbl.replace env "s1" (Eval.Vec (b 8 v1));
      Hashtbl.replace env "s2" (Eval.Vec (b 8 v2));
      let direct = Bits.to_int (Bits.resize (Eval.eval_ctx env ~ctx:8 e) 8) in
      via_sim = direct)

let suite =
  suite
  @ [
      Alcotest.test_case "checkpoint replay" `Quick test_checkpoint_replay;
      Alcotest.test_case "checkpoint fifo state" `Quick
        test_checkpoint_fifo_state;
      QCheck_alcotest.to_alcotest prop_print_parse_simulate_eval;
    ]

(* --- negedge semantics ---------------------------------------------------- *)

let test_negedge_half_cycle () =
  (* a negedge consumer observes the value the posedge producer wrote in
     the same cycle - the SPI-style half-cycle handoff *)
  let sim =
    sim_of
      {|
module top (input clk, input [7:0] d, output reg [7:0] early, output reg [7:0] late);
  reg [7:0] stage;
  always @(posedge clk) stage <= d;
  always @(negedge clk) late <= stage;
  always @(posedge clk) early <= stage;
endmodule
|}
      "top"
  in
  Simulator.set_input sim "d" (b 8 0x11);
  Simulator.step sim;
  (* cycle 0: posedge writes stage=0x11; early sampled old stage (0);
     negedge then sees the fresh 0x11 *)
  check_int "posedge consumer lags" 0 (Simulator.read_int sim "early");
  check_int "negedge consumer sees same-cycle value" 0x11
    (Simulator.read_int sim "late");
  Simulator.set_input sim "d" (b 8 0x22);
  Simulator.step sim;
  check_int "early one behind" 0x11 (Simulator.read_int sim "early");
  check_int "late up to date" 0x22 (Simulator.read_int sim "late")

let test_negedge_spi_shift () =
  (* drive on posedge, sample on negedge: a 4-bit SPI-style shifter
     assembles the value within four cycles *)
  let sim =
    sim_of
      {|
module top (input clk, input mosi_bit, output reg [3:0] shifted);
  reg mosi;
  always @(posedge clk) mosi <= mosi_bit;
  always @(negedge clk) shifted <= {shifted[2:0], mosi};
endmodule
|}
      "top"
  in
  List.iter
    (fun bit ->
      Simulator.set_input sim "mosi_bit" (b 1 bit);
      Simulator.step sim)
    [ 1; 0; 1; 1 ];
  check_int "bits assembled MSB-first" 0b1011 (Simulator.read_int sim "shifted")

let suite =
  suite
  @ [
      Alcotest.test_case "negedge half cycle" `Quick test_negedge_half_cycle;
      Alcotest.test_case "negedge spi shift" `Quick test_negedge_spi_shift;
    ]

(* --- event-driven kernel vs brute-force reference ------------------------- *)

(* The dirty-set kernel must be observationally identical to the seed
   full-sweep settle: same signal values every cycle, same $display log,
   over real testbed designs (comb logic, FIFOs, RAMs, $finish). *)

let signal_state (flat : Elaborate.flat) sim =
  Hashtbl.fold
    (fun name (s : Elaborate.fsignal) acc ->
      let v =
        match s.Elaborate.fs_depth with
        | Some _ ->
            Simulator.read_memory sim name
            |> Array.map Bits.to_hex_string
            |> Array.to_list |> String.concat ","
        | None -> Bits.to_hex_string (Simulator.read sim name)
      in
      (name, v) :: acc)
    flat.Elaborate.f_signals []
  |> List.sort compare

let test_event_kernel_matches_brute_force () =
  List.iter
    (fun id ->
      let bug = Option.get (Fpga_testbed.Registry.find id) in
      let design = Fpga_testbed.Bug.design_of bug ~buggy:true in
      let flat = Elaborate.elaborate design ~top:bug.Fpga_testbed.Bug.top in
      let ev = Simulator.create ~kernel:Simulator.Event_driven flat in
      let bf = Simulator.create ~kernel:Simulator.Brute_force flat in
      let lw = Simulator.create ~kernel:Simulator.Lowered flat in
      let ld = Simulator.create ~kernel:Simulator.Lowered_dirty flat in
      for i = 0 to 199 do
        let ins = bug.Fpga_testbed.Bug.stimulus i in
        List.iter (fun (n, v) -> Simulator.set_input ev n v) ins;
        List.iter (fun (n, v) -> Simulator.set_input bf n v) ins;
        List.iter (fun (n, v) -> Simulator.set_input lw n v) ins;
        List.iter (fun (n, v) -> Simulator.set_input ld n v) ins;
        Simulator.step ev;
        Simulator.step bf;
        Simulator.step lw;
        Simulator.step ld;
        if signal_state flat ev <> signal_state flat bf then
          Alcotest.failf "%s: event/brute signal state diverges at cycle %d"
            id i;
        if signal_state flat lw <> signal_state flat bf then
          Alcotest.failf "%s: lowered/brute signal state diverges at cycle %d"
            id i;
        if signal_state flat ld <> signal_state flat bf then
          Alcotest.failf
            "%s: lowered-dirty/brute signal state diverges at cycle %d" id i
      done;
      check_bool
        (Printf.sprintf "%s: finished flags agree" id)
        (Simulator.finished bf) (Simulator.finished ev);
      check_bool
        (Printf.sprintf "%s: lowered finished flag agrees" id)
        (Simulator.finished bf) (Simulator.finished lw);
      check_bool
        (Printf.sprintf "%s: lowered-dirty finished flag agrees" id)
        (Simulator.finished bf) (Simulator.finished ld);
      if Simulator.log ev <> Simulator.log bf then
        Alcotest.failf "%s: $display log diverges" id;
      if Simulator.log lw <> Simulator.log bf then
        Alcotest.failf "%s: lowered $display log diverges" id;
      if Simulator.log ld <> Simulator.log bf then
        Alcotest.failf "%s: lowered-dirty $display log diverges" id)
    [ "D2"; "D4"; "D8"; "C4" ]

(* Full-testbed four-way differential through the harness: every bug,
   both design variants, identical reports — rows, log, flags, cycle
   counts, and the complete VCD waveform — under all four kernels. *)
let test_four_kernels_full_testbed () =
  List.iter
    (fun (bug : Fpga_testbed.Bug.t) ->
      List.iter
        (fun buggy ->
          let design = Fpga_testbed.Bug.design_of bug ~buggy in
          let run kernel =
            Fpga_testbed.Bug.run_design ~vcd:true ~kernel bug design
          in
          let bf = run Simulator.Brute_force in
          List.iter
            (fun kernel ->
              let r = run kernel in
              let name = Simulator.kernel_name kernel in
              let tag fmt =
                Printf.sprintf fmt bug.Fpga_testbed.Bug.id name
                  (if buggy then "buggy" else "fixed")
              in
              check_bool (tag "%s %s %s rows") true
                (r.Fpga_testbed.Bug.rows = bf.Fpga_testbed.Bug.rows);
              check_bool (tag "%s %s %s log") true
                (r.Fpga_testbed.Bug.log = bf.Fpga_testbed.Bug.log);
              check_bool (tag "%s %s %s vcd") true
                (r.Fpga_testbed.Bug.vcd = bf.Fpga_testbed.Bug.vcd);
              check_bool (tag "%s %s %s flags") true
                (r.Fpga_testbed.Bug.stuck = bf.Fpga_testbed.Bug.stuck
                && r.Fpga_testbed.Bug.finished = bf.Fpga_testbed.Bug.finished
                && r.Fpga_testbed.Bug.cycles = bf.Fpga_testbed.Bug.cycles))
            [ Simulator.Event_driven; Simulator.Lowered; Simulator.Lowered_dirty ])
        [ true; false ])
    Fpga_testbed.Registry.all

let test_comb_display_fires_every_cycle () =
  (* a combinational $display fires once per cycle in the seed sweep
     even when its inputs never change; the event-driven kernel forces
     display nodes onto the dirty set to match *)
  let run kernel =
    let sim =
      Testbench.of_source ~kernel ~top:"top"
        {|
module top (input clk, input [7:0] d, output [7:0] q);
  assign q = d;
  always @(*) begin
    $display("q is %d", q);
  end
endmodule
|}
    in
    Simulator.set_input sim "d" (b 8 7);
    Simulator.run sim 5;
    Simulator.log sim
  in
  let ev = run Simulator.Event_driven and bf = run Simulator.Brute_force in
  let lw = run Simulator.Lowered and ld = run Simulator.Lowered_dirty in
  check_int "one entry per cycle" 5 (List.length ev);
  check_bool "logs identical across kernels" true (ev = bf);
  check_bool "lowered log identical" true (lw = bf);
  check_bool "lowered-dirty log identical" true (ld = bf)

let test_event_kernel_idle_design () =
  (* constant input: after the pipeline fills, nothing changes; the
     event kernel must still hold the settled values the sweep computes *)
  let src =
    {|
module top (input clk, input [7:0] d, output [7:0] q);
  reg [7:0] r1, r2, r3;
  wire [7:0] w1, w2;
  assign w1 = r3 + 8'd1;
  assign w2 = w1 ^ r2;
  assign q = w2;
  always @(posedge clk) begin
    r1 <= d;
    r2 <= r1;
    r3 <= r2;
  end
endmodule
|}
  in
  let drive kernel =
    let sim = Testbench.of_source ~kernel ~top:"top" src in
    Simulator.set_input sim "d" (b 8 0x2A);
    List.init 50 (fun _ ->
        Simulator.step sim;
        Simulator.read_int sim "q")
  in
  check_bool "idle design traces identical" true
    (drive Simulator.Event_driven = drive Simulator.Brute_force)

(* A design whose whole combinational plan fires every cycle while the
   input churns: w1..q all depend (directly or through the cascade) on
   both d and r, and r moves every cycle while d is nonzero. *)
let dense_src =
  {|
module top (input clk, input [7:0] d, output [7:0] q);
  reg [7:0] r;
  wire [7:0] w1, w2, w3;
  assign w1 = d + r;
  assign w2 = w1 ^ r;
  assign w3 = w2 + d;
  assign q = w3;
  always @(posedge clk) r <= r + d;
endmodule
|}

let test_dense_mode_engages_and_matches () =
  (* sustained full-plan activity must flip the event kernel into its
     dense full-scan mode without changing a single observable value *)
  let ev = Testbench.of_source ~kernel:Simulator.Event_driven ~top:"top" dense_src in
  let bf = Testbench.of_source ~kernel:Simulator.Brute_force ~top:"top" dense_src in
  check_bool "starts sparse" false (Simulator.dense_mode ev);
  for i = 0 to 29 do
    let d = b 8 (((i * 37) + 1) land 0xff) in
    Simulator.set_input ev "d" d;
    Simulator.set_input bf "d" d;
    Simulator.step ev;
    Simulator.step bf;
    check_int
      (Printf.sprintf "q agrees at cycle %d" i)
      (Simulator.read_int bf "q") (Simulator.read_int ev "q");
    check_int
      (Printf.sprintf "r agrees at cycle %d" i)
      (Simulator.read_int bf "r") (Simulator.read_int ev "r")
  done;
  check_bool "sustained activity engages dense mode" true
    (Simulator.dense_mode ev);
  check_bool "brute force never reports dense mode" false
    (Simulator.dense_mode bf)

let test_dense_mode_exits_when_quiet () =
  (* burst-then-idle: the kernel must leave dense mode once activity
     drops, and the superset-dirty re-entry must not disturb values *)
  let ev = Testbench.of_source ~kernel:Simulator.Event_driven ~top:"top" dense_src in
  let bf = Testbench.of_source ~kernel:Simulator.Brute_force ~top:"top" dense_src in
  let drive sim d i =
    Simulator.set_input sim "d" (b 8 d);
    Simulator.step sim;
    ignore i
  in
  for i = 0 to 29 do
    let d = ((i * 37) + 1) land 0xff in
    drive ev d i;
    drive bf d i
  done;
  check_bool "dense after the burst" true (Simulator.dense_mode ev);
  for i = 0 to 29 do
    drive ev 0 i;
    drive bf 0 i;
    check_int
      (Printf.sprintf "q agrees during idle cycle %d" i)
      (Simulator.read_int bf "q") (Simulator.read_int ev "q")
  done;
  check_bool "idle traffic drops back to sparse" false
    (Simulator.dense_mode ev);
  (* and a fresh burst after the round trip still tracks the sweep *)
  for i = 0 to 9 do
    let d = ((i * 53) + 5) land 0xff in
    drive ev d i;
    drive bf d i;
    check_int
      (Printf.sprintf "q agrees after re-burst cycle %d" i)
      (Simulator.read_int bf "q") (Simulator.read_int ev "q")
  done

let test_dirty_kernel_skips_on_idle_design () =
  (* the dirty lowered kernel's whole point: once an idle pipeline
     settles, its closures stop running — and the values still match
     the full sweep cycle for cycle *)
  let src =
    {|
module top (input clk, input [7:0] d, output [7:0] q);
  reg [7:0] r1, r2, r3;
  wire [7:0] w1, w2;
  assign w1 = r3 + 8'd1;
  assign w2 = w1 ^ r2;
  assign q = w2;
  always @(posedge clk) begin
    r1 <= d;
    r2 <= r1;
    r3 <= r2;
  end
endmodule
|}
  in
  let ld = Testbench.of_source ~kernel:Simulator.Lowered_dirty ~top:"top" src in
  let bf = Testbench.of_source ~kernel:Simulator.Brute_force ~top:"top" src in
  Simulator.set_input ld "d" (b 8 0x2A);
  Simulator.set_input bf "d" (b 8 0x2A);
  for i = 0 to 99 do
    Simulator.step ld;
    Simulator.step bf;
    check_int
      (Printf.sprintf "q agrees at cycle %d" i)
      (Simulator.read_int bf "q") (Simulator.read_int ld "q")
  done;
  let rs = Option.get (Simulator.lowered_run_stats ld) in
  check_bool "idle settles skip closures" true
    (rs.Fpga_sim.Lowered.rs_closures_skipped > rs.Fpga_sim.Lowered.rs_closures_run);
  (* the plain lowered kernel never skips *)
  let lw = Testbench.of_source ~kernel:Simulator.Lowered ~top:"top" src in
  Simulator.set_input lw "d" (b 8 0x2A);
  Simulator.run lw 100;
  let rsp = Option.get (Simulator.lowered_run_stats lw) in
  check_int "plain lowered skips nothing" 0
    rsp.Fpga_sim.Lowered.rs_closures_skipped

let test_dirty_kernel_dense_roundtrip () =
  (* churn drives the dirty lowered kernel into its dense full-sweep
     mode, idling drops it back out, and the values track the sweep
     the whole way — same adaptive contract as the event kernel *)
  let ld = Testbench.of_source ~kernel:Simulator.Lowered_dirty ~top:"top" dense_src in
  let bf = Testbench.of_source ~kernel:Simulator.Brute_force ~top:"top" dense_src in
  let drive sim d =
    Simulator.set_input sim "d" (b 8 d);
    Simulator.step sim
  in
  check_bool "starts sparse" false (Simulator.dense_mode ld);
  for i = 0 to 29 do
    let d = ((i * 37) + 1) land 0xff in
    drive ld d;
    drive bf d;
    check_int
      (Printf.sprintf "q agrees at burst cycle %d" i)
      (Simulator.read_int bf "q") (Simulator.read_int ld "q")
  done;
  check_bool "burst engages dense mode" true (Simulator.dense_mode ld);
  for i = 0 to 29 do
    drive ld 0;
    drive bf 0;
    check_int
      (Printf.sprintf "q agrees during idle cycle %d" i)
      (Simulator.read_int bf "q") (Simulator.read_int ld "q")
  done;
  check_bool "idle drops back to sparse" false (Simulator.dense_mode ld)

let suite =
  suite
  @ [
      Alcotest.test_case "event kernel == brute force (testbed, 200 cycles)"
        `Quick test_event_kernel_matches_brute_force;
      Alcotest.test_case "four kernels identical over the full testbed"
        `Slow test_four_kernels_full_testbed;
      Alcotest.test_case "comb $display fires every cycle" `Quick
        test_comb_display_fires_every_cycle;
      Alcotest.test_case "dirty lowered kernel skips on idle design" `Quick
        test_dirty_kernel_skips_on_idle_design;
      Alcotest.test_case "dirty lowered kernel dense round trip" `Quick
        test_dirty_kernel_dense_roundtrip;
      Alcotest.test_case "event kernel on idle design" `Quick
        test_event_kernel_idle_design;
      Alcotest.test_case "dense mode engages on full-plan activity" `Quick
        test_dense_mode_engages_and_matches;
      Alcotest.test_case "dense mode exits when activity drops" `Quick
        test_dense_mode_exits_when_quiet;
    ]

(* --- golden VCD and waveform output -------------------------------------- *)

(* Byte-exact VCD output: these pin the header layout, $var ordering
   (sorted by name, id codes from '!'), and change-only value lines that
   external viewers like GTKWave depend on. *)

let vcd_of src steps =
  let design = Parser.parse_design src in
  let flat = Elaborate.elaborate design ~top:"top" in
  let sim = Simulator.create flat in
  let vcd = Vcd.create flat in
  for _ = 1 to steps do
    Simulator.step sim;
    Vcd.sample vcd sim
  done;
  Vcd.contents vcd

let test_vcd_golden_1bit () =
  let text =
    vcd_of
      {|
module top (input clk, output reg t);
  always @(posedge clk) t <= ~t;
endmodule
|}
      3
  in
  Alcotest.(check string)
    "golden 1-bit VCD"
    "$date reproduction run $end\n\
     $version fpga-debug simulator $end\n\
     $timescale 1ns $end\n\
     $scope module top $end\n\
     $var wire 1 ! clk $end\n\
     $var wire 1 \" t $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #1\n0!\n1\"\n\
     #2\n0\"\n\
     #3\n1\"\n"
    text

let test_vcd_golden_multibit () =
  let text =
    vcd_of
      {|
module top (input clk, output reg [3:0] n);
  always @(posedge clk) n <= n + 4'd1;
endmodule
|}
      3
  in
  Alcotest.(check string)
    "golden multi-bit VCD"
    "$date reproduction run $end\n\
     $version fpga-debug simulator $end\n\
     $timescale 1ns $end\n\
     $scope module top $end\n\
     $var wire 1 ! clk $end\n\
     $var wire 4 \" n $end\n\
     $upscope $end\n\
     $enddefinitions $end\n\
     #1\n0!\nb0001 \"\n\
     #2\nb0010 \"\n\
     #3\nb0011 \"\n"
    text

let test_waveform_render_golden () =
  let design =
    Parser.parse_design
      {|
module top (input clk, output reg [3:0] n, output reg tick);
  always @(posedge clk) begin
    n <= n + 4'd1;
    tick <= ~tick;
  end
endmodule
|}
  in
  let w =
    Waveform.capture ~max_cycles:10 ~top:"top" ~signals:[ "n"; "tick" ] design
      (fun _ -> [])
  in
  Alcotest.(check string)
    "golden ASCII render"
    "          0    5    \n\
     n         |1|2|3|4|5|6|7|8|9|a\n\
     tick      ~_~_~_~_~_\n"
    (Waveform.render ~cycles:10 w);
  (* a later window re-anchors the hex change marks at its first cycle *)
  let tail = Waveform.render ~from_cycle:8 ~cycles:2 w in
  check_bool "window shows value at its first cycle" true (contains tail "|9");
  check_bool "window keeps the rail" true (contains tail "~_")

let suite =
  suite
  @ [
      Alcotest.test_case "golden VCD: 1-bit toggler" `Quick
        test_vcd_golden_1bit;
      Alcotest.test_case "golden VCD: multi-bit counter" `Quick
        test_vcd_golden_multibit;
      Alcotest.test_case "golden waveform render" `Quick
        test_waveform_render_golden;
    ]
