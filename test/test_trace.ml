(* Tests for the structured tracing layer (Telemetry.Trace) and its
   Chrome-trace serialization (Trace_export): span-tree shape, the
   deterministic virtual clock, segment capture/rebase, the soft cap,
   per-domain track accounting under the campaign pool, byte-identity
   of virtual-clock exports across pool widths, the pinned golden
   trace, and the reader-side validator's rejection of malformed
   input. Every test restores the disabled default on exit. *)

module Telemetry = Fpga_telemetry.Telemetry
module Trace = Telemetry.Trace
module Trace_export = Fpga_telemetry.Trace_export
module Campaign = Fpga_campaign.Campaign
module Registry = Fpga_testbed.Registry
module Simulator = Fpga_sim.Simulator
module Testbench = Fpga_sim.Testbench

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Run [f] with tracing on (virtual clock unless overridden) and a
   clean buffer, then restore the disabled default even on failure. *)
let with_trace ?(clock = Trace.Virtual) ?cap f =
  Trace.enable ~clock ?cap ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Trace.reset ();
      Trace.disable ())
    f

let phases seg = List.map (fun e -> e.Trace.te_ph) seg.Trace.sg_events
let bs seg = List.filter (fun e -> e.Trace.te_ph = 'B') seg.Trace.sg_events

(* --- recording: tree shape, clock, capture ------------------------- *)

let test_span_tree () =
  with_trace (fun () ->
      Trace.with_span ~cat:"phase" "root" (fun () ->
          Trace.with_span "left" (fun () -> Trace.instant "tick");
          Trace.with_span "right" (fun () -> Trace.counter "n" 7));
      let seg = Trace.capture_all () in
      Alcotest.(check (list char))
        "event order follows the recording"
        [ 'B'; 'B'; 'i'; 'E'; 'B'; 'C'; 'E'; 'E' ]
        (phases seg);
      let spans = bs seg in
      check_int "three spans" 3 (List.length spans);
      let by_name n =
        List.find (fun e -> e.Trace.te_name = n) spans
      in
      check_int "root is a tree root" (-1) (by_name "root").Trace.te_parent;
      check_int "left nests under root" (by_name "root").Trace.te_id
        (by_name "left").Trace.te_parent;
      check_int "right nests under root" (by_name "root").Trace.te_id
        (by_name "right").Trace.te_parent;
      check_bool "sibling ids differ" true
        ((by_name "left").Trace.te_id <> (by_name "right").Trace.te_id);
      check_string "category is recorded" "phase" (by_name "root").Trace.te_cat)

let test_virtual_clock () =
  with_trace (fun () ->
      Trace.with_span "a" (fun () -> Trace.instant "i");
      Trace.counter "c" 1;
      let seg = Trace.capture_all () in
      List.iteri
        (fun i e -> check_int "virtual timestamps tick by 1µs" i e.Trace.te_ts)
        seg.Trace.sg_events;
      (* a second identical recording produces the identical segment *)
      Trace.reset ();
      Trace.with_span "a" (fun () -> Trace.instant "i");
      Trace.counter "c" 1;
      check_bool "same recording, same segment" true
        (Trace.capture_all () = seg))

let test_capture_rebase () =
  with_trace (fun () ->
      Trace.with_span "before" (fun () -> ());
      let m = Trace.mark () in
      Trace.with_span "inside" (fun () -> Trace.instant "i");
      let seg = Trace.capture_since ~consume:true m in
      (match bs seg with
      | [ b ] ->
          check_int "ids rebase to 0 inside the slice" 0 b.Trace.te_id;
          check_int "a parent opened outside the slice maps to -1" (-1)
            b.Trace.te_parent;
          check_int "timestamps rebase to the slice origin" 0 b.Trace.te_ts
      | _ -> Alcotest.fail "expected exactly one B in the slice");
      check_int "consume truncates back to the mark" m (Trace.length ());
      (* the events before the mark are still there *)
      let all = Trace.capture_all () in
      check_int "pre-mark events survive the consume" m
        (List.length all.Trace.sg_events))

let test_span_closes_on_exception () =
  with_trace (fun () ->
      (try Trace.with_span "boom" (fun () -> failwith "x")
       with Failure _ -> ());
      check_int "no span left open" 0 (Trace.depth ());
      Alcotest.(check (list char))
        "the failed span still closed" [ 'B'; 'E' ]
        (phases (Trace.capture_all ())))

let test_soft_cap () =
  with_trace ~cap:8 (fun () ->
      Trace.with_span "outer" (fun () ->
          for i = 1 to 50 do
            Trace.with_span "inner" (fun () -> Trace.counter "c" i)
          done);
      check_bool "events over the cap are counted" true (Trace.dropped () > 0);
      check_int "no span left open" 0 (Trace.depth ());
      let seg = Trace.capture_all () in
      let nb = List.length (bs seg) in
      let ne =
        List.length
          (List.filter (fun e -> e.Trace.te_ph = 'E') seg.Trace.sg_events)
      in
      check_int "every recorded span still closes" nb ne;
      (* the capped capture still exports to a valid trace *)
      let json =
        Trace_export.to_json ~clock:Trace.Virtual ~main:seg ~jobs:[] ()
      in
      match Trace_export.validate json with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("capped trace rejected: " ^ e))

(* One Telemetry.span call feeds both the flat aggregate and the tree;
   with both layers off it records nothing. *)
let test_span_feeds_both_layers () =
  Telemetry.disable ();
  Trace.disable ();
  Telemetry.span "cold" (fun () -> ());
  with_trace (fun () ->
      Telemetry.span "warm" (fun () -> ());
      let seg = Trace.capture_all () in
      match bs seg with
      | [ b ] ->
          check_string "span lands in the trace" "warm" b.Trace.te_name;
          check_string "under the span category" "span" b.Trace.te_cat
      | _ -> Alcotest.fail "expected exactly the one traced span");
  check_bool "nothing recorded while off" true
    ((Trace.capture_all ()).Trace.sg_events = [])

(* The simulator samples its counter series into the trace even when
   flat telemetry is off — tracing alone allocates the kernel stats. *)
let test_simulator_counter_series () =
  Telemetry.disable ();
  with_trace (fun () ->
      let sim =
        Testbench.of_source ~top:"top"
          {|
module top (input clk, input enable, output reg [7:0] count, output [7:0] next);
  assign next = count + 8'd1;
  always @(posedge clk) if (enable) count <= next;
endmodule
|}
      in
      Simulator.set_input_int sim "enable" 1;
      Simulator.run sim 100;
      let seg = Trace.capture_all () in
      let series =
        List.filter (fun e -> e.Trace.te_ph = 'C') seg.Trace.sg_events
        |> List.map (fun e -> e.Trace.te_name)
        |> List.sort_uniq compare
      in
      List.iter
        (fun name ->
          check_bool (name ^ " series sampled") true (List.mem name series))
        [ "sim.dirty"; "sim.evaluated"; "bus.published"; "bus.dropped" ])

(* --- pool accounting (the --jobs 4 regression) --------------------- *)

let small_bugs n =
  List.filteri (fun i _ -> i < n) Registry.all

let collect_b_ids json_text =
  match Trace_export.parse_json json_text with
  | Trace_export.Obj kvs -> (
      match List.assoc_opt "traceEvents" kvs with
      | Some (Trace_export.Arr evs) ->
          List.filter_map
            (function
              | Trace_export.Obj f -> (
                  match
                    (List.assoc_opt "ph" f, List.assoc_opt "args" f)
                  with
                  | Some (Trace_export.Str "B"), Some (Trace_export.Obj a) -> (
                      match List.assoc_opt "id" a with
                      | Some (Trace_export.Num x) -> Some (int_of_float x)
                      | _ -> None)
                  | _ -> None)
              | _ -> None)
            evs
      | _ -> [])
  | _ -> []

let test_worker_tracks_and_ids () =
  with_trace ~clock:Trace.Wall (fun () ->
      let c = Campaign.run ~domains:4 ~differential:true (small_bugs 4) in
      let main = Trace.capture_all ~consume:true () in
      let jobs = Campaign.trace_segments c in
      check_int "one captured segment per job" 8 (List.length jobs);
      List.iter
        (fun (label, (seg : Trace.segment)) ->
          check_bool (label ^ " recorded events") true
            (seg.Trace.sg_events <> []);
          check_bool (label ^ " landed on a worker track (1..4)") true
            (seg.Trace.sg_track >= 1 && seg.Trace.sg_track <= 4))
        jobs;
      let json = Trace_export.to_json ~clock:Trace.Wall ~main ~jobs () in
      (match Trace_export.validate json with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("pool trace rejected: " ^ e));
      let ids = collect_b_ids json in
      check_int "global span ids are collision-free"
        (List.length ids)
        (List.length (List.sort_uniq compare ids)))

let export_campaign ~domains =
  with_trace (fun () ->
      let c = Campaign.run ~domains ~differential:true (small_bugs 3) in
      let main = Trace.capture_all ~consume:true () in
      Trace_export.to_json ~clock:Trace.Virtual ~main
        ~jobs:(Campaign.trace_segments c) ())

let test_virtual_export_pool_width_identity () =
  let t1 = export_campaign ~domains:1 in
  let t2 = export_campaign ~domains:2 in
  let t4 = export_campaign ~domains:4 in
  check_string "1 and 2 domains, identical bytes" t1 t2;
  check_string "1 and 4 domains, identical bytes" t1 t4;
  match Trace_export.validate t4 with
  | Ok s -> check_bool "spans recorded" true (s.Trace_export.v_spans > 0)
  | Error e -> Alcotest.fail ("campaign trace rejected: " ^ e)

(* --- export: golden trace and the validator ------------------------ *)

let golden =
  {|{
  "schema": "fpga-debug-trace/1",
  "clock": "virtual",
  "displayTimeUnit": "ms",
  "traceEvents": [
    {"ph": "M", "pid": 1, "tid": 0, "name": "process_name", "args": {"name": "fpga-debug"}},
    {"ph": "M", "pid": 1, "tid": 0, "name": "thread_name", "args": {"name": "main"}},
    {"ph": "B", "pid": 1, "tid": 0, "ts": 0, "name": "parse", "cat": "phase", "args": {"id": 0, "parent": -1}},
    {"ph": "i", "pid": 1, "tid": 0, "ts": 1, "name": "go", "cat": "mark", "s": "t"},
    {"ph": "E", "pid": 1, "tid": 0, "ts": 2},
    {"ph": "C", "pid": 1, "tid": 0, "ts": 3, "name": "dirty", "args": {"value": 3}}
  ]
}
|}

let test_golden_trace () =
  with_trace (fun () ->
      Trace.with_span ~cat:"phase" "parse" (fun () -> Trace.instant "go");
      Trace.counter "dirty" 3;
      let main = Trace.capture_all () in
      let json = Trace_export.to_json ~clock:Trace.Virtual ~main ~jobs:[] () in
      check_string "pinned byte-for-byte" golden json;
      match Trace_export.validate json with
      | Ok s ->
          check_int "events" 6 s.Trace_export.v_events;
          check_int "spans" 1 s.Trace_export.v_spans;
          check_int "counters" 1 s.Trace_export.v_counters;
          check_int "instants" 1 s.Trace_export.v_instants
      | Error e -> Alcotest.fail ("golden trace rejected: " ^ e))

let rejected name text =
  match Trace_export.validate text with
  | Ok _ -> Alcotest.fail (name ^ ": malformed input accepted")
  | Error _ -> ()

let test_validator_rejects_malformed () =
  rejected "not json" "{";
  rejected "trailing garbage" "{}x";
  rejected "not an object" "[1, 2]";
  rejected "missing schema" {|{"traceEvents": []}|};
  rejected "wrong schema"
    {|{"schema": "fpga-debug-trace/999", "traceEvents": []}|};
  rejected "traceEvents not an array"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": 3}|};
  rejected "event missing ph"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"pid": 1, "tid": 0}]}|};
  rejected "unsupported phase"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "X", "pid": 1, "tid": 0}]}|};
  rejected "non-integer tid"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "B", "pid": 1, "tid": 0.5, "ts": 0, "name": "x"}]}|};
  rejected "negative ts"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "i", "pid": 1, "tid": 0, "ts": -1, "name": "x"}]}|};
  rejected "B without a name"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "B", "pid": 1, "tid": 0, "ts": 0}, {"ph": "E", "pid": 1, "tid": 0, "ts": 1}]}|};
  rejected "E without an open B"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "E", "pid": 1, "tid": 0, "ts": 0}]}|};
  rejected "unbalanced B"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "B", "pid": 1, "tid": 0, "ts": 0, "name": "x"}]}|};
  rejected "E before its B"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "B", "pid": 1, "tid": 0, "ts": 5, "name": "x"}, {"ph": "E", "pid": 1, "tid": 0, "ts": 2}]}|};
  (* E on another track is not a close of this track's B *)
  rejected "balance is per track"
    {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "B", "pid": 1, "tid": 0, "ts": 0, "name": "x"}, {"ph": "E", "pid": 1, "tid": 1, "ts": 1}]}|};
  (* and a well-formed minimal trace is accepted *)
  match
    Trace_export.validate
      {|{"schema": "fpga-debug-trace/1", "traceEvents": [{"ph": "B", "pid": 1, "tid": 0, "ts": 0, "name": "x"}, {"ph": "E", "pid": 1, "tid": 0, "ts": 1}]}|}
  with
  | Ok s -> check_int "minimal trace: one span" 1 s.Trace_export.v_spans
  | Error e -> Alcotest.fail ("minimal trace rejected: " ^ e)

(* Random span trees: whatever shape the recording takes, the export
   validates and the validator's span count matches the recording's. *)
let prop_random_trees_export_valid =
  QCheck2.Test.make ~count:50 ~name:"random span trees export valid traces"
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 1000))
    (fun ops ->
      Trace.enable ~clock:Trace.Virtual ();
      Trace.reset ();
      Fun.protect
        ~finally:(fun () ->
          Trace.reset ();
          Trace.disable ())
        (fun () ->
          let spans = ref 0 in
          let rec emit depth n =
            if n land 1 = 0 || depth >= 4 then
              if n land 3 = 0 then Trace.instant "i" else Trace.counter "c" n
            else (
              incr spans;
              Trace.with_span "s" (fun () -> emit (depth + 1) (n lsr 1)))
          in
          List.iter (emit 0) ops;
          let main = Trace.capture_all () in
          let json =
            Trace_export.to_json ~clock:Trace.Virtual ~main ~jobs:[] ()
          in
          match Trace_export.validate json with
          | Ok s -> s.Trace_export.v_spans = !spans
          | Error _ -> false))

let suite =
  [
    Alcotest.test_case "spans form a tree with stable ids" `Quick
      test_span_tree;
    Alcotest.test_case "virtual clock ticks deterministically" `Quick
      test_virtual_clock;
    Alcotest.test_case "capture_since rebases a self-contained slice" `Quick
      test_capture_rebase;
    Alcotest.test_case "spans close on exception" `Quick
      test_span_closes_on_exception;
    Alcotest.test_case "soft cap drops but never unbalances" `Quick
      test_soft_cap;
    Alcotest.test_case "Telemetry.span feeds the trace tree" `Quick
      test_span_feeds_both_layers;
    Alcotest.test_case "simulator samples counter series while tracing" `Quick
      test_simulator_counter_series;
    Alcotest.test_case "worker spans land on their domain's track, ids \
                        collision-free (jobs 4)" `Quick
      test_worker_tracks_and_ids;
    Alcotest.test_case "virtual export byte-identical across pool widths"
      `Quick test_virtual_export_pool_width_identity;
    Alcotest.test_case "golden trace pinned byte-for-byte" `Quick
      test_golden_trace;
    Alcotest.test_case "validator rejects malformed input" `Quick
      test_validator_rejects_malformed;
    QCheck_alcotest.to_alcotest prop_random_trees_export_valid;
  ]
