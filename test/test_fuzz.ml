(* Tests for the mutation engine and differential fuzz driver:
   byte-identical corpus reproduction, the identity null hypothesis
   over the full testbed, per-template elaboration, and one pinned
   regression per injection template. *)

module Mutate = Fpga_fuzz.Mutate
module Fuzz = Fpga_fuzz.Fuzz
module Campaign = Fpga_campaign.Campaign
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Taxonomy = Fpga_study.Taxonomy
module Pp = Fpga_hdl.Pp_verilog

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pinned per-template regressions                                     *)
(* ------------------------------------------------------------------ *)

(* A compact two-module design giving every one of the 13 templates at
   least one site: an IP instance with a parameter and same-width
   connections (API misuse), a memory and slices (data mis-access), a
   reset branch and an FSM case (communication/semantic). *)
let pin_src =
  {|
module fz_sub (
  input clk,
  input [7:0] x,
  input [7:0] y,
  output reg [7:0] o
);
  parameter STEP = 1;
  always @(posedge clk) begin
    o <= x + y + STEP;
  end
endmodule

module fz_top (
  input clk,
  input rst,
  input in_valid,
  input [7:0] in_data,
  output reg [7:0] out_data,
  output reg out_valid
);
  reg [7:0] mem [0:15];
  reg [3:0] wptr;
  reg [1:0] state;
  wire [7:0] doubled;
  wire [7:0] swapped;

  fz_sub #(.STEP(2)) u_sub (.clk(clk), .x(in_data), .y(swapped), .o(doubled));

  assign swapped = {in_data[3:0], in_data[7:4]};

  always @(posedge clk) begin
    if (rst) begin
      wptr <= 4'd0;
      state <= 2'd0;
      out_valid <= 1'b0;
    end else begin
      out_valid <= 1'b0;
      if (in_valid && state == 2'd0) begin
        mem[wptr] <= in_data;
        wptr <= wptr + 4'd1;
        state <= 2'd1;
      end
      case (state)
        2'd1: begin
          out_data <= mem[wptr - 4'd1] + swapped[7:4] + doubled;
          out_valid <= 1'b1;
          state <= 2'd2;
        end
        2'd2: state <= 2'd0;
        default: state <= state;
      endcase
    end
  end
endmodule
|}

let pin_design () = Fpga_hdl.Parser.parse_design pin_src

(* (template, site count in pin_src, site-0 rewrite description).
   These pin the traversal order itself: a reordered visitor would
   renumber every site and silently break seed replay, and this table
   is what catches it. *)
let pinned =
  [
    (Taxonomy.Buffer_overflow, 2, "index mem[wptr] off by one (+1)");
    (Taxonomy.Bit_truncation, 3, "slice in_data[3:0] -> in_data[2:0]");
    (Taxonomy.Misindexing, 3, "slice in_data[3:0] -> in_data[4:1]");
    ( Taxonomy.Endianness_mismatch,
      1,
      "concat {in_data[3:0], in_data[7:4]} reversed" );
    (Taxonomy.Failure_to_update, 11, "register o never updated (holds value)");
    (Taxonomy.Deadlock, 1, "if-condition ((in_valid && (state == 2'd0))) negated");
    (Taxonomy.Producer_consumer_mismatch, 11, "constant 4'd0 -> 4'd1");
    (Taxonomy.Signal_asynchrony, 13, "o <= ... made blocking");
    ( Taxonomy.Use_without_valid,
      1,
      "guard (in_valid && (state == 2'd0)) -> in_valid" );
    (Taxonomy.Protocol_violation, 3, "posedge clk -> negedge clk");
    (Taxonomy.Api_misuse, 3, "parameter STEP: 2 -> 3 on u_sub");
    (Taxonomy.Incomplete_implementation, 3, "case arm '2'd1' dropped");
    (Taxonomy.Erroneous_expression, 8, "operator '+' -> '-' in (x + y)");
  ]

let test_pinned_templates () =
  let d = pin_design () in
  check_int "table covers every template" (List.length Mutate.templates)
    (List.length pinned);
  List.iter
    (fun (t, sites, detail) ->
      let name = Taxonomy.subclass_name t in
      check_int (name ^ " site count") sites (Mutate.site_count t d);
      match Mutate.apply t ~site:0 d with
      | None -> Alcotest.failf "%s: site 0 did not apply" name
      | Some (d', mu) ->
          check_string (name ^ " site-0 detail") detail mu.Mutate.mu_detail;
          check_bool (name ^ " records template") true (mu.Mutate.mu_template = t);
          (* every pinned mutant survives the full validity gate *)
          (match Mutate.validate ~top:"fz_top" ~baseline:d d' with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "%s: gate rejected site 0: %s" name e);
          (* out-of-range sites are refused, not wrapped *)
          check_bool
            (name ^ " out-of-range site")
            true
            (Mutate.apply t ~site:sites d = None))
    pinned

(* apply_all re-applies a recorded mutation list (the minimizer's
   primitive); identical coordinates must reproduce identical designs. *)
let test_apply_all_replays () =
  let d = pin_design () in
  let muts =
    [
      { Mutate.mu_template = Taxonomy.Erroneous_expression; mu_site = 2; mu_detail = "" };
      { Mutate.mu_template = Taxonomy.Deadlock; mu_site = 0; mu_detail = "" };
      { Mutate.mu_template = Taxonomy.Producer_consumer_mismatch; mu_site = 5; mu_detail = "" };
    ]
  in
  match (Mutate.apply_all d muts, Mutate.apply_all d muts) with
  | Some (a, ma), Some (b, mb) ->
      check_string "replayed design identical" (Pp.design_to_string a)
        (Pp.design_to_string b);
      check_bool "replayed details identical" true (ma = mb);
      check_bool "details recomputed" true
        (List.for_all (fun m -> m.Mutate.mu_detail <> "") ma)
  | _ -> Alcotest.fail "apply_all did not resolve a valid coordinate list"

(* ------------------------------------------------------------------ *)
(* Determinism: the corpus is a pure function of (seed, index)         *)
(* ------------------------------------------------------------------ *)

let prop_generate_deterministic =
  QCheck2.Test.make ~count:60 ~name:"generate (seed, index) byte-identical"
    QCheck2.Gen.(pair (int_range 0 1_000_000) (int_range 0 200))
    (fun (seed, index) ->
      let bug1, d1, m1 = Fuzz.generate ~seed ~index in
      let bug2, d2, m2 = Fuzz.generate ~seed ~index in
      bug1.Bug.id = bug2.Bug.id
      && Pp.design_to_string d1 = Pp.design_to_string d2
      && m1 = m2)

let prop_rng_independent_of_global_state =
  QCheck2.Test.make ~count:30 ~name:"corpus immune to Stdlib.Random"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let _, d1, m1 = Fuzz.generate ~seed ~index:3 in
      Random.self_init ();
      ignore (Random.bits ());
      let _, d2, m2 = Fuzz.generate ~seed ~index:3 in
      Pp.design_to_string d1 = Pp.design_to_string d2 && m1 = m2)

(* Full classification (4 simulations + gate) is heavier, so pin a few
   fixed coordinates instead of quantifying. *)
let test_run_one_deterministic () =
  List.iter
    (fun (seed, index) ->
      let a = Fuzz.run_one ~seed ~index () in
      let b = Fuzz.run_one ~seed ~index () in
      check_bool
        (Printf.sprintf "run_one (%d, %d) reproducible" seed index)
        true (a = b))
    [ (1, 0); (1, 7); (42, 3); (9000, 11) ]

(* The pool executes the same pure function: any --jobs width yields
   the same results and byte-identical JSON. *)
let test_fuzz_campaign_across_widths () =
  let serial = Campaign.run_fuzz ~domains:1 ~seed:5 ~mutants:16 () in
  let parallel = Campaign.run_fuzz ~domains:4 ~seed:5 ~mutants:16 () in
  check_string "fuzz JSON identical at jobs 1 vs 4"
    (Campaign.fuzz_to_json serial)
    (Campaign.fuzz_to_json parallel);
  Array.iteri
    (fun i r ->
      let p = parallel.Campaign.f_results.(i) in
      check_bool
        (Printf.sprintf "mutant %d verdict identical" i)
        true
        (r.Campaign.jr_value = p.Campaign.jr_value))
    serial.Campaign.f_results

(* ------------------------------------------------------------------ *)
(* The identity null hypothesis                                        *)
(* ------------------------------------------------------------------ *)

(* Zero mutations => zero divergences, on every bug of the full
   testbed: the unmutated design passes the gate, the kernels agree,
   telemetry is invisible, and the design equals itself. Any other
   outcome means the fuzzer would report noise, not findings. *)
let test_identity_no_divergence () =
  List.iter
    (fun (bug : Bug.t) ->
      match Fuzz.classify_identity bug with
      | Fuzz.Equivalent -> ()
      | o ->
          Alcotest.failf "%s: identity classified %s (%s)" bug.Bug.id
            (Fuzz.outcome_name o) (Fuzz.outcome_detail o))
    Registry.all

(* Same null hypothesis with the lowered kernel as the primary side of
   the differential: lowered vs brute-force and lowered vs
   lowered-instrumented must also be silent on every fuzz target. *)
let test_identity_lowered_primary () =
  List.iter
    (fun (bug : Bug.t) ->
      match
        Fuzz.classify_identity ~kernel:Fpga_sim.Simulator.Lowered bug
      with
      | Fuzz.Equivalent -> ()
      | o ->
          Alcotest.failf "%s: lowered identity classified %s (%s)" bug.Bug.id
            (Fuzz.outcome_name o) (Fuzz.outcome_detail o))
    Fuzz.targets

(* Same again with the dirty lowered kernel — worklist scheduling plus
   the flat NBA commit buffer must be invisible to the differential on
   every fuzz target. *)
let test_identity_lowered_dirty_primary () =
  List.iter
    (fun (bug : Bug.t) ->
      match
        Fuzz.classify_identity ~kernel:Fpga_sim.Simulator.Lowered_dirty bug
      with
      | Fuzz.Equivalent -> ()
      | o ->
          Alcotest.failf "%s: lowered-dirty identity classified %s (%s)"
            bug.Bug.id (Fuzz.outcome_name o) (Fuzz.outcome_detail o))
    Fuzz.targets

(* The CI fuzz-smoke gate in miniature, under the dirty lowered kernel:
   200 mutants, every valid one a lowered-dirty vs brute-force
   differential, zero mismatches, and byte-identical JSON across pool
   widths (the dirty scheduler's mode trajectory must not leak into
   results). *)
let test_fuzz_smoke_lowered_dirty () =
  let kernel = Fpga_sim.Simulator.Lowered_dirty in
  let serial = Campaign.run_fuzz ~domains:1 ~kernel ~seed:1 ~mutants:200 () in
  check_bool "no mismatches under lowered-dirty" true
    (Campaign.fuzz_ok serial);
  let parallel = Campaign.run_fuzz ~domains:4 ~kernel ~seed:1 ~mutants:200 () in
  check_string "fuzz JSON identical at jobs 1 vs 4"
    (Campaign.fuzz_to_json serial)
    (Campaign.fuzz_to_json parallel)

(* ------------------------------------------------------------------ *)
(* Every template yields an elaborating mutant on the real targets     *)
(* ------------------------------------------------------------------ *)

let test_templates_elaborate_on_targets () =
  List.iter
    (fun t ->
      let elaborates (bug : Bug.t) site =
        let base = Bug.design_of bug ~buggy:false in
        match Mutate.apply t ~site base with
        | None -> false
        | Some (d, _) -> (
            match Fpga_sim.Elaborate.elaborate d ~top:bug.Bug.top with
            | _ -> true
            | exception _ -> false)
      in
      let found =
        List.exists
          (fun (bug : Bug.t) ->
            let base = Bug.design_of bug ~buggy:false in
            let sites = min 20 (Mutate.site_count t base) in
            List.exists (elaborates bug) (List.init sites Fun.id))
          Fuzz.targets
      in
      check_bool
        (Taxonomy.subclass_name t ^ " elaborates on some fuzz target")
        true found)
    Mutate.templates

(* ------------------------------------------------------------------ *)
(* Driver odds and ends                                                *)
(* ------------------------------------------------------------------ *)

let test_validity_gate_rejects () =
  let d = pin_design () in
  (* an undefined top is the crudest invalid design *)
  (match Mutate.validate ~top:"nope" ~baseline:d d with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "gate accepted an unelaboratable top");
  (* the unmutated design always passes against itself *)
  match Mutate.validate ~top:"fz_top" ~baseline:d d with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "gate rejected the identity design: %s" e

let test_target_round_robin () =
  let n = List.length Fuzz.targets in
  check_bool "at least 8 fuzz targets" true (n >= 8);
  List.iteri
    (fun i (b : Bug.t) ->
      check_string
        (Printf.sprintf "index %d target" i)
        b.Bug.id
        (Fuzz.target_of_index i).Bug.id;
      check_string
        (Printf.sprintf "index %d wraps" (i + n))
        b.Bug.id
        (Fuzz.target_of_index (i + n)).Bug.id)
    Fuzz.targets

let test_fuzz_json_schema () =
  let fc = Campaign.run_fuzz ~domains:2 ~seed:2 ~mutants:4 () in
  let json = Campaign.fuzz_to_json fc in
  let contains s sub =
    let n = String.length sub and h = String.length s in
    let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key -> check_bool key true (contains json key))
    [
      "\"schema\": \"fpga-debug-fuzz/2\"";
      "\"seed\": 2";
      "\"kernel\": \"event\"";
      "\"mutants\": 4";
      "\"targets\"";
      "\"counts\"";
      "\"kernel_mismatch\"";
      "\"results\"";
      "\"findings\"";
    ];
  (* the deterministic-report contract: no wall-clock or worker noise *)
  List.iter
    (fun forbidden ->
      check_bool ("no " ^ forbidden) false (contains json forbidden))
    [ "\"wall\""; "\"domain\""; "\"busy\""; "\"telemetry\"" ]

let suite =
  [
    Alcotest.test_case "pinned site-0 regression per template" `Quick
      test_pinned_templates;
    Alcotest.test_case "apply_all replays coordinates" `Quick
      test_apply_all_replays;
    QCheck_alcotest.to_alcotest prop_generate_deterministic;
    QCheck_alcotest.to_alcotest prop_rng_independent_of_global_state;
    Alcotest.test_case "run_one deterministic at fixed coordinates" `Quick
      test_run_one_deterministic;
    Alcotest.test_case "fuzz campaign identical across pool widths" `Quick
      test_fuzz_campaign_across_widths;
    Alcotest.test_case "identity mutants: zero divergences, full testbed"
      `Slow test_identity_no_divergence;
    Alcotest.test_case "identity under lowered primary kernel" `Slow
      test_identity_lowered_primary;
    Alcotest.test_case "identity under lowered-dirty primary kernel" `Slow
      test_identity_lowered_dirty_primary;
    Alcotest.test_case "200-mutant fuzz smoke under lowered-dirty" `Slow
      test_fuzz_smoke_lowered_dirty;
    Alcotest.test_case "all 13 templates elaborate on fuzz targets" `Slow
      test_templates_elaborate_on_targets;
    Alcotest.test_case "validity gate accepts identity, rejects bad top"
      `Quick test_validity_gate_rejects;
    Alcotest.test_case "targets round-robin by index" `Quick
      test_target_round_robin;
    Alcotest.test_case "fuzz json schema-pinned and noise-free" `Quick
      test_fuzz_json_schema;
  ]
