(* Checkpoint/replay engine: wire-format round-trips, rejection of
   corrupt / version-skewed / wrong-design checkpoints, the central
   replay-determinism property (save -> serialize -> load -> restore ->
   continue is observationally identical to the straight run, waveform
   included), and checkpoint-stream bisection against a linear-scan
   reference. *)

module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Replay = Fpga_testbed.Replay
module Checkpoint = Fpga_sim.Checkpoint
module Simulator = Fpga_sim.Simulator

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let bug id = Option.get (Registry.find id)

(* The bugs the determinism property sweeps: data-loss (D2, D4),
   incorrect-output (D8), and a FIFO-backed control bug (C4) — together
   they exercise registers, memories, and both builtin primitives. *)
let property_bugs = [ "D2"; "D4"; "D8"; "C4" ]

let mid_checkpoint ?(every = 50) b =
  let rc = Replay.record ~every b in
  match rc.Replay.rec_checkpoints with
  | [] -> Alcotest.failf "%s produced no checkpoints" b.Bug.id
  | cps -> List.nth cps ((List.length cps - 1) / 2)

(* --- wire-format round-trips ----------------------------------------- *)

let test_string_roundtrip () =
  let ck = mid_checkpoint (bug "D2") in
  let ck' = Checkpoint.of_string (Checkpoint.to_string ck) in
  check_string "design hash" ck.Checkpoint.ck_design ck'.Checkpoint.ck_design;
  check_string "tag" ck.Checkpoint.ck_tag ck'.Checkpoint.ck_tag;
  check_int "cycle" ck.Checkpoint.ck_cycle ck'.Checkpoint.ck_cycle;
  check_bool "finished" ck.Checkpoint.ck_finished ck'.Checkpoint.ck_finished;
  check_bool "values" true (ck.Checkpoint.ck_values = ck'.Checkpoint.ck_values);
  check_bool "prims" true (ck.Checkpoint.ck_prims = ck'.Checkpoint.ck_prims);
  check_bool "log" true (ck.Checkpoint.ck_log = ck'.Checkpoint.ck_log);
  check_bool "meta" true (ck.Checkpoint.ck_meta = ck'.Checkpoint.ck_meta);
  check_string "content hash stable" (Checkpoint.content_hash ck)
    (Checkpoint.content_hash ck')

let test_file_roundtrip () =
  let ck = mid_checkpoint (bug "C4" ) ~every:10 in
  let path = Filename.temp_file "fpga-ckpt" ".fdc" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Checkpoint.save path ck;
      let ck' = Checkpoint.load path in
      check_bool "file round-trip preserves everything" true
        (Checkpoint.to_string ck = Checkpoint.to_string ck'))

let test_meta_escaping () =
  (* metadata values with the separators the format itself uses *)
  let ck = mid_checkpoint (bug "D2") in
  let ck =
    { ck with Checkpoint.ck_meta =
        [ ("k1", "line\nbreak"); ("k2", "tab\tand back\\slash"); ("k3", "") ] }
  in
  let ck' = Checkpoint.of_string (Checkpoint.to_string ck) in
  check_bool "hostile metadata survives" true
    (ck.Checkpoint.ck_meta = ck'.Checkpoint.ck_meta)

(* --- rejection of bad inputs ----------------------------------------- *)

let rejects what s =
  match Checkpoint.of_string s with
  | exception Checkpoint.Checkpoint_error _ -> ()
  | _ -> Alcotest.failf "%s was accepted" what

let test_rejects_corruption () =
  let text = Checkpoint.to_string (mid_checkpoint (bug "D2")) in
  rejects "garbage" "not a checkpoint at all\n";
  rejects "empty input" "";
  (* truncation: drop the trailer line *)
  let no_trailer =
    String.sub text 0 (String.rindex (String.trim text) '\n')
  in
  rejects "truncated checkpoint" no_trailer;
  (* single flipped byte in the middle of the body *)
  let flipped = Bytes.of_string text in
  let i = String.length text / 2 in
  Bytes.set flipped i (if Bytes.get flipped i = '0' then '1' else '0');
  rejects "bit-rotted checkpoint" (Bytes.to_string flipped)

let test_rejects_version_skew () =
  let text = Checkpoint.to_string (mid_checkpoint (bug "D2")) in
  (* swap the header line for a future version and re-hash the body, so
     the probe fails on the version check rather than on the hash *)
  let nl = String.index text '\n' in
  let rest = String.sub text (nl + 1) (String.length text - nl - 1) in
  let middle =
    String.sub rest 0 (String.rindex (String.trim rest) '\n' + 1)
  in
  let body =
    Printf.sprintf "fpga-debug-checkpoint/%d\n%s" (Checkpoint.version + 1)
      middle
  in
  let rehashed =
    body ^ Printf.sprintf "sha %s\n" (Digest.to_hex (Digest.string body))
  in
  match Checkpoint.of_string rehashed with
  | exception Checkpoint.Checkpoint_error msg ->
      check_bool "error names the version" true
        (let rec contains i =
           i + 7 <= String.length msg
           && (String.sub msg i 7 = "version" || contains (i + 1))
         in
         contains 0)
  | _ -> Alcotest.fail "future version accepted"

let test_rejects_wrong_design () =
  let ck = mid_checkpoint (bug "D2") in
  let other = bug "D4" in
  let flat =
    Fpga_sim.Elaborate.elaborate
      (Bug.design_of other ~buggy:true)
      ~top:other.Bug.top
  in
  let sim = Simulator.create flat in
  match Simulator.restore_checkpoint sim ck with
  | exception Checkpoint.Checkpoint_error _ -> ()
  | () -> Alcotest.fail "D2 checkpoint restored into the D4 design"

let test_load_missing_file () =
  match Checkpoint.load "/nonexistent/dir/nope.fdc" with
  | exception Checkpoint.Checkpoint_error _ -> ()
  | _ -> Alcotest.fail "loading a missing file did not raise cleanly"

(* --- replay determinism ---------------------------------------------- *)

(* The heart of the subsystem: restoring a serialized snapshot and
   continuing is observationally identical to never having stopped —
   output rows, $display log, stop flags, end cycle, and the VCD of the
   replayed window, byte for byte. *)
let replay_matches_straight ~kernel ~every (b : Bug.t) =
  let rc = Replay.record ~kernel ~every b in
  match rc.Replay.rec_checkpoints with
  | [] -> true (* run shorter than the interval: nothing to check *)
  | cps ->
      List.for_all
        (fun ck ->
          let ck = Checkpoint.of_string (Checkpoint.to_string ck) in
          let straight =
            Bug.run_design ~kernel ~vcd:true ~vcd_from:ck.Checkpoint.ck_cycle b
              (Bug.design_of b ~buggy:true)
          in
          let replayed = Replay.replay ~kernel ~from:ck b in
          straight.Bug.vcd = replayed.Bug.vcd
          && straight.Bug.rows = replayed.Bug.rows
          && straight.Bug.log = replayed.Bug.log
          && straight.Bug.stuck = replayed.Bug.stuck
          && straight.Bug.finished = replayed.Bug.finished
          && straight.Bug.cycles = replayed.Bug.cycles)
        cps

let prop_replay_deterministic =
  QCheck2.Test.make ~count:12
    ~name:"replay from any serialized checkpoint == straight run"
    QCheck2.Gen.(
      triple
        (oneofl property_bugs)
        (oneofl
           [
             Simulator.Event_driven;
             Simulator.Brute_force;
             Simulator.Lowered;
             Simulator.Lowered_dirty;
           ])
        (int_range 5 60))
    (fun (id, kernel, every) ->
      replay_matches_straight ~kernel ~every (bug id))

(* Every checkpoint of the D2 stream replays identically under every
   kernel - the fixed set the CI gate pins down. *)
let test_replay_d2_both_kernels () =
  List.iter
    (fun kernel ->
      check_bool "D2 deterministic" true
        (replay_matches_straight ~kernel ~every:50 (bug "D2")))
    [
      Simulator.Event_driven;
      Simulator.Brute_force;
      Simulator.Lowered;
      Simulator.Lowered_dirty;
    ]

(* Checkpoints are kernel-agnostic: a snapshot taken under one settle
   kernel restores into a simulator built with another, and the
   continued run is byte-identical to that kernel's straight run. This
   is what lets a lowered-kernel campaign hand a checkpoint to an
   event-driven debug session (and back). *)
let test_checkpoint_crosses_kernels () =
  let cross ~record_kernel ~replay_kernel (b : Bug.t) =
    let rc = Replay.record ~kernel:record_kernel ~every:10 b in
    match rc.Replay.rec_checkpoints with
    | [] -> Alcotest.failf "%s produced no checkpoints" b.Bug.id
    | cps ->
        let ck = List.nth cps ((List.length cps - 1) / 2) in
        let ck = Checkpoint.of_string (Checkpoint.to_string ck) in
        let straight =
          Bug.run_design ~kernel:replay_kernel ~vcd:true
            ~vcd_from:ck.Checkpoint.ck_cycle b
            (Bug.design_of b ~buggy:true)
        in
        let replayed = Replay.replay ~kernel:replay_kernel ~from:ck b in
        check_bool
          (Printf.sprintf "%s: %s checkpoint restored under %s" b.Bug.id
             (Simulator.kernel_name record_kernel)
             (Simulator.kernel_name replay_kernel))
          true
          (straight.Bug.vcd = replayed.Bug.vcd
          && straight.Bug.rows = replayed.Bug.rows
          && straight.Bug.log = replayed.Bug.log
          && straight.Bug.stuck = replayed.Bug.stuck
          && straight.Bug.finished = replayed.Bug.finished
          && straight.Bug.cycles = replayed.Bug.cycles)
  in
  List.iter
    (fun id ->
      let b = bug id in
      cross ~record_kernel:Simulator.Lowered
        ~replay_kernel:Simulator.Event_driven b;
      cross ~record_kernel:Simulator.Event_driven
        ~replay_kernel:Simulator.Lowered b;
      cross ~record_kernel:Simulator.Lowered
        ~replay_kernel:Simulator.Brute_force b;
      cross ~record_kernel:Simulator.Lowered_dirty
        ~replay_kernel:Simulator.Event_driven b;
      cross ~record_kernel:Simulator.Event_driven
        ~replay_kernel:Simulator.Lowered_dirty b;
      cross ~record_kernel:Simulator.Lowered_dirty
        ~replay_kernel:Simulator.Lowered b)
    [ "D2"; "C4" ]

(* --- bisection ------------------------------------------------------- *)

(* Linear-scan reference for the first failing cycle, computed from the
   two full straight-run reports alone. *)
let first_failing_linear (b : Bug.t) =
  let fixed = Bug.run_design b (Bug.design_of b ~buggy:false) in
  let buggy = Bug.run_design b (Bug.design_of b ~buggy:true) in
  let fixed_done = b.Bug.done_when <> None && not fixed.Bug.stuck in
  let buggy_done = b.Bug.done_when <> None && not buggy.Bug.stuck in
  let pre limit rows = List.filter (fun (c, _) -> c < limit) rows in
  let horizon = max buggy.Bug.cycles fixed.Bug.cycles in
  let rec scan c =
    if c > horizon then None
    else
      let limit = min c fixed.Bug.cycles in
      if
        pre limit buggy.Bug.rows <> pre limit fixed.Bug.rows
        || (fixed_done && (not buggy_done) && c >= fixed.Bug.cycles)
      then Some c
      else scan (c + 1)
  in
  scan 1

let test_bisect_matches_linear_reference () =
  List.iter
    (fun id ->
      let b = bug id in
      let expected = first_failing_linear b in
      let r = Replay.bisect ~every:16 b in
      check_bool
        (Printf.sprintf "%s bisect = linear scan" id)
        true
        (r.Replay.bi_first_failing = expected))
    property_bugs

let test_bisect_interval_invariance () =
  (* the answer is a property of the bug, not of the checkpoint grid *)
  let b = bug "D2" in
  let r50 = Replay.bisect ~every:50 b in
  let r7 = Replay.bisect ~every:7 b in
  check_bool "has an answer" true (r50.Replay.bi_first_failing <> None);
  check_bool "interval-invariant" true
    (r50.Replay.bi_first_failing = r7.Replay.bi_first_failing);
  (* a denser grid re-simulates a shorter tail *)
  check_bool "fine scan bounded by interval" true
    (r7.Replay.bi_replayed_cycles <= 7 + 1)

let suite =
  [
    Alcotest.test_case "serialize round-trip" `Quick test_string_roundtrip;
    Alcotest.test_case "file save/load round-trip" `Quick test_file_roundtrip;
    Alcotest.test_case "metadata escaping" `Quick test_meta_escaping;
    Alcotest.test_case "rejects corruption and truncation" `Quick
      test_rejects_corruption;
    Alcotest.test_case "rejects version skew" `Quick test_rejects_version_skew;
    Alcotest.test_case "rejects wrong-design restore" `Quick
      test_rejects_wrong_design;
    Alcotest.test_case "load missing file fails cleanly" `Quick
      test_load_missing_file;
    QCheck_alcotest.to_alcotest prop_replay_deterministic;
    Alcotest.test_case "D2 replay deterministic on both kernels" `Quick
      test_replay_d2_both_kernels;
    Alcotest.test_case "checkpoints cross settle kernels" `Quick
      test_checkpoint_crosses_kernels;
    Alcotest.test_case "bisect matches linear reference" `Quick
      test_bisect_matches_linear_reference;
    Alcotest.test_case "bisect is interval-invariant" `Quick
      test_bisect_interval_invariance;
  ]
