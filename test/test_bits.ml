(* Unit and property tests for the Bits bit-vector library. *)

open Fpga_bits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_construction () =
  check_int "zero width" 8 (Bits.width (Bits.zero 8));
  check_int "zero value" 0 (Bits.to_int (Bits.zero 8));
  check_int "one" 1 (Bits.to_int (Bits.one 8));
  check_int "ones 4" 15 (Bits.to_int (Bits.ones 4));
  check_int "of_int" 42 (Bits.to_int (Bits.of_int ~width:8 42));
  check_int "of_int truncates" 0x2A (Bits.to_int (Bits.of_int ~width:8 0x12A));
  check_int "of_int negative wraps" 0xFF (Bits.to_int (Bits.of_int ~width:8 (-1)));
  check_int "of_int neg wide" 0xFFFF_FFFF
    (Bits.to_int (Bits.of_int ~width:32 (-1)));
  check_bool "of_bool" true (Bits.bit (Bits.of_bool true) 0);
  Alcotest.check_raises "width 0 rejected" (Invalid_argument "Bits: width 0 < 1")
    (fun () -> ignore (Bits.zero 0))

let test_wide () =
  (* 128-bit arithmetic sanity *)
  let a = Bits.of_hex_string ~width:128 "ffffffffffffffff" in
  let b = Bits.one 128 in
  let s = Bits.add a b in
  check_string "2^64" "00000000000000010000000000000000" (Bits.to_hex_string s);
  let back = Bits.sub s b in
  check_bool "sub inverse" true (Bits.equal a back)

let test_strings () =
  check_int "binary" 10 (Bits.to_int (Bits.of_binary_string "1010"));
  check_int "binary underscores" 10 (Bits.to_int (Bits.of_binary_string "10_10"));
  check_int "hex" 0xDEAD (Bits.to_int (Bits.of_hex_string ~width:16 "dead"));
  check_int "hex underscore" 0xBEEF
    (Bits.to_int (Bits.of_hex_string ~width:16 "be_ef"));
  check_int "decimal" 1234 (Bits.to_int (Bits.of_decimal_string ~width:16 "1234"));
  check_string "to_binary" "1010" (Bits.to_binary_string (Bits.of_int ~width:4 10));
  check_string "to_hex pads" "0f" (Bits.to_hex_string (Bits.of_int ~width:8 15));
  check_string "to_string" "8'h2a" (Bits.to_string (Bits.of_int ~width:8 42))

let test_arith () =
  let b8 n = Bits.of_int ~width:8 n in
  check_int "add" 30 (Bits.to_int (Bits.add (b8 10) (b8 20)));
  check_int "add wraps" 4 (Bits.to_int (Bits.add (b8 250) (b8 10)));
  check_int "sub" 10 (Bits.to_int (Bits.sub (b8 30) (b8 20)));
  check_int "sub wraps" 246 (Bits.to_int (Bits.sub (b8 10) (b8 20)));
  check_int "mul" 200 (Bits.to_int (Bits.mul (b8 10) (b8 20)));
  check_int "mul wraps" 0xBF (Bits.to_int (Bits.mul (b8 19) (b8 37)));
  check_int "div" 4 (Bits.to_int (Bits.div (b8 9) (b8 2)));
  check_int "rem" 1 (Bits.to_int (Bits.rem (b8 9) (b8 2)));
  check_int "div by zero all ones" 255 (Bits.to_int (Bits.div (b8 9) (b8 0)));
  check_int "rem by zero is lhs" 9 (Bits.to_int (Bits.rem (b8 9) (b8 0)));
  check_int "neg" 246 (Bits.to_int (Bits.neg (b8 10)));
  Alcotest.check_raises "width mismatch"
    (Invalid_argument "Bits.add: width mismatch (8 vs 4)") (fun () ->
      ignore (Bits.add (b8 1) (Bits.one 4)))

let test_bitwise () =
  let b8 = Bits.of_int ~width:8 in
  check_int "and" 0x08 (Bits.to_int (Bits.logand (b8 0x0C) (b8 0x0A)));
  check_int "or" 0x0E (Bits.to_int (Bits.logor (b8 0x0C) (b8 0x0A)));
  check_int "xor" 0x06 (Bits.to_int (Bits.logxor (b8 0x0C) (b8 0x0A)));
  check_int "not" 0xF3 (Bits.to_int (Bits.lognot (b8 0x0C)));
  check_int "shl" 0x30 (Bits.to_int (Bits.shift_left (b8 0x0C) 2));
  check_int "shl overflow drops" 0x80 (Bits.to_int (Bits.shift_left (b8 0xC1) 7));
  check_int "shl by width" 0 (Bits.to_int (Bits.shift_left (b8 0xFF) 8));
  check_int "shr" 0x03 (Bits.to_int (Bits.shift_right (b8 0x0C) 2));
  check_int "asr positive" 0x03 (Bits.to_int (Bits.arith_shift_right (b8 0x0C) 2));
  check_int "asr negative" 0xE0 (Bits.to_int (Bits.arith_shift_right (b8 0x80) 2));
  check_int "asr saturates" 0xFF
    (Bits.to_int (Bits.arith_shift_right (b8 0x80) 20))

let test_structure () =
  let v = Bits.of_int ~width:8 0b1011_0010 in
  check_bool "bit 1" true (Bits.bit v 1);
  check_bool "bit 0" false (Bits.bit v 0);
  check_int "slice" 0b011 (Bits.to_int (Bits.slice v ~hi:6 ~lo:4));
  check_int "slice width" 3 (Bits.width (Bits.slice v ~hi:6 ~lo:4));
  let c = Bits.concat [ Bits.of_int ~width:4 0xA; Bits.of_int ~width:4 0x5 ] in
  check_int "concat" 0xA5 (Bits.to_int c);
  check_int "concat width" 8 (Bits.width c);
  let r = Bits.repeat 3 (Bits.of_int ~width:2 0b10) in
  check_int "repeat" 0b101010 (Bits.to_int r);
  check_int "resize up" 0xB2 (Bits.to_int (Bits.resize v 16));
  check_int "resize down" 0x2 (Bits.to_int (Bits.resize v 4));
  check_int "sign extend neg" 0xFFB2 (Bits.to_int (Bits.sign_extend v 16));
  check_int "sign extend pos" 0x32
    (Bits.to_int (Bits.sign_extend (Bits.of_int ~width:8 0x32) 16));
  let s = Bits.set_slice v ~hi:3 ~lo:0 (Bits.of_int ~width:4 0xF) in
  check_int "set_slice" 0xBF (Bits.to_int s);
  check_int "set_bit" 0xB3 (Bits.to_int (Bits.set_bit v 0 true));
  Alcotest.check_raises "bad slice"
    (Invalid_argument "Bits.slice: [9:0] out of range for width 8") (fun () ->
      ignore (Bits.slice v ~hi:9 ~lo:0))

let test_compare () =
  let b8 = Bits.of_int ~width:8 in
  check_bool "lt" true (Bits.lt (b8 3) (b8 5));
  check_bool "le eq" true (Bits.le (b8 5) (b8 5));
  check_bool "gt" true (Bits.gt (b8 7) (b8 5));
  check_bool "ge" true (Bits.ge (b8 5) (b8 5));
  check_bool "equal widths matter" false (Bits.equal (b8 5) (Bits.of_int ~width:4 5));
  check_bool "equal_value across widths" true
    (Bits.equal_value (b8 5) (Bits.of_int ~width:4 5));
  check_bool "unsigned 0x80 > 1" true (Bits.gt (b8 0x80) (b8 1));
  check_bool "signed 0x80 < 1" true (Bits.signed_lt (b8 0x80) (b8 1));
  check_bool "signed le" true (Bits.signed_le (b8 0xFF) (b8 0));
  check_int "to_signed_int" (-1) (Bits.to_signed_int (b8 0xFF));
  check_int "to_signed_int pos" 5 (Bits.to_signed_int (b8 5))

let test_reductions () =
  let b4 = Bits.of_int ~width:4 in
  check_bool "reduce_and all" true (Bits.reduce_and (b4 0xF));
  check_bool "reduce_and some" false (Bits.reduce_and (b4 0x7));
  check_bool "reduce_or zero" false (Bits.reduce_or (b4 0));
  check_bool "reduce_or some" true (Bits.reduce_or (b4 2));
  check_bool "reduce_xor odd" true (Bits.reduce_xor (b4 0b0111));
  check_bool "reduce_xor even" false (Bits.reduce_xor (b4 0b0101));
  check_bool "is_zero" true (Bits.is_zero (Bits.zero 100))

(* Property tests ---------------------------------------------------- *)

let gen_width = QCheck2.Gen.int_range 1 100

let gen_bits =
  QCheck2.Gen.(
    gen_width >>= fun w ->
    list_size (return w) bool >|= fun bs ->
    List.fold_left
      (fun (i, acc) b -> (i + 1, if b then Bits.set_bit acc i true else acc))
      (0, Bits.zero w) bs
    |> snd)

let gen_pair =
  QCheck2.Gen.(
    gen_bits >>= fun a ->
    list_size (return (Bits.width a)) bool >|= fun bs ->
    let b =
      List.fold_left
        (fun (i, acc) x -> (i + 1, if x then Bits.set_bit acc i true else acc))
        (0, Bits.zero (Bits.width a))
        bs
      |> snd
    in
    (a, b))

let prop name gen f = QCheck2.Test.make ~count:300 ~name gen f

let properties =
  [
    prop "add commutative" gen_pair (fun (a, b) ->
        Bits.equal (Bits.add a b) (Bits.add b a));
    prop "add/sub inverse" gen_pair (fun (a, b) ->
        Bits.equal a (Bits.sub (Bits.add a b) b));
    prop "neg is sub from zero" gen_bits (fun a ->
        Bits.equal (Bits.neg a) (Bits.sub (Bits.zero (Bits.width a)) a));
    prop "double negation" gen_bits (fun a -> Bits.equal a (Bits.neg (Bits.neg a)));
    prop "not involutive" gen_bits (fun a ->
        Bits.equal a (Bits.lognot (Bits.lognot a)));
    prop "de morgan" gen_pair (fun (a, b) ->
        Bits.equal
          (Bits.lognot (Bits.logand a b))
          (Bits.logor (Bits.lognot a) (Bits.lognot b)));
    prop "xor self is zero" gen_bits (fun a -> Bits.is_zero (Bits.logxor a a));
    prop "divmod reconstructs" gen_pair (fun (a, b) ->
        QCheck2.assume (not (Bits.is_zero b));
        let q = Bits.div a b and r = Bits.rem a b in
        Bits.equal a (Bits.add (Bits.mul q b) r) && Bits.lt r b);
    prop "binary round trip" gen_bits (fun a ->
        Bits.equal a (Bits.of_binary_string (Bits.to_binary_string a)));
    prop "hex round trip" gen_bits (fun a ->
        Bits.equal a
          (Bits.of_hex_string ~width:(Bits.width a) (Bits.to_hex_string a)));
    prop "concat then slice recovers" gen_pair (fun (a, b) ->
        let w = Bits.width a in
        let c = Bits.concat [ a; b ] in
        Bits.equal a (Bits.slice c ~hi:((2 * w) - 1) ~lo:w)
        && Bits.equal b (Bits.slice c ~hi:(w - 1) ~lo:0));
    prop "shift left then right" gen_bits (fun a ->
        let w = Bits.width a in
        QCheck2.assume (w > 2);
        let masked = Bits.slice a ~hi:(w - 3) ~lo:0 in
        Bits.equal_value masked
          (Bits.shift_right (Bits.shift_left a 2) 2 |> fun v ->
           Bits.slice v ~hi:(w - 3) ~lo:0));
    prop "compare antisymmetric" gen_pair (fun (a, b) ->
        Bits.compare a b = -Bits.compare b a);
    prop "resize preserves low bits" gen_bits (fun a ->
        let w = Bits.width a in
        let up = Bits.resize a (w + 17) in
        Bits.equal a (Bits.slice up ~hi:(w - 1) ~lo:0));
    prop "sign extend preserves signed value" gen_bits (fun a ->
        QCheck2.assume (Bits.width a <= 60);
        let v = Bits.to_signed_int a in
        Bits.to_signed_int (Bits.sign_extend a (Bits.width a + 3)) = v);
  ]

let suite =
  [
    Alcotest.test_case "construction" `Quick test_construction;
    Alcotest.test_case "wide vectors" `Quick test_wide;
    Alcotest.test_case "string conversions" `Quick test_strings;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "bitwise" `Quick test_bitwise;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "comparisons" `Quick test_compare;
    Alcotest.test_case "reductions" `Quick test_reductions;
  ]
  @ List.map QCheck_alcotest.to_alcotest properties

(* --- additional edge cases ----------------------------------------------- *)

let test_conversion_edges () =
  (* to_int refuses values beyond 62 bits but accepts wide vectors whose
     value fits *)
  let big = Bits.shift_left (Bits.one 100) 70 in
  Alcotest.check_raises "to_int overflow"
    (Failure "Bits.to_int: value exceeds 62 bits") (fun () ->
      ignore (Bits.to_int big));
  let small_in_wide = Bits.of_int ~width:100 12345 in
  check_int "wide but small" 12345 (Bits.to_int small_in_wide);
  check_int "to_int_trunc keeps the low bits" 0
    (Bits.to_int_trunc big land 0xFFFF);
  (* signed conversions at the width-1 boundaries *)
  check_int "1-bit signed 1 is -1" (-1) (Bits.to_signed_int (Bits.one 1));
  check_int "1-bit signed 0" 0 (Bits.to_signed_int (Bits.zero 1));
  check_int "min int8" (-128) (Bits.to_signed_int (Bits.of_int ~width:8 0x80));
  check_int "max int8" 127 (Bits.to_signed_int (Bits.of_int ~width:8 0x7F))

let test_shift_edges () =
  let v = Bits.of_int ~width:8 0xA5 in
  check_int "shift by zero is identity" 0xA5 (Bits.to_int (Bits.shift_left v 0));
  check_int "shift beyond width clears" 0
    (Bits.to_int (Bits.shift_right v 100));
  check_int "asr beyond width saturates sign" 0xFF
    (Bits.to_int (Bits.arith_shift_right v 100));
  Alcotest.check_raises "negative shift rejected"
    (Invalid_argument "Bits.shift_left: negative shift") (fun () ->
      ignore (Bits.shift_left v (-1)))

let test_wide_ops_128 () =
  let a = Bits.of_hex_string ~width:128 "0123456789abcdef0123456789abcdef" in
  let b = Bits.lognot a in
  check_bool "a and not a is zero" true (Bits.is_zero (Bits.logand a b));
  check_bool "a or not a is ones" true (Bits.equal (Bits.logor a b) (Bits.ones 128));
  let shifted = Bits.shift_left a 64 in
  Alcotest.(check string)
    "128-bit shift"
    "0123456789abcdef0000000000000000"
    (Bits.to_hex_string shifted);
  check_bool "divmod holds at 128 bits" true
    (let q = Bits.div a (Bits.of_int ~width:128 7) in
     let r = Bits.rem a (Bits.of_int ~width:128 7) in
     Bits.equal a (Bits.add (Bits.mul q (Bits.of_int ~width:128 7)) r))

let prop_set_slice_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"set_slice then slice recovers"
    QCheck2.Gen.(triple (int_range 8 40) (int_bound 1000000) (int_bound 1000000))
    (fun (w, a, b) ->
      let v = Bits.of_int ~width:w a in
      let hi = (w / 2) + 1 and lo = 2 in
      let chunk = Bits.of_int ~width:(hi - lo + 1) b in
      let v' = Bits.set_slice v ~hi ~lo chunk in
      Bits.equal (Bits.slice v' ~hi ~lo) chunk
      && Bits.equal (Bits.slice v' ~hi:1 ~lo:0) (Bits.slice v ~hi:1 ~lo:0)
      && (w - 1 < hi + 1
         || Bits.equal
              (Bits.slice v' ~hi:(w - 1) ~lo:(hi + 1))
              (Bits.slice v ~hi:(w - 1) ~lo:(hi + 1))))

let suite =
  suite
  @ [
      Alcotest.test_case "conversion edges" `Quick test_conversion_edges;
      Alcotest.test_case "shift edges" `Quick test_shift_edges;
      Alcotest.test_case "wide 128-bit ops" `Quick test_wide_ops_128;
      QCheck_alcotest.to_alcotest prop_set_slice_roundtrip;
    ]

(* --- word-level vs bit-at-a-time differential tests ----------------------- *)

(* Every limb-wise rewrite is pitted against the retained naive
   reference (Bits.Naive) over widths that straddle the 32-bit limb
   boundaries (1, 31-33, 63-65, 100+) and random operands. *)

let boundary_widths = [ 1; 2; 31; 32; 33; 63; 64; 65; 100; 127; 128; 129; 150 ]

let gen_boundary_width =
  QCheck2.Gen.(
    oneof [ oneofl boundary_widths; int_range 1 160 ])

(* A random vector of exactly width [w]. *)
let gen_bits_of_width w =
  QCheck2.Gen.(
    list_size (return w) bool >|= fun bs ->
    List.fold_left
      (fun (i, acc) b -> (i + 1, if b then Bits.set_bit acc i true else acc))
      (0, Bits.zero w) bs
    |> snd)

let gen_diff_bits = QCheck2.Gen.(gen_boundary_width >>= gen_bits_of_width)

let gen_diff_pair =
  QCheck2.Gen.(
    gen_diff_bits >>= fun a ->
    gen_bits_of_width (Bits.width a) >|= fun b -> (a, b))

(* A shift amount that exercises 0, sub-limb, cross-limb, and
   beyond-width cases. *)
let gen_shift_for w =
  QCheck2.Gen.(
    oneof [ int_range 0 (w + 4); oneofl [ 0; 1; 31; 32; 33; w - 1; w; w + 1 ] ]
    >|= fun k -> max 0 k)

let diff_prop name gen f = QCheck2.Test.make ~count:500 ~name gen f

let gen_bits_and_shift =
  QCheck2.Gen.(
    gen_diff_bits >>= fun a ->
    gen_shift_for (Bits.width a) >|= fun k -> (a, k))

let gen_bits_and_range =
  QCheck2.Gen.(
    gen_diff_bits >>= fun a ->
    let w = Bits.width a in
    int_range 0 (w - 1) >>= fun lo ->
    int_range lo (w - 1) >|= fun hi -> (a, hi, lo))

let gen_set_slice_case =
  QCheck2.Gen.(
    gen_bits_and_range >>= fun (a, hi, lo) ->
    gen_boundary_width >>= fun xw ->
    gen_bits_of_width xw >|= fun x -> (a, hi, lo, x))

let gen_concat_parts =
  QCheck2.Gen.(
    int_range 1 4 >>= fun n ->
    list_size (return n) gen_diff_bits)

let differential_properties =
  [
    diff_prop "shift_left vs naive" gen_bits_and_shift (fun (a, k) ->
        Bits.equal (Bits.shift_left a k) (Bits.Naive.shift_left a k));
    diff_prop "shift_right vs naive" gen_bits_and_shift (fun (a, k) ->
        Bits.equal (Bits.shift_right a k) (Bits.Naive.shift_right a k));
    diff_prop "arith_shift_right vs naive" gen_bits_and_shift (fun (a, k) ->
        Bits.equal
          (Bits.arith_shift_right a k)
          (Bits.Naive.arith_shift_right a k));
    diff_prop "slice vs naive" gen_bits_and_range (fun (a, hi, lo) ->
        Bits.equal (Bits.slice a ~hi ~lo) (Bits.Naive.slice a ~hi ~lo));
    diff_prop "set_slice vs naive" gen_set_slice_case (fun (a, hi, lo, x) ->
        Bits.equal
          (Bits.set_slice a ~hi ~lo x)
          (Bits.Naive.set_slice a ~hi ~lo x));
    diff_prop "set_slice no-op is phys-eq" gen_bits_and_range
      (fun (a, hi, lo) ->
        (* writing back the very bits that are already there must return
           the argument physically unchanged *)
        Bits.set_slice a ~hi ~lo (Bits.slice a ~hi ~lo) == a);
    diff_prop "concat vs naive" gen_concat_parts (fun parts ->
        Bits.equal (Bits.concat parts) (Bits.Naive.concat parts));
    diff_prop "repeat vs naive"
      QCheck2.Gen.(pair (int_range 1 5) gen_diff_bits)
      (fun (n, a) -> Bits.equal (Bits.repeat n a) (Bits.Naive.repeat n a));
    diff_prop "sign_extend vs naive"
      QCheck2.Gen.(
        gen_diff_bits >>= fun a ->
        int_range 1 48 >|= fun extra -> (a, Bits.width a + extra))
      (fun (a, w) ->
        Bits.equal (Bits.sign_extend a w) (Bits.Naive.sign_extend a w));
    diff_prop "mul vs naive" gen_diff_pair (fun (a, b) ->
        Bits.equal (Bits.mul a b) (Bits.Naive.mul a b));
    diff_prop "reduce_xor vs naive" gen_diff_bits (fun a ->
        Bits.reduce_xor a = Bits.Naive.reduce_xor a);
  ]

let suite = suite @ List.map QCheck_alcotest.to_alcotest differential_properties

(* --- directed limb-boundary cases ----------------------------------------- *)

(* The differential properties above only sample the 63/64/65 straddle
   widths; these pin the exact words so a limb-carry bug cannot hide
   behind generator luck. Expected strings computed with arbitrary-
   precision integer arithmetic. *)

let test_mul_limb_boundaries () =
  (* (2^w - 1)^2 mod 2^w = 1 at every straddle width *)
  List.iter
    (fun w ->
      check_bool
        (Printf.sprintf "ones^2 at width %d" w)
        true
        (Bits.equal (Bits.mul (Bits.ones w) (Bits.ones w)) (Bits.one w)))
    [ 63; 64; 65 ];
  let a w = Bits.of_hex_string ~width:w "123456789abcdef0" in
  let b w = Bits.of_hex_string ~width:w "0fedcba987654321" in
  check_string "mul 63" "2236d88fe5618cf0"
    (Bits.to_hex_string (Bits.mul (a 63) (b 63)));
  check_string "mul 64" "2236d88fe5618cf0"
    (Bits.to_hex_string (Bits.mul (a 64) (b 64)));
  check_string "mul 65" "02236d88fe5618cf0"
    (Bits.to_hex_string (Bits.mul (a 65) (b 65)))

let test_shift_limb_boundaries () =
  let shl w k = Bits.to_hex_string (Bits.shift_left (Bits.one w) k) in
  (* width 63: bit 62 is the MSB; shifting to 63 falls off the end *)
  check_string "63: 1<<62" "4000000000000000" (shl 63 62);
  check_string "63: 1<<63 overflows" "0000000000000000" (shl 63 63);
  (* width 64: bit 63 is the MSB; 64 falls off *)
  check_string "64: 1<<62" "4000000000000000" (shl 64 62);
  check_string "64: 1<<63" "8000000000000000" (shl 64 63);
  check_string "64: 1<<64 overflows" "0000000000000000" (shl 64 64);
  (* width 65: bit 64 lives alone in the third 32-bit limb *)
  check_string "65: 1<<63" "08000000000000000" (shl 65 63);
  check_string "65: 1<<64" "10000000000000000" (shl 65 64);
  (* and the MSB comes back down intact *)
  List.iter
    (fun w ->
      let top = Bits.shift_left (Bits.one w) (w - 1) in
      check_bool
        (Printf.sprintf "%d: msb >> back" w)
        true
        (Bits.equal (Bits.shift_right top (w - 1)) (Bits.one w)))
    [ 63; 64; 65 ]

let test_set_slice_three_limbs () =
  (* [70:10] of a width-100 vector touches 32-bit limbs 0, 1, and 2;
     the inserted value is 61 bits, itself spanning two limbs *)
  let chunk = Bits.of_hex_string ~width:61 "0bcdef0123456789" in
  let into_ones =
    Bits.set_slice (Bits.ones 100) ~hi:70 ~lo:10 chunk
  in
  check_string "insert into all-ones" "fffffffaf37bc048d159e27ff"
    (Bits.to_hex_string into_ones);
  let into_zero = Bits.set_slice (Bits.zero 100) ~hi:70 ~lo:10 chunk in
  check_string "insert into zero" "00000002f37bc048d159e2400"
    (Bits.to_hex_string into_zero);
  (* the inserted window reads back exactly, and the guard bits on
     either side of the window are untouched *)
  check_bool "window reads back" true
    (Bits.equal (Bits.slice into_zero ~hi:70 ~lo:10) chunk);
  check_bool "low guard bits" true
    (Bits.equal (Bits.slice into_ones ~hi:9 ~lo:0) (Bits.ones 10));
  check_bool "high guard bits" true
    (Bits.equal (Bits.slice into_ones ~hi:99 ~lo:71) (Bits.ones 29));
  check_bool "zero base guards stay zero" true
    (Bits.is_zero (Bits.slice into_zero ~hi:9 ~lo:0)
    && Bits.is_zero (Bits.slice into_zero ~hi:99 ~lo:71))

let suite =
  suite
  @ [
      Alcotest.test_case "mul at widths 63/64/65" `Quick
        test_mul_limb_boundaries;
      Alcotest.test_case "shifts at widths 63/64/65" `Quick
        test_shift_limb_boundaries;
      Alcotest.test_case "set_slice spanning 3 limbs" `Quick
        test_set_slice_three_limbs;
    ]

(* --- immediate (single-int) representation vs the limb reference ----------- *)

(* The lowered kernel keeps every signal of width <= 63 as one raw
   native int (Bits.Imm). Each Imm operation is pitted against the
   limb-wise Bits/Bits.Naive operation at the same width, with the
   unboxed widths 1, 62 and 63 always in the sample: width 63 uses all
   bits of the int, so set-top-bit patterns are *negative* raw ints and
   any `asr`/`Stdlib.compare` confusion shows up immediately. *)

module Imm = Bits.Imm

let imm_widths = [ 1; 2; 31; 32; 33; 62; 63 ]
let gen_imm_width = QCheck2.Gen.(oneof [ oneofl imm_widths; int_range 1 63 ])

let gen_imm_bits = QCheck2.Gen.(gen_imm_width >>= gen_bits_of_width)

let gen_imm_pair =
  QCheck2.Gen.(
    gen_imm_bits >>= fun a ->
    gen_bits_of_width (Bits.width a) >|= fun b -> (a, b))

let gen_imm_bits_shift =
  QCheck2.Gen.(
    gen_imm_bits >>= fun a ->
    gen_shift_for (Bits.width a) >|= fun k -> (a, k))

(* Lift a width-indexed imm binop back into limb form. *)
let via2 f a b =
  let w = Bits.width a in
  Imm.to_bits ~width:w (f w (Imm.of_bits a) (Imm.of_bits b))

let imm_prop name gen f = QCheck2.Test.make ~count:500 ~name gen f

let imm_properties =
  [
    imm_prop "imm of_bits/to_bits round-trip" gen_imm_bits (fun a ->
        Bits.equal a (Imm.to_bits ~width:(Bits.width a) (Imm.of_bits a)));
    imm_prop "imm patterns stay masked" gen_imm_bits (fun a ->
        let p = Imm.of_bits a in
        p land Imm.mask (Bits.width a) = p);
    imm_prop "imm add" gen_imm_pair (fun (a, b) ->
        Bits.equal (via2 Imm.add a b) (Bits.add a b));
    imm_prop "imm sub" gen_imm_pair (fun (a, b) ->
        Bits.equal (via2 Imm.sub a b) (Bits.sub a b));
    imm_prop "imm neg" gen_imm_bits (fun a ->
        let w = Bits.width a in
        Bits.equal (Imm.to_bits ~width:w (Imm.neg w (Imm.of_bits a))) (Bits.neg a));
    imm_prop "imm mul" gen_imm_pair (fun (a, b) ->
        Bits.equal (via2 Imm.mul a b) (Bits.Naive.mul a b));
    imm_prop "imm div" gen_imm_pair (fun (a, b) ->
        Bits.equal (via2 Imm.div a b) (Bits.div a b));
    imm_prop "imm rem" gen_imm_pair (fun (a, b) ->
        Bits.equal (via2 Imm.rem a b) (Bits.rem a b));
    imm_prop "imm logand/logor/logxor/lognot" gen_imm_pair (fun (a, b) ->
        let w = Bits.width a in
        let pa = Imm.of_bits a and pb = Imm.of_bits b in
        Bits.equal (Imm.to_bits ~width:w (Imm.logand pa pb)) (Bits.logand a b)
        && Bits.equal (Imm.to_bits ~width:w (Imm.logor pa pb)) (Bits.logor a b)
        && Bits.equal (Imm.to_bits ~width:w (Imm.logxor pa pb)) (Bits.logxor a b)
        && Bits.equal (Imm.to_bits ~width:w (Imm.lognot w pa)) (Bits.lognot a));
    imm_prop "imm shifts vs naive" gen_imm_bits_shift (fun (a, k) ->
        let w = Bits.width a in
        let p = Imm.of_bits a in
        Bits.equal
          (Imm.to_bits ~width:w (Imm.shift_left w p k))
          (Bits.Naive.shift_left a k)
        && Bits.equal
             (Imm.to_bits ~width:w (Imm.shift_right w p k))
             (Bits.Naive.shift_right a k)
        && Bits.equal
             (Imm.to_bits ~width:w (Imm.arith_shift_right w p k))
             (Bits.Naive.arith_shift_right a k));
    imm_prop "imm bit/slice" gen_imm_bits (fun a ->
        let w = Bits.width a in
        let p = Imm.of_bits a in
        let lo = w / 3 and hi = w - 1 in
        (w > 62 || Imm.bit p (w - 1) = Bits.bit a (w - 1))
        && Bits.equal
             (Imm.to_bits ~width:(hi - lo + 1) (Imm.slice p ~hi ~lo))
             (Bits.Naive.slice a ~hi ~lo));
    imm_prop "imm comparisons" gen_imm_pair (fun (a, b) ->
        let w = Bits.width a in
        let pa = Imm.of_bits a and pb = Imm.of_bits b in
        Imm.equal pa pb = Bits.equal_value a b
        && Imm.is_zero pa = Bits.is_zero a
        && compare (Imm.ucompare w pa pb) 0 = compare (Bits.compare a b) 0
        && Imm.lt w pa pb = Bits.lt a b
        && Imm.le w pa pb = Bits.le a b
        && Imm.gt w pa pb = Bits.gt a b
        && Imm.ge w pa pb = Bits.ge a b
        && Imm.signed_lt w pa pb = Bits.signed_lt a b
        && Imm.signed_le w pa pb = Bits.signed_le a b);
    imm_prop "imm reductions" gen_imm_bits (fun a ->
        let w = Bits.width a in
        let p = Imm.of_bits a in
        Imm.reduce_and w p = Bits.reduce_and a
        && Imm.reduce_or p = Bits.reduce_or a
        && Imm.reduce_xor p = Bits.reduce_xor a);
    imm_prop "imm sign_extend" gen_imm_bits (fun a ->
        let from = Bits.width a in
        List.for_all
          (fun w ->
            w < from
            || Bits.equal
                 (Imm.to_bits ~width:w
                    (Imm.sign_extend ~from w (Imm.of_bits a)))
                 (Bits.Naive.sign_extend a w))
          [ from; 62; 63 ]);
    imm_prop "imm resize truncates like Bits.resize" gen_imm_bits (fun a ->
        let from = Bits.width a in
        List.for_all
          (fun w ->
            Bits.equal
              (Imm.to_bits ~width:w (Imm.resize w (Imm.of_bits a)))
              (Bits.resize a w))
          [ 1; (from + 1) / 2; from ]);
    imm_prop "imm to_int_trunc" gen_imm_bits (fun a ->
        Imm.to_int_trunc (Imm.of_bits a) = Bits.to_int_trunc a);
  ]

(* Directed cases the generators cannot be trusted to hit: the exact
   top-bit-of-width-63 patterns (negative raw ints), mask-on-write,
   and the 63/64/65 seam where values overflow out of the immediate
   form into limbs. *)

let test_imm_width63_top_bit () =
  check_bool "fits 63" true (Imm.fits 63);
  check_bool "fits 64 is limb territory" false (Imm.fits 64);
  check_bool "fits 65 is limb territory" false (Imm.fits 65);
  check_int "mask 63 is all bits" (-1) (Imm.mask 63);
  check_int "ones(63) raw pattern is -1" (-1) (Imm.of_bits (Bits.ones 63));
  (* ones + one wraps to zero at the full int width *)
  check_int "ones+1 wraps" 0 (Imm.add 63 (Imm.of_bits (Bits.ones 63)) 1);
  (* unsigned order: all-ones (raw -1) is the maximum, not the minimum *)
  check_bool "ucompare treats -1 as max" true
    (Imm.ucompare 63 (Imm.of_bits (Bits.ones 63)) 1 > 0);
  check_bool "unsigned 1 < ones" true (Imm.lt 63 1 (Imm.of_bits (Bits.ones 63)));
  (* signed order: the same pattern is -1, below zero *)
  check_bool "signed ones < 0" true
    (Imm.signed_lt 63 (Imm.of_bits (Bits.ones 63)) 0);
  (* 1 lsl 62 is the width-63 sign bit *)
  check_bool "shift into the sign bit" true
    (Bits.equal
       (Imm.to_bits ~width:63 (Imm.shift_left 63 1 62))
       (Bits.shift_left (Bits.one 63) 62));
  (* division on negative raw patterns must stay unsigned *)
  let top = Imm.shift_left 63 1 62 in
  check_int "unsigned div of top bit" top (Imm.div 63 top 1);
  check_int "top/top = 1" 1 (Imm.div 63 top top);
  check_int "rem below divisor" 1 (Imm.rem 63 (Imm.add 63 top 1) top)

let test_imm_mask_on_write () =
  check_int "of_int masks width 1" 1 (Imm.of_int ~width:1 (-1));
  check_int "of_int masks width 62" (Imm.mask 62) (Imm.of_int ~width:62 (-1));
  check_int "of_int keeps width 63 raw" (-1) (Imm.of_int ~width:63 (-1));
  (* width-62 ops never leak into bit 62 *)
  let m62 = Imm.mask 62 in
  check_int "add wraps at 62" 0 (Imm.add 62 m62 1);
  check_int "lognot stays masked" 0 (Imm.lognot 62 m62);
  check_int "sign_extend 1->62 fills exactly 62 bits" m62
    (Imm.sign_extend ~from:1 62 1)

let test_imm_mul_overflow_seam () =
  (* the low 63 bits of a product depend only on the low 63 bits of the
     operands: computing in the immediate form after resize must match
     resizing the 65-bit limb product *)
  let a = Bits.of_hex_string ~width:65 "123456789abcdef01" in
  let b = Bits.of_hex_string ~width:65 "1fedcba9876543210" in
  let low63 x = Bits.resize x 63 in
  check_bool "63-bit window of a 65-bit product" true
    (Bits.equal
       (Imm.to_bits ~width:63
          (Imm.mul 63 (Imm.of_bits (low63 a)) (Imm.of_bits (low63 b))))
       (low63 (Bits.Naive.mul a b)));
  (* at width exactly 63, squaring all-ones wraps to 1 in both forms *)
  check_int "ones(63)^2 = 1 immediate" 1
    (Imm.mul 63 (Imm.of_bits (Bits.ones 63)) (Imm.of_bits (Bits.ones 63)));
  check_bool "ones(63)^2 = 1 limbs" true
    (Bits.equal (Bits.Naive.mul (Bits.ones 63) (Bits.ones 63)) (Bits.one 63))

let suite =
  suite
  @ List.map QCheck_alcotest.to_alcotest imm_properties
  @ [
      Alcotest.test_case "imm width-63 top-bit patterns" `Quick
        test_imm_width63_top_bit;
      Alcotest.test_case "imm mask-on-write" `Quick test_imm_mask_on_write;
      Alcotest.test_case "imm/limb mul overflow seam" `Quick
        test_imm_mul_overflow_seam;
    ]
