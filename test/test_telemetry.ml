(* Tests for the telemetry core (counters, histograms, spans, event
   bus), the simulator's kernel-profiling integration, and the profile
   report. Every test that enables telemetry restores the disabled
   default on exit so the rest of the suite keeps the zero-cost path. *)

open Fpga_sim
module Bits = Fpga_bits.Bits
module Telemetry = Fpga_telemetry.Telemetry
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let b w v = Bits.of_int ~width:w v
let sim_of src top = Testbench.of_source ~top src

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* Run [f] with telemetry enabled and a clean slate, then restore the
   disabled default (flag, depth, sampling, contents) even on failure. *)
let with_telemetry ?depth ?step_sample f =
  Telemetry.enable ();
  Telemetry.reset ();
  (match depth with
  | Some d -> Telemetry.Bus.set_depth (Telemetry.bus ()) d
  | None -> ());
  let old_sample = Telemetry.step_sample () in
  (match step_sample with
  | Some s -> Telemetry.set_step_sample s
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Bus.set_depth (Telemetry.bus ()) 8192;
      Telemetry.set_step_sample old_sample;
      Telemetry.reset ();
      Telemetry.disable ())
    f

(* --- core: counters, histograms, spans, bus ------------------------ *)

let test_counter_gating () =
  let c = Telemetry.Counter.make "test.gating" in
  Telemetry.disable ();
  Telemetry.Counter.bump c 5;
  Telemetry.Counter.incr c;
  check_int "disabled bumps are no-ops" 0 (Telemetry.Counter.value c);
  with_telemetry (fun () ->
      Telemetry.Counter.bump c 5;
      Telemetry.Counter.incr c;
      check_int "enabled bumps count" 6 (Telemetry.Counter.value c);
      (* handles are name-keyed: a second handle for the same name reads
         and writes the same per-domain cell *)
      let c' = Telemetry.Counter.make "test.gating" in
      check_int "same name reads the same cell" 6 (Telemetry.Counter.value c');
      Telemetry.Counter.incr c';
      check_int "same name writes the same cell" 7 (Telemetry.Counter.value c));
  check_int "reset zeroes the counter" 0 (Telemetry.Counter.value c)

let test_histogram () =
  with_telemetry (fun () ->
      let h = Telemetry.Histogram.make "test.hist" in
      List.iter (Telemetry.Histogram.observe h) [ 0; 1; 5; 8; 8 ];
      let s = Telemetry.Histogram.snapshot h in
      check_int "count" 5 s.Telemetry.Histogram.hs_count;
      check_int "sum" 22 s.Telemetry.Histogram.hs_sum;
      check_int "min" 0 s.Telemetry.Histogram.hs_min;
      check_int "max" 8 s.Telemetry.Histogram.hs_max;
      (* buckets: 0 -> bound 0; 1 -> bound 1; 5 -> bound 7; 8,8 -> 15 *)
      Alcotest.(check (list (pair int int)))
        "power-of-two buckets"
        [ (0, 1); (1, 1); (7, 1); (15, 2) ]
        s.Telemetry.Histogram.hs_buckets)

let test_span () =
  with_telemetry (fun () ->
      let r = Telemetry.span "test.span" (fun () -> 41 + 1) in
      check_int "span returns the result" 42 r;
      ignore (Telemetry.span "test.span" Fun.id);
      (try
         Telemetry.span "test.span" (fun () -> failwith "boom")
       with Failure _ -> ());
      match
        List.find_opt
          (fun (n, _, _) -> n = "test.span")
          (Telemetry.report ()).Telemetry.r_spans
      with
      | Some (_, calls, secs) ->
          check_int "three calls recorded (exception included)" 3 calls;
          check_bool "non-negative total" true (secs >= 0.0)
      | None -> Alcotest.fail "span not recorded")

let test_bus_ring () =
  with_telemetry ~depth:4 (fun () ->
      let ev i =
        {
          Telemetry.ev_cycle = i;
          ev_source = "test";
          ev_kind = "e";
          ev_data = [];
        }
      in
      for i = 0 to 5 do
        Telemetry.Bus.publish (Telemetry.bus ()) (ev i)
      done;
      check_int "depth" 4 (Telemetry.Bus.depth (Telemetry.bus ()));
      check_int "published" 6 (Telemetry.Bus.published (Telemetry.bus ()));
      check_int "dropped" 2 (Telemetry.Bus.dropped (Telemetry.bus ()));
      check_int "retained" 4 (Telemetry.Bus.length (Telemetry.bus ()));
      Alcotest.(check (list int))
        "most recent entries retained, oldest first" [ 2; 3; 4; 5 ]
        (List.map
           (fun e -> e.Telemetry.ev_cycle)
           (Telemetry.Bus.events (Telemetry.bus ()))))

let test_bus_disabled () =
  Telemetry.disable ();
  let before = Telemetry.Bus.published (Telemetry.bus ()) in
  Telemetry.Bus.publish (Telemetry.bus ())
    { Telemetry.ev_cycle = 0; ev_source = "t"; ev_kind = "k"; ev_data = [] };
  check_int "disabled publish is a no-op" before
    (Telemetry.Bus.published (Telemetry.bus ()))

(* --- simulator integration ----------------------------------------- *)

let counter_src =
  {|
module top (input clk, input enable, output reg [7:0] count, output [7:0] next);
  assign next = count + 8'd1;
  always @(posedge clk) if (enable) count <= next;
endmodule
|}

let test_stats_gating () =
  Telemetry.disable ();
  let sim = sim_of counter_src "top" in
  Simulator.run sim 5;
  check_bool "no stats when telemetry was off at create" true
    (Simulator.stats sim = None);
  check_bool "no toggle counts either" true (Simulator.toggle_counts sim = [])

let test_stats_and_hottest () =
  with_telemetry ~step_sample:1 (fun () ->
      let sim = sim_of counter_src "top" in
      Simulator.set_input sim "enable" (b 1 1);
      Simulator.run sim 8;
      let st = Option.get (Simulator.stats sim) in
      check_int "steps" 8 st.Simulator.st_steps;
      check_int "two settles per cycle" 16 st.Simulator.st_settles;
      check_bool "evaluated <= rounds" true
        (st.Simulator.st_nodes_evaluated <= st.Simulator.st_node_rounds);
      check_int "skipped = rounds - evaluated"
        (st.Simulator.st_node_rounds - st.Simulator.st_nodes_evaluated)
        st.Simulator.st_nodes_skipped;
      check_bool "count register commits each cycle" true
        (st.Simulator.st_nba_commits >= 8);
      let eff = Option.get (Simulator.kernel_efficiency sim) in
      check_bool "efficiency in (0,1]" true (eff > 0.0 && eff <= 1.0);
      let hottest = Simulator.hottest_signals ~k:2 sim in
      check_int "top-k limit respected" 2 (List.length hottest);
      check_bool "count and next are the hot signals" true
        (List.mem_assoc "count" hottest && List.mem_assoc "next" hottest);
      (* the bus carries one "step" event per completed cycle *)
      let steps =
        List.filter
          (fun e -> e.Telemetry.ev_kind = "step")
          (Telemetry.Bus.events (Telemetry.bus ()))
      in
      check_int "one step event per cycle at sample interval 1" 8
        (List.length steps);
      check_int "step events are 0-based completed cycles" 0
        (List.hd steps).Telemetry.ev_cycle)

(* Step events are sampled: one aggregated bus event per window, with
   exact totals carried in the payload. *)
let test_step_event_sampling () =
  with_telemetry ~step_sample:4 (fun () ->
      let sim = sim_of counter_src "top" in
      Simulator.set_input sim "enable" (b 1 1);
      Simulator.run sim 8;
      let st = Option.get (Simulator.stats sim) in
      check_int "stats totals stay exact" 8 st.Simulator.st_steps;
      let steps =
        List.filter
          (fun e -> e.Telemetry.ev_kind = "step")
          (Telemetry.Bus.events (Telemetry.bus ()))
      in
      check_int "one aggregated event per 4-cycle window" 2
        (List.length steps);
      List.iter
        (fun e ->
          check_int "window size in payload" 4
            (int_of_string (List.assoc "cycles" e.Telemetry.ev_data)))
        steps;
      let evaluated =
        List.fold_left
          (fun acc e ->
            acc + int_of_string (List.assoc "evaluated" e.Telemetry.ev_data))
          0 steps
      in
      check_int "windows sum to the exact evaluation total"
        st.Simulator.st_nodes_evaluated evaluated)

(* Each domain records into its own sink: worker bumps never land in
   the parent's counters, and the pool-side merge sums reports. *)
let test_domain_isolation () =
  with_telemetry (fun () ->
      let c = Telemetry.Counter.make "test.domains" in
      Telemetry.Counter.bump c 2;
      let worker =
        Domain.spawn (fun () ->
            (* inherited: the enabled flag; not inherited: the counts *)
            check_bool "worker inherits the enabled flag" true
              (Telemetry.enabled ());
            check_int "worker starts with an empty sink" 0
              (Telemetry.Counter.value c);
            Telemetry.Counter.bump c 5;
            Telemetry.Bus.publish (Telemetry.bus ())
              {
                Telemetry.ev_cycle = 1;
                ev_source = "worker";
                ev_kind = "e";
                ev_data = [];
              };
            Telemetry.report ())
      in
      let wr = Domain.join worker in
      check_int "worker bumps stay out of the parent sink" 2
        (Telemetry.Counter.value c);
      check_int "worker events stay off the parent bus" 0
        (List.length
           (List.filter
              (fun e -> e.Telemetry.ev_source = "worker")
              (Telemetry.Bus.events (Telemetry.bus ()))));
      let parent = Telemetry.report () in
      let merged = Telemetry.merge parent wr in
      check_int "merge sums counters across sinks" 7
        (List.assoc "test.domains" merged.Telemetry.r_counters);
      check_int "merge sums bus publish accounting"
        (parent.Telemetry.r_bus_published + wr.Telemetry.r_bus_published)
        merged.Telemetry.r_bus_published)

let test_on_step_hook () =
  Telemetry.disable ();
  let sim = sim_of counter_src "top" in
  let seen = ref [] and seen2 = ref 0 in
  Simulator.on_step sim (fun c -> seen := c :: !seen);
  Simulator.on_step sim (fun _ -> incr seen2);
  Simulator.run sim 4;
  Alcotest.(check (list int))
    "hook sees completed cycles in order" [ 0; 1; 2; 3 ] (List.rev !seen);
  check_int "multiple hooks all fire" 4 !seen2

let display_src =
  {|
module top (input clk, output reg [31:0] n);
  always @(posedge clk) begin
    n <= n + 32'd1;
    $display("n=%d", n);
  end
endmodule
|}

(* Satellite (b): reading the log repeatedly must not re-reverse the
   whole history each time. 100 reads over a log growing to 10k entries
   finishes far inside the budget; the pre-fix quadratic append showed
   up at this scale. *)
let test_log_linear () =
  Telemetry.disable ();
  let sim = sim_of display_src "top" in
  let t0 = Sys.time () in
  for _ = 1 to 100 do
    Simulator.run sim 100;
    ignore (Simulator.log sim)
  done;
  let l = Simulator.log sim in
  check_int "10k displays logged" 10_000 (List.length l);
  check_int "oldest entry first" 0 (fst (List.hd l));
  check_bool "repeated reads return the memoized list" true
    (Simulator.log sim == l);
  check_bool "10k displays with repeated reads stay fast" true
    (Sys.time () -. t0 < 5.0)

(* Acceptance: the kernels stay byte-identical with telemetry enabled
   (the instrumented settle loop must not change scheduling). *)
let test_kernels_identical_with_telemetry () =
  with_telemetry (fun () ->
      let bug = Option.get (Registry.find "D2") in
      let run kernel =
        let design = Bug.design_of bug ~buggy:true in
        let sim = Testbench.of_design ~kernel ~top:bug.Bug.top design in
        for i = 0 to 199 do
          List.iter
            (fun (n, v) -> Simulator.set_input sim n v)
            (bug.Bug.stimulus i);
          Simulator.step sim
        done;
        Simulator.log sim
      in
      check_bool "event-driven log == brute-force log, telemetry on" true
        (run Simulator.Event_driven = run Simulator.Brute_force))

(* --- monitors publish onto the bus ---------------------------------- *)

let test_losscheck_publishes () =
  with_telemetry (fun () ->
      let log = [ (3, "[LOSSCHECK] potential data loss at r1") ] in
      let al = Fpga_debug.Losscheck.alarms log in
      Alcotest.(check (list (pair int string))) "alarm decoded" [ (3, "r1") ] al;
      match
        List.find_opt
          (fun e -> e.Telemetry.ev_source = "losscheck")
          (Telemetry.Bus.events (Telemetry.bus ()))
      with
      | Some e ->
          check_int "alarm cycle" 3 e.Telemetry.ev_cycle;
          Alcotest.(check (list (pair string string)))
            "alarm payload"
            [ ("register", "r1") ]
            e.Telemetry.ev_data;
          (* alarm_registers decodes without publishing a second time *)
          ignore (Fpga_debug.Losscheck.alarm_registers log);
          check_int "no double publish" 1
            (List.length
               (List.filter
                  (fun e -> e.Telemetry.ev_source = "losscheck")
                  (Telemetry.Bus.events (Telemetry.bus ()))))
      | None -> Alcotest.fail "no losscheck event on the bus")

let test_dep_monitor_publishes () =
  with_telemetry (fun () ->
      let design =
        Fpga_hdl.Parser.parse_design
          {|
module top (input clk, input [7:0] d, output reg [7:0] q);
  always @(posedge clk) q <= d;
endmodule
|}
      in
      let m = Option.get (Fpga_hdl.Ast.find_module design "top") in
      let plan = Fpga_debug.Dep_monitor.analyze ~target:"q" ~cycles:4 m in
      let log = [ (7, "[DEP] q = 42") ] in
      let us = Fpga_debug.Dep_monitor.updates plan log in
      check_int "update decoded" 1 (List.length us);
      check_int "dep_monitor event on the bus" 1
        (List.length
           (List.filter
              (fun e -> e.Telemetry.ev_source = "dep_monitor")
              (Telemetry.Bus.events (Telemetry.bus ())))))

(* --- profile report -------------------------------------------------- *)

let test_profile_json () =
  let bug = Option.get (Registry.find "D2") in
  let p = Fpga_report.Profile.run ~cycles:200 ~buffer:64 bug in
  Telemetry.reset ();
  Telemetry.Bus.set_depth (Telemetry.bus ()) 8192;
  check_int "ran the requested cycles" 200 p.Fpga_report.Profile.p_cycles_run;
  check_bool "telemetry restored to disabled" false (Telemetry.enabled ());
  check_int "bus depth honours --buffer" 64 p.Fpga_report.Profile.p_bus_depth;
  check_bool "small buffer drops events" true
    (p.Fpga_report.Profile.p_bus_dropped > 0);
  check_int "retained capped at depth" 64
    p.Fpga_report.Profile.p_bus_retained;
  let json = Fpga_report.Profile.to_json p in
  List.iter
    (fun key -> check_bool key true (contains json key))
    [
      "\"schema\": \"fpga-debug-profile/2\"";
      "\"kernel_stats\"";
      "\"kernel_efficiency\"";
      "\"nodes_skipped\"";
      "\"settle_rounds\"";
      "\"hottest_signals\"";
      "\"phases\"";
      "\"bus\"";
      "\"dropped\"";
      (* schema /2: lowered section (auto kernel is a lowered variant
         on every testbed design) *)
      "\"lowered\"";
      "\"closures_run\"";
      "\"skip_rate\"";
      "\"commit_per_edge\"";
    ];
  check_bool "hottest signals present" true
    (p.Fpga_report.Profile.p_hottest <> [])

let suite =
  [
    Alcotest.test_case "counter gating on the global switch" `Quick
      test_counter_gating;
    Alcotest.test_case "histogram buckets and moments" `Quick test_histogram;
    Alcotest.test_case "span records calls and survives exceptions" `Quick
      test_span;
    Alcotest.test_case "bus ring keeps newest, counts drops" `Quick
      test_bus_ring;
    Alcotest.test_case "bus publish disabled is a no-op" `Quick
      test_bus_disabled;
    Alcotest.test_case "no stats allocated when disabled" `Quick
      test_stats_gating;
    Alcotest.test_case "kernel stats, hottest signals, step events" `Quick
      test_stats_and_hottest;
    Alcotest.test_case "step events aggregate per sampling window" `Quick
      test_step_event_sampling;
    Alcotest.test_case "per-domain sinks isolate and merge" `Quick
      test_domain_isolation;
    Alcotest.test_case "on_step hooks fire per completed cycle" `Quick
      test_on_step_hook;
    Alcotest.test_case "10k-display log reads stay linear-ish" `Quick
      test_log_linear;
    Alcotest.test_case "kernels byte-identical with telemetry on" `Quick
      test_kernels_identical_with_telemetry;
    Alcotest.test_case "losscheck alarms publish once" `Quick
      test_losscheck_publishes;
    Alcotest.test_case "dep monitor updates publish" `Quick
      test_dep_monitor_publishes;
    Alcotest.test_case "profile JSON schema and drop accounting" `Quick
      test_profile_json;
  ]
