(* Campaign engine: pool ordering and error isolation, determinism of
   the full-testbed campaign across pool widths (the serial-vs-parallel
   acceptance check), report schema, and telemetry merging at join. *)

module Campaign = Fpga_campaign.Campaign
module Registry = Fpga_testbed.Registry
module Telemetry = Fpga_telemetry.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Results come back ordered by submission index with the right labels
   and values, whatever the pool width. *)
let test_pool_ordering () =
  let jobs =
    Array.init 16 (fun i ->
        { Campaign.label = Printf.sprintf "j%d" i; work = (fun () -> i * i) })
  in
  let results, stats = Campaign.run_pool ~domains:4 jobs in
  check_int "every job has a result" 16 (Array.length results);
  Array.iteri
    (fun i (r : int Campaign.job_result) ->
      check_int "ordered by submission index" i r.Campaign.jr_id;
      check_string "label preserved" (Printf.sprintf "j%d" i)
        r.Campaign.jr_label;
      match r.Campaign.jr_value with
      | Ok v -> check_int "value" (i * i) v
      | Error e -> Alcotest.failf "job %d raised: %s" i e)
    results;
  check_int "jobs accounted" 16 stats.Campaign.ps_jobs;
  check_int "one busy slot per worker" stats.Campaign.ps_domains
    (Array.length stats.Campaign.ps_busy)

(* A raising job becomes an [Error] result carrying the exception text;
   the rest of the queue still drains. *)
let test_pool_error_isolation () =
  let jobs =
    [|
      { Campaign.label = "ok1"; work = (fun () -> 1) };
      { Campaign.label = "boom"; work = (fun () -> failwith "kaboom") };
      { Campaign.label = "ok2"; work = (fun () -> 2) };
    |]
  in
  let results, _ = Campaign.run_pool ~domains:2 jobs in
  (match results.(1).Campaign.jr_value with
  | Error e ->
      check_bool "error carries exception text" true (contains e "kaboom");
      (* the backtrace rides along, so a failing job keeps its stderr
         context (dune builds with -g, so frames are recorded) *)
      check_bool "error carries the backtrace" true
        (contains e "Raised" || contains e "Called")
  | Ok _ -> Alcotest.fail "raising job reported Ok");
  (match (results.(0).Campaign.jr_value, results.(2).Campaign.jr_value) with
  | Ok 1, Ok 2 -> ()
  | _ -> Alcotest.fail "surviving jobs lost their results")

(* The pool never spawns more workers than jobs, and a non-positive
   width degrades to the inline serial path. *)
let test_pool_clamps_domains () =
  let three =
    Array.init 3 (fun i ->
        { Campaign.label = string_of_int i; work = (fun () -> i) })
  in
  let _, stats = Campaign.run_pool ~domains:8 three in
  check_int "width clamped to job count" 3 stats.Campaign.ps_domains;
  let _, stats = Campaign.run_pool ~domains:0 three in
  check_int "non-positive width runs inline" 1 stats.Campaign.ps_domains;
  check_bool "utilization within [0,1]" true
    (stats.Campaign.ps_utilization >= 0.0
    && stats.Campaign.ps_utilization <= 1.000001)

(* The acceptance check: the full Table 2 testbed (repro + kernel
   differential + a cycle sweep) on four domains produces verdicts
   structurally identical to the serial reference — including $display
   logs, VCD text, symptom lists, and cycle counts. *)
let test_campaign_determinism () =
  let bugs = Registry.all in
  let serial =
    Campaign.run ~domains:1 ~differential:true ~sweeps:[ 100 ] bugs
  in
  let par = Campaign.run ~domains:4 ~differential:true ~sweeps:[ 100 ] bugs in
  check_int "same job count"
    (Array.length serial.Campaign.c_results)
    (Array.length par.Campaign.c_results);
  Array.iteri
    (fun i (s : Campaign.verdict Campaign.job_result) ->
      let p = par.Campaign.c_results.(i) in
      check_string "same label at same index" s.Campaign.jr_label
        p.Campaign.jr_label;
      check_bool
        (Printf.sprintf "verdict %s identical (log, vcd, symptoms)"
           s.Campaign.jr_label)
        true
        (s.Campaign.jr_value = p.Campaign.jr_value))
    serial.Campaign.c_results;
  check_int "same simulated-cycle total" serial.Campaign.c_cycles
    par.Campaign.c_cycles;
  check_bool "every testbed job ok" true (Campaign.ok serial)

(* The JSON report is schema-pinned and carries the aggregate and
   waveform-summary fields CI consumes. *)
let test_to_json_schema () =
  let bug = Option.get (Registry.find "D2") in
  let c = Campaign.run ~domains:2 ~differential:true [ bug ] in
  let json = Campaign.to_json c in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "report contains %s" needle) true
        (contains json needle))
    [
      "\"schema\": \"fpga-debug-campaign/1\"";
      "\"label\": \"repro:D2\"";
      "\"label\": \"differential:D2\"";
      "\"vcd_md5\"";
      "\"pool_utilization\"";
      "\"cycles_per_sec\"";
    ]

(* Telemetry recorded inside worker domains lands in per-domain sinks
   that the pool sums at join. 1+2+...+8 = 36 across two workers. *)
let test_pool_merges_telemetry () =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  let counter = Telemetry.Counter.make "campaign.test_bumps" in
  let jobs =
    Array.init 8 (fun i ->
        {
          Campaign.label = Printf.sprintf "bump%d" i;
          work = (fun () -> Telemetry.Counter.bump counter (i + 1));
        })
  in
  let _, stats = Campaign.run_pool ~domains:2 jobs in
  let merged =
    List.assoc_opt "campaign.test_bumps"
      stats.Campaign.ps_telemetry.Telemetry.r_counters
  in
  check_int "merged counter sums every worker's bumps" 36
    (Option.value merged ~default:0);
  check_int "caller's own sink untouched by workers" 0
    (Telemetry.Counter.value counter)

(* The replay job proves checkpoint/replay determinism per bug: a
   window replayed from the serialized middle snapshot is byte-identical
   to the straight run, and a too-short run is vacuously ok. *)
let test_replay_jobs () =
  let bugs =
    List.map (fun id -> Option.get (Registry.find id)) [ "D2"; "D8" ]
  in
  let c = Campaign.run ~domains:2 ~replay_every:50 bugs in
  check_bool "replay jobs all ok" true (Campaign.ok c);
  let find label =
    Array.to_list c.Campaign.c_results
    |> List.find (fun r -> r.Campaign.jr_label = label)
  in
  (match (find "replay:D2:50").Campaign.jr_value with
  | Ok v -> check_bool "D2 replayed a real window" true
      (contains v.Campaign.v_detail "identical to straight run")
  | Error e -> Alcotest.failf "replay:D2:50 raised: %s" e);
  match (find "replay:D8:50").Campaign.jr_value with
  | Ok v ->
      check_bool "short run is vacuously ok" true
        (contains v.Campaign.v_detail "no checkpoints")
  | Error e -> Alcotest.failf "replay:D8:50 raised: %s" e

let suite =
  [
    Alcotest.test_case "pool preserves submission order" `Quick
      test_pool_ordering;
    Alcotest.test_case "raising job isolated as Error" `Quick
      test_pool_error_isolation;
    Alcotest.test_case "pool width clamps" `Quick test_pool_clamps_domains;
    Alcotest.test_case "full-testbed campaign deterministic across widths"
      `Quick test_campaign_determinism;
    Alcotest.test_case "json report schema-pinned" `Quick test_to_json_schema;
    Alcotest.test_case "replay jobs prove checkpoint determinism" `Quick
      test_replay_jobs;
    Alcotest.test_case "worker telemetry merged at join" `Quick
      test_pool_merges_telemetry;
  ]
