(* S3 - Incomplete implementation in an AXI-Stream width adapter
   (generic).

   The 8-to-16-bit adapter packs two bytes per output beat. A frame
   with an odd byte count ends on the low half; the flush path for that
   corner was copy-pasted from the normal path, so the final beat pairs
   the last byte with a stale byte from the previous beat instead of
   zero-padding. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let flush =
    if buggy then "out_data <= {in_data, low_byte};"
    else "out_data <= {8'd0, in_data};"
  in
  Printf.sprintf
    {|
module axis_adapter (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input in_last,
  output reg out_valid,
  output reg [15:0] out_data,
  output reg out_last
);
  reg half;
  reg [7:0] low_byte;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    out_last <= 1'b0;
    if (reset) begin
      half <= 1'b0;
    end else if (in_valid) begin
      if (!half) begin
        low_byte <= in_data;
        half <= ~half;
        if (in_last) begin
          // odd-length frame: flush the final byte
          out_valid <= 1'b1;
          %s
          out_last <= 1'b1;
          half <= 1'b0;
        end
      end else begin
        out_valid <= 1'b1;
        out_data <= {in_data, low_byte};
        out_last <= in_last;
        half <= ~half;
      end
    end
  end
endmodule
|}
    flush

(* A 3-byte frame (odd) followed by a 2-byte frame. *)
let stimulus cycle =
  let bytes =
    [ (0xA1, false); (0xA2, false); (0xA3, true); (0xB1, false); (0xB2, true) ]
  in
  let base = [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle - 2 < List.length bytes then (
    let data, last = List.nth bytes (cycle - 2) in
    base |> set "in_valid" Bug.hi
    |> set "in_data" (Bits.of_int ~width:8 data)
    |> set "in_last" (if last then Bug.hi else Bug.lo))
  else base

let bug : Bug.t =
  {
    id = "S3";
    subclass = Fpga_study.Taxonomy.Incomplete_implementation;
    application = "AXI-Stream Adapter";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the odd-length flush path pairs the final byte with a stale byte \
       instead of zero-padding";
    top = "axis_adapter";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 16;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("data", Simulator.read_int sim "out_data");
              ("last", Simulator.read_int sim "out_last") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "half" ];  (* byte-phase FSM: missed by the heuristic *)
    stat_events = [ ("bytes_in", "in_valid"); ("beats_out", "out_valid") ];
    dep_target = Some "out_data";
    target_mhz = 200;
  }
