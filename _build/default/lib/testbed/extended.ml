(* Extended testbed: six more bugs from the 68-bug study, reproduced
   beyond the paper's 20 (its section 3 footnote: "the rest of the bugs
   could be reproduced with additional effort"). Together with the core
   testbed these give every one of the 13 subclasses at least one
   push-button reproduction - in particular the three subclasses Table 2
   does not cover: Use-Without-Valid, API Misuse, and Erroneous
   Expression. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator
module Taxonomy = Fpga_study.Taxonomy

let set k v l = (k, v) :: List.remove_assoc k l
let b8 = Bits.of_int ~width:8

let no_loss : Fpga_debug.Losscheck.spec option = None

let base_bug : Bug.t =
  {
    id = "";
    subclass = Taxonomy.Buffer_overflow;
    application = "";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [];
    helpful_tools = [ Bug.SC ];
    description = "";
    top = "";
    buggy_src = "";
    fixed_src = "";
    stimulus = (fun _ -> []);
    max_cycles = 100;
    sample = (fun _ -> None);
    done_when = None;
    ext_monitor = None;
    loss_spec = no_loss;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [];
    stat_events = [];
    dep_target = None;
    target_mhz = 200;
  }

(* ------------------------------------------------------------------ *)
(* E1 - WiFi controller packet staging overflow (study bug #5)        *)
(* ------------------------------------------------------------------ *)

let e1_source ~buggy =
  let mem, ptr =
    if buggy then ("reg [7:0] stage [0:63];", "reg [5:0]")
    else ("reg [7:0] stage [0:127];", "reg [6:0]")
  in
  Printf.sprintf
    {|
module wifi_stage (
  input clk,
  input reset,
  input hdr_valid,
  input [7:0] pkt_len,
  input in_valid,
  input [7:0] in_data,
  input emit,
  output reg out_valid,
  output reg [7:0] out_data,
  output reg emit_abort
);
  %s
  %s wptr;
  %s rptr;
  reg emitting;
  reg [7:0] remaining;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      wptr <= 0;
      rptr <= 0;
      emitting <= 1'b0;
      emit_abort <= 1'b0;
    end else begin
      // byte 0 of the staging area holds the length header
      if (hdr_valid) begin
        stage[0] <= pkt_len;
        wptr <= 4;  // bytes 1..3 reserved for addressing
      end
      if (in_valid) begin
        stage[wptr] <= in_data;
        wptr <= wptr + 1;
      end
      if (emit && !emitting) begin
        // a corrupted header fails the sanity check and kills the emit
        if (stage[0] > 8'd64) emit_abort <= 1'b1;
        else begin
          emitting <= 1'b1;
          remaining <= stage[0];
          rptr <= 4;
        end
      end
      if (emitting) begin
        if (remaining == 8'd0) emitting <= 1'b0;
        else begin
          out_valid <= 1'b1;
          out_data <= stage[rptr];
          rptr <= rptr + 1;
          remaining <= remaining - 8'd1;
        end
      end
    end
  end
endmodule
|}
    mem ptr ptr

(* a maximum-length (62-byte) payload wraps the 64-entry staging area
   and lands its tail on the length header *)
let e1_stimulus cycle =
  let len = 62 in
  let base =
    [ ("reset", Bug.lo); ("hdr_valid", Bug.lo); ("in_valid", Bug.lo);
      ("emit", Bug.lo) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 1 then
    base |> set "hdr_valid" Bug.hi |> set "pkt_len" (b8 len)
  else if cycle >= 2 && cycle < 2 + len then
    base |> set "in_valid" Bug.hi |> set "in_data" (b8 (0x80 + cycle))
  else if cycle = 2 + len then set "emit" Bug.hi base
  else base

let e1 : Bug.t =
  {
    base_bug with
    id = "E1";
    subclass = Taxonomy.Buffer_overflow;
    application = "WiFi Controller";
    symptoms = [ Taxonomy.Data_loss ];
    helpful_tools = [ Bug.SC; Bug.Stat ];
    description =
      "a maximum-length frame wraps the packet staging area and \
       overwrites its own length header; the emit sanity check then \
       drops the whole frame";
    top = "wifi_stage";
    buggy_src = e1_source ~buggy:true;
    fixed_src = e1_source ~buggy:false;
    stimulus = e1_stimulus;
    max_cycles = 160;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out_data", Simulator.read_int sim "out_data") ]
        else None);
    stat_events = [ ("bytes_in", "in_valid"); ("bytes_out", "out_valid") ];
    dep_target = Some "out_data";
  }

(* ------------------------------------------------------------------ *)
(* E2 - Nyuzi decode immediate truncation (study bug #8)              *)
(* ------------------------------------------------------------------ *)

let e2_source ~buggy =
  let extend =
    if buggy then "{18'd0, imm}" else "{{18{imm[13]}}, imm}"
  in
  Printf.sprintf
    {|
module nyuzi_decode (
  input clk,
  input in_valid,
  input [31:0] instr,
  input [31:0] rs,
  output reg out_valid,
  output reg [31:0] result
);
  wire [13:0] imm;
  assign imm = instr[23:10];
  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (in_valid) begin
      out_valid <= 1'b1;
      result <= rs + %s;
    end
  end
endmodule
|}
    extend

let e2_stimulus cycle =
  let base = [ ("in_valid", Bug.lo) ] in
  (* an instruction with a negative 14-bit immediate (-4) *)
  let neg_imm = 0x3FFC in
  if cycle = 1 then
    base |> set "in_valid" Bug.hi
    |> set "instr" (Bits.of_int ~width:32 (neg_imm lsl 10))
    |> set "rs" (Bits.of_int ~width:32 100)
  else base

let e2 : Bug.t =
  {
    base_bug with
    id = "E2";
    subclass = Taxonomy.Bit_truncation;
    application = "Nyuzi GPGPU";
    symptoms = [ Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the decoder zero-extends the 14-bit immediate, losing its sign";
    top = "nyuzi_decode";
    buggy_src = e2_source ~buggy:true;
    fixed_src = e2_source ~buggy:false;
    stimulus = e2_stimulus;
    max_cycles = 8;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("result", Bits.to_int_trunc (Simulator.read sim "result")) ]
        else None);
    stat_events = [ ("decoded", "out_valid") ];
    dep_target = Some "result";
  }

(* ------------------------------------------------------------------ *)
(* E3 - Nyuzi L2 writeback/fill deadlock (study bug #30)              *)
(* ------------------------------------------------------------------ *)

let e3_source ~buggy =
  let wb_cond = if buggy then "wb_pending && fill_done" else "wb_pending" in
  Printf.sprintf
    {|
module nyuzi_l2 (
  input clk,
  input reset,
  input miss,
  output reg fill_done,
  output reg req_done
);
  reg wb_pending;
  reg fill_pending;
  always @(posedge clk) begin
    if (reset) begin
      wb_pending <= 1'b0;
      fill_pending <= 1'b0;
      fill_done <= 1'b0;
      req_done <= 1'b0;
    end else begin
      if (miss) begin
        // a dirty miss needs a writeback followed by a line fill
        wb_pending <= 1'b1;
        fill_pending <= 1'b1;
      end
      // the writeback engine (buggy: waits for the fill it blocks)
      if (%s) wb_pending <= 1'b0;
      // the fill engine waits for the writeback buffer to drain
      if (fill_pending && !wb_pending) begin
        fill_pending <= 1'b0;
        fill_done <= 1'b1;
      end
      if (fill_done) req_done <= 1'b1;
    end
  end
endmodule
|}
    wb_cond

let e3_stimulus cycle =
  let base = [ ("reset", Bug.lo); ("miss", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then set "miss" Bug.hi base
  else base

let e3 : Bug.t =
  {
    base_bug with
    id = "E3";
    subclass = Taxonomy.Deadlock;
    application = "Nyuzi GPGPU";
    symptoms = [ Taxonomy.App_stuck ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the writeback engine waits for the fill it is itself blocking";
    top = "nyuzi_l2";
    buggy_src = e3_source ~buggy:true;
    fixed_src = e3_source ~buggy:false;
    stimulus = e3_stimulus;
    max_cycles = 40;
    done_when = Some (fun sim -> Simulator.read_int sim "req_done" = 1);
    dep_target = Some "req_done";
  }

(* ------------------------------------------------------------------ *)
(* E4 - verilog-axis use-without-valid (study bug #45)                *)
(* ------------------------------------------------------------------ *)

let e4_source ~buggy =
  let acc =
    if buggy then "sum <= sum + tdata;"
    else "if (tvalid) sum <= sum + tdata;"
  in
  Printf.sprintf
    {|
module axis_sum (
  input clk,
  input reset,
  input tvalid,
  input [7:0] tdata,
  input tlast,
  output reg out_valid,
  output reg [7:0] out_sum
);
  reg [7:0] sum;
  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) sum <= 8'd0;
    else begin
      %s
      if (tvalid && tlast) begin
        out_valid <= 1'b1;
        out_sum <= sum + tdata;
        sum <= 8'd0;
      end
    end
  end
endmodule
|}
    acc

(* the bus carries garbage between beats; the buggy design folds it in *)
let e4_stimulus cycle =
  let base = [ ("reset", Bug.lo); ("tvalid", Bug.lo); ("tlast", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then base |> set "tvalid" Bug.hi |> set "tdata" (b8 10)
  else if cycle = 3 then base |> set "tdata" (b8 0x6B)  (* invalid-cycle noise *)
  else if cycle = 5 then
    base |> set "tvalid" Bug.hi |> set "tdata" (b8 20) |> set "tlast" Bug.hi
  else if cycle = 6 then base |> set "tdata" (b8 0) |> set "tlast" Bug.lo
  else base

let e4 : Bug.t =
  {
    base_bug with
    id = "E4";
    subclass = Taxonomy.Use_without_valid;
    application = "verilog-axis";
    symptoms = [ Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.Dep ];
    description = "the accumulator folds in tdata on cycles where tvalid is low";
    top = "axis_sum";
    buggy_src = e4_source ~buggy:true;
    fixed_src = e4_source ~buggy:false;
    stimulus = e4_stimulus;
    max_cycles = 12;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("sum", Simulator.read_int sim "out_sum") ]
        else None);
    stat_events = [ ("beats", "tvalid"); ("sums", "out_valid") ];
    dep_target = Some "out_sum";
  }

(* ------------------------------------------------------------------ *)
(* E5 - comparator macro instantiated with reversed operands (#50)    *)
(* ------------------------------------------------------------------ *)

let e5_source ~buggy =
  let conns = if buggy then ".x(threshold), .y(sample)" else ".x(sample), .y(threshold)" in
  Printf.sprintf
    {|
module greater_than (
  input [7:0] x,
  input [7:0] y,
  output result
);
  assign result = x > y;
endmodule

module adi_limiter (
  input clk,
  input in_valid,
  input [7:0] sample,
  input [7:0] threshold,
  output reg out_valid,
  output reg over_limit
);
  wire cmp;
  greater_than u_cmp (%s, .result(cmp));
  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (in_valid) begin
      out_valid <= 1'b1;
      over_limit <= cmp;
    end
  end
endmodule
|}
    conns

let e5_stimulus cycle =
  let base =
    [ ("in_valid", Bug.lo); ("threshold", b8 100) ]
  in
  if cycle = 1 then base |> set "in_valid" Bug.hi |> set "sample" (b8 150)
  else if cycle = 3 then base |> set "in_valid" Bug.hi |> set "sample" (b8 50)
  else base

let e5 : Bug.t =
  {
    base_bug with
    id = "E5";
    subclass = Taxonomy.Api_misuse;
    application = "Analog Devices HDL";
    symptoms = [ Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the greater_than module is instantiated with x and y swapped, so \
       the limiter computes threshold > sample";
    top = "adi_limiter";
    buggy_src = e5_source ~buggy:true;
    fixed_src = e5_source ~buggy:false;
    stimulus = e5_stimulus;
    max_cycles = 8;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("over", Simulator.read_int sim "over_limit") ]
        else None);
    stat_events = [ ("samples", "in_valid") ];
    dep_target = Some "over_limit";
  }

(* ------------------------------------------------------------------ *)
(* E6 - RSD erroneous loop bound (study bug #59)                      *)
(* ------------------------------------------------------------------ *)

let e6_source ~buggy =
  let bound = if buggy then "i < last_index" else "i <= last_index" in
  Printf.sprintf
    {|
module rsd_checksum (
  input clk,
  input reset,
  input start,
  input [3:0] last_index,
  output reg busy,
  output reg done_flag,
  output reg [7:0] checksum
);
  reg [7:0] table_mem [0:15];
  reg [3:0] i;
  always @(posedge clk) begin
    if (reset) begin
      busy <= 1'b0;
      done_flag <= 1'b0;
      // the symbol table is preloaded by the host; model it here
      table_mem[0] <= 8'd3;
    end else if (start) begin
      busy <= 1'b1;
      done_flag <= 1'b0;
      i <= 4'd0;
      checksum <= 8'd0;
      table_mem[1] <= 8'd5;
      table_mem[2] <= 8'd7;
      table_mem[3] <= 8'd11;
    end else if (busy) begin
      if (%s) begin
        checksum <= checksum + table_mem[i];
        i <= i + 4'd1;
      end else begin
        busy <= 1'b0;
        done_flag <= 1'b1;
      end
    end
  end
endmodule
|}
    bound

let e6_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("start", Bug.lo);
      ("last_index", Bits.of_int ~width:4 3) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then set "start" Bug.hi base
  else base

let e6 : Bug.t =
  {
    base_bug with
    id = "E6";
    subclass = Taxonomy.Erroneous_expression;
    application = "Reed-Solomon Decoder";
    symptoms = [ Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.FSM; Bug.Dep ];
    description =
      "the accumulation loop uses < where <= is required, so the final \
       table entry is never folded into the checksum";
    top = "rsd_checksum";
    buggy_src = e6_source ~buggy:true;
    fixed_src = e6_source ~buggy:false;
    stimulus = e6_stimulus;
    max_cycles = 20;
    sample =
      (fun sim ->
        if Simulator.read_int sim "done_flag" = 1 then
          Some [ ("checksum", Simulator.read_int sim "checksum") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "done_flag" = 1);
    dep_target = Some "checksum";
  }

let all = [ e1; e2; e3; e4; e5; e6 ]
