(* D6 - Bit truncation in an FFT butterfly (generic).

   The twiddle product of the butterfly needs 16 bits, but the pipeline
   register holding it is 8 bits wide: the product is truncated before
   the scaling shift and both butterfly outputs are wrong. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let prod_decl = if buggy then "reg [7:0] prod;" else "reg [15:0] prod;" in
  Printf.sprintf
    {|
module fft_butterfly (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_a,
  input [7:0] in_b,
  input [7:0] twiddle,
  output reg out_valid,
  output reg [7:0] out_x,
  output reg [7:0] out_y
);
  %s
  reg [7:0] a_r;
  reg stage_vld;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      stage_vld <= 1'b0;
    end else begin
      if (in_valid) begin
        prod <= in_b * twiddle;
        a_r <= in_a;
        stage_vld <= 1'b1;
      end else begin
        stage_vld <= 1'b0;
      end
      if (stage_vld) begin
        out_valid <= 1'b1;
        out_x <= a_r + (prod >> 7);
        out_y <= a_r - (prod >> 7);
      end
    end
  end
endmodule
|}
    prod_decl

let samples = [ (40, 96, 200); (17, 130, 90); (250, 33, 255); (5, 5, 128) ]

let stimulus cycle =
  let base = [ ("reset", Bug.lo); ("in_valid", Bug.lo) ] in
  let b8 = Bits.of_int ~width:8 in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle - 2 < List.length samples then (
    let a, b, t = List.nth samples (cycle - 2) in
    base |> set "in_valid" Bug.hi |> set "in_a" (b8 a) |> set "in_b" (b8 b)
    |> set "twiddle" (b8 t))
  else base

let bug : Bug.t =
  {
    id = "D6";
    subclass = Fpga_study.Taxonomy.Bit_truncation;
    application = "FFT";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the butterfly's 16-bit twiddle product is stored in an 8-bit \
       pipeline register before scaling";
    top = "fft_butterfly";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 20;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("x", Simulator.read_int sim "out_x");
              ("y", Simulator.read_int sim "out_y") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [];
    stat_events = [ ("samples_out", "out_valid") ];
    dep_target = Some "out_x";
    target_mhz = 200;
  }
