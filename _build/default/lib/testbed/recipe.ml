(* The per-bug debugging recipe of Table 2: instrument the buggy design
   with the monitors marked helpful for it, then compile the resulting
   $display statements into recording logic with SignalCat (the
   "on-FPGA" use case measured in Figure 2). *)

module Ast = Fpga_hdl.Ast

type instrumented = {
  baseline : Ast.module_def;
  with_monitors : Ast.module_def;  (* monitors applied, displays intact *)
  on_fpga : Ast.module_def;  (* displays compiled into recording logic *)
  signalcat_plan : Fpga_debug.Signalcat.plan;
  monitor_loc : int;  (* Verilog lines inserted by the monitors *)
  recording_loc : int;  (* lines inserted by SignalCat's recording logic *)
}

let apply ?(buffer_depth = 8192) (bug : Bug.t) : instrumented =
  let design = Bug.design_of bug ~buggy:true in
  let baseline =
    match Ast.find_module design bug.Bug.top with
    | Some m -> m
    | None -> invalid_arg ("Recipe.apply: no module " ^ bug.Bug.top)
  in
  (* Use case 1 of section 6.2: SignalCat plus all three monitors are
     applied to every bug. *)
  let m = ref baseline in
  let fsm_plan = Fpga_debug.Fsm_monitor.plan !m in
  m := Fpga_debug.Fsm_monitor.instrument fsm_plan !m;
  if bug.Bug.stat_events <> [] then (
    let events =
      List.map
        (fun (name, signal) ->
          { Fpga_debug.Stat_monitor.event_name = name;
            trigger = Ast.Ident signal })
        bug.Bug.stat_events
    in
    let plan = Fpga_debug.Stat_monitor.plan !m events in
    m := Fpga_debug.Stat_monitor.instrument ~log_changes:true plan !m);
  (match bug.Bug.dep_target with
  | Some target ->
      let plan =
        Fpga_debug.Dep_monitor.analyze ~design ~target ~cycles:8 !m
      in
      m := Fpga_debug.Dep_monitor.instrument plan !m
  | None -> ());
  let with_monitors = !m in
  let on_fpga, signalcat_plan =
    Fpga_debug.Signalcat.apply ~buffer_depth Fpga_debug.Signalcat.On_fpga
      with_monitors
  in
  {
    baseline;
    with_monitors;
    on_fpga;
    signalcat_plan;
    monitor_loc =
      Fpga_debug.Instrument.added_loc ~before:baseline ~after:with_monitors;
    recording_loc =
      (* gross size of the recording logic, measured against the
         display-stripped design *)
      Fpga_debug.Instrument.added_loc
        ~before:(Fpga_debug.Signalcat.strip_displays_module with_monitors)
        ~after:on_fpga;
  }

(* Resource overhead of the recipe at a given recording depth
   (one point of Figure 2). *)
let overhead ?(buffer_depth = 8192) (bug : Bug.t) : Fpga_resources.Model.usage =
  let r = apply ~buffer_depth bug in
  Fpga_resources.Model.overhead ~baseline:r.baseline ~instrumented:r.on_fpga

(* Timing closure of the instrumented design (section 6.4). *)
let timing ?(buffer_depth = 8192) (bug : Bug.t) :
    Fpga_resources.Model.timing * Fpga_resources.Model.timing =
  let r = apply ~buffer_depth bug in
  let platform = Fpga_resources.Platforms.of_kind bug.Bug.platform in
  let before =
    Fpga_resources.Model.timing platform r.baseline
      ~target_mhz:bug.Bug.target_mhz
  in
  let after =
    Fpga_resources.Model.timing ~instrumented:true platform r.on_fpga
      ~target_mhz:bug.Bug.target_mhz
  in
  (before, after)

(* LossCheck instrumentation overhead (Figure 3). *)
let losscheck_overhead (bug : Bug.t) : Fpga_resources.Model.usage option =
  match bug.Bug.loss_spec with
  | None -> None
  | Some spec ->
      let design = Bug.design_of bug ~buggy:true in
      let m = Option.get (Ast.find_module design bug.Bug.top) in
      let plan = Fpga_debug.Losscheck.analyze spec m in
      let instrumented = Fpga_debug.Losscheck.instrument plan m in
      Some (Fpga_resources.Model.overhead ~baseline:m ~instrumented)
