(* Optimus hypervisor bugs (HARP).

   D3 - Buffer overflow: the MMIO response buffer holds two slots per
   guest VM (4 VMs x 2 = 8 entries), but the slot index is computed as
   vm*4+idx instead of vm*2+idx. Slots for VMs 2 and 3 land at 8..13,
   wrap over the power-of-two buffer (section 3.2.1 case 1), and destroy
   the pending responses of VMs 0 and 1. Half the responses disappear,
   the host poller waits forever, and the computed slot exceeding the
   response region trips the shell monitor.

   C2 - Producer-consumer mismatch: two guest channels produce into a
   single staging slot; when the host applies backpressure a second
   producer overwrites the first pending value, so a guest never sees
   its response (the bounded-buffer problem of section 3.3.2). The fix
   gives the second producer its own slot (the "larger buffer" repair).

   Both modules contain an intentional-drop register on the data path
   ([cap_reg] dropped on VM flush; [last_out] replay register refreshed
   on every delivery): ground-truth tests exercise those drops, so
   LossCheck's false-positive filtering suppresses them and the reports
   contain exactly the true loss location (section 4.5.3). *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

(* ------------------------------------------------------------------ *)
(* D3                                                                  *)
(* ------------------------------------------------------------------ *)

let d3_source ~buggy =
  let slot_expr =
    if buggy then "{resp_vm, 2'b00} + resp_idx" else "{resp_vm, 1'b0} + resp_idx"
  in
  Printf.sprintf
    {|
module mmio_mux (
  input clk,
  input reset,
  input flush,
  input resp_valid,
  input [1:0] resp_vm,
  input resp_idx,
  input [7:0] resp_data,
  output reg out_valid,
  output reg [7:0] out_data,
  output reg [2:0] out_slot,
  output reg [5:0] dbg_slot,
  output reg [3:0] delivered,
  output [2:0] dbg_grant
);
  reg [7:0] resp_buf [0:7];
  reg [7:0] pending;
  reg [7:0] cap_reg;
  reg [5:0] cap_slot;
  reg cap_vld;
  reg [2:0] scan;

  // priority arbiter over pending responses (diagnostic port)
  assign dbg_grant = pending[0] ? 3'd0
                   : pending[1] ? 3'd1
                   : pending[2] ? 3'd2
                   : pending[3] ? 3'd3
                   : pending[4] ? 3'd4
                   : pending[5] ? 3'd5
                   : pending[6] ? 3'd6
                   : pending[7] ? 3'd7
                   : 3'd0;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      pending <= 8'd0;
      cap_vld <= 1'b0;
      scan <= 3'd0;
      delivered <= 4'd0;
    end else if (flush) begin
      // VM teardown: discard pending responses and in-flight capture
      pending <= 8'd0;
      cap_vld <= 1'b0;
    end else begin
      // stage 1: capture an incoming guest response
      if (resp_valid) begin
        cap_reg <= resp_data;
        cap_slot <= %s;
        dbg_slot <= %s;
        cap_vld <= 1'b1;
      end else begin
        cap_vld <= 1'b0;
      end
      // stage 2: store into the per-slot response buffer
      if (cap_vld) begin
        resp_buf[cap_slot] <= cap_reg;
        pending[cap_slot] <= 1'b1;
      end
      // host-side scanner drains pending slots round-robin
      if (pending[scan]) begin
        out_valid <= 1'b1;
        out_data <= resp_buf[scan];
        out_slot <= scan;
        pending[scan] <= 1'b0;
        delivered <= delivered + 4'd1;
      end
      scan <= scan + 3'd1;
    end
  end
endmodule
|}
    slot_expr slot_expr

(* All eight responses (4 VMs x 2 registers), back to back. *)
let d3_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("flush", Bug.lo); ("resp_valid", Bug.lo) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  let send vm idx data =
    base |> set "resp_valid" Bug.hi
    |> set "resp_vm" (Bits.of_int ~width:2 vm)
    |> set "resp_idx" (Bits.of_int ~width:1 idx)
    |> set "resp_data" (Bits.of_int ~width:8 data)
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 10 then (
    let k = cycle - 2 in
    send (k / 2) (k mod 2) (0x40 + (k * 3)))
  else base

(* Ground truth: VMs 0 and 1 only (their buggy slots are still unique),
   with a flush between two bursts - the intentional drop. *)
let d3_ground_truth cycle =
  let base =
    [ ("reset", Bug.lo); ("flush", Bug.lo); ("resp_valid", Bug.lo) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  let send vm idx data =
    base |> set "resp_valid" Bug.hi
    |> set "resp_vm" (Bits.of_int ~width:2 vm)
    |> set "resp_idx" (Bits.of_int ~width:1 idx)
    |> set "resp_data" (Bits.of_int ~width:8 data)
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then send 0 0 0x11
  else if cycle = 3 then send 0 1 0x22
  else if cycle = 5 then set "flush" Bug.hi base
  else if cycle = 7 then send 1 0 0x33
  else if cycle = 8 then send 1 1 0x44
  else base

let d3 : Bug.t =
  {
    id = "D3";
    subclass = Fpga_study.Taxonomy.Buffer_overflow;
    application = "Optimus";
    platform = Fpga_resources.Platforms.Harp;
    symptoms =
      [ Fpga_study.Taxonomy.App_stuck; Fpga_study.Taxonomy.Data_loss;
        Fpga_study.Taxonomy.External_error ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.Dep; Bug.LC ];
    description =
      "MMIO response slot computed as vm*4+idx instead of vm*2+idx wraps \
       the 8-entry buffer and destroys other guests' pending responses";
    top = "mmio_mux";
    buggy_src = d3_source ~buggy:true;
    fixed_src = d3_source ~buggy:false;
    stimulus = d3_stimulus;
    max_cycles = 80;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("slot", Simulator.read_int sim "out_slot");
              ("data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "delivered" = 8);
    ext_monitor = Some (fun sim -> Simulator.read_int sim "dbg_slot" >= 8);
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "resp_data";
          valid = Fpga_hdl.Ast.Ident "resp_valid";
          sink = "out_data";
        };
    loss_root = Some "resp_buf";
    ground_truth = [ (d3_ground_truth, 40) ];
    manual_fsms = [];
    stat_events =
      [ ("responses_in", "resp_valid"); ("responses_out", "out_valid") ];
    dep_target = Some "out_data";
    target_mhz = 400;
  }

(* ------------------------------------------------------------------ *)
(* C2                                                                  *)
(* ------------------------------------------------------------------ *)

let c2_source ~buggy =
  let y_store, y_extra, y_drain =
    if buggy then
      ( "if (y_valid) begin slot <= y_data; slot_vld <= 1'b1; slot_src <= 1'b1; end",
        "",
        "" )
    else
      ( "if (y_valid) begin yslot <= y_data; yslot_vld <= 1'b1; end",
        "reg [7:0] yslot;\n  reg yslot_vld;",
        {|else if (yslot_vld && out_ready) begin
        out_valid <= 1'b1;
        out_data <= yslot;
        out_src <= 1'b1;
        last_out <= yslot;
        yslot_vld <= 1'b0;
        delivered <= delivered + 4'd1;
      end|} )
  in
  Printf.sprintf
    {|
module chan_mux (
  input clk,
  input reset,
  input x_valid,
  input [7:0] x_data,
  input y_valid,
  input [7:0] y_data,
  input out_ready,
  input replay,
  output reg out_valid,
  output reg [7:0] out_data,
  output reg out_src,
  output reg [3:0] delivered,
  output [2:0] dbg_pri
);
  reg [7:0] slot;
  reg slot_vld;
  reg slot_src;
  reg [7:0] last_out;
  %s

  // diagnostic priority view of the channel state
  assign dbg_pri = x_valid ? 3'd0
                 : y_valid ? 3'd1
                 : slot_vld ? 3'd2
                 : replay ? 3'd3
                 : out_ready ? 3'd4
                 : slot_src ? 3'd5
                 : delivered[0] ? 3'd6
                 : delivered[1] ? 3'd7
                 : 3'd0;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      slot_vld <= 1'b0;
      delivered <= 4'd0;
    end else begin
      // host-side drain
      if (replay) begin
        out_valid <= 1'b1;
        out_data <= last_out;
        out_src <= slot_src;
      end else if (slot_vld && out_ready) begin
        out_valid <= 1'b1;
        out_data <= slot;
        out_src <= slot_src;
        last_out <= slot;
        slot_vld <= 1'b0;
        delivered <= delivered + 4'd1;
      end %s
      // guest producers (no backpressure towards the guests)
      if (x_valid) begin slot <= x_data; slot_vld <= 1'b1; slot_src <= 1'b0; end
      %s
    end
  end
endmodule
|}
    y_extra y_drain y_store

(* x produces three responses and y one. The host stalls while the
   second x response and the y response arrive, so the shared slot is
   overwritten (the real loss); the final delivery also refreshes the
   [last_out] replay register while it still holds unreplayed data -
   the intentional drop that shows up as a raw alarm. *)
let c2_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("x_valid", Bug.lo); ("y_valid", Bug.lo);
      ("replay", Bug.lo);
      ("out_ready", if cycle >= 5 && cycle <= 10 then Bug.lo else Bug.hi) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then
    base |> set "x_valid" Bug.hi |> set "x_data" (Bits.of_int ~width:8 0xA1)
  else if cycle = 5 then
    base |> set "x_valid" Bug.hi |> set "x_data" (Bits.of_int ~width:8 0xA2)
  else if cycle = 6 then
    base |> set "y_valid" Bug.hi |> set "y_data" (Bits.of_int ~width:8 0xB1)
  else if cycle = 13 then
    base |> set "x_valid" Bug.hi |> set "x_data" (Bits.of_int ~width:8 0xA3)
  else base

(* Ground truth: sequential traffic with occasional backpressure; the
   [last_out] replay register is intentionally refreshed twice without a
   replay, which teaches the filter that its drops are intentional. *)
let c2_ground_truth cycle =
  let base =
    [ ("reset", Bug.lo); ("x_valid", Bug.lo); ("y_valid", Bug.lo);
      ("replay", Bug.lo);
      ("out_ready", if cycle >= 3 && cycle <= 4 then Bug.lo else Bug.hi) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then
    base |> set "x_valid" Bug.hi |> set "x_data" (Bits.of_int ~width:8 0x31)
  else if cycle = 8 then
    base |> set "y_valid" Bug.hi |> set "y_data" (Bits.of_int ~width:8 0x32)
  else base

let c2 : Bug.t =
  {
    id = "C2";
    subclass = Fpga_study.Taxonomy.Producer_consumer_mismatch;
    application = "Optimus";
    platform = Fpga_resources.Platforms.Harp;
    symptoms =
      [ Fpga_study.Taxonomy.App_stuck; Fpga_study.Taxonomy.Data_loss;
        Fpga_study.Taxonomy.External_error ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.Dep; Bug.LC ];
    description =
      "two guest channels share one response slot; under host \
       backpressure the second producer overwrites the first pending \
       response";
    top = "chan_mux";
    buggy_src = c2_source ~buggy:true;
    fixed_src = c2_source ~buggy:false;
    stimulus = c2_stimulus;
    max_cycles = 60;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("src", Simulator.read_int sim "out_src");
              ("data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "delivered" = 4);
    ext_monitor =
      Some
        (fun sim ->
          (* hypervisor watchdog: MMIO response timeout *)
          Simulator.cycle sim > 40 && Simulator.read_int sim "delivered" < 4);
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "x_data";
          valid = Fpga_hdl.Ast.Ident "x_valid";
          sink = "out_data";
        };
    loss_root = Some "slot";
    ground_truth = [ (c2_ground_truth, 40) ];
    manual_fsms = [ "slot_vld" ];
    stat_events =
      [
        ("x_in", "x_valid"); ("y_in", "y_valid"); ("responses_out", "out_valid");
      ];
    dep_target = Some "out_data";
    target_mhz = 400;
  }
