(* D8 - Misindexing in an AXI-Stream switch (generic).

   The output port is decoded from tdest bits [2:1] instead of [1:0],
   so beats are routed to the wrong destination. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let sel = if buggy then "in_dest[2:1]" else "in_dest[1:0]" in
  Printf.sprintf
    {|
module axis_switch (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input [3:0] in_dest,
  output reg out_valid,
  output reg [1:0] out_port,
  output reg [7:0] out_data
);
  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (!reset && in_valid) begin
      out_valid <= 1'b1;
      out_port <= %s;
      out_data <= in_data;
    end
  end
endmodule
|}
    sel

let beats = [ (1, 0xAA); (2, 0xBB); (3, 0xCC); (0, 0xDD) ]

let stimulus cycle =
  let base = [ ("reset", Bug.lo); ("in_valid", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle - 2 < List.length beats then (
    let dest, data = List.nth beats (cycle - 2) in
    base |> set "in_valid" Bug.hi
    |> set "in_dest" (Bits.of_int ~width:4 dest)
    |> set "in_data" (Bits.of_int ~width:8 data))
  else base

let bug : Bug.t =
  {
    id = "D8";
    subclass = Fpga_study.Taxonomy.Misindexing;
    application = "AXI-Stream Switch";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description = "output port decoded from tdest[2:1] instead of tdest[1:0]";
    top = "axis_switch";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 12;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("port", Simulator.read_int sim "out_port");
              ("data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [];
    stat_events = [ ("beats_out", "out_valid") ];
    dep_target = Some "out_port";
    target_mhz = 200;
  }
