(* S1 - Protocol violation in an AXI-Lite endpoint (Xilinx demo).

   The endpoint raises BVALID as soon as the write-address handshake
   completes, without waiting for the write-data beat - a violation of
   AXI write ordering that only an external protocol checker notices
   (the design itself works when address and data happen to arrive
   together, which is why it escapes simulation testing). *)

module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let bcond = if buggy then "aw_seen" else "aw_seen && w_seen" in
  Printf.sprintf
    {|
module axil_write (
  input clk,
  input reset,
  input awvalid,
  input wvalid,
  input [7:0] wdata,
  input bready,
  output awready,
  output wready,
  output reg bvalid,
  output reg [7:0] regfile,
  output reg [3:0] writes_done
);
  reg aw_seen;
  reg w_seen;

  assign awready = !aw_seen;
  assign wready = !w_seen;

  always @(posedge clk) begin
    if (reset) begin
      aw_seen <= 1'b0;
      w_seen <= 1'b0;
      bvalid <= 1'b0;
      writes_done <= 4'd0;
    end else begin
      if (awvalid && !aw_seen) aw_seen <= 1'b1;
      if (wvalid && !w_seen) begin
        w_seen <= 1'b1;
        regfile <= wdata;
      end
      if (%s && !bvalid) bvalid <= 1'b1;
      if (bvalid && bready) begin
        bvalid <= 1'b0;
        aw_seen <= 1'b0;
        w_seen <= 1'b0;
        writes_done <= writes_done + 4'd1;
      end
    end
  end
endmodule
|}
    bcond

(* The address arrives three cycles before the data - the corner the
   demo never simulated. *)
let stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("awvalid", Bug.lo); ("wvalid", Bug.lo);
      ("bready", Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then set "awvalid" Bug.hi base
  else if cycle = 5 then
    base |> set "wvalid" Bug.hi
    |> set "wdata" (Fpga_bits.Bits.of_int ~width:8 0x9C)
  else base

let bug : Bug.t =
  {
    id = "S1";
    subclass = Fpga_study.Taxonomy.Protocol_violation;
    application = "AXI-Lite Demo";
    platform = Fpga_resources.Platforms.Xilinx;
    symptoms = [ Fpga_study.Taxonomy.External_error ];
    helpful_tools = [ Bug.SC; Bug.FSM ];
    description =
      "BVALID raised after the address handshake alone, before the \
       write-data beat, violating AXI write ordering";
    top = "axil_write";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 20;
    sample = (fun _ -> None);
    done_when = Some (fun sim -> Simulator.read_int sim "writes_done" >= 1);
    ext_monitor =
      Some
        (fun sim ->
          (* AXI protocol checker: a write response without write data *)
          Simulator.read_int sim "bvalid" = 1
          && Simulator.read_int sim "w_seen" = 0);
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "bvalid"; "aw_seen"; "w_seen" ];
    stat_events = [ ("responses", "bvalid") ];
    dep_target = Some "bvalid";
    target_mhz = 200;
  }
