(* C4 - Signal asynchrony in an AXI-Stream FIFO output stage (generic).

   The FIFO (an scfifo IP) is popped based only on emptiness, not on
   whether the output skid register is free: under downstream
   backpressure freshly popped words overwrite the pending word in the
   skid register. The pop strobe is out of sync with the registered data
   path - words vanish. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let pop =
    if buggy then "assign pop = !empty;"
    else "assign pop = !empty && (!stage_vld || out_ready);"
  in
  Printf.sprintf
    {|
module axis_fifo (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input out_ready,
  output reg out_valid,
  output reg [7:0] out_data
);
  wire [7:0] q;
  wire empty;
  wire full;
  wire pop;
  reg [7:0] stage;
  reg stage_vld;

  scfifo #(.lpm_width(8), .lpm_numwords(8)) u_fifo (
    .clock(clk), .data(in_data), .wrreq(in_valid), .rdreq(pop),
    .q(q), .empty(empty), .full(full));

  %s

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      stage_vld <= 1'b0;
    end else begin
      if (stage_vld && out_ready) begin
        out_valid <= 1'b1;
        out_data <= stage;
        stage_vld <= 1'b0;
      end
      if (pop) begin
        stage <= q;
        stage_vld <= 1'b1;
      end
    end
  end
endmodule
|}
    pop

(* Five words pushed while the consumer stalls; the buggy stage register
   is overwritten four times. *)
let stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo);
      ("out_ready", if cycle < 14 then Bug.lo else Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 7 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (Bits.of_int ~width:8 (0xE0 + cycle))
  else base

let ground_truth_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("out_ready", Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 5 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (Bits.of_int ~width:8 (0x30 + cycle))
  else base

let bug : Bug.t =
  {
    id = "C4";
    subclass = Fpga_study.Taxonomy.Signal_asynchrony;
    application = "AXI-Stream FIFO";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Data_loss ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.LC ];
    description =
      "the FIFO pop strobe ignores the skid register's occupancy, so \
       popped words overwrite the pending word under backpressure";
    top = "axis_fifo";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 40;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out_data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "in_data";
          valid = Fpga_hdl.Ast.Ident "in_valid";
          sink = "out_data";
        };
    loss_root = Some "stage";
    ground_truth = [ (ground_truth_stimulus, 20) ];
    manual_fsms = [ "stage_vld" ];
    stat_events = [ ("words_in", "in_valid"); ("words_out", "out_valid") ];
    dep_target = Some "out_data";
    target_mhz = 200;
  }
