(* SDSPI bugs (generic platform) - three bugs from the ZipCPU SD-card
   SPI controller.

   D9 - Endianness mismatch: SPI bytes arrive most-significant first,
   but the word assembler stores the first byte into the low half before
   handing the word to a big-endian checksum unit (the section 3.2.4
   pattern, with the checksum unit as a separate module).

   C1 - Deadlock: the command engine waits for the data engine to
   signal idle, while the data engine only raises idle after the command
   engine activates it - a circular control dependency among two
   conditionally-assigned flags (section 3.3.1). The fix initializes
   the data engine as idle.

   C3 - Signal asynchrony: the section 3.3.3 pattern verbatim - the
   response data is buffered for an extra cycle to satisfy the host's
   two-cycle turnaround, but the response-valid flag is raised
   immediately, so the host samples a stale response. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l
let b8 = Bits.of_int ~width:8

(* ------------------------------------------------------------------ *)
(* D9                                                                  *)
(* ------------------------------------------------------------------ *)

let d9_source ~buggy =
  let first, second =
    if buggy then ("word[7:0] <= byte_in;", "word[15:8] <= byte_in;")
    else ("word[15:8] <= byte_in;", "word[7:0] <= byte_in;")
  in
  Printf.sprintf
    {|
module checksum_be (
  input [15:0] w,
  output [7:0] crc
);
  // big-endian checksum: the wire-order first byte is the major term
  assign crc = (w[15:8] << 1) ^ w[7:0] ^ 8'h5a;
endmodule

module sdspi_crc (
  input clk,
  input reset,
  input byte_valid,
  input [7:0] byte_in,
  output reg crc_valid,
  output reg [7:0] crc_out
);
  reg [15:0] word;
  reg half;
  reg word_ready;
  wire [7:0] crc_w;

  checksum_be u_crc (.w(word), .crc(crc_w));

  always @(posedge clk) begin
    crc_valid <= 1'b0;
    word_ready <= 1'b0;
    if (reset) begin
      half <= 1'b0;
    end else begin
      if (byte_valid) begin
        if (!half) begin
          %s
        end else begin
          %s
          word_ready <= 1'b1;
        end
        half <= ~half;
      end
      if (word_ready) begin
        crc_valid <= 1'b1;
        crc_out <= crc_w;
      end
    end
  end
endmodule
|}
    first second

let d9_bytes = [ 0x12; 0x34; 0xAB; 0xCD ]

let d9_stimulus cycle =
  let base = [ ("reset", Bug.lo); ("byte_valid", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle - 2 < List.length d9_bytes then
    base |> set "byte_valid" Bug.hi
    |> set "byte_in" (b8 (List.nth d9_bytes (cycle - 2)))
  else base

let d9 : Bug.t =
  {
    id = "D9";
    subclass = Fpga_study.Taxonomy.Endianness_mismatch;
    application = "SDSPI";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the word assembler stores SPI bytes little-endian before passing \
       the word to a big-endian checksum module";
    top = "sdspi_crc";
    buggy_src = d9_source ~buggy:true;
    fixed_src = d9_source ~buggy:false;
    stimulus = d9_stimulus;
    max_cycles = 16;
    sample =
      (fun sim ->
        if Simulator.read_int sim "crc_valid" = 1 then
          Some [ ("crc", Simulator.read_int sim "crc_out") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "half" ];  (* byte-phase FSM: missed by the heuristic *)
    stat_events = [ ("bytes_in", "byte_valid"); ("words_out", "crc_valid") ];
    dep_target = Some "crc_out";
    target_mhz = 200;
  }

(* ------------------------------------------------------------------ *)
(* C1                                                                  *)
(* ------------------------------------------------------------------ *)

let c1_source ~buggy =
  let idle_init = if buggy then "data_idle <= 1'b0;" else "data_idle <= 1'b1;" in
  Printf.sprintf
    {|
module sdspi_ctrl (
  input clk,
  input reset,
  input cmd_start,
  output reg done_flag,
  output [1:0] cmd_state_out,
  output [1:0] data_state_out
);
  localparam C_IDLE = 2'd0;
  localparam C_WAIT = 2'd1;
  localparam C_XFER = 2'd2;
  localparam C_DONE = 2'd3;
  localparam D_IDLE = 2'd0;
  localparam D_ACTIVE = 2'd1;
  localparam D_DONE = 2'd2;

  reg [1:0] cmd_state;
  reg [1:0] data_state;
  reg cmd_active;
  reg data_idle;

  assign cmd_state_out = cmd_state;
  assign data_state_out = data_state;

  always @(posedge clk) begin
    if (reset) begin
      cmd_state <= C_IDLE;
      data_state <= D_IDLE;
      cmd_active <= 1'b0;
      done_flag <= 1'b0;
      %s
    end else begin
      case (cmd_state)
        C_IDLE: if (cmd_start) cmd_state <= C_WAIT;
        C_WAIT: if (data_idle) begin
          cmd_state <= C_XFER;
          cmd_active <= 1'b1;
        end
        C_XFER: begin
          cmd_state <= C_DONE;
          done_flag <= 1'b1;
        end
        C_DONE: cmd_state <= C_DONE;
      endcase
      case (data_state)
        D_IDLE: if (cmd_active) begin
          data_state <= D_ACTIVE;
          data_idle <= 1'b1;
        end
        D_ACTIVE: data_state <= D_DONE;
        D_DONE: data_state <= D_DONE;
      endcase
    end
  end
endmodule
|}
    idle_init

let c1_stimulus cycle =
  let base = [ ("reset", Bug.lo); ("cmd_start", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 2 then set "cmd_start" Bug.hi base
  else base

let c1 : Bug.t =
  {
    id = "C1";
    subclass = Fpga_study.Taxonomy.Deadlock;
    application = "SDSPI";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.App_stuck ];
    helpful_tools = [ Bug.SC; Bug.FSM; Bug.Dep ];
    description =
      "command engine waits for data_idle, data engine raises data_idle \
       only once cmd_active is set: a circular control dependency";
    top = "sdspi_ctrl";
    buggy_src = c1_source ~buggy:true;
    fixed_src = c1_source ~buggy:false;
    stimulus = c1_stimulus;
    max_cycles = 50;
    sample = (fun _ -> None);
    done_when = Some (fun sim -> Simulator.read_int sim "done_flag" = 1);
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "cmd_state"; "data_state" ];
    stat_events = [ ("cmd_starts", "cmd_start") ];
    dep_target = Some "done_flag";
    target_mhz = 200;
  }

(* ------------------------------------------------------------------ *)
(* C3                                                                  *)
(* ------------------------------------------------------------------ *)

let c3_source ~buggy =
  let valid_logic =
    if buggy then
      {|if (request) final_response_valid <= 1'b1;
      else final_response_valid <= 1'b0;|}
    else
      {|if (request) delayed_response_valid <= 1'b1;
      else delayed_response_valid <= 1'b0;
      final_response_valid <= delayed_response_valid;|}
  in
  let extra_decl = if buggy then "" else "reg delayed_response_valid;" in
  Printf.sprintf
    {|
module sdspi_resp (
  input clk,
  input reset,
  input request,
  input [7:0] input_data,
  output reg final_response_valid,
  output reg [7:0] final_response
);
  reg [7:0] buffered_response;
  %s

  always @(posedge clk) begin
    if (reset) begin
      final_response_valid <= 1'b0;
    end else begin
      if (request) buffered_response <= input_data + 8'd1;
      final_response <= buffered_response;
      %s
    end
  end
endmodule
|}
    extra_decl valid_logic

let c3_stimulus cycle =
  let base = [ ("reset", Bug.lo); ("request", Bug.lo) ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 3 then
    base |> set "request" Bug.hi |> set "input_data" (b8 0x41)
  else if cycle = 8 then
    base |> set "request" Bug.hi |> set "input_data" (b8 0x77)
  else base

let c3 : Bug.t =
  {
    id = "C3";
    subclass = Fpga_study.Taxonomy.Signal_asynchrony;
    application = "SDSPI";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "response data is delayed one cycle for the host turnaround but \
       the response-valid flag is raised immediately";
    top = "sdspi_resp";
    buggy_src = c3_source ~buggy:true;
    fixed_src = c3_source ~buggy:false;
    stimulus = c3_stimulus;
    max_cycles = 16;
    sample =
      (fun sim ->
        if Simulator.read_int sim "final_response_valid" = 1 then
          Some [ ("resp", Simulator.read_int sim "final_response") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [];
    stat_events = [ ("requests", "request"); ("responses", "final_response_valid") ];
    dep_target = Some "final_response_valid";
    target_mhz = 200;
  }
