(* D2 - Buffer overflow in the Grayscale accelerator (HARP).

   The accelerator has a read FSM (pulls RGB pixels from host memory),
   a grayscale transform, a line buffer, and a write FSM (pushes gray
   pixels back). The 16-entry line buffer has no flow control towards
   the producer: when the host stalls the output side, the write pointer
   wraps (power-of-two truncation, section 3.2.1 case 1) past the read
   pointer, losing the unread pixels and confusing the pointer-equality
   occupancy test - the write FSM waits forever for pixels that no
   longer exist. This is the case study of section 6.3.

   The upstream fix enlarges the buffer. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let source ~buggy =
  let buf_decl, ptr_decl =
    if buggy then ("reg [7:0] linebuf [0:15];", "reg [3:0] wptr, rptr;")
    else ("reg [7:0] linebuf [0:31];", "reg [4:0] wptr, rptr;")
  in
  Printf.sprintf
    {|
module grayscale (
  input clk,
  input reset,
  input start,
  input in_valid,
  input [23:0] in_rgb,
  input out_ready,
  input [5:0] num_pixels,
  output reg out_valid,
  output reg [7:0] out_gray,
  output [1:0] rd_state_out,
  output [1:0] wr_state_out
);
  localparam RD_IDLE = 2'd0;
  localparam RD_DATA = 2'd1;
  localparam RD_FINISH = 2'd2;
  localparam WR_IDLE = 2'd0;
  localparam WR_DATA = 2'd1;
  localparam WR_FINISH = 2'd2;

  %s
  %s
  reg [5:0] rd_count, wr_count;
  reg [1:0] rd_state, wr_state;
  wire [7:0] gray;

  assign gray = (in_rgb[23:16] >> 2) + (in_rgb[15:8] >> 1) + (in_rgb[7:0] >> 2);
  assign rd_state_out = rd_state;
  assign wr_state_out = wr_state;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      rd_state <= RD_IDLE;
      wr_state <= WR_IDLE;
      wptr <= 0;
      rptr <= 0;
      rd_count <= 6'd0;
      wr_count <= 6'd0;
    end else begin
      case (rd_state)
        RD_IDLE: if (start) rd_state <= RD_DATA;
        RD_DATA: if (in_valid) begin
          linebuf[wptr] <= gray;
          wptr <= wptr + 1;
          rd_count <= rd_count + 6'd1;
          if (rd_count + 6'd1 == num_pixels) rd_state <= RD_FINISH;
        end
        RD_FINISH: rd_state <= RD_FINISH;
      endcase
      case (wr_state)
        WR_IDLE: if (start) wr_state <= WR_DATA;
        WR_DATA: if (out_ready && (wptr != rptr)) begin
          out_valid <= 1'b1;
          out_gray <= linebuf[rptr];
          rptr <= rptr + 1;
          wr_count <= wr_count + 6'd1;
          if (wr_count + 6'd1 == num_pixels) wr_state <= WR_FINISH;
        end
        WR_FINISH: wr_state <= WR_FINISH;
      endcase
    end
  end
endmodule
|}
    buf_decl ptr_decl

let rgb i = ((0x30 + i) lsl 16) lor ((0x60 + (2 * i)) lsl 8) lor (0x90 + i)

(* 24 pixels streamed back-to-back while the output side stalls for the
   first 30 cycles: more than 16 pixels accumulate, wrapping the buggy
   buffer. *)
let stimulus cycle =
  let n = 24 in
  let base =
    [ ("reset", Bug.lo); ("start", Bug.lo); ("in_valid", Bug.lo);
      ("out_ready", if cycle < 30 then Bug.lo else Bug.hi);
      ("num_pixels", Bits.of_int ~width:6 n) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 1 then set "start" Bug.hi base
  else if cycle >= 3 && cycle < 3 + n then
    base |> set "in_valid" Bug.hi
    |> set "in_rgb" (Bits.of_int ~width:24 (rgb (cycle - 3)))
  else base

(* Ground truth: 8 pixels with a responsive consumer. *)
let ground_truth_stimulus cycle =
  let n = 8 in
  let base =
    [ ("reset", Bug.lo); ("start", Bug.lo); ("in_valid", Bug.lo);
      ("out_ready", Bug.hi); ("num_pixels", Bits.of_int ~width:6 n) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 1 then set "start" Bug.hi base
  else if cycle >= 3 && cycle < 3 + n then
    base |> set "in_valid" Bug.hi
    |> set "in_rgb" (Bits.of_int ~width:24 (rgb (cycle - 3)))
  else base

let bug : Bug.t =
  {
    id = "D2";
    subclass = Fpga_study.Taxonomy.Buffer_overflow;
    application = "Grayscale";
    platform = Fpga_resources.Platforms.Harp;
    symptoms = [ Fpga_study.Taxonomy.App_stuck; Fpga_study.Taxonomy.Data_loss ];
    helpful_tools = [ Bug.SC; Bug.FSM; Bug.Stat; Bug.LC ];
    description =
      "line buffer write pointer wraps past the read pointer when the \
       output side stalls; unread pixels are lost and the write FSM hangs";
    top = "grayscale";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 120;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out_gray", Simulator.read_int sim "out_gray") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "wr_state_out" = 2);
    ext_monitor = None;
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "in_rgb";
          valid = Fpga_hdl.Ast.Ident "in_valid";
          sink = "out_gray";
        };
    loss_root = Some "linebuf";
    ground_truth = [ (ground_truth_stimulus, 40) ];
    manual_fsms = [ "rd_state"; "wr_state" ];
    stat_events = [ ("pixels_in", "in_valid"); ("pixels_out", "out_valid") ];
    dep_target = Some "out_gray";
    target_mhz = 200;
  }
