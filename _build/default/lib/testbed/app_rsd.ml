(* D1 - Buffer overflow in a Reed-Solomon decoder (HARP).

   The decoder collects a (possibly shortened) 12-symbol codeword into a
   12-entry buffer, verifies parity, and emits the block to the host.
   Shortened blocks are right-aligned with a padding offset, but the
   padding is computed against a 16-entry layout: for a shortened block
   the store index exceeds the 12-entry (non-power-of-two) buffer, the
   writes are silently dropped (section 3.2.1 case 2), parity never
   checks out, and the decoder waits forever for a retransmission.

   Symptoms: stuck, data loss, and a shell-monitor error (the host
   staging offset leaves the 12-word response region).

   LossCheck localizes the loss to [in_reg] (the capture register whose
   value fails to propagate into the buffer) and additionally reports
   the [codeword] memory - words of an intentionally aborted block are
   overwritten by the next block; the ground-truth test does not abort,
   so the report keeps this one false positive, mirroring the paper's
   D1 result (section 6.3). *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let source ~buggy =
  let pad_expr =
    if buggy then "(block_len == 4'd12) ? 5'd0 : 5'd16 - block_len"
    else "(block_len == 4'd12) ? 5'd0 : 5'd12 - block_len"
  in
  Printf.sprintf
    {|
module rs_decoder (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input in_abort,
  input [3:0] block_len,
  output reg out_valid,
  output reg [7:0] out_data,
  output reg [5:0] host_addr,
  output reg parity_ok,
  output [1:0] state_out
);
  localparam RECV = 2'd0;
  localparam CHECK = 2'd1;
  localparam EMIT = 2'd2;
  localparam DONE = 2'd3;

  reg [7:0] codeword [0:11];
  reg [7:0] in_reg;
  reg in_vld_r;
  reg [3:0] wr_cnt;
  reg [3:0] rd_cnt;
  reg [4:0] pad;
  reg [7:0] parity;
  reg [1:0] state;

  assign state_out = state;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      state <= RECV;
      wr_cnt <= 4'd0;
      rd_cnt <= 4'd0;
      parity <= 8'd0;
      parity_ok <= 1'b0;
      in_vld_r <= 1'b0;
      pad <= %s;
    end else if (in_abort) begin
      state <= RECV;
      wr_cnt <= 4'd0;
      rd_cnt <= 4'd0;
      parity <= 8'd0;
      in_vld_r <= 1'b0;
    end else begin
      // stage 1: capture the symbol stream
      if (in_valid) begin
        in_reg <= in_data;
        in_vld_r <= 1'b1;
      end else begin
        in_vld_r <= 1'b0;
      end
      case (state)
        RECV: if (in_vld_r) begin
          // stage 2: store into the (shortened) codeword buffer
          codeword[pad + wr_cnt] <= in_reg;
          host_addr <= pad + wr_cnt;
          parity <= parity ^ in_reg;
          wr_cnt <= wr_cnt + 4'd1;
          if (wr_cnt + 4'd1 == block_len) state <= CHECK;
        end
        CHECK: begin
          if (rd_cnt == block_len) begin
            if (parity == 8'd0) begin
              state <= EMIT;
              rd_cnt <= 4'd0;
              parity_ok <= 1'b1;
            end
            // otherwise: wait for a retransmission that never comes
          end else begin
            parity <= parity ^ codeword[pad + rd_cnt];
            rd_cnt <= rd_cnt + 4'd1;
          end
        end
        EMIT: begin
          if (rd_cnt == block_len) state <= DONE;
          else begin
            out_valid <= 1'b1;
            out_data <= codeword[pad + rd_cnt];
            rd_cnt <= rd_cnt + 4'd1;
          end
        end
        DONE: state <= DONE;
      endcase
    end
  end
endmodule
|}
    pad_expr

(* A block whose symbols XOR to zero (the last symbol is the running
   parity), so a fully-stored block always passes the check. *)
let block symbols =
  let parity = List.fold_left ( lxor ) 0 symbols in
  symbols @ [ parity ]

let shortened_payload = [ 0x11; 0x22; 0x33; 0x44; 0x55; 0x66; 0x77; 0x88; 0x99 ]
let full_payload = List.init 11 (fun i -> 0x20 + (7 * i))

(* One reset cycle, then symbols back to back. The bug-triggering
   stimulus first streams three symbols of a block and aborts it (the
   intentional drop), then streams a shortened 10-symbol block. *)
let stimulus cycle =
  let symbols = block shortened_payload in  (* 10 symbols *)
  let aborted = [ 0xA1; 0xA2; 0xA3 ] in
  let b8 = Bits.of_int ~width:8 in
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_abort", Bug.lo);
      ("block_len", Bits.of_int ~width:4 10) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 2 + List.length aborted then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (List.nth aborted (cycle - 2)))
  else if cycle = 2 + List.length aborted then set "in_abort" Bug.hi base
  else if cycle >= 7 && cycle < 7 + List.length symbols then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (List.nth symbols (cycle - 7)))
  else base

(* Ground truth: a full-length (unshortened) block, which the buggy
   design handles correctly. *)
let ground_truth_stimulus cycle =
  let symbols = block full_payload in  (* 12 symbols *)
  let b8 = Bits.of_int ~width:8 in
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_abort", Bug.lo);
      ("block_len", Bits.of_int ~width:4 12) ]
  in
  let set k v l = (k, v) :: List.remove_assoc k l in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 2 + List.length symbols then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (List.nth symbols (cycle - 2)))
  else base

let bug : Bug.t =
  {
    id = "D1";
    subclass = Fpga_study.Taxonomy.Buffer_overflow;
    application = "Reed-Solomon Decoder";
    platform = Fpga_resources.Platforms.Harp;
    symptoms =
      [ Fpga_study.Taxonomy.App_stuck; Fpga_study.Taxonomy.Data_loss;
        Fpga_study.Taxonomy.External_error ];
    helpful_tools = [ Bug.SC; Bug.FSM; Bug.LC ];
    description =
      "shortened-block padding computed against a 16-entry layout \
       overflows the 12-entry codeword buffer; writes are dropped";
    top = "rs_decoder";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 120;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out_data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "state_out" = 3);
    ext_monitor = Some (fun sim -> Simulator.read_int sim "host_addr" >= 12);
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "in_data";
          valid = Fpga_hdl.Ast.Ident "in_valid";
          sink = "out_data";
        };
    loss_root = Some "in_reg";
    ground_truth = [ (ground_truth_stimulus, 60) ];
    manual_fsms = [ "state" ];
    stat_events = [ ("symbols_in", "in_valid"); ("symbols_out", "out_valid") ];
    dep_target = Some "out_data";
    target_mhz = 200;
  }
