(* S2 - Protocol violation in an AXI-Stream source (Xilinx demo).

   AXI-Stream requires TDATA to stay stable while TVALID is high and
   TREADY is low. The buggy source keeps advancing its word counter
   during a stall, so the beat the consumer finally accepts is not the
   beat that was first offered. An external protocol checker (stability
   monitor) catches it. *)

module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let stall_branch =
    if buggy then
      {|else begin
        // BUG: keeps producing while stalled
        tdata <= word_counter;
        word_counter <= word_counter + 8'd1;
      end|}
    else ""
  in
  Printf.sprintf
    {|
module axis_source (
  input clk,
  input reset,
  input start,
  input tready,
  output reg tvalid,
  output reg [7:0] tdata,
  output reg [3:0] sent
);
  reg [7:0] word_counter;
  reg active;

  always @(posedge clk) begin
    if (reset) begin
      tvalid <= 1'b0;
      word_counter <= 8'd0;
      sent <= 4'd0;
      active <= 1'b0;
    end else begin
      if (start) active <= 1'b1;
      if (active && !tvalid) begin
        tvalid <= 1'b1;
        tdata <= word_counter;
        word_counter <= word_counter + 8'd1;
      end else if (tvalid && tready) begin
        sent <= sent + 4'd1;
        if (sent + 4'd1 == 4'd6) begin
          tvalid <= 1'b0;
          active <= 1'b0;
        end else begin
          tdata <= word_counter;
          word_counter <= word_counter + 8'd1;
        end
      end %s
    end
  end
endmodule
|}
    stall_branch

let stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("start", Bug.lo);
      (* the consumer stalls for stretches *)
      ("tready", if cycle mod 5 < 2 then Bug.lo else Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle = 1 then set "start" Bug.hi base
  else base

(* Stability checker with per-run state, reset at the start of a run. *)
let make_ext_monitor () =
  (* the beat offered during cycle t is the registered value observed
     after step t-1; it may only change across the edge of cycle t if
     tready was high during t (the transfer completed) *)
  let offered = ref None in
  fun sim ->
    if Simulator.cycle sim <= 1 then offered := None;
    let tvalid = Simulator.read_int sim "tvalid" in
    let tdata = Simulator.read_int sim "tdata" in
    let tready = Simulator.read_int sim "tready" in
    let violation =
      match !offered with
      | Some (1, pd) -> tready = 0 && tvalid = 1 && tdata <> pd
      | _ -> false
    in
    offered := Some (tvalid, tdata);
    violation

let bug : Bug.t =
  {
    id = "S2";
    subclass = Fpga_study.Taxonomy.Protocol_violation;
    application = "AXI-Stream Demo";
    platform = Fpga_resources.Platforms.Xilinx;
    symptoms = [ Fpga_study.Taxonomy.External_error ];
    helpful_tools = [ Bug.SC ];
    description =
      "TDATA advances while TVALID is high and TREADY is low, violating \
       AXI-Stream stability";
    top = "axis_source";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 40;
    sample = (fun _ -> None);
    done_when = Some (fun sim -> Simulator.read_int sim "sent" >= 6);
    ext_monitor = Some (make_ext_monitor ());
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "tvalid"; "active" ];
    stat_events = [ ("beats_sent", "tvalid") ];
    dep_target = Some "tdata";
    target_mhz = 200;
  }
