(* D13 - Failure-to-update in a frame length measurer (generic).

   The paper's section 3.2.5 pattern: on reset, the per-frame input
   counter is cleared but the cumulative word counter is not, so after a
   mid-stream reset the statistics output carries stale state. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let clear = if buggy then "" else "total_words <= 8'd0;" in
  Printf.sprintf
    {|
module frame_len (
  input clk,
  input reset,
  input in_valid,
  input in_last,
  output reg out_valid,
  output reg [7:0] frame_words,
  output reg [7:0] total_words
);
  reg [7:0] input_counter;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (in_valid) begin
      input_counter <= input_counter + 8'd1;
      total_words <= total_words + 8'd1;
    end
    if (in_valid && in_last) begin
      out_valid <= 1'b1;
      frame_words <= input_counter + 8'd1;
      input_counter <= 8'd0;
    end
    if (reset) begin
      input_counter <= 8'd0;
      %s
    end
  end
endmodule
|}
    clear

(* A 3-word frame, then a mid-stream reset, then a 4-word frame. *)
let stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 5 then
    base |> set "in_valid" Bug.hi
    |> set "in_last" (if cycle = 4 then Bug.hi else Bug.lo)
  else if cycle = 6 then set "reset" Bug.hi base
  else if cycle >= 8 && cycle < 12 then
    base |> set "in_valid" Bug.hi
    |> set "in_last" (if cycle = 11 then Bug.hi else Bug.lo)
  else base

let bug : Bug.t =
  {
    id = "D13";
    subclass = Fpga_study.Taxonomy.Failure_to_update;
    application = "Frame Length Measurer";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Stat ];
    description =
      "reset clears the per-frame counter but not the cumulative word \
       counter, leaving stale statistics after a mid-stream reset";
    top = "frame_len";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 20;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("frame_words", Simulator.read_int sim "frame_words");
              ("total_words", Simulator.read_int sim "total_words") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [];
    stat_events = [ ("words_in", "in_valid"); ("frames_out", "out_valid") ];
    dep_target = Some "total_words";
    target_mhz = 200;
  }
