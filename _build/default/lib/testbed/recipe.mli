(** The per-bug debugging recipe: use case 1 of section 6.2 (SignalCat
    plus all three monitors) applied to a testbed bug, with the
    resulting resource and timing measurements behind Figure 2,
    Figure 3, and section 6.4. *)

type instrumented = {
  baseline : Fpga_hdl.Ast.module_def;
  with_monitors : Fpga_hdl.Ast.module_def;
      (** monitors applied, $display statements still present *)
  on_fpga : Fpga_hdl.Ast.module_def;
      (** displays compiled into recording logic *)
  signalcat_plan : Fpga_debug.Signalcat.plan;
  monitor_loc : int;  (** Verilog lines the monitors inserted *)
  recording_loc : int;  (** gross lines of generated recording logic *)
}

val apply : ?buffer_depth:int -> Bug.t -> instrumented

val overhead : ?buffer_depth:int -> Bug.t -> Fpga_resources.Model.usage
(** One point of Figure 2: resource overhead of the recipe at a given
    recording depth. *)

val timing :
  ?buffer_depth:int ->
  Bug.t ->
  Fpga_resources.Model.timing * Fpga_resources.Model.timing
(** Baseline and instrumented timing closure (section 6.4). *)

val losscheck_overhead : Bug.t -> Fpga_resources.Model.usage option
(** Figure 3: LossCheck instrumentation overhead, for loss bugs. *)
