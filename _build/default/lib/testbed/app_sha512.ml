(* SHA512 accelerator bugs (HARP).

   The engine loads a 64-bit message word, runs eight mixing rounds over
   a 64-bit chaining variable, and writes the digest back to host memory
   at an address derived from a 64-bit base pointer.

   D5 - Bit truncation: the paper's section 3.2.2 pattern verbatim. The
   write-back address is computed by casting the base pointer to 42 bits
   before the >>6 shift, losing bits [47:42]; the digest lands outside
   the destination region and the shell monitor reports it.

   D10 - Failure-to-update: the chaining variable is initialized only at
   reset, not when a new message starts, so the second digest absorbs
   state from the first. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~addr_buggy ~init_buggy =
  let addr_expr =
    if addr_buggy then "dst_base[41:0] >> 6" else "dst_base[47:6]"
  in
  let h_init = if init_buggy then "" else "h <= 64'h6a09e667f3bcc908;" in
  Printf.sprintf
    {|
module sha512 (
  input clk,
  input reset,
  input start,
  input in_valid,
  input [63:0] in_word,
  input [63:0] dst_base,
  output reg wr_valid,
  output reg [63:0] digest,
  output reg [41:0] host_wr_addr,
  output [1:0] state_out
);
  localparam IDLE = 2'd0;
  localparam LOAD = 2'd1;
  localparam ROUND = 2'd2;
  localparam WRITE = 2'd3;

  reg [1:0] state;
  reg [63:0] h;
  reg [63:0] w;
  reg [3:0] round;

  assign state_out = state;

  always @(posedge clk) begin
    wr_valid <= 1'b0;
    if (reset) begin
      state <= IDLE;
      h <= 64'h6a09e667f3bcc908;
      round <= 4'd0;
    end else begin
      case (state)
        IDLE: if (start) begin
          round <= 4'd0;
          %s
          state <= LOAD;
        end
        LOAD: if (in_valid) begin
          w <= in_word;
          state <= ROUND;
        end
        ROUND: begin
          h <= h + (w ^ {h[12:0], h[63:13]}) + 64'h428a2f98d728ae22;
          w <= {w[55:0], w[63:56]};
          round <= round + 4'd1;
          if (round == 4'd7) state <= WRITE;
        end
        WRITE: begin
          wr_valid <= 1'b1;
          digest <= h;
          host_wr_addr <= %s;
          state <= IDLE;
        end
      endcase
    end
  end
endmodule
|}
    h_init addr_expr

let base_pointer = 0x0000_4400_0000_0080
let expected_addr = base_pointer lsr 6

let message_stimulus words cycle =
  let base =
    [ ("reset", Bug.lo); ("start", Bug.lo); ("in_valid", Bug.lo);
      ("dst_base", Bits.of_int ~width:64 base_pointer) ]
  in
  (* each message: start pulse, then the word; rounds take 8 cycles *)
  let period = 14 in
  let idx = (cycle - 2) / period and phase = (cycle - 2) mod period in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && idx < List.length words then
    if phase = 0 then set "start" Bug.hi base
    else if phase = 2 then
      base |> set "in_valid" Bug.hi
      |> set "in_word" (Bits.of_int ~width:64 (List.nth words idx))
    else base
  else base

let sample sim =
  if Simulator.read_int sim "wr_valid" = 1 then
    Some
      [
        ("digest", Bits.to_int_trunc (Simulator.read sim "digest"));
        ("addr", Simulator.read_int sim "host_wr_addr");
      ]
  else None

let d5 : Bug.t =
  {
    id = "D5";
    subclass = Fpga_study.Taxonomy.Bit_truncation;
    application = "SHA512";
    platform = Fpga_resources.Platforms.Harp;
    symptoms =
      [ Fpga_study.Taxonomy.Incorrect_output; Fpga_study.Taxonomy.External_error ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.Dep ];
    description =
      "write-back address cast to 42 bits before the >>6 shift drops \
       base-pointer bits [47:42]";
    top = "sha512";
    buggy_src = source ~addr_buggy:true ~init_buggy:false;
    fixed_src = source ~addr_buggy:false ~init_buggy:false;
    stimulus = message_stimulus [ 0x0123_4567_89ab_cdef ];
    max_cycles = 40;
    sample;
    done_when = None;
    ext_monitor =
      Some
        (fun sim ->
          let addr = Simulator.read_int sim "host_wr_addr" in
          addr <> 0 && addr <> expected_addr);
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "state" ];
    stat_events = [ ("digests_out", "wr_valid") ];
    dep_target = Some "host_wr_addr";
    target_mhz = 400;
  }

let d10 : Bug.t =
  {
    id = "D10";
    subclass = Fpga_study.Taxonomy.Failure_to_update;
    application = "SHA512";
    platform = Fpga_resources.Platforms.Harp;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.FSM; Bug.Dep ];
    description =
      "the chaining variable is initialized only at reset, so the \
       second message's digest absorbs the first message's state";
    top = "sha512";
    buggy_src = source ~addr_buggy:false ~init_buggy:true;
    fixed_src = source ~addr_buggy:false ~init_buggy:false;
    stimulus =
      message_stimulus [ 0x1111_2222_3333_4444; 0x5555_6666_7777_8888 ];
    max_cycles = 60;
    sample;
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "state" ];
    stat_events = [ ("digests_out", "wr_valid") ];
    dep_target = Some "digest";
    target_mhz = 400;
  }
