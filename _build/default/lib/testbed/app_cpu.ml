(* A reduced in-order CPU core ("cpu_lite", 16-bit instructions, eight
   registers) standing in for the study's RISC-V cores, carrying two
   more reproduced study bugs:

   E7 - Bit truncation (VexRiscv, study bug #12): the branch target
   adder computes over the low seven PC bits only, losing the carry
   into the top bit ("branch target calculation loses carry into
   bit 31", scaled to the 8-bit PC); branches taken from addresses
   >= 128 land in low memory and execute the wrong code.

   E8 - Signal asynchrony (CVA6, study bug #39): the exception-valid
   flag rises in the cycle the illegal instruction retires, but the
   cause register is staged one cycle behind it, so the trap monitor
   samples a stale cause.

   ISA (instr[15:13] = opcode, [12:10] = rd, [9:7] = rs1, [6:0] = imm7
   or [6:4] = rs2):
     0 ADDI rd, rs1, simm7      3 OUT rs1
     1 ADD  rd, rs1, rs2        4 HALT
     2 BEQZ rs1, simm7          others: illegal-instruction trap *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator
module Taxonomy = Fpga_study.Taxonomy

let set k v l = (k, v) :: List.remove_assoc k l

let source ~branch_buggy ~exc_buggy =
  let btarget =
    if branch_buggy then "{1'b0, pc[6:0]} + {imm7[6], imm7}"
    else "pc + {imm7[6], imm7}"
  in
  let exc_logic =
    if exc_buggy then
      {|exc_valid <= 1'b1;
          cause_stage <= {1'b0, opcode};
          halted <= 1'b1;|}
    else
      {|exc_valid <= 1'b1;
          exc_cause <= {1'b0, opcode};
          halted <= 1'b1;|}
  in
  let exc_stage_update =
    if exc_buggy then "exc_cause <= cause_stage;" else ""
  in
  Printf.sprintf
    {|
module cpu_lite (
  input clk,
  input reset,
  input load_en,
  input [7:0] load_addr,
  input [15:0] load_data,
  input run,
  output reg halted,
  output reg out_valid,
  output reg [15:0] out_data,
  output reg exc_valid,
  output reg [3:0] exc_cause
);
  reg [15:0] imem [0:255];
  reg [15:0] regs [0:7];
  reg [7:0] pc;
  reg running;
  reg [3:0] cause_stage;

  wire [15:0] instr;
  wire [2:0] opcode;
  wire [2:0] rd;
  wire [2:0] rs1;
  wire [2:0] rs2;
  wire [6:0] imm7;
  wire [15:0] imm_sext;
  wire [7:0] btarget;

  assign instr = imem[pc];
  assign opcode = instr[15:13];
  assign rd = instr[12:10];
  assign rs1 = instr[9:7];
  assign rs2 = instr[6:4];
  assign imm7 = instr[6:0];
  assign imm_sext = {{9{instr[6]}}, instr[6:0]};
  assign btarget = %s;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    exc_valid <= 1'b0;
    %s
    if (reset) begin
      pc <= 8'd0;
      running <= 1'b0;
      halted <= 1'b0;
      regs[0] <= 16'd0;
    end else begin
      if (load_en) imem[load_addr] <= load_data;
      if (run) running <= 1'b1;
      if (running && !halted) begin
        pc <= pc + 8'd1;
        case (opcode)
          3'd0: if (rd != 3'd0) regs[rd] <= regs[rs1] + imm_sext;
          3'd1: if (rd != 3'd0) regs[rd] <= regs[rs1] + regs[rs2];
          3'd2: if (regs[rs1] == 16'd0) pc <= btarget;
          3'd3: begin
            out_valid <= 1'b1;
            out_data <= regs[rs1];
          end
          3'd4: halted <= 1'b1;
          default: begin
            %s
          end
        endcase
      end
    end
  end
endmodule
|}
    btarget exc_stage_update exc_logic

(* --- a tiny assembler ----------------------------------------------- *)

let addi rd rs1 imm = (0 lsl 13) lor (rd lsl 10) lor (rs1 lsl 7) lor (imm land 0x7F)
let add rd rs1 rs2 = (1 lsl 13) lor (rd lsl 10) lor (rs1 lsl 7) lor (rs2 lsl 4)
let beqz rs1 off = (2 lsl 13) lor (rs1 lsl 7) lor (off land 0x7F)
let out rs1 = (3 lsl 13) lor (rs1 lsl 7)
let halt = 4 lsl 13
let illegal = 7 lsl 13

(* Drive the boot loader, then pulse [run]. *)
let loader_stimulus program cycle =
  let base =
    [ ("reset", Bug.lo); ("load_en", Bug.lo); ("run", Bug.lo) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 1 && cycle - 1 < List.length program then (
    let addr, data = List.nth program (cycle - 1) in
    base |> set "load_en" Bug.hi
    |> set "load_addr" (Bits.of_int ~width:8 addr)
    |> set "load_data" (Bits.of_int ~width:16 data))
  else if cycle = 1 + List.length program then set "run" Bug.hi base
  else base

(* The E7 program straddles the 128 boundary: two forward hops reach
   address 130, whose branch to 134 loses the PC carry in the buggy
   core and lands on the garbage pad at 6. *)
let e7_program =
  [
    (0, beqz 0 63);       (* -> 63 *)
    (6, addi 3 0 9);      (* garbage landing pad *)
    (7, out 3);
    (8, halt);
    (63, beqz 0 63);      (* -> 126 *)
    (126, addi 3 0 42);
    (127, addi 4 0 1);
    (128, addi 4 0 2);
    (129, addi 4 0 3);
    (130, beqz 0 4);      (* -> 134 (buggy: 6) *)
    (134, out 3);
    (135, halt);
  ]

let e7 : Bug.t =
  {
    Extended.base_bug with
    id = "E7";
    subclass = Taxonomy.Bit_truncation;
    application = "VexRiscv";
    symptoms = [ Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the branch-target adder drops the PC's top bit, so branches taken \
       above the half-way boundary land in low memory";
    top = "cpu_lite";
    buggy_src = source ~branch_buggy:true ~exc_buggy:false;
    fixed_src = source ~branch_buggy:false ~exc_buggy:false;
    stimulus = loader_stimulus e7_program;
    max_cycles = 200;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out", Simulator.read_int sim "out_data") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "halted" = 1);
    dep_target = Some "out_data";
    manual_fsms = [];
  }

(* The E8 program retires one ADDI and then an illegal instruction. *)
let e8_program = [ (0, addi 1 0 5); (1, illegal); (2, halt) ]

let e8 : Bug.t =
  {
    Extended.base_bug with
    id = "E8";
    subclass = Taxonomy.Signal_asynchrony;
    application = "CVA6 RISC-V";
    symptoms = [ Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the illegal-instruction cause register is staged one cycle behind \
       the exception-valid flag, so the trap monitor samples a stale cause";
    top = "cpu_lite";
    buggy_src = source ~branch_buggy:false ~exc_buggy:true;
    fixed_src = source ~branch_buggy:false ~exc_buggy:false;
    stimulus = loader_stimulus e8_program;
    max_cycles = 30;
    sample =
      (fun sim ->
        if Simulator.read_int sim "exc_valid" = 1 then
          Some [ ("cause", Simulator.read_int sim "exc_cause") ]
        else None);
    done_when = Some (fun sim -> Simulator.read_int sim "halted" = 1);
    dep_target = Some "exc_cause";
    manual_fsms = [];
  }
