(* Frame FIFO bugs (generic platform).

   D4 - Buffer overflow: the frame FIFO commits its write pointer at
   end-of-frame but never checks for space; a frame larger than the
   free space wraps the power-of-two storage and destroys the previous
   unread frame.

   D11 - Failure-to-update: the FIFO supports aborting a frame in
   flight (an intentional drop). The [drop] flag is never cleared at
   the end of the aborted frame, so every subsequent frame is dropped
   too. This is the paper's LossCheck false negative: the loss happens
   at a register whose drops are also intentional, so ground-truth
   filtering suppresses the alarm (section 4.5.4).

   D12 - Failure-to-update: the in-frame flag is not cleared at
   end-of-frame, so the header of a back-to-back frame is treated as
   payload and the latched frame length goes stale. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l
let b8 = Bits.of_int ~width:8

(* ------------------------------------------------------------------ *)
(* D4                                                                  *)
(* ------------------------------------------------------------------ *)

let d4_source ~buggy =
  let mem_decl, ptr_decl =
    if buggy then ("reg [7:0] mem [0:15];", "reg [3:0] wptr, wptr_tmp, rptr;")
    else ("reg [7:0] mem [0:31];", "reg [4:0] wptr, wptr_tmp, rptr;")
  in
  Printf.sprintf
    {|
module frame_fifo (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input in_last,
  input out_ready,
  output reg out_valid,
  output reg [7:0] out_data
);
  %s
  %s

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      wptr <= 0;
      wptr_tmp <= 0;
      rptr <= 0;
    end else begin
      if (in_valid) begin
        mem[wptr_tmp] <= in_data;
        wptr_tmp <= wptr_tmp + 1;
        if (in_last) wptr <= wptr_tmp + 1;
      end
      if (out_ready && (rptr != wptr)) begin
        out_valid <= 1'b1;
        out_data <= mem[rptr];
        rptr <= rptr + 1;
      end
    end
  end
endmodule
|}
    mem_decl ptr_decl

(* Frame A (6 words) parked unread while frame B (14 words) arrives:
   more than 16 words outstanding wraps the buggy storage. *)
let d4_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo);
      ("out_ready", if cycle < 30 then Bug.lo else Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 8 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x10 + cycle - 2))
    |> set "in_last" (if cycle = 7 then Bug.hi else Bug.lo)
  else if cycle >= 9 && cycle < 23 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x50 + cycle - 9))
    |> set "in_last" (if cycle = 22 then Bug.hi else Bug.lo)
  else base

let d4_ground_truth cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo);
      ("out_ready", Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 6 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x20 + cycle))
    |> set "in_last" (if cycle = 5 then Bug.hi else Bug.lo)
  else base

let d4 : Bug.t =
  {
    id = "D4";
    subclass = Fpga_study.Taxonomy.Buffer_overflow;
    application = "Frame FIFO";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Data_loss ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.LC ];
    description =
      "no space check at frame ingress: a long frame wraps the \
       power-of-two storage over the previous unread frame";
    top = "frame_fifo";
    buggy_src = d4_source ~buggy:true;
    fixed_src = d4_source ~buggy:false;
    stimulus = d4_stimulus;
    max_cycles = 80;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out_data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "in_data";
          valid = Fpga_hdl.Ast.Ident "in_valid";
          sink = "out_data";
        };
    loss_root = Some "mem";
    ground_truth = [ (d4_ground_truth, 30) ];
    manual_fsms = [];
    stat_events = [ ("words_in", "in_valid"); ("words_out", "out_valid") ];
    dep_target = Some "out_data";
    target_mhz = 200;
  }

(* ------------------------------------------------------------------ *)
(* D11                                                                 *)
(* ------------------------------------------------------------------ *)

let d11_source ~buggy =
  let clear = if buggy then "" else "drop <= 1'b0;" in
  Printf.sprintf
    {|
module frame_fifo_drop (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input in_last,
  input in_abort,
  input out_ready,
  output reg out_valid,
  output reg [7:0] out_data
);
  reg [7:0] mem [0:31];
  reg [4:0] wptr, wptr_tmp, rptr;
  reg drop;
  reg [7:0] word_reg;
  reg word_vld, word_last;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      wptr <= 0;
      wptr_tmp <= 0;
      rptr <= 0;
      drop <= 1'b0;
      word_vld <= 1'b0;
    end else begin
      // capture stage
      if (in_valid) begin
        word_reg <= in_data;
        word_vld <= 1'b1;
        word_last <= in_last;
      end else begin
        word_vld <= 1'b0;
      end
      if (in_abort) begin
        drop <= 1'b1;
        wptr_tmp <= wptr;
        word_vld <= 1'b0;
      end
      // store stage
      if (word_vld && !drop) begin
        mem[wptr_tmp] <= word_reg;
        wptr_tmp <= wptr_tmp + 1;
        if (word_last) wptr <= wptr_tmp + 1;
      end
      if (word_vld && drop && word_last) begin
        // aborted frame fully consumed: resume storing
        %s
      end
      if (out_ready && (rptr != wptr)) begin
        out_valid <= 1'b1;
        out_data <= mem[rptr];
        rptr <= rptr + 1;
      end
    end
  end
endmodule
|}
    clear

(* Frame A (4 words), frame B aborted at its second word, frame C
   (4 words). The buggy design silently drops frame C. *)
let d11_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo);
      ("in_abort", Bug.lo); ("out_ready", Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 6 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x11 * (cycle - 1)))
    |> set "in_last" (if cycle = 5 then Bug.hi else Bug.lo)
  else if cycle >= 8 && cycle < 12 then
    (* frame B, aborted at cycle 9 *)
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x70 + cycle))
    |> set "in_last" (if cycle = 11 then Bug.hi else Bug.lo)
    |> set "in_abort" (if cycle = 9 then Bug.hi else Bug.lo)
  else if cycle >= 14 && cycle < 18 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0xC0 + cycle))
    |> set "in_last" (if cycle = 17 then Bug.hi else Bug.lo)
  else base

(* Ground truth: a good frame followed by an aborted frame as the last
   traffic - it passes on the buggy design and exercises the
   intentional drop at [word_reg], teaching the filter to ignore it. *)
let d11_ground_truth cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo);
      ("in_abort", Bug.lo); ("out_ready", Bug.hi) ]
  in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 6 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x21 * (cycle - 1)))
    |> set "in_last" (if cycle = 5 then Bug.hi else Bug.lo)
  else if cycle >= 8 && cycle < 12 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (0x90 + cycle))
    |> set "in_last" (if cycle = 11 then Bug.hi else Bug.lo)
    |> set "in_abort" (if cycle = 9 then Bug.hi else Bug.lo)
  else base

let d11 : Bug.t =
  {
    id = "D11";
    subclass = Fpga_study.Taxonomy.Failure_to_update;
    application = "Frame FIFO";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Data_loss ];
    helpful_tools = [ Bug.SC; Bug.Stat ];
    description =
      "the drop flag set by an aborted frame is never cleared, so every \
       later frame is dropped as well";
    top = "frame_fifo_drop";
    buggy_src = d11_source ~buggy:true;
    fixed_src = d11_source ~buggy:false;
    stimulus = d11_stimulus;
    max_cycles = 60;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("out_data", Simulator.read_int sim "out_data") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec =
      Some
        {
          Fpga_debug.Losscheck.source = "in_data";
          valid = Fpga_hdl.Ast.Ident "in_valid";
          sink = "out_data";
        };
    (* LossCheck cannot localize this one: the alarm register is
       filtered as an intentional drop (the paper's false negative) *)
    loss_root = None;
    ground_truth = [ (d11_ground_truth, 40) ];
    manual_fsms = [];
    stat_events = [ ("words_in", "in_valid"); ("words_out", "out_valid") ];
    dep_target = Some "out_data";
    target_mhz = 200;
  }

(* ------------------------------------------------------------------ *)
(* D12                                                                 *)
(* ------------------------------------------------------------------ *)

let d12_source ~buggy =
  let clear = if buggy then "" else "in_frame <= 1'b0;" in
  Printf.sprintf
    {|
module frame_meta (
  input clk,
  input reset,
  input in_valid,
  input [7:0] in_data,
  input in_last,
  output reg out_valid,
  output reg [7:0] out_len,
  output reg [7:0] out_sum
);
  reg in_frame;
  reg [7:0] len_latch;
  reg [7:0] sum;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      in_frame <= 1'b0;
      sum <= 8'd0;
    end else if (in_valid) begin
      if (!in_frame) begin
        // header word carries the expected frame length
        in_frame <= 1'b1;
        len_latch <= in_data;
        sum <= 8'd0;
      end else begin
        sum <= sum + in_data;
      end
      if (in_last) begin
        out_valid <= 1'b1;
        out_len <= len_latch;
        out_sum <= sum + in_data;
        %s
      end
    end
  end
endmodule
|}
    clear

(* Two back-to-back frames; with the stale in-frame flag the second
   frame's header is folded into the payload sum and the latched length
   is the first frame's. *)
let d12_stimulus cycle =
  let base =
    [ ("reset", Bug.lo); ("in_valid", Bug.lo); ("in_last", Bug.lo) ]
  in
  let frame1 = [ 0x03; 0x0A; 0x0B; 0x0C ] in
  let frame2 = [ 0x02; 0x21; 0x22 ] in
  if cycle = 0 then set "reset" Bug.hi base
  else if cycle >= 2 && cycle < 2 + List.length frame1 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (List.nth frame1 (cycle - 2)))
    |> set "in_last" (if cycle = 1 + List.length frame1 then Bug.hi else Bug.lo)
  else if cycle >= 6 && cycle < 6 + List.length frame2 then
    base |> set "in_valid" Bug.hi
    |> set "in_data" (b8 (List.nth frame2 (cycle - 6)))
    |> set "in_last" (if cycle = 5 + List.length frame2 then Bug.hi else Bug.lo)
  else base

let d12 : Bug.t =
  {
    id = "D12";
    subclass = Fpga_study.Taxonomy.Failure_to_update;
    application = "Frame FIFO";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Stat; Bug.Dep ];
    description =
      "the in-frame flag is not cleared at end-of-frame, so a \
       back-to-back frame's header is treated as payload and the \
       latched length goes stale";
    top = "frame_meta";
    buggy_src = d12_source ~buggy:true;
    fixed_src = d12_source ~buggy:false;
    stimulus = d12_stimulus;
    max_cycles = 30;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some
            [ ("len", Simulator.read_int sim "out_len");
              ("sum", Simulator.read_int sim "out_sum") ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [ "in_frame" ];
    stat_events = [ ("frames_out", "out_valid") ];
    dep_target = Some "out_len";
    target_mhz = 200;
  }
