lib/testbed/app_cpu.ml: Bug Extended Fpga_bits Fpga_sim Fpga_study List Printf
