lib/testbed/app_frame_len.ml: Bug Fpga_bits Fpga_resources Fpga_sim Fpga_study List Printf
