lib/testbed/app_fft.ml: Bug Fpga_bits Fpga_resources Fpga_sim Fpga_study List Printf
