lib/testbed/bug.ml: Fpga_analysis Fpga_bits Fpga_debug Fpga_hdl Fpga_resources Fpga_sim Fpga_study List String
