lib/testbed/app_axis_demo.ml: Bug Fpga_resources Fpga_sim Fpga_study List Printf
