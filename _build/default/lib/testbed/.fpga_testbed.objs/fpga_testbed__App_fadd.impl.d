lib/testbed/app_fadd.ml: Bug Fpga_bits Fpga_resources Fpga_sim Fpga_study List Printf
