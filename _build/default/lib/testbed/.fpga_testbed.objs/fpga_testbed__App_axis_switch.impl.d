lib/testbed/app_axis_switch.ml: Bug Fpga_bits Fpga_resources Fpga_sim Fpga_study List Printf
