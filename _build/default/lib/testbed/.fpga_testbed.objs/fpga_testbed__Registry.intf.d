lib/testbed/registry.mli: Bug
