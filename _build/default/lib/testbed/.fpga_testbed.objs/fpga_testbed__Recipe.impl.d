lib/testbed/recipe.ml: Bug Fpga_debug Fpga_hdl Fpga_resources List Option
