lib/testbed/app_axil_demo.ml: Bug Fpga_bits Fpga_resources Fpga_sim Fpga_study List Printf
