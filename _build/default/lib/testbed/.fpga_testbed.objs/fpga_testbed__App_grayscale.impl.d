lib/testbed/app_grayscale.ml: Bug Fpga_bits Fpga_debug Fpga_hdl Fpga_resources Fpga_sim Fpga_study List Printf
