lib/testbed/recipe.mli: Bug Fpga_debug Fpga_hdl Fpga_resources
