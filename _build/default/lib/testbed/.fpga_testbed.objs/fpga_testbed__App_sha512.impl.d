lib/testbed/app_sha512.ml: Bug Fpga_bits Fpga_resources Fpga_sim Fpga_study List Printf
