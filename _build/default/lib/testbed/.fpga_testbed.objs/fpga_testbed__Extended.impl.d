lib/testbed/extended.ml: Bug Fpga_bits Fpga_debug Fpga_resources Fpga_sim Fpga_study List Printf
