(* D7 - Misindexing in a floating-point adder (generic).

   IEEE-754 single precision puts the fraction in bits [22:0] and the
   exponent in [30:23]. The developer extracted the fraction as [23:0],
   folding the exponent's least significant bit into the mantissa
   (section 3.2.3); every sum with an odd exponent is wrong. *)

module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator

let set k v l = (k, v) :: List.remove_assoc k l

let source ~buggy =
  let extract v =
    if buggy then Printf.sprintf "{1'b1, %s[23:0]}" v
    else Printf.sprintf "{2'b01, %s[22:0]}" v
  in
  Printf.sprintf
    {|
module fadd (
  input clk,
  input reset,
  input in_valid,
  input [31:0] a,
  input [31:0] b,
  output reg out_valid,
  output reg [31:0] sum
);
  reg [7:0] exp_a, exp_b;
  reg [24:0] frac_a, frac_b;
  reg stage_vld;
  reg [25:0] mant;
  reg [7:0] exp_r;
  reg norm_vld;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      stage_vld <= 1'b0;
      norm_vld <= 1'b0;
    end else begin
      // stage 1: unpack (assumes exp_a >= exp_b, positive operands)
      if (in_valid) begin
        exp_a <= a[30:23];
        exp_b <= b[30:23];
        frac_a <= %s;
        frac_b <= %s;
        stage_vld <= 1'b1;
      end else begin
        stage_vld <= 1'b0;
      end
      // stage 2: align and add
      if (stage_vld) begin
        mant <= frac_a + (frac_b >> (exp_a - exp_b));
        exp_r <= exp_a;
        norm_vld <= 1'b1;
      end else begin
        norm_vld <= 1'b0;
      end
      // stage 3: normalize and pack
      if (norm_vld) begin
        out_valid <= 1'b1;
        if (mant[25]) sum <= {1'b0, exp_r + 8'd1, mant[24:2]};
        else if (mant[24]) sum <= {1'b0, exp_r + 8'd1, mant[23:1]};
        else sum <= {1'b0, exp_r, mant[22:0]};
      end
    end
  end
endmodule
|}
    (extract "a") (extract "b")

(* IEEE-754 encodings of small floats; 1.5 (0x3FC00000) has an odd
   biased exponent LSB pattern that triggers the misindexing. *)
let pairs =
  [
    (0x3FC0_0000, 0x3F80_0000);  (* 1.5 + 1.0 *)
    (0x4040_0000, 0x3FC0_0000);  (* 3.0 + 1.5 *)
    (0x40A0_0000, 0x4000_0000);  (* 5.0 + 2.0 *)
  ]

let stimulus cycle =
  let base = [ ("reset", Bug.lo); ("in_valid", Bug.lo) ] in
  let b32 = Bits.of_int ~width:32 in
  if cycle = 0 then set "reset" Bug.hi base
  else if (cycle - 2) mod 4 = 0 && (cycle - 2) / 4 < List.length pairs && cycle >= 2
  then (
    let a, b = List.nth pairs ((cycle - 2) / 4) in
    base |> set "in_valid" Bug.hi |> set "a" (b32 a) |> set "b" (b32 b))
  else base

let bug : Bug.t =
  {
    id = "D7";
    subclass = Fpga_study.Taxonomy.Misindexing;
    application = "FADD";
    platform = Fpga_resources.Platforms.Generic;
    symptoms = [ Fpga_study.Taxonomy.Incorrect_output ];
    helpful_tools = [ Bug.SC; Bug.Dep ];
    description =
      "the fraction is extracted as bits [23:0] instead of [22:0], \
       folding the exponent LSB into the mantissa";
    top = "fadd";
    buggy_src = source ~buggy:true;
    fixed_src = source ~buggy:false;
    stimulus;
    max_cycles = 24;
    sample =
      (fun sim ->
        if Simulator.read_int sim "out_valid" = 1 then
          Some [ ("sum", Bits.to_int_trunc (Simulator.read sim "sum")) ]
        else None);
    done_when = None;
    ext_monitor = None;
    loss_spec = None;
    loss_root = None;
    ground_truth = [];
    manual_fsms = [];
    stat_events = [ ("sums_out", "out_valid") ];
    dep_target = Some "sum";
    target_mhz = 200;
  }
