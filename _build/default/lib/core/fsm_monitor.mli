(** FSM Monitor (section 4.2): static FSM detection plus a runtime
    state-transition trace through SignalCat. *)

type t = { module_name : string; fsms : Fpga_analysis.Fsm_detect.fsm list }

type transition = {
  cycle : int;
  state_var : string;
  from_value : int;
  to_value : int;
  from_name : string;  (** symbolic, via localparams *)
  to_name : string;
}

val plan :
  ?extra:string list -> ?exclude:string list -> Fpga_hdl.Ast.module_def -> t
(** Detect the module's FSMs. [extra] forces registers the heuristics
    missed in; [exclude] filters false or irrelevant ones out — the
    patching facility section 4.2 describes. *)

val instrument : t -> Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.module_def
(** One shadow register per FSM plus a $display on every transition;
    the displays then follow the SignalCat path in either execution
    mode. *)

val transitions : t -> (int * string) list -> transition list
(** Decode the transition trace from a unified log. *)

val final_states : t -> (int * string) list -> (string * string) list
(** The last observed state of every monitored FSM — the "where is each
    state machine stuck" question of the grayscale case study. *)

val transition_to_string : transition -> string
