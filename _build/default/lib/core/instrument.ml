(* Shared helpers for the instrumentation passes: clock discovery,
   collision-free shadow names, reset detection, and log-tag parsing. *)

module Ast = Fpga_hdl.Ast

exception Instrument_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Instrument_error s)) fmt

(* The clock driving the monitors: the clock of the first sequential
   block, falling back to a port named clk/clock. *)
let find_clock (m : Ast.module_def) : string =
  let from_always =
    List.find_map
      (fun (a : Ast.always) ->
        match a.Ast.sens with
        | Ast.Posedge c | Ast.Negedge c -> Some c
        | Ast.Star -> None)
      m.Ast.always_blocks
  in
  match from_always with
  | Some c -> c
  | None -> (
      match
        List.find_opt
          (fun (p : Ast.port) ->
            p.Ast.dir = Ast.Input
            && (p.Ast.port_name = "clk" || p.Ast.port_name = "clock"))
          m.Ast.ports
      with
      | Some p -> p.Ast.port_name
      | None -> err "module %s has no clock" m.Ast.mod_name)

(* Active-high reset input, when the design has one. *)
let find_reset (m : Ast.module_def) : string option =
  List.find_map
    (fun (p : Ast.port) ->
      if
        p.Ast.dir = Ast.Input
        && List.mem p.Ast.port_name [ "reset"; "rst"; "rst_n"; "resetn" ]
      then Some p.Ast.port_name
      else None)
    m.Ast.ports

let name_taken (m : Ast.module_def) name =
  Ast.find_decl m name <> None || Ast.find_port m name <> None

let check_fresh m name =
  if name_taken m name then
    err "instrumentation name %s collides with a design signal" name

(* Sanitize a signal name for embedding in a shadow-variable name. *)
let sanitize name =
  String.map (fun c -> if c = '/' || c = '.' then '_' else c) name

(* Append declarations and an always block to a module. *)
let add_logic (m : Ast.module_def) ~decls ~always : Ast.module_def =
  List.iter (fun (d : Ast.decl) -> check_fresh m d.Ast.name) decls;
  {
    m with
    Ast.decls = m.Ast.decls @ decls;
    always_blocks = m.Ast.always_blocks @ always;
  }

(* Parse "[TAG] payload" display lines emitted by the monitors. *)
let tagged_lines tag (log : (int * string) list) : (int * string) list =
  let prefix = Printf.sprintf "[%s] " tag in
  let plen = String.length prefix in
  List.filter_map
    (fun (cycle, text) ->
      if String.length text >= plen && String.sub text 0 plen = prefix then
        Some (cycle, String.sub text plen (String.length text - plen))
      else None)
    log

(* Lines of Verilog inserted by an instrumentation pass. *)
let added_loc ~(before : Ast.module_def) ~(after : Ast.module_def) : int =
  Fpga_hdl.Pp_verilog.module_loc after - Fpga_hdl.Pp_verilog.module_loc before
