lib/core/instrument.mli: Fpga_hdl
