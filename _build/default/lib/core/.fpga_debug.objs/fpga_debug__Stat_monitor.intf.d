lib/core/stat_monitor.mli: Fpga_hdl Fpga_sim
