lib/core/losscheck.ml: Fpga_analysis Fpga_bits Fpga_hdl Fpga_sim Hashtbl Instrument List Option Printf String
