lib/core/signalcat.ml: Array Fpga_analysis Fpga_bits Fpga_hdl Fpga_sim Instrument List Option
