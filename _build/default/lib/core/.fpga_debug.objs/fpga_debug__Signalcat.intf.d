lib/core/signalcat.mli: Fpga_hdl Fpga_sim
