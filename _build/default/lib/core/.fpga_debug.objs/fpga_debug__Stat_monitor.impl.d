lib/core/stat_monitor.ml: Fpga_bits Fpga_hdl Fpga_sim Instrument List Printf String
