lib/core/dep_monitor.mli: Fpga_analysis Fpga_hdl
