lib/core/fsm_monitor.mli: Fpga_analysis Fpga_hdl
