lib/core/fsm_monitor.ml: Fpga_analysis Fpga_bits Fpga_hdl Instrument List Printf String
