lib/core/dep_monitor.ml: Fpga_analysis Fpga_hdl Instrument List Printf String
