lib/core/instrument.ml: Fpga_hdl List Printf String
