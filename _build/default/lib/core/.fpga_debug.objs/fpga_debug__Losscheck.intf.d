lib/core/losscheck.mli: Fpga_hdl Fpga_sim
