(** Dependency Monitor (section 4.3): provenance tracking.

    The static half computes the registers a target variable depends on
    within the previous k cycles (control and data, through IP models
    and one level of user-module instances); the dynamic half logs every
    update to a register in the chain, so an incorrect output can be
    backtraced to where the wrong value entered. *)

type plan = {
  module_name : string;
  target : string;
  cycles : int;
  chain : string list;  (** the dependency chain, including the target *)
  monitored : string list;  (** chain members instrumented for logging *)
}

type update = { cycle : int; signal : string; value : int }

val child_instance_edges :
  Fpga_hdl.Ast.design option -> Fpga_hdl.Ast.instance -> Fpga_analysis.Deps.edge list
(** Edges induced by a user-module instance, derived from the child
    module's own dependency graph (one level of hierarchy). *)

val analyze :
  ?design:Fpga_hdl.Ast.design ->
  ?data_only:bool ->
  ?slice_precise:bool ->
  target:string ->
  cycles:int ->
  Fpga_hdl.Ast.module_def ->
  plan
(** Compute the k-cycle backward closure of [target]. [design] lets the
    analysis see through user-module instances; [data_only] drops
    control dependencies; [slice_precise] splits partially-assigned
    variables so independent halves stay apart (both are section 4.3
    configuration switches). *)

val instrument : plan -> Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.module_def
(** One shadow register per monitored signal plus a $display whenever
    it changes. *)

val updates : plan -> (int * string) list -> update list
(** The update trace decoded from a unified log. *)

val backtrace : plan -> (int * string) list -> at_cycle:int -> update list
(** Updates to chain members in the [cycles] cycles leading up to
    [at_cycle], newest first — what a developer inspects to find where
    a wrong value entered the chain. *)

val update_to_string : update -> string
