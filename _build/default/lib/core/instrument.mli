(** Shared helpers for the instrumentation passes: clock discovery,
    collision-free shadow names, reset detection, and log-tag parsing. *)

exception Instrument_error of string

val err : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Instrument_error} with a formatted message. *)

val find_clock : Fpga_hdl.Ast.module_def -> string
(** The clock driving the monitors: the clock of the first sequential
    block, falling back to an input named [clk]/[clock]. *)

val find_reset : Fpga_hdl.Ast.module_def -> string option
(** An input named [reset]/[rst]/[rst_n]/[resetn], when present. *)

val name_taken : Fpga_hdl.Ast.module_def -> string -> bool
val check_fresh : Fpga_hdl.Ast.module_def -> string -> unit

val sanitize : string -> string
(** Make a signal name safe for embedding in a shadow-variable name. *)

val add_logic :
  Fpga_hdl.Ast.module_def ->
  decls:Fpga_hdl.Ast.decl list ->
  always:Fpga_hdl.Ast.always list ->
  Fpga_hdl.Ast.module_def
(** Append declarations and always blocks, checking for collisions. *)

val tagged_lines : string -> (int * string) list -> (int * string) list
(** Extract the payloads of ["[TAG] payload"] lines from a log. *)

val added_loc :
  before:Fpga_hdl.Ast.module_def -> after:Fpga_hdl.Ast.module_def -> int
(** Lines of Verilog an instrumentation pass inserted. *)
