(** SignalCat (section 4.1): unified logging for simulation and
    on-FPGA execution.

    A design annotated with $display statements runs in two modes:

    - {!Simulation}: the statements execute directly in the simulator,
      which prints and logs them — the traditional flow.
    - {!On_fpga}: the static pass strips every $display and synthesizes
      recording logic in its place: one wide ring buffer (the model of
      a SignalTap/ILA recording IP) stores, per cycle in which at least
      one statement's path constraint holds, a cycle counter, one
      constraint bit per statement, and every statement's argument
      values. {!reconstruct} then reads the buffer back (the
      JTAG-readback analog) and rebuilds exactly the log the simulation
      mode would have printed, up to the buffer capacity.

    The equivalence of the two logs is the tool's headline property and
    is verified by the test suite, including under random stimulus.

    The recording logic is pipelined like vendor trace IPs (samples are
    staged for one cycle before committing), keeping the capture logic
    off the design's critical path; an entry still in the pipeline when
    the run ends is recovered by {!reconstruct}. *)

type mode = Simulation | On_fpga

(** One $display found in a sequential block. *)
type statement_info = {
  stmt_id : int;
  fmt : string;
  args : Fpga_hdl.Ast.expr list;
  arg_widths : int list;
  cond : Fpga_hdl.Ast.expr;  (** path constraint *)
}

(** An optional recording window (the start/stop events and pre/post
    capture intervals of section 4.1): recording arms when [start]
    first holds and freezes [post] recorded entries after [stop] holds,
    so the ring buffer retains the interval around the event. Without a
    trigger, the recorder runs from cycle 0. *)
type trigger = {
  start : Fpga_hdl.Ast.expr option;
  stop : Fpga_hdl.Ast.expr option;
  post : int;
}

val no_trigger : trigger

(** The static recording plan for a module. *)
type plan = {
  module_name : string;
  statements : statement_info list;
  buffer_depth : int;
  entry_width : int;  (** 32-bit cycle + constraint bits + argument bits *)
  trigger : trigger;
}

val analyze :
  ?buffer_depth:int -> ?trigger:trigger -> Fpga_hdl.Ast.module_def -> plan
(** Collect the module's $display statements and size the recording
    buffer (default depth 8192, as in the paper's testbed; must be a
    power of two). *)

val instrument : plan -> Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.module_def
(** Strip the displays and splice in the recording logic. Identity when
    the plan has no statements. *)

val strip_displays_module : Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.module_def
(** The design with every $display removed (for accounting the gross
    size of the generated recording logic). *)

val apply :
  ?buffer_depth:int ->
  ?trigger:trigger ->
  mode ->
  Fpga_hdl.Ast.module_def ->
  Fpga_hdl.Ast.module_def * plan
(** The single entry point the other tools use: unchanged design in
    [Simulation] mode, instrumented design in [On_fpga] mode. *)

val reconstruct : plan -> Fpga_sim.Simulator.t -> (int * string) list
(** Rebuild the unified log from the recording buffer after an
    execution: (cycle, rendered text), oldest first; when the buffer
    overflowed, the most recent entries are kept (ring semantics). *)

val run_and_log :
  ?buffer_depth:int ->
  ?trigger:trigger ->
  ?max_cycles:int ->
  mode:mode ->
  top:string ->
  Fpga_hdl.Ast.design ->
  Fpga_sim.Testbench.stimulus ->
  (int * string) list
(** Run a design under a stimulus in either mode and return the unified
    log — "a single interface for tracing state in a hardware design". *)

val generated_loc : plan -> Fpga_hdl.Ast.module_def -> int
(** Lines of Verilog the instrumentation would insert. *)
