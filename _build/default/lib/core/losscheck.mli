(** LossCheck (section 4.5): precise localization of data loss.

    Given a Source, its valid signal, and a Sink, the static pass
    builds the table of propagation relations [X ~>_sigma Y] (through
    wires, IP models, and memories), finds the registers on a
    propagation sequence from Source to Sink, and instruments the
    design with shadow variables per such register R:

    - A(R): R was assigned this cycle,
    - V(R): R was assigned valid tracked data,
    - P(R): R's value propagated onward,
    - N(R): R holds valid data that has not yet propagated,

    following Equations (1) and (2) of the paper:

    {v
    N(R)_k    = V(R)_(k-1) \/ (N(R)_(k-1) /\ ~P(R)_(k-1))
    Loss(R)_k = A(R)_k /\ ~P(R)_k /\ N(R)_k
    v}

    Memories get one needs-propagation bit per word, so a wrapped
    buffer-overflow write landing on an unread word raises an alarm
    while normal FIFO traffic does not; a write into a
    non-power-of-two memory with an out-of-range index counts as not
    propagated (the dropped-write semantics of section 3.2.1).

    False positives from intentional drops are filtered by running the
    instrumented design on passing ("ground truth") test programs and
    suppressing every register that alarms there (section 4.5.3). The
    same mechanism causes the paper's (and this testbed's) D11 false
    negative. *)

type spec = {
  source : string;  (** the register/input whose data is tracked *)
  valid : Fpga_hdl.Ast.expr;  (** the source's valid signal *)
  sink : string;  (** where the data should arrive *)
}

type relation = { src : string; dst : string; cond : Fpga_hdl.Ast.expr }

type plan = {
  module_name : string;
  spec : spec;
  relations : relation list;  (** effective relations, wires expanded *)
  scalar_checks : string list;  (** registers instrumented with A/V/P/N *)
  memory_checks : string list;  (** memories instrumented per-word *)
}

val data_reads : Fpga_hdl.Ast.expr -> string list
(** Like {!Fpga_hdl.Ast.expr_reads} but index expressions are routing,
    not data, and are skipped. *)

val effective_relations :
  ?design:Fpga_hdl.Ast.design -> Fpga_hdl.Ast.module_def -> spec -> relation list
(** The propagation relations with combinational wires expanded down to
    storage nodes (registers, memories, inputs, IP outputs, the sink).
    With [design], user-module instances contribute conservative
    input-to-output pass-through relations. *)

val analyze : ?design:Fpga_hdl.Ast.design -> spec -> Fpga_hdl.Ast.module_def -> plan

val instrument : plan -> Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.module_def
(** Splice in the shadow variables, the per-word bits, the loss checks,
    and the alarm $display statements. *)

val alarms : (int * string) list -> (int * string) list
(** The (cycle, register) alarms found in a unified log. *)

val alarm_registers : (int * string) list -> string list

type result = {
  reported : string list;  (** alarming registers after filtering *)
  suppressed : string list;  (** filtered as intentional drops *)
  raw_alarms : (int * string) list;
  generated_loc : int;  (** lines of checking logic inserted *)
}

val localize :
  ?ground_truth:(Fpga_sim.Testbench.stimulus * int) list ->
  ?max_cycles:int ->
  top:string ->
  spec:spec ->
  stimulus:Fpga_sim.Testbench.stimulus ->
  Fpga_hdl.Ast.design ->
  result
(** The full workflow: instrument, run the ground-truth stimuli to
    learn intentional drops, run the failing stimulus, and report the
    difference. *)
