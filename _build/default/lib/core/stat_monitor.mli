(** Statistics Monitor (section 4.4): counters for developer-specified
    single-bit events, read back after execution. Unexpected
    differences between related counters — valid inputs vs. valid
    outputs — indicate data loss without recording anything
    cycle-by-cycle. *)

type event = { event_name : string; trigger : Fpga_hdl.Ast.expr }

type t = { module_name : string; events : event list }

val counter_name : event -> string
(** The name of the 32-bit counter register backing an event. *)

val plan : Fpga_hdl.Ast.module_def -> event list -> t
(** Validate the events against the module's signals. *)

val instrument :
  ?log_changes:bool -> t -> Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.module_def
(** Add one 32-bit counter per event; with [log_changes], also emit a
    $display (hence a SignalCat record) each time a counter advances. *)

val counts : t -> Fpga_sim.Simulator.t -> (string * int) list
(** Counter read-back after an execution. *)

type anomaly = {
  producer : string;
  consumer : string;
  produced : int;
  consumed : int;
}

val check_balance :
  (string * int) list -> producer:string -> consumer:string -> anomaly option
(** The statistical data-loss check: producer events should equal
    consumer events. *)

val anomaly_to_string : anomaly -> string

(** {1 Per-component localization (section 4.4)}

    Per-stage counters localize a statistical anomaly to a small region
    of the circuit: walk the pipeline's counters in order and report the
    first boundary where events disappear. *)

type stage_anomaly = {
  upstream : string;
  downstream : string;
  upstream_count : int;
  downstream_count : int;
}

val localize_stage :
  (string * int) list -> stages:string list -> stage_anomaly option

val stage_anomaly_to_string : stage_anomaly -> string

val valid_signal_events : Fpga_hdl.Ast.module_def -> event list
(** One event per valid-like 1-bit signal (ports first, then registers,
    in declaration order) — instant per-stage counters for a handshaked
    pipeline. *)
