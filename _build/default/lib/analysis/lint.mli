(** A small structural linter over the Verilog subset.

    Where the lib/core tools localize bugs after their symptoms appear,
    the linter flags the statically-visible shapes of the study's
    mechanical subclasses before synthesis:

    - [unused]: declared but never read or written;
    - [undriven]: read but never driven (the failure-to-initialize
      flavor of section 3.2.5);
    - [multiple-drivers]: a register assigned from several always
      blocks;
    - [truncation]: a right-hand side statically wider than its target
      (section 3.2.2);
    - [overflow-prone]: a non-power-of-two structure indexed by an
      expression wide enough to exceed it — such accesses are silently
      dropped (section 3.2.1);
    - [incomplete-case]: a case statement covering neither every value
      nor a default (the incomplete-implementation shape, 3.4.3). *)

type severity = Warning | Error

type finding = {
  severity : severity;
  rule : string;
  signal : string;
  message : string;
}

val finding_to_string : finding -> string

val rules : (string * (Fpga_hdl.Ast.module_def -> finding list)) list

val check : ?only:string list -> Fpga_hdl.Ast.module_def -> finding list
(** Run all rules (or the named subset) over one module. *)

val check_design :
  ?only:string list -> Fpga_hdl.Ast.design -> (string * finding list) list
