(** Register dependency analysis (Dependency Monitor, section 4.3).

    An edge [src -> dst] means the value of [src] can influence [dst].
    Sequential edges cross a clock cycle; combinational edges do not.
    Data edges come from the right-hand side of an assignment, control
    edges from its path constraint. *)

type edge_kind = Data | Control
type timing = Sequential | Combinational

type edge = {
  src : string;
  dst : string;
  kind : edge_kind;
  timing : timing;
  cond : Fpga_hdl.Ast.expr;  (** path constraint of the assignment *)
}

type graph = { edges : edge list; module_name : string }

val of_module : ?ip_edges:edge list -> Fpga_hdl.Ast.module_def -> graph
(** Dependency graph of a module's always blocks and continuous
    assigns; [ip_edges] supplies the edges induced by IP instances
    (see {!Ip_models.dependency_edges}). *)

val incoming : graph -> string -> edge list
val outgoing : graph -> string -> edge list

val backward_closure :
  ?data_only:bool -> graph -> target:string -> cycles:int -> string list
(** Registers that may influence [target] within [cycles] clock cycles,
    following combinational edges freely; includes [target]. With
    [data_only], control dependencies are ignored (section 4.3's
    configuration switch). *)

val forward_closure : ?data_only:bool -> graph -> source:string -> string list
(** Signals reachable forward from [source]; includes [source]. *)

val control_cycles : graph -> string list list
(** Circular control dependencies among conditionally-assigned
    registers — the shape of hardware deadlocks (section 3.3.1). Each
    cycle is returned once, rotated so its smallest member is first. *)

(** {1 Slice-precise dependencies (section 4.3)}

    Partial assignments are logically split: nodes are bit slices, so a
    chain through [packed[7:0]] does not drag in the drivers of
    [packed[15:8]]. *)

type slice = { s_name : string; s_hi : int; s_lo : int }

type slice_edge = {
  se_src : slice;
  se_dst : slice;
  se_kind : edge_kind;
  se_timing : timing;
}

val slice_to_string : slice -> string
val overlaps : slice -> slice -> bool
val full_slice : Fpga_hdl.Ast.module_def -> string -> slice
val slice_edges : Fpga_hdl.Ast.module_def -> slice_edge list

val backward_slice_closure :
  ?data_only:bool ->
  Fpga_hdl.Ast.module_def ->
  target:slice ->
  cycles:int ->
  slice list
(** Slices that may influence [target] within [cycles] clock cycles; an
    edge applies when its destination overlaps the queried slice. *)

val backward_closure_sliced :
  ?data_only:bool ->
  Fpga_hdl.Ast.module_def ->
  target:string ->
  cycles:int ->
  string list
(** The signal names appearing in the slice-precise chain of a whole
    signal - strictly no larger than {!backward_closure}'s answer. *)
