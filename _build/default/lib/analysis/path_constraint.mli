(** Path-constraint computation: for every leaf statement of an always
    block, the condition under which control reaches it.

    SignalCat uses path constraints to trigger recording exactly when
    an instrumented $display would have fired (section 4.1 of the
    paper); LossCheck uses them as the sigma of each propagation
    relation (section 4.5.1). *)

type 'a annotated = { node : 'a; cond : Fpga_hdl.Ast.expr }

val annotate_stmts :
  Fpga_hdl.Ast.expr ->
  Fpga_hdl.Ast.stmt list ->
  Fpga_hdl.Ast.stmt annotated list
(** [annotate_stmts cond stmts] flattens [stmts] to its leaf statements
    (assignments, displays, finish), each annotated with the conjunction
    of [cond] and the conditions guarding it. Case items contribute
    equality disjunctions over their labels; a default arm contributes
    the negation of every label. *)

val of_always : Fpga_hdl.Ast.always -> Fpga_hdl.Ast.stmt annotated list
(** Leaf statements of a whole always block, starting from [true]. *)

val assignments_of_always :
  Fpga_hdl.Ast.always ->
  (Fpga_hdl.Ast.lvalue * Fpga_hdl.Ast.expr * Fpga_hdl.Ast.expr) list
(** The block's assignments as (target, rhs, path constraint). *)

val displays_of_always :
  Fpga_hdl.Ast.always -> (string * Fpga_hdl.Ast.expr list * Fpga_hdl.Ast.expr) list
(** The block's $display statements as (format, args, path constraint)
    — SignalCat's static input. *)
