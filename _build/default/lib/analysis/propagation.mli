(** Propagation relations (section 4.5.1).

    [X ~>_sigma Y] means the data value stored in X propagates into Y
    on the next cycle when sigma holds; the table of relations drives
    LossCheck's shadow-variable instrumentation. *)

type relation = {
  src : string;
  dst : string;
  cond : Fpga_hdl.Ast.expr;  (** sigma *)
  line_hint : string;  (** human-readable origin, for reports *)
}

type table = relation list

val relation_to_string : relation -> string

val of_assignment :
  Fpga_hdl.Ast.lvalue * Fpga_hdl.Ast.expr * Fpga_hdl.Ast.expr -> relation list
(** Relations of one (target, rhs, path-constraint) assignment: every
    register read on the right-hand side propagates into every written
    base when the constraint holds. *)

val of_module :
  ?ip:(Fpga_hdl.Ast.instance -> relation list) ->
  Fpga_hdl.Ast.module_def ->
  table
(** The module's full relation table. [ip] supplies relations for IP
    instances; {!Ip_models.table_of_module} composes the builtin
    models. *)

val sequence_registers : table -> source:string -> sink:string -> string list
(** Registers on some propagation sequence from [source] to [sink]
    (reachable from the source and reaching the sink), sorted. *)

val restrict : table -> string list -> table
val incoming : table -> string -> relation list
val outgoing : table -> string -> relation list
