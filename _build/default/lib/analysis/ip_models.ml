(* Dependency and propagation models for closed-source IP blocks
   (section 5). The paper implements models for the three IPs used by
   its testbed - altsyncram, scfifo, and dcfifo - and so do we.

   A model maps the instance's port connections to the propagation
   relations and dependency edges the IP induces between the nets
   attached to it. Only plain-identifier connections contribute ends of
   relations (expression actuals contribute their read sets). *)

module Ast = Fpga_hdl.Ast

exception No_model of string

let supported = [ "scfifo"; "dcfifo"; "altsyncram" ]
let has_model target = List.mem target supported

let conn_expr (i : Ast.instance) formal : Ast.expr option =
  List.find_map
    (fun (c : Ast.connection) ->
      if c.Ast.formal = formal then Some c.Ast.actual else None)
    i.Ast.conns

let conn_ident i formal =
  match conn_expr i formal with Some (Ast.Ident n) -> Some n | _ -> None

let conn_reads i formal =
  match conn_expr i formal with Some e -> Ast.expr_reads e | None -> []

(* data-in ~> data-out under (write enable), plus out ~> downstream
   handled by the enclosing module's own relations. The conditions keep
   the IP's gating signals so LossCheck's shadow logic observes
   backpressure (full) and validity (wrreq). *)
let fifo_relations i ~wr_req ~rd_req ~full_opt ~data ~q : Propagation.relation list =
  let open Propagation in
  let hint = Printf.sprintf "IP model %s %s" i.Ast.target i.Ast.inst_name in
  let wr_cond =
    let base =
      match conn_expr i wr_req with Some e -> e | None -> Ast.true_expr
    in
    match full_opt with
    | Some full_formal -> (
        match conn_ident i full_formal with
        | Some full -> Ast.and_expr base (Ast.not_expr (Ast.Ident full))
        | None -> base)
    | None -> base
  in
  let rd_cond =
    match conn_expr i rd_req with Some e -> e | None -> Ast.true_expr
  in
  match (conn_reads i data, conn_ident i q) with
  | srcs, Some qn ->
      List.map (fun src -> { src; dst = qn; cond = wr_cond; line_hint = hint }) srcs
      @ [ { src = qn; dst = qn; cond = rd_cond; line_hint = hint } ]
  | _, None -> []

let ram_relations i : Propagation.relation list =
  let open Propagation in
  let hint = Printf.sprintf "IP model altsyncram %s" i.Ast.inst_name in
  let wr_cond =
    match conn_expr i "wren_a" with Some e -> e | None -> Ast.true_expr
  in
  match (conn_reads i "data_a", conn_ident i "q_a") with
  | srcs, Some qn ->
      List.map (fun src -> { src; dst = qn; cond = wr_cond; line_hint = hint }) srcs
  | _, None -> []

let propagation_relations (i : Ast.instance) : Propagation.relation list =
  match i.Ast.target with
  | "scfifo" ->
      fifo_relations i ~wr_req:"wrreq" ~rd_req:"rdreq" ~full_opt:(Some "full")
        ~data:"data" ~q:"q"
  | "dcfifo" ->
      fifo_relations i ~wr_req:"wrreq" ~rd_req:"rdreq"
        ~full_opt:(Some "wrfull") ~data:"data" ~q:"q"
  | "altsyncram" -> ram_relations i
  | other ->
      if Ast.is_builtin_ip other then []
      else raise (No_model other)

(* Propagation table of a module including its IP instances' models. *)
let table_of_module (m : Ast.module_def) : Propagation.table =
  Propagation.of_module ~ip:propagation_relations m

(* Dependency edges for Dependency Monitor: outputs depend on inputs.
   Unknown non-builtin targets contribute nothing here; Dep_monitor
   expands user-module instances from the design instead. *)
let dependency_edges (i : Ast.instance) : Deps.edge list =
  let rels =
    match propagation_relations i with
    | rels -> rels
    | exception No_model _ -> []
  in
  List.map
    (fun (r : Propagation.relation) ->
      {
        Deps.src = r.Propagation.src;
        dst = r.Propagation.dst;
        kind = Deps.Data;
        timing = Deps.Sequential;
        cond = r.Propagation.cond;
      })
    rels
