lib/analysis/width.mli: Fpga_hdl
