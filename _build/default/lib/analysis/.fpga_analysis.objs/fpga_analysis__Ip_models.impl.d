lib/analysis/ip_models.ml: Deps Fpga_hdl List Printf Propagation
