lib/analysis/width.ml: Fpga_bits Fpga_hdl List
