lib/analysis/ip_models.mli: Deps Fpga_hdl Propagation
