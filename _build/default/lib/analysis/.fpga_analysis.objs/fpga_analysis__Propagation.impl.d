lib/analysis/propagation.ml: Fpga_hdl Hashtbl List Path_constraint Printf String
