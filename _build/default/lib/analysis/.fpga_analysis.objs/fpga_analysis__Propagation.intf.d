lib/analysis/propagation.mli: Fpga_hdl
