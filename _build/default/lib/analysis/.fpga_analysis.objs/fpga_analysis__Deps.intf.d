lib/analysis/deps.mli: Fpga_hdl
