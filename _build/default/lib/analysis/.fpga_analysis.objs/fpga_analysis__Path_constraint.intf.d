lib/analysis/path_constraint.mli: Fpga_hdl
