lib/analysis/path_constraint.ml: Fpga_hdl List
