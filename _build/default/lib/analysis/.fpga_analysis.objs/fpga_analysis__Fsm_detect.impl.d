lib/analysis/fsm_detect.ml: Fpga_bits Fpga_hdl Int List Option Path_constraint String
