lib/analysis/lint.mli: Fpga_hdl
