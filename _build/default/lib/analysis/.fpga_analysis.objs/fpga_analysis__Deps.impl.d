lib/analysis/deps.ml: Fpga_hdl Hashtbl List Option Path_constraint Printf String
