lib/analysis/fsm_detect.mli: Fpga_bits Fpga_hdl
