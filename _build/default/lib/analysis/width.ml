(* Static width inference for expressions inside a module, mirroring the
   simulator's dynamic width rules. Used by SignalCat to size recording
   buffer fields and by the resource model to cost operators. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits

exception Unknown_width of string

let signal_width (m : Ast.module_def) name =
  match Ast.signal_width m name with
  | Some w -> Some w
  | None -> (
      match List.assoc_opt name m.Ast.localparams with
      | Some b -> Some (Bits.width b)
      | None ->
          if List.mem_assoc name m.Ast.params then Some 32 else None)

let memory_word_width (m : Ast.module_def) name =
  match Ast.find_decl m name with
  | Some { Ast.depth = Some _; width; _ } -> Some width
  | _ -> None

let rec of_expr (m : Ast.module_def) (e : Ast.expr) : int =
  match e with
  | Ast.Const b -> Bits.width b
  | Ast.Ident n -> (
      match signal_width m n with
      | Some w -> w
      | None -> raise (Unknown_width n))
  | Ast.Index (n, _) -> (
      match memory_word_width m n with Some w -> w | None -> 1)
  | Ast.Range (_, hi, lo) -> hi - lo + 1
  | Ast.Unop ((Ast.Bnot | Ast.Neg), a) -> of_expr m a
  | Ast.Unop ((Ast.Lnot | Ast.Rand | Ast.Ror | Ast.Rxor), _) -> 1
  | Ast.Binop
      ( ( Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod | Ast.Band | Ast.Bor
        | Ast.Bxor ),
        a,
        b ) ->
      max (of_expr m a) (of_expr m b)
  | Ast.Binop ((Ast.Shl | Ast.Shr | Ast.Ashr), a, _) -> of_expr m a
  | Ast.Binop
      ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Land | Ast.Lor), _, _)
    ->
      1
  | Ast.Cond (_, a, b) -> max (of_expr m a) (of_expr m b)
  | Ast.Concat es -> List.fold_left (fun acc x -> acc + of_expr m x) 0 es
  | Ast.Repeat (n, a) -> n * of_expr m a

let clog2 n =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) ((v + 1) / 2) in
  max 1 (go 0 n)
