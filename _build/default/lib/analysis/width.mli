(** Static width inference for expressions inside a module, mirroring
    the simulator's dynamic width rules. SignalCat uses it to size
    recording-buffer fields; the resource model uses it to cost
    operators. *)

exception Unknown_width of string

val signal_width : Fpga_hdl.Ast.module_def -> string -> int option
(** Declared width of a signal, port, localparam (its literal width),
    or parameter (32). *)

val memory_word_width : Fpga_hdl.Ast.module_def -> string -> int option

val of_expr : Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.expr -> int
(** Self-determined width of an expression. Raises {!Unknown_width} on
    an unbound identifier. *)

val clog2 : int -> int
(** Ceiling log2, at least 1 — pointer width for an n-entry buffer. *)
