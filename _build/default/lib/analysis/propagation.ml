(* Propagation relations (section 4.5.1): X ~>_sigma Y means the value
   stored in X propagates to Y on the next cycle when sigma holds. The
   table drives LossCheck's shadow-variable instrumentation. *)

module Ast = Fpga_hdl.Ast

type relation = {
  src : string;
  dst : string;
  cond : Ast.expr;  (* sigma *)
  line_hint : string;  (* human-readable origin, for reports *)
}

type table = relation list

let relation_to_string r =
  Printf.sprintf "%s ~>[%s] %s" r.src
    (Fpga_hdl.Pp_verilog.expr_str r.cond)
    r.dst

(* Data propagation relations of a sequential assignment: every register
   read on the right-hand side propagates into every written base when
   the path constraint holds. A [Lindex] write on a memory adds the
   index registers as routing (control-like) inputs, but data relations
   come only from the RHS. *)
let of_assignment (l, rhs, cond) : relation list =
  let dsts = Ast.dedup (Ast.lvalue_bases l) in
  let srcs = Ast.dedup (Ast.expr_reads rhs) in
  let hint =
    Printf.sprintf "%s <= %s"
      (Fpga_hdl.Pp_verilog.lvalue_str l)
      (Fpga_hdl.Pp_verilog.expr_str rhs)
  in
  List.concat_map
    (fun dst ->
      List.map (fun src -> { src; dst; cond; line_hint = hint }) srcs)
    dsts

(* [ip] supplies the relations contributed by IP instances; see
   Ip_models.table_of_module for the composed entry point. *)
let of_module ?(ip = fun (_ : Ast.instance) -> ([] : relation list))
    (m : Ast.module_def) : table =
  let seq =
    List.concat_map
      (fun (a : Ast.always) ->
        match a.Ast.sens with
        | Ast.Posedge _ | Ast.Negedge _ ->
            List.concat_map of_assignment
              (Path_constraint.assignments_of_always a)
        | Ast.Star -> [])
      m.Ast.always_blocks
  in
  (* Continuous assigns and combinational blocks move data within the
     same cycle; LossCheck folds them into the relation graph as
     unconditioned transfers, since the data is never buffered there. *)
  let comb_assign =
    List.concat_map
      (fun (l, e) -> of_assignment (l, e, Ast.true_expr))
      m.Ast.assigns
  in
  let comb_blocks =
    List.concat_map
      (fun (a : Ast.always) ->
        match a.Ast.sens with
        | Ast.Star ->
            List.concat_map of_assignment
              (Path_constraint.assignments_of_always a)
        | Ast.Posedge _ | Ast.Negedge _ -> [])
      m.Ast.always_blocks
  in
  let ip_rels = List.concat_map ip m.Ast.instances in
  seq @ comb_assign @ comb_blocks @ ip_rels

(* Registers on some propagation sequence from [source] to [sink]:
   reachable from the source and reaching the sink. *)
let sequence_registers (table : table) ~source ~sink : string list =
  let fwd = Hashtbl.create 16 and bwd = Hashtbl.create 16 in
  let rec reach seen next n =
    if not (Hashtbl.mem seen n) then (
      Hashtbl.replace seen n ();
      List.iter (reach seen next) (next n))
  in
  reach fwd
    (fun n ->
      List.filter_map (fun r -> if r.src = n then Some r.dst else None) table)
    source;
  reach bwd
    (fun n ->
      List.filter_map (fun r -> if r.dst = n then Some r.src else None) table)
    sink;
  Hashtbl.fold
    (fun n _ acc -> if Hashtbl.mem bwd n then n :: acc else acc)
    fwd []
  |> List.sort String.compare

(* Relations restricted to a register set. *)
let restrict table names =
  List.filter (fun r -> List.mem r.src names && List.mem r.dst names) table

let incoming table dst = List.filter (fun r -> r.dst = dst) table
let outgoing table src = List.filter (fun r -> r.src = src) table
