(** Dependency and propagation models for closed-source IP blocks
    (section 5 of the paper).

    A model maps an instance's port connections to the propagation
    relations and dependency edges the IP induces between the attached
    nets. Models exist for the three IPs the testbed uses — [scfifo],
    [dcfifo], and [altsyncram] — mirroring the paper's artifact. *)

exception No_model of string

val supported : string list
val has_model : string -> bool

val propagation_relations : Fpga_hdl.Ast.instance -> Propagation.relation list
(** The relations of one IP instance; e.g. a FIFO's data input
    propagates to its [q] output when [wrreq && !full]. Raises
    {!No_model} for an unknown non-builtin target. *)

val table_of_module : Fpga_hdl.Ast.module_def -> Propagation.table
(** {!Propagation.of_module} composed with the builtin IP models. *)

val dependency_edges : Fpga_hdl.Ast.instance -> Deps.edge list
(** Dependency-graph edges mirroring {!propagation_relations}; empty
    for unknown targets (Dependency Monitor expands user-module
    instances from the design instead). *)
