(** FSM detection heuristics (section 4.2).

    A register is reported as an FSM state variable when every
    assignment to it is a constant (literal, localparam, or itself), it
    appears in the path constraint of its own assignments, and the
    design never applies arithmetic to it nor selects its bits.

    As in the paper, the heuristics admit false negatives (e.g. a
    byte-phase register advanced with [~] or [+1]); FSM Monitor lets
    the developer patch those in. *)

type fsm = {
  state_var : string;
  width : int;
  states : Fpga_bits.Bits.t list;  (** constant values assigned *)
  state_names : (Fpga_bits.Bits.t * string) list;
      (** value -> localparam name; when several localparams share a
          value, the one sharing a name prefix with the variable wins *)
}

val detect :
  ?require_no_arith:bool ->
  ?require_self_condition:bool ->
  Fpga_hdl.Ast.module_def ->
  fsm list
(** Both heuristic gates default to on; the ablation benchmark switches
    them off individually to measure their contribution. *)

val state_name : fsm -> Fpga_bits.Bits.t -> string
(** The symbolic name of a state value, falling back to the literal. *)

val constant_value :
  Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.expr -> Fpga_bits.Bits.t option
(** [Some v] when the expression is a literal or localparam. *)
