(* FSM detection heuristics (section 4.2).

   A register is reported as an FSM state variable when:
   - every assignment to it has a constant right-hand side (a literal, a
     localparam, or the register itself), and at least one assignment is
     conditional;
   - it appears in the path constraint of at least one of its own
     assignments (state transitions depend on the current state);
   - the design never applies arithmetic to it and never selects
     individual bits of it.

   As in the paper these heuristics can produce false negatives (e.g.
   counters used as implicit states are rejected by the no-arithmetic
   rule); detected FSMs can be patched by the developer via the
   [extra]/[exclude] arguments of FSM Monitor. *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits

type fsm = {
  state_var : string;
  width : int;
  (* constant state values assigned to the variable *)
  states : Bits.t list;
  (* value |-> localparam name, for readable traces *)
  state_names : (Bits.t * string) list;
}

(* Is [e] a constant in module [m] (literal or localparam)? *)
let constant_value (m : Ast.module_def) (e : Ast.expr) : Bits.t option =
  match e with
  | Ast.Const b -> Some b
  | Ast.Ident n -> List.assoc_opt n m.Ast.localparams
  | _ -> None

(* Does [name] appear as an operand of arithmetic, or bit-selected,
   anywhere in the module? *)
let rec arithmetic_use name (e : Ast.expr) : bool =
  let uses_name sub = List.mem name (Ast.expr_reads sub) in
  match e with
  | Ast.Const _ | Ast.Ident _ -> false
  | Ast.Index (n, i) -> n = name || arithmetic_use name i
  | Ast.Range (n, _, _) -> n = name
  | Ast.Unop (Ast.Neg, a) -> uses_name a || arithmetic_use name a
  | Ast.Unop (_, a) -> arithmetic_use name a
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod), a, b) ->
      uses_name a || uses_name b || arithmetic_use name a || arithmetic_use name b
  | Ast.Binop (_, a, b) -> arithmetic_use name a || arithmetic_use name b
  | Ast.Cond (c, a, b) ->
      arithmetic_use name c || arithmetic_use name a || arithmetic_use name b
  | Ast.Concat es -> List.exists (arithmetic_use name) es
  | Ast.Repeat (_, a) -> arithmetic_use name a

let all_exprs_of_module (m : Ast.module_def) : Ast.expr list =
  let rec of_stmt s =
    match s with
    | Ast.Blocking (l, e) | Ast.Nonblocking (l, e) ->
        (e :: Ast.(match l with Lindex (_, i) -> [ i ] | _ -> []))
    | Ast.If (c, t, f) -> (c :: List.concat_map of_stmt t) @ List.concat_map of_stmt f
    | Ast.Case (e, items, default) ->
        (e
        :: List.concat_map
             (fun (it : Ast.case_item) ->
               it.Ast.match_exprs @ List.concat_map of_stmt it.Ast.body)
             items)
        @ (match default with None -> [] | Some b -> List.concat_map of_stmt b)
    | Ast.Display (_, args) -> args
    | Ast.Finish -> []
  in
  List.map snd m.Ast.assigns
  @ List.concat_map (fun (a : Ast.always) -> List.concat_map of_stmt a.Ast.stmts)
      m.Ast.always_blocks

let detect ?(require_no_arith = true) ?(require_self_condition = true)
    (m : Ast.module_def) : fsm list =
  let registers =
    List.filter_map
      (fun (d : Ast.decl) ->
        if d.Ast.kind = Ast.Reg && d.Ast.depth = None then Some d else None)
      m.Ast.decls
  in
  let all_exprs = all_exprs_of_module m in
  let sequential_assignments =
    List.concat_map
      (fun (a : Ast.always) ->
        match a.Ast.sens with
        | Ast.Posedge _ | Ast.Negedge _ ->
            Path_constraint.assignments_of_always a
        | Ast.Star -> [])
      m.Ast.always_blocks
  in
  List.filter_map
    (fun (d : Ast.decl) ->
      let name = d.Ast.name in
      let own_assignments =
        List.filter
          (fun (l, _, _) -> Ast.lvalue_bases l = [ name ])
          sequential_assignments
      in
      if own_assignments = [] then None
      else
        let rhs_constants =
          List.map
            (fun (_, rhs, _) ->
              if rhs = Ast.Ident name then Some None  (* self-assignment *)
              else Option.map Option.some (constant_value m rhs))
            own_assignments
        in
        let all_constant = List.for_all Option.is_some rhs_constants in
        let states =
          List.filter_map (function Some (Some b) -> Some b | _ -> None)
            rhs_constants
          |> List.sort_uniq compare
        in
        let self_in_condition =
          List.exists
            (fun (_, _, cond) -> List.mem name (Ast.expr_reads cond))
            own_assignments
        in
        let no_arith = not (List.exists (arithmetic_use name) all_exprs) in
        let accept =
          all_constant && states <> []
          && ((not require_self_condition) || self_in_condition)
          && ((not require_no_arith) || no_arith)
        in
        if accept then
          (* When several localparams share a value (e.g. RD_IDLE and
             WR_IDLE both 0), prefer the one whose name shares a prefix
             with the state variable. *)
          let prefix_affinity pname =
            let a = String.lowercase_ascii pname
            and b = String.lowercase_ascii name in
            let n = min (String.length a) (String.length b) in
            let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
            go 0
          in
          let state_names =
            List.filter_map
              (fun v ->
                let candidates =
                  List.filter_map
                    (fun (pname, pv) ->
                      if
                        Bits.equal pv v
                        || Bits.equal (Bits.resize pv d.Ast.width) v
                      then Some pname
                      else None)
                    m.Ast.localparams
                in
                match
                  List.sort
                    (fun a b ->
                      Int.compare (prefix_affinity b) (prefix_affinity a))
                    candidates
                with
                | [] -> None
                | best :: _ -> Some (v, best))
              states
          in
          Some { state_var = name; width = d.Ast.width; states; state_names }
        else None)
    registers

let state_name fsm value =
  match List.find_opt (fun (v, _) -> Bits.equal v value) fsm.state_names with
  | Some (_, n) -> n
  | None -> Bits.to_string value
