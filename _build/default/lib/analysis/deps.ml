(* Register dependency analysis (Dependency Monitor, section 4.3).

   An edge [src -> dst] means the value of [src] can influence the value
   of [dst]. Sequential edges cross a clock cycle; combinational edges
   do not. Data edges come from the right-hand side of an assignment,
   control edges from its path constraint. *)

module Ast = Fpga_hdl.Ast

type edge_kind = Data | Control
type timing = Sequential | Combinational

type edge = {
  src : string;
  dst : string;
  kind : edge_kind;
  timing : timing;
  cond : Ast.expr;  (* path constraint of the assignment *)
}

type graph = { edges : edge list; module_name : string }

let edges_of_assignment ~timing (l, rhs, cond) =
  let dsts = Ast.dedup (Ast.lvalue_bases l) in
  let data_srcs = Ast.dedup (Ast.expr_reads rhs @ Ast.lvalue_reads l) in
  let ctrl_srcs = Ast.dedup (Ast.expr_reads cond) in
  List.concat_map
    (fun dst ->
      List.map (fun src -> { src; dst; kind = Data; timing; cond }) data_srcs
      @ List.map (fun src -> { src; dst; kind = Control; timing; cond }) ctrl_srcs)
    dsts

(* IP instances contribute the edges given by their models. *)
let of_module ?(ip_edges = []) (m : Ast.module_def) : graph =
  let seq_edges =
    List.concat_map
      (fun (a : Ast.always) ->
        let timing =
          match a.Ast.sens with
          | Ast.Posedge _ | Ast.Negedge _ -> Sequential
          | Ast.Star -> Combinational
        in
        List.concat_map
          (edges_of_assignment ~timing)
          (Path_constraint.assignments_of_always a))
      m.Ast.always_blocks
  in
  let comb_edges =
    List.concat_map
      (fun (l, e) ->
        edges_of_assignment ~timing:Combinational (l, e, Ast.true_expr))
      m.Ast.assigns
  in
  { edges = seq_edges @ comb_edges @ ip_edges; module_name = m.Ast.mod_name }

let incoming g dst = List.filter (fun e -> e.dst = dst) g.edges
let outgoing g src = List.filter (fun e -> e.src = src) g.edges

(* Registers that may influence [target] within [cycles] clock cycles,
   following combinational edges freely. Returns the dependency set,
   including [target] itself. Control dependencies are included unless
   [data_only]. *)
let backward_closure ?(data_only = false) (g : graph) ~target ~cycles :
    string list =
  let keep e = (not data_only) || e.kind = Data in
  (* state: (signal, remaining cycle budget); visit tracking keeps the
     best (largest) remaining budget seen per signal *)
  let best = Hashtbl.create 16 in
  let rec visit name budget =
    let seen = Hashtbl.find_opt best name in
    let better = match seen with None -> true | Some b -> budget > b in
    if better then (
      Hashtbl.replace best name budget;
      List.iter
        (fun e ->
          if keep e then
            match e.timing with
            | Combinational -> visit e.src budget
            | Sequential -> if budget > 0 then visit e.src (budget - 1))
        (incoming g name))
  in
  visit target cycles;
  Hashtbl.fold (fun name _ acc -> name :: acc) best []
  |> List.sort String.compare

(* Signals reachable forward from [source] (used by LossCheck to find
   propagation sequences). *)
let forward_closure ?(data_only = true) (g : graph) ~source : string list =
  let keep e = (not data_only) || e.kind = Data in
  let seen = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then (
      Hashtbl.replace seen name ();
      List.iter (fun e -> if keep e then visit e.dst) (outgoing g name))
  in
  visit source;
  Hashtbl.fold (fun name _ acc -> name :: acc) seen [] |> List.sort String.compare

(* Detect circular control dependencies among conditionally-assigned
   registers - the shape of hardware deadlocks (section 3.3.1). Returns
   strongly-connected cycles of length >= 2 through sequential control
   edges, as lists of signal names. *)
let control_cycles (g : graph) : string list list =
  let ctrl = List.filter (fun e -> e.kind = Control && e.timing = Sequential) g.edges in
  let nodes = Ast.dedup (List.concat_map (fun e -> [ e.src; e.dst ]) ctrl) in
  let succs n =
    List.filter_map (fun e -> if e.src = n then Some e.dst else None) ctrl
    |> Ast.dedup
  in
  (* simple cycle detection: DFS from each node looking for a path back *)
  let cycles = ref [] in
  let rec dfs start path n =
    List.iter
      (fun next ->
        if next = start && List.length path >= 1 then
          cycles := List.rev (n :: path) :: !cycles
        else if not (List.mem next (n :: path)) && List.length path < 8 then
          dfs start (n :: path) next)
      (succs n)
  in
  List.iter (fun n -> dfs n [] n) nodes;
  (* canonicalize: rotate each cycle so its smallest element is first,
     then dedup *)
  let canon c =
    match c with
    | [] -> []
    | _ ->
        let m = List.fold_left min (List.hd c) c in
        let rec rotate = function
          | x :: rest when x = m -> x :: rest
          | x :: rest -> rotate (rest @ [ x ])
          | [] -> []
        in
        rotate c
  in
  List.sort_uniq compare (List.map canon !cycles)

(* ------------------------------------------------------------------ *)
(* Slice-precise dependencies (section 4.3)                            *)
(* ------------------------------------------------------------------ *)

(* "Dependency Monitor handles partial assignments by logically
   splitting a partially assigned variable to multiple variables":
   nodes here are bit slices, so a chain through packed[7:0] does not
   drag in the drivers of packed[15:8]. *)

type slice = { s_name : string; s_hi : int; s_lo : int }

type slice_edge = {
  se_src : slice;
  se_dst : slice;
  se_kind : edge_kind;
  se_timing : timing;
}

let slice_to_string s = Printf.sprintf "%s[%d:%d]" s.s_name s.s_hi s.s_lo

let overlaps a b =
  a.s_name = b.s_name && a.s_hi >= b.s_lo && a.s_lo <= b.s_hi

let full_slice (m : Ast.module_def) name =
  let w = Option.value (Ast.signal_width m name) ~default:1 in
  { s_name = name; s_hi = w - 1; s_lo = 0 }

(* Slices read by an expression (index expressions count as control and
   are handled by the caller). *)
let rec expr_read_slices (m : Ast.module_def) (e : Ast.expr) : slice list =
  match e with
  | Ast.Const _ -> []
  | Ast.Ident n -> [ full_slice m n ]
  | Ast.Range (n, hi, lo) -> [ { s_name = n; s_hi = hi; s_lo = lo } ]
  | Ast.Index (n, i) -> (
      (* variable bit select reads the whole vector conservatively *)
      full_slice m n
      ::
      (match i with Ast.Const _ -> [] | _ -> expr_read_slices m i))
  | Ast.Unop (_, a) | Ast.Repeat (_, a) -> expr_read_slices m a
  | Ast.Binop (_, a, b) -> expr_read_slices m a @ expr_read_slices m b
  | Ast.Cond (c, a, b) ->
      expr_read_slices m c @ expr_read_slices m a @ expr_read_slices m b
  | Ast.Concat es -> List.concat_map (expr_read_slices m) es

let rec lvalue_write_slices (m : Ast.module_def) (l : Ast.lvalue) : slice list =
  match l with
  | Ast.Lident n -> [ full_slice m n ]
  | Ast.Lrange (n, hi, lo) -> [ { s_name = n; s_hi = hi; s_lo = lo } ]
  | Ast.Lindex (n, _) -> [ full_slice m n ]
  | Ast.Lconcat ls -> List.concat_map (lvalue_write_slices m) ls

let slice_edges (m : Ast.module_def) : slice_edge list =
  let of_assignment ~timing (l, rhs, cond) =
    let dsts = lvalue_write_slices m l in
    let data = expr_read_slices m rhs in
    let ctrl =
      expr_read_slices m cond
      @ (match l with Ast.Lindex (_, i) -> expr_read_slices m i | _ -> [])
    in
    List.concat_map
      (fun se_dst ->
        List.map
          (fun se_src -> { se_src; se_dst; se_kind = Data; se_timing = timing })
          data
        @ List.map
            (fun se_src ->
              { se_src; se_dst; se_kind = Control; se_timing = timing })
            ctrl)
      dsts
  in
  let from_always =
    List.concat_map
      (fun (a : Ast.always) ->
        let timing =
          match a.Ast.sens with Ast.Star -> Combinational | _ -> Sequential
        in
        List.concat_map
          (of_assignment ~timing)
          (Path_constraint.assignments_of_always a))
      m.Ast.always_blocks
  in
  let from_assigns =
    List.concat_map
      (fun (l, e) ->
        of_assignment ~timing:Combinational (l, e, Ast.true_expr))
      m.Ast.assigns
  in
  from_always @ from_assigns

(* Backward closure over slices: an edge applies when its destination
   slice overlaps the queried slice; the source slice is then queried
   whole (conservative within the slice). *)
let backward_slice_closure ?(data_only = false) (m : Ast.module_def)
    ~(target : slice) ~cycles : slice list =
  let edges = slice_edges m in
  let keep (e : slice_edge) = (not data_only) || e.se_kind = Data in
  let best : (slice, int) Hashtbl.t = Hashtbl.create 16 in
  let rec visit q budget =
    let better =
      match Hashtbl.find_opt best q with None -> true | Some b -> budget > b
    in
    if better then (
      Hashtbl.replace best q budget;
      List.iter
        (fun e ->
          if keep e && overlaps e.se_dst q then
            match e.se_timing with
            | Combinational -> visit e.se_src budget
            | Sequential -> if budget > 0 then visit e.se_src (budget - 1))
        edges)
  in
  visit target cycles;
  Hashtbl.fold (fun s _ acc -> s :: acc) best []
  |> List.sort compare

(* The names in the slice-precise chain of a whole signal. *)
let backward_closure_sliced ?(data_only = false) (m : Ast.module_def)
    ~target ~cycles : string list =
  backward_slice_closure ~data_only m ~target:(full_slice m target) ~cycles
  |> List.map (fun s -> s.s_name)
  |> Ast.dedup
