(* A small structural linter over the Verilog subset.

   The checks target the mechanical subclasses of the bug study:
   implicit truncation (section 3.2.2), potential out-of-range indexing
   of non-power-of-two structures (3.2.1), registers that are never
   reset or never driven (3.2.5), multiply-driven nets, and case
   statements that cover neither all values nor a default. The tools of
   lib/core localize bugs after the fact; the linter flags the ones
   visible statically before synthesis. *)

module Ast = Fpga_hdl.Ast

type severity = Warning | Error

type finding = {
  severity : severity;
  rule : string;
  signal : string;
  message : string;
}

let finding severity rule signal message = { severity; rule; signal; message }

let finding_to_string f =
  Printf.sprintf "%s [%s] %s: %s"
    (match f.severity with Warning -> "warning" | Error -> "error")
    f.rule f.signal f.message

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let all_assignments (m : Ast.module_def) =
  let from_always =
    List.concat_map
      (fun (a : Ast.always) -> Path_constraint.assignments_of_always a)
      m.Ast.always_blocks
  in
  let from_assigns =
    List.map (fun (l, e) -> (l, e, Ast.true_expr)) m.Ast.assigns
  in
  from_always @ from_assigns

let reads_of_module (m : Ast.module_def) =
  let stmt_reads =
    List.concat_map
      (fun (a : Ast.always) ->
        List.concat_map Ast.stmt_reads a.Ast.stmts)
      m.Ast.always_blocks
  in
  let assign_reads = List.concat_map (fun (_, e) -> Ast.expr_reads e) m.Ast.assigns in
  let instance_reads =
    List.concat_map
      (fun (i : Ast.instance) ->
        List.concat_map
          (fun (c : Ast.connection) -> Ast.expr_reads c.Ast.actual)
          i.Ast.conns)
      m.Ast.instances
  in
  Ast.dedup (stmt_reads @ assign_reads @ instance_reads)

let writes_of_module (m : Ast.module_def) =
  Ast.dedup (List.concat_map (fun (l, _, _) -> Ast.lvalue_bases l) (all_assignments m))

let instance_outputs (m : Ast.module_def) =
  List.concat_map
    (fun (i : Ast.instance) ->
      List.filter_map
        (fun (c : Ast.connection) ->
          match c.Ast.actual with Ast.Ident n -> Some n | _ -> None)
        i.Ast.conns)
    m.Ast.instances

(* ------------------------------------------------------------------ *)
(* Rules                                                               *)
(* ------------------------------------------------------------------ *)

(* R1: declared but never read and never written. *)
let unused_signals (m : Ast.module_def) : finding list =
  let reads = reads_of_module m in
  let writes = writes_of_module m in
  let connected = instance_outputs m in
  List.filter_map
    (fun (d : Ast.decl) ->
      if
        (not (List.mem d.Ast.name reads))
        && (not (List.mem d.Ast.name writes))
        && (not (List.mem d.Ast.name connected))
        && Ast.find_port m d.Ast.name = None
      then
        Some
          (finding Warning "unused" d.Ast.name
             "declared but never read or written")
      else None)
    m.Ast.decls

(* R2: a register read somewhere but driven nowhere. *)
let undriven_signals (m : Ast.module_def) : finding list =
  let reads = reads_of_module m in
  let writes = writes_of_module m in
  let connected = instance_outputs m in
  List.filter_map
    (fun (d : Ast.decl) ->
      let is_input =
        match Ast.find_port m d.Ast.name with
        | Some { Ast.dir = Ast.Input; _ } -> true
        | _ -> false
      in
      if
        List.mem d.Ast.name reads
        && (not (List.mem d.Ast.name writes))
        && (not (List.mem d.Ast.name connected))
        && (not is_input)
        && d.Ast.init = None
      then
        Some (finding Error "undriven" d.Ast.name "read but never driven")
      else None)
    m.Ast.decls

(* R3: a base signal assigned in more than one always block (or by both
   an always block and a continuous assign). *)
let multiple_drivers (m : Ast.module_def) : finding list =
  let driver_sets =
    List.mapi
      (fun i (a : Ast.always) ->
        ( Printf.sprintf "always#%d" i,
          Ast.dedup (List.concat_map Ast.stmt_writes a.Ast.stmts) ))
      m.Ast.always_blocks
    @ List.mapi
        (fun i (l, _) -> (Printf.sprintf "assign#%d" i, Ast.lvalue_bases l))
        m.Ast.assigns
  in
  let tally = Hashtbl.create 16 in
  List.iter
    (fun (driver, signals) ->
      List.iter
        (fun s ->
          let existing = Option.value (Hashtbl.find_opt tally s) ~default:[] in
          if not (List.mem driver existing) then
            Hashtbl.replace tally s (driver :: existing))
        signals)
    driver_sets;
  Hashtbl.fold
    (fun s drivers acc ->
      (* partial continuous assigns to distinct ranges of one net are a
         legitimate idiom; only flag cross-kind or cross-always drivers *)
      let always_drivers =
        List.filter (fun d -> String.length d > 6 && String.sub d 0 6 = "always") drivers
      in
      if List.length always_drivers > 1 then
        finding Error "multiple-drivers" s
          (Printf.sprintf "driven from %d always blocks"
             (List.length always_drivers))
        :: acc
      else acc)
    tally []

(* R4: implicit truncation - an assignment whose right-hand side is
   statically wider than its target (the Bit Truncation shape). *)
let truncating_assignments (m : Ast.module_def) : finding list =
  List.filter_map
    (fun (l, rhs, _) ->
      match l with
      | Ast.Lident name -> (
          match (Ast.signal_width m name, Width.of_expr m rhs) with
          | Some lw, rw when rw > lw && rw > 1 ->
              (* adding 32-bit literal constants to narrow counters is
                 ubiquitous and intentional; only flag non-constant excess *)
              let rhs_has_wide_signal =
                List.exists
                  (fun r ->
                    match Ast.signal_width m r with
                    | Some w -> w > lw
                    | None -> false)
                  (Ast.expr_reads rhs)
              in
              if rhs_has_wide_signal then
                Some
                  (finding Warning "truncation" name
                     (Printf.sprintf
                        "%d-bit expression assigned to %d-bit target" rw lw))
              else None
          | _ -> None
          | exception Width.Unknown_width _ -> None)
      | _ -> None)
    (all_assignments m)

(* R5: indexing a non-power-of-two structure with an index wide enough
   to exceed it - the silent-drop flavor of buffer overflow. *)
let overflow_prone_indexing (m : Ast.module_def) : finding list =
  let check_index name size (idx : Ast.expr) =
    if size > 0 && size land (size - 1) = 0 then None
    else
      match idx with
      | Ast.Const _ -> None
      | _ -> (
          match Width.of_expr m idx with
          | iw when (1 lsl min iw 30) > size ->
              Some
                (finding Warning "overflow-prone" name
                   (Printf.sprintf
                      "%d-bit index can exceed the %d-entry non-power-of-two \
                       structure; out-of-range accesses are silently dropped"
                      iw size))
          | _ -> None
          | exception Width.Unknown_width _ -> None)
  in
  let rec of_expr (e : Ast.expr) =
    match e with
    | Ast.Index (n, i) -> (
        let nested = of_expr i in
        match Ast.find_decl m n with
        | Some { Ast.depth = Some d; _ } -> (
            match check_index n d i with Some f -> f :: nested | None -> nested)
        | _ -> nested)
    | Ast.Const _ | Ast.Ident _ | Ast.Range _ -> []
    | Ast.Unop (_, a) | Ast.Repeat (_, a) -> of_expr a
    | Ast.Binop (_, a, b) -> of_expr a @ of_expr b
    | Ast.Cond (c, a, b) -> of_expr c @ of_expr a @ of_expr b
    | Ast.Concat es -> List.concat_map of_expr es
  in
  List.concat_map
    (fun (l, rhs, cond) ->
      let from_lvalue =
        match l with
        | Ast.Lindex (n, i) -> (
            match Ast.find_decl m n with
            | Some { Ast.depth = Some d; _ } -> (
                match check_index n d i with Some f -> [ f ] | None -> [])
            | _ -> [])
        | _ -> []
      in
      from_lvalue @ of_expr rhs @ of_expr cond)
    (all_assignments m)

(* R6: a case over an n-bit scrutinee that covers neither all 2^n values
   nor a default - the incomplete-implementation shape. *)
let incomplete_cases (m : Ast.module_def) : finding list =
  let rec of_stmt (s : Ast.stmt) =
    match s with
    | Ast.Case (e, items, None) -> (
        let labels =
          List.concat_map (fun (it : Ast.case_item) -> it.Ast.match_exprs) items
        in
        let nested =
          List.concat_map
            (fun (it : Ast.case_item) -> List.concat_map of_stmt it.Ast.body)
            items
        in
        match Width.of_expr m e with
        | w when w <= 16 && List.length labels < 1 lsl w ->
            finding Warning "incomplete-case"
              (Fpga_hdl.Pp_verilog.expr_str e)
              (Printf.sprintf
                 "case covers %d of %d values and has no default"
                 (List.length labels) (1 lsl w))
            :: nested
        | _ -> nested
        | exception Width.Unknown_width _ -> nested)
    | Ast.Case (_, items, Some d) ->
        List.concat_map
          (fun (it : Ast.case_item) -> List.concat_map of_stmt it.Ast.body)
          items
        @ List.concat_map of_stmt d
    | Ast.If (_, t, f) -> List.concat_map of_stmt t @ List.concat_map of_stmt f
    | Ast.Blocking _ | Ast.Nonblocking _ | Ast.Display _ | Ast.Finish -> []
  in
  List.concat_map
    (fun (a : Ast.always) -> List.concat_map of_stmt a.Ast.stmts)
    m.Ast.always_blocks

let rules =
  [
    ("unused", unused_signals);
    ("undriven", undriven_signals);
    ("multiple-drivers", multiple_drivers);
    ("truncation", truncating_assignments);
    ("overflow-prone", overflow_prone_indexing);
    ("incomplete-case", incomplete_cases);
  ]

let check ?(only = []) (m : Ast.module_def) : finding list =
  List.concat_map
    (fun (name, rule) -> if only = [] || List.mem name only then rule m else [])
    rules
  |> List.sort_uniq compare

let check_design ?only (d : Ast.design) : (string * finding list) list =
  List.map (fun m -> (m.Ast.mod_name, check ?only m)) d.Ast.modules
