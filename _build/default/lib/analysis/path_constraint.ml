(* Path-constraint computation: for every leaf statement in an always
   block, the condition under which control reaches it. SignalCat uses
   this to trigger recording exactly when an instrumented $display would
   have fired (section 4.1); LossCheck uses it as the sigma of each
   propagation relation (section 4.5.1). *)

module Ast = Fpga_hdl.Ast

type 'a annotated = { node : 'a; cond : Ast.expr }

(* Equality test used when building case-item constraints. *)
let eq_expr scrutinee label = Ast.Binop (Ast.Eq, scrutinee, label)

let rec annotate_stmts (cond : Ast.expr) (stmts : Ast.stmt list) :
    Ast.stmt annotated list =
  List.concat_map (annotate_stmt cond) stmts

and annotate_stmt cond (s : Ast.stmt) : Ast.stmt annotated list =
  match s with
  | Ast.Blocking _ | Ast.Nonblocking _ | Ast.Display _ | Ast.Finish ->
      [ { node = s; cond } ]
  | Ast.If (c, t, f) ->
      annotate_stmts (Ast.and_expr cond c) t
      @ annotate_stmts (Ast.and_expr cond (Ast.not_expr c)) f
  | Ast.Case (scrutinee, items, default) ->
      let item_conds =
        List.map
          (fun (it : Ast.case_item) ->
            List.fold_left
              (fun acc label -> Ast.or_expr acc (eq_expr scrutinee label))
              Ast.false_expr it.Ast.match_exprs)
          items
      in
      let from_items =
        List.concat (List.map2
          (fun (it : Ast.case_item) item_cond ->
            annotate_stmts (Ast.and_expr cond item_cond) it.Ast.body)
          items item_conds)
      in
      let from_default =
        match default with
        | None -> []
        | Some body ->
            let none_matched =
              List.fold_left
                (fun acc c -> Ast.and_expr acc (Ast.not_expr c))
                Ast.true_expr item_conds
            in
            annotate_stmts (Ast.and_expr cond none_matched) body
      in
      from_items @ from_default

(* All leaf statements of an always block with their path constraints. *)
let of_always (a : Ast.always) = annotate_stmts Ast.true_expr a.Ast.stmts

(* Leaf assignments only, as (lvalue, rhs, condition) triples. *)
let assignments_of_always (a : Ast.always) :
    (Ast.lvalue * Ast.expr * Ast.expr) list =
  List.filter_map
    (fun { node; cond } ->
      match node with
      | Ast.Blocking (l, e) | Ast.Nonblocking (l, e) -> Some (l, e, cond)
      | Ast.Display _ | Ast.Finish | Ast.If _ | Ast.Case _ -> None)
    (of_always a)

(* Display statements with their path constraints (SignalCat input). *)
let displays_of_always (a : Ast.always) :
    (string * Ast.expr list * Ast.expr) list =
  List.filter_map
    (fun { node; cond } ->
      match node with
      | Ast.Display (fmt, args) -> Some (fmt, args, cond)
      | _ -> None)
    (of_always a)
