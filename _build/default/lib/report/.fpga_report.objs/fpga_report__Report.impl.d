lib/report/report.ml: Fpga_analysis Fpga_debug Fpga_hdl Fpga_resources Fpga_study Fpga_testbed List Option Printf String
