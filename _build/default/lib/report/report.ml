(* Evaluation-report generation: the printers that regenerate the
   paper's tables and figures, shared by bench/main.exe and the
   fpga-debug CLI. *)

module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Recipe = Fpga_testbed.Recipe
module Taxonomy = Fpga_study.Taxonomy
module Bug_db = Fpga_study.Bug_db
module Model = Fpga_resources.Model
module Platforms = Fpga_resources.Platforms

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let mark b = if b then "Y" else "."

(* ------------------------------------------------------------------ *)
(* Table 1                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  header "Table 1: bug classification (3 classes, 13 subclasses, 68 bugs)";
  Printf.printf "%-16s %-28s %5s  %-5s %-4s %-6s %-3s\n" "Class" "Subclass"
    "Bugs" "Stuck" "Loss" "Incor." "Ext";
  List.iter
    (fun (r : Bug_db.table1_row) ->
      let has s = List.mem s r.Bug_db.row_symptoms in
      Printf.printf "%-16s %-28s %5d  %-5s %-4s %-6s %-3s\n"
        (Taxonomy.class_name r.Bug_db.row_class)
        (Taxonomy.subclass_name r.Bug_db.row_subclass)
        r.Bug_db.row_count
        (mark (has Taxonomy.App_stuck))
        (mark (has Taxonomy.Data_loss))
        (mark (has Taxonomy.Incorrect_output))
        (mark (has Taxonomy.External_error)))
    Bug_db.table1;
  Printf.printf "%-16s %-28s %5d\n" "" "Total" Bug_db.total;
  Printf.printf
    "\ncorpus: of the %d most popular GitHub FPGA projects, %d%% lack a \
     public bug tracker and %d%% lack reproduction tests\n"
    Bug_db.corpus.Bug_db.surveyed_projects
    Bug_db.corpus.Bug_db.without_bug_tracker_pct
    Bug_db.corpus.Bug_db.without_repro_tests_pct;
  print_endline "bugs by origin:";
  List.iter
    (fun o ->
      Printf.printf "  %-28s %d\n" (Bug_db.origin_name o) (Bug_db.count_origin o))
    Bug_db.origins;
  print_endline "\ntypical fixes per subclass (sections 3.2-3.4):";
  List.iter
    (fun sc ->
      Printf.printf "  %-28s %s\n" (Taxonomy.subclass_name sc)
        (Taxonomy.common_fix sc))
    Taxonomy.all_subclasses

(* ------------------------------------------------------------------ *)
(* Table 2                                                             *)
(* ------------------------------------------------------------------ *)

let table2 () =
  header
    "Table 2: reproducible testbed (observed symptoms from differential \
     execution; tools marked helpful)";
  Printf.printf "%-4s %-28s %-22s %-8s | %-5s %-4s %-6s %-3s | %-2s %-3s %-5s %-4s %-2s\n"
    "ID" "Subclass" "Application" "Platform" "Stuck" "Loss" "Incor." "Ext"
    "SC" "FSM" "Stat." "Dep." "LC";
  List.iter
    (fun (bug : Bug.t) ->
      let observed = Bug.observed_symptoms bug in
      let has s = List.mem s observed in
      let tool t = List.mem t bug.Bug.helpful_tools in
      let platform =
        match bug.Bug.platform with
        | Platforms.Harp -> "HARP"
        | Platforms.Xilinx -> "Xilinx"
        | Platforms.Generic -> "Generic"
      in
      Printf.printf
        "%-4s %-28s %-22s %-8s | %-5s %-4s %-6s %-3s | %-2s %-3s %-5s %-4s %-2s\n"
        bug.Bug.id
        (Taxonomy.subclass_name bug.Bug.subclass)
        bug.Bug.application platform
        (mark (has Taxonomy.App_stuck))
        (mark (has Taxonomy.Data_loss))
        (mark (has Taxonomy.Incorrect_output))
        (mark (has Taxonomy.External_error))
        (mark (tool Bug.SC))
        (mark (tool Bug.FSM))
        (mark (tool Bug.Stat))
        (mark (tool Bug.Dep))
        (mark (tool Bug.LC)))
    Registry.all

let extended_testbed () =
  header
    "Extended testbed: study bugs reproduced beyond Table 2 (all 13 \
     subclasses covered)";
  List.iter
    (fun (bug : Bug.t) ->
      let observed = Bug.observed_symptoms bug in
      Printf.printf "%-4s %-28s %-20s %s -> [%s]\n" bug.Bug.id
        (Taxonomy.subclass_name bug.Bug.subclass)
        bug.Bug.application
        (if Bug.reproduces bug then "reproduces" else "FAILS")
        (String.concat ","
           (List.map Taxonomy.symptom_name observed)))
    Registry.extended

(* ------------------------------------------------------------------ *)
(* Figure 2                                                            *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  header
    "Figure 2: SignalCat + monitors resource overhead vs. recording \
     buffer size";
  let depths = [ 1024; 2048; 4096; 8192 ] in
  let show (bug : Bug.t) =
    let cells =
      List.map (fun depth -> (depth, Recipe.overhead ~buffer_depth:depth bug)) depths
    in
    Printf.printf "%-4s bram(Kbit):" bug.Bug.id;
    List.iter
      (fun (_, u) -> Printf.printf " %8.1f" (float_of_int u.Model.bram_bits /. 1024.))
      cells;
    Printf.printf "  regs:";
    (match cells with
    | (_, u) :: _ -> Printf.printf " %5d" u.Model.registers
    | [] -> ());
    Printf.printf "  logic:";
    (match cells with
    | (_, u) :: _ -> Printf.printf " %5d" u.Model.logic
    | [] -> ());
    print_newline ()
  in
  print_endline "-- Intel HARP designs (buffer 1K / 2K / 4K / 8K entries) --";
  List.iter
    (fun b -> if b.Bug.platform = Platforms.Harp then show b)
    Registry.all;
  print_endline "-- Xilinx KC705 designs (buffer 1K / 2K / 4K / 8K entries) --";
  List.iter
    (fun b -> if b.Bug.platform <> Platforms.Harp then show b)
    Registry.all;
  (* the headline trend: BRAM linear in depth, registers/logic flat *)
  let d1 = Option.get (Registry.find "D1") in
  let u1 = Recipe.overhead ~buffer_depth:1024 d1 in
  let u8 = Recipe.overhead ~buffer_depth:8192 d1 in
  Printf.printf
    "trend check (D1): bram 8K/1K = %.2fx (expect 8.0x), registers 8K-1K = %+d\n"
    (float_of_int u8.Model.bram_bits /. float_of_int u1.Model.bram_bits)
    (u8.Model.registers - u1.Model.registers)

(* ------------------------------------------------------------------ *)
(* Figure 3                                                            *)
(* ------------------------------------------------------------------ *)

let figure3 () =
  header
    "Figure 3: LossCheck overhead (% of platform registers/logic)";
  List.iter
    (fun (bug : Bug.t) ->
      match Recipe.losscheck_overhead bug with
      | None -> ()
      | Some u ->
          let platform = Platforms.of_kind bug.Bug.platform in
          let norm = Model.normalize platform u in
          Printf.printf "%-4s (%-7s) registers=%.4f%% logic=%.4f%%\n" bug.Bug.id
            (match bug.Bug.platform with
            | Platforms.Harp -> "HARP"
            | _ -> "KC705")
            (List.assoc "registers" norm) (List.assoc "logic" norm))
    Registry.loss_bugs

(* ------------------------------------------------------------------ *)
(* Effectiveness (6.3)                                                 *)
(* ------------------------------------------------------------------ *)

let effectiveness () =
  header "Effectiveness (section 6.3)";
  (* generated code for the monitor use case *)
  let locs =
    List.map
      (fun bug ->
        let r = Recipe.apply ~buffer_depth:8192 bug in
        (bug.Bug.id, r.Recipe.monitor_loc + r.Recipe.recording_loc))
      Registry.all
  in
  let total = List.fold_left (fun acc (_, l) -> acc + l) 0 locs in
  Printf.printf
    "SignalCat + monitors: average generated/inserted Verilog = %d lines \
     (paper: 72)\n"
    (total / List.length locs);
  (* LossCheck results *)
  let lc_locs = ref [] in
  let localized = ref 0 in
  let fp_total = ref 0 in
  List.iter
    (fun (bug : Bug.t) ->
      let design = Bug.design_of bug ~buggy:true in
      let spec = Option.get bug.Bug.loss_spec in
      let r =
        Fpga_debug.Losscheck.localize ~ground_truth:bug.Bug.ground_truth
          ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
          ~stimulus:bug.Bug.stimulus design
      in
      lc_locs := r.Fpga_debug.Losscheck.generated_loc :: !lc_locs;
      let root = bug.Bug.loss_root in
      let found =
        match root with
        | Some root -> List.mem root r.Fpga_debug.Losscheck.reported
        | None -> false
      in
      if found then incr localized;
      let fps =
        List.length
          (List.filter
             (fun reg -> Some reg <> root)
             r.Fpga_debug.Losscheck.reported)
      in
      fp_total := !fp_total + fps;
      Printf.printf
        "LossCheck %-4s reported=[%s] suppressed=[%s] -> %s%s\n" bug.Bug.id
        (String.concat "," r.Fpga_debug.Losscheck.reported)
        (String.concat "," r.Fpga_debug.Losscheck.suppressed)
        (match root with
        | Some root when found -> "localized to " ^ root
        | Some root -> "MISSED " ^ root
        | None -> "false negative (filtered intentional drop)")
        (if fps > 0 then Printf.sprintf " with %d false positive(s)" fps else ""))
    Registry.loss_bugs;
  Printf.printf
    "LossCheck: %d/%d loss bugs localized (paper: 6/7), %d false positive \
     total (paper: 1 on D1)\n"
    !localized
    (List.length Registry.loss_bugs)
    !fp_total;
  Printf.printf "LossCheck generated code: %d-%d lines (paper: 522-19,462)\n"
    (List.fold_left min max_int !lc_locs)
    (List.fold_left max 0 !lc_locs);
  (* FSM detection accuracy *)
  let detected = ref 0 and manual = ref 0 and fn = ref 0 and fp = ref 0 in
  List.iter
    (fun (bug : Bug.t) ->
      let design = Bug.design_of bug ~buggy:true in
      let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
      let det =
        List.map
          (fun f -> f.Fpga_analysis.Fsm_detect.state_var)
          (Fpga_analysis.Fsm_detect.detect m)
      in
      detected := !detected + List.length det;
      manual := !manual + List.length bug.Bug.manual_fsms;
      List.iter
        (fun v -> if not (List.mem v bug.Bug.manual_fsms) then incr fp)
        det;
      List.iter (fun v -> if not (List.mem v det) then incr fn) bug.Bug.manual_fsms)
    Registry.all;
  Printf.printf
    "FSM detection: %d manually-identified FSMs, %d detected, %d false \
     positives, %d false negatives (paper: 32 manual, 0 FP, 5 FN)\n"
    !manual !detected !fp !fn

(* ------------------------------------------------------------------ *)
(* Frequency (6.4)                                                     *)
(* ------------------------------------------------------------------ *)

let frequency () =
  header "Frequency closure (section 6.4)";
  let kept = ref 0 in
  List.iter
    (fun (bug : Bug.t) ->
      let before, after = Recipe.timing ~buffer_depth:8192 bug in
      if after.Model.meets_target then incr kept;
      Printf.printf
        "%-4s %-22s target %3d MHz | baseline fmax %3d | instrumented fmax \
         %3d -> %s %d MHz\n"
        bug.Bug.id bug.Bug.application bug.Bug.target_mhz before.Model.fmax_mhz
        after.Model.fmax_mhz
        (if after.Model.meets_target then "keeps" else "reduced to")
        after.Model.achieved_mhz)
    Registry.all;
  Printf.printf
    "%d/20 designs keep their target frequency after instrumentation \
     (paper: 18/20; Optimus 400 -> 200 MHz)\n"
    !kept

(* ------------------------------------------------------------------ *)
(* Ablations (design-choice studies called out in DESIGN.md)           *)
(* ------------------------------------------------------------------ *)

(* A1: SignalCat recording-buffer sizing - how much of the unified log
   survives at each depth (the capacity/completeness tradeoff that
   distinguishes SignalCat from pause-the-circuit loggers like
   Cascade/Synergy, section 7). *)
let ablation_buffer_sizing () =
  header "Ablation A1: SignalCat buffer depth vs. log completeness";
  let bug = Option.get (Registry.find "D2") in
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
  (* a chatty instrumentation: per-event display via Statistics Monitor *)
  let events =
    List.map
      (fun (name, signal) ->
        { Fpga_debug.Stat_monitor.event_name = name;
          trigger = Fpga_hdl.Ast.Ident signal })
      bug.Bug.stat_events
  in
  let plan = Fpga_debug.Stat_monitor.plan m events in
  let chatty = Fpga_debug.Stat_monitor.instrument ~log_changes:true plan m in
  let design' = { Fpga_hdl.Ast.modules = [ chatty ] } in
  let full =
    Fpga_debug.Signalcat.run_and_log ~buffer_depth:1024
      ~max_cycles:bug.Bug.max_cycles ~mode:Fpga_debug.Signalcat.Simulation
      ~top:bug.Bug.top design' bug.Bug.stimulus
  in
  let total = List.length full in
  List.iter
    (fun depth ->
      let got =
        Fpga_debug.Signalcat.run_and_log ~buffer_depth:depth
          ~max_cycles:bug.Bug.max_cycles ~mode:Fpga_debug.Signalcat.On_fpga
          ~top:bug.Bug.top design' bug.Bug.stimulus
      in
      let r = Fpga_testbed.Recipe.apply ~buffer_depth:depth bug in
      let u =
        Model.overhead ~baseline:r.Fpga_testbed.Recipe.baseline
          ~instrumented:r.Fpga_testbed.Recipe.on_fpga
      in
      Printf.printf
        "depth %5d: %2d/%2d events captured (%3.0f%%), %7.1f Kbit BRAM\n"
        depth (List.length got) total
        (100.0 *. float_of_int (List.length got) /. float_of_int (max 1 total))
        (float_of_int u.Model.bram_bits /. 1024.))
    [ 2; 4; 8; 16; 1024 ]

(* A2: LossCheck false-positive filtering on vs. off. *)
let ablation_losscheck_filtering () =
  header "Ablation A2: LossCheck ground-truth filtering";
  Printf.printf "%-4s %-28s %-28s\n" "bug" "without filtering" "with filtering";
  List.iter
    (fun (bug : Bug.t) ->
      let design = Bug.design_of bug ~buggy:true in
      let spec = Option.get bug.Bug.loss_spec in
      let run ~filtered =
        Fpga_debug.Losscheck.localize
          ~ground_truth:(if filtered then bug.Bug.ground_truth else [])
          ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
          ~stimulus:bug.Bug.stimulus design
      in
      let raw = run ~filtered:false and flt = run ~filtered:true in
      Printf.printf "%-4s %-28s %-28s\n" bug.Bug.id
        (String.concat "," raw.Fpga_debug.Losscheck.reported)
        (String.concat "," flt.Fpga_debug.Losscheck.reported))
    Registry.loss_bugs;
  print_endline
    "filtering trades false positives (C2's replay register) for one \
     false negative (D11), as in sections 4.5.3-4.5.4"

(* A3: contribution of each FSM-detection heuristic. *)
let ablation_fsm_heuristics () =
  header "Ablation A3: FSM detection heuristics";
  let census ~require_no_arith ~require_self_condition =
    let fp = ref 0 and fn = ref 0 and detected = ref 0 in
    List.iter
      (fun (bug : Bug.t) ->
        let design = Bug.design_of bug ~buggy:true in
        let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
        let det =
          List.map
            (fun f -> f.Fpga_analysis.Fsm_detect.state_var)
            (Fpga_analysis.Fsm_detect.detect ~require_no_arith
               ~require_self_condition m)
        in
        detected := !detected + List.length det;
        List.iter
          (fun v -> if not (List.mem v bug.Bug.manual_fsms) then incr fp)
          det;
        List.iter
          (fun v -> if not (List.mem v det) then incr fn)
          bug.Bug.manual_fsms)
      Registry.all;
    (!detected, !fp, !fn)
  in
  List.iter
    (fun (label, na, sc) ->
      let d, fp, fn = census ~require_no_arith:na ~require_self_condition:sc in
      Printf.printf "%-34s detected=%2d  FP=%2d  FN=%2d\n" label d fp fn)
    [
      ("full heuristics (paper)", true, true);
      ("without the no-arithmetic rule", false, true);
      ("without the self-condition rule", true, false);
      ("neither rule", false, false);
    ];
  print_endline
    "dropping the self-condition rule floods the report with plain data \
     registers; the two byte-phase false negatives (half <= ~half) fail \
     the constant-assignment requirement itself, so no relaxation recovers \
     them - they need the developer patch-in facility of section 4.2"

(* A4: SignalCat's tradeoff against pause-the-circuit logging (Cascade /
   Synergy, section 7): on-chip recording bounds the log but never
   stalls; unsynthesizable-printf execution captures everything but
   pauses the circuit for the host to drain each statement. *)
let ablation_pause_logging () =
  header "Ablation A4: on-chip recording vs. pause-the-circuit logging";
  let drain_cycles = 300 in  (* host round-trip per printf, Cascade-style *)
  let bug = Option.get (Registry.find "D2") in
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
  let events =
    List.map
      (fun (name, signal) ->
        { Fpga_debug.Stat_monitor.event_name = name;
          trigger = Fpga_hdl.Ast.Ident signal })
      bug.Bug.stat_events
  in
  let plan = Fpga_debug.Stat_monitor.plan m events in
  let chatty = Fpga_debug.Stat_monitor.instrument ~log_changes:true plan m in
  let design' = { Fpga_hdl.Ast.modules = [ chatty ] } in
  let full =
    Fpga_debug.Signalcat.run_and_log ~buffer_depth:1024
      ~max_cycles:bug.Bug.max_cycles ~mode:Fpga_debug.Signalcat.Simulation
      ~top:bug.Bug.top design' bug.Bug.stimulus
  in
  let total_events = List.length full in
  let run_cycles = bug.Bug.max_cycles in
  let sc_plan = Fpga_debug.Signalcat.analyze ~buffer_depth:16 chatty in
  Printf.printf
    "run: %d cycles, %d log events, entry width %d bits\n" run_cycles
    total_events sc_plan.Fpga_debug.Signalcat.entry_width;
  Printf.printf
    "SignalCat (16-entry buffer): %d/%d events, 1.00x runtime, %d bits BRAM\n"
    (min 16 total_events) total_events
    (16 * sc_plan.Fpga_debug.Signalcat.entry_width);
  let paused = run_cycles + (drain_cycles * total_events) in
  Printf.printf
    "pause-the-circuit (Cascade-style, %d-cycle drain): %d/%d events, \
     %.2fx runtime, 0 bits BRAM\n"
    drain_cycles total_events total_events
    (float_of_int paused /. float_of_int run_cycles);
  print_endline
    "SignalCat trades completeness for zero slowdown; pausing trades \
     slowdown for completeness - the section 7 comparison"

let ablations () =
  ablation_buffer_sizing ();
  ablation_losscheck_filtering ();
  ablation_fsm_heuristics ();
  ablation_pause_logging ()
