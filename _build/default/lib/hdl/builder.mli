(** A small eDSL for constructing AST fragments from OCaml, used by
    tests and by the instrumentation passes, which synthesize monitoring
    logic programmatically before splicing it into a parsed design. *)

(** {1 Expressions} *)

val ident : string -> Ast.expr
val const : width:int -> int -> Ast.expr
val const_bits : Fpga_bits.Bits.t -> Ast.expr
val tru : Ast.expr
val fls : Ast.expr
val idx : string -> Ast.expr -> Ast.expr
val idx_int : string -> int -> Ast.expr
val range : string -> int -> int -> Ast.expr

val ( +: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( -: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( *: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ==: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <>: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( <=: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( >=: ) : Ast.expr -> Ast.expr -> Ast.expr

val ( &&: ) : Ast.expr -> Ast.expr -> Ast.expr
(** Logical and, with constant folding (see {!Ast.and_expr}). *)

val ( ||: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( &: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( |: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( ^: ) : Ast.expr -> Ast.expr -> Ast.expr
val bnot : Ast.expr -> Ast.expr
val lnot_ : Ast.expr -> Ast.expr
val sll : Ast.expr -> int -> Ast.expr
val srl : Ast.expr -> int -> Ast.expr
val mux : Ast.expr -> Ast.expr -> Ast.expr -> Ast.expr
val concat : Ast.expr list -> Ast.expr

(** {1 Statements} *)

val assign_nb : string -> Ast.expr -> Ast.stmt
val assign_b : string -> Ast.expr -> Ast.stmt
val if_ : Ast.expr -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val when_ : Ast.expr -> Ast.stmt list -> Ast.stmt
val display : string -> Ast.expr list -> Ast.stmt
val finish : Ast.stmt

(** {1 Declarations and modules} *)

val reg : ?init:int -> ?depth:int -> width:int -> string -> Ast.decl
val wire : ?depth:int -> width:int -> string -> Ast.decl
val input : width:int -> string -> Ast.port
val output : width:int -> string -> Ast.port

val module_ :
  ?params:(string * int) list ->
  ?localparams:(string * Fpga_bits.Bits.t) list ->
  ?decls:Ast.decl list ->
  ?assigns:(Ast.lvalue * Ast.expr) list ->
  ?always_blocks:Ast.always list ->
  ?instances:Ast.instance list ->
  string ->
  ports:Ast.port list ->
  Ast.module_def

val always_ff : ?clk:string -> Ast.stmt list -> Ast.always
val always_comb : Ast.stmt list -> Ast.always
