(* Abstract syntax for the synthesizable Verilog subset handled by the
   tool suite. The subset covers the constructs exercised by the bug study
   (ASPLOS '22, section 3): single-clock sequential logic, continuous
   assignments, combinational always blocks, conditional and case
   statements, bit/part selects, concatenation, memories, module
   instances, and $display debugging statements. *)

module Bits = Fpga_bits.Bits

type unop =
  | Bnot  (* ~e  *)
  | Lnot  (* !e  *)
  | Neg   (* -e  *)
  | Rand  (* &e  reduction *)
  | Ror   (* |e  reduction *)
  | Rxor  (* ^e  reduction *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Band
  | Bor
  | Bxor
  | Land
  | Lor
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Shl
  | Shr
  | Ashr

type expr =
  | Const of Bits.t
  | Ident of string
  | Index of string * expr  (* bit select or memory word select *)
  | Range of string * int * int  (* constant part select [hi:lo] *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cond of expr * expr * expr
  | Concat of expr list  (* MSB first *)
  | Repeat of int * expr

type lvalue =
  | Lident of string
  | Lindex of string * expr
  | Lrange of string * int * int
  | Lconcat of lvalue list  (* MSB first *)

type stmt =
  | Blocking of lvalue * expr
  | Nonblocking of lvalue * expr
  | If of expr * stmt list * stmt list
  | Case of expr * case_item list * stmt list option
  | Display of string * expr list
  | Finish

and case_item = { match_exprs : expr list; body : stmt list }

type edge = Posedge of string | Negedge of string | Star

type always = { sens : edge; stmts : stmt list }

type net_kind = Reg | Wire

type decl = {
  name : string;
  kind : net_kind;
  width : int;
  depth : int option;  (* [Some n] for a memory with n words *)
  init : Bits.t option;
}

type port_dir = Input | Output | Inout
type port = { port_name : string; dir : port_dir; port_width : int }
type connection = { formal : string; actual : expr }

type instance = {
  inst_name : string;
  target : string;  (* user module or builtin IP (scfifo, dcfifo, altsyncram) *)
  params : (string * int) list;
  conns : connection list;
}

type module_def = {
  mod_name : string;
  ports : port list;
  params : (string * int) list;
  localparams : (string * Bits.t) list;
  decls : decl list;
  assigns : (lvalue * expr) list;
  always_blocks : always list;
  instances : instance list;
}

type design = { modules : module_def list }

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let builtin_ips = [ "scfifo"; "dcfifo"; "altsyncram" ]
let is_builtin_ip name = List.mem name builtin_ips

let find_module design name =
  List.find_opt (fun m -> m.mod_name = name) design.modules

let find_decl m name = List.find_opt (fun d -> d.name = name) m.decls
let find_port m name = List.find_opt (fun p -> p.port_name = name) m.ports

(* The base identifier an lvalue writes to. *)
let lvalue_base = function
  | Lident n | Lindex (n, _) | Lrange (n, _, _) -> [ n ]
  | Lconcat _ -> []

let rec lvalue_bases = function
  | (Lident _ | Lindex _ | Lrange _) as l -> lvalue_base l
  | Lconcat ls -> List.concat_map lvalue_bases ls

(* All identifiers read by an expression (including index expressions). *)
let rec expr_reads e =
  match e with
  | Const _ -> []
  | Ident n -> [ n ]
  | Index (n, i) -> n :: expr_reads i
  | Range (n, _, _) -> [ n ]
  | Unop (_, a) -> expr_reads a
  | Binop (_, a, b) -> expr_reads a @ expr_reads b
  | Cond (c, a, b) -> expr_reads c @ expr_reads a @ expr_reads b
  | Concat es -> List.concat_map expr_reads es
  | Repeat (_, a) -> expr_reads a

(* Identifiers read by the lvalue itself (index expressions). *)
let rec lvalue_reads = function
  | Lident _ | Lrange _ -> []
  | Lindex (_, i) -> expr_reads i
  | Lconcat ls -> List.concat_map lvalue_reads ls

let rec stmt_reads s =
  match s with
  | Blocking (l, e) | Nonblocking (l, e) -> lvalue_reads l @ expr_reads e
  | If (c, t, f) ->
      expr_reads c @ List.concat_map stmt_reads t @ List.concat_map stmt_reads f
  | Case (e, items, default) ->
      expr_reads e
      @ List.concat_map
          (fun it ->
            List.concat_map expr_reads it.match_exprs
            @ List.concat_map stmt_reads it.body)
          items
      @ (match default with
        | None -> []
        | Some body -> List.concat_map stmt_reads body)
  | Display (_, args) -> List.concat_map expr_reads args
  | Finish -> []

let rec stmt_writes s =
  match s with
  | Blocking (l, _) | Nonblocking (l, _) -> lvalue_bases l
  | If (_, t, f) ->
      List.concat_map stmt_writes t @ List.concat_map stmt_writes f
  | Case (_, items, default) ->
      List.concat_map (fun it -> List.concat_map stmt_writes it.body) items
      @ (match default with
        | None -> []
        | Some body -> List.concat_map stmt_writes body)
  | Display _ | Finish -> []

let dedup names = List.sort_uniq String.compare names

(* Width of a declared signal inside a module, following ports too. *)
let signal_width m name =
  match find_decl m name with
  | Some d -> Some d.width
  | None -> (
      match find_port m name with
      | Some p -> Some p.port_width
      | None -> None)

let true_expr = Const (Bits.one 1)
let false_expr = Const (Bits.zero 1)

(* Smart boolean connectives used by instrumentation passes to keep the
   generated code readable. *)
let and_expr a b =
  match (a, b) with
  | Const c, x when Bits.equal c (Bits.one 1) -> x
  | x, Const c when Bits.equal c (Bits.one 1) -> x
  | Const c, _ when Bits.is_zero c -> false_expr
  | _, Const c when Bits.is_zero c -> false_expr
  | _ -> Binop (Land, a, b)

let or_expr a b =
  match (a, b) with
  | Const c, _ when Bits.equal c (Bits.one 1) -> true_expr
  | _, Const c when Bits.equal c (Bits.one 1) -> true_expr
  | Const c, x when Bits.is_zero c -> x
  | x, Const c when Bits.is_zero c -> x
  | _ -> Binop (Lor, a, b)

let not_expr = function
  | Unop (Lnot, e) -> e
  | Const c when Bits.is_zero c -> true_expr
  | Const c when Bits.equal c (Bits.one 1) -> false_expr
  | e -> Unop (Lnot, e)
