(** Recursive-descent parser for the Verilog subset described in
    {!Ast}.

    Ranges, array bounds, and repeat counts must be constant
    expressions over literals, parameters, and localparams; they are
    folded at parse time, so widths in the AST are plain integers
    (which is also why a parameter override at instantiation may not
    change widths — see {!Fpga_sim.Elaborate}). *)

exception Parse_error of string * int
(** Message and 1-based source line. *)

val parse_design : string -> Ast.design
(** Parse a complete source text (one or more modules). *)

val parse_module : string -> Ast.module_def
(** Parse and return the first module; raises {!Parse_error} when the
    source contains none. *)
