(** Verilog code generation from the AST.

    Used to emit instrumented designs and to account for the lines of
    analysis code the tools generate (the paper reports 72 lines on
    average for the monitors and 522–19,462 for LossCheck, §6.3).
    Printing then re-parsing a module yields a structurally equal AST;
    the test suite checks this round trip, including on random
    expressions. *)

val expr_str : Ast.expr -> string
val lvalue_str : Ast.lvalue -> string
val const_str : Fpga_bits.Bits.t -> string

val stmt_lines : int -> Ast.stmt -> string list
(** Render one statement at the given indentation, one string per
    output line. *)

val decl_lines : Ast.decl -> string list
val module_lines : Ast.module_def -> string list
val module_to_string : Ast.module_def -> string
val design_to_string : Ast.design -> string

(** {1 Lines-of-code accounting} *)

val stmt_loc : Ast.stmt -> int
val stmts_loc : Ast.stmt list -> int
val module_loc : Ast.module_def -> int
val design_loc : Ast.design -> int
