(** Hand-written lexer for the Verilog subset. *)

type token =
  | Tident of string
  | Tnumber of { width : int option; value : Fpga_bits.Bits.t }
      (** sized ([8'hFF]) or bare decimal literals; bare literals carry
          [width = None] and default to 32 bits downstream *)
  | Tstring of string
  | Tsystem of string  (** system tasks: [$display], [$finish], ... *)
  | Tkeyword of string
  | Tpunct of string
  | Teof

type lexed = { tok : token; line : int }

exception Lex_error of string * int
(** Message and 1-based source line. *)

val keywords : string list

val tokenize : string -> lexed list
(** Tokenize a complete source text; handles [//] and [/* */] comments,
    string escapes, and underscores in numeric literals. The result
    always ends with {!Teof}. *)

val token_to_string : token -> string
