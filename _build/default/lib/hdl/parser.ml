(* Recursive-descent parser for the Verilog subset described in Ast.
   Ranges, array bounds and repeat counts must be constant expressions
   over literals, parameters, and localparams; they are folded at parse
   time, so widths in the AST are plain integers. *)

module Bits = Fpga_bits.Bits
open Lexer

exception Parse_error of string * int

type state = {
  toks : lexed array;
  mutable pos : int;
  (* constant environments for range folding *)
  mutable params : (string * int) list;
  mutable localparams : (string * Bits.t) list;
}

let error st msg =
  let line = st.toks.(min st.pos (Array.length st.toks - 1)).line in
  raise (Parse_error (msg, line))

let peek st = st.toks.(st.pos).tok
let advance st = st.pos <- st.pos + 1

let expect_punct st p =
  match peek st with
  | Tpunct q when q = p -> advance st
  | t -> error st (Printf.sprintf "expected %S, got %s" p (token_to_string t))

let expect_keyword st k =
  match peek st with
  | Tkeyword q when q = k -> advance st
  | t -> error st (Printf.sprintf "expected %S, got %s" k (token_to_string t))

let accept_punct st p =
  match peek st with
  | Tpunct q when q = p ->
      advance st;
      true
  | _ -> false

let accept_keyword st k =
  match peek st with
  | Tkeyword q when q = k ->
      advance st;
      true
  | _ -> false

let expect_ident st =
  match peek st with
  | Tident name ->
      advance st;
      name
  | t -> error st (Printf.sprintf "expected identifier, got %s" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Binary operator precedence, higher binds tighter. *)
let binop_of_punct = function
  | "||" -> Some (Ast.Lor, 1)
  | "&&" -> Some (Ast.Land, 2)
  | "|" -> Some (Ast.Bor, 3)
  | "^" -> Some (Ast.Bxor, 4)
  | "&" -> Some (Ast.Band, 5)
  | "==" | "===" -> Some (Ast.Eq, 6)
  | "!=" | "!==" -> Some (Ast.Neq, 6)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | ">>>" -> Some (Ast.Ashr, 8)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Mod, 10)
  | _ -> None

(* [no_le] suppresses treating "<=" as less-equal at the top level, which is
   how we disambiguate nonblocking assignment from comparison. *)
let rec parse_expr ?(no_le = false) st = parse_cond ~no_le st

and parse_cond ~no_le st =
  let c = parse_binary ~no_le st 1 in
  if accept_punct st "?" then (
    let t = parse_expr st in
    expect_punct st ":";
    let f = parse_cond ~no_le:false st in
    Ast.Cond (c, t, f))
  else c

and parse_binary ~no_le st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Tpunct p when not (no_le && p = "<=" && min_prec = 1) -> (
        match binop_of_punct p with
        | Some (op, prec) when prec >= min_prec ->
            advance st;
            let rhs = parse_binary ~no_le:false st (prec + 1) in
            lhs := Ast.Binop (op, !lhs, rhs)
        | _ -> continue_ := false)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Tpunct "~" ->
      advance st;
      Ast.Unop (Ast.Bnot, parse_unary st)
  | Tpunct "!" ->
      advance st;
      Ast.Unop (Ast.Lnot, parse_unary st)
  | Tpunct "-" ->
      advance st;
      Ast.Unop (Ast.Neg, parse_unary st)
  | Tpunct "&" ->
      advance st;
      Ast.Unop (Ast.Rand, parse_unary st)
  | Tpunct "|" ->
      advance st;
      Ast.Unop (Ast.Ror, parse_unary st)
  | Tpunct "^" ->
      advance st;
      Ast.Unop (Ast.Rxor, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Tnumber { width; value } ->
      advance st;
      let v =
        match width with None -> Bits.resize value 32 | Some w -> Bits.resize value w
      in
      Ast.Const v
  | Tident name -> (
      advance st;
      match peek st with
      | Tpunct "[" ->
          advance st;
          let first = parse_expr st in
          if accept_punct st ":" then (
            let second = parse_expr st in
            expect_punct st "]";
            let hi = const_int st first and lo = const_int st second in
            Ast.Range (name, hi, lo))
          else (
            expect_punct st "]";
            Ast.Index (name, first))
      | _ -> Ast.Ident name)
  | Tpunct "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | Tpunct "{" -> (
      advance st;
      (* Either a concatenation {a, b, ...} or a repeat {n{expr}}. *)
      let first = parse_expr st in
      match peek st with
      | Tpunct "{" ->
          advance st;
          let inner = parse_expr st in
          expect_punct st "}";
          expect_punct st "}";
          let count = const_int st first in
          if count < 1 || count > 4096 then error st "bad repeat count";
          Ast.Repeat (count, inner)
      | _ ->
          let items = ref [ first ] in
          while accept_punct st "," do
            items := parse_expr st :: !items
          done;
          expect_punct st "}";
          Ast.Concat (List.rev !items))
  | t -> error st (Printf.sprintf "expected expression, got %s" (token_to_string t))

(* Constant folding over params and localparams. *)
and const_int st e =
  let rec go e =
    match e with
    | Ast.Const b -> Bits.to_int b
    | Ast.Ident n -> (
        match List.assoc_opt n st.params with
        | Some v -> v
        | None -> (
            match List.assoc_opt n st.localparams with
            | Some b -> Bits.to_int b
            | None -> error st (Printf.sprintf "not a constant: %s" n)))
    | Ast.Unop (Ast.Neg, a) -> -go a
    | Ast.Binop (op, a, b) -> (
        let a = go a and b = go b in
        match op with
        | Ast.Add -> a + b
        | Ast.Sub -> a - b
        | Ast.Mul -> a * b
        | Ast.Div -> if b = 0 then error st "division by zero in constant" else a / b
        | Ast.Mod -> if b = 0 then error st "modulo by zero in constant" else a mod b
        | Ast.Shl -> if b < 0 || b > 62 then error st "bad constant shift" else a lsl b
        | Ast.Shr -> if b < 0 || b > 62 then error st "bad constant shift" else a lsr b
        | _ -> error st "unsupported constant operator")
    | _ -> error st "expected a constant expression"
  in
  go e

(* ------------------------------------------------------------------ *)
(* Lvalues                                                             *)
(* ------------------------------------------------------------------ *)

let rec parse_lvalue st =
  match peek st with
  | Tident name -> (
      advance st;
      match peek st with
      | Tpunct "[" ->
          advance st;
          let first = parse_expr st in
          if accept_punct st ":" then (
            let second = parse_expr st in
            expect_punct st "]";
            Ast.Lrange (name, const_int st first, const_int st second))
          else (
            expect_punct st "]";
            Ast.Lindex (name, first))
      | _ -> Ast.Lident name)
  | Tpunct "{" ->
      advance st;
      let items = ref [ parse_lvalue st ] in
      while accept_punct st "," do
        items := parse_lvalue st :: !items
      done;
      expect_punct st "}";
      Ast.Lconcat (List.rev !items)
  | t -> error st (Printf.sprintf "expected lvalue, got %s" (token_to_string t))

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_stmt st : Ast.stmt list =
  match peek st with
  | Tkeyword "begin" ->
      advance st;
      let stmts = ref [] in
      while not (accept_keyword st "end") do
        stmts := parse_stmt st :: !stmts
      done;
      List.concat (List.rev !stmts)
  | Tkeyword "if" ->
      advance st;
      expect_punct st "(";
      let c = parse_expr st in
      expect_punct st ")";
      let t = parse_stmt st in
      let f = if accept_keyword st "else" then parse_stmt st else [] in
      [ Ast.If (c, t, f) ]
  | Tkeyword "case" ->
      advance st;
      expect_punct st "(";
      let scrutinee = parse_expr st in
      expect_punct st ")";
      let items = ref [] in
      let default = ref None in
      let done_ = ref false in
      while not !done_ do
        match peek st with
        | Tkeyword "endcase" ->
            advance st;
            done_ := true
        | Tkeyword "default" ->
            advance st;
            ignore (accept_punct st ":");
            default := Some (parse_stmt st)
        | _ ->
            let exprs = ref [ parse_expr st ] in
            while accept_punct st "," do
              exprs := parse_expr st :: !exprs
            done;
            expect_punct st ":";
            let body = parse_stmt st in
            items :=
              { Ast.match_exprs = List.rev !exprs; body } :: !items
      done;
      [ Ast.Case (scrutinee, List.rev !items, !default) ]
  | Tsystem "display" ->
      advance st;
      expect_punct st "(";
      let fmt =
        match peek st with
        | Tstring s ->
            advance st;
            s
        | t ->
            error st
              (Printf.sprintf "expected format string, got %s"
                 (token_to_string t))
      in
      let args = ref [] in
      while accept_punct st "," do
        args := parse_expr st :: !args
      done;
      expect_punct st ")";
      expect_punct st ";";
      [ Ast.Display (fmt, List.rev !args) ]
  | Tsystem "finish" ->
      advance st;
      if accept_punct st "(" then expect_punct st ")";
      expect_punct st ";";
      [ Ast.Finish ]
  | Tpunct ";" ->
      advance st;
      []
  | _ ->
      let lv = parse_lvalue st in
      let nonblocking =
        if accept_punct st "<=" then true
        else if accept_punct st "=" then false
        else error st "expected '=' or '<='"
      in
      let e = parse_expr st in
      expect_punct st ";";
      if nonblocking then [ Ast.Nonblocking (lv, e) ]
      else [ Ast.Blocking (lv, e) ]

(* ------------------------------------------------------------------ *)
(* Module items                                                        *)
(* ------------------------------------------------------------------ *)

let parse_range_opt st =
  if accept_punct st "[" then (
    let hi = const_int st (parse_expr st) in
    expect_punct st ":";
    let lo = const_int st (parse_expr st) in
    expect_punct st "]";
    if lo <> 0 then error st "only [N:0] ranges are supported";
    if hi < 0 || hi > 4095 then error st "unsupported range width";
    hi + 1)
  else 1

let parse_port st : Ast.port * Ast.decl option =
  let dir =
    if accept_keyword st "input" then Ast.Input
    else if accept_keyword st "output" then Ast.Output
    else if accept_keyword st "inout" then Ast.Inout
    else error st "expected port direction"
  in
  let is_reg = accept_keyword st "reg" in
  ignore (accept_keyword st "wire");
  ignore (accept_keyword st "signed");
  let width = parse_range_opt st in
  let name = expect_ident st in
  let port = { Ast.port_name = name; dir; port_width = width } in
  let decl =
    if is_reg then
      Some { Ast.name; kind = Ast.Reg; width; depth = None; init = None }
    else None
  in
  (port, decl)

let parse_number_value st =
  match peek st with
  | Tnumber { width; value } ->
      advance st;
      let v =
        match width with None -> Bits.resize value 32 | Some w -> Bits.resize value w
      in
      v
  | _ ->
      (* allow constant expressions *)
      let e = parse_expr st in
      Bits.of_int ~width:32 (const_int st e)

type item =
  | Idecl of Ast.decl list
  | Iassign of (Ast.lvalue * Ast.expr) list
  | Ialways of Ast.always
  | Iinstance of Ast.instance
  | Inothing

let parse_decls st kind =
  let is_signed = accept_keyword st "signed" in
  ignore is_signed;
  let width = parse_range_opt st in
  let decls = ref [] in
  let parse_one () =
    let name = expect_ident st in
    let depth =
      if accept_punct st "[" then (
        let lo = const_int st (parse_expr st) in
        expect_punct st ":";
        let hi = const_int st (parse_expr st) in
        expect_punct st "]";
        let d = abs (hi - lo) + 1 in
        if d < 1 || d > 1 lsl 20 then error st "unsupported memory depth";
        (* accept both [0:N-1] and [N-1:0] memory declarations *)
        Some d)
      else None
    in
    let init =
      if accept_punct st "=" then Some (Bits.resize (parse_number_value st) width)
      else None
    in
    decls := { Ast.name; kind; width; depth; init } :: !decls
  in
  parse_one ();
  while accept_punct st "," do
    parse_one ()
  done;
  expect_punct st ";";
  Idecl (List.rev !decls)

let parse_instance st target =
  let params = ref [] in
  if accept_punct st "#" then (
    expect_punct st "(";
    let parse_binding () =
      expect_punct st ".";
      let formal = expect_ident st in
      expect_punct st "(";
      let v = const_int st (parse_expr st) in
      expect_punct st ")";
      params := (formal, v) :: !params
    in
    parse_binding ();
    while accept_punct st "," do
      parse_binding ()
    done;
    expect_punct st ")");
  let inst_name = expect_ident st in
  expect_punct st "(";
  let conns = ref [] in
  let parse_conn () =
    expect_punct st ".";
    let formal = expect_ident st in
    expect_punct st "(";
    let actual =
      match peek st with
      | Tpunct ")" -> Ast.Ident "_nc_"  (* unconnected port *)
      | _ -> parse_expr st
    in
    expect_punct st ")";
    conns := { Ast.formal; actual } :: !conns
  in
  if not (accept_punct st ")") then (
    parse_conn ();
    while accept_punct st "," do
      parse_conn ()
    done;
    expect_punct st ")");
  expect_punct st ";";
  Iinstance
    {
      Ast.inst_name;
      target;
      params = List.rev !params;
      conns = List.rev !conns;
    }

let parse_item st : item =
  match peek st with
  | Tkeyword "reg" ->
      advance st;
      parse_decls st Ast.Reg
  | Tkeyword "wire" ->
      advance st;
      parse_decls st Ast.Wire
  | Tkeyword "integer" ->
      advance st;
      (* model integer as a 32-bit reg *)
      let name = expect_ident st in
      expect_punct st ";";
      Idecl [ { Ast.name; kind = Ast.Reg; width = 32; depth = None; init = None } ]
  | Tkeyword "parameter" ->
      advance st;
      let name = expect_ident st in
      expect_punct st "=";
      let v = const_int st (parse_expr st) in
      expect_punct st ";";
      st.params <- (name, v) :: st.params;
      Inothing
  | Tkeyword "localparam" ->
      advance st;
      let parse_one () =
        let name = expect_ident st in
        expect_punct st "=";
        let v = parse_number_value st in
        st.localparams <- (name, v) :: st.localparams
      in
      parse_one ();
      while accept_punct st "," do
        parse_one ()
      done;
      expect_punct st ";";
      Inothing
  | Tkeyword "assign" ->
      advance st;
      let assigns = ref [] in
      let parse_one () =
        let lv = parse_lvalue st in
        expect_punct st "=";
        let e = parse_expr st in
        assigns := (lv, e) :: !assigns
      in
      parse_one ();
      while accept_punct st "," do
        parse_one ()
      done;
      expect_punct st ";";
      Iassign (List.rev !assigns)
  | Tkeyword "always" ->
      advance st;
      expect_punct st "@";
      expect_punct st "(";
      let sens =
        if accept_keyword st "posedge" then Ast.Posedge (expect_ident st)
        else if accept_keyword st "negedge" then Ast.Negedge (expect_ident st)
        else if accept_punct st "*" then Ast.Star
        else error st "expected posedge/negedge/*"
      in
      expect_punct st ")";
      let stmts = parse_stmt st in
      Ialways { Ast.sens; stmts }
  | Tident target ->
      advance st;
      parse_instance st target
  | t -> error st (Printf.sprintf "unexpected token %s" (token_to_string t))

let parse_module_def st : Ast.module_def =
  expect_keyword st "module";
  let mod_name = expect_ident st in
  st.params <- [];
  st.localparams <- [];
  (* optional parameter list: #(parameter N = 4, ...) *)
  if accept_punct st "#" then (
    expect_punct st "(";
    let parse_one () =
      ignore (accept_keyword st "parameter");
      let name = expect_ident st in
      expect_punct st "=";
      let v = const_int st (parse_expr st) in
      st.params <- (name, v) :: st.params
    in
    parse_one ();
    while accept_punct st "," do
      parse_one ()
    done;
    expect_punct st ")");
  let ports = ref [] and port_decls = ref [] in
  expect_punct st "(";
  if not (accept_punct st ")") then (
    let parse_one () =
      let p, d = parse_port st in
      ports := p :: !ports;
      match d with Some d -> port_decls := d :: !port_decls | None -> ()
    in
    parse_one ();
    while accept_punct st "," do
      parse_one ()
    done;
    expect_punct st ")");
  expect_punct st ";";
  let decls = ref (List.rev !port_decls) in
  let assigns = ref [] in
  let always_blocks = ref [] in
  let instances = ref [] in
  while not (accept_keyword st "endmodule") do
    match parse_item st with
    | Idecl ds -> decls := !decls @ ds
    | Iassign asgns -> assigns := !assigns @ asgns
    | Ialways a -> always_blocks := !always_blocks @ [ a ]
    | Iinstance i -> instances := !instances @ [ i ]
    | Inothing -> ()
  done;
  {
    Ast.mod_name;
    ports = List.rev !ports;
    params = List.rev st.params;
    localparams = List.rev st.localparams;
    decls = !decls;
    assigns = !assigns;
    always_blocks = !always_blocks;
    instances = !instances;
  }

let parse_design src : Ast.design =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0; params = []; localparams = [] } in
  let modules = ref [] in
  while peek st <> Teof do
    modules := parse_module_def st :: !modules
  done;
  { Ast.modules = List.rev !modules }

let parse_module src : Ast.module_def =
  match (parse_design src).modules with
  | [] -> raise (Parse_error ("no module found", 1))
  | m :: _ -> m
