lib/hdl/lexer.mli: Fpga_bits
