lib/hdl/pp_verilog.ml: Ast Fpga_bits List Printf String
