lib/hdl/lexer.ml: Buffer Char Fpga_bits List Option Printf String
