lib/hdl/parser.ml: Array Ast Fpga_bits Lexer List Printf
