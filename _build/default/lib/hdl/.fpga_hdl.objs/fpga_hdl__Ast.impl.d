lib/hdl/ast.ml: Fpga_bits List String
