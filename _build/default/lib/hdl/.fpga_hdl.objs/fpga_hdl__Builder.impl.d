lib/hdl/builder.ml: Ast Fpga_bits Option
