lib/hdl/builder.mli: Ast Fpga_bits
