lib/hdl/pp_verilog.mli: Ast Fpga_bits
