(* Verilog code generation from the AST. Used to emit instrumented designs
   and to account for the lines of analysis code the tools generate (the
   paper reports 72 LoC on average for the monitors and 522-19,462 LoC for
   LossCheck, section 6.3). *)

module Bits = Fpga_bits.Bits
open Ast

let unop_str = function
  | Bnot -> "~"
  | Lnot -> "!"
  | Neg -> "-"
  | Rand -> "&"
  | Ror -> "|"
  | Rxor -> "^"

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Land -> "&&"
  | Lor -> "||"
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Shl -> "<<"
  | Shr -> ">>"
  | Ashr -> ">>>"

let const_str b =
  let w = Bits.width b in
  if w <= 32 && Bits.width b <= 62 then
    Printf.sprintf "%d'd%d" w (Bits.to_int_trunc b)
  else Printf.sprintf "%d'h%s" w (Bits.to_hex_string b)

let rec expr_str e =
  match e with
  | Const b -> const_str b
  | Ident n -> n
  | Index (n, i) -> Printf.sprintf "%s[%s]" n (expr_str i)
  | Range (n, hi, lo) -> Printf.sprintf "%s[%d:%d]" n hi lo
  | Unop (op, a) -> Printf.sprintf "%s(%s)" (unop_str op) (expr_str a)
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_str a) (binop_str op) (expr_str b)
  | Cond (c, t, f) ->
      Printf.sprintf "(%s ? %s : %s)" (expr_str c) (expr_str t) (expr_str f)
  | Concat es -> Printf.sprintf "{%s}" (String.concat ", " (List.map expr_str es))
  | Repeat (n, a) -> Printf.sprintf "{%d{%s}}" n (expr_str a)

let rec lvalue_str = function
  | Lident n -> n
  | Lindex (n, i) -> Printf.sprintf "%s[%s]" n (expr_str i)
  | Lrange (n, hi, lo) -> Printf.sprintf "%s[%d:%d]" n hi lo
  | Lconcat ls ->
      Printf.sprintf "{%s}" (String.concat ", " (List.map lvalue_str ls))

let range_str w = if w = 1 then "" else Printf.sprintf "[%d:0] " (w - 1)

let rec stmt_lines indent s =
  let pad = String.make indent ' ' in
  match s with
  | Blocking (l, e) -> [ Printf.sprintf "%s%s = %s;" pad (lvalue_str l) (expr_str e) ]
  | Nonblocking (l, e) ->
      [ Printf.sprintf "%s%s <= %s;" pad (lvalue_str l) (expr_str e) ]
  | If (c, t, f) ->
      let head = Printf.sprintf "%sif (%s) begin" pad (expr_str c) in
      let tl = List.concat_map (stmt_lines (indent + 2)) t in
      let fl =
        match f with
        | [] -> []
        | _ ->
            (Printf.sprintf "%send else begin" pad)
            :: List.concat_map (stmt_lines (indent + 2)) f
      in
      (head :: tl) @ fl @ [ pad ^ "end" ]
  | Case (e, items, default) ->
      let head = Printf.sprintf "%scase (%s)" pad (expr_str e) in
      let item_lines it =
        let labels = String.concat ", " (List.map expr_str it.match_exprs) in
        (Printf.sprintf "%s  %s: begin" pad labels)
        :: List.concat_map (stmt_lines (indent + 4)) it.body
        @ [ pad ^ "  end" ]
      in
      let default_lines =
        match default with
        | None -> []
        | Some body ->
            (pad ^ "  default: begin")
            :: List.concat_map (stmt_lines (indent + 4)) body
            @ [ pad ^ "  end" ]
      in
      (head :: List.concat_map item_lines items)
      @ default_lines
      @ [ pad ^ "endcase" ]
  | Display (fmt, args) ->
      let args_str =
        match args with
        | [] -> ""
        | _ -> ", " ^ String.concat ", " (List.map expr_str args)
      in
      [ Printf.sprintf "%s$display(%S%s);" pad fmt args_str ]
  | Finish -> [ pad ^ "$finish;" ]

let decl_lines d =
  let kind = match d.kind with Reg -> "reg" | Wire -> "wire" in
  let mem = match d.depth with None -> "" | Some n -> Printf.sprintf " [0:%d]" (n - 1) in
  let init =
    match d.init with None -> "" | Some b -> Printf.sprintf " = %s" (const_str b)
  in
  [ Printf.sprintf "  %s %s%s%s%s;" kind (range_str d.width) d.name mem init ]

let port_str m p =
  let dir =
    match p.dir with Input -> "input" | Output -> "output" | Inout -> "inout"
  in
  let is_reg =
    match find_decl m p.port_name with
    | Some { kind = Reg; _ } -> " reg"
    | _ -> ""
  in
  Printf.sprintf "%s%s %s%s" dir is_reg (range_str p.port_width) p.port_name

let instance_lines (i : instance) =
  let params =
    match i.params with
    | [] -> ""
    | ps ->
        Printf.sprintf " #(%s)"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf ".%s(%d)" k v) ps))
  in
  let conns =
    String.concat ", "
      (List.map
         (fun c -> Printf.sprintf ".%s(%s)" c.formal (expr_str c.actual))
         i.conns)
  in
  [ Printf.sprintf "  %s%s %s (%s);" i.target params i.inst_name conns ]

let always_lines a =
  let sens =
    match a.sens with
    | Posedge clk -> Printf.sprintf "posedge %s" clk
    | Negedge clk -> Printf.sprintf "negedge %s" clk
    | Star -> "*"
  in
  (Printf.sprintf "  always @(%s) begin" sens)
  :: List.concat_map (stmt_lines 4) a.stmts
  @ [ "  end" ]

let module_lines m =
  let ports = String.concat ",\n  " (List.map (port_str m) m.ports) in
  let header = Printf.sprintf "module %s (\n  %s\n);" m.mod_name ports in
  let param_lines =
    List.map (fun (n, v) -> Printf.sprintf "  parameter %s = %d;" n v) m.params
  in
  let localparam_lines =
    List.map
      (fun (n, v) -> Printf.sprintf "  localparam %s = %s;" n (const_str v))
      m.localparams
  in
  let decls =
    List.concat_map
      (fun d ->
        (* skip decls created implicitly for "output reg" ports *)
        match find_port m d.name with
        | Some _ -> []
        | None -> decl_lines d)
      m.decls
  in
  let assigns =
    List.map
      (fun (l, e) ->
        Printf.sprintf "  assign %s = %s;" (lvalue_str l) (expr_str e))
      m.assigns
  in
  [ header ] @ param_lines @ localparam_lines @ decls @ assigns
  @ List.concat_map instance_lines m.instances
  @ List.concat_map always_lines m.always_blocks
  @ [ "endmodule" ]

let module_to_string m = String.concat "\n" (module_lines m) ^ "\n"

let design_to_string d =
  String.concat "\n\n" (List.map module_to_string d.modules)

(* Lines-of-code accounting for generated instrumentation. *)
let stmt_loc s = List.length (stmt_lines 0 s)
let stmts_loc ss = List.fold_left (fun acc s -> acc + stmt_loc s) 0 ss
let module_loc m = List.length (module_lines m)
let design_loc d = List.fold_left (fun acc m -> acc + module_loc m) 0 d.modules
