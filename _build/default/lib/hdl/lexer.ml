(* Hand-written lexer for the Verilog subset. Produces a token array with
   line numbers so the parser can report precise locations. *)

type token =
  | Tident of string
  | Tnumber of { width : int option; value : Fpga_bits.Bits.t }
  | Tstring of string
  | Tsystem of string  (* $display, $finish, ... *)
  | Tkeyword of string
  | Tpunct of string
  | Teof

type lexed = { tok : token; line : int }

exception Lex_error of string * int

let keywords =
  [
    "module"; "endmodule"; "input"; "output"; "inout"; "reg"; "wire";
    "assign"; "always"; "posedge"; "negedge"; "begin"; "end"; "if"; "else";
    "case"; "endcase"; "default"; "parameter"; "localparam"; "integer";
    "initial"; "signed";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'
let is_hex_digit c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Multi-character punctuation, longest first. *)
let puncts =
  [
    ">>>"; "<<<"; "==="; "!=="; "<="; ">="; "=="; "!="; "&&"; "||"; "<<";
    ">>"; "+"; "-"; "*"; "/"; "%"; "&"; "|"; "^"; "~"; "!"; "?"; ":"; "=";
    ","; ";"; "("; ")"; "["; "]"; "{"; "}"; "@"; "."; "#"; "<"; ">";
  ]

let tokenize (src : string) : lexed list =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let pos = ref 0 in
  let peek k = if !pos + k < n then Some src.[!pos + k] else None in
  let emit tok = toks := { tok; line = !line } :: !toks in
  let starts_with s =
    let l = String.length s in
    !pos + l <= n && String.sub src !pos l = s
  in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then (
      incr line;
      incr pos)
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if starts_with "//" then (
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done)
    else if starts_with "/*" then (
      pos := !pos + 2;
      let closed = ref false in
      while (not !closed) && !pos < n do
        if starts_with "*/" then (
          closed := true;
          pos := !pos + 2)
        else (
          if src.[!pos] = '\n' then incr line;
          incr pos)
      done;
      if not !closed then raise (Lex_error ("unterminated comment", !line)))
    else if c = '"' then (
      let buf = Buffer.create 16 in
      incr pos;
      let closed = ref false in
      while (not !closed) && !pos < n do
        let d = src.[!pos] in
        if d = '"' then (
          closed := true;
          incr pos)
        else if d = '\\' then (
          (match peek 1 with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some other -> Buffer.add_char buf other
          | None -> raise (Lex_error ("bad escape", !line)));
          pos := !pos + 2)
        else (
          Buffer.add_char buf d;
          incr pos)
      done;
      if not !closed then raise (Lex_error ("unterminated string", !line));
      emit (Tstring (Buffer.contents buf)))
    else if c = '$' then (
      let start = !pos + 1 in
      let stop = ref start in
      while !stop < n && is_ident_char src.[!stop] do
        incr stop
      done;
      if !stop = start then raise (Lex_error ("bad system task", !line));
      emit (Tsystem (String.sub src start (!stop - start)));
      pos := !stop)
    else if is_ident_start c then (
      let start = !pos in
      let stop = ref start in
      while !stop < n && is_ident_char src.[!stop] do
        incr stop
      done;
      let word = String.sub src start (!stop - start) in
      if List.mem word keywords then emit (Tkeyword word)
      else emit (Tident word);
      pos := !stop)
    else if is_digit c || (c = '\'' && Option.fold ~none:false ~some:is_ident_char (peek 1))
    then (
      (* Numeric literal: [size]'[base]digits or a bare decimal. *)
      let start = !pos in
      let stop = ref start in
      while !stop < n && (is_digit src.[!stop] || src.[!stop] = '_') do
        incr stop
      done;
      let size_str = String.sub src start (!stop - start) in
      if !stop < n && src.[!stop] = '\'' then (
        let base_pos = !stop + 1 in
        if base_pos >= n then raise (Lex_error ("bad literal", !line));
        let base = Char.lowercase_ascii src.[base_pos] in
        let dstart = base_pos + 1 in
        let dstop = ref dstart in
        while
          !dstop < n && (is_hex_digit src.[!dstop] || src.[!dstop] = '_')
        do
          incr dstop
        done;
        let digits = String.sub src dstart (!dstop - dstart) in
        if digits = "" then raise (Lex_error ("bad literal digits", !line));
        let width =
          if size_str = "" then None
          else
            match
              int_of_string_opt
                (String.concat "" (String.split_on_char '_' size_str))
            with
            | Some w when w >= 1 && w <= 4096 -> Some w
            | _ -> raise (Lex_error ("bad literal size " ^ size_str, !line))
        in
        let w = Option.value width ~default:32 in
        let value =
          try
            match base with
            | 'h' -> Fpga_bits.Bits.of_hex_string ~width:w digits
            | 'b' ->
                Fpga_bits.Bits.resize (Fpga_bits.Bits.of_binary_string digits) w
            | 'd' -> Fpga_bits.Bits.of_decimal_string ~width:w digits
            | _ -> raise (Lex_error (Printf.sprintf "bad base '%c'" base, !line))
          with Invalid_argument msg -> raise (Lex_error (msg, !line))
        in
        emit (Tnumber { width; value });
        pos := !dstop)
      else (
        let value =
          try
            Fpga_bits.Bits.of_decimal_string ~width:32
              (String.concat "" (String.split_on_char '_' size_str))
          with Invalid_argument msg -> raise (Lex_error (msg, !line))
        in
        emit (Tnumber { width = None; value });
        pos := !stop))
    else (
      match List.find_opt starts_with puncts with
      | Some p ->
          emit (Tpunct p);
          pos := !pos + String.length p
      | None ->
          raise
            (Lex_error (Printf.sprintf "unexpected character %C" c, !line)))
  done;
  List.rev ({ tok = Teof; line = !line } :: !toks)

let token_to_string = function
  | Tident s -> s
  | Tnumber { value; _ } -> Fpga_bits.Bits.to_string value
  | Tstring s -> Printf.sprintf "%S" s
  | Tsystem s -> "$" ^ s
  | Tkeyword s -> s
  | Tpunct s -> s
  | Teof -> "<eof>"
