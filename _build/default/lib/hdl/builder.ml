(* A small eDSL for constructing AST fragments from OCaml. Used by tests
   and by the instrumentation passes in lib/core, which synthesize
   monitoring logic programmatically before splicing it into a parsed
   design. *)

module Bits = Fpga_bits.Bits
open Ast

(* Expressions *)

let ident n = Ident n
let const ~width v = Const (Bits.of_int ~width v)
let const_bits b = Const b
let tru = true_expr
let fls = false_expr
let idx n e = Index (n, e)
let idx_int n i = Index (n, const ~width:32 i)
let range n hi lo = Range (n, hi, lo)
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( ==: ) a b = Binop (Eq, a, b)
let ( <>: ) a b = Binop (Neq, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let ( <=: ) a b = Binop (Le, a, b)
let ( >: ) a b = Binop (Gt, a, b)
let ( >=: ) a b = Binop (Ge, a, b)
let ( &&: ) a b = and_expr a b
let ( ||: ) a b = or_expr a b
let ( &: ) a b = Binop (Band, a, b)
let ( |: ) a b = Binop (Bor, a, b)
let ( ^: ) a b = Binop (Bxor, a, b)
let bnot e = Unop (Bnot, e)
let lnot_ e = not_expr e
let sll a n = Binop (Shl, a, const ~width:32 n)
let srl a n = Binop (Shr, a, const ~width:32 n)
let mux c t f = Cond (c, t, f)
let concat es = Concat es

(* Statements *)

let assign_nb n e = Nonblocking (Lident n, e)
let assign_b n e = Blocking (Lident n, e)
let if_ c t f = If (c, t, f)
let when_ c t = If (c, t, [])
let display fmt args = Display (fmt, args)
let finish = Finish

(* Declarations *)

let reg ?init ?depth ~width name =
  { name; kind = Reg; width; depth; init = Option.map (Bits.of_int ~width) init }

let wire ?depth ~width name = { name; kind = Wire; width; depth; init = None }

let input ~width name = { port_name = name; dir = Input; port_width = width }
let output ~width name = { port_name = name; dir = Output; port_width = width }

let module_ ?(params = []) ?(localparams = []) ?(decls = []) ?(assigns = [])
    ?(always_blocks = []) ?(instances = []) name ~ports =
  {
    mod_name = name;
    ports;
    params;
    localparams;
    decls;
    assigns;
    always_blocks;
    instances;
  }

let always_ff ?(clk = "clk") stmts = { sens = Posedge clk; stmts }
let always_comb stmts = { sens = Star; stmts }
