(** In-memory waveform capture, differencing, and ASCII rendering.

    The manual baseline the paper argues against is "inspecting a
    massive waveform"; this module provides that baseline for the
    testbed, plus the one operation that makes it productive: diffing a
    buggy run against a fixed run to find the first cycle at which they
    diverge. *)

type trace = { signal : string; width : int; values : Fpga_bits.Bits.t array }
type t = { cycles : int; traces : trace list }

(** {1 Capture} *)

type recorder

val recorder : string list -> recorder
val sample : recorder -> Simulator.t -> unit
(** Record the named signals' current values; call once per step. *)

val finish : recorder -> t

val capture :
  ?max_cycles:int ->
  top:string ->
  signals:string list ->
  Fpga_hdl.Ast.design ->
  Testbench.stimulus ->
  t
(** Run a design under a stimulus, sampling [signals] every cycle. *)

val trace : t -> string -> trace option

(** {1 Differencing} *)

type divergence = {
  cycle : int;
  signal : string;
  left : Fpga_bits.Bits.t;
  right : Fpga_bits.Bits.t;
}

val diff : t -> t -> divergence list
(** Every point where two captures disagree, in time order, over the
    signals present in both. *)

val first_divergence : t -> t -> divergence option
(** The earliest disagreement — where a buggy run first departs from
    the fixed run. *)

val divergence_to_string : divergence -> string

(** {1 Rendering} *)

val render : ?from_cycle:int -> ?cycles:int -> t -> string
(** ASCII art: 1-bit signals as [_]/[~] rails, wider signals as hex
    values marked at their change points. *)
