(* Value Change Dump (VCD) writer, the waveform format consumed by
   GTKWave and most hardware debug tooling. Memories are omitted, as in
   common simulator defaults. *)

module Bits = Fpga_bits.Bits

type t = {
  buf : Buffer.t;
  signals : (string * string * int) list;  (* name, id code, width *)
  mutable last : (string * Bits.t) list;
  mutable header_done : bool;
}

(* VCD identifier codes: printable ASCII starting at '!'. *)
let id_code i =
  let base = 94 and first = 33 in
  let rec go i acc =
    let c = Char.chr (first + (i mod base)) in
    let acc = String.make 1 c ^ acc in
    if i < base then acc else go ((i / base) - 1) acc
  in
  go i ""

let create (flat : Elaborate.flat) : t =
  let signals =
    Hashtbl.fold
      (fun name (s : Elaborate.fsignal) acc ->
        match s.fs_depth with Some _ -> acc | None -> (name, s.fs_width) :: acc)
      flat.f_signals []
    |> List.sort compare
    |> List.mapi (fun i (name, w) -> (name, id_code i, w))
  in
  { buf = Buffer.create 4096; signals; last = []; header_done = false }

let write_header t =
  Buffer.add_string t.buf "$date reproduction run $end\n";
  Buffer.add_string t.buf "$version fpga-debug simulator $end\n";
  Buffer.add_string t.buf "$timescale 1ns $end\n";
  Buffer.add_string t.buf "$scope module top $end\n";
  List.iter
    (fun (name, id, w) ->
      (* '/'-separated hierarchy is flattened into escaped names *)
      let safe = String.map (fun c -> if c = '/' then '.' else c) name in
      Buffer.add_string t.buf
        (Printf.sprintf "$var wire %d %s %s $end\n" w id safe))
    t.signals;
  Buffer.add_string t.buf "$upscope $end\n$enddefinitions $end\n";
  t.header_done <- true

let value_str v w id =
  if w = 1 then Printf.sprintf "%s%s" (if Bits.is_zero v then "0" else "1") id
  else Printf.sprintf "b%s %s" (Bits.to_binary_string v) id

let sample t (sim : Simulator.t) =
  if not t.header_done then write_header t;
  Buffer.add_string t.buf (Printf.sprintf "#%d\n" (Simulator.cycle sim));
  List.iter
    (fun (name, id, w) ->
      let v = Simulator.read sim name in
      let changed =
        match List.assoc_opt name t.last with
        | Some prev -> not (Bits.equal prev v)
        | None -> true
      in
      if changed then (
        Buffer.add_string t.buf (value_str v w id);
        Buffer.add_char t.buf '\n';
        t.last <- (name, v) :: List.remove_assoc name t.last))
    t.signals

let contents t =
  if not t.header_done then write_header t;
  Buffer.contents t.buf

let save t path =
  let oc = open_out path in
  output_string oc (contents t);
  close_out oc
