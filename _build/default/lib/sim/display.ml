(* $display format-string rendering. Supports the directives used in
   hardware debugging practice: %d, %0d, %h/%x, %b, %c and %%. Unknown
   directives are kept verbatim so malformed format strings are visible
   in the log rather than silently dropped. *)

module Bits = Fpga_bits.Bits

let render (fmt : string) (args : Bits.t list) : string =
  let buf = Buffer.create (String.length fmt + 16) in
  let args = ref args in
  let next_arg () =
    match !args with
    | [] -> None
    | a :: rest ->
        args := rest;
        Some a
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c <> '%' || !i = n - 1 then (
      Buffer.add_char buf c;
      incr i)
    else (
      (* skip an optional 0 width prefix, as in %0d *)
      let j = if fmt.[!i + 1] = '0' && !i + 2 < n then !i + 2 else !i + 1 in
      let spec = fmt.[j] in
      (match spec with
      | '%' -> Buffer.add_char buf '%'
      | 'd' -> (
          match next_arg () with
          | Some a -> Buffer.add_string buf (string_of_int (Bits.to_int_trunc a))
          | None -> Buffer.add_string buf "<missing>")
      | 'h' | 'x' -> (
          match next_arg () with
          | Some a -> Buffer.add_string buf (Bits.to_hex_string a)
          | None -> Buffer.add_string buf "<missing>")
      | 'b' -> (
          match next_arg () with
          | Some a -> Buffer.add_string buf (Bits.to_binary_string a)
          | None -> Buffer.add_string buf "<missing>")
      | 'c' -> (
          match next_arg () with
          | Some a ->
              Buffer.add_char buf (Char.chr (Bits.to_int_trunc a land 0xFF))
          | None -> Buffer.add_string buf "<missing>")
      | other ->
          Buffer.add_char buf '%';
          Buffer.add_char buf other);
      i := j + 1)
  done;
  Buffer.contents buf
