(* In-memory waveform capture, differencing, and ASCII rendering.

   The paper motivates its tools against the baseline workflow of
   "inspecting a massive waveform"; this module makes that baseline
   available (and bearable) for the testbed: capture the signals of
   interest, render them, and - the genuinely useful operation - diff
   the buggy run against the fixed run to find the first cycle at which
   they diverge. *)

module Bits = Fpga_bits.Bits

type trace = { signal : string; width : int; values : Bits.t array }

type t = { cycles : int; traces : trace list }

type recorder = {
  signals : string list;
  mutable samples : (string * Bits.t) list list;  (* newest first *)
}

let recorder signals = { signals; samples = [] }

let sample rec_ (sim : Simulator.t) =
  rec_.samples <-
    List.map (fun s -> (s, Simulator.read sim s)) rec_.signals :: rec_.samples

let finish rec_ : t =
  let rows = List.rev rec_.samples in
  let cycles = List.length rows in
  let traces =
    List.map
      (fun signal ->
        let values =
          Array.of_list (List.map (fun row -> List.assoc signal row) rows)
        in
        let width = if cycles = 0 then 1 else Bits.width values.(0) in
        { signal; width; values })
      rec_.signals
  in
  { cycles; traces }

(* Capture a design over a stimulus in one call. *)
let capture ?(max_cycles = 200) ~top ~signals design
    (stimulus : Testbench.stimulus) : t =
  let sim = Testbench.of_design ~top design in
  let rec_ = recorder signals in
  let i = ref 0 in
  while !i < max_cycles && not (Simulator.finished sim) do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (stimulus !i);
    Simulator.step sim;
    sample rec_ sim;
    incr i
  done;
  finish rec_

let trace t signal = List.find_opt (fun tr -> tr.signal = signal) t.traces

(* ------------------------------------------------------------------ *)
(* Differencing                                                        *)
(* ------------------------------------------------------------------ *)

type divergence = {
  cycle : int;
  signal : string;
  left : Bits.t;
  right : Bits.t;
}

(* All (cycle, signal) points where two captures disagree, in time
   order; only signals present in both captures are compared. *)
let diff (a : t) (b : t) : divergence list =
  let common =
    List.filter (fun (tr : trace) -> trace b tr.signal <> None) a.traces
  in
  let n = min a.cycles b.cycles in
  let out = ref [] in
  for cycle = 0 to n - 1 do
    List.iter
      (fun (tr : trace) ->
        let other = Option.get (trace b tr.signal) in
        let va = tr.values.(cycle) and vb = other.values.(cycle) in
        if not (Bits.equal va vb) then
          out := { cycle; signal = tr.signal; left = va; right = vb } :: !out)
      common
  done;
  List.rev !out

let first_divergence a b = match diff a b with [] -> None | d :: _ -> Some d

let divergence_to_string d =
  Printf.sprintf "cycle %d: %s = %s vs %s" d.cycle d.signal
    (Bits.to_string d.left) (Bits.to_string d.right)

(* ------------------------------------------------------------------ *)
(* ASCII rendering                                                     *)
(* ------------------------------------------------------------------ *)

(* Render a window of the waveform: single-bit signals as _/~ rails,
   multi-bit signals as hex values at their change points. *)
let render ?(from_cycle = 0) ?(cycles = 32) (t : t) : string =
  let buf = Buffer.create 1024 in
  let upto = min t.cycles (from_cycle + cycles) in
  let name_width =
    List.fold_left (fun acc (tr : trace) -> max acc (String.length tr.signal)) 8 t.traces
  in
  Buffer.add_string buf (String.make name_width ' ');
  Buffer.add_string buf "  ";
  for c = from_cycle to upto - 1 do
    if c mod 5 = 0 then Buffer.add_string buf (Printf.sprintf "%-5d" c)
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun (tr : trace) ->
      Buffer.add_string buf (Printf.sprintf "%-*s  " name_width tr.signal);
      if tr.width = 1 then
        for c = from_cycle to upto - 1 do
          Buffer.add_char buf (if Bits.is_zero tr.values.(c) then '_' else '~')
        done
      else (
        let last = ref None in
        for c = from_cycle to upto - 1 do
          let v = tr.values.(c) in
          let changed =
            match !last with None -> true | Some p -> not (Bits.equal p v)
          in
          last := Some v;
          if changed then (
            let hex = Bits.to_hex_string v in
            Buffer.add_char buf '|';
            Buffer.add_string buf hex)
          else Buffer.add_char buf '.'
        done);
      Buffer.add_char buf '\n')
    t.traces;
  Buffer.contents buf
