lib/sim/eval.ml: Array Fpga_bits Fpga_hdl Hashtbl List Printf
