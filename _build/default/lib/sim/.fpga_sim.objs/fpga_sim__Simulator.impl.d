lib/sim/simulator.ml: Array Display Elaborate Eval Fpga_bits Fpga_hdl Hashtbl Int List Option Printf
