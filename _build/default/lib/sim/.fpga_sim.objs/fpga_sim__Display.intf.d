lib/sim/display.mli: Fpga_bits
