lib/sim/waveform.ml: Array Buffer Fpga_bits List Option Printf Simulator String Testbench
