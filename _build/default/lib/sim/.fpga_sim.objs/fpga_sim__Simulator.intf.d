lib/sim/simulator.mli: Elaborate Fpga_bits
