lib/sim/testbench.ml: Elaborate Fpga_bits Fpga_hdl List Simulator
