lib/sim/elaborate.ml: Fpga_bits Fpga_hdl Hashtbl List Option Printf
