lib/sim/testbench.mli: Fpga_bits Fpga_hdl Simulator
