lib/sim/eval.mli: Fpga_bits Fpga_hdl Hashtbl
