lib/sim/vcd.ml: Buffer Char Elaborate Fpga_bits Hashtbl List Printf Simulator String
