lib/sim/elaborate.mli: Fpga_bits Fpga_hdl Hashtbl
