lib/sim/waveform.mli: Fpga_bits Fpga_hdl Simulator Testbench
