lib/sim/display.ml: Buffer Char Fpga_bits String
