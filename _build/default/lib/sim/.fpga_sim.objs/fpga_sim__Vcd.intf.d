lib/sim/vcd.mli: Elaborate Simulator
