(** Value Change Dump (VCD) writer — the waveform format consumed by
    GTKWave and most hardware debug tooling. Memories are omitted, as in
    common simulator defaults; hierarchical '/' separators are rendered
    as dots. *)

type t

val create : Elaborate.flat -> t
(** A dump covering every non-memory signal of the elaborated design. *)

val sample : t -> Simulator.t -> unit
(** Record the signals that changed since the previous sample, stamped
    with the simulator's cycle count. Call once per {!Simulator.step}. *)

val contents : t -> string
(** The VCD text accumulated so far (header included). *)

val save : t -> string -> unit
(** Write {!contents} to a file. *)
