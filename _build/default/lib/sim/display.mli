(** $display format-string rendering.

    Supports the directives hardware debugging actually uses: [%d],
    [%0d], [%h]/[%x], [%b], [%c], and [%%]. Unknown directives are kept
    verbatim so malformed format strings stay visible in the log. *)

val render : string -> Fpga_bits.Bits.t list -> string
(** [render fmt args] substitutes [args] positionally; missing
    arguments render as ["<missing>"]. *)
