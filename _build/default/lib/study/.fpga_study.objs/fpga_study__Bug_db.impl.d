lib/study/bug_db.ml: List Taxonomy
