lib/study/taxonomy.mli:
