lib/study/taxonomy.ml:
