lib/study/snippets.ml: List Taxonomy
