lib/study/bug_db.mli: Taxonomy
