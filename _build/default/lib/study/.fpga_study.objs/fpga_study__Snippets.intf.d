lib/study/snippets.mli: Taxonomy
