(** The root-cause-based bug taxonomy of section 3: three classes
    mirroring Li et al.'s software bug study, thirteen subclasses. *)

type bug_class =
  | Data_mis_access  (** cf. software memory bugs *)
  | Communication  (** cf. software concurrency bugs *)
  | Semantic  (** cf. software semantic bugs *)

type subclass =
  | Buffer_overflow
  | Bit_truncation
  | Misindexing
  | Endianness_mismatch
  | Failure_to_update
  | Deadlock
  | Producer_consumer_mismatch
  | Signal_asynchrony
  | Use_without_valid
  | Protocol_violation
  | Api_misuse
  | Incomplete_implementation
  | Erroneous_expression

type symptom = App_stuck | Data_loss | Incorrect_output | External_error

val class_of_subclass : subclass -> bug_class
val all_subclasses : subclass list

val class_name : bug_class -> string
val subclass_name : subclass -> string
val symptom_name : symptom -> string

val common_symptoms : subclass -> symptom list
(** The checkmark columns of Table 1. *)

val common_fix : subclass -> string
(** The typical repair, from the "Fixes" paragraphs of sections 3.2-3.4. *)
