(** Simplified, runnable code snippets for each bug subclass — the
    explanatory snippets the paper's artifact ships alongside the
    testbed. Each is a minimal buggy/fixed module pair distilled from
    the section 3 discussion; the test suite simulates both under
    [demo_inputs] and checks that they diverge on [observe]. *)

type t = {
  subclass : Taxonomy.subclass;
  title : string;
  explanation : string;
  top : string;
  buggy : string;  (** Verilog source *)
  fixed : string;
  demo_inputs : (string * int) list list;
      (** per-cycle input assignments driving the demonstration *)
  observe : string list;  (** output signals whose traces expose the bug *)
}

val all : t list
(** One snippet per subclass, in Table 1 order. *)

val find : Taxonomy.subclass -> t option
