(* The 68-bug study database (section 3). Each record is one bug found
   in an open-source FPGA design, classified by root-cause subclass.
   Aggregating this table regenerates Table 1. The 20 bugs with a
   [testbed_id] are the ones reproduced push-button in fpga_testbed
   (Table 2). *)

open Taxonomy

type origin =
  | Hardcloud  (* HARP acceleration framework samples *)
  | Optimus_hv  (* HARP hypervisor *)
  | Zipcpu  (* SDSPI, AXI demos, FFT from zipcpu.com *)
  | Github_top  (* most-starred FPGA projects *)
  | Developer  (* direct developer consultation (FADD) *)

type bug = {
  id : int;
  application : string;
  origin : origin;
  subclass : subclass;
  symptoms : symptom list;
  description : string;
  testbed_id : string option;  (* Table 2 identifier when reproduced *)
}

let mk id application origin subclass ?(symptoms = common_symptoms subclass)
    ?testbed description =
  { id; application; origin; subclass; symptoms; description; testbed_id = testbed }

let all : bug list =
  [
    (* ---- Buffer Overflow (5) ------------------------------------- *)
    mk 1 "Reed-Solomon Decoder" Hardcloud Buffer_overflow ~testbed:"D1"
      ~symptoms:[ App_stuck; Data_loss; External_error ]
      "syndrome buffer indexed past its end while streaming blocks";
    mk 2 "Grayscale" Hardcloud Buffer_overflow ~testbed:"D2"
      ~symptoms:[ App_stuck; Data_loss ]
      "pixel line buffer overflows when bursts arrive back-to-back";
    mk 3 "Optimus" Optimus_hv Buffer_overflow ~testbed:"D3"
      ~symptoms:[ App_stuck; Data_loss; External_error ]
      "MMIO response buffer overflow under multiplexed guests";
    mk 4 "Frame FIFO" Github_top Buffer_overflow ~testbed:"D4"
      ~symptoms:[ Data_loss ]
      "frame write pointer wraps over unread frame data";
    mk 5 "WiFi Controller" Github_top Buffer_overflow
      "packet staging buffer overflow on maximum-length frames";
    (* ---- Bit Truncation (12) ------------------------------------- *)
    mk 6 "SHA512" Hardcloud Bit_truncation ~testbed:"D5"
      ~symptoms:[ Incorrect_output; External_error ]
      "cast to 42 bits before the shift drops address bits [47:42]";
    mk 7 "FFT" Zipcpu Bit_truncation ~testbed:"D6"
      ~symptoms:[ Incorrect_output ]
      "butterfly product truncated before rounding stage";
    mk 8 "Nyuzi GPGPU" Github_top Bit_truncation
      "instruction immediate sign bits lost in decode";
    mk 9 "Nyuzi GPGPU" Github_top Bit_truncation
      "floating-point exponent field narrowed in conversion";
    mk 10 "CVA6 RISC-V" Github_top Bit_truncation
      "physical address truncated to virtual width in PTW";
    mk 11 "CVA6 RISC-V" Github_top Bit_truncation
      "performance counter truncated on CSR read";
    mk 12 "VexRiscv" Github_top Bit_truncation
      "branch target calculation loses carry into bit 31";
    mk 13 "Bitcoin Miner" Github_top Bit_truncation
      "nonce counter truncated when chained across cores";
    mk 14 "Corundum NIC" Github_top Bit_truncation
      "PCIe DMA length field truncated for 4KB+ transfers";
    mk 15 "verilog-ethernet" Github_top Bit_truncation
      "checksum accumulator narrower than folded sum";
    mk 16 "Analog Devices HDL" Github_top Bit_truncation
      "DMA burst length register truncated against spec";
    mk 17 "verilog-axis" Github_top Bit_truncation
      "keep-mask width mismatch on bus width conversion";
    (* ---- Misindexing (5) ------------------------------------------ *)
    mk 18 "FADD" Developer Misindexing ~testbed:"D7"
      ~symptoms:[ Incorrect_output ]
      "fraction extracted as bits [23:0] instead of [22:0]";
    mk 19 "AXI-Stream Switch" Github_top Misindexing ~testbed:"D8"
      ~symptoms:[ Incorrect_output ]
      "destination port decoded from the wrong tdest bits";
    mk 20 "WiFi Controller" Github_top Misindexing
      "OFDM subcarrier table indexed off by one";
    mk 21 "Bitcoin Miner" Github_top Misindexing
      "midstate word selected with reversed word index";
    mk 22 "Analog Devices HDL" Github_top Misindexing
      "channel enable bit read from adjacent channel field";
    (* ---- Endianness Mismatch (1) ---------------------------------- *)
    mk 23 "SDSPI" Zipcpu Endianness_mismatch ~testbed:"D9"
      ~symptoms:[ Incorrect_output ]
      "little-endian sector data passed to big-endian CRC unit";
    (* ---- Failure-to-Update (5) ------------------------------------ *)
    mk 24 "SHA512" Hardcloud Failure_to_update ~testbed:"D10"
      ~symptoms:[ Incorrect_output ]
      "round counter not reset between independent digests";
    mk 25 "Frame FIFO" Github_top Failure_to_update ~testbed:"D11"
      ~symptoms:[ Data_loss ]
      "drop flag not cleared after an aborted frame";
    mk 26 "Frame FIFO" Github_top Failure_to_update ~testbed:"D12"
      ~symptoms:[ Incorrect_output ]
      "frame length latch kept stale on back-to-back frames";
    mk 27 "Frame Length Measurer" Github_top Failure_to_update ~testbed:"D13"
      ~symptoms:[ Incorrect_output ]
      "output counter not reset by the reset signal";
    mk 28 "Corundum NIC" Github_top Failure_to_update
      "completion credit counter missing reset arc";
    (* ---- Deadlock (3) ---------------------------------------------- *)
    mk 29 "SDSPI" Zipcpu Deadlock ~testbed:"C1" ~symptoms:[ App_stuck ]
      "command and data engines wait on each other's busy flags";
    mk 30 "Nyuzi GPGPU" Github_top Deadlock
      "L2 writeback queue waits on fill that waits on writeback";
    mk 31 "CVA6 RISC-V" Github_top Deadlock
      "store buffer drain gated by a flush that needs the drain";
    (* ---- Producer-Consumer Mismatch (3) ----------------------------- *)
    mk 32 "Optimus" Optimus_hv Producer_consumer_mismatch ~testbed:"C2"
      ~symptoms:[ App_stuck; Data_loss; External_error ]
      "two guests produce responses in one cycle, one consumer slot";
    mk 33 "WiFi Controller" Github_top Producer_consumer_mismatch
      "RF sample producer outpaces FFT consumer without backpressure";
    mk 34 "verilog-ethernet" Github_top Producer_consumer_mismatch
      "MAC produces two words per cycle into one-word adapter";
    (* ---- Signal Asynchrony (10) ------------------------------------ *)
    mk 35 "SDSPI" Zipcpu Signal_asynchrony ~testbed:"C3"
      ~symptoms:[ Incorrect_output ]
      "response valid asserted one cycle before buffered response";
    mk 36 "AXI-Stream FIFO" Github_top Signal_asynchrony ~testbed:"C4"
      ~symptoms:[ Data_loss ]
      "tvalid not delayed with registered tdata on output stage";
    mk 37 "WiFi Controller" Github_top Signal_asynchrony
      "IQ sample strobe leads sample bus by a cycle";
    mk 38 "Nyuzi GPGPU" Github_top Signal_asynchrony
      "dcache hit flag unsynchronized with returned line";
    mk 39 "CVA6 RISC-V" Github_top Signal_asynchrony
      "exception cause updated a cycle after exception valid";
    mk 40 "VexRiscv" Github_top Signal_asynchrony
      "interrupt pending sampled in a different stage than enable";
    mk 41 "Bitcoin Miner" Github_top Signal_asynchrony
      "golden nonce flag without the nonce it refers to";
    mk 42 "Corundum NIC" Github_top Signal_asynchrony
      "descriptor valid leads descriptor fields after bypass";
    mk 43 "verilog-ethernet" Github_top Signal_asynchrony
      "FCS error strobe misaligned with last data beat";
    mk 44 "Analog Devices HDL" Github_top Signal_asynchrony
      "DMA request toggles before address register settles";
    (* ---- Use-Without-Valid (1) -------------------------------------- *)
    mk 45 "verilog-axis" Github_top Use_without_valid
      ~symptoms:[ Incorrect_output ]
      "accumulates tdata on cycles where tvalid is low";
    (* ---- Protocol Violation (3) -------------------------------------- *)
    mk 46 "AXI-Lite Demo" Zipcpu Protocol_violation ~testbed:"S1"
      ~symptoms:[ External_error ]
      "bvalid raised without pending write, violating AXI ordering";
    mk 47 "AXI-Stream Demo" Zipcpu Protocol_violation ~testbed:"S2"
      ~symptoms:[ External_error ]
      "tdata changed while tvalid high and tready low";
    mk 48 "Corundum NIC" Github_top Protocol_violation
      "PCIe completion header format violates spec on odd lengths";
    (* ---- API Misuse (3) ----------------------------------------------- *)
    mk 49 "Grayscale" Hardcloud Api_misuse
      "CCI-P request channel used with swapped address/metadata";
    mk 50 "Analog Devices HDL" Github_top Api_misuse
      "comparator macro instantiated with operands reversed";
    mk 51 "VexRiscv" Github_top Api_misuse
      "FIFO IP configured in normal mode but used as show-ahead";
    (* ---- Incomplete Implementation (7) --------------------------------- *)
    mk 52 "AXI-Stream Adapter" Github_top Incomplete_implementation
      ~testbed:"S3" ~symptoms:[ Incorrect_output ]
      "narrow-to-wide path ignores a partial final word";
    mk 53 "WiFi Controller" Github_top Incomplete_implementation
      "short-preamble frames not handled by the sync FSM";
    mk 54 "Nyuzi GPGPU" Github_top Incomplete_implementation
      "denormal operands unhandled in FP pipeline";
    mk 55 "CVA6 RISC-V" Github_top Incomplete_implementation
      "misaligned atomics fall through without exception";
    mk 56 "VexRiscv" Github_top Incomplete_implementation
      "debug single-step ignores delay-slot state";
    mk 57 "corundum" Github_top Incomplete_implementation
      "timestamping absent for oversized frames";
    mk 58 "verilog-ethernet" Github_top Incomplete_implementation
      "pause frames parsed but never applied to TX";
    (* ---- Erroneous Expression (10) -------------------------------------- *)
    mk 59 "Reed-Solomon Decoder" Hardcloud Erroneous_expression
      "control: loop bound uses < where <= required (control-flow)";
    mk 60 "SHA512" Hardcloud Erroneous_expression
      "data: message schedule rotation amount wrong (data-flow)";
    mk 61 "FFT" Zipcpu Erroneous_expression
      "control: stage-done predicate tests wrong counter (control-flow)";
    mk 62 "WiFi Controller" Github_top Erroneous_expression
      "data: scrambler polynomial tap XOR wrong bit (data-flow)";
    mk 63 "Nyuzi GPGPU" Github_top Erroneous_expression
      "control: cache way selection uses & for && (control-flow)";
    mk 64 "CVA6 RISC-V" Github_top Erroneous_expression
      "data: branch offset computed with + instead of - (data-flow)";
    mk 65 "VexRiscv" Github_top Erroneous_expression
      "control: hazard check compares wrong pipeline stage (control-flow)";
    mk 66 "Bitcoin Miner" Github_top Erroneous_expression
      "data: SHA round constant table entry wrong (data-flow)";
    mk 67 "Corundum NIC" Github_top Erroneous_expression
      "control: ring full test off by one (control-flow)";
    mk 68 "Analog Devices HDL" Github_top Erroneous_expression
      "data: two's-complement conversion drops sign (data-flow)";
  ]

(* ------------------------------------------------------------------ *)
(* Aggregations for Table 1                                            *)
(* ------------------------------------------------------------------ *)

let count subclass =
  List.length (List.filter (fun b -> b.subclass = subclass) all)

let count_class cls =
  List.length
    (List.filter (fun b -> class_of_subclass b.subclass = cls) all)

let total = List.length all

type table1_row = {
  row_class : bug_class;
  row_subclass : subclass;
  row_count : int;
  row_symptoms : symptom list;
}

let table1 : table1_row list =
  List.map
    (fun sc ->
      {
        row_class = class_of_subclass sc;
        row_subclass = sc;
        row_count = count sc;
        row_symptoms = common_symptoms sc;
      })
    all_subclasses

let testbed_bugs = List.filter (fun b -> b.testbed_id <> None) all

let find_by_testbed_id id =
  List.find_opt (fun b -> b.testbed_id = Some id) all

(* ------------------------------------------------------------------ *)
(* Corpus statistics (section 3, "Bug Collection")                     *)
(* ------------------------------------------------------------------ *)

(* The survey of the 50 most popular FPGA projects on GitHub that
   motivates mining commit histories instead of bug trackers. *)
type corpus_stats = {
  surveyed_projects : int;
  without_bug_tracker_pct : int;
  without_repro_tests_pct : int;
}

let corpus =
  {
    surveyed_projects = 50;
    without_bug_tracker_pct = 56;
    without_repro_tests_pct = 88;
  }

let count_origin origin =
  List.length (List.filter (fun b -> b.origin = origin) all)

let origins = [ Hardcloud; Optimus_hv; Zipcpu; Github_top; Developer ]

let origin_name = function
  | Hardcloud -> "HardCloud (HARP samples)"
  | Optimus_hv -> "Optimus hypervisor"
  | Zipcpu -> "ZipCPU designs"
  | Github_top -> "top GitHub projects"
  | Developer -> "developer consultation"
