(* The root-cause-based bug taxonomy of section 3: three classes
   mirroring Li et al.'s software bug study, thirteen subclasses. *)

type bug_class = Data_mis_access | Communication | Semantic

type subclass =
  (* data mis-access *)
  | Buffer_overflow
  | Bit_truncation
  | Misindexing
  | Endianness_mismatch
  | Failure_to_update
  (* communication *)
  | Deadlock
  | Producer_consumer_mismatch
  | Signal_asynchrony
  | Use_without_valid
  (* semantic *)
  | Protocol_violation
  | Api_misuse
  | Incomplete_implementation
  | Erroneous_expression

type symptom = App_stuck | Data_loss | Incorrect_output | External_error

let class_of_subclass = function
  | Buffer_overflow | Bit_truncation | Misindexing | Endianness_mismatch
  | Failure_to_update ->
      Data_mis_access
  | Deadlock | Producer_consumer_mismatch | Signal_asynchrony
  | Use_without_valid ->
      Communication
  | Protocol_violation | Api_misuse | Incomplete_implementation
  | Erroneous_expression ->
      Semantic

let all_subclasses =
  [
    Buffer_overflow; Bit_truncation; Misindexing; Endianness_mismatch;
    Failure_to_update; Deadlock; Producer_consumer_mismatch; Signal_asynchrony;
    Use_without_valid; Protocol_violation; Api_misuse;
    Incomplete_implementation; Erroneous_expression;
  ]

let class_name = function
  | Data_mis_access -> "Data Mis-Access"
  | Communication -> "Communication"
  | Semantic -> "Semantic"

let subclass_name = function
  | Buffer_overflow -> "Buffer Overflow"
  | Bit_truncation -> "Bit Truncation"
  | Misindexing -> "Misindexing"
  | Endianness_mismatch -> "Endianness Mismatch"
  | Failure_to_update -> "Failure-to-Update"
  | Deadlock -> "Deadlock"
  | Producer_consumer_mismatch -> "Producer-Consumer Mismatch"
  | Signal_asynchrony -> "Signal Asynchrony"
  | Use_without_valid -> "Use-Without-Valid"
  | Protocol_violation -> "Protocol Violation"
  | Api_misuse -> "API Misuse"
  | Incomplete_implementation -> "Incomplete Implementation"
  | Erroneous_expression -> "Erroneous Expression"

let symptom_name = function
  | App_stuck -> "App Stuck"
  | Data_loss -> "Data Loss"
  | Incorrect_output -> "Incorrect Output"
  | External_error -> "External"

(* Common symptoms per subclass, the checkmark columns of Table 1. *)
let common_symptoms = function
  | Buffer_overflow -> [ Data_loss ]
  | Bit_truncation -> [ Incorrect_output; External_error ]
  | Misindexing -> [ Data_loss; Incorrect_output ]
  | Endianness_mismatch -> [ Incorrect_output ]
  | Failure_to_update -> [ Data_loss; Incorrect_output; External_error ]
  | Deadlock -> [ App_stuck ]
  | Producer_consumer_mismatch -> [ App_stuck; Data_loss; Incorrect_output ]
  | Signal_asynchrony -> [ Incorrect_output ]
  | Use_without_valid -> [ Incorrect_output ]
  | Protocol_violation -> [ App_stuck; Incorrect_output; External_error ]
  | Api_misuse -> [ Incorrect_output ]
  | Incomplete_implementation -> [ Incorrect_output ]
  | Erroneous_expression -> [ Incorrect_output ]

(* Typical repairs per subclass, from the "Fixes" paragraphs of
   sections 3.2-3.4. *)
let common_fix = function
  | Buffer_overflow ->
      "enlarge the buffer or change the design to avoid the overflow"
  | Bit_truncation ->
      "shift before casting, or grow the variable that truncates"
  | Misindexing -> "correct the index"
  | Endianness_mismatch -> "swap the bytes to match the consumer's endianness"
  | Failure_to_update -> "reset/update every relevant signal"
  | Deadlock -> "break the circular dependency (e.g. initialize one side)"
  | Producer_consumer_mismatch ->
      "buffer the produced values, or backpressure the producer"
  | Signal_asynchrony -> "delay the companion signal to re-synchronize"
  | Use_without_valid -> "guard the use with the valid interface"
  | Protocol_violation ->
      "match the implementation to the protocol, covering corner cases"
  | Api_misuse -> "fix the connections/configuration to the module's API"
  | Incomplete_implementation -> "implement the missing functionality"
  | Erroneous_expression -> "correct the control- or data-flow expression"
