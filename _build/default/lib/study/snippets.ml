(* Simplified, runnable code snippets for each bug subclass - the
   explanatory snippets the paper's artifact ships alongside the
   testbed. Each snippet is a minimal module pair (buggy, fixed)
   distilled from the section 3 discussion; the test suite simulates
   both under [demo_inputs] and checks that the buggy variant diverges
   on the [observe] signals. *)

open Taxonomy

type t = {
  subclass : subclass;
  title : string;
  explanation : string;
  top : string;
  buggy : string;  (* Verilog source *)
  fixed : string;
  (* per-cycle input assignments driving the demonstration *)
  demo_inputs : (string * int) list list;
  (* output signals whose traces expose the bug *)
  observe : string list;
}

let mk subclass title explanation top buggy fixed demo_inputs observe =
  { subclass; title; explanation; top; buggy; fixed; demo_inputs; observe }

(* --------------------------------------------------------------- *)

let buffer_overflow =
  mk Buffer_overflow "write past a non-power-of-two buffer"
    "mybuf has 6 one-bit elements; a write at offset >= 6 is silently \
     dropped (section 3.2.1 case 2), so the value never reads back"
    "snippet"
    {|
module snippet (input clk, input [3:0] offset, input value, input we,
                input [3:0] roffset, output rb);
  reg mybuf [0:5];
  assign rb = mybuf[roffset];
  always @(posedge clk) if (we) mybuf[offset] <= value;
endmodule
|}
    {|
module snippet (input clk, input [3:0] offset, input value, input we,
                input [3:0] roffset, output rb);
  reg mybuf [0:15];
  assign rb = mybuf[roffset];
  always @(posedge clk) if (we) mybuf[offset] <= value;
endmodule
|}
    [
      [ ("we", 1); ("offset", 9); ("value", 1); ("roffset", 9) ];
      [ ("we", 0) ]; [];
    ]
    [ "rb" ]

let bit_truncation =
  mk Bit_truncation "cast before shift drops meaningful bits"
    "right holds meaningful data in bits [47:6]; casting to 42 bits \
     before the shift truncates bits [47:42] (the section 3.2.2 example)"
    "snippet"
    {|
module snippet (input clk, input [63:0] right, output reg [41:0] left);
  always @(posedge clk) left <= right[41:0] >> 6;
endmodule
|}
    {|
module snippet (input clk, input [63:0] right, output reg [41:0] left);
  always @(posedge clk) left <= right[47:6];
endmodule
|}
    [ [ ("right", 0x0000_4400_0000_0080) ]; []; [] ]
    [ "left" ]

let misindexing =
  mk Misindexing "IEEE-754 fraction extracted with the wrong bits"
    "the fraction of a 32-bit float is bits [22:0]; extracting [23:0] \
     folds the exponent's low bit into the mantissa (section 3.2.3)"
    "snippet"
    {|
module snippet (input clk, input [31:0] f, output reg [23:0] frac);
  always @(posedge clk) frac <= f[23:0];
endmodule
|}
    {|
module snippet (input clk, input [31:0] f, output reg [23:0] frac);
  always @(posedge clk) frac <= {1'b0, f[22:0]};
endmodule
|}
    [ [ ("f", 0x3FC0_0000) ]; []; [] ]
    [ "frac" ]

let endianness_mismatch =
  mk Endianness_mismatch "little-endian store, big-endian consumer"
    "the first (most significant on the wire) byte is stored in the low \
     half before the word reaches a big-endian function (section 3.2.4)"
    "snippet"
    {|
module snippet (input clk, input [7:0] most, input [7:0] least,
                output reg [15:0] out);
  reg [15:0] data;
  always @(posedge clk) begin
    data[7:0] <= least;
    data[15:8] <= most;
    out <= {data[7:0], data[15:8]} ^ 16'h00ff;
  end
endmodule
|}
    {|
module snippet (input clk, input [7:0] most, input [7:0] least,
                output reg [15:0] out);
  reg [15:0] data;
  always @(posedge clk) begin
    data[7:0] <= most;
    data[15:8] <= least;
    out <= {data[7:0], data[15:8]} ^ 16'h00ff;
  end
endmodule
|}
    [ [ ("most", 0x12); ("least", 0x34) ]; []; [] ]
    [ "out" ]

let failure_to_update =
  mk Failure_to_update "one counter reset, the other forgotten"
    "reset clears input_counter but not output_counter, the \
     section 3.2.5 example verbatim"
    "snippet"
    {|
module snippet (input clk, input reset, input input_valid,
                input output_ready,
                output reg [7:0] input_counter,
                output reg [7:0] output_counter);
  always @(posedge clk) begin
    if (input_valid) input_counter <= input_counter + 8'd1;
    if (output_ready) output_counter <= output_counter + 8'd1;
    if (reset) input_counter <= 8'd0;
  end
endmodule
|}
    {|
module snippet (input clk, input reset, input input_valid,
                input output_ready,
                output reg [7:0] input_counter,
                output reg [7:0] output_counter);
  always @(posedge clk) begin
    if (input_valid) input_counter <= input_counter + 8'd1;
    if (output_ready) output_counter <= output_counter + 8'd1;
    if (reset) begin
      input_counter <= 8'd0;
      output_counter <= 8'd0;
    end
  end
endmodule
|}
    [
      [ ("input_valid", 1); ("output_ready", 1); ("reset", 0) ];
      [ ("reset", 1); ("input_valid", 0); ("output_ready", 0) ];
      [ ("reset", 0) ];
    ]
    [ "input_counter"; "output_counter" ]

let deadlock =
  mk Deadlock "circular control dependency"
    "b waits for a and a waits for b, both initialized to zero: the \
     assignment to out never executes (section 3.3.1)"
    "snippet"
    {|
module snippet (input clk, input [7:0] result, output reg [7:0] out);
  reg a;
  reg b;
  always @(posedge clk) begin
    if (a) b <= 1'b1;
    if (b) a <= 1'b1;
    if (a) out <= result;
  end
endmodule
|}
    {|
module snippet (input clk, input [7:0] result, output reg [7:0] out);
  reg a = 1'b1;
  reg b;
  always @(posedge clk) begin
    if (a) b <= 1'b1;
    if (b) a <= 1'b1;
    if (a) out <= result;
  end
endmodule
|}
    [ [ ("result", 0x5A) ]; []; []; [] ]
    [ "out" ]

let producer_consumer =
  mk Producer_consumer_mismatch "two producers, one slot"
    "when x_valid and y_valid hold in the same cycle only x is kept; y's \
     value is lost (section 3.3.2)"
    "snippet"
    {|
module snippet (input clk, input x_valid, input [7:0] x,
                input y_valid, input [7:0] y,
                output reg [7:0] out, output reg [7:0] out2);
  always @(posedge clk) begin
    if (x_valid) out <= x;
    else if (y_valid) out <= y;
  end
endmodule
|}
    {|
module snippet (input clk, input x_valid, input [7:0] x,
                input y_valid, input [7:0] y,
                output reg [7:0] out, output reg [7:0] out2);
  always @(posedge clk) begin
    if (x_valid) out <= x;
    if (y_valid) out2 <= y;
  end
endmodule
|}
    [ [ ("x_valid", 1); ("x", 0x11); ("y_valid", 1); ("y", 0x22) ]; []; [] ]
    [ "out"; "out2" ]

let signal_asynchrony =
  mk Signal_asynchrony "valid one cycle ahead of the data"
    "the response is buffered for an extra cycle but the valid flag is \
     raised immediately (section 3.3.3)"
    "snippet"
    {|
module snippet (input clk, input request, input [7:0] input_data,
                output reg final_response_valid,
                output reg [7:0] final_response);
  reg [7:0] buffered_response;
  always @(posedge clk) begin
    if (request) buffered_response <= input_data + 8'd1;
    final_response <= buffered_response;
    if (request) final_response_valid <= 1'b1;
    else final_response_valid <= 1'b0;
  end
endmodule
|}
    {|
module snippet (input clk, input request, input [7:0] input_data,
                output reg final_response_valid,
                output reg [7:0] final_response);
  reg [7:0] buffered_response;
  reg delayed_response_valid;
  always @(posedge clk) begin
    if (request) buffered_response <= input_data + 8'd1;
    final_response <= buffered_response;
    if (request) delayed_response_valid <= 1'b1;
    else delayed_response_valid <= 1'b0;
    final_response_valid <= delayed_response_valid;
  end
endmodule
|}
    [ [ ("request", 1); ("input_data", 0x40) ]; [ ("request", 0) ]; []; [] ]
    [ "final_response_valid"; "final_response" ]

let use_without_valid =
  mk Use_without_valid "accumulating invalid data"
    "data is guarded by data_valid but the accumulator uses it every \
     cycle (section 3.3.4)"
    "snippet"
    {|
module snippet (input clk, input data_valid, input [7:0] data,
                output reg [7:0] sum);
  always @(posedge clk) sum <= sum + data;
endmodule
|}
    {|
module snippet (input clk, input data_valid, input [7:0] data,
                output reg [7:0] sum);
  always @(posedge clk) begin
    if (data_valid) sum <= sum + data;
    else sum <= sum;
  end
endmodule
|}
    [
      [ ("data_valid", 1); ("data", 5) ];
      [ ("data_valid", 0); ("data", 99) ];
      [ ("data", 0) ];
    ]
    [ "sum" ]

let protocol_violation =
  mk Protocol_violation "response before the write data"
    "BVALID rises after the address handshake alone, before any data \
     beat arrived - an AXI ordering violation (section 3.4.1)"
    "snippet"
    {|
module snippet (input clk, input awvalid, input wvalid,
                output reg bvalid, output reg w_seen);
  reg aw_seen;
  always @(posedge clk) begin
    if (awvalid) aw_seen <= 1'b1;
    if (wvalid) w_seen <= 1'b1;
    if (aw_seen) bvalid <= 1'b1;
  end
endmodule
|}
    {|
module snippet (input clk, input awvalid, input wvalid,
                output reg bvalid, output reg w_seen);
  reg aw_seen;
  always @(posedge clk) begin
    if (awvalid) aw_seen <= 1'b1;
    if (wvalid) w_seen <= 1'b1;
    if (aw_seen && w_seen) bvalid <= 1'b1;
  end
endmodule
|}
    [ [ ("awvalid", 1); ("wvalid", 0) ]; [ ("awvalid", 0) ]; []; [ ("wvalid", 1) ]; [ ("wvalid", 0) ]; [] ]
    [ "bvalid" ]

let api_misuse =
  mk Api_misuse "module instantiated with swapped operands"
    "greater_than computes x > y; connecting a to y and b to x makes the \
     instance compute b > a (the section 3.4.2 example)"
    "snippet"
    {|
module greater_than (input [7:0] x, input [7:0] y, output result);
  assign result = x > y;
endmodule

module snippet (input clk, input [7:0] a, input [7:0] b, output reg out);
  wire r;
  greater_than a_greater_than_b (.x(b), .y(a), .result(r));
  always @(posedge clk) out <= r;
endmodule
|}
    {|
module greater_than (input [7:0] x, input [7:0] y, output result);
  assign result = x > y;
endmodule

module snippet (input clk, input [7:0] a, input [7:0] b, output reg out);
  wire r;
  greater_than a_greater_than_b (.x(a), .y(b), .result(r));
  always @(posedge clk) out <= r;
endmodule
|}
    [ [ ("a", 9); ("b", 4) ]; []; [] ]
    [ "out" ]

let incomplete_implementation =
  mk Incomplete_implementation "unhandled corner case"
    "the narrow-to-wide adapter never flushes a frame ending on its low \
     half (section 3.4.3)"
    "snippet"
    {|
module snippet (input clk, input in_valid, input [7:0] in_data,
                input in_last, output reg out_valid, output reg [15:0] out_data);
  reg half;
  reg [7:0] low_byte;
  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (in_valid) begin
      if (!half) begin
        low_byte <= in_data;
        half <= 1'b1;
      end else begin
        out_valid <= 1'b1;
        out_data <= {in_data, low_byte};
        half <= 1'b0;
      end
    end
  end
endmodule
|}
    {|
module snippet (input clk, input in_valid, input [7:0] in_data,
                input in_last, output reg out_valid, output reg [15:0] out_data);
  reg half;
  reg [7:0] low_byte;
  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (in_valid) begin
      if (!half) begin
        low_byte <= in_data;
        half <= 1'b1;
        if (in_last) begin
          out_valid <= 1'b1;
          out_data <= {8'd0, in_data};
          half <= 1'b0;
        end
      end else begin
        out_valid <= 1'b1;
        out_data <= {in_data, low_byte};
        half <= 1'b0;
      end
    end
  end
endmodule
|}
    [
      [ ("in_valid", 1); ("in_data", 0xA1); ("in_last", 0) ];
      [ ("in_data", 0xA2) ];
      [ ("in_data", 0xA3); ("in_last", 1) ];
      [ ("in_valid", 0); ("in_last", 0) ];
      [];
    ]
    [ "out_valid"; "out_data" ]

let erroneous_expression =
  mk Erroneous_expression "off-by-one loop bound"
    "the last element is skipped because the control expression uses < \
     where <= is required (section 3.4.4, control-flow flavor)"
    "snippet"
    {|
module snippet (input clk, input start, input [3:0] limit,
                output reg busy, output reg [7:0] acc);
  reg [3:0] i;
  always @(posedge clk) begin
    if (start) begin
      busy <= 1'b1;
      i <= 4'd0;
      acc <= 8'd0;
    end else if (busy) begin
      if (i < limit) begin
        acc <= acc + {4'd0, i};
        i <= i + 4'd1;
      end else begin
        busy <= 1'b0;
      end
    end
  end
endmodule
|}
    {|
module snippet (input clk, input start, input [3:0] limit,
                output reg busy, output reg [7:0] acc);
  reg [3:0] i;
  always @(posedge clk) begin
    if (start) begin
      busy <= 1'b1;
      i <= 4'd0;
      acc <= 8'd0;
    end else if (busy) begin
      if (i <= limit) begin
        acc <= acc + {4'd0, i};
        i <= i + 4'd1;
      end else begin
        busy <= 1'b0;
      end
    end
  end
endmodule
|}
    [
      [ ("start", 1); ("limit", 3) ];
      [ ("start", 0) ]; []; []; []; []; []; [];
    ]
    [ "acc" ]

let all : t list =
  [
    buffer_overflow; bit_truncation; misindexing; endianness_mismatch;
    failure_to_update; deadlock; producer_consumer; signal_asynchrony;
    use_without_valid; protocol_violation; api_misuse;
    incomplete_implementation; erroneous_expression;
  ]

let find subclass = List.find_opt (fun s -> s.subclass = subclass) all
