(** The 68-bug study database (section 3 of the paper).

    Each record is one bug found in an open-source FPGA design,
    classified by root-cause subclass; aggregating the table regenerates
    Table 1. The 20 bugs carrying a [testbed_id] are the ones reproduced
    push-button in [Fpga_testbed] (Table 2). *)

type origin =
  | Hardcloud  (** HARP acceleration framework samples *)
  | Optimus_hv  (** the HARP hypervisor *)
  | Zipcpu  (** SDSPI, the AXI demos, and the FFT from zipcpu.com *)
  | Github_top  (** the most-starred FPGA projects *)
  | Developer  (** direct developer consultation (FADD) *)

type bug = {
  id : int;
  application : string;
  origin : origin;
  subclass : Taxonomy.subclass;
  symptoms : Taxonomy.symptom list;
  description : string;
  testbed_id : string option;
}

val all : bug list

val count : Taxonomy.subclass -> int
val count_class : Taxonomy.bug_class -> int
val total : int

type table1_row = {
  row_class : Taxonomy.bug_class;
  row_subclass : Taxonomy.subclass;
  row_count : int;
  row_symptoms : Taxonomy.symptom list;
}

val table1 : table1_row list

val testbed_bugs : bug list
val find_by_testbed_id : string -> bug option

(** {1 Corpus statistics (section 3, "Bug Collection")} *)

type corpus_stats = {
  surveyed_projects : int;
  without_bug_tracker_pct : int;
  without_repro_tests_pct : int;
}

val corpus : corpus_stats
(** 50 most popular GitHub FPGA projects: 56% without a public bug
    tracker, 88% without reproduction test cases. *)

val count_origin : origin -> int
val origins : origin list
val origin_name : origin -> string
