lib/bits/bits.ml: Array Char Format Int List Printf Seq String
